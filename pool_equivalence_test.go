package bgl

// Worker-pool determinism suite: the per-rank pool (internal/pool) may
// only change host wall-clock, never a simulated number. Every engine
// on every mesh shape, wire codec, and exchange schedule must produce
// a Result — simulated clocks, words, duplicate counts, hash probes,
// and container histograms included — byte-identical across pool
// sizes, and the modeled core count must shrink the simulated clock
// without touching anything else.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/traceverify"
)

// zeroWall* return copies with only the host wall-clock zeroed — the
// single field real parallelism is allowed to change.
func zeroWallBFS(res *Result) *Result { c := *res; c.Wall = 0; return &c }
func zeroWallMulti(res *MultiResult) *MultiResult {
	c := *res
	c.Wall = 0
	return &c
}
func zeroWallSSSP(res *SSSPResult) *SSSPResult { c := *res; c.Wall = 0; return &c }

// TestWorkerPoolDeterminism is the flagship pool gate: for each mesh
// shape of the acceptance matrix, each wire codec, and both exchange
// schedules, BFS (direction-optimizing, so both scan families run),
// multi-source BFS, and Δ-stepping at pool sizes 1, 2, and 8 must be
// indistinguishable except for wall time.
func TestWorkerPoolDeterminism(t *testing.T) {
	fx := newChaosFixture(t)
	srcs := []Vertex{fx.src, fx.tgt, 3, 11}

	meshes := []struct {
		r, c int
		part Partition
	}{
		{1, 1, Part2D},
		{2, 2, Part2D},
		{4, 4, Part2D},
		{1, 16, Part1DCol}, // the dedicated 1D engines
	}
	wires := []struct {
		name string
		mode WireMode
	}{
		{"sparse", WireSparse}, {"dense", WireDense}, {"auto", WireAuto}, {"hybrid", WireHybrid},
	}

	for _, m := range meshes {
		cl, err := NewCluster(ClusterConfig{R: m.r, C: m.c})
		if err != nil {
			t.Fatal(err)
		}
		dgU, err := cl.Distribute(fx.gU, WithPartition(m.part))
		if err != nil {
			t.Fatal(err)
		}
		dgW, err := cl.Distribute(fx.gW, WithPartition(m.part))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range wires {
			for _, async := range []bool{true, false} {
				base := []Option{WithWire(w.mode), WithAsync(async)}
				name := fmt.Sprintf("%dx%d/%s/async=%v", m.r, m.c, w.name, async)
				t.Run(name, func(t *testing.T) {
					opts := func(workers int) []Option {
						return append([]Option{WithWorkers(workers)}, base...)
					}
					refB, err := cl.BFS(dgU, fx.src, append(opts(1), WithDirection(DirectionOptimizing))...)
					if err != nil {
						t.Fatal(err)
					}
					refM, err := cl.MultiBFS(dgU, srcs, opts(1)...)
					if err != nil {
						t.Fatal(err)
					}
					refS, err := cl.SSSP(dgW, fx.src, opts(1)...)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{2, 8} {
						resB, err := cl.BFS(dgU, fx.src, append(opts(workers), WithDirection(DirectionOptimizing))...)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(zeroWallBFS(refB), zeroWallBFS(resB)) {
							t.Fatalf("BFS result differs between 1 and %d workers", workers)
						}
						resM, err := cl.MultiBFS(dgU, srcs, opts(workers)...)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(zeroWallMulti(refM), zeroWallMulti(resM)) {
							t.Fatalf("MultiBFS result differs between 1 and %d workers", workers)
						}
						resS, err := cl.SSSP(dgW, fx.src, opts(workers)...)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(zeroWallSSSP(refS), zeroWallSSSP(resS)) {
							t.Fatalf("SSSP result differs between 1 and %d workers", workers)
						}
					}
				})
			}
		}
	}
}

// TestParallelOracleEquivalence drives the pooled engines (8 workers,
// hybrid codec — the configuration exercising every grouped codec
// path) against the single-machine oracles: per-direction BFS levels,
// per-lane multi-source levels, and Δ-stepping distances.
func TestParallelOracleEquivalence(t *testing.T) {
	fx := newChaosFixture(t)
	wantLevels := fx.gU.SerialBFS(fx.src)
	wantDist := fx.gW.SerialDijkstra(fx.src)
	srcs := []Vertex{fx.src, fx.tgt, 3, 11}

	meshes := []struct {
		r, c int
		part Partition
	}{
		{2, 2, Part2D},
		{4, 4, Part2D},
		{1, 16, Part1DCol},
	}
	for _, m := range meshes {
		cl, err := NewCluster(ClusterConfig{R: m.r, C: m.c})
		if err != nil {
			t.Fatal(err)
		}
		dgU, err := cl.Distribute(fx.gU, WithPartition(m.part))
		if err != nil {
			t.Fatal(err)
		}
		dgW, err := cl.Distribute(fx.gW, WithPartition(m.part))
		if err != nil {
			t.Fatal(err)
		}
		opts := []Option{WithWorkers(8), WithWire(WireHybrid)}
		for _, d := range []struct {
			name string
			dir  Direction
		}{{"topdown", TopDown}, {"bottomup", BottomUp}, {"dirop", DirectionOptimizing}} {
			t.Run(fmt.Sprintf("%dx%d/bfs-%s", m.r, m.c, d.name), func(t *testing.T) {
				res, err := cl.BFS(dgU, fx.src, append([]Option{WithDirection(d.dir)}, opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				for v, want := range wantLevels {
					if res.Levels[v] != want {
						t.Fatalf("level[%d] = %d, oracle %d", v, res.Levels[v], want)
					}
				}
			})
		}
		t.Run(fmt.Sprintf("%dx%d/multi", m.r, m.c), func(t *testing.T) {
			res, err := cl.MultiBFS(dgU, srcs, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for lane, src := range srcs {
				want := fx.gU.SerialBFS(src)
				for v := range want {
					if res.LaneLevels[lane][v] != want[v] {
						t.Fatalf("lane %d level[%d] = %d, oracle %d", lane, v, res.LaneLevels[lane][v], want[v])
					}
				}
			}
		})
		t.Run(fmt.Sprintf("%dx%d/sssp", m.r, m.c), func(t *testing.T) {
			res, err := cl.SSSP(dgW, fx.src, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for v, want := range wantDist {
				if res.Dist[v] != want {
					t.Fatalf("dist[%d] = %d, oracle %d", v, res.Dist[v], want)
				}
			}
		})
	}
}

// TestCoresModel pins the simulated side of the tentpole: cores=1 is
// bit-identical to the default single-core run, cores=4 shrinks the
// simulated clock while leaving every non-temporal field untouched,
// and the divided charges still tile the clock ledger exactly (the
// trace cross-check re-derives clock == comp + comm - overlap from
// the spans alone).
func TestCoresModel(t *testing.T) {
	fx := newChaosFixture(t)
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	dgU, err := cl.Distribute(fx.gU)
	if err != nil {
		t.Fatal(err)
	}
	dgW, err := cl.Distribute(fx.gW)
	if err != nil {
		t.Fatal(err)
	}

	base, err := cl.BFS(dgU, fx.src, WithWire(WireHybrid))
	if err != nil {
		t.Fatal(err)
	}
	one, err := cl.BFS(dgU, fx.src, WithWire(WireHybrid), WithCores(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zeroWallBFS(base), zeroWallBFS(one)) {
		t.Fatal("cores=1 BFS is not bit-identical to the default single-core run")
	}

	four, err := cl.BFS(dgU, fx.src, WithWire(WireHybrid), WithCores(4))
	if err != nil {
		t.Fatal(err)
	}
	if four.SimTime >= base.SimTime {
		t.Fatalf("cores=4 SimTime %.6g not below single-core %.6g", four.SimTime, base.SimTime)
	}
	if !reflect.DeepEqual(four.Levels, base.Levels) {
		t.Fatal("cores=4 changed the BFS levels")
	}
	if four.TotalExpandWords != base.TotalExpandWords || four.TotalFoldWords != base.TotalFoldWords ||
		four.TotalDups != base.TotalDups || four.HashProbes != base.HashProbes ||
		four.Containers != base.Containers {
		t.Fatal("cores=4 changed a non-temporal statistic")
	}

	baseS, err := cl.SSSP(dgW, fx.src)
	if err != nil {
		t.Fatal(err)
	}
	fourS, err := cl.SSSP(dgW, fx.src, WithCores(4))
	if err != nil {
		t.Fatal(err)
	}
	if fourS.SimTime >= baseS.SimTime {
		t.Fatalf("cores=4 SSSP SimTime %.6g not below single-core %.6g", fourS.SimTime, baseS.SimTime)
	}
	if !reflect.DeepEqual(fourS.Dist, baseS.Dist) {
		t.Fatal("cores=4 changed the SSSP distances")
	}

	// The divided charges must still tile the ledger: record and
	// cross-check a traced cores=4 run of each family.
	tr := NewTrace()
	res, err := cl.BFS(dgU, fx.src, WithWire(WireHybrid), WithCores(4), WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, d, err := traceverify.Export(tr); err != nil {
		t.Fatal(err)
	} else if err := traceverify.BFS(d, res); err != nil {
		t.Fatalf("cores=4 BFS trace ledger: %v", err)
	}
	trS := NewTrace()
	resS, err := cl.SSSP(dgW, fx.src, WithCores(4), WithTrace(trS))
	if err != nil {
		t.Fatal(err)
	}
	if _, d, err := traceverify.Export(trS); err != nil {
		t.Fatal(err)
	} else if err := traceverify.SSSP(d, resS); err != nil {
		t.Fatalf("cores=4 SSSP trace ledger: %v", err)
	}
}
