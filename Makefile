GO ?= go

.PHONY: ci fmt-check vet tier1 build test bench

ci: fmt-check vet tier1

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Tier-1 verification: everything builds, every test passes.
tier1:
	$(GO) build ./... && $(GO) test ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...
