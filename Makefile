GO ?= go

.PHONY: ci fmt-check vet tier1 race race-pool build test bench bench-smoke bench-json bench-diff trace-smoke chaos-smoke graphd-smoke graphd-chaos profile fuzz deprecated-surface

# Seconds per fuzz target in `make fuzz`.
FUZZTIME ?= 20s

ci: fmt-check vet tier1 race race-pool bench-smoke trace-smoke chaos-smoke graphd-smoke graphd-chaos bench-diff deprecated-surface

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Tier-1 verification: everything builds, every test passes.
tier1:
	$(GO) build ./... && $(GO) test ./...

# Race-detector pass: the SPMD ranks are goroutines sharing one address
# space; any unsynchronized touch of a payload in flight shows up here.
race:
	$(GO) test -race ./...

# Worker-pool matrix under the race detector: the determinism suite
# (pool sizes 1/2/8 byte-identical on every mesh x codec x schedule),
# the oracle-equivalence suite at 8 workers, the cores cost-model
# check, and the package-level regression tests pinning the shared-map
# probe counting, CAS visit claims, and grouped codec paths.
race-pool:
	$(GO) test -race -count=1 -run 'TestWorkerPoolDeterminism|TestParallelOracleEquivalence|TestCoresModel' .
	$(GO) test -race -count=1 ./internal/pool ./internal/localindex ./internal/frontier

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# One-iteration benchmark smoke: every exhibit still runs to completion.
bench-smoke: bench

# Machine-readable perf baseline for the headline workload (see
# README.md "Perf trajectory" for the format). Also writes the
# multi-source BFS baseline (BENCH_PR4.json: one 64-lane batch vs 64
# independent runs) and the async-overlap baseline (BENCH_PR5.json:
# sync vs async schedule per level/epoch with hidden fractions and the
# flagship >=1.3x check) and the worker-pool/cores baseline
# (BENCH_PR8.json: flagship BFS and Δ-stepping at cores 1/2/4, gated on
# the deterministic simulated fields; wall times are host context).
# ... and the graphd service baseline (BENCH_PR9.json: the 64-query set
# swept in coalesced chunks at several concurrency levels vs one at a
# time — gated on the deterministic simulated fields — plus real
# batched-vs-unbatched HTTP QPS as host context).
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR2.json -out4 BENCH_PR4.json -out5 BENCH_PR5.json -out8 BENCH_PR8.json -out9 BENCH_PR9.json

# Perf-regression gate: rerun the baseline batch into a scratch
# directory and diff it against the committed BENCH_PR*.json under the
# documented tolerances (simexec_s may drift up to 5%, word counts are
# exact). Then the self-test: a deliberately injected 10% simexec
# regression must make the gate fail, proving it actually bites.
bench-diff:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/benchjson -out $$tmp/BENCH_PR2.json -out4 $$tmp/BENCH_PR4.json -out5 $$tmp/BENCH_PR5.json -out8 $$tmp/BENCH_PR8.json -out9 $$tmp/BENCH_PR9.json >/dev/null; \
	$(GO) run ./cmd/benchdiff BENCH_PR2.json=$$tmp/BENCH_PR2.json BENCH_PR4.json=$$tmp/BENCH_PR4.json BENCH_PR5.json=$$tmp/BENCH_PR5.json BENCH_PR8.json=$$tmp/BENCH_PR8.json BENCH_PR9.json=$$tmp/BENCH_PR9.json; \
	if $(GO) run ./cmd/benchdiff -inject-simexec 1.10 BENCH_PR2.json=$$tmp/BENCH_PR2.json >/dev/null 2>&1; then \
		echo "bench-diff: injected 10% simexec regression was NOT caught"; exit 1; \
	fi; \
	echo "bench-diff: injected 10% simexec regression correctly rejected"

# Trace smoke: record BFS and Δ-stepping runs with -trace (which
# re-derives clock == comp + comm - overlap from the span stream and
# cross-checks it against the Result before writing), then re-verify
# the exported files with the standalone checker.
trace-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/bfsrun -n 20000 -k 10 -r 4 -c 4 -direction dirop -wire hybrid -trace $$tmp/bfs.json -metrics $$tmp/bfs.metrics >/dev/null; \
	$(GO) run ./cmd/bfsrun -algo sssp -n 20000 -k 10 -r 4 -c 4 -delta 128 -trace $$tmp/sssp.json >/dev/null; \
	$(GO) run ./cmd/tracecheck -q $$tmp/bfs.json $$tmp/sssp.json; \
	echo "trace-smoke: both span exports verified"

# Chaos smoke: the robustness gate. First the differential suite under
# the race detector — every engine on every mesh shape and wire codec,
# faulted (canned plan: corruption, drops, duplicates, delays, a
# straggler, an outage) vs clean, with scrubbed Results required to
# match exactly, plus the in-process kill/restore byte-identity checks.
# Then a CLI round trip: checkpoint a faulted flagship BFS and
# Δ-stepping run at an interior level/epoch, restore each from its
# snapshot file, and re-verify the resumed runs against the serial
# oracles.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaosDifferential|TestChaosKillRestore' .
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/bfsrun -n 20000 -k 10 -r 4 -c 4 -direction dirop -wire hybrid -fault canned -checkpoint $$tmp/bfs.ckpt -kill-at 3 >/dev/null; \
	$(GO) run ./cmd/bfsrun -n 20000 -k 10 -r 4 -c 4 -direction dirop -wire hybrid -fault canned -restore $$tmp/bfs.ckpt >/dev/null; \
	$(GO) run ./cmd/bfsrun -algo sssp -n 20000 -k 10 -r 4 -c 4 -wire hybrid -fault canned -checkpoint $$tmp/sssp.ckpt -kill-at 4 >/dev/null; \
	$(GO) run ./cmd/bfsrun -algo sssp -n 20000 -k 10 -r 4 -c 4 -wire hybrid -fault canned -restore $$tmp/sssp.ckpt >/dev/null; \
	echo "chaos-smoke: faulted differential suite and kill/restore round trips verified"

# graphd smoke: the end-to-end service gate. Build the server and the
# load generator, start graphd on a free port (port discovered through
# -portfile), fire a seeded 120-query bfs/path/sssp mix from 16
# concurrent workers with every answer verified against the serial
# oracles, require the server to have actually coalesced queries
# (-expect-batching) and to expose the graphd instruments
# (-check-metrics), then drain it with SIGTERM and require exit 0.
graphd-smoke:
	@set -e; tmp=$$(mktemp -d); pid=""; \
	trap '{ [ -n "$$pid" ] && kill $$pid; rm -rf "$$tmp"; } 2>/dev/null || true' EXIT; \
	$(GO) build -o $$tmp/graphd ./cmd/graphd; \
	$(GO) build -o $$tmp/graphload ./cmd/graphload; \
	$$tmp/graphd -n 20000 -k 10 -seed 42 -weighted -r 2 -c 2 \
		-addr 127.0.0.1:0 -portfile $$tmp/port 2>$$tmp/graphd.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/port ] && break; sleep 0.1; done; \
	[ -s $$tmp/port ] || { echo "graphd-smoke: server never wrote its port file"; cat $$tmp/graphd.log; exit 1; }; \
	$$tmp/graphload -addr $$(cat $$tmp/port) -queries 120 -concurrency 16 -seed 7 \
		-mix bfs=6,path=1,sssp=1 -verify -n 20000 -k 10 -graph-seed 42 -weighted \
		-expect-batching -check-metrics || { cat $$tmp/graphd.log; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "graphd-smoke: server exited non-zero on drain"; cat $$tmp/graphd.log; exit 1; }; \
	pid=""; \
	echo "graphd-smoke: 120 verified queries, batching observed, clean drain"

# graphd chaos: the serving-under-fire gate. Same shape as
# graphd-smoke, but the server runs 2 replicas with a deterministic
# fault plan on every sweep, a 30s wall cap, and a one-shot drill that
# panics a replica on its 3rd BFS sweep. graphload -chaos arms the
# resilient client (jitter, breaker, hedged BFS), verifies every
# answer against the serial oracles anyway, fires a deadline probe
# every 25th query that must come back 504 (never a hang, never a
# 500), requires the server to report injected faults, and finally
# polls /v1/stats until the quarantined replica has been rebuilt and
# the fleet answers again. Then SIGTERM must still drain to exit 0.
graphd-chaos:
	@set -e; tmp=$$(mktemp -d); pid=""; \
	trap '{ [ -n "$$pid" ] && kill $$pid; rm -rf "$$tmp"; } 2>/dev/null || true' EXIT; \
	$(GO) build -o $$tmp/graphd ./cmd/graphd; \
	$(GO) build -o $$tmp/graphload ./cmd/graphload; \
	$$tmp/graphd -n 20000 -k 10 -seed 42 -weighted -r 2 -c 2 -replicas 2 \
		-fault canned:7 -chaos-panic-sweep 3 -max-query-time 30s \
		-addr 127.0.0.1:0 -portfile $$tmp/port 2>$$tmp/graphd.log & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$tmp/port ] && break; sleep 0.1; done; \
	[ -s $$tmp/port ] || { echo "graphd-chaos: server never wrote its port file"; cat $$tmp/graphd.log; exit 1; }; \
	$$tmp/graphload -addr $$(cat $$tmp/port) -queries 150 -concurrency 16 -seed 7 \
		-mix bfs=6,path=1,sssp=1 -verify -n 20000 -k 10 -graph-seed 42 -weighted \
		-chaos -deadline-every 25 -deadline-ms 1 -expect-faults -expect-batching \
		|| { cat $$tmp/graphd.log; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "graphd-chaos: server exited non-zero on drain"; cat $$tmp/graphd.log; exit 1; }; \
	pid=""; \
	echo "graphd-chaos: faulted+panicked serving verified, deadlines 504d, replica rebuilt, clean drain"

# Host-process profiles of the flagship workload; inspect with
# `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) run ./cmd/bfsrun -n 100000 -k 10 -r 4 -c 4 -verify=false -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof (open with: go tool pprof cpu.pprof)"

# Deprecated-surface check: the examples (examples/compat in
# particular) compile and run against the pre-redesign option aliases,
# so the compat shims cannot silently rot.
deprecated-surface:
	$(GO) build ./examples/...
	$(GO) run ./examples/compat

# Coverage-guided fuzzing: the hybrid wire codec round-trips, malformed
# payload rejection, weighted edge-list IO, and distributed Δ-stepping
# vs the serial Dijkstra oracle. FUZZTIME sets the budget per target.
fuzz:
	$(GO) test ./internal/frontier -run=^$$ -fuzz=FuzzHybridSetRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/frontier -run=^$$ -fuzz=FuzzHybridBitsRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/frontier -run=^$$ -fuzz=FuzzDecodeMalformed -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/graph -run=^$$ -fuzz=FuzzWeightedEdgeListRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sssp -run=^$$ -fuzz=FuzzDeltaSteppingVsDijkstra -fuzztime=$(FUZZTIME)
