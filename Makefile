GO ?= go

.PHONY: ci fmt-check vet tier1 race build test bench bench-smoke bench-json fuzz deprecated-surface

# Seconds per fuzz target in `make fuzz`.
FUZZTIME ?= 20s

ci: fmt-check vet tier1 race bench-smoke deprecated-surface

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Tier-1 verification: everything builds, every test passes.
tier1:
	$(GO) build ./... && $(GO) test ./...

# Race-detector pass: the SPMD ranks are goroutines sharing one address
# space; any unsynchronized touch of a payload in flight shows up here.
race:
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# One-iteration benchmark smoke: every exhibit still runs to completion.
bench-smoke: bench

# Machine-readable perf baseline for the headline workload (see
# README.md "Perf trajectory" for the format). Also writes the
# multi-source BFS baseline (BENCH_PR4.json: one 64-lane batch vs 64
# independent runs) and the async-overlap baseline (BENCH_PR5.json:
# sync vs async schedule per level/epoch with hidden fractions and the
# flagship >=1.3x check).
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR2.json -out4 BENCH_PR4.json -out5 BENCH_PR5.json

# Deprecated-surface check: the examples (examples/compat in
# particular) compile and run against the pre-redesign option aliases,
# so the compat shims cannot silently rot.
deprecated-surface:
	$(GO) build ./examples/...
	$(GO) run ./examples/compat

# Coverage-guided fuzzing: the hybrid wire codec round-trips, weighted
# edge-list IO, and distributed Δ-stepping vs the serial Dijkstra
# oracle. FUZZTIME sets the budget per target.
fuzz:
	$(GO) test ./internal/frontier -run=^$$ -fuzz=FuzzHybridSetRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/frontier -run=^$$ -fuzz=FuzzHybridBitsRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/graph -run=^$$ -fuzz=FuzzWeightedEdgeListRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sssp -run=^$$ -fuzz=FuzzDeltaSteppingVsDijkstra -fuzztime=$(FUZZTIME)
