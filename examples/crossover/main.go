// Crossover demonstrates the §3.1 analysis end to end: the γ-based
// expected message lengths predict which partitioning moves less data,
// and the Figure 6b equation pinpoints the average degree where 1D and
// 2D break even. The example solves the equation for a small machine,
// then measures both partitionings just below, at, and just above the
// crossover to show the winner flipping.
package main

import (
	"fmt"
	"log"

	bgl "repro"
)

func main() {
	const (
		p = 16     // 4x4 mesh vs 1x16 (conventional 1D)
		n = 160000 // vertices
	)

	kCross, err := bgl.CrossoverK(float64(n), p, float64(n-1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d, P=%d: analytic 1D/2D crossover at k = %.2f\n", n, p, kCross)
	fmt.Printf("(the paper computes k=34 for n=4e7, P=400 from the same equation)\n\n")

	fmt.Println("k      1D words     2D words     analytic 1D  analytic 2Dx2  winner")
	for _, k := range []float64{kCross / 3, kCross, kCross * 3} {
		vol := func(r, c int) int64 {
			g, err := bgl.Generate(n, k, 5)
			if err != nil {
				log.Fatal(err)
			}
			cl, err := bgl.NewCluster(bgl.ClusterConfig{R: r, C: c})
			if err != nil {
				log.Fatal(err)
			}
			dg, err := cl.Distribute(g)
			if err != nil {
				log.Fatal(err)
			}
			// Direct collectives so received words count each index
			// once, as in the analysis.
			res, err := cl.BFS(dg, g.LargestComponentVertex(),
				bgl.WithFold(bgl.FoldDirect), bgl.WithExpand(bgl.ExpandTargeted))
			if err != nil {
				log.Fatal(err)
			}
			return res.TotalExpandWords + res.TotalFoldWords
		}
		oneD := vol(1, p)
		twoD := vol(4, 4)
		winner := "2D"
		if oneD < twoD {
			winner = "1D"
		}
		// Per-level analytic expectations (worst case, whole frontier).
		a1 := bgl.Expected1DFold(float64(n), k, p)
		a2 := 2 * bgl.Expected2DExpand(float64(n), k, 4, 4)
		fmt.Printf("%-6.1f %-12d %-12d %-12.0f %-14.0f %s\n", k, oneD, twoD, a1, a2, winner)
	}
	fmt.Println("\nbelow the crossover 1D moves fewer words; above it 2D wins (Figure 6).")
}
