// Multisource answers a batch of semantic-graph path queries (§1:
// "the nature of the relationship ... can be determined by the
// shortest path") in ONE traversal: an analyst holds k query entities
// and wants every one's distance to a set of persons of interest.
// Instead of k independent BFS runs, Cluster.MultiBFS assigns each
// query entity a bit-lane and sweeps them together — every exchanged
// payload carries the lane-OR frontier once, with a 64-bit lane mask
// per vertex — then each lane's level array answers that entity's
// queries exactly as an independent run would, for fewer total wire
// words.
package main

import (
	"fmt"
	"log"

	bgl "repro"
)

func main() {
	// A "semantic graph": 50k entities, ~10 relations each.
	const entities = 50000
	g, err := bgl.Generate(entities, 10, 7)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := bgl.NewCluster(bgl.ClusterConfig{R: 4, C: 4})
	if err != nil {
		log.Fatal(err)
	}
	dg, err := cluster.Distribute(g) // Part2D; MultiBFS runs on any partitioning
	if err != nil {
		log.Fatal(err)
	}

	// The analyst's k query entities, spread across the graph, and the
	// persons of interest every query is matched against.
	queries := []bgl.Vertex{}
	anchor := g.LargestComponentVertex()
	levels := g.SerialBFS(anchor)
	for v := bgl.Vertex(0); len(queries) < 8; v += entities / 8 {
		if levels[v] != bgl.Unreached {
			queries = append(queries, v)
		} else {
			v -= entities/8 - 1
		}
	}
	persons := []bgl.Vertex{anchor, queries[3] + 1}

	res, err := cluster.MultiBFS(dg, queries, bgl.WithWire(bgl.WireHybrid))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("semantic graph: %d entities, %d relations | %d queries in %d sweeps, one traversal\n",
		g.N(), g.NumEdges(), res.B, len(res.PerLevel))
	fmt.Printf("batch moved %d words (simulated %.4fs)\n\n",
		res.TotalExpandWords+res.TotalFoldWords, res.SimTime)

	fmt.Println("query entity -> person of interest: degrees of separation")
	for lane, q := range res.Sources {
		for _, poi := range persons {
			d := res.LaneLevels[lane][poi]
			fmt.Printf("  %6d -> %-6d %d\n", q, poi, d)
		}
	}

	// Every lane is exactly an independent BFS; spot-check one against
	// the serial oracle and compare the batch's cost to k single runs.
	serial := g.SerialBFS(queries[2])
	for v, want := range serial {
		if res.LaneLevels[2][v] != want {
			log.Fatalf("lane 2 level[%d] = %d, serial %d", v, res.LaneLevels[2][v], want)
		}
	}
	var singleWords, singleEdges int64
	var singleExec float64
	for _, q := range queries {
		one, err := cluster.BFS(dg, q, bgl.WithWire(bgl.WireHybrid))
		if err != nil {
			log.Fatal(err)
		}
		singleWords += one.TotalExpandWords + one.TotalFoldWords
		singleEdges += one.TotalEdgesScanned
		singleExec += one.SimTime
	}
	batchWords := res.TotalExpandWords + res.TotalFoldWords
	fmt.Printf("\nlane 2 verified against the serial oracle: OK\n")
	fmt.Printf("batch vs %d single runs:\n", len(queries))
	fmt.Printf("  words          %9d vs %9d (%.2fx)\n",
		batchWords, singleWords, float64(singleWords)/float64(batchWords))
	fmt.Printf("  edges scanned  %9d vs %9d (%.2fx)\n",
		res.TotalEdgesScanned, singleEdges, float64(singleEdges)/float64(res.TotalEdgesScanned))
	fmt.Printf("  simulated exec %8.4fs vs %8.4fs (%.2fx)\n",
		res.SimTime, singleExec, singleExec/res.SimTime)
}
