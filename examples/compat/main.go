// Command compat is the deprecated-surface check: it compiles and runs
// against every pre-redesign option spelling (the alias shims kept by
// the PR 4 API unification) so `make deprecated-surface` fails the
// moment the compat layer rots. New code should use the unified names
// — see the README migration table; this program intentionally should
// not be modernized.
package main

import (
	"fmt"
	"os"

	bgl "repro"
)

func main() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	g, err := bgl.GenerateWeighted(5000, 8, 4, bgl.WithMaxWeight(32))
	if err != nil {
		fail(err)
	}
	cl, err := bgl.NewCluster(bgl.ClusterConfig{R: 2, C: 2})
	if err != nil {
		fail(err)
	}
	dg, err := cl.Distribute(g) // pre-redesign call shape: no options
	if err != nil {
		fail(err)
	}
	src := g.LargestComponentVertex()

	// The deprecated BFS spellings.
	res, err := cl.BFS(dg, src,
		bgl.WithFrontierWire(bgl.WireHybrid),
		bgl.WithFrontierOccupancy(0.05),
		bgl.WithChunkWords(4096),
	)
	if err != nil {
		fail(err)
	}

	// The deprecated SSSP spellings, including the SSSPOption type.
	var ssspOpts []bgl.SSSPOption
	ssspOpts = append(ssspOpts,
		bgl.WithDelta(8),
		bgl.WithSSSPWire(bgl.WireAuto),
		bgl.WithSSSPChunkWords(4096),
		bgl.WithSSSPFrontierOccupancy(0.05),
	)
	sres, err := cl.SSSP(dg, src, ssspOpts...)
	if err != nil {
		fail(err)
	}

	want := g.SerialDijkstra(src)
	for v, d := range sres.Dist {
		if d != want[v] {
			fail(fmt.Errorf("compat: dist[%d] = %d, serial dijkstra %d", v, d, want[v]))
		}
	}
	fmt.Printf("deprecated surface OK: bfs reached %d, sssp verified %d distances\n",
		res.Reached(), len(sres.Dist))
}
