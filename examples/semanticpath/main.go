// Semanticpath demonstrates the paper's motivating application (§1):
// determining the nature of the relationship between two entities in a
// large semantic graph via the shortest path between them. It builds a
// synthetic semantic graph (entities linked by co-occurrence, a Poisson
// random graph stands in for the declassified-document graphs the paper
// targets), then answers "how are entity A and entity B related?" with
// distributed s→t searches — first uni-directional, then the
// bi-directional search of §2.3 — and compares their costs.
package main

import (
	"fmt"
	"log"

	bgl "repro"
)

func main() {
	// A "semantic graph": 200k entities, ~12 relations each.
	const entities = 200000
	g, err := bgl.Generate(entities, 12, 7)
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := bgl.NewCluster(bgl.ClusterConfig{R: 4, C: 8})
	if err != nil {
		log.Fatal(err)
	}
	dg, err := cluster.Distribute(g)
	if err != nil {
		log.Fatal(err)
	}

	// Pick two far-apart entities: the analyst's query endpoints.
	alice := g.LargestComponentVertex()
	levels := g.SerialBFS(alice)
	bob := alice
	for v, l := range levels {
		if l != bgl.Unreached && l > levels[bob] {
			bob = bgl.Vertex(v)
		}
	}
	fmt.Printf("semantic graph: %d entities, %d relations\n", g.N(), g.NumEdges())
	fmt.Printf("query: relationship between entity %d and entity %d\n\n", alice, bob)

	uni, err := cluster.Search(dg, alice, bob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uni-directional search: %d degrees of separation\n", uni.Distance)
	fmt.Printf("  simulated time %.4fs, %d words moved\n",
		uni.SimTime, uni.TotalExpandWords+uni.TotalFoldWords)

	bi, err := cluster.BiSearch(dg, alice, bob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bi-directional search:  %d degrees of separation\n", bi.Distance)
	fmt.Printf("  simulated time %.4fs, %d words moved\n",
		bi.SimTime, bi.TotalExpandWords+bi.TotalFoldWords)

	if uni.Distance != bi.Distance {
		log.Fatalf("searches disagree: %d vs %d", uni.Distance, bi.Distance)
	}
	speedup := uni.SimTime / bi.SimTime
	volRatio := float64(uni.TotalExpandWords+uni.TotalFoldWords) /
		float64(bi.TotalExpandWords+bi.TotalFoldWords+1)
	fmt.Printf("\nbi-directional advantage: %.1fx faster, %.0fx less traffic\n", speedup, volRatio)
	fmt.Println("(§2.3: the frontiers stay small because each side only walks half the distance)")
}
