// Quickstart: generate a Poisson random graph, distribute it over a
// simulated 4x4 processor mesh with the paper's 2D edge partitioning,
// run a distributed BFS, and validate the result against a serial BFS.
package main

import (
	"fmt"
	"log"

	bgl "repro"
)

func main() {
	// The paper's workload: a Poisson random graph. 100k vertices with
	// average degree 10 stands in for the 3.2-billion-vertex runs.
	g, err := bgl.Generate(100000, 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges (avg degree %.2f)\n",
		g.N(), g.NumEdges(), g.AvgDegree())

	// A simulated BlueGene/L slice: 16 ranks as a 4x4 logical mesh,
	// mapped onto a 3D torus with the paper's Figure 1 plane mapping.
	cluster, err := bgl.NewCluster(bgl.ClusterConfig{R: 4, C: 4})
	if err != nil {
		log.Fatal(err)
	}

	// 2D edge partitioning (§2.2): each rank stores partial edge lists
	// for its block column, indexing only the non-empty ones.
	dg, err := cluster.Distribute(g)
	if err != nil {
		log.Fatal(err)
	}

	// Full distributed traversal with the paper's default machinery:
	// targeted expand, union-fold, sent-neighbors cache, fixed-length
	// message buffers.
	source := g.LargestComponentVertex()
	res, err := cluster.BFS(dg, source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("distributed BFS from %d: reached %d vertices, %d levels\n",
		source, res.Reached(), res.MaxLevel()+1)
	fmt.Printf("simulated execution %.4fs (communication %.4fs)\n", res.SimTime, res.SimComm)
	fmt.Printf("union-fold eliminated %d duplicate vertices (%.1f%% redundancy)\n",
		res.TotalDups, res.RedundancyRatio())

	// Validate against the serial oracle.
	serial := g.SerialBFS(source)
	for v, want := range serial {
		if res.Levels[v] != want {
			log.Fatalf("mismatch at vertex %d: distributed %d, serial %d", v, res.Levels[v], want)
		}
	}
	fmt.Println("levels match the serial BFS: OK")
}
