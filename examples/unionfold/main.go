// Unionfold demonstrates the paper's §3.2.2 optimization in isolation:
// the fold implemented as a reduce-scatter whose reduction operator is
// set union. On a high-degree graph many processors discover the same
// neighbor in the same level; the union-fold deletes those duplicates
// while the messages are still in flight, cutting both traffic and the
// memory-access cost of processing received vertices (Figure 7).
package main

import (
	"fmt"
	"log"

	bgl "repro"
)

func main() {
	// High average degree maximizes redundant discoveries.
	g, err := bgl.Generate(20000, 100, 11)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := bgl.NewCluster(bgl.ClusterConfig{R: 4, C: 4})
	if err != nil {
		log.Fatal(err)
	}
	dg, err := cluster.Distribute(g)
	if err != nil {
		log.Fatal(err)
	}
	src := g.LargestComponentVertex()

	fmt.Printf("graph: n=%d k=%.0f (%d edges), 4x4 mesh\n\n", g.N(), g.AvgDegree(), g.NumEdges())
	fmt.Println("fold algorithm      exec(s)    fold-words  dups-eliminated  redundancy")
	for _, cfg := range []struct {
		name string
		alg  bgl.FoldAlg
	}{
		{"two-phase + union", bgl.FoldTwoPhase},
		{"two-phase no union", bgl.FoldTwoPhaseNoUnion},
		{"direct all-to-all", bgl.FoldDirect},
	} {
		// Disable the sent-neighbors cache so cross-level duplicates
		// survive to the fold, as in the paper's Fig. 7 measurement.
		res, err := cluster.BFS(dg, src, bgl.WithFold(cfg.alg), bgl.WithSentCache(false))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s  %.6f   %10d  %15d  %9.1f%%\n",
			cfg.name, res.SimTime, res.TotalFoldWords, res.TotalDups, res.RedundancyRatio())
	}
	fmt.Println("\nthe union variant moves the fewest words: duplicates are merged in")
	fmt.Println("flight during the ring phase instead of crossing the wire repeatedly.")
}
