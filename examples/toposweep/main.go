// Toposweep reproduces the Table 1 trade-off in miniature: the same
// graph distributed over different R x C processor topologies — square
// 2D meshes and the two degenerate 1D partitionings — showing how the
// mesh shape moves cost between the expand and fold collectives, and
// why 2D wins for high-degree graphs while row-wise 1D can win at low
// degree.
package main

import (
	"fmt"
	"log"

	bgl "repro"
)

func main() {
	const p = 16
	topologies := [][2]int{{4, 4}, {8, 2}, {16, 1}, {1, 16}}

	for _, spec := range []struct {
		n int
		k float64
	}{{160000, 10}, {16000, 100}} {
		g, err := bgl.Generate(spec.n, spec.k, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("graph: n=%d k=%g (%d edges)\n", spec.n, spec.k, g.NumEdges())
		fmt.Println("R x C   exec(s)    comm(s)    expand-words  fold-words")
		for _, topo := range topologies {
			cluster, err := bgl.NewCluster(bgl.ClusterConfig{R: topo[0], C: topo[1]})
			if err != nil {
				log.Fatal(err)
			}
			dg, err := cluster.Distribute(g)
			if err != nil {
				log.Fatal(err)
			}
			src := g.LargestComponentVertex()
			res, err := cluster.BFS(dg, src)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%2dx%-2d   %.6f   %.6f   %12d  %10d\n",
				topo[0], topo[1], res.SimTime, res.SimComm,
				res.TotalExpandWords, res.TotalFoldWords)
		}
		fmt.Println()
	}
	fmt.Println("R x 1 is the row-wise 1D partition (all cost in expand);")
	fmt.Println("1 x C is the conventional 1D vertex partition (all cost in fold);")
	fmt.Println("square meshes split the traffic across both collectives (§2.2, Table 1).")
}
