package bgl

// Chaos differential suite: every engine on every mesh shape and wire
// codec runs twice — once on a clean wire, once under the canned fault
// plan (corruption, drops, duplicates, delays, a straggler, and a
// transient outage) — and the two Results must match field-for-field
// once the purely temporal quantities (simulated times, wall time,
// fault counters) are scrubbed. The self-healing transport's whole
// contract is that recovery is invisible outside the clock.

import (
	"fmt"
	"reflect"
	"testing"
)

// scrubLevel zeroes a LevelStats' temporal fields in place.
func scrubLevels(ls []LevelStats) []LevelStats {
	out := append([]LevelStats(nil), ls...)
	for i := range out {
		out[i].ExecS, out[i].CommS, out[i].OverlapS = 0, 0, 0
	}
	return out
}

// scrubBFS returns a copy of res with everything a fault plan is
// allowed to change — simulated times, wall time, fault counters —
// zeroed. All remaining fields must be identical to the fault-free run.
func scrubBFS(res *Result) *Result {
	c := *res
	c.SimTime, c.SimComm, c.SimOverlap, c.Wall = 0, 0, 0, 0
	c.Faults = FaultStats{}
	c.PerLevel = scrubLevels(res.PerLevel)
	c.PerRank = make([][]LevelStats, len(res.PerRank))
	for r := range res.PerRank {
		c.PerRank[r] = scrubLevels(res.PerRank[r])
	}
	return &c
}

func scrubMulti(res *MultiResult) *MultiResult {
	c := *res
	c.Result = *scrubBFS(&res.Result)
	return &c
}

func scrubEpochs(es []EpochStats) []EpochStats {
	out := append([]EpochStats(nil), es...)
	for i := range out {
		out[i].ExecS, out[i].CommS, out[i].OverlapS = 0, 0, 0
	}
	return out
}

func scrubSSSP(res *SSSPResult) *SSSPResult {
	c := *res
	c.SimTime, c.SimComm, c.SimOverlap, c.Wall = 0, 0, 0, 0
	c.Faults = FaultStats{}
	c.PerEpoch = scrubEpochs(res.PerEpoch)
	c.PerRank = make([][]EpochStats, len(res.PerRank))
	for r := range res.PerRank {
		c.PerRank[r] = scrubEpochs(res.PerRank[r])
	}
	return &c
}

// chaosFixture builds the suite's graphs once: the unweighted BFS
// workload and its weighted twin for Δ-stepping.
type chaosFixture struct {
	gU, gW   *Graph
	src, tgt Vertex
}

func newChaosFixture(t *testing.T) *chaosFixture {
	t.Helper()
	gU, err := Generate(1500, 8, 33)
	if err != nil {
		t.Fatal(err)
	}
	gW, err := GenerateWeighted(1500, 8, 33, WithMaxWeight(40))
	if err != nil {
		t.Fatal(err)
	}
	src := gU.LargestComponentVertex()
	tgt := Vertex(int(src+737) % gU.N())
	return &chaosFixture{gU: gU, gW: gW, src: src, tgt: tgt}
}

// TestChaosDifferential is the flagship robustness gate: for each mesh
// shape of the acceptance matrix and each wire codec, every engine's
// faulted Result must equal its fault-free Result after scrubbing.
func TestChaosDifferential(t *testing.T) {
	fx := newChaosFixture(t)
	plan := CannedFaultPlan(7)

	meshes := []struct {
		r, c int
		part Partition
	}{
		{1, 1, Part2D},
		{2, 2, Part2D},
		{4, 4, Part2D},
		{1, 16, Part1DCol}, // the dedicated 1D engines
	}
	wires := []struct {
		name string
		mode WireMode
	}{
		{"sparse", WireSparse}, {"dense", WireDense}, {"auto", WireAuto}, {"hybrid", WireHybrid},
	}

	var totalInjected uint64
	for _, m := range meshes {
		cl, err := NewCluster(ClusterConfig{R: m.r, C: m.c})
		if err != nil {
			t.Fatal(err)
		}
		dgU, err := cl.Distribute(fx.gU, WithPartition(m.part))
		if err != nil {
			t.Fatal(err)
		}
		dgW, err := cl.Distribute(fx.gW, WithPartition(m.part))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range wires {
			base := []Option{WithWire(w.mode)}
			// Each engine returns its scrubbed result and the faulted
			// run's injection count; the subtest diffs clean vs faulted.
			engines := []struct {
				name string
				run  func(extra ...Option) (any, uint64, error)
			}{
				{"bfs-topdown", func(extra ...Option) (any, uint64, error) {
					res, err := cl.BFS(dgU, fx.src, append(append([]Option{WithDirection(TopDown)}, base...), extra...)...)
					if err != nil {
						return nil, 0, err
					}
					return scrubBFS(res), res.Faults.Injected(), nil
				}},
				{"bfs-bottomup", func(extra ...Option) (any, uint64, error) {
					res, err := cl.BFS(dgU, fx.src, append(append([]Option{WithDirection(BottomUp)}, base...), extra...)...)
					if err != nil {
						return nil, 0, err
					}
					return scrubBFS(res), res.Faults.Injected(), nil
				}},
				{"bfs-dirop", func(extra ...Option) (any, uint64, error) {
					res, err := cl.BFS(dgU, fx.src, append(append([]Option{WithDirection(DirectionOptimizing)}, base...), extra...)...)
					if err != nil {
						return nil, 0, err
					}
					return scrubBFS(res), res.Faults.Injected(), nil
				}},
				{"bisearch", func(extra ...Option) (any, uint64, error) {
					res, err := cl.BiSearch(dgU, fx.src, fx.tgt, append(base, extra...)...)
					if err != nil {
						return nil, 0, err
					}
					return scrubBFS(res), res.Faults.Injected(), nil
				}},
				{"multi-bfs", func(extra ...Option) (any, uint64, error) {
					srcs := []Vertex{fx.src, fx.tgt, Vertex(int(fx.src+99) % fx.gU.N())}
					res, err := cl.MultiBFS(dgU, srcs, append(base, extra...)...)
					if err != nil {
						return nil, 0, err
					}
					return scrubMulti(res), res.Faults.Injected(), nil
				}},
				{"sssp-sync", func(extra ...Option) (any, uint64, error) {
					res, err := cl.SSSP(dgW, fx.src, append(append([]Option{WithAsync(false)}, base...), extra...)...)
					if err != nil {
						return nil, 0, err
					}
					return scrubSSSP(res), res.Faults.Injected(), nil
				}},
				{"sssp-async", func(extra ...Option) (any, uint64, error) {
					res, err := cl.SSSP(dgW, fx.src, append(base, extra...)...)
					if err != nil {
						return nil, 0, err
					}
					return scrubSSSP(res), res.Faults.Injected(), nil
				}},
			}
			for _, eng := range engines {
				name := eng.name
				run := eng.run
				t.Run(fmt.Sprintf("%dx%d-%s_%s_%s", m.r, m.c, m.part, w.name, name), func(t *testing.T) {
					clean, injClean, err := run()
					if err != nil {
						t.Fatal(err)
					}
					if injClean != 0 {
						t.Fatalf("clean run reports %d injections", injClean)
					}
					faulted, inj, err := run(WithFault(plan))
					if err != nil {
						t.Fatal(err)
					}
					totalInjected += inj
					if !reflect.DeepEqual(clean, faulted) {
						t.Fatalf("faulted result differs from fault-free after scrubbing (injections: %d)", inj)
					}
					// Determinism: the same plan must fault identically.
					again, inj2, err := run(WithFault(plan))
					if err != nil {
						t.Fatal(err)
					}
					if inj2 != inj || !reflect.DeepEqual(faulted, again) {
						t.Fatalf("faulted run is not deterministic (injections %d vs %d)", inj, inj2)
					}
				})
			}
		}
	}
	if totalInjected == 0 {
		t.Fatal("the canned plan injected nothing across the whole matrix; the suite tested no recovery")
	}
}

// TestChaosKillRestore halts the flagship workloads mid-run under
// active faults, round-trips the snapshot through the on-disk format,
// and requires the resumed Result to be byte-identical (wall time
// aside) to the uninterrupted faulted run.
func TestChaosKillRestore(t *testing.T) {
	fx := newChaosFixture(t)
	plan := CannedFaultPlan(7)
	path := t.TempDir() + "/chaos.ckpt"

	newCluster := func() *Cluster {
		cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}

	t.Run("bfs", func(t *testing.T) {
		opts := []Option{WithWire(WireHybrid), WithDirection(DirectionOptimizing), WithFault(plan)}
		cl := newCluster()
		dg, err := cl.Distribute(fx.gU)
		if err != nil {
			t.Fatal(err)
		}
		full, err := cl.BFS(dg, fx.src, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if full.MaxLevel() < 3 {
			t.Fatalf("fixture too shallow to kill mid-run (max level %d)", full.MaxLevel())
		}

		ckpt := NewCheckpoint(2)
		cl2 := newCluster()
		dg2, err := cl2.Distribute(fx.gU)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl2.BFS(dg2, fx.src, append(opts, WithCheckpoint(ckpt))...); err != nil {
			t.Fatal(err)
		}
		if err := WriteCheckpoint(path, ckpt.Snapshot()); err != nil {
			t.Fatal(err)
		}
		snap, err := ReadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}

		cl3 := newCluster()
		dg3, err := cl3.Distribute(fx.gU)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := cl3.BFS(dg3, fx.src, append(opts, WithRestore(snap))...)
		if err != nil {
			t.Fatal(err)
		}
		a, b := *full, *resumed
		a.Wall, b.Wall = 0, 0
		if !reflect.DeepEqual(&a, &b) {
			t.Fatal("restored BFS result is not byte-identical to the uninterrupted run")
		}
	})

	t.Run("sssp", func(t *testing.T) {
		opts := []Option{WithWire(WireHybrid), WithFault(plan)}
		cl := newCluster()
		dg, err := cl.Distribute(fx.gW)
		if err != nil {
			t.Fatal(err)
		}
		full, err := cl.SSSP(dg, fx.src, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if full.Epochs < 3 {
			t.Fatalf("fixture drains too few epochs to kill mid-run (%d)", full.Epochs)
		}

		ckpt := NewCheckpoint(full.Epochs / 2)
		cl2 := newCluster()
		dg2, err := cl2.Distribute(fx.gW)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl2.SSSP(dg2, fx.src, append(opts, WithCheckpoint(ckpt))...); err != nil {
			t.Fatal(err)
		}
		if err := WriteCheckpoint(path, ckpt.Snapshot()); err != nil {
			t.Fatal(err)
		}
		snap, err := ReadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}

		cl3 := newCluster()
		dg3, err := cl3.Distribute(fx.gW)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := cl3.SSSP(dg3, fx.src, append(opts, WithRestore(snap))...)
		if err != nil {
			t.Fatal(err)
		}
		a, b := *full, *resumed
		a.Wall, b.Wall = 0, 0
		if !reflect.DeepEqual(&a, &b) {
			t.Fatal("restored SSSP result is not byte-identical to the uninterrupted run")
		}
	})
}
