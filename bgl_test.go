package bgl

import (
	"bytes"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	g, err := Generate(2000, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	src := g.LargestComponentVertex()
	res, err := cl.BFS(dg, src)
	if err != nil {
		t.Fatal(err)
	}
	serial := g.SerialBFS(src)
	for v, want := range serial {
		if res.Levels[v] != want {
			t.Fatalf("level[%d] = %d, want %d", v, res.Levels[v], want)
		}
	}
	if res.SimTime <= 0 {
		t.Error("no simulated time")
	}
}

func TestSearchAndBiSearchAgree(t *testing.T) {
	g, err := Generate(1500, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 3})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	s := g.LargestComponentVertex()
	serial := g.SerialBFS(s)
	var far Vertex
	for v, l := range serial {
		if l != Unreached && l > serial[far] {
			far = Vertex(v)
		}
	}
	uni, err := cl.Search(dg, s, far)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := cl.BiSearch(dg, s, far)
	if err != nil {
		t.Fatal(err)
	}
	if !uni.Found || !bi.Found {
		t.Fatalf("searches did not find reachable target: uni=%v bi=%v", uni.Found, bi.Found)
	}
	if uni.Distance != serial[far] || bi.Distance != serial[far] {
		t.Fatalf("distances: uni=%d bi=%d serial=%d", uni.Distance, bi.Distance, serial[far])
	}
}

func TestOptionsApply(t *testing.T) {
	g, err := Generate(800, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2, Mapping: MapRowMajor, ClusterModel: true})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	src := g.LargestComponentVertex()
	res, err := cl.BFS(dg, src,
		WithExpand(ExpandAllGather),
		WithFold(FoldDirect),
		WithSentCache(false),
		WithChunkWords(128),
		WithMaxLevels(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLevel() > 3 {
		t.Errorf("MaxLevels option ignored: depth %d", res.MaxLevel())
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{R: 0, C: 4}); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := NewCluster(ClusterConfig{R: 2, C: 2, TorusDims: [3]int{1, 1, 1}}); err == nil {
		t.Error("undersized torus accepted")
	}
	if _, err := NewCluster(ClusterConfig{R: 2, C: 2, Mapping: MappingKind(99)}); err == nil {
		t.Error("unknown mapping accepted")
	}
}

func TestAnalyticReexports(t *testing.T) {
	if Gamma(100, 1e6, 10) <= 0 {
		t.Error("Gamma re-export broken")
	}
	if Expected1DFold(1e6, 10, 16) <= 0 {
		t.Error("Expected1DFold re-export broken")
	}
	if Expected2DExpand(1e6, 10, 4, 4) <= 0 || Expected2DFold(1e6, 10, 4, 4) <= 0 {
		t.Error("2D expectation re-exports broken")
	}
	if _, err := CrossoverK(4e7, 400, 1000); err != nil {
		t.Errorf("CrossoverK: %v", err)
	}
}

func TestFromEdgesFacade(t *testing.T) {
	g, err := FromEdges(4, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.SerialDistance(0, 3) != 3 {
		t.Error("facade distance wrong")
	}
	cl, err := NewCluster(ClusterConfig{R: 1, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Search(dg, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Distance != 3 {
		t.Errorf("distributed distance = %d found=%v", res.Distance, res.Found)
	}
}

func TestPathReconstruction(t *testing.T) {
	g, err := Generate(3000, 6, 21)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	s := g.LargestComponentVertex()
	serial := g.SerialBFS(s)
	var far Vertex
	for v, l := range serial {
		if l != Unreached && l > serial[far] {
			far = Vertex(v)
		}
	}
	path, res, err := cl.Path(dg, s, far)
	if err != nil {
		t.Fatal(err)
	}
	if int32(len(path)-1) != serial[far] || res.Distance != serial[far] {
		t.Fatalf("path length %d, result distance %d, serial %d", len(path)-1, res.Distance, serial[far])
	}
	if path[0] != s || path[len(path)-1] != far {
		t.Fatalf("path endpoints %d..%d, want %d..%d", path[0], path[len(path)-1], s, far)
	}
	// Every consecutive pair must be an edge.
	for i := 1; i < len(path); i++ {
		ok := false
		for _, u := range g.Neighbors(path[i-1]) {
			if u == path[i] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("path step %d->%d is not an edge", path[i-1], path[i])
		}
	}
	// Unreachable target errors.
	if _, _, err := cl.Path(dg, s, s); err != nil {
		t.Fatalf("trivial path failed: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g, err := Generate(800, 5, 33)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed graph: %d/%d vs %d/%d",
			back.N(), back.NumEdges(), g.N(), g.NumEdges())
	}
	src := g.LargestComponentVertex()
	a, b := g.SerialBFS(src), back.SerialBFS(src)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("levels differ at %d after round trip", v)
		}
	}
}

func TestRelabelFacade(t *testing.T) {
	g, err := Generate(500, 4, 34)
	if err != nil {
		t.Fatal(err)
	}
	rg, perm := g.Relabel(5)
	if rg.N() != g.N() || len(perm) != g.N() {
		t.Fatal("relabel changed size")
	}
	src := g.LargestComponentVertex()
	a := g.SerialBFS(src)
	b := rg.SerialBFS(perm[src])
	for v := range a {
		if a[v] != b[perm[v]] {
			t.Fatalf("levels not equivariant at %d", v)
		}
	}
}

func TestDistGraphMemory(t *testing.T) {
	g, err := Generate(4000, 8, 35)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	stats := dg.Memory()
	if len(stats) != 4 {
		t.Fatalf("%d ranks of memory stats", len(stats))
	}
	totalOwned := 0
	for _, m := range stats {
		totalOwned += m.OwnedVertices
		if m.NonEmptyColumns > m.DenseColumns {
			t.Fatalf("non-empty columns %d above dense bound %d", m.NonEmptyColumns, m.DenseColumns)
		}
		if m.NonEmptyColumns > m.EdgeEntries {
			t.Fatal("more non-empty columns than entries")
		}
	}
	if totalOwned != g.N() {
		t.Fatalf("owned vertices sum %d != n %d", totalOwned, g.N())
	}
}

func TestResultNetworkMetrics(t *testing.T) {
	g, err := Generate(2000, 6, 36)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.BFS(dg, g.LargestComponentVertex())
	if err != nil {
		t.Fatal(err)
	}
	if res.MsgsRecv == 0 || res.LinksUsed == 0 || res.MaxLinkBytes == 0 {
		t.Errorf("network metrics empty: msgs=%d links=%d max=%d",
			res.MsgsRecv, res.LinksUsed, res.MaxLinkBytes)
	}
	if res.AvgHopsPerMessage() <= 0 {
		t.Error("no hops recorded")
	}
	if im := res.LoadImbalance(); im < 1 {
		t.Errorf("load imbalance %g below 1", im)
	}
}

func TestSSSPQuickstartFlow(t *testing.T) {
	g, err := GenerateWeighted(2000, 8, 42, WithWeightDist(WeightUniform), WithMaxWeight(64))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("GenerateWeighted produced an unweighted graph")
	}
	if min, max := g.EdgeWeightRange(); min < 1 || max > 64 || min > max {
		t.Fatalf("weight range [%d, %d] outside [1, 64]", min, max)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	src := g.LargestComponentVertex()
	res, err := cl.SSSP(dg, src, WithSSSPWire(WireHybrid),
		WithSSSPChunkWords(4096), WithSSSPFrontierOccupancy(0.05))
	if err != nil {
		t.Fatal(err)
	}
	want := g.SerialDijkstra(src)
	for v, d := range res.Dist {
		if d != want[v] {
			t.Fatalf("dist[%d] = %d, serial dijkstra %d", v, d, want[v])
		}
	}
	if res.Delta == 0 {
		t.Fatal("auto delta not recorded")
	}
	if res.Epochs == 0 || res.BucketsDrained == 0 || res.TotalRelaxations == 0 {
		t.Fatalf("empty run stats: epochs=%d buckets=%d relax=%d",
			res.Epochs, res.BucketsDrained, res.TotalRelaxations)
	}
}

func TestSSSPDeltaOptionAndUnweighted(t *testing.T) {
	// SSSP on an unweighted graph runs with unit weights: distances are
	// BFS levels, under both degenerate Δ choices.
	g, err := Generate(1200, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 1, C: 4})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	src := g.LargestComponentVertex()
	levels := g.SerialBFS(src)
	for _, delta := range []uint32{1, DeltaInf} {
		res, err := cl.SSSP(dg, src, WithDelta(delta))
		if err != nil {
			t.Fatal(err)
		}
		for v, l := range levels {
			want := MaxDist
			if l != Unreached {
				want = uint32(l)
			}
			if res.Dist[v] != want {
				t.Fatalf("delta %d: dist[%d] = %d, want level %d", delta, v, res.Dist[v], l)
			}
		}
	}
}

func TestWeightedSaveLoadRoundTrip(t *testing.T) {
	g, err := FromWeightedEdges(4, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}}, []uint32{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Weighted() {
		t.Fatal("weights dropped through Save/Load")
	}
	want := g.SerialDijkstra(0)
	got := back.SerialDijkstra(0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d after round trip, want %d", v, got[v], want[v])
		}
	}
}
