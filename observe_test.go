package bgl

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/traceverify"
)

// traceGrid is the mesh x codec x schedule matrix the trace invariants
// are exercised over.
var traceGrid = []struct {
	name  string
	r, c  int
	wire  WireMode
	async bool
}{
	{"1x1-auto-sync", 1, 1, WireAuto, false},
	{"1x4-auto-sync", 1, 4, WireAuto, false},
	{"1x4-hybrid-async", 1, 4, WireHybrid, true},
	{"4x4-auto-async", 4, 4, WireAuto, true},
	{"4x4-hybrid-sync", 4, 4, WireHybrid, false},
	{"4x4-hybrid-async", 4, 4, WireHybrid, true},
}

func traceCluster(t *testing.T, r, c int) (*Cluster, *DistGraph, Vertex) {
	t.Helper()
	g, err := GenerateWeighted(3000, 8, 99, WithMaxWeight(255))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: r, C: c})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	return cl, dg, g.LargestComponentVertex()
}

// TestTraceCheckBFS runs the full pipeline — record, export Chrome
// JSON, re-parse, re-derive the clock invariant from the spans alone,
// and cross-check the derivation against the Result — over the grid.
func TestTraceCheckBFS(t *testing.T) {
	for _, tc := range traceGrid {
		t.Run(tc.name, func(t *testing.T) {
			cl, dg, src := traceCluster(t, tc.r, tc.c)
			tr := NewTrace()
			res, err := cl.BFS(dg, src, WithWire(tc.wire), WithAsync(tc.async), WithTrace(tr))
			if err != nil {
				t.Fatal(err)
			}
			_, d, err := traceverify.Export(tr)
			if err != nil {
				t.Fatal(err)
			}
			if err := traceverify.BFS(d, res); err != nil {
				t.Fatal(err)
			}
			if len(d.Ranks) != tc.r*tc.c {
				t.Fatalf("trace covers %d ranks, want %d", len(d.Ranks), tc.r*tc.c)
			}
		})
	}
}

// TestTraceCheckSSSP is the Δ-stepping counterpart, checking epoch
// spans (phase names, buckets, relaxations) against the Result.
func TestTraceCheckSSSP(t *testing.T) {
	for _, tc := range traceGrid {
		t.Run(tc.name, func(t *testing.T) {
			cl, dg, src := traceCluster(t, tc.r, tc.c)
			tr := NewTrace()
			res, err := cl.SSSP(dg, src, WithWire(tc.wire), WithAsync(tc.async), WithDelta(128), WithTrace(tr))
			if err != nil {
				t.Fatal(err)
			}
			_, d, err := traceverify.Export(tr)
			if err != nil {
				t.Fatal(err)
			}
			if err := traceverify.SSSP(d, res); err != nil {
				t.Fatal(err)
			}
			if len(d.Epochs) == 0 {
				t.Fatal("no epoch spans recorded")
			}
		})
	}
}

// TestTraceCheckDirectionOptimizing pins the per-level dir arg: the
// engines stamp rec.dir before the level span closes, so a dirop run
// whose middle levels go bottom-up must show that in the trace (the
// cross-check against Result.PerLevel then proves agreement). Guards
// the caller-stamped-after-span-close regression.
func TestTraceCheckDirectionOptimizing(t *testing.T) {
	cl, dg, src := traceCluster(t, 2, 2)
	tr := NewTrace()
	res, err := cl.BFS(dg, src, WithDirection(DirectionOptimizing), WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	_, d, err := traceverify.Export(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := traceverify.BFS(d, res); err != nil {
		t.Fatal(err)
	}
	bottomUp := 0
	for _, lv := range d.Levels {
		if lv.Args["dir"] != 0 {
			bottomUp++
		}
	}
	if bottomUp == 0 {
		t.Fatal("dirop run recorded no bottom-up level spans; the dir arg is not exercised")
	}
}

// TestTraceDoesNotPerturbClock asserts recording is observation only:
// the traced run's simulated times equal the untraced run's.
func TestTraceDoesNotPerturbClock(t *testing.T) {
	cl, dg, src := traceCluster(t, 2, 2)
	bare, err := cl.BFS(dg, src, WithWire(WireHybrid))
	if err != nil {
		t.Fatal(err)
	}
	traced, err := cl.BFS(dg, src, WithWire(WireHybrid), WithTrace(NewTrace()))
	if err != nil {
		t.Fatal(err)
	}
	if bare.SimTime != traced.SimTime || bare.SimComm != traced.SimComm || bare.SimOverlap != traced.SimOverlap {
		t.Fatalf("tracing moved the clock: %g/%g/%g vs %g/%g/%g",
			bare.SimTime, bare.SimComm, bare.SimOverlap, traced.SimTime, traced.SimComm, traced.SimOverlap)
	}
}

// TestTraceGoldenDeterminism asserts the exported Chrome JSON is
// byte-identical across runs of the same configuration.
func TestTraceGoldenDeterminism(t *testing.T) {
	export := func() []byte {
		cl, dg, src := traceCluster(t, 2, 2)
		tr := NewTrace()
		if _, err := cl.SSSP(dg, src, WithWire(WireHybrid), WithDelta(64), WithTrace(tr)); err != nil {
			t.Fatal(err)
		}
		data, err := tr.Chrome()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("trace export not deterministic: %d vs %d bytes", len(a), len(b))
	}
}

// TestTraceCorruptionDetected asserts the checker rejects a trace whose
// totals no longer match its spans (a deliberate 10% clock inflation).
func TestTraceCorruptionDetected(t *testing.T) {
	cl, dg, src := traceCluster(t, 1, 4)
	tr := NewTrace()
	if _, err := cl.BFS(dg, src, WithTrace(tr)); err != nil {
		t.Fatal(err)
	}
	data, err := tr.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := trace.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Check(doc); err != nil {
		t.Fatalf("uncorrupted trace must pass: %v", err)
	}
	for rank := range doc.Totals {
		doc.Totals[rank].Clock *= 1.10
		break
	}
	if _, err := trace.Check(doc); err == nil {
		t.Fatal("corrupted totals passed the checker")
	}
}

// TestMultiBFSTrace covers the batched multi-source engine's level
// spans through the same pipeline.
func TestMultiBFSTrace(t *testing.T) {
	cl, dg, src := traceCluster(t, 2, 2)
	tr := NewTrace()
	res, err := cl.MultiBFS(dg, []Vertex{src, src + 1, src + 2}, WithWire(WireHybrid), WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	_, d, err := traceverify.Export(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := traceverify.BFS(d, &res.Result); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsPublish asserts a run publishes its statistics into the
// registry and the snapshot is readable.
func TestMetricsPublish(t *testing.T) {
	cl, dg, src := traceCluster(t, 2, 2)
	m := NewMetrics()
	res, err := cl.BFS(dg, src, WithWire(WireHybrid), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("bfs_expand_words_total").Value(); got != res.TotalExpandWords {
		t.Fatalf("bfs_expand_words_total = %d, want %d", got, res.TotalExpandWords)
	}
	if got := m.Counter("bfs_levels_total").Value(); got != int64(len(res.PerLevel)) {
		t.Fatalf("bfs_levels_total = %d, want %d", got, len(res.PerLevel))
	}
	if got := m.Gauge("bfs_sim_time_s").Value(); got != res.SimTime {
		t.Fatalf("bfs_sim_time_s = %g, want %g", got, res.SimTime)
	}
	text := m.Text()
	for _, want := range []string{"bfs_runs_total 1", "bfs_sim_time_s ", "bfs_level_exec_seconds_count"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text snapshot missing %q:\n%s", want, text)
		}
	}
	// A second run accumulates counters.
	if _, err := cl.SSSP(dg, src, WithDelta(128), WithMetrics(m)); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("sssp_runs_total").Value(); got != 1 {
		t.Fatalf("sssp_runs_total = %d, want 1", got)
	}
	if !bytes.Contains(m.JSON(), []byte(`"sssp_relaxations_total"`)) {
		t.Fatal("metrics JSON snapshot missing sssp_relaxations_total")
	}
}
