package bgl

import (
	"context"
	"time"

	"repro/internal/analytic"
	"repro/internal/bfs"
	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/frontier"
	"repro/internal/search"
	"repro/internal/sssp"
)

// searchConfig is the unified option target: one BFS-family and one
// SSSP-family options struct, configured together so a single Option
// vocabulary serves every search algorithm. Shared knobs (WithWire,
// WithChunkWords, WithOccupancy) write both halves; algorithm-specific
// knobs write only theirs and are ignored by the other family's runs.
type searchConfig struct {
	bfs  bfs.Options
	sssp sssp.Options
}

// newSearchConfig returns the production defaults for every family,
// searching from source.
func newSearchConfig(source Vertex) searchConfig {
	return searchConfig{
		bfs:  bfs.DefaultOptions(source),
		sssp: sssp.DefaultOptions(source),
	}
}

func (c *searchConfig) apply(opts []Option) {
	for _, fn := range opts {
		if fn != nil {
			fn(c)
		}
	}
}

// Option adjusts a search run. One option vocabulary serves every
// algorithm and partitioning: the shared knobs (WithWire,
// WithChunkWords, WithOccupancy) apply to BFS, multi-source BFS and
// Δ-stepping SSSP alike; algorithm-specific options (WithDirection,
// WithDelta, ...) are silently ignored by runs of the other family.
// MultiBFS additionally ignores the single-source traversal-shape
// options — see its doc comment for the exact carve-out.
type Option func(*searchConfig)

// SSSPOption is the former Δ-stepping-specific option type.
//
// Deprecated: the options surface is unified — every Option works with
// Cluster.SSSP. SSSPOption is kept as an alias so existing code
// compiles unchanged.
type SSSPOption = Option

// ExpandAlg and FoldAlg re-export the collective algorithm selectors.
type (
	ExpandAlg = bfs.ExpandAlg
	FoldAlg   = bfs.FoldAlg
)

// Expand algorithm choices (§2.2, §3.2.2).
const (
	ExpandTargeted  = bfs.ExpandTargeted
	ExpandAllGather = bfs.ExpandAllGather
	ExpandTwoPhase  = bfs.ExpandTwoPhase
)

// Fold algorithm choices (§3.2.2).
const (
	FoldTwoPhase        = bfs.FoldTwoPhase
	FoldDirect          = bfs.FoldDirect
	FoldTwoPhaseNoUnion = bfs.FoldTwoPhaseNoUnion
	FoldBruck           = bfs.FoldBruck
)

// Direction re-exports the per-level traversal direction policy.
type Direction = bfs.Direction

// Direction policy choices: the paper's top-down expansion, the
// bottom-up parent search, or the per-level adaptive hybrid.
const (
	TopDown             = bfs.TopDown
	BottomUp            = bfs.BottomUp
	DirectionOptimizing = bfs.DirectionOptimizing
)

// WireMode re-exports the wire-encoding selector for vertex-set
// payloads.
type WireMode = frontier.WireMode

// Wire encodings for vertex-set payloads: plain vertex lists, bitmaps,
// whichever of the two is fewer words per payload, or the chunked
// hybrid container codec (delta-varint lists / bitmaps / run-length
// extents per 4096-id chunk, never more words than WireAuto).
const (
	WireSparse = frontier.WireSparse
	WireDense  = frontier.WireDense
	WireAuto   = frontier.WireAuto
	WireHybrid = frontier.WireHybrid
)

// ContainerHist re-exports the hybrid codec's container histogram (see
// Result.Containers and LevelStats.Containers).
type ContainerHist = frontier.ContainerHist

// Shared options — these apply to every search algorithm.

// WithWire selects the wire encoding of vertex-set payloads: BFS
// expand frontiers and union-fold sets, multi-source lane-OR
// frontiers, and SSSP relax-request sets all ride the same codec.
func WithWire(m WireMode) Option {
	return func(c *searchConfig) { c.bfs.Wire = m; c.sssp.Wire = m }
}

// WithChunkWords caps physical messages at n words (§3.1 fixed
// buffers) in every algorithm; 0 disables chunking.
func WithChunkWords(n int) Option {
	return func(c *searchConfig) { c.bfs.ChunkWords = n; c.sssp.ChunkWords = n }
}

// WithOccupancy sets the adaptive vertex sets' sparse→dense switch
// threshold — level frontiers and Δ-stepping buckets alike — as an
// occupancy fraction of the owned range.
func WithOccupancy(f float64) Option {
	return func(c *searchConfig) { c.bfs.FrontierOccupancy = f; c.sssp.FrontierOccupancy = f }
}

// WithAsync toggles the overlapped exchange schedule (on by default):
// every expand/fold/relax exchange posts its sends before any wait and
// streams received parts into the local scan, hiding wire time under
// the hash-probe compute that dominates the cost model. Results are
// identical either way; simulated execution time and the
// OverlapS/hidden-fraction statistics differ. WithAsync(false) selects
// the phase-synchronous baseline the paper describes.
func WithAsync(on bool) Option {
	return func(c *searchConfig) { c.bfs.Async = on; c.sssp.Async = on }
}

// WithCores models n compute cores per node and sizes the real worker
// pool to match. The simulated clock divides the pool-run loops'
// charges (top-down scans, bottom-up edge checks, lane sweeps,
// Δ-stepping relaxations, hybrid codec) by n — BG/L virtual-node mode
// (n=2) versus the co-processor default (n=1) — while serial phases
// (marks, sorts, min/OR-merges, collectives) stay undivided. Results,
// words, duplicate counts, and container histograms are bit-identical
// for every n; only the simulated and real clocks change. n <= 1 is
// the paper's single-core baseline.
func WithCores(n int) Option {
	return func(c *searchConfig) {
		c.bfs.Cores, c.sssp.Cores = n, n
		c.bfs.Workers, c.sssp.Workers = n, n
	}
}

// WithWorkers sizes the real per-rank worker pool without touching the
// cost model: wall-clock changes, every simulated number — clocks,
// words, Results — is bit-identical for any n. Use it to soak the
// deterministic-merge contract (e.g. under -race) or to decouple host
// parallelism from the modeled BG/L core count; n <= 1 runs the hot
// loops inline.
func WithWorkers(n int) Option {
	return func(c *searchConfig) { c.bfs.Workers, c.sssp.Workers = n, n }
}

// BFS-family options (ignored by SSSP runs).

// WithDirection selects the traversal direction policy.
func WithDirection(d Direction) Option {
	return func(c *searchConfig) { c.bfs.Direction = d }
}

// WithDOAlpha tunes the direction-optimizing switch: a level runs
// bottom-up when alpha x (frontier out-degree) >= (unlabeled
// out-degree).
func WithDOAlpha(alpha float64) Option {
	return func(c *searchConfig) { c.bfs.DOAlpha = alpha }
}

// WithExpand selects the expand collective.
func WithExpand(a ExpandAlg) Option {
	return func(c *searchConfig) { c.bfs.Expand = a }
}

// WithFold selects the fold collective.
func WithFold(a FoldAlg) Option {
	return func(c *searchConfig) { c.bfs.Fold = a }
}

// WithSentCache toggles the sent-neighbors optimization (§2.4.3).
func WithSentCache(on bool) Option {
	return func(c *searchConfig) { c.bfs.SentCache = on }
}

// WithMaxLevels bounds the search depth (BFS levels or multi-source
// sweeps).
func WithMaxLevels(n int) Option {
	return func(c *searchConfig) { c.bfs.MaxLevels = n }
}

// Robustness: fault injection and checkpoint/restart. These apply to
// every search algorithm (checkpointing to the uni-directional
// single-source drivers only — see WithCheckpoint).

// FaultPlan re-exports the seeded deterministic fault plan the
// simulated transport consults for every point-to-point message: bit
// corruption, drops, duplicates, bounded delays, transient link
// outages and straggler ranks, each a pure hash of the message
// coordinates (see internal/fault). Build one directly, with
// ParseFaultPlan, or with CannedFaultPlan.
type FaultPlan = fault.Plan

// FaultOutage re-exports a transient link-down window.
type FaultOutage = fault.Outage

// FaultStats re-exports the per-run fault/recovery counters surfaced
// as Result.Faults and SSSPResult.Faults.
type FaultStats = comm.FaultStats

// ParseFaultPlan builds a fault plan from bfsrun's -fault spec format,
// e.g. "seed=42,corrupt=0.01,drop=0.01,outage=*>0@100us-300us", or
// "canned" / "canned:SEED" for the chaos-smoke plan.
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.Parse(spec) }

// CannedFaultPlan returns the chaos-smoke plan: every fault class at
// rates that exercise the recovery protocol while staying far below
// the retry budget, one straggler, and one early transient outage.
func CannedFaultPlan(seed uint64) *FaultPlan { return fault.Canned(seed) }

// HostileFaultPlan returns a plan no retry protocol survives: every
// message corrupted on every attempt with a deliberately small budget,
// so the first exchange deterministically exhausts its retries and the
// rank panics. It exists to drill supervision paths (graphd's replica
// quarantine, the chaos harness), not to model any real network.
func HostileFaultPlan(seed uint64) *FaultPlan { return fault.Hostile(seed) }

// WithFault injects the plan's faults into every message of the run.
// Any plan below the retry budget leaves Levels/Dist and every word
// and duplicate count identical to the fault-free run; only the
// simulated times and the Faults counters differ.
func WithFault(p *FaultPlan) Option {
	return func(c *searchConfig) { c.bfs.Fault = p; c.sssp.Fault = p }
}

// Cancellation: cooperative per-query deadlines. A run with a cancel
// hook installed polls it at every level / sweep / epoch boundary and,
// when it fires, stops collectively (every rank agrees at the same
// boundary) and returns the partial Result ALONGSIDE a *Canceled
// error — callers that want the partial labeling check for it with
// errors.As. Runs without a hook pay nothing and stay byte-identical
// to earlier releases.

// Canceled re-exports the cooperative-cancellation error: the run
// completed Done whole units (Unit "level", "sweep", or "epoch")
// before stopping, with the hook's reason in Cause.
type Canceled = search.Canceled

// WithCancel installs a cooperative cancellation hook, polled with the
// rank's simulated clock (in seconds) at every level / sweep / epoch
// boundary. A non-nil return cancels the run. The hook must be safe
// for concurrent use — every rank polls it. Multiple cancel options
// compose: the run stops when any hook fires.
func WithCancel(fn func(simSeconds float64) error) Option {
	return func(c *searchConfig) {
		c.bfs.Cancel = search.ChainCancel(c.bfs.Cancel, fn)
		c.sssp.Cancel = search.ChainCancel(c.sssp.Cancel, fn)
	}
}

// WithContext cancels the run at the first boundary after ctx is done,
// with the context's cause as the Canceled reason.
func WithContext(ctx context.Context) Option { return WithCancel(search.ContextCancel(ctx)) }

// WithDeadline cancels the run at the first boundary after the wall
// clock passes t.
func WithDeadline(t time.Time) Option { return WithCancel(search.DeadlineCancel(t)) }

// WithSimBudget cancels the run once a rank's simulated clock exceeds
// the budget — a deterministic ceiling on the modeled execution one
// run may consume, independent of host speed.
func WithSimBudget(seconds float64) Option { return WithCancel(search.SimBudgetCancel(seconds)) }

// CheckpointPlan re-exports the checkpoint collection plan: where to
// halt (a BFS level / Δ-stepping epoch ordinal) and the per-rank state
// blobs deposited there.
type CheckpointPlan = checkpoint.Plan

// CheckpointSnapshot re-exports a collected snapshot — the unit
// WriteCheckpoint/ReadCheckpoint persist and WithRestore resumes from.
type CheckpointSnapshot = checkpoint.Snapshot

// NewCheckpoint returns a plan that halts the run at BFS level /
// Δ-stepping epoch ordinal at (counting completed units, so at=2 stops
// after two full levels) and collects every rank's engine and
// transport state.
func NewCheckpoint(at int) *CheckpointPlan { return checkpoint.NewPlan(at) }

// WriteCheckpoint persists a snapshot (atomically, via rename).
func WriteCheckpoint(path string, s *CheckpointSnapshot) error {
	return checkpoint.WriteFile(path, s)
}

// ReadCheckpoint loads a snapshot written by WriteCheckpoint,
// rejecting truncated or corrupted files.
func ReadCheckpoint(path string) (*CheckpointSnapshot, error) {
	return checkpoint.ReadFile(path)
}

// WithCheckpoint halts the run at the plan's level/epoch, deposits
// every rank's state into the plan, and returns the partial Result.
// Supported by the uni-directional single-source drivers (BFS, Search,
// Path, SSSP); the bi-directional and multi-source drivers and runs
// with WithTrace reject it.
func WithCheckpoint(p *CheckpointPlan) Option {
	return func(c *searchConfig) { c.bfs.Checkpoint = p; c.sssp.Checkpoint = p }
}

// WithRestore resumes a run from a snapshot instead of starting at the
// source. The workload must match the snapshot (same graph, mesh,
// source and options — enforced by fingerprint); the resumed Result is
// byte-identical to the uninterrupted run's, wall time aside.
func WithRestore(s *CheckpointSnapshot) Option {
	return func(c *searchConfig) { c.bfs.Restore = s; c.sssp.Restore = s }
}

// SSSP-family options (ignored by BFS runs).

// WithDelta sets the Δ-stepping bucket width: 0 selects the
// max(1, maxWeight/avgDegree) heuristic, DeltaInf the single-bucket
// Bellman-Ford degenerate; Δ at or below the minimum edge weight
// settles buckets Dijkstra-like.
func WithDelta(delta uint32) Option {
	return func(c *searchConfig) { c.sssp.Delta = delta }
}

// Deprecated aliases — the pre-redesign option names. Each is a thin
// shim over its unified spelling; see the README migration table. They
// are compiled by the examples under `make deprecated-surface` so the
// compat layer cannot silently rot.

// WithFrontierWire selects the wire encoding for search payloads.
//
// Deprecated: use WithWire, which also covers SSSP relax requests.
func WithFrontierWire(m WireMode) Option { return WithWire(m) }

// WithSSSPWire selects the wire encoding of the relax-request sets.
//
// Deprecated: use WithWire; the codec family was always shared.
func WithSSSPWire(m WireMode) Option { return WithWire(m) }

// WithFrontierOccupancy sets the frontier sparse→dense threshold.
//
// Deprecated: use WithOccupancy, which also covers SSSP buckets.
func WithFrontierOccupancy(f float64) Option { return WithOccupancy(f) }

// WithSSSPFrontierOccupancy sets the buckets' sparse→dense threshold.
//
// Deprecated: use WithOccupancy; buckets and frontiers share the knob.
func WithSSSPFrontierOccupancy(f float64) Option { return WithOccupancy(f) }

// WithSSSPChunkWords caps physical SSSP messages at n words.
//
// Deprecated: use WithChunkWords, which chunks every algorithm.
func WithSSSPChunkWords(n int) Option { return WithChunkWords(n) }

// Analytic re-exports (§3.1, Figure 6b).

// Gamma is the column-occupancy probability γ(m) of §3.1.
func Gamma(m, n, k float64) float64 { return analytic.Gamma(m, n, k) }

// Expected1DFold is the expected 1D per-processor fold length.
func Expected1DFold(n, k float64, p int) float64 { return analytic.Expected1DFold(n, k, p) }

// Expected2DExpand is the expected 2D per-processor expand length.
func Expected2DExpand(n, k float64, r, c int) float64 { return analytic.Expected2DExpand(n, k, r, c) }

// Expected2DFold is the expected 2D per-processor fold length.
func Expected2DFold(n, k float64, r, c int) float64 { return analytic.Expected2DFold(n, k, r, c) }

// CrossoverK solves for the degree at which 1D and 2D volumes match
// (Figure 6b).
func CrossoverK(n float64, p int, kMax float64) (float64, error) {
	return analytic.CrossoverK(n, p, kMax)
}
