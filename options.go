package bgl

import (
	"repro/internal/analytic"
	"repro/internal/bfs"
	"repro/internal/frontier"
	"repro/internal/sssp"
)

// searchConfig is the unified option target: one BFS-family and one
// SSSP-family options struct, configured together so a single Option
// vocabulary serves every search algorithm. Shared knobs (WithWire,
// WithChunkWords, WithOccupancy) write both halves; algorithm-specific
// knobs write only theirs and are ignored by the other family's runs.
type searchConfig struct {
	bfs  bfs.Options
	sssp sssp.Options
}

// newSearchConfig returns the production defaults for every family,
// searching from source.
func newSearchConfig(source Vertex) searchConfig {
	return searchConfig{
		bfs:  bfs.DefaultOptions(source),
		sssp: sssp.DefaultOptions(source),
	}
}

func (c *searchConfig) apply(opts []Option) {
	for _, fn := range opts {
		if fn != nil {
			fn(c)
		}
	}
}

// Option adjusts a search run. One option vocabulary serves every
// algorithm and partitioning: the shared knobs (WithWire,
// WithChunkWords, WithOccupancy) apply to BFS, multi-source BFS and
// Δ-stepping SSSP alike; algorithm-specific options (WithDirection,
// WithDelta, ...) are silently ignored by runs of the other family.
// MultiBFS additionally ignores the single-source traversal-shape
// options — see its doc comment for the exact carve-out.
type Option func(*searchConfig)

// SSSPOption is the former Δ-stepping-specific option type.
//
// Deprecated: the options surface is unified — every Option works with
// Cluster.SSSP. SSSPOption is kept as an alias so existing code
// compiles unchanged.
type SSSPOption = Option

// ExpandAlg and FoldAlg re-export the collective algorithm selectors.
type (
	ExpandAlg = bfs.ExpandAlg
	FoldAlg   = bfs.FoldAlg
)

// Expand algorithm choices (§2.2, §3.2.2).
const (
	ExpandTargeted  = bfs.ExpandTargeted
	ExpandAllGather = bfs.ExpandAllGather
	ExpandTwoPhase  = bfs.ExpandTwoPhase
)

// Fold algorithm choices (§3.2.2).
const (
	FoldTwoPhase        = bfs.FoldTwoPhase
	FoldDirect          = bfs.FoldDirect
	FoldTwoPhaseNoUnion = bfs.FoldTwoPhaseNoUnion
	FoldBruck           = bfs.FoldBruck
)

// Direction re-exports the per-level traversal direction policy.
type Direction = bfs.Direction

// Direction policy choices: the paper's top-down expansion, the
// bottom-up parent search, or the per-level adaptive hybrid.
const (
	TopDown             = bfs.TopDown
	BottomUp            = bfs.BottomUp
	DirectionOptimizing = bfs.DirectionOptimizing
)

// WireMode re-exports the wire-encoding selector for vertex-set
// payloads.
type WireMode = frontier.WireMode

// Wire encodings for vertex-set payloads: plain vertex lists, bitmaps,
// whichever of the two is fewer words per payload, or the chunked
// hybrid container codec (delta-varint lists / bitmaps / run-length
// extents per 4096-id chunk, never more words than WireAuto).
const (
	WireSparse = frontier.WireSparse
	WireDense  = frontier.WireDense
	WireAuto   = frontier.WireAuto
	WireHybrid = frontier.WireHybrid
)

// ContainerHist re-exports the hybrid codec's container histogram (see
// Result.Containers and LevelStats.Containers).
type ContainerHist = frontier.ContainerHist

// Shared options — these apply to every search algorithm.

// WithWire selects the wire encoding of vertex-set payloads: BFS
// expand frontiers and union-fold sets, multi-source lane-OR
// frontiers, and SSSP relax-request sets all ride the same codec.
func WithWire(m WireMode) Option {
	return func(c *searchConfig) { c.bfs.Wire = m; c.sssp.Wire = m }
}

// WithChunkWords caps physical messages at n words (§3.1 fixed
// buffers) in every algorithm; 0 disables chunking.
func WithChunkWords(n int) Option {
	return func(c *searchConfig) { c.bfs.ChunkWords = n; c.sssp.ChunkWords = n }
}

// WithOccupancy sets the adaptive vertex sets' sparse→dense switch
// threshold — level frontiers and Δ-stepping buckets alike — as an
// occupancy fraction of the owned range.
func WithOccupancy(f float64) Option {
	return func(c *searchConfig) { c.bfs.FrontierOccupancy = f; c.sssp.FrontierOccupancy = f }
}

// WithAsync toggles the overlapped exchange schedule (on by default):
// every expand/fold/relax exchange posts its sends before any wait and
// streams received parts into the local scan, hiding wire time under
// the hash-probe compute that dominates the cost model. Results are
// identical either way; simulated execution time and the
// OverlapS/hidden-fraction statistics differ. WithAsync(false) selects
// the phase-synchronous baseline the paper describes.
func WithAsync(on bool) Option {
	return func(c *searchConfig) { c.bfs.Async = on; c.sssp.Async = on }
}

// BFS-family options (ignored by SSSP runs).

// WithDirection selects the traversal direction policy.
func WithDirection(d Direction) Option {
	return func(c *searchConfig) { c.bfs.Direction = d }
}

// WithDOAlpha tunes the direction-optimizing switch: a level runs
// bottom-up when alpha x (frontier out-degree) >= (unlabeled
// out-degree).
func WithDOAlpha(alpha float64) Option {
	return func(c *searchConfig) { c.bfs.DOAlpha = alpha }
}

// WithExpand selects the expand collective.
func WithExpand(a ExpandAlg) Option {
	return func(c *searchConfig) { c.bfs.Expand = a }
}

// WithFold selects the fold collective.
func WithFold(a FoldAlg) Option {
	return func(c *searchConfig) { c.bfs.Fold = a }
}

// WithSentCache toggles the sent-neighbors optimization (§2.4.3).
func WithSentCache(on bool) Option {
	return func(c *searchConfig) { c.bfs.SentCache = on }
}

// WithMaxLevels bounds the search depth (BFS levels or multi-source
// sweeps).
func WithMaxLevels(n int) Option {
	return func(c *searchConfig) { c.bfs.MaxLevels = n }
}

// SSSP-family options (ignored by BFS runs).

// WithDelta sets the Δ-stepping bucket width: 0 selects the
// max(1, maxWeight/avgDegree) heuristic, DeltaInf the single-bucket
// Bellman-Ford degenerate; Δ at or below the minimum edge weight
// settles buckets Dijkstra-like.
func WithDelta(delta uint32) Option {
	return func(c *searchConfig) { c.sssp.Delta = delta }
}

// Deprecated aliases — the pre-redesign option names. Each is a thin
// shim over its unified spelling; see the README migration table. They
// are compiled by the examples under `make deprecated-surface` so the
// compat layer cannot silently rot.

// WithFrontierWire selects the wire encoding for search payloads.
//
// Deprecated: use WithWire, which also covers SSSP relax requests.
func WithFrontierWire(m WireMode) Option { return WithWire(m) }

// WithSSSPWire selects the wire encoding of the relax-request sets.
//
// Deprecated: use WithWire; the codec family was always shared.
func WithSSSPWire(m WireMode) Option { return WithWire(m) }

// WithFrontierOccupancy sets the frontier sparse→dense threshold.
//
// Deprecated: use WithOccupancy, which also covers SSSP buckets.
func WithFrontierOccupancy(f float64) Option { return WithOccupancy(f) }

// WithSSSPFrontierOccupancy sets the buckets' sparse→dense threshold.
//
// Deprecated: use WithOccupancy; buckets and frontiers share the knob.
func WithSSSPFrontierOccupancy(f float64) Option { return WithOccupancy(f) }

// WithSSSPChunkWords caps physical SSSP messages at n words.
//
// Deprecated: use WithChunkWords, which chunks every algorithm.
func WithSSSPChunkWords(n int) Option { return WithChunkWords(n) }

// Analytic re-exports (§3.1, Figure 6b).

// Gamma is the column-occupancy probability γ(m) of §3.1.
func Gamma(m, n, k float64) float64 { return analytic.Gamma(m, n, k) }

// Expected1DFold is the expected 1D per-processor fold length.
func Expected1DFold(n, k float64, p int) float64 { return analytic.Expected1DFold(n, k, p) }

// Expected2DExpand is the expected 2D per-processor expand length.
func Expected2DExpand(n, k float64, r, c int) float64 { return analytic.Expected2DExpand(n, k, r, c) }

// Expected2DFold is the expected 2D per-processor fold length.
func Expected2DFold(n, k float64, r, c int) float64 { return analytic.Expected2DFold(n, k, r, c) }

// CrossoverK solves for the degree at which 1D and 2D volumes match
// (Figure 6b).
func CrossoverK(n float64, p int, kMax float64) (float64, error) {
	return analytic.CrossoverK(n, p, kMax)
}
