package bgl

import (
	"repro/internal/analytic"
	"repro/internal/bfs"
	"repro/internal/frontier"
	"repro/internal/sssp"
)

// Option adjusts search behavior.
type Option func(*bfs.Options)

func applyOptions(o *bfs.Options, opts []Option) {
	for _, fn := range opts {
		fn(o)
	}
}

// ExpandAlg and FoldAlg re-export the collective algorithm selectors.
type (
	ExpandAlg = bfs.ExpandAlg
	FoldAlg   = bfs.FoldAlg
)

// Expand algorithm choices (§2.2, §3.2.2).
const (
	ExpandTargeted  = bfs.ExpandTargeted
	ExpandAllGather = bfs.ExpandAllGather
	ExpandTwoPhase  = bfs.ExpandTwoPhase
)

// Fold algorithm choices (§3.2.2).
const (
	FoldTwoPhase        = bfs.FoldTwoPhase
	FoldDirect          = bfs.FoldDirect
	FoldTwoPhaseNoUnion = bfs.FoldTwoPhaseNoUnion
	FoldBruck           = bfs.FoldBruck
)

// Direction re-exports the per-level traversal direction policy.
type Direction = bfs.Direction

// Direction policy choices: the paper's top-down expansion, the
// bottom-up parent search, or the per-level adaptive hybrid.
const (
	TopDown             = bfs.TopDown
	BottomUp            = bfs.BottomUp
	DirectionOptimizing = bfs.DirectionOptimizing
)

// WireMode re-exports the frontier wire-encoding selector.
type WireMode = frontier.WireMode

// Frontier wire encodings: plain vertex lists, bitmaps, whichever of
// the two is fewer words per payload, or the chunked hybrid container
// codec (delta-varint lists / bitmaps / run-length extents per 4096-id
// chunk, never more words than WireAuto).
const (
	WireSparse = frontier.WireSparse
	WireDense  = frontier.WireDense
	WireAuto   = frontier.WireAuto
	WireHybrid = frontier.WireHybrid
)

// ContainerHist re-exports the hybrid codec's container histogram (see
// Result.Containers and LevelStats.Containers).
type ContainerHist = frontier.ContainerHist

// WithDirection selects the traversal direction policy.
func WithDirection(d Direction) Option { return func(o *bfs.Options) { o.Direction = d } }

// WithDOAlpha tunes the direction-optimizing switch: a level runs
// bottom-up when alpha x |frontier| >= |unlabeled|.
func WithDOAlpha(alpha float64) Option { return func(o *bfs.Options) { o.DOAlpha = alpha } }

// WithFrontierWire selects the wire encoding for top-down expand and
// union-fold payloads.
func WithFrontierWire(m WireMode) Option { return func(o *bfs.Options) { o.Wire = m } }

// WithFrontierOccupancy sets the adaptive frontier's sparse→dense
// switch threshold as an occupancy fraction of the owned range.
func WithFrontierOccupancy(f float64) Option {
	return func(o *bfs.Options) { o.FrontierOccupancy = f }
}

// WithExpand selects the expand collective.
func WithExpand(a ExpandAlg) Option { return func(o *bfs.Options) { o.Expand = a } }

// WithFold selects the fold collective.
func WithFold(a FoldAlg) Option { return func(o *bfs.Options) { o.Fold = a } }

// WithSentCache toggles the sent-neighbors optimization (§2.4.3).
func WithSentCache(on bool) Option { return func(o *bfs.Options) { o.SentCache = on } }

// WithChunkWords caps physical messages at n words (§3.1 fixed
// buffers); 0 disables chunking.
func WithChunkWords(n int) Option { return func(o *bfs.Options) { o.ChunkWords = n } }

// WithMaxLevels bounds the search depth.
func WithMaxLevels(n int) Option { return func(o *bfs.Options) { o.MaxLevels = n } }

// SSSPOption adjusts a Δ-stepping shortest-path run.
type SSSPOption func(*sssp.Options)

// WithDelta sets the Δ-stepping bucket width: 0 selects the
// max(1, maxWeight/avgDegree) heuristic, DeltaInf the single-bucket
// Bellman-Ford degenerate; Δ at or below the minimum edge weight
// settles buckets Dijkstra-like.
func WithDelta(delta uint32) SSSPOption { return func(o *sssp.Options) { o.Delta = delta } }

// WithSSSPWire selects the wire encoding of the relax-request vertex
// sets (the same codec family WithFrontierWire selects for BFS).
func WithSSSPWire(m WireMode) SSSPOption { return func(o *sssp.Options) { o.Wire = m } }

// WithSSSPChunkWords caps physical SSSP messages at n words (§3.1
// fixed buffers); 0 disables chunking.
func WithSSSPChunkWords(n int) SSSPOption { return func(o *sssp.Options) { o.ChunkWords = n } }

// WithSSSPFrontierOccupancy sets the buckets' sparse→dense switch
// threshold as an occupancy fraction of the owned range (the SSSP
// counterpart of WithFrontierOccupancy).
func WithSSSPFrontierOccupancy(f float64) SSSPOption {
	return func(o *sssp.Options) { o.FrontierOccupancy = f }
}

// Analytic re-exports (§3.1, Figure 6b).

// Gamma is the column-occupancy probability γ(m) of §3.1.
func Gamma(m, n, k float64) float64 { return analytic.Gamma(m, n, k) }

// Expected1DFold is the expected 1D per-processor fold length.
func Expected1DFold(n, k float64, p int) float64 { return analytic.Expected1DFold(n, k, p) }

// Expected2DExpand is the expected 2D per-processor expand length.
func Expected2DExpand(n, k float64, r, c int) float64 { return analytic.Expected2DExpand(n, k, r, c) }

// Expected2DFold is the expected 2D per-processor fold length.
func Expected2DFold(n, k float64, r, c int) float64 { return analytic.Expected2DFold(n, k, r, c) }

// CrossoverK solves for the degree at which 1D and 2D volumes match
// (Figure 6b).
func CrossoverK(n float64, p int, kMax float64) (float64, error) {
	return analytic.CrossoverK(n, p, kMax)
}
