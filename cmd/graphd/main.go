// Command graphd serves graph queries over HTTP/JSON from a long-lived
// process: the graph is loaded (or generated) and distributed over the
// simulated machine ONCE at startup, then concurrent queries share the
// resident engines. Concurrent single-source BFS queries are coalesced
// by the dynamic batcher into multi-source MultiBFS sweeps; SSSP and
// path queries go through a bounded worker queue with admission
// control.
//
// Endpoints:
//
//	POST /v1/bfs    {"source":s[,"target":t][,"levels":true]}
//	POST /v1/path   {"source":s,"target":t}
//	POST /v1/sssp   {"source":s[,"target":t][,"delta":d][,"dists":true]}
//	GET  /v1/stats  service statistics
//	GET  /metrics   metrics registry snapshot (?format=json for JSON)
//	GET  /healthz   liveness
//
// Usage:
//
//	graphd -n 1000000 -k 10 -r 8 -c 8
//	graphd -input graph.txt -addr 127.0.0.1:8080 -replicas 2
//	graphd -n 20000 -k 10 -weighted -addr 127.0.0.1:0 -portfile /tmp/graphd.port
//
// On SIGINT/SIGTERM the server drains: in-flight queries finish, new
// ones get 503, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	bgl "repro"
	"repro/internal/graphd"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; see -portfile)")
		portFile = flag.String("portfile", "", "write the bound host:port to this file once listening")
		n        = flag.Int("n", 100000, "vertices (when generating)")
		k        = flag.Float64("k", 10, "expected average degree (when generating)")
		seed     = flag.Int64("seed", 42, "graph seed (when generating)")
		input    = flag.String("input", "", "load the graph from an edge-list file instead of generating")
		weighted = flag.Bool("weighted", false, "generate a weighted graph (enables meaningful -maxw)")
		maxw     = flag.Uint("maxw", 0, "maximum edge weight for -weighted (0 = default)")
		r        = flag.Int("r", 2, "mesh rows R")
		c        = flag.Int("c", 2, "mesh columns C")
		partStr  = flag.String("part", "2d", "partitioning: 2d|1drow|1dcol")
		wireStr  = flag.String("wire", "hybrid", "frontier wire encoding: sparse|dense|auto|hybrid")
		cores    = flag.Int("cores", 1, "modeled compute cores per node")
		workers  = flag.Int("workers", 0, "real per-rank worker pool size (0 = -cores)")
		replicas = flag.Int("replicas", 1, "engine replicas (each a full distributed copy; bounds real concurrency)")
		window   = flag.Duration("window", graphd.DefaultWindow, "batching window (0 disables batching)")
		batch    = flag.Int("batch", bgl.MaxLanes, "max distinct sources per MultiBFS sweep (<= 64)")
		maxWait  = flag.Int("max-waiting", 0, "max batched BFS queries awaiting sweeps before 503 (0 = 4x -batch)")
		queue    = flag.Int("queue", graphd.DefaultQueueDepth, "bounded queue depth for path/sssp queries")
		qworkers = flag.Int("query-workers", 0, "goroutines draining the path/sssp queue (0 = -replicas)")
		faultStr = flag.String("fault", "", "deterministic fault plan for every sweep (e.g. canned:7 or seed=1,corrupt=0.01)")
		maxQuery = flag.Duration("max-query-time", 0, "server-side wall cap per query (0 = uncapped; timeout_ms may tighten)")
		maxSim   = flag.Float64("max-simexec", 0, "cap on simulated execution seconds per query (0 = uncapped)")
		chaosN   = flag.Int("chaos-panic-sweep", 0, "arm a one-shot drill: the Nth BFS sweep panics its replica (0 = off)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	part, ok := map[string]bgl.Partition{
		"2d": bgl.Part2D, "1drow": bgl.Part1DRow, "1dcol": bgl.Part1DCol,
	}[*partStr]
	if !ok {
		fail(fmt.Errorf("unknown partitioning %q", *partStr))
	}
	wire, ok := map[string]bgl.WireMode{
		"sparse": bgl.WireSparse, "dense": bgl.WireDense, "auto": bgl.WireAuto, "hybrid": bgl.WireHybrid,
	}[*wireStr]
	if !ok {
		fail(fmt.Errorf("unknown wire encoding %q", *wireStr))
	}

	var fplan *bgl.FaultPlan
	if *faultStr != "" {
		var perr error
		if fplan, perr = bgl.ParseFaultPlan(*faultStr); perr != nil {
			fail(perr)
		}
	}

	var g *bgl.Graph
	var err error
	switch {
	case *input != "":
		f, ferr := os.Open(*input)
		if ferr != nil {
			fail(ferr)
		}
		g, err = bgl.Load(f)
		f.Close()
	case *weighted:
		g, err = bgl.GenerateWeighted(*n, *k, *seed, bgl.WithMaxWeight(uint32(*maxw)))
	default:
		g, err = bgl.Generate(*n, *k, *seed)
	}
	if err != nil {
		fail(err)
	}

	fmt.Fprintf(os.Stderr, "graphd: distributing n=%d (%d edges, weighted=%v) over %dx%d part=%s, %d replica(s)...\n",
		g.N(), g.NumEdges(), g.Weighted(), *r, *c, *partStr, *replicas)
	t0 := time.Now()
	srv, err := graphd.NewServer(graphd.Config{
		Graph: g, R: *r, C: *c, Partition: part, Wire: wire,
		Cores: *cores, Workers: *workers, Replicas: *replicas,
		Window: *window, MaxBatch: *batch, MaxWaiting: *maxWait,
		QueueDepth: *queue, QueryWorkers: *qworkers,
		Fault: fplan, MaxQueryWall: *maxQuery, MaxSimExec: *maxSim,
		ChaosPanicSweep: *chaosN,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "graphd: distributed in %v\n", time.Since(t0).Round(time.Millisecond))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		// Written last thing before serving: a reader that sees the file
		// can connect.
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "graphd: serving on http://%s (window=%v batch=%d queue=%d)\n",
		bound, *window, *batch, *queue)

	// The hardened wrapper sets read-header/read/idle timeouts so a
	// slow-loris client cannot pin connections open.
	hs := graphd.NewHTTPServer(srv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "graphd: %v: draining...\n", sig)
	case err := <-serveErr:
		fail(fmt.Errorf("graphd: serve: %w", err))
	}

	// Drain: stop accepting connections, let in-flight handlers finish,
	// then release the engines.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "graphd: shutdown: %v\n", err)
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "graphd: drained, bye")
}
