// Command tracecheck verifies Chrome trace-event exports written by
// bfsrun -trace. For each file it re-parses the event stream and
// re-derives, from the spans alone, the simulated-clock invariant the
// runtime maintains per rank:
//
//	clock == comp + comm - overlap,  overlap <= comm
//
// together with the structural rules (main-track cost spans tile
// [0, clock] without overlap, structural spans nest properly, and
// per-level/per-epoch spans align index-wise across ranks). It then
// prints the per-rank ledger decomposition and the per-phase critical
// paths. A trace that was truncated, hand-edited, or produced by a
// runtime whose ledgers drifted from its spans fails loudly.
//
// Usage:
//
//	bfsrun -n 100000 -k 10 -trace out.json
//	tracecheck out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/trace"
)

func main() {
	quiet := flag.Bool("q", false, "verify only, print nothing but errors")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-q] trace.json...")
		os.Exit(2)
	}
	bad := false
	for _, path := range flag.Args() {
		if err := checkFile(path, *quiet); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

func checkFile(path string, quiet bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	doc, err := trace.Parse(data)
	if err != nil {
		return err
	}
	if len(doc.Events) == 0 {
		// Valid JSON with nothing to verify is how a file looks when a
		// writer died before its first flush; "all invariants hold" on
		// zero spans would be vacuous and misleading.
		return fmt.Errorf("no trace events — truncated or not a trace export")
	}
	d, err := trace.Check(doc)
	if err != nil {
		return err
	}
	if quiet {
		return nil
	}

	fmt.Printf("%s: %d events across %d ranks — all invariants hold\n",
		path, len(doc.Events), len(d.Ranks))
	fmt.Printf("simulated: clock %.6fs, comm %.6fs, overlap %.6fs hidden (maxima over ranks)\n",
		d.MaxClock, d.MaxComm, d.MaxOverlap)

	ranks := make([]int, 0, len(d.Ranks))
	for r := range d.Ranks {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	fmt.Println("\nrank      clock       comp       comm    overlap   (re-derived from spans)")
	for _, r := range ranks {
		rt := d.Ranks[r]
		fmt.Printf("%4d  %9.6f  %9.6f  %9.6f  %9.6f\n",
			r, rt.Clock, rt.SumComp, rt.SumComm+rt.SumOverlap, rt.SumOverlap)
	}

	printPhases := func(kind string, pts []trace.PhaseTotals) {
		if len(pts) == 0 {
			return
		}
		fmt.Printf("\n%-5s  name    critical-path-s  expand-words  fold-words  edges\n", kind)
		for i, pt := range pts {
			fmt.Printf("%5d  %-6s  %15.6f  %12d  %10d  %6d\n",
				i, pt.Name, pt.MaxS, pt.Args["expand_words"], pt.Args["fold_words"], pt.Args["edges"])
		}
	}
	printPhases("level", d.Levels)
	printPhases("epoch", d.Epochs)
	return nil
}
