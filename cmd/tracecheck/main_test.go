package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	bgl "repro"
	"repro/internal/traceverify"
)

// exportTrace runs a small traced BFS and returns the verified Chrome
// trace-event export — the same bytes bfsrun -trace writes.
func exportTrace(t *testing.T) []byte {
	t.Helper()
	g, err := bgl.Generate(4000, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := bgl.NewCluster(bgl.ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	rec := bgl.NewTrace()
	if _, err := cl.BFS(dg, g.LargestComponentVertex(), bgl.WithTrace(rec)); err != nil {
		t.Fatal(err)
	}
	data, _, err := traceverify.Export(rec)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCheckFileValid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ok.json")
	if err := os.WriteFile(path, exportTrace(t), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkFile(path, true); err != nil {
		t.Fatalf("valid export rejected: %v", err)
	}
}

// TestCheckFileCorruption: a trace file caught mid-write — truncated at
// any byte — or otherwise damaged must come back as an error from
// checkFile, never a panic or a false "all invariants hold".
func TestCheckFileCorruption(t *testing.T) {
	raw := exportTrace(t)
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Every truncation point (stride keeps the test fast; the endpoints
	// and mid-JSON cuts are all covered).
	step := len(raw)/200 + 1
	for cut := 0; cut < len(raw); cut += step {
		if err := checkFile(write("trunc.json", raw[:cut]), true); err == nil {
			t.Fatalf("truncation at byte %d/%d accepted", cut, len(raw))
		}
	}

	// Valid JSON, wrong shape: an empty object has no events to check.
	if err := checkFile(write("empty.json", []byte("{}")), true); err == nil {
		t.Error("empty JSON object accepted")
	}
	// Binary garbage.
	if err := checkFile(write("garbage.bin", []byte{0xff, 0x00, 0x13, 0x37}), true); err == nil {
		t.Error("binary garbage accepted")
	}
	// A corrupted span duration: still perfectly valid JSON, but the
	// cost spans no longer tile the rank's clock, which the re-derived
	// invariant must catch.
	bad := append([]byte(nil), raw...)
	if i := bytes.Index(bad, []byte(`"dur":`)); i < 0 {
		t.Fatal("export has no dur field")
	} else {
		for j := i + 6; j < len(bad); j++ {
			if bad[j] >= '0' && bad[j] <= '8' {
				bad[j]++
				break
			}
		}
	}
	if err := checkFile(write("flipped.json", bad), true); err == nil {
		t.Error("corrupted span duration accepted")
	}
	// Missing file.
	if err := checkFile(filepath.Join(dir, "missing.json"), true); err == nil {
		t.Error("missing file accepted")
	}
}
