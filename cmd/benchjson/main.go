// Command benchjson runs the repository's headline benchmark
// configurations — the n=100k, k=10 Poisson traversal on a 4x4 mesh
// under every direction policy and wire encoding — and writes a
// machine-readable JSON baseline (BENCH_PR2.json by default) so later
// PRs can diff simulated execution time, exchange words, and edges
// scanned against a recorded trajectory. See README.md ("Perf
// trajectory") for the format.
//
// It additionally writes BENCH_PR4.json (-out4): the batched
// multi-source BFS baseline — one 64-lane MultiBFS sweep sequence on
// the same workload versus 64 independent BFS runs, with per-sweep
// word counts and the words ratio (the PR 4 acceptance metric requires
// the batch to move strictly fewer total wire words).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bfs"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/partition"
	"repro/internal/sssp"
)

// Level is one BFS level of a run.
type Level struct {
	Level        int     `json:"level"`
	Direction    string  `json:"direction"`
	Frontier     int64   `json:"frontier"`
	OccupancyPct float64 `json:"occupancy_pct"`
	ExpandWords  int64   `json:"expand_words"`
	FoldWords    int64   `json:"fold_words"`
	EdgesScanned int64   `json:"edges_scanned"`
}

// Run is one benchmark configuration's result.
type Run struct {
	Name         string  `json:"name"`
	Direction    string  `json:"direction"`
	Wire         string  `json:"wire"`
	SimExecS     float64 `json:"simexec_s"`
	SimCommS     float64 `json:"simcomm_s"`
	ExpandWords  int64   `json:"expand_words"`
	FoldWords    int64   `json:"fold_words"`
	TotalWords   int64   `json:"total_words"`
	EdgesScanned int64   `json:"edges_scanned"`
	Levels       []Level `json:"levels"`
}

// SSSPRun is one Δ-stepping configuration's result on the weighted
// variant of the headline workload.
type SSSPRun struct {
	Name        string  `json:"name"`
	Delta       uint32  `json:"delta"`
	Wire        string  `json:"wire"`
	SimExecS    float64 `json:"simexec_s"`
	SimCommS    float64 `json:"simcomm_s"`
	Buckets     int     `json:"buckets"`
	Epochs      int     `json:"epochs"`
	Relaxations int64   `json:"relaxations"`
	ReSettles   int64   `json:"resettles"`
	TotalWords  int64   `json:"total_words"`
}

// Baseline is the file-level document.
type Baseline struct {
	N    int     `json:"n"`
	K    float64 `json:"k"`
	Seed int64   `json:"seed"`
	Mesh string  `json:"mesh"`
	Runs []Run   `json:"runs"`
	// SSSP sweeps the Δ-stepping bucket width on the same workload
	// with uniform [1,256] edge weights; DeltaSweep summarizes the
	// U-shape acceptance metric (some interior Δ beats both degenerate
	// extremes in simulated execution time).
	SSSP       []SSSPRun `json:"sssp"`
	DeltaSweep struct {
		DijkstraLikeExecS     float64 `json:"dijkstra_like_simexec_s"`
		BellmanFordExecS      float64 `json:"bellman_ford_simexec_s"`
		BestInteriorDelta     uint32  `json:"best_interior_delta"`
		BestInteriorExecS     float64 `json:"best_interior_simexec_s"`
		InteriorBeatsExtremes bool    `json:"interior_beats_extremes"`
	} `json:"delta_sweep"`
	// MidOccupancy summarizes the acceptance metric: exchange words on
	// the mid-occupancy levels — global frontier occupancy in
	// [0.1%, 10%), the middle regime between the list-optimal sparse
	// extreme and the bitmap-optimal dense levels — under wire=auto vs
	// wire=hybrid, top-down.
	MidOccupancy struct {
		AutoWords       int64   `json:"auto_words"`
		HybridWords     int64   `json:"hybrid_words"`
		AutoOverHybrid  float64 `json:"auto_over_hybrid"`
		OccupancyLowPct float64 `json:"occupancy_low_pct"`
		OccupancyHiPct  float64 `json:"occupancy_high_pct"`
	} `json:"mid_occupancy"`
}

const (
	midOccLowPct = 0.1
	midOccHiPct  = 10
)

// MultiSweep is one multi-source sweep's statistics.
type MultiSweep struct {
	Sweep        int   `json:"sweep"`
	Frontier     int64 `json:"frontier"`
	ExpandWords  int64 `json:"expand_words"`
	FoldWords    int64 `json:"fold_words"`
	LaneLabels   int64 `json:"lane_labels"`
	EdgesScanned int64 `json:"edges_scanned"`
}

// MultiBFSBench compares one b-lane batched run against b independent
// single-source runs on the same stores and wire mode.
type MultiBFSBench struct {
	B                 int          `json:"b"`
	Wire              string       `json:"wire"`
	Sweeps            int          `json:"sweeps"`
	MultiWords        int64        `json:"multi_words"`
	MultiSimExecS     float64      `json:"multi_simexec_s"`
	IndependentWords  int64        `json:"independent_words"`
	IndependentExecS  float64      `json:"independent_simexec_s"`
	IndependentRuns   int          `json:"independent_runs"`
	WordsRatio        float64      `json:"independent_over_multi_words"`
	StrictlyFewer     bool         `json:"multi_strictly_fewer_words"`
	PerSweep          []MultiSweep `json:"per_sweep"`
	LaneLevelsChecked bool         `json:"lane_levels_verified"`
}

// Baseline4 is the PR 4 document: the multi-source acceptance metric.
type Baseline4 struct {
	N        int           `json:"n"`
	K        float64       `json:"k"`
	Seed     int64         `json:"seed"`
	Mesh     string        `json:"mesh"`
	MultiBFS MultiBFSBench `json:"multi_bfs"`
}

func main() {
	var (
		out  = flag.String("out", "BENCH_PR2.json", "output file")
		out4 = flag.String("out4", "BENCH_PR4.json", "multi-source baseline output file (empty = skip)")
		n    = flag.Int("n", 100000, "vertices")
		k    = flag.Float64("k", 10, "expected average degree")
		seed = flag.Int64("seed", 9, "graph seed")
		r    = flag.Int("r", 4, "mesh rows")
		c    = flag.Int("c", 4, "mesh columns")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w, err := harness.BuildWorkload(*n, *k, *seed, *r, *c)
	if err != nil {
		fail(err)
	}
	src := graph.LargestComponentVertex(w.Graph)

	doc := Baseline{N: *n, K: *k, Seed: *seed, Mesh: fmt.Sprintf("%dx%d", *r, *c)}
	type cfg struct {
		name string
		dir  bfs.Direction
		wire frontier.WireMode
	}
	cfgs := []cfg{
		{"topdown-sparse", bfs.TopDown, frontier.WireSparse},
		{"topdown-dense", bfs.TopDown, frontier.WireDense},
		{"topdown-auto", bfs.TopDown, frontier.WireAuto},
		{"topdown-hybrid", bfs.TopDown, frontier.WireHybrid},
		{"dirop-sparse", bfs.DirectionOptimizing, frontier.WireSparse},
		{"dirop-auto", bfs.DirectionOptimizing, frontier.WireAuto},
		{"dirop-hybrid", bfs.DirectionOptimizing, frontier.WireHybrid},
	}
	byName := map[string]*bfs.Result{}
	for _, cf := range cfgs {
		opts := bfs.DefaultOptions(src)
		opts.Direction = cf.dir
		opts.Wire = cf.wire
		res, err := bfs.Run2D(w.World, w.Stores, opts)
		if err != nil {
			fail(err)
		}
		byName[cf.name] = res
		run := Run{
			Name:         cf.name,
			Direction:    cf.dir.String(),
			Wire:         cf.wire.String(),
			SimExecS:     res.SimTime,
			SimCommS:     res.SimComm,
			ExpandWords:  res.TotalExpandWords,
			FoldWords:    res.TotalFoldWords,
			TotalWords:   res.TotalExpandWords + res.TotalFoldWords,
			EdgesScanned: res.TotalEdgesScanned,
		}
		for _, ls := range res.PerLevel {
			run.Levels = append(run.Levels, Level{
				Level:        int(ls.Level),
				Direction:    ls.Direction.String(),
				Frontier:     ls.Frontier,
				OccupancyPct: 100 * float64(ls.Frontier) / float64(*n),
				ExpandWords:  ls.ExpandWords,
				FoldWords:    ls.FoldWords,
				EdgesScanned: ls.EdgesScanned,
			})
		}
		doc.Runs = append(doc.Runs, run)
	}

	// Acceptance metric: hybrid vs auto on the mid-occupancy levels.
	auto, hybrid := byName["topdown-auto"], byName["topdown-hybrid"]
	m := &doc.MidOccupancy
	m.OccupancyLowPct, m.OccupancyHiPct = midOccLowPct, midOccHiPct
	for l, ls := range auto.PerLevel {
		occ := 100 * float64(ls.Frontier) / float64(*n)
		if occ < midOccLowPct || occ >= midOccHiPct || l >= len(hybrid.PerLevel) {
			continue
		}
		m.AutoWords += ls.ExpandWords + ls.FoldWords
		m.HybridWords += hybrid.PerLevel[l].ExpandWords + hybrid.PerLevel[l].FoldWords
	}
	if m.HybridWords > 0 {
		m.AutoOverHybrid = float64(m.AutoWords) / float64(m.HybridWords)
	}

	// Δ-stepping sweep on the weighted variant of the same workload.
	wg, err := graph.GenerateWeighted(graph.Params{N: *n, K: *k, Seed: *seed},
		graph.WeightSpec{Dist: graph.WeightUniform, MaxWeight: 256, Seed: *seed + 1})
	if err != nil {
		fail(err)
	}
	layout, err := partition.NewLayout2D(*n, *r, *c)
	if err != nil {
		fail(err)
	}
	wstores, err := partition.Build2DWeighted(layout, wg.VisitWeightedEdges)
	if err != nil {
		fail(err)
	}
	wsrc := graph.LargestComponentVertex(wg)
	minW, maxW := wg.MinEdgeWeight(), wg.MaxEdgeWeight()
	type spt struct {
		name  string
		delta uint32
	}
	sweep := []spt{
		{"dijkstra-like", minW},
		{"interior-small", maxW / 32},
		{"interior-mid", maxW / 8},
		{"interior-large", maxW / 2},
		{"auto", 0},
		{"bellman-ford", sssp.DeltaInf},
	}
	ds := &doc.DeltaSweep
	for _, pt := range sweep {
		opts := sssp.DefaultOptions(wsrc)
		opts.Delta = pt.delta
		opts.Wire = frontier.WireHybrid
		res, err := sssp.Run2D(w.World, wstores, opts)
		if err != nil {
			fail(err)
		}
		doc.SSSP = append(doc.SSSP, SSSPRun{
			Name:        pt.name,
			Delta:       res.Delta,
			Wire:        opts.Wire.String(),
			SimExecS:    res.SimTime,
			SimCommS:    res.SimComm,
			Buckets:     res.BucketsDrained,
			Epochs:      res.Epochs,
			Relaxations: res.TotalRelaxations,
			ReSettles:   res.TotalReSettles,
			TotalWords:  res.TotalWords(),
		})
		switch pt.name {
		case "dijkstra-like":
			ds.DijkstraLikeExecS = res.SimTime
		case "bellman-ford":
			ds.BellmanFordExecS = res.SimTime
		default:
			if ds.BestInteriorExecS == 0 || res.SimTime < ds.BestInteriorExecS {
				ds.BestInteriorExecS = res.SimTime
				ds.BestInteriorDelta = res.Delta
			}
		}
	}
	ds.InteriorBeatsExtremes = ds.BestInteriorExecS < ds.DijkstraLikeExecS &&
		ds.BestInteriorExecS < ds.BellmanFordExecS

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: mid-occupancy auto/hybrid = %.2fx (%d vs %d words)\n",
		*out, m.AutoOverHybrid, m.AutoWords, m.HybridWords)
	fmt.Printf("delta sweep: interior Δ=%d %.4fs vs dijkstra-like %.4fs, bellman-ford %.4fs (interior beats extremes: %v)\n",
		ds.BestInteriorDelta, ds.BestInteriorExecS, ds.DijkstraLikeExecS, ds.BellmanFordExecS, ds.InteriorBeatsExtremes)

	if *out4 != "" {
		if err := writeMultiBaseline(*out4, w, src, *n, *k, *seed, *r, *c); err != nil {
			fail(err)
		}
	}
}

// multiSources picks b spread-out vertices reachable from src so every
// lane traverses the giant component.
func multiSources(levels []int32, b int) []graph.Vertex {
	var reachable []graph.Vertex
	for v, l := range levels {
		if l != graph.Unreached {
			reachable = append(reachable, graph.Vertex(v))
		}
	}
	srcs := make([]graph.Vertex, 0, b)
	step := len(reachable) / b
	if step == 0 {
		step = 1
	}
	for i := 0; len(srcs) < b; i += step {
		srcs = append(srcs, reachable[i%len(reachable)])
	}
	return srcs
}

// writeMultiBaseline runs the PR 4 acceptance comparison: one 64-lane
// MultiBFS versus 64 independent BFS runs on the same stores, wire
// mode auto for both.
func writeMultiBaseline(path string, w *harness.Workload, src graph.Vertex, n int, k float64, seed int64, r, c int) error {
	doc := Baseline4{N: n, K: k, Seed: seed, Mesh: fmt.Sprintf("%dx%d", r, c)}
	srcs := multiSources(graph.BFS(w.Graph, src), bfs.MaxLanes)

	opts := bfs.DefaultOptions(0)
	opts.Wire = frontier.WireAuto
	mres, err := bfs.MultiRun2D(w.World, w.Stores, srcs, opts)
	if err != nil {
		return err
	}
	mb := &doc.MultiBFS
	mb.B = mres.B
	mb.Wire = opts.Wire.String()
	mb.Sweeps = len(mres.PerLevel)
	mb.MultiWords = mres.TotalExpandWords + mres.TotalFoldWords
	mb.MultiSimExecS = mres.SimTime
	for _, ls := range mres.PerLevel {
		mb.PerSweep = append(mb.PerSweep, MultiSweep{
			Sweep:        int(ls.Level),
			Frontier:     ls.Frontier,
			ExpandWords:  ls.ExpandWords,
			FoldWords:    ls.FoldWords,
			LaneLabels:   ls.Marked,
			EdgesScanned: ls.EdgesScanned,
		})
	}

	mb.LaneLevelsChecked = true
	for lane, s := range srcs {
		single := bfs.DefaultOptions(s)
		single.Wire = frontier.WireAuto
		ind, err := bfs.Run2D(w.World, w.Stores, single)
		if err != nil {
			return err
		}
		mb.IndependentRuns++
		mb.IndependentWords += ind.TotalExpandWords + ind.TotalFoldWords
		mb.IndependentExecS += ind.SimTime
		for v, l := range ind.Levels {
			if mres.LaneLevels[lane][v] != l {
				mb.LaneLevelsChecked = false
				return fmt.Errorf("benchjson: lane %d level[%d] = %d, independent run %d",
					lane, v, mres.LaneLevels[lane][v], l)
			}
		}
	}
	if mb.MultiWords > 0 {
		mb.WordsRatio = float64(mb.IndependentWords) / float64(mb.MultiWords)
	}
	mb.StrictlyFewer = mb.MultiWords < mb.IndependentWords

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: multi-bfs b=%d moved %d words vs %d over %d runs (%.2fx, strictly fewer: %v); simexec %.4fs vs %.4fs (%.1fx)\n",
		path, mb.B, mb.MultiWords, mb.IndependentWords, mb.IndependentRuns, mb.WordsRatio, mb.StrictlyFewer,
		mb.MultiSimExecS, mb.IndependentExecS, mb.IndependentExecS/mb.MultiSimExecS)
	return nil
}
