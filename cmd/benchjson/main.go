// Command benchjson runs the repository's headline benchmark
// configurations — the n=100k, k=10 Poisson traversal on a 4x4 mesh
// under every direction policy and wire encoding — and writes a
// machine-readable JSON baseline (BENCH_PR2.json by default) so later
// PRs can diff simulated execution time, exchange words, and edges
// scanned against a recorded trajectory. See README.md ("Perf
// trajectory") for the format.
//
// It additionally writes BENCH_PR4.json (-out4): the batched
// multi-source BFS baseline — one 64-lane MultiBFS sweep sequence on
// the same workload versus 64 independent BFS runs, with per-sweep
// word counts and the words ratio (the PR 4 acceptance metric requires
// the batch to move strictly fewer total wire words).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/bfs"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sssp"
)

// reg, when non-nil (-metrics), accumulates counters across every run
// of the whole baseline batch into one registry snapshot.
var reg *metrics.Registry

// Level is one BFS level of a run.
type Level struct {
	Level        int     `json:"level"`
	Direction    string  `json:"direction"`
	Frontier     int64   `json:"frontier"`
	OccupancyPct float64 `json:"occupancy_pct"`
	ExpandWords  int64   `json:"expand_words"`
	FoldWords    int64   `json:"fold_words"`
	EdgesScanned int64   `json:"edges_scanned"`
}

// Summary holds the per-run fields every baseline document shares —
// one reused type instead of a copy per PR's block.
type Summary struct {
	Name        string  `json:"name"`
	Wire        string  `json:"wire"`
	SimExecS    float64 `json:"simexec_s"`
	SimCommS    float64 `json:"simcomm_s"`
	SimOverlapS float64 `json:"sim_overlap_s"`
	// HiddenFrac is the fraction of the run's communication seconds
	// that progressed under concurrent activity (SimOverlapS/SimCommS).
	HiddenFrac float64 `json:"hidden_frac"`
	TotalWords int64   `json:"total_words"`
}

// summarize fills a Summary from a run's simulated totals.
func summarize(name, wire string, simExec, simComm, simOverlap float64, words int64) Summary {
	s := Summary{Name: name, Wire: wire, SimExecS: simExec, SimCommS: simComm,
		SimOverlapS: simOverlap, TotalWords: words}
	if simComm > 0 {
		s.HiddenFrac = simOverlap / simComm
	}
	return s
}

// Run is one benchmark configuration's result.
type Run struct {
	Summary
	Direction    string  `json:"direction"`
	ExpandWords  int64   `json:"expand_words"`
	FoldWords    int64   `json:"fold_words"`
	EdgesScanned int64   `json:"edges_scanned"`
	Levels       []Level `json:"levels"`
}

// SSSPRun is one Δ-stepping configuration's result on the weighted
// variant of the headline workload.
type SSSPRun struct {
	Summary
	Delta       uint32 `json:"delta"`
	Buckets     int    `json:"buckets"`
	Epochs      int    `json:"epochs"`
	Relaxations int64  `json:"relaxations"`
	ReSettles   int64  `json:"resettles"`
}

// Baseline is the file-level document.
type Baseline struct {
	N    int     `json:"n"`
	K    float64 `json:"k"`
	Seed int64   `json:"seed"`
	Mesh string  `json:"mesh"`
	Runs []Run   `json:"runs"`
	// SSSP sweeps the Δ-stepping bucket width on the same workload
	// with uniform [1,256] edge weights; DeltaSweep summarizes the
	// U-shape acceptance metric (some interior Δ beats both degenerate
	// extremes in simulated execution time).
	SSSP       []SSSPRun `json:"sssp"`
	DeltaSweep struct {
		DijkstraLikeExecS     float64 `json:"dijkstra_like_simexec_s"`
		BellmanFordExecS      float64 `json:"bellman_ford_simexec_s"`
		BestInteriorDelta     uint32  `json:"best_interior_delta"`
		BestInteriorExecS     float64 `json:"best_interior_simexec_s"`
		InteriorBeatsExtremes bool    `json:"interior_beats_extremes"`
	} `json:"delta_sweep"`
	// MidOccupancy summarizes the acceptance metric: exchange words on
	// the mid-occupancy levels — global frontier occupancy in
	// [0.1%, 10%), the middle regime between the list-optimal sparse
	// extreme and the bitmap-optimal dense levels — under wire=auto vs
	// wire=hybrid, top-down.
	MidOccupancy struct {
		AutoWords       int64   `json:"auto_words"`
		HybridWords     int64   `json:"hybrid_words"`
		AutoOverHybrid  float64 `json:"auto_over_hybrid"`
		OccupancyLowPct float64 `json:"occupancy_low_pct"`
		OccupancyHiPct  float64 `json:"occupancy_high_pct"`
	} `json:"mid_occupancy"`
}

const (
	midOccLowPct = 0.1
	midOccHiPct  = 10
)

// MultiSweep is one multi-source sweep's statistics.
type MultiSweep struct {
	Sweep        int   `json:"sweep"`
	Frontier     int64 `json:"frontier"`
	ExpandWords  int64 `json:"expand_words"`
	FoldWords    int64 `json:"fold_words"`
	LaneLabels   int64 `json:"lane_labels"`
	EdgesScanned int64 `json:"edges_scanned"`
}

// MultiBFSBench compares one b-lane batched run against b independent
// single-source runs on the same stores and wire mode.
type MultiBFSBench struct {
	B                 int          `json:"b"`
	Wire              string       `json:"wire"`
	Sweeps            int          `json:"sweeps"`
	MultiWords        int64        `json:"multi_words"`
	MultiSimExecS     float64      `json:"multi_simexec_s"`
	IndependentWords  int64        `json:"independent_words"`
	IndependentExecS  float64      `json:"independent_simexec_s"`
	IndependentRuns   int          `json:"independent_runs"`
	WordsRatio        float64      `json:"independent_over_multi_words"`
	StrictlyFewer     bool         `json:"multi_strictly_fewer_words"`
	PerSweep          []MultiSweep `json:"per_sweep"`
	LaneLevelsChecked bool         `json:"lane_levels_verified"`
}

// Baseline4 is the PR 4 document: the multi-source acceptance metric.
type Baseline4 struct {
	N        int           `json:"n"`
	K        float64       `json:"k"`
	Seed     int64         `json:"seed"`
	Mesh     string        `json:"mesh"`
	MultiBFS MultiBFSBench `json:"multi_bfs"`
}

// OverlapPoint is one level's (BFS) or epoch's (Δ-stepping) timing
// under both schedules.
type OverlapPoint struct {
	Index      int     `json:"index"`
	SyncExecS  float64 `json:"sync_exec_s"`
	AsyncExecS float64 `json:"async_exec_s"`
	AsyncCommS float64 `json:"async_comm_s"`
	HiddenFrac float64 `json:"hidden_frac"`
}

// OverlapRun compares one configuration under the phase-synchronous and
// overlapped schedules; the embedded Summary carries the async run's
// totals (results and words are identical under both by construction).
type OverlapRun struct {
	Summary
	Algo      string  `json:"algo"`
	SyncExecS float64 `json:"sync_exec_s"`
	OverlapS  float64 `json:"overlap_s"`
	Speedup   float64 `json:"speedup"`
	// The embedded Summary carries HiddenFrac for the async run.
	PerPhase []OverlapPoint `json:"per_phase"`
}

// Baseline5 is the PR 5 document: synchronous vs asynchronous schedule
// on the headline workload, with the flagship ≥1.3x acceptance check.
type Baseline5 struct {
	N        int          `json:"n"`
	K        float64      `json:"k"`
	Seed     int64        `json:"seed"`
	Mesh     string       `json:"mesh"`
	Runs     []OverlapRun `json:"runs"`
	Flagship struct {
		Name     string  `json:"name"`
		Speedup  float64 `json:"speedup"`
		Meets13x bool    `json:"meets_1_3x"`
	} `json:"flagship"`
}

// CorePoint is one modeled core count's run of a pool configuration.
// SimExecS and TotalWords are benchdiff-gated (both are deterministic
// at every core count — the pool contract). WallMs and the speedup
// ratios deliberately use non-gated leaf names: host wall-clock depends
// on the machine's real CPU count, so it is recorded as context only.
type CorePoint struct {
	Name        string  `json:"name"`
	Cores       int     `json:"cores"`
	Workers     int     `json:"workers"`
	SimExecS    float64 `json:"simexec_s"`
	SimCommS    float64 `json:"simcomm_s"`
	TotalWords  int64   `json:"total_words"`
	WallMs      float64 `json:"wall_ms"`
	SimSpeedup  float64 `json:"sim_speedup_vs_1core"`
	WallSpeedup float64 `json:"wall_speedup_vs_1core"`
}

// PoolRun sweeps one configuration over the modeled core counts with
// the real worker pool sized to match (BG/L virtual-node mapping).
type PoolRun struct {
	Name   string      `json:"name"`
	Algo   string      `json:"algo"`
	Wire   string      `json:"wire"`
	Points []CorePoint `json:"points"`
}

// Baseline8 is the PR 8 document: the per-rank worker-pool and
// multi-core cost-model sweep on the flagship configurations.
type Baseline8 struct {
	N        int       `json:"n"`
	K        float64   `json:"k"`
	Seed     int64     `json:"seed"`
	Mesh     string    `json:"mesh"`
	HostCPUs int       `json:"host_cpus"`
	Runs     []PoolRun `json:"pool_runs"`
}

func main() {
	var (
		out  = flag.String("out", "BENCH_PR2.json", "output file")
		out4 = flag.String("out4", "BENCH_PR4.json", "multi-source baseline output file (empty = skip)")
		out5 = flag.String("out5", "BENCH_PR5.json", "async-overlap baseline output file (empty = skip)")
		out8 = flag.String("out8", "BENCH_PR8.json", "worker-pool/cores baseline output file (empty = skip)")
		out9 = flag.String("out9", "BENCH_PR9.json", "graphd batching baseline output file (empty = skip)")
		n    = flag.Int("n", 100000, "vertices")
		k    = flag.Float64("k", 10, "expected average degree")
		seed = flag.Int64("seed", 9, "graph seed")
		r    = flag.Int("r", 4, "mesh rows")
		c    = flag.Int("c", 4, "mesh columns")
		mout = flag.String("metrics", "", "also write a metrics snapshot accumulated over every run to this file")
	)
	flag.Parse()
	if *mout != "" {
		reg = metrics.NewRegistry()
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w, err := harness.BuildWorkload(*n, *k, *seed, *r, *c)
	if err != nil {
		fail(err)
	}
	src := graph.LargestComponentVertex(w.Graph)

	doc := Baseline{N: *n, K: *k, Seed: *seed, Mesh: fmt.Sprintf("%dx%d", *r, *c)}
	type cfg struct {
		name string
		dir  bfs.Direction
		wire frontier.WireMode
	}
	cfgs := []cfg{
		{"topdown-sparse", bfs.TopDown, frontier.WireSparse},
		{"topdown-dense", bfs.TopDown, frontier.WireDense},
		{"topdown-auto", bfs.TopDown, frontier.WireAuto},
		{"topdown-hybrid", bfs.TopDown, frontier.WireHybrid},
		{"dirop-sparse", bfs.DirectionOptimizing, frontier.WireSparse},
		{"dirop-auto", bfs.DirectionOptimizing, frontier.WireAuto},
		{"dirop-hybrid", bfs.DirectionOptimizing, frontier.WireHybrid},
	}
	byName := map[string]*bfs.Result{}
	for _, cf := range cfgs {
		opts := bfs.DefaultOptions(src)
		opts.Direction = cf.dir
		opts.Wire = cf.wire
		opts.Metrics = reg
		res, err := bfs.Run2D(w.World, w.Stores, opts)
		if err != nil {
			fail(err)
		}
		byName[cf.name] = res
		run := Run{
			Summary: summarize(cf.name, cf.wire.String(),
				res.SimTime, res.SimComm, res.SimOverlap,
				res.TotalExpandWords+res.TotalFoldWords),
			Direction:    cf.dir.String(),
			ExpandWords:  res.TotalExpandWords,
			FoldWords:    res.TotalFoldWords,
			EdgesScanned: res.TotalEdgesScanned,
		}
		for _, ls := range res.PerLevel {
			run.Levels = append(run.Levels, Level{
				Level:        int(ls.Level),
				Direction:    ls.Direction.String(),
				Frontier:     ls.Frontier,
				OccupancyPct: 100 * float64(ls.Frontier) / float64(*n),
				ExpandWords:  ls.ExpandWords,
				FoldWords:    ls.FoldWords,
				EdgesScanned: ls.EdgesScanned,
			})
		}
		doc.Runs = append(doc.Runs, run)
	}

	// Acceptance metric: hybrid vs auto on the mid-occupancy levels.
	auto, hybrid := byName["topdown-auto"], byName["topdown-hybrid"]
	m := &doc.MidOccupancy
	m.OccupancyLowPct, m.OccupancyHiPct = midOccLowPct, midOccHiPct
	for l, ls := range auto.PerLevel {
		occ := 100 * float64(ls.Frontier) / float64(*n)
		if occ < midOccLowPct || occ >= midOccHiPct || l >= len(hybrid.PerLevel) {
			continue
		}
		m.AutoWords += ls.ExpandWords + ls.FoldWords
		m.HybridWords += hybrid.PerLevel[l].ExpandWords + hybrid.PerLevel[l].FoldWords
	}
	if m.HybridWords > 0 {
		m.AutoOverHybrid = float64(m.AutoWords) / float64(m.HybridWords)
	}

	// Δ-stepping sweep on the weighted variant of the same workload.
	wg, err := graph.GenerateWeighted(graph.Params{N: *n, K: *k, Seed: *seed},
		graph.WeightSpec{Dist: graph.WeightUniform, MaxWeight: 256, Seed: *seed + 1})
	if err != nil {
		fail(err)
	}
	layout, err := partition.NewLayout2D(*n, *r, *c)
	if err != nil {
		fail(err)
	}
	wstores, err := partition.Build2DWeighted(layout, wg.VisitWeightedEdges)
	if err != nil {
		fail(err)
	}
	wsrc := graph.LargestComponentVertex(wg)
	minW, maxW := wg.MinEdgeWeight(), wg.MaxEdgeWeight()
	type spt struct {
		name  string
		delta uint32
	}
	sweep := []spt{
		{"dijkstra-like", minW},
		{"interior-small", maxW / 32},
		{"interior-mid", maxW / 8},
		{"interior-large", maxW / 2},
		{"auto", 0},
		{"bellman-ford", sssp.DeltaInf},
	}
	ds := &doc.DeltaSweep
	for _, pt := range sweep {
		opts := sssp.DefaultOptions(wsrc)
		opts.Delta = pt.delta
		opts.Wire = frontier.WireHybrid
		opts.Metrics = reg
		res, err := sssp.Run2D(w.World, wstores, opts)
		if err != nil {
			fail(err)
		}
		doc.SSSP = append(doc.SSSP, SSSPRun{
			Summary: summarize(pt.name, opts.Wire.String(),
				res.SimTime, res.SimComm, res.SimOverlap, res.TotalWords()),
			Delta:       res.Delta,
			Buckets:     res.BucketsDrained,
			Epochs:      res.Epochs,
			Relaxations: res.TotalRelaxations,
			ReSettles:   res.TotalReSettles,
		})
		switch pt.name {
		case "dijkstra-like":
			ds.DijkstraLikeExecS = res.SimTime
		case "bellman-ford":
			ds.BellmanFordExecS = res.SimTime
		default:
			if ds.BestInteriorExecS == 0 || res.SimTime < ds.BestInteriorExecS {
				ds.BestInteriorExecS = res.SimTime
				ds.BestInteriorDelta = res.Delta
			}
		}
	}
	ds.InteriorBeatsExtremes = ds.BestInteriorExecS < ds.DijkstraLikeExecS &&
		ds.BestInteriorExecS < ds.BellmanFordExecS

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: mid-occupancy auto/hybrid = %.2fx (%d vs %d words)\n",
		*out, m.AutoOverHybrid, m.AutoWords, m.HybridWords)
	fmt.Printf("delta sweep: interior Δ=%d %.4fs vs dijkstra-like %.4fs, bellman-ford %.4fs (interior beats extremes: %v)\n",
		ds.BestInteriorDelta, ds.BestInteriorExecS, ds.DijkstraLikeExecS, ds.BellmanFordExecS, ds.InteriorBeatsExtremes)

	// The 64 independent single-source runs are shared by the PR 4
	// multi-source baseline and the PR 9 service baseline: both compare
	// the same one-query-at-a-time trajectory against coalesced sweeps.
	if *out4 != "" || *out9 != "" {
		msrcs := multiSources(graph.BFS(w.Graph, src), bfs.MaxLanes)
		inds, err := runIndependents(w, msrcs)
		if err != nil {
			fail(err)
		}
		if *out4 != "" {
			if err := writeMultiBaseline(*out4, w, msrcs, inds, *n, *k, *seed, *r, *c); err != nil {
				fail(err)
			}
		}
		if *out9 != "" {
			if err := writeServiceBaseline(*out9, w, msrcs, inds, *n, *k, *seed, *r, *c); err != nil {
				fail(err)
			}
		}
	}
	if *out5 != "" {
		layout1, err := partition.NewLayout1D(*n, *r**c)
		if err != nil {
			fail(err)
		}
		wstores1, err := partition.Build1DWeighted(layout1, wg.VisitWeightedEdges)
		if err != nil {
			fail(err)
		}
		if err := writeOverlapBaseline(*out5, w, wstores, wstores1, src, wsrc, *n, *k, *seed, *r, *c); err != nil {
			fail(err)
		}
	}
	if *out8 != "" {
		if err := writePoolBaseline(*out8, w, wstores, src, wsrc, *n, *k, *seed, *r, *c); err != nil {
			fail(err)
		}
	}
	if *mout != "" {
		if err := os.WriteFile(*mout, []byte(reg.Text()), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s: metrics snapshot accumulated over the full baseline batch\n", *mout)
	}
}

// bfsOverlapPoints converts per-level stats into sync/async points.
func bfsOverlapPoints(sync, async *bfs.Result) []OverlapPoint {
	pts := make([]OverlapPoint, 0, len(async.PerLevel))
	for l := range async.PerLevel {
		ls, la := sync.PerLevel[l], async.PerLevel[l]
		pts = append(pts, OverlapPoint{
			Index: l, SyncExecS: ls.ExecS, AsyncExecS: la.ExecS,
			AsyncCommS: la.CommS, HiddenFrac: la.HiddenFrac(),
		})
	}
	return pts
}

// ssspOverlapPoints converts per-epoch stats into sync/async points.
func ssspOverlapPoints(sync, async *sssp.Result) []OverlapPoint {
	pts := make([]OverlapPoint, 0, len(async.PerEpoch))
	for e := range async.PerEpoch {
		es, ea := sync.PerEpoch[e], async.PerEpoch[e]
		pts = append(pts, OverlapPoint{
			Index: e, SyncExecS: es.ExecS, AsyncExecS: ea.ExecS,
			AsyncCommS: ea.CommS, HiddenFrac: ea.HiddenFrac(),
		})
	}
	return pts
}

// writeOverlapBaseline runs the PR 5 acceptance comparison: each
// configuration under the synchronous and overlapped schedules — same
// workload, same words, different clocks — with the flagship Δ-stepping
// run checked against the ≥1.3x bar.
func writeOverlapBaseline(path string, w *harness.Workload, wstores []*partition.Store2D, wstores1 []*partition.Store1D,
	src, wsrc graph.Vertex, n int, k float64, seed int64, r, c int) error {
	doc := Baseline5{N: n, K: k, Seed: seed, Mesh: fmt.Sprintf("%dx%d", r, c)}
	const flagship = "sssp-1dcol-delta128"

	addRun := func(run OverlapRun, syncExec, asyncExec, overlap, comm float64) {
		run.SyncExecS = syncExec
		run.OverlapS = overlap
		if asyncExec > 0 {
			run.Speedup = syncExec / asyncExec
		}
		doc.Runs = append(doc.Runs, run)
		if run.Name == flagship {
			doc.Flagship.Name = run.Name
			doc.Flagship.Speedup = run.Speedup
			doc.Flagship.Meets13x = run.Speedup >= 1.3
		}
	}

	bfsCfgs := []struct {
		name string
		dir  bfs.Direction
		wire frontier.WireMode
	}{
		{"bfs-topdown-sparse", bfs.TopDown, frontier.WireSparse},
		{"bfs-dirop-auto", bfs.DirectionOptimizing, frontier.WireAuto},
	}
	for _, cf := range bfsCfgs {
		runOne := func(async bool) (*bfs.Result, error) {
			opts := bfs.DefaultOptions(src)
			opts.Direction = cf.dir
			opts.Wire = cf.wire
			opts.Async = async
			opts.Metrics = reg
			return bfs.Run2D(w.World, w.Stores, opts)
		}
		syncRes, err := runOne(false)
		if err != nil {
			return err
		}
		asyncRes, err := runOne(true)
		if err != nil {
			return err
		}
		addRun(OverlapRun{
			Summary: summarize(cf.name, cf.wire.String(), asyncRes.SimTime, asyncRes.SimComm,
				asyncRes.SimOverlap, asyncRes.TotalExpandWords+asyncRes.TotalFoldWords),
			Algo:     "bfs",
			PerPhase: bfsOverlapPoints(syncRes, asyncRes),
		}, syncRes.SimTime, asyncRes.SimTime, asyncRes.SimOverlap, asyncRes.SimComm)
	}

	ssspCfgs := []struct {
		name  string
		delta uint32
		part  string
	}{
		{"sssp-2d-auto", 0, "2d"},
		{"sssp-2d-delta128", 128, "2d"},
		{flagship, 128, "1dcol"},
	}
	for _, cf := range ssspCfgs {
		baseOpts := sssp.DefaultOptions(wsrc)
		baseOpts.Delta = cf.delta
		baseOpts.Metrics = reg
		runOne := func(async bool) (*sssp.Result, error) {
			opts := baseOpts
			opts.Async = async
			if cf.part == "1dcol" {
				return sssp.Run1D(w.World, wstores1, opts)
			}
			return sssp.Run2D(w.World, wstores, opts)
		}
		syncRes, err := runOne(false)
		if err != nil {
			return err
		}
		asyncRes, err := runOne(true)
		if err != nil {
			return err
		}
		addRun(OverlapRun{
			Summary: summarize(cf.name, baseOpts.Wire.String(), asyncRes.SimTime, asyncRes.SimComm,
				asyncRes.SimOverlap, asyncRes.TotalWords()),
			Algo:     "sssp",
			PerPhase: ssspOverlapPoints(syncRes, asyncRes),
		}, syncRes.SimTime, asyncRes.SimTime, asyncRes.SimOverlap, asyncRes.SimComm)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, run := range doc.Runs {
		fmt.Printf("overlap %-22s sync %.4fs -> async %.4fs (%.2fx, %.0f%% of comm hidden)\n",
			run.Name, run.SyncExecS, run.SimExecS, run.Speedup, 100*run.HiddenFrac)
	}
	fmt.Printf("wrote %s: flagship %s speedup %.2fx (meets 1.3x bar: %v)\n",
		path, doc.Flagship.Name, doc.Flagship.Speedup, doc.Flagship.Meets13x)
	return nil
}

// multiSources picks b spread-out vertices reachable from src so every
// lane traverses the giant component.
func multiSources(levels []int32, b int) []graph.Vertex {
	var reachable []graph.Vertex
	for v, l := range levels {
		if l != graph.Unreached {
			reachable = append(reachable, graph.Vertex(v))
		}
	}
	srcs := make([]graph.Vertex, 0, b)
	step := len(reachable) / b
	if step == 0 {
		step = 1
	}
	for i := 0; len(srcs) < b; i += step {
		srcs = append(srcs, reachable[i%len(reachable)])
	}
	return srcs
}

// indepRun is one independent single-source run of the shared query
// set: the one-at-a-time cost the batched baselines compare against,
// plus the level oracle every batched lane must reproduce.
type indepRun struct {
	words   int64
	simExec float64
	levels  []int32
}

// runIndependents runs each source as its own single-source BFS (wire
// auto — the same mode the batched comparisons use).
func runIndependents(w *harness.Workload, srcs []graph.Vertex) ([]indepRun, error) {
	inds := make([]indepRun, 0, len(srcs))
	for _, s := range srcs {
		opts := bfs.DefaultOptions(s)
		opts.Wire = frontier.WireAuto
		opts.Metrics = reg
		res, err := bfs.Run2D(w.World, w.Stores, opts)
		if err != nil {
			return nil, err
		}
		inds = append(inds, indepRun{
			words:   res.TotalExpandWords + res.TotalFoldWords,
			simExec: res.SimTime,
			levels:  res.Levels,
		})
	}
	return inds, nil
}

// writeMultiBaseline runs the PR 4 acceptance comparison: one 64-lane
// MultiBFS versus 64 independent BFS runs on the same stores, wire
// mode auto for both.
func writeMultiBaseline(path string, w *harness.Workload, srcs []graph.Vertex, inds []indepRun,
	n int, k float64, seed int64, r, c int) error {
	doc := Baseline4{N: n, K: k, Seed: seed, Mesh: fmt.Sprintf("%dx%d", r, c)}

	opts := bfs.DefaultOptions(0)
	opts.Wire = frontier.WireAuto
	opts.Metrics = reg
	mres, err := bfs.MultiRun2D(w.World, w.Stores, srcs, opts)
	if err != nil {
		return err
	}
	mb := &doc.MultiBFS
	mb.B = mres.B
	mb.Wire = opts.Wire.String()
	mb.Sweeps = len(mres.PerLevel)
	mb.MultiWords = mres.TotalExpandWords + mres.TotalFoldWords
	mb.MultiSimExecS = mres.SimTime
	for _, ls := range mres.PerLevel {
		mb.PerSweep = append(mb.PerSweep, MultiSweep{
			Sweep:        int(ls.Level),
			Frontier:     ls.Frontier,
			ExpandWords:  ls.ExpandWords,
			FoldWords:    ls.FoldWords,
			LaneLabels:   ls.Marked,
			EdgesScanned: ls.EdgesScanned,
		})
	}

	mb.LaneLevelsChecked = true
	for lane := range srcs {
		ind := inds[lane]
		mb.IndependentRuns++
		mb.IndependentWords += ind.words
		mb.IndependentExecS += ind.simExec
		for v, l := range ind.levels {
			if mres.LaneLevels[lane][v] != l {
				mb.LaneLevelsChecked = false
				return fmt.Errorf("benchjson: lane %d level[%d] = %d, independent run %d",
					lane, v, mres.LaneLevels[lane][v], l)
			}
		}
	}
	if mb.MultiWords > 0 {
		mb.WordsRatio = float64(mb.IndependentWords) / float64(mb.MultiWords)
	}
	mb.StrictlyFewer = mb.MultiWords < mb.IndependentWords

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: multi-bfs b=%d moved %d words vs %d over %d runs (%.2fx, strictly fewer: %v); simexec %.4fs vs %.4fs (%.1fx)\n",
		path, mb.B, mb.MultiWords, mb.IndependentWords, mb.IndependentRuns, mb.WordsRatio, mb.StrictlyFewer,
		mb.MultiSimExecS, mb.IndependentExecS, mb.IndependentExecS/mb.MultiSimExecS)
	return nil
}

// poolCores are the modeled core counts the PR 8 baseline sweeps —
// 1 (the committed single-core trajectory, bit-identical to the other
// baselines), 2 (BG/L virtual-node mode), and 4 (headroom).
var poolCores = [...]int{1, 2, 4}

// speedups fills each point's ratios against the sweep's 1-core point.
func speedups(pts []CorePoint) {
	base := pts[0]
	for i := range pts {
		if pts[i].SimExecS > 0 {
			pts[i].SimSpeedup = base.SimExecS / pts[i].SimExecS
		}
		if pts[i].WallMs > 0 {
			pts[i].WallSpeedup = base.WallMs / pts[i].WallMs
		}
	}
}

// writePoolBaseline runs the PR 8 sweep: the flagship BFS and
// Δ-stepping configurations with the modeled core count and the real
// worker pool stepped together through poolCores. The simulated times
// and word counts are deterministic at every point and gate the diff;
// wall times are host context.
func writePoolBaseline(path string, w *harness.Workload, wstores []*partition.Store2D,
	src, wsrc graph.Vertex, n int, k float64, seed int64, r, c int) error {
	doc := Baseline8{N: n, K: k, Seed: seed, Mesh: fmt.Sprintf("%dx%d", r, c),
		HostCPUs: runtime.NumCPU()}

	bfsRun := PoolRun{Name: "bfs-dirop-hybrid", Algo: "bfs", Wire: frontier.WireHybrid.String()}
	for _, nc := range poolCores {
		opts := bfs.DefaultOptions(src)
		opts.Direction = bfs.DirectionOptimizing
		opts.Wire = frontier.WireHybrid
		opts.Cores = nc
		opts.Workers = nc
		opts.Metrics = reg
		res, err := bfs.Run2D(w.World, w.Stores, opts)
		if err != nil {
			return err
		}
		bfsRun.Points = append(bfsRun.Points, CorePoint{
			Name: fmt.Sprintf("cores-%d", nc), Cores: nc, Workers: nc,
			SimExecS: res.SimTime, SimCommS: res.SimComm,
			TotalWords: res.TotalExpandWords + res.TotalFoldWords,
			WallMs:     float64(res.Wall.Microseconds()) / 1000,
		})
	}
	speedups(bfsRun.Points)
	doc.Runs = append(doc.Runs, bfsRun)

	ssspRun := PoolRun{Name: "sssp-2d-delta128", Algo: "sssp", Wire: frontier.WireHybrid.String()}
	for _, nc := range poolCores {
		opts := sssp.DefaultOptions(wsrc)
		opts.Delta = 128
		opts.Wire = frontier.WireHybrid
		opts.Cores = nc
		opts.Workers = nc
		opts.Metrics = reg
		res, err := sssp.Run2D(w.World, wstores, opts)
		if err != nil {
			return err
		}
		ssspRun.Points = append(ssspRun.Points, CorePoint{
			Name: fmt.Sprintf("cores-%d", nc), Cores: nc, Workers: nc,
			SimExecS: res.SimTime, SimCommS: res.SimComm,
			TotalWords: res.TotalWords(),
			WallMs:     float64(res.Wall.Microseconds()) / 1000,
		})
	}
	speedups(ssspRun.Points)
	doc.Runs = append(doc.Runs, ssspRun)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, run := range doc.Runs {
		for _, pt := range run.Points {
			fmt.Printf("pool %-18s cores=%d simexec %.4fs (%.2fx) wall %.1fms (%.2fx)\n",
				run.Name, pt.Cores, pt.SimExecS, pt.SimSpeedup, pt.WallMs, pt.WallSpeedup)
		}
	}
	fmt.Printf("wrote %s: cores sweep on %d host CPUs (wall fields are context, not gated)\n",
		path, doc.HostCPUs)
	return nil
}
