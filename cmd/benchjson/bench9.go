package main

// BENCH_PR9: the graphd service baseline. Two halves:
//
//  1. A deterministic simulated comparison on the headline workload:
//     the shared 64-source query set swept in coalesced chunks at
//     several concurrency levels (a service at concurrency c batches
//     ~c queries per sweep) versus the same 64 queries run one at a
//     time. These fields are benchdiff-gated: multi_words exactly,
//     *_simexec_s at 5% — both pure simulated values.
//
//  2. A real end-to-end QPS measurement: two in-process graphd
//     servers on a smaller graph — one batching, one with the window
//     disabled — serving the same seeded query set over real HTTP.
//     Wall QPS depends on the host, so those leaves use non-gated
//     names and are recorded as context.
//
// The PR 9 acceptance bar: the batched trajectory moves strictly fewer
// words AND less total simulated execution than one-at-a-time, with
// every batched lane verified equal to its independent run.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	bgl "repro"
	"repro/internal/bfs"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/graphd"
	"repro/internal/harness"
)

// ServicePoint is the simulated cost of answering the 64-query set in
// coalesced sweeps of (up to) Concurrency lanes.
type ServicePoint struct {
	Concurrency   int     `json:"concurrency"`
	Sweeps        int     `json:"sweeps"`
	MultiWords    int64   `json:"multi_words"`
	MultiSimExecS float64 `json:"multi_simexec_s"`
	WordsRatio    float64 `json:"independent_over_multi_words"`
	ExecRatio     float64 `json:"independent_over_multi_simexec"`
}

// WallPoint is one concurrency level's real HTTP throughput against
// the batching and non-batching servers (host-dependent; not gated).
type WallPoint struct {
	Concurrency   int     `json:"concurrency"`
	BatchedQPS    float64 `json:"batched_wall_qps"`
	UnbatchedQPS  float64 `json:"unbatched_wall_qps"`
	QPSRatio      float64 `json:"batched_over_unbatched_qps"`
	MeanBatchSize float64 `json:"mean_batch_size"`
}

// Baseline9 is the PR 9 document: the graphd batching acceptance
// metric plus service QPS context.
type Baseline9 struct {
	N                int            `json:"n"`
	K                float64        `json:"k"`
	Seed             int64          `json:"seed"`
	Mesh             string         `json:"mesh"`
	Queries          int            `json:"queries"`
	Wire             string         `json:"wire"`
	IndependentWords int64          `json:"independent_words"`
	IndependentExecS float64        `json:"independent_simexec_s"`
	Batched          []ServicePoint `json:"batched"`
	Verified         bool           `json:"answers_verified"`
	StrictlyFewer    bool           `json:"batched_strictly_fewer_words"`
	LowerExec        bool           `json:"batched_lower_simexec"`
	ServiceWall      struct {
		N      int         `json:"service_n"`
		Mesh   string      `json:"service_mesh"`
		Points []WallPoint `json:"points"`
	} `json:"service_wall"`
}

// serviceConcurrencies are the modeled client concurrency levels: a
// service at concurrency c coalesces ~c queries per sweep.
var serviceConcurrencies = [...]int{4, 16, 64}

// writeServiceBaseline writes BENCH_PR9.json. srcs/inds are the shared
// 64-source query set and its independent one-at-a-time runs.
func writeServiceBaseline(path string, w *harness.Workload, srcs []graph.Vertex, inds []indepRun,
	n int, k float64, seed int64, r, c int) error {
	doc := Baseline9{N: n, K: k, Seed: seed, Mesh: fmt.Sprintf("%dx%d", r, c),
		Queries: len(srcs), Wire: frontier.WireAuto.String(), Verified: true}
	for _, ind := range inds {
		doc.IndependentWords += ind.words
		doc.IndependentExecS += ind.simExec
	}

	for _, conc := range serviceConcurrencies {
		pt := ServicePoint{Concurrency: conc}
		for lo := 0; lo < len(srcs); lo += conc {
			hi := lo + conc
			if hi > len(srcs) {
				hi = len(srcs)
			}
			opts := bfs.DefaultOptions(0)
			opts.Wire = frontier.WireAuto
			opts.Metrics = reg
			mres, err := bfs.MultiRun2D(w.World, w.Stores, srcs[lo:hi], opts)
			if err != nil {
				return err
			}
			pt.Sweeps++
			pt.MultiWords += mres.TotalExpandWords + mres.TotalFoldWords
			pt.MultiSimExecS += mres.SimTime
			for lane := lo; lane < hi; lane++ {
				for v, want := range inds[lane].levels {
					if mres.LaneLevels[lane-lo][v] != want {
						doc.Verified = false
						return fmt.Errorf("benchjson: concurrency %d lane %d level[%d] = %d, independent run %d",
							conc, lane, v, mres.LaneLevels[lane-lo][v], want)
					}
				}
			}
		}
		if pt.MultiWords > 0 {
			pt.WordsRatio = float64(doc.IndependentWords) / float64(pt.MultiWords)
		}
		if pt.MultiSimExecS > 0 {
			pt.ExecRatio = doc.IndependentExecS / pt.MultiSimExecS
		}
		doc.Batched = append(doc.Batched, pt)
	}
	doc.StrictlyFewer, doc.LowerExec = true, true
	for _, pt := range doc.Batched {
		doc.StrictlyFewer = doc.StrictlyFewer && pt.MultiWords < doc.IndependentWords
		doc.LowerExec = doc.LowerExec && pt.MultiSimExecS < doc.IndependentExecS
	}

	if err := measureServiceWall(&doc); err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, pt := range doc.Batched {
		fmt.Printf("service conc=%-3d %d sweeps: %d words vs %d (%.2fx), simexec %.4fs vs %.4fs (%.1fx)\n",
			pt.Concurrency, pt.Sweeps, pt.MultiWords, doc.IndependentWords, pt.WordsRatio,
			pt.MultiSimExecS, doc.IndependentExecS, pt.ExecRatio)
	}
	for _, pt := range doc.ServiceWall.Points {
		fmt.Printf("service wall conc=%-3d batched %.1f QPS vs unbatched %.1f (%.2fx, mean batch %.1f)\n",
			pt.Concurrency, pt.BatchedQPS, pt.UnbatchedQPS, pt.QPSRatio, pt.MeanBatchSize)
	}
	fmt.Printf("wrote %s: batched strictly fewer words: %v, lower simexec: %v, answers verified: %v\n",
		path, doc.StrictlyFewer, doc.LowerExec, doc.Verified)
	return nil
}

// wallService is one live graphd instance behind a real listener.
type wallService struct {
	srv    *graphd.Server
	hs     *http.Server
	client *graphd.Client
}

func startWallService(g *bgl.Graph, window time.Duration) (*wallService, error) {
	srv, err := graphd.NewServer(graphd.Config{Graph: g, R: 2, C: 2, Window: window})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	return &wallService{
		srv: srv, hs: hs,
		client: graphd.NewClient("http://"+ln.Addr().String(), graphd.WithTimeout(2*time.Minute)),
	}, nil
}

func (s *wallService) stop() {
	_ = s.hs.Close()
	s.srv.Close()
}

// measureServiceWall fires the same query set at a batching and a
// non-batching graphd over real HTTP and records wall QPS. The graph
// is a smaller relative of the headline workload so the one-at-a-time
// side stays affordable; every answer's reach count is still verified
// against the serial oracle.
func measureServiceWall(doc *Baseline9) error {
	const (
		svcN    = 20000
		svcK    = 10
		svcSeed = 42
		// Long enough that a burst of concurrent queries lands in one
		// window even on a loaded host.
		svcWindow = 25 * time.Millisecond
	)
	doc.ServiceWall.N = svcN
	doc.ServiceWall.Mesh = "2x2"

	g, err := bgl.Generate(svcN, svcK, svcSeed)
	if err != nil {
		return err
	}
	srcs := multiSources(g.SerialBFS(g.LargestComponentVertex()), bfs.MaxLanes)
	wantReached := map[int]int{}
	for _, s := range srcs {
		if _, ok := wantReached[int(s)]; ok {
			continue
		}
		reached := 0
		for _, l := range g.SerialBFS(s) {
			if l != bgl.Unreached {
				reached++
			}
		}
		wantReached[int(s)] = reached
	}

	// fire sends every query from conc workers and returns the wall
	// seconds and the server's mean batch size over the run.
	fire := func(ws *wallService, conc int) (float64, float64, error) {
		before, err := ws.client.Stats()
		if err != nil {
			return 0, 0, err
		}
		var failed atomic.Int64
		work := make(chan graph.Vertex)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < conc; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := range work {
					src := int(s)
					resp, err := ws.client.BFS(graphd.BFSRequest{Source: &src})
					if err != nil || resp.Reached != wantReached[src] {
						failed.Add(1)
					}
				}
			}()
		}
		for _, s := range srcs {
			work <- s
		}
		close(work)
		wg.Wait()
		wall := time.Since(start).Seconds()
		if n := failed.Load(); n > 0 {
			return 0, 0, fmt.Errorf("benchjson: %d service answers failed oracle verification", n)
		}
		after, err := ws.client.Stats()
		if err != nil {
			return 0, 0, err
		}
		mean := 0.0
		if db := after.Queries.Batches - before.Queries.Batches; db > 0 {
			mean = float64(after.Queries.BatchedQueries-before.Queries.BatchedQueries) / float64(db)
		}
		return wall, mean, nil
	}

	batched, err := startWallService(g, svcWindow)
	if err != nil {
		return err
	}
	defer batched.stop()
	unbatched, err := startWallService(g, 0) // window 0: every query sweeps alone
	if err != nil {
		return err
	}
	defer unbatched.stop()

	// One warmup query against each server so first-request setup cost
	// stays out of the measurement.
	warm := int(srcs[0])
	if _, err := batched.client.BFS(graphd.BFSRequest{Source: &warm}); err != nil {
		return err
	}
	if _, err := unbatched.client.BFS(graphd.BFSRequest{Source: &warm}); err != nil {
		return err
	}

	for _, conc := range serviceConcurrencies {
		bWall, bMean, err := fire(batched, conc)
		if err != nil {
			return err
		}
		uWall, _, err := fire(unbatched, conc)
		if err != nil {
			return err
		}
		pt := WallPoint{
			Concurrency:   conc,
			BatchedQPS:    float64(len(srcs)) / bWall,
			UnbatchedQPS:  float64(len(srcs)) / uWall,
			MeanBatchSize: bMean,
		}
		if pt.UnbatchedQPS > 0 {
			pt.QPSRatio = pt.BatchedQPS / pt.UnbatchedQPS
		}
		doc.ServiceWall.Points = append(doc.ServiceWall.Points, pt)
	}
	return nil
}
