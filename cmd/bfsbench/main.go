// Command bfsbench regenerates the paper's tables and figures.
//
// Each experiment id corresponds to one exhibit of the evaluation
// section (see DESIGN.md §4):
//
//	fig4a fig4b fig4c fig5 table1 fig6a fig6b fig7
//	ablation-mapping ablation-collective ablation-sentcache
//
// Usage:
//
//	bfsbench -exp fig4a,table1 -scale 1 -maxp 64 -searches 3
//	bfsbench -exp all -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale    = flag.Float64("scale", 1, "per-rank problem-size multiplier")
		maxP     = flag.Int("maxp", 64, "maximum simulated rank count")
		seed     = flag.Int64("seed", 1, "workload seed")
		searches = flag.Int("searches", 3, "s->t searches averaged per data point")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the host process to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-20s %-28s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	cfg := harness.Config{Scale: *scale, MaxP: *maxP, Seed: *seed, Searches: *searches}
	var exps []harness.Experiment
	if *expFlag == "all" {
		exps = harness.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(%s: %s, ran in %v)\n\n", e.ID, e.Paper, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, e.ID+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := tbl.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
