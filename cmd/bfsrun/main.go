// Command bfsrun executes one distributed BFS or s→t search with every
// knob exposed: mesh shape, expand/fold collectives, sent-neighbors
// cache, fixed buffer size, torus mapping and cost model. It validates
// the distributed result against the serial oracle and prints the
// per-level statistics the paper reports.
//
// Usage:
//
//	bfsrun -n 100000 -k 10 -r 4 -c 4
//	bfsrun -n 100000 -k 10 -r 1 -c 16 -target 99 -bidir
//	bfsrun -n 50000 -k 50 -r 4 -c 4 -expand allgather -fold direct -sentcache=false
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	bgl "repro"
)

func main() {
	var (
		n        = flag.Int("n", 100000, "vertices")
		k        = flag.Float64("k", 10, "expected average degree")
		seed     = flag.Int64("seed", 42, "graph seed")
		input    = flag.String("input", "", "load graph from an edge-list file instead of generating")
		shuffle  = flag.Bool("shuffle", false, "relabel vertices randomly before distributing")
		r        = flag.Int("r", 4, "mesh rows R")
		c        = flag.Int("c", 4, "mesh columns C")
		source   = flag.Int("source", -1, "source vertex (-1 = a largest-component vertex)")
		target   = flag.Int("target", -1, "target vertex (-1 = full traversal)")
		bidir    = flag.Bool("bidir", false, "bi-directional search (requires -target)")
		expand   = flag.String("expand", "targeted", "expand collective: targeted|allgather|twophase")
		fold     = flag.String("fold", "twophase", "fold collective: twophase|direct|nounion|bruck")
		dir      = flag.String("direction", "topdown", "traversal direction: topdown|bottomup|dirop")
		doAlpha  = flag.Float64("doalpha", 0, "direction-optimizing switch factor (0 = default)")
		wire     = flag.String("wire", "sparse", "frontier wire encoding: sparse|dense|auto|hybrid")
		cache    = flag.Bool("sentcache", true, "sent-neighbors cache (§2.4.3)")
		chunk    = flag.Int("chunk", 16384, "fixed message buffer in words (0 = unchunked)")
		rowMaj   = flag.Bool("rowmajor", false, "row-major torus mapping instead of Figure 1 planes")
		cluster  = flag.Bool("cluster", false, "Quadrics-cluster cost model instead of BlueGene/L")
		verify   = flag.Bool("verify", true, "check against the serial oracle")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON (levels omitted) instead of text")
		withLvls = flag.Bool("levels", false, "include the full level array in -json output")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	expAlg, ok := map[string]bgl.ExpandAlg{
		"targeted": bgl.ExpandTargeted, "allgather": bgl.ExpandAllGather, "twophase": bgl.ExpandTwoPhase,
	}[*expand]
	if !ok {
		fail(fmt.Errorf("unknown expand algorithm %q", *expand))
	}
	foldAlg, ok := map[string]bgl.FoldAlg{
		"twophase": bgl.FoldTwoPhase, "direct": bgl.FoldDirect, "nounion": bgl.FoldTwoPhaseNoUnion, "bruck": bgl.FoldBruck,
	}[*fold]
	if !ok {
		fail(fmt.Errorf("unknown fold algorithm %q", *fold))
	}
	dirPolicy, ok := map[string]bgl.Direction{
		"topdown": bgl.TopDown, "bottomup": bgl.BottomUp, "dirop": bgl.DirectionOptimizing,
	}[*dir]
	if !ok {
		fail(fmt.Errorf("unknown direction policy %q", *dir))
	}
	wireMode, ok := map[string]bgl.WireMode{
		"sparse": bgl.WireSparse, "dense": bgl.WireDense, "auto": bgl.WireAuto, "hybrid": bgl.WireHybrid,
	}[*wire]
	if !ok {
		fail(fmt.Errorf("unknown wire encoding %q", *wire))
	}

	var g *bgl.Graph
	var err error
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			fail(ferr)
		}
		g, err = bgl.Load(f)
		f.Close()
	} else {
		g, err = bgl.Generate(*n, *k, *seed)
	}
	if err != nil {
		fail(err)
	}
	if *shuffle {
		g, _ = g.Relabel(*seed)
	}
	mapping := bgl.MapPlanes
	if *rowMaj {
		mapping = bgl.MapRowMajor
	}
	cl, err := bgl.NewCluster(bgl.ClusterConfig{
		R: *r, C: *c, Mapping: mapping, ClusterModel: *cluster,
	})
	if err != nil {
		fail(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		fail(err)
	}

	src := bgl.Vertex(*source)
	if *source < 0 {
		src = g.LargestComponentVertex()
	}
	opts := []bgl.Option{
		bgl.WithExpand(expAlg), bgl.WithFold(foldAlg),
		bgl.WithDirection(dirPolicy), bgl.WithDOAlpha(*doAlpha),
		bgl.WithFrontierWire(wireMode),
		bgl.WithSentCache(*cache), bgl.WithChunkWords(*chunk),
	}

	var res *bgl.Result
	switch {
	case *target >= 0 && *bidir:
		res, err = cl.BiSearch(dg, src, bgl.Vertex(*target), opts...)
	case *target >= 0:
		res, err = cl.Search(dg, src, bgl.Vertex(*target), opts...)
	default:
		res, err = cl.BFS(dg, src, opts...)
	}
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		out := *res
		if !*withLvls {
			out.Levels = nil
			out.PerRank = nil
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			N         int
			K         float64
			Seed      int64
			Expand    string
			Fold      string
			Direction string
			Wire      string
			Cache     bool
			Chunk     int
			*bgl.Result
		}{g.N(), *k, *seed, *expand, *fold, dirPolicy.String(), wireMode.String(), *cache, *chunk, &out}); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("graph: n=%d k=%.3g (%d edges) | mesh %dx%d (P=%d) | expand=%s fold=%s dir=%s wire=%s cache=%v chunk=%d\n",
		g.N(), g.AvgDegree(), g.NumEdges(), *r, *c, cl.P(), *expand, *fold, dirPolicy, wireMode, *cache, *chunk)
	if *target >= 0 {
		fmt.Printf("search %d -> %d: found=%v distance=%d\n", src, *target, res.Found, res.Distance)
	} else {
		fmt.Printf("traversal from %d: reached %d vertices, max level %d\n",
			src, res.Reached(), res.MaxLevel())
	}
	fmt.Printf("simulated: exec %.6fs, comm %.6fs (%.1f%%) | wall %v\n",
		res.SimTime, res.SimComm, safePct(res.SimComm, res.SimTime), res.Wall)
	fmt.Printf("volumes: expand %d words, fold %d words, dups eliminated %d (redundancy %.1f%%), hash probes %d\n",
		res.TotalExpandWords, res.TotalFoldWords, res.TotalDups, res.RedundancyRatio(), res.HashProbes)
	fmt.Printf("network: %d messages, %.2f avg hops, load imbalance %.3f\n",
		res.MsgsRecv, res.AvgHopsPerMessage(), res.LoadImbalance())
	showContainers := res.Containers.Payloads() > 0
	if showContainers {
		c := res.Containers
		fmt.Printf("containers: payloads raw=%d dense=%d hybrid=%d | chunks empty=%d list=%d bitmap=%d runs=%d\n",
			c.RawPayloads, c.DensePayloads, c.HybridPayloads,
			c.EmptyChunks, c.ListChunks, c.BitmapChunks, c.RunChunks)
	}
	header := "\nlevel  dir       frontier  expand-words  fold-words  dups  marked  edges-scanned"
	if showContainers {
		header += "  containers raw/dense/hyb (chunks e/l/b/r)"
	}
	fmt.Println(header)
	for _, ls := range res.PerLevel {
		fmt.Printf("%5d  %-8s  %8d  %12d  %10d  %4d  %6d  %13d",
			ls.Level, ls.Direction, ls.Frontier, ls.ExpandWords, ls.FoldWords, ls.Dups, ls.Marked, ls.EdgesScanned)
		if showContainers {
			c := ls.Containers
			fmt.Printf("  %d/%d/%d (%d/%d/%d/%d)",
				c.RawPayloads, c.DensePayloads, c.HybridPayloads,
				c.EmptyChunks, c.ListChunks, c.BitmapChunks, c.RunChunks)
		}
		fmt.Println()
	}

	if *verify {
		serial := g.SerialBFS(src)
		if *target >= 0 {
			want := g.SerialDistance(src, bgl.Vertex(*target))
			okDist := (want == bgl.Unreached && !res.Found) || (res.Found && res.Distance == want)
			if !okDist {
				fail(fmt.Errorf("VERIFY FAILED: distance %d (found=%v), serial %d", res.Distance, res.Found, want))
			}
		} else {
			for v, want := range serial {
				if res.Levels[v] != want {
					fail(fmt.Errorf("VERIFY FAILED: level[%d] = %d, serial %d", v, res.Levels[v], want))
				}
			}
		}
		fmt.Println("\nverified against serial oracle: OK")
	}
}

func safePct(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * num / den
}
