// Command benchdiff is the perf-regression gate: it diffs fresh
// benchmark baselines (written by cmd/benchjson into a scratch
// directory) against the committed BENCH_PR*.json trajectory and fails
// when simulated execution time or exchange words regress beyond
// tolerance. See internal/benchcmp for what is gated and why the
// defaults are 5% on simexec_s and 0% on total_words.
//
// Each positional argument is one base=fresh pair:
//
//	benchdiff BENCH_PR2.json=/tmp/b/BENCH_PR2.json BENCH_PR5.json=/tmp/b/BENCH_PR5.json
//
// -inject-simexec 1.10 multiplies every fresh simexec_s point by the
// factor before comparing — the self-test that proves the gate fails
// on a real 10% slowdown (make bench-diff runs it and asserts failure).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchcmp"
)

func main() {
	var (
		execTol = flag.Float64("exec-tol", benchcmp.DefaultTolerances().Exec,
			"allowed relative increase of any simexec_s point")
		wordsTol = flag.Float64("words-tol", benchcmp.DefaultTolerances().Words,
			"allowed relative increase of any total_words point")
		inject = flag.Float64("inject-simexec", 1,
			"multiply every fresh simexec_s by this factor before diffing (self-test)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] base.json=fresh.json...")
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	tol := benchcmp.Tolerances{Exec: *execTol, Words: *wordsTol}
	regressed := false
	for _, pair := range flag.Args() {
		basePath, freshPath, ok := strings.Cut(pair, "=")
		if !ok {
			fail(fmt.Errorf("argument %q is not a base.json=fresh.json pair", pair))
		}
		base, err := collect(basePath)
		if err != nil {
			fail(err)
		}
		fresh, err := collect(freshPath)
		if err != nil {
			fail(err)
		}
		if *inject != 1 {
			benchcmp.Inject(fresh, *inject)
		}
		regs := benchcmp.Compare(base, fresh, tol)
		if len(regs) == 0 {
			fmt.Printf("%s vs %s: %d gated points within tolerance (exec %.1f%%, words %.1f%%)\n",
				basePath, freshPath, benchcmp.Gated(base), 100*tol.Exec, 100*tol.Words)
			continue
		}
		regressed = true
		fmt.Fprintf(os.Stderr, "%s vs %s: %d regression(s):\n", basePath, freshPath, len(regs))
		for _, d := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
	}
	if regressed {
		os.Exit(1)
	}
}

func collect(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pts, err := benchcmp.Collect(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pts, nil
}
