// Command graphload is the deterministic load generator for graphd: a
// seeded mix of BFS / path / SSSP queries fired at a target rate from a
// pool of concurrent workers, with per-kind latency histograms and
// optional oracle verification of every answer (the generator rebuilds
// the server's graph locally from the same -n/-k/-graph-seed and checks
// each response against serial BFS / Dijkstra).
//
// The query stream is a pure function of -seed: the same seed, count,
// and mix produce the same queries in the same order, so a smoke run is
// reproducible end to end.
//
// Usage:
//
//	graphload -addr 127.0.0.1:8080 -queries 500 -concurrency 16
//	graphload -addr $(cat /tmp/graphd.port) -queries 120 -seed 7 \
//	    -mix bfs=6,path=1,sssp=1 -verify -n 20000 -k 10 -graph-seed 42 -weighted \
//	    -expect-batching -check-metrics
//	graphload -addr $(cat /tmp/graphd.port) -chaos -verify \
//	    -deadline-every 25 -deadline-ms 1 -expect-faults
//
// Chaos mode (-chaos) turns the generator into the chaos drill's
// client half: the resilient client features (seeded retry jitter, a
// circuit breaker, hedged BFS) are armed, and after the stream drains
// the run asserts the server actually went through the wringer and
// came back — at least one replica panic, every quarantined replica
// rebuilt, and a final query served off the recovered fleet.
// -deadline-every N makes every Nth query a deadline probe sent with
// a tiny timeout_ms that must come back 504 (never a hang, never a
// 500); -expect-faults requires the server to report injected faults.
//
// Exit status is non-zero on any failed query, failed verification, or
// failed -expect-batching / -check-metrics / chaos assertion.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	bgl "repro"
	"repro/internal/graphd"
	"repro/internal/metrics"
)

// splitmix64 is the seeded generator behind the query stream — tiny,
// deterministic, and identical across platforms.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// query is one planned request. A deadline probe carries a tiny
// timeout_ms and expects a 504 instead of an answer.
type query struct {
	kind     string // bfs | path | sssp
	source   int
	target   int
	deadline bool
}

// oracle lazily computes and caches serial answers per source.
type oracle struct {
	g    *bgl.Graph
	mu   sync.Mutex
	bfs  map[int][]int32
	dijk map[int][]uint32
}

func (o *oracle) levels(src int) []int32 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if l, ok := o.bfs[src]; ok {
		return l
	}
	l := o.g.SerialBFS(bgl.Vertex(src))
	o.bfs[src] = l
	return l
}

func (o *oracle) dists(src int) []uint32 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if d, ok := o.dijk[src]; ok {
		return d
	}
	d := o.g.SerialDijkstra(bgl.Vertex(src))
	o.dijk[src] = d
	return d
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "graphd address (host:port or full http:// URL)")
		queries     = flag.Int("queries", 200, "total queries to send")
		qps         = flag.Float64("qps", 0, "target release rate (0 = as fast as the workers go)")
		concurrency = flag.Int("concurrency", 8, "concurrent workers")
		seed        = flag.Uint64("seed", 1, "query-stream seed")
		mixStr      = flag.String("mix", "bfs=6,path=1,sssp=1", "query mix as kind=weight pairs")
		verify      = flag.Bool("verify", false, "verify every answer against the serial oracles (needs -n/-k/-graph-seed to match the server)")
		n           = flag.Int("n", 100000, "server graph vertices (query range; oracle rebuild under -verify)")
		k           = flag.Float64("k", 10, "server graph average degree (oracle rebuild)")
		graphSeed   = flag.Int64("graph-seed", 42, "server graph seed (oracle rebuild)")
		weighted    = flag.Bool("weighted", false, "the server graph is weighted (oracle rebuild)")
		maxw        = flag.Uint("maxw", 0, "server graph max edge weight (oracle rebuild)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-attempt HTTP timeout")
		retries     = flag.Int("retries", 3, "retries per query on overload/transport failure")
		checkMet    = flag.Bool("check-metrics", false, "fetch /metrics afterwards and require the graphd instruments")
		expectBatch = flag.Bool("expect-batching", false, "require the server to have coalesced queries (mean batch size > 1)")
		chaos       = flag.Bool("chaos", false, "chaos drill: arm the resilient client and assert panic+quarantine+rebuild recovery afterwards")
		deadEvery   = flag.Int("deadline-every", 0, "make every Nth query a deadline probe that must answer 504 (0 = none)")
		deadMS      = flag.Int("deadline-ms", 1, "timeout_ms carried by deadline probes")
		expectFault = flag.Bool("expect-faults", false, "require the server to report injected communication faults")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "graphload: "+format+"\n", args...)
		os.Exit(1)
	}

	mix, err := parseMix(*mixStr)
	if err != nil {
		fail("%v", err)
	}
	if *queries <= 0 || *concurrency <= 0 {
		fail("-queries and -concurrency must be positive")
	}
	if *deadEvery < 0 || *deadMS <= 0 {
		fail("-deadline-every must be >= 0 and -deadline-ms positive")
	}

	var orc *oracle
	if *verify {
		var g *bgl.Graph
		var err error
		if *weighted {
			g, err = bgl.GenerateWeighted(*n, *k, *graphSeed, bgl.WithMaxWeight(uint32(*maxw)))
		} else {
			g, err = bgl.Generate(*n, *k, *graphSeed)
		}
		if err != nil {
			fail("rebuilding the oracle graph: %v", err)
		}
		orc = &oracle{g: g, bfs: map[int][]int32{}, dijk: map[int][]uint32{}}
	}

	// Plan the whole stream up front: a pure function of the seed.
	// Deadline probes ride the same stream — every Nth planned query is
	// flagged, consuming no extra randomness, so -deadline-every does
	// not perturb the other queries.
	rng := splitmix64(*seed)
	plan := make([]query, *queries)
	nProbes := 0
	for i := range plan {
		plan[i] = query{
			kind:   mix[rng.next()%uint64(len(mix))],
			source: int(rng.next() % uint64(*n)),
			target: int(rng.next() % uint64(*n)),
		}
		if *deadEvery > 0 && (i+1)%*deadEvery == 0 {
			plan[i].deadline = true
			nProbes++
		}
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	copts := []graphd.ClientOption{graphd.WithTimeout(*timeout), graphd.WithRetries(*retries)}
	if *chaos {
		// The drill's client half: jittered backoff is already on by
		// default; add the breaker (fail fast if the server dies
		// outright) and hedged BFS (mask a straggling replica).
		copts = append(copts,
			graphd.WithJitterSeed(*seed),
			graphd.WithBreaker(5, 500*time.Millisecond),
			graphd.WithHedge(0.95, 50*time.Millisecond),
		)
	}
	client := graphd.NewClient(base, copts...)
	if err := client.Healthz(); err != nil {
		fail("server not healthy at %s: %v", base, err)
	}

	reg := metrics.NewRegistry()
	var failures, tripped atomic.Int64
	work := make(chan query)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range work {
				t0 := time.Now()
				var err error
				if q.deadline {
					err = runDeadlineProbe(client, q, *deadMS, &tripped)
				} else {
					err = runQuery(client, q, orc)
				}
				lat := time.Since(t0).Seconds()
				reg.Histogram("graphload_latency_seconds", metrics.TimeBuckets).Observe(lat)
				reg.Histogram("graphload_"+q.kind+"_latency_seconds", metrics.TimeBuckets).Observe(lat)
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "graphload: %s source=%d target=%d: %v\n", q.kind, q.source, q.target, err)
				}
			}
		}()
	}
	var interval time.Duration
	if *qps > 0 {
		interval = time.Duration(float64(time.Second) / *qps)
	}
	next := time.Now()
	for _, q := range plan {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		work <- q
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	total := reg.Histogram("graphload_latency_seconds", metrics.TimeBuckets)
	fmt.Printf("graphload: %d queries in %v (%.1f QPS, %d workers, %d failed)\n",
		*queries, elapsed.Round(time.Millisecond), float64(*queries)/elapsed.Seconds(), *concurrency, failures.Load())
	for _, kind := range []string{"bfs", "path", "sssp"} {
		h := reg.Histogram("graphload_"+kind+"_latency_seconds", metrics.TimeBuckets)
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("  %-4s  n=%-5d mean=%8.2fms  p50<=%s  p95<=%s\n",
			kind, h.Count(), 1e3*h.Sum()/float64(h.Count()), quantileBound(h, 0.50), quantileBound(h, 0.95))
	}
	fmt.Printf("  all   n=%-5d mean=%8.2fms  p50<=%s  p95<=%s\n",
		total.Count(), 1e3*total.Sum()/float64(total.Count()), quantileBound(total, 0.50), quantileBound(total, 0.95))

	st, err := client.Stats()
	if err != nil {
		fail("fetching /v1/stats: %v", err)
	}
	fmt.Printf("  server: %d bfs over %d sweeps (mean batch %.2f), %d path, %d sssp, %d rejected\n",
		st.Queries.BFS, st.Queries.Batches, st.Queries.MeanBatchSize, st.Queries.Path, st.Queries.SSSP, st.Queries.Rejected)
	if nProbes > 0 {
		fmt.Printf("  deadline probes: %d sent, %d answered 504 (server counted %d)\n",
			nProbes, tripped.Load(), st.Queries.DeadlineExceeded)
	}

	if *expectBatch && st.Queries.MeanBatchSize <= 1 {
		fail("expected batching, but the server's mean batch size is %.2f (%d queries over %d sweeps)",
			st.Queries.MeanBatchSize, st.Queries.BatchedQueries, st.Queries.Batches)
	}
	if *checkMet {
		text, err := client.Metrics()
		if err != nil {
			fail("fetching /metrics: %v", err)
		}
		for _, name := range []string{
			"graphd_queries_total", "graphd_batches_total",
			"graphd_batch_lanes", "graphd_latency_seconds",
		} {
			if !strings.Contains(text, name) {
				fail("/metrics is missing %s", name)
			}
		}
	}
	if *expectFault {
		if st.Faults == nil || st.Faults.Injected == 0 {
			fail("expected injected faults, but the server reports none (is -fault set on graphd?)")
		}
		fmt.Printf("  faults: plan %q injected %d (%d retries, %d checksum fails)\n",
			st.Faults.Plan, st.Faults.Injected, st.Faults.Retries, st.Faults.ChecksumFails)
	}
	if *chaos {
		chaosAssert(client, fail)
	}
	if failures.Load() > 0 {
		fail("%d of %d queries failed", failures.Load(), *queries)
	}
	if *verify {
		fmt.Printf("  verified %d answers against the serial oracles: OK\n", *queries-nProbes)
	}
}

// chaosAssert verifies the server went through the wringer and came
// back: at least one replica panic was recorded, every quarantined
// replica was rebuilt (polled, since the supervisor rebuilds in the
// background), and the recovered fleet still answers.
func chaosAssert(c *graphd.Client, fail func(string, ...any)) {
	deadline := time.Now().Add(30 * time.Second)
	var st *graphd.StatsResponse
	for {
		var err error
		if st, err = c.Stats(); err != nil {
			fail("chaos: fetching /v1/stats: %v", err)
		}
		if st.Replicas.Quarantined == 0 && st.Replicas.Live >= st.Replicas.Configured {
			break
		}
		if time.Now().After(deadline) {
			fail("chaos: %d replica(s) still quarantined (%d/%d live) after 30s; the supervisor never rebuilt them",
				st.Replicas.Quarantined, st.Replicas.Live, st.Replicas.Configured)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if st.Replicas.Panics == 0 {
		fail("chaos: the server recorded no replica panics; the drill never fired (is -chaos-panic-sweep armed?)")
	}
	if st.Replicas.Rebuilds == 0 {
		fail("chaos: %d panic(s) but zero rebuilds; quarantined replicas were never restored", st.Replicas.Panics)
	}
	if err := c.Healthz(); err != nil {
		fail("chaos: /healthz after recovery: %v", err)
	}
	src := 0
	if _, err := c.BFS(graphd.BFSRequest{Source: &src}); err != nil {
		fail("chaos: the recovered fleet failed a fresh BFS: %v", err)
	}
	fmt.Printf("  chaos: %d panic(s), %d rebuild(s), %d/%d replicas live: recovered OK\n",
		st.Replicas.Panics, st.Replicas.Rebuilds, st.Replicas.Live, st.Replicas.Configured)
}

// runDeadlineProbe sends q's kind with a tiny timeout_ms and requires
// a 504: the server must cut the query cooperatively at a boundary. A
// normal answer means the deadline was ignored; any other status — or
// a hang, caught by the client's own timeout — is a real failure.
func runDeadlineProbe(c *graphd.Client, q query, ms int, tripped *atomic.Int64) error {
	var err error
	switch q.kind {
	case "bfs":
		_, err = c.BFS(graphd.BFSRequest{Source: &q.source, Target: &q.target, TimeoutMS: ms})
	case "path":
		_, err = c.Path(graphd.PathRequest{Source: &q.source, Target: &q.target, TimeoutMS: ms})
	case "sssp":
		_, err = c.SSSP(graphd.SSSPRequest{Source: &q.source, Target: &q.target, TimeoutMS: ms})
	default:
		return fmt.Errorf("unknown query kind %q", q.kind)
	}
	if err == nil {
		return fmt.Errorf("deadline probe (timeout_ms=%d) was answered instead of cut with a 504", ms)
	}
	var ae *graphd.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGatewayTimeout {
		return fmt.Errorf("deadline probe: want a 504, got %w", err)
	}
	tripped.Add(1)
	return nil
}

// parseMix expands "bfs=6,path=1,sssp=1" into a weighted pick table.
func parseMix(s string) ([]string, error) {
	var mix []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		kind := strings.TrimSpace(kv[0])
		switch kind {
		case "bfs", "path", "sssp":
		default:
			return nil, fmt.Errorf("unknown query kind %q in -mix", kind)
		}
		w := 1
		if len(kv) == 2 {
			var err error
			if w, err = strconv.Atoi(strings.TrimSpace(kv[1])); err != nil || w < 0 {
				return nil, fmt.Errorf("bad weight %q for %q in -mix", kv[1], kind)
			}
		}
		for i := 0; i < w; i++ {
			mix = append(mix, kind)
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("-mix %q selects no queries", s)
	}
	return mix, nil
}

// runQuery executes one planned query and, when orc is non-nil, checks
// the answer against the serial oracle.
func runQuery(c *graphd.Client, q query, orc *oracle) error {
	switch q.kind {
	case "bfs":
		resp, err := c.BFS(graphd.BFSRequest{Source: &q.source, Target: &q.target})
		if err != nil {
			return err
		}
		if orc != nil {
			want := orc.levels(q.source)
			reached := 0
			for _, l := range want {
				if l != bgl.Unreached {
					reached++
				}
			}
			if resp.Reached != reached {
				return fmt.Errorf("reached %d, oracle %d", resp.Reached, reached)
			}
			if resp.Distance == nil || *resp.Distance != want[q.target] {
				return fmt.Errorf("distance %v, oracle %d", resp.Distance, want[q.target])
			}
		}
	case "path":
		resp, err := c.Path(graphd.PathRequest{Source: &q.source, Target: &q.target})
		if err != nil {
			return err
		}
		if orc != nil {
			want := orc.levels(q.source)[q.target]
			if resp.Found != (want != bgl.Unreached) {
				return fmt.Errorf("found=%v, oracle level %d", resp.Found, want)
			}
			if resp.Found && resp.Distance != want {
				return fmt.Errorf("path length %d, oracle %d", resp.Distance, want)
			}
		}
	case "sssp":
		resp, err := c.SSSP(graphd.SSSPRequest{Source: &q.source, Target: &q.target})
		if err != nil {
			return err
		}
		if orc != nil {
			want := orc.dists(q.source)[q.target]
			if resp.Distance == nil || *resp.Distance != want {
				return fmt.Errorf("sssp distance %v, oracle %d", resp.Distance, want)
			}
		}
	default:
		return fmt.Errorf("unknown query kind %q", q.kind)
	}
	return nil
}

// quantileBound reports the histogram bucket bound covering quantile q
// — the resolution the fixed TimeBuckets give without storing samples.
func quantileBound(h *metrics.Histogram, q float64) string {
	bounds, cum := h.Buckets()
	total := h.Count()
	if total == 0 {
		return "n/a"
	}
	rank := int64(q * float64(total))
	i := sort.Search(len(cum), func(i int) bool { return cum[i] > rank })
	if i >= len(bounds) {
		return "+Inf"
	}
	return fmt.Sprintf("%gms", 1e3*bounds[i])
}
