// Command graphload is the deterministic load generator for graphd: a
// seeded mix of BFS / path / SSSP queries fired at a target rate from a
// pool of concurrent workers, with per-kind latency histograms and
// optional oracle verification of every answer (the generator rebuilds
// the server's graph locally from the same -n/-k/-graph-seed and checks
// each response against serial BFS / Dijkstra).
//
// The query stream is a pure function of -seed: the same seed, count,
// and mix produce the same queries in the same order, so a smoke run is
// reproducible end to end.
//
// Usage:
//
//	graphload -addr 127.0.0.1:8080 -queries 500 -concurrency 16
//	graphload -addr $(cat /tmp/graphd.port) -queries 120 -seed 7 \
//	    -mix bfs=6,path=1,sssp=1 -verify -n 20000 -k 10 -graph-seed 42 -weighted \
//	    -expect-batching -check-metrics
//
// Exit status is non-zero on any failed query, failed verification, or
// failed -expect-batching / -check-metrics assertion.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	bgl "repro"
	"repro/internal/graphd"
	"repro/internal/metrics"
)

// splitmix64 is the seeded generator behind the query stream — tiny,
// deterministic, and identical across platforms.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// query is one planned request.
type query struct {
	kind   string // bfs | path | sssp
	source int
	target int
}

// oracle lazily computes and caches serial answers per source.
type oracle struct {
	g    *bgl.Graph
	mu   sync.Mutex
	bfs  map[int][]int32
	dijk map[int][]uint32
}

func (o *oracle) levels(src int) []int32 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if l, ok := o.bfs[src]; ok {
		return l
	}
	l := o.g.SerialBFS(bgl.Vertex(src))
	o.bfs[src] = l
	return l
}

func (o *oracle) dists(src int) []uint32 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if d, ok := o.dijk[src]; ok {
		return d
	}
	d := o.g.SerialDijkstra(bgl.Vertex(src))
	o.dijk[src] = d
	return d
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "graphd address (host:port or full http:// URL)")
		queries     = flag.Int("queries", 200, "total queries to send")
		qps         = flag.Float64("qps", 0, "target release rate (0 = as fast as the workers go)")
		concurrency = flag.Int("concurrency", 8, "concurrent workers")
		seed        = flag.Uint64("seed", 1, "query-stream seed")
		mixStr      = flag.String("mix", "bfs=6,path=1,sssp=1", "query mix as kind=weight pairs")
		verify      = flag.Bool("verify", false, "verify every answer against the serial oracles (needs -n/-k/-graph-seed to match the server)")
		n           = flag.Int("n", 100000, "server graph vertices (query range; oracle rebuild under -verify)")
		k           = flag.Float64("k", 10, "server graph average degree (oracle rebuild)")
		graphSeed   = flag.Int64("graph-seed", 42, "server graph seed (oracle rebuild)")
		weighted    = flag.Bool("weighted", false, "the server graph is weighted (oracle rebuild)")
		maxw        = flag.Uint("maxw", 0, "server graph max edge weight (oracle rebuild)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-attempt HTTP timeout")
		retries     = flag.Int("retries", 3, "retries per query on overload/transport failure")
		checkMet    = flag.Bool("check-metrics", false, "fetch /metrics afterwards and require the graphd instruments")
		expectBatch = flag.Bool("expect-batching", false, "require the server to have coalesced queries (mean batch size > 1)")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "graphload: "+format+"\n", args...)
		os.Exit(1)
	}

	mix, err := parseMix(*mixStr)
	if err != nil {
		fail("%v", err)
	}
	if *queries <= 0 || *concurrency <= 0 {
		fail("-queries and -concurrency must be positive")
	}

	var orc *oracle
	if *verify {
		var g *bgl.Graph
		var err error
		if *weighted {
			g, err = bgl.GenerateWeighted(*n, *k, *graphSeed, bgl.WithMaxWeight(uint32(*maxw)))
		} else {
			g, err = bgl.Generate(*n, *k, *graphSeed)
		}
		if err != nil {
			fail("rebuilding the oracle graph: %v", err)
		}
		orc = &oracle{g: g, bfs: map[int][]int32{}, dijk: map[int][]uint32{}}
	}

	// Plan the whole stream up front: a pure function of the seed.
	rng := splitmix64(*seed)
	plan := make([]query, *queries)
	for i := range plan {
		plan[i] = query{
			kind:   mix[rng.next()%uint64(len(mix))],
			source: int(rng.next() % uint64(*n)),
			target: int(rng.next() % uint64(*n)),
		}
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := graphd.NewClient(base, graphd.WithTimeout(*timeout), graphd.WithRetries(*retries))
	if err := client.Healthz(); err != nil {
		fail("server not healthy at %s: %v", base, err)
	}

	reg := metrics.NewRegistry()
	var failures atomic.Int64
	work := make(chan query)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range work {
				t0 := time.Now()
				err := runQuery(client, q, orc)
				lat := time.Since(t0).Seconds()
				reg.Histogram("graphload_latency_seconds", metrics.TimeBuckets).Observe(lat)
				reg.Histogram("graphload_"+q.kind+"_latency_seconds", metrics.TimeBuckets).Observe(lat)
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "graphload: %s source=%d target=%d: %v\n", q.kind, q.source, q.target, err)
				}
			}
		}()
	}
	var interval time.Duration
	if *qps > 0 {
		interval = time.Duration(float64(time.Second) / *qps)
	}
	next := time.Now()
	for _, q := range plan {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		work <- q
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	total := reg.Histogram("graphload_latency_seconds", metrics.TimeBuckets)
	fmt.Printf("graphload: %d queries in %v (%.1f QPS, %d workers, %d failed)\n",
		*queries, elapsed.Round(time.Millisecond), float64(*queries)/elapsed.Seconds(), *concurrency, failures.Load())
	for _, kind := range []string{"bfs", "path", "sssp"} {
		h := reg.Histogram("graphload_"+kind+"_latency_seconds", metrics.TimeBuckets)
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("  %-4s  n=%-5d mean=%8.2fms  p50<=%s  p95<=%s\n",
			kind, h.Count(), 1e3*h.Sum()/float64(h.Count()), quantileBound(h, 0.50), quantileBound(h, 0.95))
	}
	fmt.Printf("  all   n=%-5d mean=%8.2fms  p50<=%s  p95<=%s\n",
		total.Count(), 1e3*total.Sum()/float64(total.Count()), quantileBound(total, 0.50), quantileBound(total, 0.95))

	st, err := client.Stats()
	if err != nil {
		fail("fetching /v1/stats: %v", err)
	}
	fmt.Printf("  server: %d bfs over %d sweeps (mean batch %.2f), %d path, %d sssp, %d rejected\n",
		st.Queries.BFS, st.Queries.Batches, st.Queries.MeanBatchSize, st.Queries.Path, st.Queries.SSSP, st.Queries.Rejected)

	if *expectBatch && st.Queries.MeanBatchSize <= 1 {
		fail("expected batching, but the server's mean batch size is %.2f (%d queries over %d sweeps)",
			st.Queries.MeanBatchSize, st.Queries.BatchedQueries, st.Queries.Batches)
	}
	if *checkMet {
		text, err := client.Metrics()
		if err != nil {
			fail("fetching /metrics: %v", err)
		}
		for _, name := range []string{
			"graphd_queries_total", "graphd_batches_total",
			"graphd_batch_lanes", "graphd_latency_seconds",
		} {
			if !strings.Contains(text, name) {
				fail("/metrics is missing %s", name)
			}
		}
	}
	if failures.Load() > 0 {
		fail("%d of %d queries failed", failures.Load(), *queries)
	}
	if *verify {
		fmt.Printf("  verified %d answers against the serial oracles: OK\n", *queries)
	}
}

// parseMix expands "bfs=6,path=1,sssp=1" into a weighted pick table.
func parseMix(s string) ([]string, error) {
	var mix []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		kind := strings.TrimSpace(kv[0])
		switch kind {
		case "bfs", "path", "sssp":
		default:
			return nil, fmt.Errorf("unknown query kind %q in -mix", kind)
		}
		w := 1
		if len(kv) == 2 {
			var err error
			if w, err = strconv.Atoi(strings.TrimSpace(kv[1])); err != nil || w < 0 {
				return nil, fmt.Errorf("bad weight %q for %q in -mix", kv[1], kind)
			}
		}
		for i := 0; i < w; i++ {
			mix = append(mix, kind)
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("-mix %q selects no queries", s)
	}
	return mix, nil
}

// runQuery executes one planned query and, when orc is non-nil, checks
// the answer against the serial oracle.
func runQuery(c *graphd.Client, q query, orc *oracle) error {
	switch q.kind {
	case "bfs":
		resp, err := c.BFS(graphd.BFSRequest{Source: &q.source, Target: &q.target})
		if err != nil {
			return err
		}
		if orc != nil {
			want := orc.levels(q.source)
			reached := 0
			for _, l := range want {
				if l != bgl.Unreached {
					reached++
				}
			}
			if resp.Reached != reached {
				return fmt.Errorf("reached %d, oracle %d", resp.Reached, reached)
			}
			if resp.Distance == nil || *resp.Distance != want[q.target] {
				return fmt.Errorf("distance %v, oracle %d", resp.Distance, want[q.target])
			}
		}
	case "path":
		resp, err := c.Path(graphd.PathRequest{Source: &q.source, Target: &q.target})
		if err != nil {
			return err
		}
		if orc != nil {
			want := orc.levels(q.source)[q.target]
			if resp.Found != (want != bgl.Unreached) {
				return fmt.Errorf("found=%v, oracle level %d", resp.Found, want)
			}
			if resp.Found && resp.Distance != want {
				return fmt.Errorf("path length %d, oracle %d", resp.Distance, want)
			}
		}
	case "sssp":
		resp, err := c.SSSP(graphd.SSSPRequest{Source: &q.source, Target: &q.target})
		if err != nil {
			return err
		}
		if orc != nil {
			want := orc.dists(q.source)[q.target]
			if resp.Distance == nil || *resp.Distance != want {
				return fmt.Errorf("sssp distance %v, oracle %d", resp.Distance, want)
			}
		}
	default:
		return fmt.Errorf("unknown query kind %q", q.kind)
	}
	return nil
}

// quantileBound reports the histogram bucket bound covering quantile q
// — the resolution the fixed TimeBuckets give without storing samples.
func quantileBound(h *metrics.Histogram, q float64) string {
	bounds, cum := h.Buckets()
	total := h.Count()
	if total == 0 {
		return "n/a"
	}
	rank := int64(q * float64(total))
	i := sort.Search(len(cum), func(i int) bool { return cum[i] > rank })
	if i >= len(bounds) {
		return "+Inf"
	}
	return fmt.Sprintf("%gms", 1e3*bounds[i])
}
