// Command graphgen generates a Poisson random graph and reports its
// statistics: measured average degree, degree histogram summary,
// connectivity, eccentricity from a sample vertex, and the analytic
// expectations from §3.1 (γ values and expected message lengths for
// chosen partitionings).
//
// Usage:
//
//	graphgen -n 100000 -k 10 -seed 42 -p 64
//	graphgen -n 1000 -k 4 -edges        # dump the edge list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/analytic"
	"repro/internal/graph"
)

func main() {
	var (
		n     = flag.Int("n", 100000, "vertices")
		k     = flag.Float64("k", 10, "expected average degree")
		seed  = flag.Int64("seed", 42, "generator seed")
		p     = flag.Int("p", 64, "processor count for the analytic table")
		edges = flag.Bool("edges", false, "dump edge list to stdout instead of stats")
	)
	flag.Parse()

	params := graph.Params{N: *n, K: *k, Seed: *seed}
	if *edges {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		if err := params.VisitEdges(func(u, v graph.Vertex) {
			fmt.Fprintf(w, "%d %d\n", u, v)
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	g, err := graph.Generate(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Poisson random graph: n=%d k=%g seed=%d\n", *n, *k, *seed)
	fmt.Printf("  edges:            %d (avg degree %.3f, max %d)\n",
		g.NumEdges(), g.AvgDegree(), g.MaxDegree())
	src := graph.LargestComponentVertex(g)
	ecc, reached := graph.Eccentricity(g, src)
	fmt.Printf("  largest component: %d vertices (%.1f%%), eccentricity %d from vertex %d\n",
		reached, 100*float64(reached)/float64(g.N), ecc, src)
	fmt.Printf("  diameter estimate: %.2f (log n / log k)\n", graph.ExpectedDiameter(g.N, *k))

	fmt.Printf("\n§3.1 analytic expectations for P=%d:\n", *p)
	nf := float64(*n)
	fmt.Printf("  1D fold  n·γ(n/P)·(P−1)/P:      %.1f words/processor/level\n",
		analytic.Expected1DFold(nf, *k, *p))
	sq := int(math.Round(math.Sqrt(float64(*p))))
	if sq*sq == *p {
		fmt.Printf("  2D expand (n/P)·γ(n/R)·(R−1):   %.1f  (R=C=%d)\n",
			analytic.Expected2DExpand(nf, *k, sq, sq), sq)
		fmt.Printf("  2D fold   (n/P)·γ(n/C)·(C−1):   %.1f\n",
			analytic.Expected2DFold(nf, *k, sq, sq))
		if cross, err := analytic.CrossoverK(nf, *p, nf); err == nil {
			fmt.Printf("  1D/2D crossover degree:          %.2f\n", cross)
		}
	}
	fmt.Printf("  worst case nk/P:                 %.1f\n", analytic.WorstCase1DFold(nf, *k, *p))
}
