// Package bgl is a Go reproduction of "A Scalable Distributed Parallel
// Breadth-First Search Algorithm on BlueGene/L" (Yoo et al., SC 2005).
//
// It provides level-synchronized distributed BFS over Poisson random
// graphs with 1D (vertex) and 2D (edge) partitionings, uni- and
// bi-directional searches, the paper's BlueGene/L-optimized two-phase
// collectives (including the union-fold), and a simulated torus runtime
// that stands in for the 32,768-node machine: ranks are goroutines,
// collectives are hand-rolled from point-to-point messages, and a
// deterministic cost model reports simulated execution/communication
// times alongside real wall time.
//
// The public surface is partition-polymorphic: Distribute splits a
// graph under any of the paper's Table 1 partitionings (Part2D,
// Part1DRow, Part1DCol — see WithPartition) and every search entry
// point (BFS, Search, BiSearch, Path, SSSP, MultiBFS) dispatches to
// the engine matching the DistGraph's partitioning. One Option
// vocabulary serves every algorithm: WithWire, WithChunkWords and
// WithOccupancy configure the shared payload/codec machinery, while
// algorithm-specific options (WithDirection, WithDelta, ...) apply
// only to their family.
//
// Beyond the paper, searches can run with a direction policy
// (WithDirection): top-down, bottom-up, or direction-optimizing
// traversal that switches to a bitmap-exchanged bottom-up parent
// search on the large middle levels, plus an adaptive sparse/dense
// frontier representation and compressed wire encodings (WithWire)
// for the exchanged vertex sets. Weighted graphs (GenerateWeighted)
// additionally support distributed single-source shortest paths by
// Δ-stepping (Cluster.SSSP, WithDelta), validated against a serial
// Dijkstra oracle; and batches of up to 64 sources can traverse
// together in one bit-lane-parallel sweep sequence (Cluster.MultiBFS),
// sharing every set payload across the batch.
//
// Quick start:
//
//	g, _ := bgl.Generate(100000, 10, 42)
//	cl, _ := bgl.NewCluster(bgl.ClusterConfig{R: 4, C: 4})
//	dg, _ := cl.Distribute(g)                   // 2D edge partitioning (default)
//	res, _ := cl.BFS(dg, g.LargestComponentVertex(), bgl.WithWire(bgl.WireHybrid))
//	fmt.Println(res.Reached(), res.SimTime)
//
//	// The same entry points run on the 1D partitionings of Table 1:
//	dg1, _ := cl.Distribute(g, bgl.WithPartition(bgl.Part1DCol))
//	res1, _ := cl.BFS(dg1, g.LargestComponentVertex())
//
//	// Batched multi-source BFS: k path queries in one sweep sequence.
//	mres, _ := cl.MultiBFS(dg, []bgl.Vertex{3, 99, 1024})
//	fmt.Println(mres.LaneLevels[1][42]) // distance 99 -> 42
package bgl

import (
	"fmt"
	"io"

	"repro/internal/bfs"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sssp"
	"repro/internal/torus"
)

// Vertex is a global vertex id.
type Vertex = graph.Vertex

// Unreached marks vertices a search did not label.
const Unreached = graph.Unreached

// Result re-exports the search result type: levels, per-level message
// statistics, simulated times and the redundancy ratio.
type Result = bfs.Result

// LevelStats re-exports the per-level statistics record.
type LevelStats = bfs.LevelStats

// Graph is an undirected Poisson random graph (or any hand-built
// undirected graph) in CSR form.
type Graph struct {
	csr *graph.CSR
}

// Generate creates the paper's workload: a Poisson random graph with n
// vertices and expected average degree k, deterministic in seed.
func Generate(n int, k float64, seed int64) (*Graph, error) {
	g, err := graph.Generate(graph.Params{N: n, K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Graph{csr: g}, nil
}

// MaxDist marks vertices a shortest-path search did not reach.
const MaxDist = graph.MaxDist

// WeightDist re-exports the edge-weight distribution selector.
type WeightDist = graph.WeightDist

// Edge-weight distributions for GenerateWeighted.
const (
	WeightUniform     = graph.WeightUniform
	WeightExponential = graph.WeightExponential
	WeightUnit        = graph.WeightUnit
)

// WeightOption adjusts the weight assignment of GenerateWeighted.
type WeightOption func(*graph.WeightSpec)

// WithWeightDist selects the edge-weight distribution.
func WithWeightDist(d WeightDist) WeightOption {
	return func(s *graph.WeightSpec) { s.Dist = d }
}

// WithMaxWeight bounds every weight draw (default graph.DefaultMaxWeight).
func WithMaxWeight(w uint32) WeightOption {
	return func(s *graph.WeightSpec) { s.MaxWeight = w }
}

// WithWeightSeed decorrelates the weight draws from the topology seed.
func WithWeightSeed(seed int64) WeightOption {
	return func(s *graph.WeightSpec) { s.Seed = seed }
}

// GenerateWeighted creates the Poisson random graph of Generate with
// per-edge uint32 weights: identical topology for the same (n, k,
// seed), weights drawn by a deterministic symmetric hash of the edge
// endpoints (uniform in [1, max] by default; see WithWeightDist).
func GenerateWeighted(n int, k float64, seed int64, opts ...WeightOption) (*Graph, error) {
	spec := graph.WeightSpec{Dist: graph.WeightUniform, Seed: seed + 1}
	for _, fn := range opts {
		fn(&spec)
	}
	g, err := graph.GenerateWeighted(graph.Params{N: n, K: k, Seed: seed}, spec)
	if err != nil {
		return nil, err
	}
	return &Graph{csr: g}, nil
}

// FromWeightedEdges builds a weighted graph from an explicit
// undirected edge list and a parallel slice of positive weights.
func FromWeightedEdges(n int, edges [][2]Vertex, weights []uint32) (*Graph, error) {
	g, err := graph.FromWeightedEdges(n, edges, weights)
	if err != nil {
		return nil, err
	}
	return &Graph{csr: g}, nil
}

// FromEdges builds a graph from an explicit undirected edge list.
func FromEdges(n int, edges [][2]Vertex) (*Graph, error) {
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	return &Graph{csr: g}, nil
}

// Load reads a plain-text edge list ("u v" per line, optional
// "# n <count>" header) as written by Save or cmd/graphgen -edges.
func Load(r io.Reader) (*Graph, error) {
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Graph{csr: g}, nil
}

// Save writes the graph as a plain-text edge list with a vertex-count
// header; Load round-trips it.
func (g *Graph) Save(w io.Writer) error { return graph.WriteEdgeList(w, g.csr) }

// N returns the vertex count.
func (g *Graph) N() int { return g.csr.N }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int64 { return g.csr.NumEdges() }

// AvgDegree returns the measured average degree.
func (g *Graph) AvgDegree() float64 { return g.csr.AvgDegree() }

// Degree returns the degree of v.
func (g *Graph) Degree(v Vertex) int { return g.csr.Degree(v) }

// Neighbors returns v's adjacency list (aliased, do not modify).
func (g *Graph) Neighbors(v Vertex) []Vertex { return g.csr.Neighbors(v) }

// Weighted reports whether the graph carries explicit edge weights.
func (g *Graph) Weighted() bool { return g.csr.Weighted() }

// EdgeWeightRange returns the smallest and largest edge weight (1, 1
// for unweighted graphs) — the anchors of the useful Δ range.
func (g *Graph) EdgeWeightRange() (min, max uint32) {
	return g.csr.MinEdgeWeight(), g.csr.MaxEdgeWeight()
}

// SerialBFS runs the single-machine reference BFS.
func (g *Graph) SerialBFS(src Vertex) []int32 { return graph.BFS(g.csr, src) }

// SerialDijkstra runs the single-machine shortest-path oracle every
// distributed Δ-stepping run is validated against (unit weights when
// the graph is unweighted).
func (g *Graph) SerialDijkstra(src Vertex) []uint32 { return graph.Dijkstra(g.csr, src) }

// SerialDistance returns the exact s→t distance (Unreached if none).
func (g *Graph) SerialDistance(s, t Vertex) int32 { return graph.Distance(g.csr, s, t) }

// LargestComponentVertex returns a vertex in the largest component.
func (g *Graph) LargestComponentVertex() Vertex { return graph.LargestComponentVertex(g.csr) }

// Relabel returns a copy of the graph with vertex ids permuted
// uniformly at random (deterministic in seed) and the permutation
// perm[old] = new. The blocked partitionings assume ids spread load
// evenly over contiguous blocks; relabeling restores that for inputs
// whose ids carry locality.
func (g *Graph) Relabel(seed int64) (*Graph, []Vertex) {
	rg, perm := graph.Relabel(g.csr, seed)
	return &Graph{csr: rg}, perm
}

// visit streams the graph's edges for the partition builders. Walking
// an in-memory CSR cannot fail, so — unlike the IO-backed edge sources
// the builders also accept — visit has no error to report and returns
// none; visitSource adapts it to the builders' fallible-source shape
// without inventing an error path that silently never fires.
func (g *Graph) visit(fn func(u, v Vertex)) {
	for v := 0; v < g.csr.N; v++ {
		for _, u := range g.csr.Neighbors(Vertex(v)) {
			if Vertex(v) < u {
				fn(Vertex(v), u)
			}
		}
	}
}

// visitSource adapts visit to the partition builders' edge-source
// contract (which must admit failing sources such as file readers).
func (g *Graph) visitSource(fn func(u, v Vertex)) error {
	g.visit(fn)
	return nil
}

// MappingKind selects how logical ranks are placed on the torus.
type MappingKind int

const (
	// MapPlanes is the paper's Figure 1 mapping: the logical R x C
	// array is tiled onto torus planes so processor-column (expand)
	// traffic crosses adjacent planes. Falls back to row-major when the
	// array does not tile the torus.
	MapPlanes MappingKind = iota
	// MapRowMajor places ranks in plain row-major torus order.
	MapRowMajor
)

// ClusterConfig describes the simulated machine.
type ClusterConfig struct {
	// R, C are the logical processor mesh dimensions; P = R*C ranks.
	// C = 1 or R = 1 give the two 1D partitionings of Table 1.
	R, C int
	// TorusDims optionally fixes the 3D torus shape (X, Y, Z); zero
	// means fit automatically around P.
	TorusDims [3]int
	// Mapping selects rank placement (default MapPlanes with fallback).
	Mapping MappingKind
	// ClusterModel switches the cost model from the BlueGene/L preset
	// to the Quadrics-cluster preset (the paper's MCR comparison).
	ClusterModel bool
}

// Cluster is a simulated machine: a world of R*C goroutine ranks on a
// torus with a cost model.
type Cluster struct {
	cfg   ClusterConfig
	world *comm.World
}

// NewCluster builds the simulated machine.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.R <= 0 || cfg.C <= 0 {
		return nil, fmt.Errorf("bgl: mesh must be positive, got %dx%d", cfg.R, cfg.C)
	}
	p := cfg.R * cfg.C
	var tor torus.Torus
	var err error
	if cfg.TorusDims != [3]int{} {
		tor, err = torus.New(cfg.TorusDims[0], cfg.TorusDims[1], cfg.TorusDims[2])
		if err != nil {
			return nil, err
		}
	} else {
		tor = torus.FitTorus(p)
	}
	var mapping *torus.Mapping
	switch cfg.Mapping {
	case MapPlanes:
		mapping, err = torus.Planes(tor, cfg.R, cfg.C)
		if err != nil {
			// The logical array does not tile this torus; fall back.
			mapping, err = torus.RowMajor(tor, p)
		}
	case MapRowMajor:
		mapping, err = torus.RowMajor(tor, p)
	default:
		return nil, fmt.Errorf("bgl: unknown mapping %d", cfg.Mapping)
	}
	if err != nil {
		return nil, err
	}
	model := torus.PresetBlueGeneL()
	if cfg.ClusterModel {
		model = torus.PresetCluster()
	}
	w, err := comm.NewWorld(comm.Config{P: p, Mapping: mapping, Model: model})
	if err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg, world: w}, nil
}

// P returns the rank count.
func (c *Cluster) P() int { return c.cfg.R * c.cfg.C }

// Mesh returns the logical mesh dimensions.
func (c *Cluster) Mesh() (r, cc int) { return c.cfg.R, c.cfg.C }

// Partition selects how Distribute splits a graph over the cluster's
// P = R*C ranks — the head-to-head axis of the paper's Table 1. Every
// search entry point dispatches to the engine matching the DistGraph's
// partitioning, so the choice is purely a data-layout decision.
type Partition int

const (
	// Part2D is the paper's 2D edge partitioning (§2.2) over the full
	// R x C mesh: the adjacency matrix is split into block rows and
	// columns, expand runs down processor columns and fold across
	// processor rows. The default.
	Part2D Partition = iota
	// Part1DRow is the row-wise 1D partitioning of Table 1: the 2D
	// layout with the mesh collapsed to P x 1, so each rank stores a
	// block of matrix rows for every vertex and levels pay a
	// full-column expand.
	Part1DRow
	// Part1DCol is the conventional column-wise 1D vertex partitioning
	// of §2.1: each rank owns a contiguous vertex block with full edge
	// lists (whole matrix columns), and each level is a single fold
	// over all P ranks. Runs on the dedicated 1D engine (Algorithm 1).
	Part1DCol
)

func (p Partition) String() string {
	switch p {
	case Part2D:
		return "2d"
	case Part1DRow:
		return "1drow"
	case Part1DCol:
		return "1dcol"
	default:
		return fmt.Sprintf("Partition(%d)", int(p))
	}
}

// distributeConfig collects Distribute's options.
type distributeConfig struct {
	part Partition
}

// DistributeOption adjusts how Distribute lays the graph out.
type DistributeOption func(*distributeConfig)

// WithPartition selects the partitioning (default Part2D).
func WithPartition(p Partition) DistributeOption {
	return func(c *distributeConfig) { c.part = p }
}

// DistGraph is a graph distributed over a cluster's ranks. It carries
// its partitioning: every search entry point dispatches to the
// matching engine.
type DistGraph struct {
	graph *Graph
	part  Partition

	// 2D-layout storage (Part2D and Part1DRow).
	layout *partition.Layout2D
	stores []*partition.Store2D
	// Dedicated 1D storage (Part1DCol).
	layout1 *partition.Layout1D
	stores1 []*partition.Store1D
}

// Distribute partitions g over the cluster's mesh under the selected
// partitioning (Part2D by default; see WithPartition). Weighted graphs
// distribute their edge weights alongside the partial edge lists. The
// centralized loader stands in for the original system's parallel file
// I/O.
func (c *Cluster) Distribute(g *Graph, opts ...DistributeOption) (*DistGraph, error) {
	cfg := distributeConfig{part: Part2D}
	for _, fn := range opts {
		fn(&cfg)
	}
	p := c.P()
	if g.N() < p {
		return nil, fmt.Errorf(
			"bgl: mesh %dx%d has more ranks (%d) than the graph has vertices (%d); no %s layout can give every rank work — shrink the mesh or grow the graph",
			c.cfg.R, c.cfg.C, p, g.N(), cfg.part)
	}
	weighted := g.csr.Weighted()
	dg := &DistGraph{graph: g, part: cfg.part}
	switch cfg.part {
	case Part2D, Part1DRow:
		r, cc := c.cfg.R, c.cfg.C
		if cfg.part == Part1DRow {
			r, cc = p, 1
		}
		l, err := partition.NewLayout2D(g.N(), r, cc)
		if err != nil {
			return nil, err
		}
		var stores []*partition.Store2D
		if weighted {
			stores, err = partition.Build2DWeighted(l, g.csr.VisitWeightedEdges)
		} else {
			stores, err = partition.Build2D(l, g.visitSource)
		}
		if err != nil {
			return nil, err
		}
		dg.layout, dg.stores = l, stores
	case Part1DCol:
		l, err := partition.NewLayout1D(g.N(), p)
		if err != nil {
			return nil, err
		}
		var stores []*partition.Store1D
		if weighted {
			stores, err = partition.Build1DWeighted(l, g.csr.VisitWeightedEdges)
		} else {
			stores, err = partition.Build1D(l, g.visitSource)
		}
		if err != nil {
			return nil, err
		}
		dg.layout1, dg.stores1 = l, stores
	default:
		return nil, fmt.Errorf("bgl: unknown partitioning %s", cfg.part)
	}
	return dg, nil
}

// Graph returns the underlying graph.
func (dg *DistGraph) Graph() *Graph { return dg.graph }

// Partition returns the partitioning the graph was distributed under.
func (dg *DistGraph) Partition() Partition { return dg.part }

// MemoryStats re-exports the per-rank storage summary of §2.4.1.
type MemoryStats = partition.MemoryStats

// Memory returns per-rank storage statistics, demonstrating the
// §2.4.1 claim that indexed state stays O(n/P) rather than O(n/C).
func (dg *DistGraph) Memory() []MemoryStats {
	if dg.part == Part1DCol {
		out := make([]MemoryStats, len(dg.stores1))
		for i, st := range dg.stores1 {
			nonEmpty := 0
			for li := 0; li < st.OwnedCount(); li++ {
				if st.Off[li+1] > st.Off[li] {
					nonEmpty++
				}
			}
			out[i] = MemoryStats{
				OwnedVertices:   st.OwnedCount(),
				NonEmptyColumns: nonEmpty,
				DistinctRows:    st.TargetCount,
				EdgeEntries:     len(st.Adj),
				DenseColumns:    st.OwnedCount(),
			}
		}
		return out
	}
	out := make([]MemoryStats, len(dg.stores))
	for i, st := range dg.stores {
		out[i] = st.Memory()
	}
	return out
}

// SSSPResult re-exports the Δ-stepping result: per-vertex distances,
// per-epoch statistics, and simulated times.
type SSSPResult = sssp.Result

// EpochStats re-exports the per-epoch Δ-stepping statistics record.
type EpochStats = sssp.EpochStats

// DeltaInf selects the single-bucket (Bellman-Ford) degenerate of
// Δ-stepping.
const DeltaInf = sssp.DeltaInf

// SSSP runs distributed single-source shortest paths by Δ-stepping
// from source over the DistGraph's partitioning. Unweighted graphs run
// with unit weights (distances equal BFS levels). Δ defaults to
// max(1, maxWeight/avgDegree); tune it with WithDelta.
func (c *Cluster) SSSP(dg *DistGraph, source Vertex, opts ...Option) (*SSSPResult, error) {
	cfg := newSearchConfig(source)
	cfg.apply(opts)
	if dg.part == Part1DCol {
		return sssp.Run1D(c.world, dg.stores1, cfg.sssp)
	}
	return sssp.Run2D(c.world, dg.stores, cfg.sssp)
}

// runUni dispatches a configured uni-directional search to the engine
// matching dg's partitioning.
func (c *Cluster) runUni(dg *DistGraph, o bfs.Options) (*Result, error) {
	if dg.part == Part1DCol {
		return bfs.Run1D(c.world, dg.stores1, o)
	}
	return bfs.Run2D(c.world, dg.stores, o)
}

// BFS runs a full distributed traversal from source.
func (c *Cluster) BFS(dg *DistGraph, source Vertex, opts ...Option) (*Result, error) {
	cfg := newSearchConfig(source)
	cfg.apply(opts)
	return c.runUni(dg, cfg.bfs)
}

// Search runs a uni-directional s→t search that stops when t is
// labeled, as in the paper's timing experiments.
func (c *Cluster) Search(dg *DistGraph, s, t Vertex, opts ...Option) (*Result, error) {
	cfg := newSearchConfig(s)
	cfg.bfs.Target, cfg.bfs.HasTarget = t, true
	cfg.apply(opts)
	return c.runUni(dg, cfg.bfs)
}

// BiSearch runs the bi-directional s→t search of §2.3 (the paper
// notes either partitioning can host it).
func (c *Cluster) BiSearch(dg *DistGraph, s, t Vertex, opts ...Option) (*Result, error) {
	cfg := newSearchConfig(s)
	cfg.bfs.Target, cfg.bfs.HasTarget = t, true
	cfg.apply(opts)
	if dg.part == Part1DCol {
		return bfs.RunBidirectional1D(c.world, dg.stores1, cfg.bfs)
	}
	return bfs.RunBidirectional2D(c.world, dg.stores, cfg.bfs)
}

// Path runs a distributed BFS from s and reconstructs one shortest
// path s→t from the assembled levels — the paper's §1 semantic-graph
// use case ("the nature of the relationship ... can be determined by
// the shortest path"). Returns the path [s, ..., t] and the search
// Result, or an error if t is unreachable.
func (c *Cluster) Path(dg *DistGraph, s, t Vertex, opts ...Option) ([]Vertex, *Result, error) {
	cfg := newSearchConfig(s)
	cfg.bfs.Target, cfg.bfs.HasTarget = t, true
	cfg.apply(opts)
	res, err := c.runUni(dg, cfg.bfs)
	if err != nil {
		// A canceled run hands back its partial Result next to the
		// *Canceled error; other failures have no Result.
		return nil, res, err
	}
	if !res.Found {
		return nil, res, fmt.Errorf("bgl: vertex %d not reachable from %d", t, s)
	}
	path, err := graph.PathFromLevels(dg.graph.csr, res.Levels, s, t)
	if err != nil {
		return nil, res, err
	}
	return path, res, nil
}

// MultiResult re-exports the batched multi-source BFS result: per-lane
// level arrays, nearest-source Levels, and per-sweep statistics.
type MultiResult = bfs.MultiResult

// MaxLanes is the multi-source batch capacity (one bit-lane per
// source).
const MaxLanes = bfs.MaxLanes

// MultiBFS runs a batched multi-source BFS: up to MaxLanes sources
// traverse together, one bit-lane per source, sharing one wire payload
// per hop (the lane-OR frontier rides the configured wire codec with
// the lane masks alongside). Each lane's levels are identical to an
// independent BFS from that source, but the batch moves far fewer
// total words than len(sources) separate runs — the §1 semantic-graph
// workload of answering many path queries at once.
//
// Batched sweeps are always top-down with the targeted expand (a lane
// mask must accompany every travelling vertex, which the bottom-up
// bitmap exchange and the sent-neighbors cache cannot express), so of
// the BFS-family options only WithMaxLevels applies; WithDirection,
// WithExpand, WithFold and WithSentCache are ignored. The shared
// options (WithWire, WithChunkWords, WithOccupancy) apply as usual.
func (c *Cluster) MultiBFS(dg *DistGraph, sources []Vertex, opts ...Option) (*MultiResult, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("bgl: MultiBFS needs at least one source")
	}
	cfg := newSearchConfig(sources[0])
	cfg.apply(opts)
	if dg.part == Part1DCol {
		return bfs.MultiRun1D(c.world, dg.stores1, sources, cfg.bfs)
	}
	return bfs.MultiRun2D(c.world, dg.stores, sources, cfg.bfs)
}
