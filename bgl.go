// Package bgl is a Go reproduction of "A Scalable Distributed Parallel
// Breadth-First Search Algorithm on BlueGene/L" (Yoo et al., SC 2005).
//
// It provides level-synchronized distributed BFS over Poisson random
// graphs with 1D (vertex) and 2D (edge) partitionings, uni- and
// bi-directional searches, the paper's BlueGene/L-optimized two-phase
// collectives (including the union-fold), and a simulated torus runtime
// that stands in for the 32,768-node machine: ranks are goroutines,
// collectives are hand-rolled from point-to-point messages, and a
// deterministic cost model reports simulated execution/communication
// times alongside real wall time.
//
// Beyond the paper, searches can run with a direction policy
// (WithDirection): top-down, bottom-up, or direction-optimizing
// traversal that switches to a bitmap-exchanged bottom-up parent
// search on the large middle levels, plus an adaptive sparse/dense
// frontier representation and a bitmap wire encoding
// (WithFrontierWire) for dense frontiers. Weighted graphs
// (GenerateWeighted) additionally support distributed single-source
// shortest paths by Δ-stepping (Cluster.SSSP, WithDelta), validated
// against a serial Dijkstra oracle.
//
// Quick start:
//
//	g, _ := bgl.Generate(100000, 10, 42)
//	cl, _ := bgl.NewCluster(bgl.ClusterConfig{R: 4, C: 4})
//	dg, _ := cl.Distribute(g)
//	res, _ := cl.BFS(dg, g.LargestComponentVertex())
//	fmt.Println(res.Reached(), res.SimTime)
package bgl

import (
	"fmt"
	"io"

	"repro/internal/bfs"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sssp"
	"repro/internal/torus"
)

// Vertex is a global vertex id.
type Vertex = graph.Vertex

// Unreached marks vertices a search did not label.
const Unreached = graph.Unreached

// Result re-exports the search result type: levels, per-level message
// statistics, simulated times and the redundancy ratio.
type Result = bfs.Result

// LevelStats re-exports the per-level statistics record.
type LevelStats = bfs.LevelStats

// Graph is an undirected Poisson random graph (or any hand-built
// undirected graph) in CSR form.
type Graph struct {
	csr *graph.CSR
}

// Generate creates the paper's workload: a Poisson random graph with n
// vertices and expected average degree k, deterministic in seed.
func Generate(n int, k float64, seed int64) (*Graph, error) {
	g, err := graph.Generate(graph.Params{N: n, K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Graph{csr: g}, nil
}

// MaxDist marks vertices a shortest-path search did not reach.
const MaxDist = graph.MaxDist

// WeightDist re-exports the edge-weight distribution selector.
type WeightDist = graph.WeightDist

// Edge-weight distributions for GenerateWeighted.
const (
	WeightUniform     = graph.WeightUniform
	WeightExponential = graph.WeightExponential
	WeightUnit        = graph.WeightUnit
)

// WeightOption adjusts the weight assignment of GenerateWeighted.
type WeightOption func(*graph.WeightSpec)

// WithWeightDist selects the edge-weight distribution.
func WithWeightDist(d WeightDist) WeightOption {
	return func(s *graph.WeightSpec) { s.Dist = d }
}

// WithMaxWeight bounds every weight draw (default graph.DefaultMaxWeight).
func WithMaxWeight(w uint32) WeightOption {
	return func(s *graph.WeightSpec) { s.MaxWeight = w }
}

// WithWeightSeed decorrelates the weight draws from the topology seed.
func WithWeightSeed(seed int64) WeightOption {
	return func(s *graph.WeightSpec) { s.Seed = seed }
}

// GenerateWeighted creates the Poisson random graph of Generate with
// per-edge uint32 weights: identical topology for the same (n, k,
// seed), weights drawn by a deterministic symmetric hash of the edge
// endpoints (uniform in [1, max] by default; see WithWeightDist).
func GenerateWeighted(n int, k float64, seed int64, opts ...WeightOption) (*Graph, error) {
	spec := graph.WeightSpec{Dist: graph.WeightUniform, Seed: seed + 1}
	for _, fn := range opts {
		fn(&spec)
	}
	g, err := graph.GenerateWeighted(graph.Params{N: n, K: k, Seed: seed}, spec)
	if err != nil {
		return nil, err
	}
	return &Graph{csr: g}, nil
}

// FromWeightedEdges builds a weighted graph from an explicit
// undirected edge list and a parallel slice of positive weights.
func FromWeightedEdges(n int, edges [][2]Vertex, weights []uint32) (*Graph, error) {
	g, err := graph.FromWeightedEdges(n, edges, weights)
	if err != nil {
		return nil, err
	}
	return &Graph{csr: g}, nil
}

// FromEdges builds a graph from an explicit undirected edge list.
func FromEdges(n int, edges [][2]Vertex) (*Graph, error) {
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	return &Graph{csr: g}, nil
}

// Load reads a plain-text edge list ("u v" per line, optional
// "# n <count>" header) as written by Save or cmd/graphgen -edges.
func Load(r io.Reader) (*Graph, error) {
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Graph{csr: g}, nil
}

// Save writes the graph as a plain-text edge list with a vertex-count
// header; Load round-trips it.
func (g *Graph) Save(w io.Writer) error { return graph.WriteEdgeList(w, g.csr) }

// N returns the vertex count.
func (g *Graph) N() int { return g.csr.N }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int64 { return g.csr.NumEdges() }

// AvgDegree returns the measured average degree.
func (g *Graph) AvgDegree() float64 { return g.csr.AvgDegree() }

// Degree returns the degree of v.
func (g *Graph) Degree(v Vertex) int { return g.csr.Degree(v) }

// Neighbors returns v's adjacency list (aliased, do not modify).
func (g *Graph) Neighbors(v Vertex) []Vertex { return g.csr.Neighbors(v) }

// Weighted reports whether the graph carries explicit edge weights.
func (g *Graph) Weighted() bool { return g.csr.Weighted() }

// EdgeWeightRange returns the smallest and largest edge weight (1, 1
// for unweighted graphs) — the anchors of the useful Δ range.
func (g *Graph) EdgeWeightRange() (min, max uint32) {
	return g.csr.MinEdgeWeight(), g.csr.MaxEdgeWeight()
}

// SerialBFS runs the single-machine reference BFS.
func (g *Graph) SerialBFS(src Vertex) []int32 { return graph.BFS(g.csr, src) }

// SerialDijkstra runs the single-machine shortest-path oracle every
// distributed Δ-stepping run is validated against (unit weights when
// the graph is unweighted).
func (g *Graph) SerialDijkstra(src Vertex) []uint32 { return graph.Dijkstra(g.csr, src) }

// SerialDistance returns the exact s→t distance (Unreached if none).
func (g *Graph) SerialDistance(s, t Vertex) int32 { return graph.Distance(g.csr, s, t) }

// LargestComponentVertex returns a vertex in the largest component.
func (g *Graph) LargestComponentVertex() Vertex { return graph.LargestComponentVertex(g.csr) }

// Relabel returns a copy of the graph with vertex ids permuted
// uniformly at random (deterministic in seed) and the permutation
// perm[old] = new. The blocked partitionings assume ids spread load
// evenly over contiguous blocks; relabeling restores that for inputs
// whose ids carry locality.
func (g *Graph) Relabel(seed int64) (*Graph, []Vertex) {
	rg, perm := graph.Relabel(g.csr, seed)
	return &Graph{csr: rg}, perm
}

// visit streams the graph's edges for the partition builders.
func (g *Graph) visit(fn func(u, v Vertex)) error {
	for v := 0; v < g.csr.N; v++ {
		for _, u := range g.csr.Neighbors(Vertex(v)) {
			if Vertex(v) < u {
				fn(Vertex(v), u)
			}
		}
	}
	return nil
}

// MappingKind selects how logical ranks are placed on the torus.
type MappingKind int

const (
	// MapPlanes is the paper's Figure 1 mapping: the logical R x C
	// array is tiled onto torus planes so processor-column (expand)
	// traffic crosses adjacent planes. Falls back to row-major when the
	// array does not tile the torus.
	MapPlanes MappingKind = iota
	// MapRowMajor places ranks in plain row-major torus order.
	MapRowMajor
)

// ClusterConfig describes the simulated machine.
type ClusterConfig struct {
	// R, C are the logical processor mesh dimensions; P = R*C ranks.
	// C = 1 or R = 1 give the two 1D partitionings of Table 1.
	R, C int
	// TorusDims optionally fixes the 3D torus shape (X, Y, Z); zero
	// means fit automatically around P.
	TorusDims [3]int
	// Mapping selects rank placement (default MapPlanes with fallback).
	Mapping MappingKind
	// ClusterModel switches the cost model from the BlueGene/L preset
	// to the Quadrics-cluster preset (the paper's MCR comparison).
	ClusterModel bool
}

// Cluster is a simulated machine: a world of R*C goroutine ranks on a
// torus with a cost model.
type Cluster struct {
	cfg   ClusterConfig
	world *comm.World
}

// NewCluster builds the simulated machine.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.R <= 0 || cfg.C <= 0 {
		return nil, fmt.Errorf("bgl: mesh must be positive, got %dx%d", cfg.R, cfg.C)
	}
	p := cfg.R * cfg.C
	var tor torus.Torus
	var err error
	if cfg.TorusDims != [3]int{} {
		tor, err = torus.New(cfg.TorusDims[0], cfg.TorusDims[1], cfg.TorusDims[2])
		if err != nil {
			return nil, err
		}
	} else {
		tor = torus.FitTorus(p)
	}
	var mapping *torus.Mapping
	switch cfg.Mapping {
	case MapPlanes:
		mapping, err = torus.Planes(tor, cfg.R, cfg.C)
		if err != nil {
			// The logical array does not tile this torus; fall back.
			mapping, err = torus.RowMajor(tor, p)
		}
	case MapRowMajor:
		mapping, err = torus.RowMajor(tor, p)
	default:
		return nil, fmt.Errorf("bgl: unknown mapping %d", cfg.Mapping)
	}
	if err != nil {
		return nil, err
	}
	model := torus.PresetBlueGeneL()
	if cfg.ClusterModel {
		model = torus.PresetCluster()
	}
	w, err := comm.NewWorld(comm.Config{P: p, Mapping: mapping, Model: model})
	if err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg, world: w}, nil
}

// P returns the rank count.
func (c *Cluster) P() int { return c.cfg.R * c.cfg.C }

// Mesh returns the logical mesh dimensions.
func (c *Cluster) Mesh() (r, cc int) { return c.cfg.R, c.cfg.C }

// DistGraph is a graph distributed over a cluster's ranks with the 2D
// edge partitioning.
type DistGraph struct {
	graph  *Graph
	layout *partition.Layout2D
	stores []*partition.Store2D
}

// Distribute partitions g over the cluster's R x C mesh (2D edge
// partitioning, §2.2). Weighted graphs distribute their edge weights
// alongside the partial edge lists. The centralized loader stands in
// for the original system's parallel file I/O.
func (c *Cluster) Distribute(g *Graph) (*DistGraph, error) {
	l, err := partition.NewLayout2D(g.N(), c.cfg.R, c.cfg.C)
	if err != nil {
		return nil, err
	}
	var stores []*partition.Store2D
	if g.csr.Weighted() {
		stores, err = partition.Build2DWeighted(l, g.csr.VisitWeightedEdges)
	} else {
		stores, err = partition.Build2D(l, g.visit)
	}
	if err != nil {
		return nil, err
	}
	return &DistGraph{graph: g, layout: l, stores: stores}, nil
}

// Graph returns the underlying graph.
func (dg *DistGraph) Graph() *Graph { return dg.graph }

// MemoryStats re-exports the per-rank storage summary of §2.4.1.
type MemoryStats = partition.MemoryStats

// Memory returns per-rank storage statistics, demonstrating the
// §2.4.1 claim that indexed state stays O(n/P) rather than O(n/C).
func (dg *DistGraph) Memory() []MemoryStats {
	out := make([]MemoryStats, len(dg.stores))
	for i, st := range dg.stores {
		out[i] = st.Memory()
	}
	return out
}

// SSSPResult re-exports the Δ-stepping result: per-vertex distances,
// per-epoch statistics, and simulated times.
type SSSPResult = sssp.Result

// EpochStats re-exports the per-epoch Δ-stepping statistics record.
type EpochStats = sssp.EpochStats

// DeltaInf selects the single-bucket (Bellman-Ford) degenerate of
// Δ-stepping.
const DeltaInf = sssp.DeltaInf

// SSSP runs distributed single-source shortest paths by Δ-stepping
// from source over the cluster's mesh. Unweighted graphs run with
// unit weights (distances equal BFS levels). Δ defaults to
// max(1, maxWeight/avgDegree); tune it with WithDelta.
func (c *Cluster) SSSP(dg *DistGraph, source Vertex, opts ...SSSPOption) (*SSSPResult, error) {
	o := sssp.DefaultOptions(source)
	for _, fn := range opts {
		fn(&o)
	}
	return sssp.Run2D(c.world, dg.stores, o)
}

// BFS runs a full distributed traversal from source.
func (c *Cluster) BFS(dg *DistGraph, source Vertex, opts ...Option) (*Result, error) {
	o := bfs.DefaultOptions(source)
	applyOptions(&o, opts)
	return bfs.Run2D(c.world, dg.stores, o)
}

// Search runs a uni-directional s→t search that stops when t is
// labeled, as in the paper's timing experiments.
func (c *Cluster) Search(dg *DistGraph, s, t Vertex, opts ...Option) (*Result, error) {
	o := bfs.DefaultOptions(s)
	o.Target, o.HasTarget = t, true
	applyOptions(&o, opts)
	return bfs.Run2D(c.world, dg.stores, o)
}

// BiSearch runs the bi-directional s→t search of §2.3.
func (c *Cluster) BiSearch(dg *DistGraph, s, t Vertex, opts ...Option) (*Result, error) {
	o := bfs.DefaultOptions(s)
	o.Target, o.HasTarget = t, true
	applyOptions(&o, opts)
	return bfs.RunBidirectional2D(c.world, dg.stores, o)
}

// Path runs a distributed BFS from s and reconstructs one shortest
// path s→t from the assembled levels — the paper's §1 semantic-graph
// use case ("the nature of the relationship ... can be determined by
// the shortest path"). Returns the path [s, ..., t] and the search
// Result, or an error if t is unreachable.
func (c *Cluster) Path(dg *DistGraph, s, t Vertex, opts ...Option) ([]Vertex, *Result, error) {
	o := bfs.DefaultOptions(s)
	o.Target, o.HasTarget = t, true
	applyOptions(&o, opts)
	res, err := bfs.Run2D(c.world, dg.stores, o)
	if err != nil {
		return nil, nil, err
	}
	if !res.Found {
		return nil, res, fmt.Errorf("bgl: vertex %d not reachable from %d", t, s)
	}
	path, err := graph.PathFromLevels(dg.graph.csr, res.Levels, s, t)
	if err != nil {
		return nil, res, err
	}
	return path, res, nil
}
