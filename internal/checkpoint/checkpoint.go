// Package checkpoint provides epoch checkpoint/restart for the
// distributed engines: a run can halt at a chosen BFS level or
// Δ-stepping epoch, snapshot every rank's engine and transport state as
// opaque word blobs (serialized with the same word-stream discipline as
// the wire codecs), and a later run can restore the snapshot and
// continue to a byte-identical Result — same distances, same traffic
// counters, same simulated clocks.
//
// The package is engine-agnostic: engines decide what goes in a blob
// (frontier sets, distance arrays, bucket indexes, per-level stats,
// comm.State) and deposit one blob per rank into a Plan at the halt
// point; the Snapshot round-trips through a small self-describing
// binary file format. A Fingerprint of the workload identity guards
// against restoring a snapshot into a different world.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// Plan asks a run to halt and snapshot at an interior point. At is the
// BFS level / Δ-stepping epoch ordinal to stop at (the snapshot is
// taken at the top of that level's loop iteration, before any of its
// work); At < 0 disables checkpointing. The zero value is disabled.
type Plan struct {
	At int

	mu   sync.Mutex
	snap *Snapshot
}

// NewPlan returns a plan that halts at level/epoch at.
func NewPlan(at int) *Plan { return &Plan{At: at} }

// Enabled reports whether the plan asks for a checkpoint at all.
func (p *Plan) Enabled() bool { return p != nil && p.At >= 0 }

// Put deposits one rank's state blob. Every rank of a halting run
// calls it concurrently; the first caller fixes the snapshot shape and
// the rest must agree.
func (p *Plan) Put(kind string, at, ranks, rank int, fingerprint uint64, blob []uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.snap == nil {
		p.snap = &Snapshot{Kind: kind, At: at, P: ranks, Fingerprint: fingerprint, Blobs: make([][]uint32, ranks)}
	}
	s := p.snap
	if s.Kind != kind || s.At != at || s.P != ranks || s.Fingerprint != fingerprint {
		panic(fmt.Sprintf("checkpoint: rank %d deposited a mismatched blob (%s@%d P=%d) into snapshot (%s@%d P=%d)",
			rank, kind, at, ranks, s.Kind, s.At, s.P))
	}
	if rank < 0 || rank >= ranks || s.Blobs[rank] != nil {
		panic(fmt.Sprintf("checkpoint: bad or duplicate blob for rank %d of %d", rank, ranks))
	}
	s.Blobs[rank] = blob
}

// Snapshot returns the deposited snapshot (nil if the run finished
// before reaching the halt point).
func (p *Plan) Snapshot() *Snapshot {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap
}

// Snapshot is a halted run: per-rank opaque state blobs plus enough
// identity to refuse restoring into the wrong world.
type Snapshot struct {
	Kind        string // engine family: "bfs" or "sssp"
	At          int    // level / epoch ordinal the run halted at
	P           int    // world size
	Fingerprint uint64 // workload identity hash (graph, source, options)
	Blobs       [][]uint32
}

// Check validates a snapshot against the restoring run's identity.
func (s *Snapshot) Check(kind string, ranks int, fingerprint uint64) error {
	if s == nil {
		return fmt.Errorf("checkpoint: no snapshot to restore")
	}
	if s.Kind != kind {
		return fmt.Errorf("checkpoint: snapshot is a %s run, restoring into %s", s.Kind, kind)
	}
	if s.P != ranks {
		return fmt.Errorf("checkpoint: snapshot has %d ranks, world has %d", s.P, ranks)
	}
	if s.Fingerprint != fingerprint {
		return fmt.Errorf("checkpoint: snapshot fingerprint %#x does not match workload %#x (different graph, source, or options)", s.Fingerprint, fingerprint)
	}
	if len(s.Blobs) != s.P {
		return fmt.Errorf("checkpoint: snapshot has %d blobs for %d ranks", len(s.Blobs), s.P)
	}
	for r, b := range s.Blobs {
		if b == nil {
			return fmt.Errorf("checkpoint: snapshot is missing rank %d's blob", r)
		}
	}
	return nil
}

// Fingerprint chains the given identity words through a splitmix64-style
// hash; engines feed it the workload parameters that must match between
// the checkpointing and the restoring run.
func Fingerprint(parts ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3)
	for _, p := range parts {
		h ^= p
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Enc builds a state blob as a word stream — the same uint32-word
// discipline the wire codecs use, so blobs travel and store like any
// other payload.
type Enc struct {
	w []uint32
}

// U32 appends one word.
func (e *Enc) U32(v uint32) { e.w = append(e.w, v) }

// U64 appends a 64-bit value as two words (low, high).
func (e *Enc) U64(v uint64) { e.w = append(e.w, uint32(v), uint32(v>>32)) }

// Int appends a non-negative int.
func (e *Enc) Int(v int) {
	if v < 0 {
		panic(fmt.Sprintf("checkpoint: encoding negative int %d", v))
	}
	e.U64(uint64(v))
}

// F64 appends a float64 bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a boolean word.
func (e *Enc) Bool(v bool) {
	if v {
		e.U32(1)
	} else {
		e.U32(0)
	}
}

// Words appends a length-prefixed word slice.
func (e *Enc) Words(w []uint32) {
	e.Int(len(w))
	e.w = append(e.w, w...)
}

// Payload returns the accumulated blob.
func (e *Enc) Payload() []uint32 { return e.w }

// Dec reads a blob back. Decoding errors (truncation, corruption)
// panic with a descriptive message: a blob that fails to decode is a
// programming error or a corrupted file, and the engines run decoding
// inside World.Run, which converts the panic into a clean error.
type Dec struct {
	w []uint32
	i int
}

// NewDec wraps a blob for decoding.
func NewDec(w []uint32) *Dec { return &Dec{w: w} }

func (d *Dec) need(n int) {
	if d.i+n > len(d.w) {
		panic(fmt.Sprintf("checkpoint: truncated blob (want %d words at offset %d of %d)", n, d.i, len(d.w)))
	}
}

// U32 reads one word.
func (d *Dec) U32() uint32 {
	d.need(1)
	v := d.w[d.i]
	d.i++
	return v
}

// U64 reads a 64-bit value.
func (d *Dec) U64() uint64 {
	d.need(2)
	v := uint64(d.w[d.i]) | uint64(d.w[d.i+1])<<32
	d.i += 2
	return v
}

// Int reads a non-negative int.
func (d *Dec) Int() int {
	v := d.U64()
	if v > math.MaxInt32*2 {
		panic(fmt.Sprintf("checkpoint: implausible int %d in blob", v))
	}
	return int(v)
}

// F64 reads a float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a boolean word.
func (d *Dec) Bool() bool { return d.U32() != 0 }

// Words reads a length-prefixed word slice.
func (d *Dec) Words() []uint32 {
	n := d.Int()
	d.need(n)
	w := append([]uint32(nil), d.w[d.i:d.i+n]...)
	d.i += n
	return w
}

// Done asserts the blob was consumed exactly.
func (d *Dec) Done() {
	if d.i != len(d.w) {
		panic(fmt.Sprintf("checkpoint: %d trailing words in blob", len(d.w)-d.i))
	}
}

// File format: magic, then the snapshot header, then the blobs, all
// little-endian. Lengths are explicit so ReadFile can reject truncated
// or corrupted files with errors rather than panics.
var fileMagic = [8]byte{'B', 'G', 'L', 'C', 'K', 'P', 'T', '1'}

// WriteFile serializes a snapshot to path (atomically: temp file +
// rename).
func WriteFile(path string, s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("checkpoint: nil snapshot")
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := func(v any) {
		if err == nil {
			err = binary.Write(f, binary.LittleEndian, v)
		}
	}
	w(fileMagic[:])
	w(uint32(len(s.Kind)))
	w([]byte(s.Kind))
	w(int64(s.At))
	w(int64(s.P))
	w(s.Fingerprint)
	w(uint32(len(s.Blobs)))
	for _, b := range s.Blobs {
		w(uint32(len(b)))
		w(b)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadFile deserializes a snapshot, validating structure as it goes —
// a truncated or corrupted file yields a descriptive error.
func ReadFile(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &byteReader{b: raw}
	var magic [8]byte
	if err := r.read(magic[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("checkpoint: %s is not a checkpoint file (bad magic)", path)
	}
	s := &Snapshot{}
	kindLen, err := r.u32()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if kindLen > 64 {
		return nil, fmt.Errorf("checkpoint: %s: implausible kind length %d", path, kindLen)
	}
	kind := make([]byte, kindLen)
	if err := r.read(kind); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	s.Kind = string(kind)
	at, err1 := r.i64()
	p, err2 := r.i64()
	fp, err3 := r.u64()
	nblobs, err4 := r.u32()
	for _, e := range []error{err1, err2, err3, err4} {
		if e != nil {
			return nil, fmt.Errorf("checkpoint: %s: %w", path, e)
		}
	}
	s.At, s.P, s.Fingerprint = int(at), int(p), fp
	if s.P <= 0 || int(nblobs) != s.P {
		return nil, fmt.Errorf("checkpoint: %s: %d blobs for %d ranks", path, nblobs, s.P)
	}
	s.Blobs = make([][]uint32, nblobs)
	for i := range s.Blobs {
		n, err := r.u32()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %s: blob %d: %w", path, i, err)
		}
		if uint64(n)*4 > uint64(len(r.b)-r.i) {
			return nil, fmt.Errorf("checkpoint: %s: blob %d claims %d words but only %d bytes remain", path, i, n, len(r.b)-r.i)
		}
		blob := make([]uint32, n)
		for j := range blob {
			v, _ := r.u32()
			blob[j] = v
		}
		s.Blobs[i] = blob
	}
	if r.i != len(r.b) {
		return nil, fmt.Errorf("checkpoint: %s: %d trailing bytes", path, len(r.b)-r.i)
	}
	return s, nil
}

// byteReader is a minimal little-endian cursor with explicit errors.
type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) read(dst []byte) error {
	if r.i+len(dst) > len(r.b) {
		return io.ErrUnexpectedEOF
	}
	copy(dst, r.b[r.i:])
	r.i += len(dst)
	return nil
}

func (r *byteReader) u32() (uint32, error) {
	var buf [4]byte
	if err := r.read(buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func (r *byteReader) u64() (uint64, error) {
	var buf [8]byte
	if err := r.read(buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func (r *byteReader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}
