package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestEncDecRoundTrip(t *testing.T) {
	enc := &Enc{}
	enc.U32(7)
	enc.U64(1 << 40)
	enc.Int(123456789)
	enc.F64(3.14159)
	enc.Bool(true)
	enc.Bool(false)
	enc.Words([]uint32{9, 8, 7})
	enc.Words(nil)

	dec := NewDec(enc.Payload())
	if got := dec.U32(); got != 7 {
		t.Errorf("U32 = %d", got)
	}
	if got := dec.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := dec.Int(); got != 123456789 {
		t.Errorf("Int = %d", got)
	}
	if got := dec.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if !dec.Bool() || dec.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := dec.Words(); !reflect.DeepEqual(got, []uint32{9, 8, 7}) {
		t.Errorf("Words = %v", got)
	}
	if got := dec.Words(); len(got) != 0 {
		t.Errorf("empty Words = %v", got)
	}
	dec.Done() // must not panic: fully consumed
}

func mustPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", label)
		}
	}()
	fn()
}

func TestDecPanicsOnTruncation(t *testing.T) {
	enc := &Enc{}
	enc.U64(42)
	enc.Words([]uint32{1, 2, 3})
	full := enc.Payload()

	mustPanic(t, "U64 short", func() { NewDec(full[:1]).U64() })
	mustPanic(t, "Words short", func() {
		d := NewDec(full[:4]) // length prefix says 3, only 1 word left
		d.U64()
		d.Words()
	})
	mustPanic(t, "trailing words", func() {
		d := NewDec(full)
		d.U64()
		d.Words()
		d.U32() // past the end
	})
	mustPanic(t, "Done with leftovers", func() {
		d := NewDec(full)
		d.U64()
		d.Done()
	})
	mustPanic(t, "negative Int", func() {
		e := &Enc{}
		e.U64(math.MaxUint64) // Int reads U64; implausible value must panic
		NewDec(e.Payload()).Int()
	})
}

func TestEncIntRejectsNegative(t *testing.T) {
	mustPanic(t, "negative Int encode", func() { (&Enc{}).Int(-1) })
}

func TestPlanPutAndSnapshot(t *testing.T) {
	p := NewPlan(3)
	if !p.Enabled() {
		t.Fatal("plan not enabled")
	}
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Fatal("nil plan enabled")
	}
	p.Put("bfs", 3, 2, 1, 77, []uint32{10, 11})
	p.Put("bfs", 3, 2, 0, 77, []uint32{20})
	s := p.Snapshot()
	if s == nil || s.Kind != "bfs" || s.P != 2 || s.Fingerprint != 77 {
		t.Fatalf("snapshot = %+v", s)
	}
	if !reflect.DeepEqual(s.Blobs[0], []uint32{20}) || !reflect.DeepEqual(s.Blobs[1], []uint32{10, 11}) {
		t.Fatalf("blobs = %v", s.Blobs)
	}

	mustPanic(t, "mismatched fingerprint", func() { p.Put("bfs", 3, 2, 0, 99, nil) })
	mustPanic(t, "mismatched kind", func() { p.Put("sssp", 3, 2, 0, 77, nil) })
	mustPanic(t, "rank out of range", func() { p.Put("bfs", 3, 2, 5, 77, nil) })
}

func TestSnapshotCheck(t *testing.T) {
	s := &Snapshot{Kind: "bfs", At: 2, P: 4, Fingerprint: 123,
		Blobs: [][]uint32{{0}, {0}, {0}, {0}}}
	if err := s.Check("bfs", 4, 123); err != nil {
		t.Errorf("valid check failed: %v", err)
	}
	for _, tc := range []struct {
		kind string
		p    int
		fp   uint64
	}{{"sssp", 4, 123}, {"bfs", 2, 123}, {"bfs", 4, 999}} {
		if err := s.Check(tc.kind, tc.p, tc.fp); err == nil {
			t.Errorf("Check(%q,%d,%d) accepted", tc.kind, tc.p, tc.fp)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := Fingerprint(1, 2, 3)
	if a != Fingerprint(1, 2, 3) {
		t.Error("fingerprint not deterministic")
	}
	for _, other := range [][]uint64{{1, 2}, {1, 2, 4}, {3, 2, 1}, {1, 2, 3, 0}} {
		if Fingerprint(other...) == a {
			t.Errorf("collision with %v", other)
		}
	}
}

func TestWriteReadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	want := &Snapshot{
		Kind: "sssp", At: 5, P: 3, Fingerprint: 0xdeadbeefcafe,
		Blobs: [][]uint32{{1, 2, 3}, {}, {4}},
	}
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.At != want.At || got.P != want.P || got.Fingerprint != want.Fingerprint {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Blobs) != 3 || !reflect.DeepEqual(got.Blobs[0], want.Blobs[0]) ||
		len(got.Blobs[1]) != 0 || !reflect.DeepEqual(got.Blobs[2], want.Blobs[2]) {
		t.Fatalf("blobs mismatch: %v", got.Blobs)
	}
}

// TestReadFileCorruption: every way a checkpoint file can be damaged —
// truncated mid-write, wrong magic, trailing garbage — must come back
// as an error, never a panic.
func TestReadFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	want := &Snapshot{Kind: "bfs", At: 1, P: 2, Fingerprint: 42, Blobs: [][]uint32{{1}, {2, 3}}}
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(raw); cut += 3 {
		p := filepath.Join(dir, "trunc.ckpt")
		if err := os.WriteFile(p, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFile(p); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	p := filepath.Join(dir, "magic.ckpt")
	os.WriteFile(p, bad, 0o644)
	if _, err := ReadFile(p); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("wrong magic: err = %v", err)
	}

	p = filepath.Join(dir, "trailing.ckpt")
	os.WriteFile(p, append(append([]byte(nil), raw...), 0xAA), 0o644)
	if _, err := ReadFile(p); err == nil {
		t.Error("trailing garbage accepted")
	}

	if _, err := ReadFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Error("missing file accepted")
	}
}
