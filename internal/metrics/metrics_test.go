package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bfs_runs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("bfs_runs_total") != c {
		t.Fatal("same name returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("load")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %g", g.Value())
	}
	g.Max(1.0) // lower: no change
	if g.Value() != 2.5 {
		t.Fatalf("Max lowered the gauge to %g", g.Value())
	}
	g.Max(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("Max did not raise the gauge: %g", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("exec_seconds", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 55.5 {
		t.Fatalf("count %d sum %g, want 3 and 55.5", h.Count(), h.Sum())
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 2 || bounds[0] != 1 || bounds[1] != 10 {
		t.Fatalf("bounds %v", bounds)
	}
	if cum[0] != 1 || cum[1] != 2 || cum[2] != 3 {
		t.Fatalf("cumulative %v, want [1 2 3]", cum)
	}
	// Re-creation with different bounds reuses the existing instrument.
	if h2 := r.Histogram("exec_seconds", []float64{99}); h2 != h {
		t.Fatal("same name returned a different histogram")
	}
}

// fill populates a registry in the given key order; snapshots must not
// depend on insertion order.
func fill(r *Registry, order []string) {
	for _, n := range order {
		r.Counter(n).Add(7)
	}
	r.Gauge("z_gauge").Set(0.25)
	r.Gauge("a_gauge").Set(4)
	r.Histogram("h_seconds", TimeBuckets).Observe(2e-3)
}

func TestSnapshotsDeterministic(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	fill(a, []string{"b_total", "a_total", "c_total"})
	fill(b, []string{"c_total", "b_total", "a_total"})
	if a.Text() != b.Text() {
		t.Fatal("Text snapshot depends on insertion order")
	}
	if string(a.JSON()) != string(b.JSON()) {
		t.Fatal("JSON snapshot depends on insertion order")
	}
}

func TestTextFormat(t *testing.T) {
	r := NewRegistry()
	fill(r, []string{"a_total"})
	text := r.Text()
	for _, want := range []string{
		"a_total 7\n",
		"a_gauge 4\n",
		"z_gauge 0.25\n",
		"h_seconds_count 1\n",
		"h_seconds_sum 0.002\n",
		`h_seconds_bucket{le="0.01"} 1`,
		`h_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Text snapshot missing %q:\n%s", want, text)
		}
	}
	// Counters sort before gauges before histograms, each alphabetical.
	if strings.Index(text, "a_total") > strings.Index(text, "a_gauge") {
		t.Fatal("counters do not precede gauges")
	}
}

func TestJSONWellFormed(t *testing.T) {
	r := NewRegistry()
	fill(r, []string{"a_total"})
	var doc struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count      int64     `json:"count"`
			Sum        float64   `json:"sum"`
			Bounds     []float64 `json:"bounds"`
			Cumulative []int64   `json:"cumulative"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(r.JSON(), &doc); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v\n%s", err, r.JSON())
	}
	if doc.Counters["a_total"] != 7 || doc.Gauges["z_gauge"] != 0.25 {
		t.Fatalf("decoded snapshot %+v", doc)
	}
	h := doc.Histograms["h_seconds"]
	if h.Count != 1 || h.Sum != 2e-3 || len(h.Cumulative) != len(h.Bounds)+1 {
		t.Fatalf("decoded histogram %+v", h)
	}
}
