package metrics

import (
	"net/http"
	"strings"
)

// Handler exposes a registry over HTTP in the snapshot formats the
// registry already renders deterministically: the text form by default
// (one name per line, Prometheus-ish), the JSON form when the request
// asks for it with ?format=json or an Accept: application/json header.
// Only GET is served; the snapshot is taken at request time.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "metrics endpoint needs GET", http.StatusMethodNotAllowed)
			return
		}
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(r.JSON())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(r.Text()))
	})
}
