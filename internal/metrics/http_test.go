package metrics

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerText(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(7)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q, want text/plain", ct)
	}
	var buf [4096]byte
	n, _ := resp.Body.Read(buf[:])
	if body := string(buf[:n]); !strings.Contains(body, "requests_total") {
		t.Fatalf("text snapshot missing the counter:\n%s", body)
	}
}

func TestHandlerJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(7)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	for _, tc := range []struct {
		name string
		mk   func() *http.Request
	}{
		{"query param", func() *http.Request {
			req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics?format=json", nil)
			return req
		}},
		{"accept header", func() *http.Request {
			req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
			req.Header.Set("Accept", "application/json")
			return req
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.DefaultClient.Do(tc.mk())
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("content-type %q, want application/json", ct)
			}
			var doc map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				t.Fatalf("JSON snapshot does not parse: %v", err)
			}
			if len(doc) == 0 {
				t.Fatal("JSON snapshot is empty")
			}
		})
	}
}

func TestHandlerMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST answered %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Fatalf("Allow header %q, want GET", allow)
	}
}
