// Package metrics is a lightweight counter/gauge/histogram registry —
// the single source of truth the CLI tools (and the future graphd
// service) read run statistics from. Engines publish into a Registry
// after a run: words moved per codec container, direction switches,
// relaxations, re-settles, hidden-communication seconds. Instruments
// are atomic so future intra-rank parallelism can update them from
// many goroutines; snapshots are deterministic (sorted by name) in
// both the text and JSON forms.
package metrics

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 panics: counters only grow).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("metrics: counter decrement by %d", n))
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float-valued instrument holding the latest observation.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Max raises the gauge to v if v is larger.
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets plus a
// +Inf overflow, tracking count and sum like a Prometheus histogram.
type Histogram struct {
	bounds []float64 // ascending upper bounds; counts has len(bounds)+1
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the cumulative count at or below each bound (the
// last entry, bound +Inf, equals Count()).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = h.bounds
	cumulative = make([]int64, len(h.counts))
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// TimeBuckets are the default bounds (seconds) for simulated-time
// histograms: two decades around the millisecond regime the cost model
// produces per level.
var TimeBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Registry holds named instruments. Instruments are created on first
// use and never removed; names follow the prometheus-ish
// family_unit_suffix convention (bfs_expand_words_total,
// sssp_hidden_frac, ...).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bounds on first use (later calls reuse the existing
// instrument and ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		r.histograms[name] = h
	}
	return h
}

func (r *Registry) sortedNames() (counters, gauges, hists []string) {
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.histograms {
		hists = append(hists, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}

func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Text renders the registry as a deterministic name-per-line snapshot.
func (r *Registry) Text() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters, gauges, hists := r.sortedNames()
	var buf bytes.Buffer
	for _, n := range counters {
		fmt.Fprintf(&buf, "%s %d\n", n, r.counters[n].Value())
	}
	for _, n := range gauges {
		fmt.Fprintf(&buf, "%s %s\n", n, fnum(r.gauges[n].Value()))
	}
	for _, n := range hists {
		h := r.histograms[n]
		fmt.Fprintf(&buf, "%s_count %d\n", n, h.Count())
		fmt.Fprintf(&buf, "%s_sum %s\n", n, fnum(h.Sum()))
		bounds, cum := h.Buckets()
		for i, b := range bounds {
			fmt.Fprintf(&buf, "%s_bucket{le=%q} %d\n", n, fnum(b), cum[i])
		}
		fmt.Fprintf(&buf, "%s_bucket{le=\"+Inf\"} %d\n", n, cum[len(cum)-1])
	}
	return buf.String()
}

// JSON renders the registry as a deterministic JSON object with
// "counters", "gauges", and "histograms" sections.
func (r *Registry) JSON() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters, gauges, hists := r.sortedNames()
	var buf bytes.Buffer
	buf.WriteString("{\n  \"counters\": {")
	for i, n := range counters {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "\n    %s: %d", strconv.Quote(n), r.counters[n].Value())
	}
	buf.WriteString("\n  },\n  \"gauges\": {")
	for i, n := range gauges {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "\n    %s: %s", strconv.Quote(n), fnum(r.gauges[n].Value()))
	}
	buf.WriteString("\n  },\n  \"histograms\": {")
	for i, n := range hists {
		if i > 0 {
			buf.WriteByte(',')
		}
		h := r.histograms[n]
		bounds, cum := h.Buckets()
		fmt.Fprintf(&buf, "\n    %s: {\"count\": %d, \"sum\": %s, \"bounds\": [", strconv.Quote(n), h.Count(), fnum(h.Sum()))
		for j, b := range bounds {
			if j > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(fnum(b))
		}
		buf.WriteString("], \"cumulative\": [")
		for j, cv := range cum {
			if j > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(strconv.FormatInt(cv, 10))
		}
		buf.WriteString("]}")
	}
	buf.WriteString("\n  }\n}\n")
	return buf.Bytes()
}
