package harness

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sssp"
	"repro/internal/torus"
)

// weightedWorkload builds the Δ-stepping ablation workload: the
// n=100k k=10 Poisson graph (scaled by Config) with uniform weights,
// distributed weight-aware over a square mesh.
type weightedWorkload struct {
	g      *graph.CSR
	stores []*partition.Store2D
	cl     *cluster
}

func buildWeightedWorkload(cfg Config) (*weightedWorkload, error) {
	p := minInt(16, cfg.MaxP)
	for p&(p-1) != 0 {
		p--
	}
	r, c := squareMesh(p)
	n := cfg.scaleCount(100000/16) * p
	k := fitK(n, 10)
	params := graph.Params{N: n, K: k, Seed: cfg.Seed}
	spec := graph.WeightSpec{Dist: graph.WeightUniform, MaxWeight: 256, Seed: cfg.Seed + 1}
	g, err := graph.GenerateWeighted(params, spec)
	if err != nil {
		return nil, err
	}
	layout, err := partition.NewLayout2D(n, r, c)
	if err != nil {
		return nil, err
	}
	stores, err := partition.Build2DWeighted(layout, func(fn func(u, v graph.Vertex, w uint32)) error {
		return params.VisitEdges(func(u, v graph.Vertex) { fn(u, v, spec.WeightOf(u, v)) })
	})
	if err != nil {
		return nil, err
	}
	cl, err := newCluster(r, c, false, torus.PresetBlueGeneL())
	if err != nil {
		return nil, err
	}
	return &weightedWorkload{g: g, stores: stores, cl: cl}, nil
}

// RunAblationDelta sweeps the Δ-stepping bucket width across the
// weighted Poisson workload, from the Dijkstra-like extreme (Δ = min
// weight: many buckets, no speculation) through interior widths to
// the Bellman-Ford degenerate (Δ = ∞: one bucket, maximal
// re-relaxation). The classic Δ-stepping trade — epochs shrink while
// re-settles grow — puts the best simulated execution time at an
// interior Δ that beats both extremes.
func RunAblationDelta(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Ablation — Δ-stepping bucket width on the weighted Poisson workload",
		Columns: []string{"delta", "buckets", "epochs", "relaxations", "re-settles",
			"words", "exec(s)", "comm(s)"},
	}
	w, err := buildWeightedWorkload(cfg)
	if err != nil {
		return nil, err
	}
	src := graph.LargestComponentVertex(w.g)
	minW, maxW := w.g.MinEdgeWeight(), w.g.MaxEdgeWeight()
	type point struct {
		label string
		delta uint32
	}
	points := []point{{fmt.Sprintf("%d (min w, dijkstra-like)", minW), minW}}
	for _, d := range []uint32{maxW / 32, maxW / 8, maxW / 2, 2 * maxW} {
		if d > minW {
			points = append(points, point{fmt.Sprint(d), d})
		}
	}
	points = append(points, point{"auto", 0}, point{"inf (bellman-ford)", sssp.DeltaInf})
	for _, pt := range points {
		opts := sssp.DefaultOptions(src)
		opts.Delta = pt.delta
		res, err := sssp.Run2D(w.cl.world, w.stores, opts)
		if err != nil {
			return nil, err
		}
		label := pt.label
		if pt.delta == 0 {
			label = fmt.Sprintf("auto (%d)", res.Delta)
		}
		t.AddRow(label, res.BucketsDrained, res.Epochs, res.TotalRelaxations,
			res.TotalReSettles, res.TotalWords(), res.SimTime, res.SimComm)
	}
	t.Note("expected: small Δ pays many near-empty epochs (latency-bound), huge Δ re-relaxes")
	t.Note("speculatively (volume-bound); an interior Δ beats both degenerate extremes in exec(s)")
	return t, nil
}
