package harness

import (
	"repro/internal/bfs"
	"repro/internal/graph"
)

// RunTable1 reproduces Table 1: execution time, communication time and
// average expand/fold message lengths per level for four processor
// topologies — square-ish 2D meshes both ways, the row-wise 1D
// partition (R x 1) and the conventional column 1D partition (1 x C) —
// on a low-degree and a high-degree graph.
//
// Paper (P=32768): topologies 128x256, 256x128, 32768x1, 1x32768 with
// (|V|=100000, k=10) and (|V|=10000, k=100). Scaled: P=128 by default
// with per-rank sizes /100.
func RunTable1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Table 1 — performance for various processor topologies",
		Columns: []string{"graph", "R x C", "exec(s)", "comm(s)", "avg expand len", "avg fold len"},
	}
	p := minInt(128, cfg.MaxP)
	// Make p a power of two so all four topologies factor.
	for p&(p-1) != 0 {
		p--
	}
	// The paper's 2D meshes have a 1:2 aspect (128x256 and 256x128);
	// use the r x 2r split of p when possible, else the square.
	r0, c0 := squareMesh(p / 2)
	if r0*c0*2 == p {
		c0 *= 2
	} else {
		r0, c0 = squareMesh(p)
	}
	topologies := [][2]int{{r0, c0}, {c0, r0}, {p, 1}, {1, p}}
	graphs := []struct {
		perRank int
		k       float64
	}{
		{100000 / fig4aScaleDivisor, 10},
		{10000 / fig4aScaleDivisor, 100},
	}
	for _, gspec := range graphs {
		perRank := cfg.scaleCount(gspec.perRank)
		n := perRank * p
		k := fitK(n, gspec.k)
		for _, topo := range topologies {
			w, err := buildWorkload(n, k, cfg.Seed, topo[0], topo[1], false)
			if err != nil {
				return nil, err
			}
			pairs := w.searchPairs(cfg.Searches, cfg.Seed+int64(topo[0]))
			var exec, commT float64
			var expandLen, foldLen float64
			for _, pr := range pairs {
				opts := bfs.DefaultOptions(pr[0])
				opts.Target, opts.HasTarget = pr[1], true
				res, err := bfs.Run2D(w.cl.world, w.stores, opts)
				if err != nil {
					return nil, err
				}
				exec += res.SimTime
				commT += res.SimComm
				expandLen += res.AvgExpandWordsPerLevel(p)
				foldLen += res.AvgFoldWordsPerLevel(p)
			}
			sc := float64(len(pairs))
			t.AddRow(
				seriesLabel(perRank, k), meshLabel(topo[0], topo[1]),
				exec/sc, commT/sc, expandLen/sc, foldLen/sc,
			)
		}
	}
	t.Note("P=%d; paper: 1D topologies pay far higher comm time; 2D wins for high degree;", p)
	t.Note("row-wise 1D (R x 1) can win at low degree via short expand messages (the paper's trade-off)")
	return t, nil
}

// RunFig7 reproduces Figure 7: the union-fold redundancy ratio
// (duplicates eliminated ÷ vertices received) over a weak-scaling
// sweep, for the k=10 and k=100 workloads. The paper reports up to
// ~80% savings for k=100, declining as P grows.
func RunFig7(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Figure 7 — union-fold redundancy ratio",
		Columns: []string{"series", "P", "n", "redundancy %"},
	}
	series := []struct {
		perRank int
		k       float64
	}{
		{100000 / fig4aScaleDivisor, 10},
		{10000 / fig4aScaleDivisor, 100},
	}
	points := weakPoints(cfg.MaxP)
	// The paper's Fig. 7 x-axis starts at ~1000 processors; start at 16
	// so rings are non-trivial.
	var ps []int
	for _, p := range points {
		if p >= 16 {
			ps = append(ps, p)
		}
	}
	if len(ps) == 0 {
		ps = []int{points[len(points)-1]}
	}
	for _, s := range series {
		perRank := cfg.scaleCount(s.perRank)
		for _, p := range ps {
			r, c := squareMesh(p)
			n := perRank * p
			k := fitK(n, s.k)
			w, err := buildWorkload(n, k, cfg.Seed, r, c, false)
			if err != nil {
				return nil, err
			}
			src := graph.LargestComponentVertex(w.g)
			// Full traversal with the union-fold; the sent-neighbors
			// cache stays on, as in the production configuration.
			res, err := bfs.Run2D(w.cl.world, w.stores, bfs.DefaultOptions(src))
			if err != nil {
				return nil, err
			}
			t.AddRow(seriesLabel(perRank, k), p, n, res.RedundancyRatio())
		}
	}
	t.Note("paper: higher degree ⇒ more redundancy eliminated (up to ~80%%); ratio declines with P")
	return t, nil
}
