package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment tests fast: small per-rank sizes and few
// ranks.
func tinyConfig() Config {
	return Config{Scale: 0.1, MaxP: 16, Seed: 1, Searches: 1}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(tinyConfig())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: no rows", e.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("%s: row width %d != %d columns", e.ID, len(row), len(tbl.Columns))
				}
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), tbl.Columns[0]) {
				t.Fatalf("%s: render missing header", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig4a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tbl := &Table{Title: "t", Columns: []string{"a", "bb"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", "y")
	tbl.Note("hello %d", 7)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== t ==", "a", "bb", "2.5", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,bb\n1,2.5\n") {
		t.Errorf("csv output wrong:\n%s", buf.String())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.MaxP != 256 || c.Seed != 1 || c.Searches != 3 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if (Config{Scale: 0.001}).scaleCount(1000) != 64 {
		t.Error("scaleCount floor not applied")
	}
}

func TestSquareMeshAndWeakPoints(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 4: {2, 2}, 16: {4, 4}, 12: {3, 4}, 7: {1, 7}}
	for p, want := range cases {
		r, c := squareMesh(p)
		if r != want[0] || c != want[1] {
			t.Errorf("squareMesh(%d) = %dx%d, want %dx%d", p, r, c, want[0], want[1])
		}
	}
	pts := weakPoints(256)
	if len(pts) != 5 || pts[0] != 1 || pts[4] != 256 {
		t.Errorf("weakPoints(256) = %v", pts)
	}
}

// TestFig4aShape checks the headline claims at tiny scale: comm time is
// far below exec time, and exec time grows with P (the log P trend).
func TestFig4aShape(t *testing.T) {
	tbl, err := RunFig4a(Config{Scale: 0.2, MaxP: 16, Seed: 1, Searches: 2})
	if err != nil {
		t.Fatal(err)
	}
	var k10Exec []float64
	for _, row := range tbl.Rows {
		if strings.Contains(row[0], "k=10") {
			var e, c float64
			if _, err := fmtSscan(row[5], &e); err != nil {
				t.Fatal(err)
			}
			if _, err := fmtSscan(row[6], &c); err != nil {
				t.Fatal(err)
			}
			if c >= e {
				t.Errorf("P=%s: comm %g not below exec %g", row[1], c, e)
			}
			k10Exec = append(k10Exec, e)
		}
	}
	if len(k10Exec) < 3 {
		t.Fatalf("too few k=10 points: %d", len(k10Exec))
	}
	if k10Exec[len(k10Exec)-1] <= k10Exec[0] {
		t.Errorf("weak-scaling exec time did not grow: %v", k10Exec)
	}
}

// TestFig7Redundancy checks the k=100 series eliminates more
// duplicates than k=10 (the Fig. 7 ordering).
func TestFig7Redundancy(t *testing.T) {
	tbl, err := RunFig7(Config{Scale: 0.3, MaxP: 16, Seed: 1, Searches: 1})
	if err != nil {
		t.Fatal(err)
	}
	byK := map[string]float64{}
	for _, row := range tbl.Rows {
		var r float64
		if _, err := fmtSscan(row[3], &r); err != nil {
			t.Fatal(err)
		}
		byK[row[0]] = r
	}
	var k10, k100 float64
	for label, r := range byK {
		if strings.Contains(label, "k=100") {
			k100 = r
		} else if strings.Contains(label, "k=10,") || strings.HasSuffix(label, "k=10") {
			k10 = r
		}
	}
	if k100 <= k10 {
		t.Errorf("redundancy ordering wrong: k=100 %g <= k=10 %g", k100, k10)
	}
}

// TestTable1TopologiesDistinct guards against the meshes degenerating
// (a square P would otherwise produce the same mesh twice).
func TestTable1TopologiesDistinct(t *testing.T) {
	tbl, err := RunTable1(Config{Scale: 0.05, MaxP: 16, Seed: 1, Searches: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, row := range tbl.Rows[:4] { // first graph's four topologies
		if seen[row[1]] {
			t.Fatalf("duplicate topology %q in Table 1", row[1])
		}
		seen[row[1]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("expected 4 distinct topologies, got %d", len(seen))
	}
}

// TestTerminationAblationShape: torus p2p termination must add
// messages relative to the tree network.
func TestTerminationAblationShape(t *testing.T) {
	tbl, err := RunAblationTermination(Config{Scale: 0.1, MaxP: 16, Seed: 1, Searches: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(tbl.Rows))
	}
	var tree, p2p float64
	if _, err := fmtSscan(tbl.Rows[0][3], &tree); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tbl.Rows[1][3], &p2p); err != nil {
		t.Fatal(err)
	}
	if p2p <= tree {
		t.Errorf("p2p termination messages %g not above tree %g", p2p, tree)
	}
}

// TestAblationPartitionCoversAllPartitionings checks the Table 1
// head-to-head exhibits every public partitioning with nonzero moved
// words.
func TestAblationPartitionCoversAllPartitionings(t *testing.T) {
	tbl, err := RunAblationPartition(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, row := range tbl.Rows {
		part := row[1]
		seen[part] = true
		var total float64
		if _, err := fmtSscan(row[5], &total); err != nil || total <= 0 {
			t.Fatalf("%s: total words cell %q not positive (%v)", part, row[5], err)
		}
	}
	for _, want := range []string{"2d", "1drow", "1dcol"} {
		if !seen[want] {
			t.Errorf("exhibit missing partitioning %s", want)
		}
	}
}
