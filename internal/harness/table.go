// Package harness reproduces every table and figure of the paper's
// evaluation (§4): one registered experiment per exhibit, each emitting
// the same rows/series the paper reports, at a laptop scale set by
// Config.Scale. See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured notes.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-text note rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV emits the table as CSV (columns header first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
