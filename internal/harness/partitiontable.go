package harness

import (
	"repro/internal/bfs"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/torus"
)

// RunAblationPartition is the Table 1 head-to-head through the unified
// partition-aware search layer: the same full traversal on the same
// workload under the 2D edge partitioning (square-ish mesh), the
// row-wise 1D partitioning (P x 1 mesh), and the conventional
// column-wise 1D partitioning (the dedicated Algorithm 1 engine) — the
// comparison the public API exposes via Distribute(g, WithPartition).
// Reported per partitioning: expand and fold words, total words, and
// simulated execution/communication time, for a low-degree and a
// high-degree graph (the paper's trade-off: 1D's single fold wins at
// low degree, 2D's column-bounded expand wins as degree grows).
func RunAblationPartition(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Ablation — partitionings head to head (Table 1 through the unified API)",
		Columns: []string{"graph", "partition", "mesh",
			"expand words", "fold words", "total words", "exec(s)", "comm(s)"},
	}
	p := minInt(16, cfg.MaxP)
	for p&(p-1) != 0 {
		p--
	}
	r0, c0 := squareMesh(p)
	graphs := []struct {
		perRank int
		k       float64
	}{
		{100000 / fig4aScaleDivisor, 10},
		{10000 / fig4aScaleDivisor, 100},
	}
	for _, gspec := range graphs {
		perRank := cfg.scaleCount(gspec.perRank)
		n := perRank * p
		k := fitK(n, gspec.k)
		label := seriesLabel(perRank, k)

		type run struct {
			part string
			mesh string
			res  *bfs.Result
		}
		var runs []run
		// 2D and row-wise 1D ride the 2D engine on the matching layouts.
		for _, spec := range []struct {
			part string
			r, c int
		}{
			{"2d", r0, c0},
			{"1drow", p, 1},
		} {
			w, err := buildWorkload(n, k, cfg.Seed, spec.r, spec.c, false)
			if err != nil {
				return nil, err
			}
			src := graph.LargestComponentVertex(w.g)
			res, err := bfs.Run2D(w.cl.world, w.stores, bfs.DefaultOptions(src))
			if err != nil {
				return nil, err
			}
			runs = append(runs, run{spec.part, meshLabel(spec.r, spec.c), res})
		}
		// Column-wise 1D runs the dedicated Algorithm 1 engine.
		g, stores1, world, err := build1DWorkload(n, k, cfg.Seed, p)
		if err != nil {
			return nil, err
		}
		src := graph.LargestComponentVertex(g)
		res1, err := bfs.Run1D(world, stores1, bfs.DefaultOptions(src))
		if err != nil {
			return nil, err
		}
		runs = append(runs, run{"1dcol", meshLabel(1, p), res1})

		for _, ru := range runs {
			t.AddRow(label, ru.part, ru.mesh,
				ru.res.TotalExpandWords, ru.res.TotalFoldWords,
				ru.res.TotalExpandWords+ru.res.TotalFoldWords,
				ru.res.SimTime, ru.res.SimComm)
		}
	}
	t.Note("P=%d; all three partitionings reachable from the public API:", p)
	t.Note("Distribute(g, WithPartition(Part2D|Part1DRow|Part1DCol)); bfsrun -part 2d|1drow|1dcol")
	t.Note("paper: 1D pays one big fold (no expand); 2D splits volume and wins as degree grows")
	return t, nil
}

// build1DWorkload generates the standard Poisson workload and
// distributes it under the dedicated 1D partitioning over P ranks.
func build1DWorkload(n int, k float64, seed int64, p int) (*graph.CSR, []*partition.Store1D, *comm.World, error) {
	params := graph.Params{N: n, K: k, Seed: seed}
	g, err := graph.Generate(params)
	if err != nil {
		return nil, nil, nil, err
	}
	layout, err := partition.NewLayout1D(n, p)
	if err != nil {
		return nil, nil, nil, err
	}
	stores, err := partition.Build1D(layout, func(fn func(u, v graph.Vertex)) error {
		return params.VisitEdges(fn)
	})
	if err != nil {
		return nil, nil, nil, err
	}
	cl, err := newCluster(1, p, false, torus.PresetBlueGeneL())
	if err != nil {
		return nil, nil, nil, err
	}
	return g, stores, cl.world, nil
}
