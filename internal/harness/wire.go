package harness

import (
	"fmt"

	"repro/internal/bfs"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// wireModes lists the frontier wire encodings in ablation order.
var wireModes = []frontier.WireMode{
	frontier.WireSparse, frontier.WireDense, frontier.WireAuto, frontier.WireHybrid,
}

// RunAblationWire compares the frontier wire encodings level by level
// on the k=10 Poisson workload over both partitionings (the square 2D
// mesh and the degenerate 1-row 1D mesh). Each level row reports the
// global frontier occupancy entering the level and the words every
// encoding moved, with the hybrid codec's gain over auto: the raw-list
// and whole-bitmap forms are each optimal only at the occupancy
// extremes, and the chunked containers win the wide mid-occupancy band
// in between — the regime the contiguous-block partitioning's
// clustered payloads live in.
func RunAblationWire(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Ablation — frontier wire encoding (sparse/dense/auto/hybrid), both partitionings",
		Columns: []string{"mesh", "level", "frontier occ %",
			"words sparse", "words dense", "words auto", "words hybrid", "auto/hybrid"},
	}
	p := minInt(64, cfg.MaxP)
	for p&(p-1) != 0 {
		p--
	}
	r, c := squareMesh(p)
	n := cfg.scaleCount(100000/fig4aScaleDivisor) * p
	k := fitK(n, 10)
	for _, mesh := range [][2]int{{r, c}, {1, p}} {
		w, err := buildWorkload(n, k, cfg.Seed, mesh[0], mesh[1], false)
		if err != nil {
			return nil, err
		}
		src := graph.LargestComponentVertex(w.g)
		results := make([]*bfs.Result, len(wireModes))
		for i, mode := range wireModes {
			opts := bfs.DefaultOptions(src)
			opts.Wire = mode
			res, err := bfs.Run2D(w.cl.world, w.stores, opts)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		label := meshLabel(mesh[0], mesh[1])
		levels := len(results[0].PerLevel)
		totals := make([]int64, len(wireModes))
		for l := 0; l < levels; l++ {
			words := make([]int64, len(wireModes))
			for i, res := range results {
				if l < len(res.PerLevel) {
					words[i] = res.PerLevel[l].ExpandWords + res.PerLevel[l].FoldWords
				}
				totals[i] += words[i]
			}
			occ := 100 * float64(results[0].PerLevel[l].Frontier) / float64(n)
			t.AddRow(label, l, occ, words[0], words[1], words[2], words[3], ratio(words[2], words[3]))
		}
		t.AddRow(label, "total", "", totals[0], totals[1], totals[2], totals[3], ratio(totals[2], totals[3]))
	}
	t.Note("n=%d k=%g: auto picks min(sparse, dense) per payload; hybrid re-chunks each payload", n, k)
	t.Note("into delta-varint/bitmap/run containers and must never exceed auto — the auto/hybrid")
	t.Note("column is its compression factor, largest on the mid-occupancy middle levels")
	return t, nil
}

func ratio(a, b int64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}
