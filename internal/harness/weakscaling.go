package harness

import (
	"repro/internal/bfs"
	"repro/internal/graph"
)

// fig4aSeries are the per-rank problem sizes of Figure 4: the paper
// holds |V| per processor constant while varying the average degree so
// every series has the same per-rank edge budget (|V|·k = 10^6).
var fig4aSeries = []struct {
	perRank int
	k       float64
}{
	{100000, 10},
	{20000, 50},
	{10000, 100},
	{5000, 200},
}

// fig4aScaleDivisor shrinks the paper's per-rank sizes to laptop scale
// before Config.Scale applies: paper |V|=100000/rank becomes 10000/rank
// at Scale=1. This keeps the per-rank compute large enough that
// communication stays a small fraction of execution time, as on the
// real machine (Figure 4a).
const fig4aScaleDivisor = 10

// RunFig4a reproduces Figure 4a: weak-scaling mean search time per
// series, plus the communication-time curve for the k=10 series. Times
// are simulated seconds from the torus cost model; the expected shape
// is growth proportional to log P (graph diameter grows with n) with
// smaller absolute times for higher k.
func RunFig4a(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Figure 4a — weak scaling of distributed BFS (2D partitioning)",
		Columns: []string{"series", "P", "R x C", "n", "k", "exec(s)", "comm(s)"},
	}
	for _, series := range fig4aSeries {
		perRank := cfg.scaleCount(series.perRank / fig4aScaleDivisor)
		for _, p := range weakPoints(cfg.MaxP) {
			r, c := squareMesh(p)
			n := perRank * p
			k := fitK(n, series.k)
			w, err := buildWorkload(n, k, cfg.Seed, r, c, false)
			if err != nil {
				return nil, err
			}
			pairs := w.searchPairs(cfg.Searches, cfg.Seed+int64(p))
			exec, comm, err := meanSearch(w, pairs, func(s, tg graph.Vertex) (*bfs.Result, error) {
				opts := bfs.DefaultOptions(s)
				opts.Target, opts.HasTarget = tg, true
				return bfs.Run2D(w.cl.world, w.stores, opts)
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(
				seriesLabel(perRank, k), p,
				meshLabel(r, c), n, k, exec, comm,
			)
		}
	}
	t.Note("paper: curves grow ∝ log P; higher k runs faster; comm time ≪ exec time")
	t.Note("per-rank sizes are paper's /%d, then ×Scale", fig4aScaleDivisor)
	return t, nil
}

// RunFig4c reproduces Figure 4c: bi-directional vs uni-directional
// weak scaling for the k=10 series. The paper reports the
// bi-directional search at ~33% of the uni-directional time in the
// worst case.
func RunFig4c(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Figure 4c — bi-directional vs uni-directional search (k=10 series)",
		Columns: []string{"P", "n", "uni exec(s)", "bi exec(s)", "bi/uni", "uni vol", "bi vol"},
	}
	perRank := cfg.scaleCount(fig4aSeries[0].perRank / fig4aScaleDivisor)
	k := fig4aSeries[0].k
	for _, p := range weakPoints(cfg.MaxP) {
		r, c := squareMesh(p)
		n := perRank * p
		w, err := buildWorkload(n, fitK(n, k), cfg.Seed, r, c, false)
		if err != nil {
			return nil, err
		}
		pairs := w.searchPairs(cfg.Searches, cfg.Seed+int64(p))
		var uniExec, biExec float64
		var uniVol, biVol int64
		for _, pr := range pairs {
			opts := bfs.DefaultOptions(pr[0])
			opts.Target, opts.HasTarget = pr[1], true
			uni, err := bfs.Run2D(w.cl.world, w.stores, opts)
			if err != nil {
				return nil, err
			}
			bi, err := bfs.RunBidirectional2D(w.cl.world, w.stores, opts)
			if err != nil {
				return nil, err
			}
			uniExec += uni.SimTime
			biExec += bi.SimTime
			uniVol += uni.TotalFoldWords + uni.TotalExpandWords
			biVol += bi.TotalFoldWords + bi.TotalExpandWords
		}
		sc := float64(len(pairs))
		ratio := 0.0
		if uniExec > 0 {
			ratio = biExec / uniExec
		}
		t.AddRow(p, n, uniExec/sc, biExec/sc, ratio, uniVol, biVol)
	}
	t.Note("paper: bi-directional ≤ ~33%% of uni-directional in the worst case; volume orders of magnitude lower")
	return t, nil
}

// RunFig5 reproduces Figure 5: strong scaling. The graph is fixed and P
// grows; speedup is simulated-time(P=1)/simulated-time(P). The paper
// observes ~√P growth for small P, tapering as the per-rank problem
// shrinks and communication dominates.
func RunFig5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Figure 5 — strong scaling speedup",
		Columns: []string{"k", "P", "R x C", "exec(s)", "speedup"},
	}
	refP := minInt(cfg.MaxP, 256)
	for _, series := range fig4aSeries {
		// Fixed graph sized so the largest run matches the series'
		// per-rank budget (the paper fixes the graph per series).
		baseN := cfg.scaleCount(series.perRank/fig4aScaleDivisor) * refP
		k := fitK(baseN, series.k)
		var t1 float64
		for _, p := range weakPoints(cfg.MaxP) {
			r, c := squareMesh(p)
			w, err := buildWorkload(baseN, k, cfg.Seed, r, c, false)
			if err != nil {
				return nil, err
			}
			// The graph is fixed across P, so use the same search
			// pairs at every point: speedup then compares identical
			// work.
			pairs := w.searchPairs(cfg.Searches, cfg.Seed)
			exec, _, err := meanSearch(w, pairs, func(s, tg graph.Vertex) (*bfs.Result, error) {
				opts := bfs.DefaultOptions(s)
				opts.Target, opts.HasTarget = tg, true
				return bfs.Run2D(w.cl.world, w.stores, opts)
			})
			if err != nil {
				return nil, err
			}
			if p == 1 {
				t1 = exec
			}
			speedup := 0.0
			if exec > 0 {
				speedup = t1 / exec
			}
			t.AddRow(k, p, meshLabel(r, c), exec, speedup)
		}
	}
	t.Note("paper: speedup ∝ √P for small P, tapering for large P as communication dominates")
	return t, nil
}

func seriesLabel(perRank int, k float64) string {
	return "|V|=" + itoa(perRank) + ",k=" + ftoa(k)
}

func meshLabel(r, c int) string { return itoa(r) + "x" + itoa(c) }

func itoa(v int) string { return fmtInt(v) }
