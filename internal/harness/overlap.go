package harness

import (
	"fmt"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sssp"
)

// RunAblationOverlap compares the phase-synchronous schedule against
// the overlapped (asynchronous) one on the headline Poisson workload:
// the same exchanges, words, and results, but with every send posted
// before any wait and received parts streaming into the local scan.
// BFS rows report per-level critical-path time under both schedules
// with the fraction of communication the coprocessor-progressed
// transfers kept off the clock; Δ-stepping rows (whose relax exchanges
// dominate simulated time at P=16) report per-run totals across the
// partitionings.
func RunAblationOverlap(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Ablation — async overlap: expand/fold exchanges hidden under the local scan",
		Columns: []string{"run", "level/epochs", "sync exec ms", "async exec ms",
			"speedup", "async comm ms/rank", "hidden %"},
	}
	p := minInt(16, cfg.MaxP)
	for p&(p-1) != 0 {
		p--
	}
	r, c := squareMesh(p)
	n := cfg.scaleCount(100000/fig4aScaleDivisor) * p
	k := fitK(n, 10)

	// BFS: per-level comparison on the 2D mesh.
	w, err := buildWorkload(n, k, cfg.Seed, r, c, false)
	if err != nil {
		return nil, err
	}
	src := graph.LargestComponentVertex(w.g)
	runBFS := func(async bool) (*bfs.Result, error) {
		opts := bfs.DefaultOptions(src)
		opts.Async = async
		return bfs.Run2D(w.cl.world, w.stores, opts)
	}
	syncRes, err := runBFS(false)
	if err != nil {
		return nil, err
	}
	asyncRes, err := runBFS(true)
	if err != nil {
		return nil, err
	}
	// The comm column is the per-rank mean of the exchange communication
	// charged inside the level (LevelStats.CommS sums over ranks), so
	// the per-level rows and the total row reconcile by addition.
	label := "bfs " + meshLabel(r, c)
	var commTot, overlapTot float64
	for l := range syncRes.PerLevel {
		s, a := syncRes.PerLevel[l], asyncRes.PerLevel[l]
		commTot += a.CommS
		overlapTot += a.OverlapS
		t.AddRow(label, l, 1e3*s.ExecS, 1e3*a.ExecS, ratioF(s.ExecS, a.ExecS),
			1e3*a.CommS/float64(p), 100*a.HiddenFrac())
	}
	t.AddRow(label, "total", 1e3*syncRes.SimTime, 1e3*asyncRes.SimTime,
		ratioF(syncRes.SimTime, asyncRes.SimTime), 1e3*commTot/float64(p),
		100*pctOf(overlapTot, commTot))

	// Δ-stepping: totals on the weighted variant across partitionings.
	wg, err := graph.GenerateWeighted(graph.Params{N: n, K: k, Seed: cfg.Seed},
		graph.WeightSpec{Dist: graph.WeightUniform, MaxWeight: 256, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	wsrc := graph.LargestComponentVertex(wg)
	layout2, err := partition.NewLayout2D(n, r, c)
	if err != nil {
		return nil, err
	}
	wstores, err := partition.Build2DWeighted(layout2, wg.VisitWeightedEdges)
	if err != nil {
		return nil, err
	}
	layout1, err := partition.NewLayout1D(n, p)
	if err != nil {
		return nil, err
	}
	wstores1, err := partition.Build1DWeighted(layout1, wg.VisitWeightedEdges)
	if err != nil {
		return nil, err
	}
	ssspRuns := []struct {
		label string
		run   func(async bool) (*sssp.Result, error)
	}{
		{"sssp 2d " + meshLabel(r, c), func(async bool) (*sssp.Result, error) {
			opts := sssp.DefaultOptions(wsrc)
			opts.Async = async
			return sssp.Run2D(w.cl.world, wstores, opts)
		}},
		{"sssp 1d " + meshLabel(1, p), func(async bool) (*sssp.Result, error) {
			opts := sssp.DefaultOptions(wsrc)
			opts.Async = async
			return sssp.Run1D(w.cl.world, wstores1, opts)
		}},
	}
	for _, sr := range ssspRuns {
		syncS, err := sr.run(false)
		if err != nil {
			return nil, err
		}
		asyncS, err := sr.run(true)
		if err != nil {
			return nil, err
		}
		var commTot, overlapTot float64
		for _, es := range asyncS.PerEpoch {
			commTot += es.CommS
			overlapTot += es.OverlapS
		}
		t.AddRow(sr.label, syncS.Epochs, 1e3*syncS.SimTime, 1e3*asyncS.SimTime,
			ratioF(syncS.SimTime, asyncS.SimTime), 1e3*commTot/float64(p),
			100*pctOf(overlapTot, commTot))
	}

	t.Note("n=%d k=%g P=%d: identical levels/distances and words under both schedules;", n, k, p)
	t.Note("async posts every send before any wait (BG/L coprocessor mode) and streams parts")
	t.Note("into the hash-probe scan, so wire time and message overheads hide under compute.")
	t.Note("Δ-stepping gains most: many small exchanges whose per-epoch scans cover them.")
	return t, nil
}

func ratioF(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

func pctOf(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
