package harness

import (
	"repro/internal/analytic"
	"repro/internal/bfs"
	"repro/internal/graph"
)

// RunFig4b reproduces Figure 4b: total message volume of a search as a
// function of the s→t path length. The paper uses a 12M-vertex,
// 120M-edge graph; at Scale=1 we use 120k vertices, k=10, P=16. Volume
// grows quickly with path length until the path length reaches the
// graph diameter.
func RunFig4b(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Figure 4b — message volume vs length of search path",
		Columns: []string{"path length", "fold vol", "expand vol", "total vol"},
	}
	n := cfg.scaleCount(120000/16) * 16
	k := fitK(n, 10)
	r, c := squareMesh(minInt(16, cfg.MaxP))
	w, err := buildWorkload(n, k, cfg.Seed, r, c, false)
	if err != nil {
		return nil, err
	}
	src := graph.LargestComponentVertex(w.g)
	levels := graph.BFS(w.g, src)
	for depth := int32(3); depth <= 9; depth++ {
		target, ok := targetAtDepth(levels, depth)
		if !ok {
			t.Note("no vertex at depth %d (graph diameter reached)", depth)
			continue
		}
		opts := bfs.DefaultOptions(src)
		opts.Target, opts.HasTarget = target, true
		res, err := bfs.Run2D(w.cl.world, w.stores, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(depth, res.TotalFoldWords, res.TotalExpandWords,
			res.TotalFoldWords+res.TotalExpandWords)
	}
	t.Note("n=%d k=%g on %s; paper: volume rises steeply until path length ≈ diameter (≈%.1f)",
		n, k, meshLabel(r, c), graph.ExpectedDiameter(n, k))
	return t, nil
}

// RunFig6a reproduces Figure 6a: per-level fold message volume of 1D vs
// 2D partitionings at k=10 and k=50, on a full traversal (the paper
// searches for an unreachable target to capture worst-case behavior).
// For the low degree 1D generates less volume per level; for the high
// degree 2D wins.
func RunFig6a(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	return fig6Volumes(cfg, []float64{10, 50}, nil)
}

// RunFig6b reproduces Figure 6b: the crossover degree. The equation of
// §4 is solved for the scaled (n, P) and both partitionings run at that
// k; their per-level volumes should nearly coincide.
func RunFig6b(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	p := fig6P(cfg)
	n := fig6N(cfg, p)
	k, err := analytic.CrossoverK(float64(n), p, float64(n-1))
	if err != nil {
		return nil, err
	}
	t, err := fig6Volumes(cfg, []float64{k}, &k)
	if err != nil {
		return nil, err
	}
	t.Title = "Figure 6b — 1D vs 2D at the computed crossover degree"
	return t, nil
}

func fig6P(cfg Config) int {
	// A perfect square P so the 2D mesh is square (paper: 400 = 20x20).
	p := 16
	for _, cand := range []int{400, 256, 100, 64, 16, 4} {
		if cand <= cfg.MaxP {
			p = cand
			break
		}
	}
	return p
}

func fig6N(cfg Config, p int) int {
	// Paper: 40M vertices over 400 ranks = 100k per rank; scaled by the
	// same /10 divisor as the weak-scaling series.
	return cfg.scaleCount(100000/fig4aScaleDivisor) * p
}

func fig6Volumes(cfg Config, ks []float64, crossover *float64) (*Table, error) {
	t := &Table{
		Title:   "Figure 6a — per-level fold volume, 1D vs 2D partitioning",
		Columns: []string{"k", "level", "2D vol", "1D vol"},
	}
	p := fig6P(cfg)
	n := fig6N(cfg, p)
	r, c := squareMesh(p)
	for _, kRaw := range ks {
		k := fitK(n, kRaw)
		run := func(rr, cc int) (*bfs.Result, error) {
			w, err := buildWorkload(n, k, cfg.Seed, rr, cc, false)
			if err != nil {
				return nil, err
			}
			src := graph.LargestComponentVertex(w.g)
			// Full traversal = unreachable-target worst case. Direct
			// targeted collectives so that "received words" counts
			// each index once, matching the §3.1 analysis the figure
			// compares against (ring-based folds re-count in-flight
			// hops).
			opts := bfs.DefaultOptions(src)
			opts.Expand = bfs.ExpandTargeted
			opts.Fold = bfs.FoldDirect
			return bfs.Run2D(w.cl.world, w.stores, opts)
		}
		res2, err := run(r, c)
		if err != nil {
			return nil, err
		}
		res1, err := run(1, p)
		if err != nil {
			return nil, err
		}
		maxLv := len(res2.PerLevel)
		if len(res1.PerLevel) > maxLv {
			maxLv = len(res1.PerLevel)
		}
		for lv := 0; lv < maxLv; lv++ {
			var v2, v1 int64
			if lv < len(res2.PerLevel) {
				v2 = res2.PerLevel[lv].FoldWords + res2.PerLevel[lv].ExpandWords
			}
			if lv < len(res1.PerLevel) {
				v1 = res1.PerLevel[lv].FoldWords + res1.PerLevel[lv].ExpandWords
			}
			t.AddRow(k, lv, v2, v1)
		}
	}
	t.Note("n=%d, P=%d (2D as %s, 1D as 1x%d); volumes are total words received per level", n, p, meshLabel(r, c), p)
	if crossover != nil {
		t.Note("crossover degree from n·γ(n/P)·(P−1)/P = 2·(n/P)·γ(n/√P)·(√P−1): k = %.4g", *crossover)
		t.Note("paper computes k=34 for n=4e7, P=400; exact solve of the same equation gives ≈31.3")
	} else {
		t.Note("paper: 1D volume grows slower for k=10; 2D generates less for k=50")
	}
	return t, nil
}
