package harness

import (
	"repro/internal/bfs"
	"repro/internal/graph"
)

// ablationWorkload builds the common graph for the design ablations:
// a mid-size square mesh with the k=10 workload.
func ablationWorkload(cfg Config, rowMajor bool) (*workload, error) {
	p := minInt(64, cfg.MaxP)
	for p&(p-1) != 0 {
		p--
	}
	r, c := squareMesh(p)
	n := cfg.scaleCount(100000/fig4aScaleDivisor) * p
	return buildWorkload(n, fitK(n, 10), cfg.Seed, r, c, rowMajor)
}

// RunAblationMapping compares the Figure 1 plane mapping against plain
// row-major placement of ranks on the torus. The logical communication
// is identical; only hop counts — and therefore simulated
// communication time — change.
func RunAblationMapping(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Ablation — task mapping onto the torus (§3.2.1)",
		Columns: []string{"mapping", "exec(s)", "comm(s)", "avg hops/msg", "link MB (bytes x hops)", "max link MB"},
	}
	for _, m := range []struct {
		name     string
		rowMajor bool
	}{{"figure-1 planes", false}, {"row-major", true}} {
		w, err := ablationWorkload(cfg, m.rowMajor)
		if err != nil {
			return nil, err
		}
		src := graph.LargestComponentVertex(w.g)
		res, err := bfs.Run2D(w.cl.world, w.stores, bfs.DefaultOptions(src))
		if err != nil {
			return nil, err
		}
		t.AddRow(m.name, res.SimTime, res.SimComm,
			res.AvgHopsPerMessage(), float64(res.HopBytes)/1e6,
			float64(res.MaxLinkBytes)/1e6)
	}
	t.Note("expected: plane mapping lowers hop counts and the link traffic (bytes x hops) the")
	t.Note("search imposes; end-to-end time moves little because the model has no link contention")
	return t, nil
}

// RunAblationCollectives compares the fold implementations: direct
// all-to-all reduce-scatter, the two-phase union-fold, and the
// two-phase schedule without in-flight union.
func RunAblationCollectives(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Ablation — fold collective algorithm (§3.2.2)",
		Columns: []string{"fold", "exec(s)", "comm(s)", "fold vol", "dups eliminated"},
	}
	w, err := ablationWorkload(cfg, false)
	if err != nil {
		return nil, err
	}
	src := graph.LargestComponentVertex(w.g)
	for _, alg := range []bfs.FoldAlg{bfs.FoldDirect, bfs.FoldTwoPhase, bfs.FoldTwoPhaseNoUnion, bfs.FoldBruck} {
		opts := bfs.DefaultOptions(src)
		opts.Fold = alg
		res, err := bfs.Run2D(w.cl.world, w.stores, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(alg.String(), res.SimTime, res.SimComm, res.TotalFoldWords, res.TotalDups)
	}
	t.Note("expected: union fold moves fewer words than the no-union ring; direct all-to-all")
	t.Note("has fewest messages at this scale but needs per-destination buffers ∝ k (§3.2)")
	return t, nil
}

// RunAblationTermination compares the two homes for the per-level
// termination/found reductions: the modeled dedicated combine-tree
// network BlueGene/L provides (§4.1) versus recursive-doubling over
// ordinary torus point-to-point messages. The data collectives are
// identical in both runs; only the O(log P) control reductions move.
func RunAblationTermination(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Ablation — termination reductions: tree network vs torus point-to-point",
		Columns: []string{"reductions", "exec(s)", "comm(s)", "messages"},
	}
	w, err := ablationWorkload(cfg, false)
	if err != nil {
		return nil, err
	}
	src := graph.LargestComponentVertex(w.g)
	for _, p2p := range []bool{false, true} {
		opts := bfs.DefaultOptions(src)
		opts.P2PTermination = p2p
		res, err := bfs.Run2D(w.cl.world, w.stores, opts)
		if err != nil {
			return nil, err
		}
		label := "tree network"
		if p2p {
			label = "torus p2p"
		}
		t.AddRow(label, res.SimTime, res.SimComm, res.MsgsRecv)
	}
	t.Note("expected: torus-only termination adds ~2 log2(P) messages per rank per level and")
	t.Note("grows comm time — the reason BlueGene/L's dedicated tree network matters (§4.1)")
	return t, nil
}

// RunAblationSentCache compares the sent-neighbors cache (§2.4.3) on
// and off: with the cache a neighbor is sent to its owner at most once
// over the whole search.
func RunAblationSentCache(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Ablation — sent-neighbors cache (§2.4.3)",
		Columns: []string{"cache", "exec(s)", "fold vol", "dups eliminated"},
	}
	w, err := ablationWorkload(cfg, false)
	if err != nil {
		return nil, err
	}
	src := graph.LargestComponentVertex(w.g)
	for _, on := range []bool{true, false} {
		opts := bfs.DefaultOptions(src)
		opts.SentCache = on
		res, err := bfs.Run2D(w.cl.world, w.stores, opts)
		if err != nil {
			return nil, err
		}
		label := "off"
		if on {
			label = "on"
		}
		t.AddRow(label, res.SimTime, res.TotalFoldWords, res.TotalDups)
	}
	t.Note("expected: cache removes re-sends of already-delivered neighbors, shrinking fold volume")
	return t, nil
}
