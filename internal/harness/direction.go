package harness

import (
	"repro/internal/bfs"
	"repro/internal/graph"
)

// RunAblationDirection compares the traversal directions level by
// level on the k=10 Poisson workload: the paper's always-top-down
// expansion against the direction-optimizing hybrid, reporting each
// level's direction, edges inspected, and wire words. The low-diameter
// middle levels are where bottom-up wins: an unlabeled vertex stops at
// its first frontier parent instead of the frontier pushing nearly
// every edge.
func RunAblationDirection(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Ablation — traversal direction per level (top-down vs direction-optimizing)",
		Columns: []string{"level", "frontier", "dir(DO)",
			"edges topdown", "edges DO", "edges saved %",
			"words topdown", "words DO"},
	}
	w, err := ablationWorkload(cfg, false)
	if err != nil {
		return nil, err
	}
	src := graph.LargestComponentVertex(w.g)
	td := bfs.DefaultOptions(src)
	do := bfs.DefaultOptions(src)
	do.Direction = bfs.DirectionOptimizing
	resTD, err := bfs.Run2D(w.cl.world, w.stores, td)
	if err != nil {
		return nil, err
	}
	resDO, err := bfs.Run2D(w.cl.world, w.stores, do)
	if err != nil {
		return nil, err
	}
	levels := len(resTD.PerLevel)
	if len(resDO.PerLevel) > levels {
		levels = len(resDO.PerLevel)
	}
	var tdEdges, doEdges, tdWords, doWords int64
	for l := 0; l < levels; l++ {
		var a, b bfs.LevelStats
		if l < len(resTD.PerLevel) {
			a = resTD.PerLevel[l]
		}
		if l < len(resDO.PerLevel) {
			b = resDO.PerLevel[l]
		}
		saved := 0.0
		if a.EdgesScanned > 0 {
			saved = 100 * float64(a.EdgesScanned-b.EdgesScanned) / float64(a.EdgesScanned)
		}
		aw := a.ExpandWords + a.FoldWords
		bw := b.ExpandWords + b.FoldWords
		t.AddRow(l, a.Frontier, b.Direction.String(), a.EdgesScanned, b.EdgesScanned, saved, aw, bw)
		tdEdges += a.EdgesScanned
		doEdges += b.EdgesScanned
		tdWords += aw
		doWords += bw
	}
	savedTotal := 0.0
	if tdEdges > 0 {
		savedTotal = 100 * float64(tdEdges-doEdges) / float64(tdEdges)
	}
	t.AddRow("total", "", "", tdEdges, doEdges, savedTotal, tdWords, doWords)
	t.Note("expected: the hybrid switches to bottom-up on the large middle levels, where the")
	t.Note("first-parent early exit inspects a fraction of top-down's edges and the fixed-size")
	t.Note("bitmap exchanges replace frontier-proportional vertex lists")
	return t, nil
}
