package harness

import "repro/internal/analytic"

// RunMemScale demonstrates the §2.4.1 memory argument: under weak
// scaling, the number of non-empty partial edge lists per rank — and
// the number of distinct vertices appearing in them — stays O(n/P)
// even though a rank's block column spans O(n/C) vertices. This is the
// property that lets the 2D partitioning index only non-empty lists
// and keep per-rank memory flat as the machine grows.
func RunMemScale(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "§2.4.1 — per-rank memory scales as O(n/P), not O(n/C)",
		Columns: []string{
			"P", "R x C", "n/P", "max non-empty cols", "analytic E[cols]",
			"max distinct rows", "dense bound n/C", "cols ÷ (n/P)",
		},
	}
	perRank := cfg.scaleCount(100000 / fig4aScaleDivisor)
	k := 10.0
	for _, p := range weakPoints(cfg.MaxP) {
		if p < 4 {
			continue // a 1x1 or degenerate mesh has no column sharing
		}
		r, c := squareMesh(p)
		n := perRank * p
		w, err := buildWorkload(n, fitK(n, k), cfg.Seed, r, c, false)
		if err != nil {
			return nil, err
		}
		maxCols, maxRows, dense := 0, 0, 0
		for _, st := range w.stores {
			m := st.Memory()
			if m.NonEmptyColumns > maxCols {
				maxCols = m.NonEmptyColumns
			}
			if m.DistinctRows > maxRows {
				maxRows = m.DistinctRows
			}
			dense = m.DenseColumns
		}
		t.AddRow(p, meshLabel(r, c), perRank, maxCols,
			analytic.ExpectedNonEmptyLists(float64(n), k, r, c),
			maxRows, dense, float64(maxCols)/float64(perRank))
	}
	t.Note("k=%g; the cols/(n/P) ratio stays bounded (≈min(k,R)) while the dense bound grows with R", k)
	t.Note("paper §2.4.1: expected non-empty edge lists per rank is O(n/P); only those are indexed")
	return t, nil
}
