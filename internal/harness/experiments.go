package harness

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/bfs"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/torus"
)

// Config scales and seeds an experiment run. The paper ran on up to
// 32,768 BlueGene/L nodes with 100,000 vertices per node; Scale
// multiplies the per-rank vertex counts and MaxP caps the rank counts
// so every exhibit reproduces on one machine.
type Config struct {
	Scale    float64 // per-rank problem-size multiplier (default 1)
	MaxP     int     // cap on simulated rank count (default 256)
	Seed     int64   // workload seed (default 1)
	Searches int     // s→t searches averaged per data point (default 3)
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.MaxP <= 0 {
		c.MaxP = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Searches <= 0 {
		c.Searches = 3
	}
	return c
}

// scaleCount applies Scale to a per-rank vertex count, keeping at
// least 64 vertices per rank.
func (c Config) scaleCount(base int) int {
	v := int(float64(base) * c.Scale)
	if v < 64 {
		v = 64
	}
	return v
}

// Experiment is one reproducible exhibit from the paper.
type Experiment struct {
	ID    string
	Title string
	Paper string // which table/figure of the paper this regenerates
	Run   func(Config) (*Table, error)
}

// All lists every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig4a", "Weak scaling: mean search time and communication time", "Figure 4a", RunFig4a},
		{"fig4b", "Message volume vs search path length", "Figure 4b", RunFig4b},
		{"fig4c", "Bi-directional vs uni-directional weak scaling", "Figure 4c", RunFig4c},
		{"fig5", "Strong scaling speedup", "Figure 5", RunFig5},
		{"table1", "Processor-topology comparison (2D vs 1D)", "Table 1", RunTable1},
		{"fig6a", "Per-level message volume, 1D vs 2D, k=10 and k=50", "Figure 6a", RunFig6a},
		{"fig6b", "1D/2D crossover degree", "Figure 6b", RunFig6b},
		{"fig7", "Union-fold redundancy ratio", "Figure 7", RunFig7},
		{"memscale", "Per-rank memory is O(n/P), not O(n/C)", "§2.4.1 claim", RunMemScale},
		{"ablation-mapping", "Figure-1 plane mapping vs row-major placement", "design ablation (§3.2.1)", RunAblationMapping},
		{"ablation-collective", "Fold collective algorithms", "design ablation (§3.2.2)", RunAblationCollectives},
		{"ablation-sentcache", "Sent-neighbors cache on/off", "design ablation (§2.4.3)", RunAblationSentCache},
		{"ablation-termination", "Tree-network vs torus point-to-point termination", "design ablation (§4.1)", RunAblationTermination},
		{"ablation-direction", "Top-down vs direction-optimizing traversal, level by level", "design ablation (beyond the paper)", RunAblationDirection},
		{"ablation-wire", "Frontier wire encodings (sparse/dense/auto/hybrid) across occupancies", "design ablation (beyond the paper)", RunAblationWire},
		{"ablation-delta", "Δ-stepping SSSP bucket-width sweep on the weighted Poisson workload", "design ablation (beyond the paper)", RunAblationDelta},
		{"ablation-partition", "2D vs 1D-row vs 1D-col partitionings through the unified search API", "Table 1 reproduction", RunAblationPartition},
		{"ablation-overlap", "Synchronous vs overlapped (async) exchange schedule, level by level", "design ablation (beyond the paper)", RunAblationOverlap},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// cluster is a mesh with its simulated world on a fitted torus, mapped
// with the Figure 1 planes layout when possible.
type cluster struct {
	r, c  int
	world *comm.World
}

func newCluster(r, c int, rowMajor bool, model torus.CostModel) (*cluster, error) {
	p := r * c
	tor := torus.FitTorus(p)
	var mapping *torus.Mapping
	var err error
	if rowMajor {
		mapping, err = torus.RowMajor(tor, p)
	} else {
		mapping, err = torus.Planes(tor, r, c)
		if err != nil {
			mapping, err = torus.RowMajor(tor, p)
		}
	}
	if err != nil {
		return nil, err
	}
	w, err := comm.NewWorld(comm.Config{P: p, Mapping: mapping, Model: model})
	if err != nil {
		return nil, err
	}
	return &cluster{r: r, c: c, world: w}, nil
}

// workload is a generated graph distributed over a mesh.
type workload struct {
	g      *graph.CSR
	layout *partition.Layout2D
	stores []*partition.Store2D
	cl     *cluster
}

// Workload is the exported face of a built workload, for external
// drivers (cmd/benchjson) that measure the same machine the exhibits
// run on.
type Workload struct {
	Graph  *graph.CSR
	Stores []*partition.Store2D
	World  *comm.World
}

// BuildWorkload generates the standard Poisson workload and
// distributes it over an r x c mesh on the Figure 1 plane-mapped
// BlueGene/L torus — the exact construction every exhibit uses.
func BuildWorkload(n int, k float64, seed int64, r, c int) (*Workload, error) {
	w, err := buildWorkload(n, k, seed, r, c, false)
	if err != nil {
		return nil, err
	}
	return &Workload{Graph: w.g, Stores: w.stores, World: w.cl.world}, nil
}

func buildWorkload(n int, k float64, seed int64, r, c int, rowMajor bool) (*workload, error) {
	if k > float64(n-1) {
		return nil, fmt.Errorf("harness: degree %g infeasible for n=%d", k, n)
	}
	params := graph.Params{N: n, K: k, Seed: seed}
	g, err := graph.Generate(params)
	if err != nil {
		return nil, err
	}
	layout, err := partition.NewLayout2D(n, r, c)
	if err != nil {
		return nil, err
	}
	stores, err := partition.Build2D(layout, func(fn func(u, v graph.Vertex)) error {
		return params.VisitEdges(fn)
	})
	if err != nil {
		return nil, err
	}
	cl, err := newCluster(r, c, rowMajor, torus.PresetBlueGeneL())
	if err != nil {
		return nil, err
	}
	return &workload{g: g, layout: layout, stores: stores, cl: cl}, nil
}

// searchPairs picks deterministic source/target pairs inside the
// largest component, spread across the level structure so path lengths
// vary the way random pairs on BG/L did.
func (w *workload) searchPairs(count int, seed int64) [][2]graph.Vertex {
	src := graph.LargestComponentVertex(w.g)
	levels := graph.BFS(w.g, src)
	var reachable []graph.Vertex
	for v, l := range levels {
		if l != graph.Unreached {
			reachable = append(reachable, graph.Vertex(v))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]graph.Vertex, 0, count)
	for len(pairs) < count {
		s := reachable[rng.Intn(len(reachable))]
		t := reachable[rng.Intn(len(reachable))]
		if s != t {
			pairs = append(pairs, [2]graph.Vertex{s, t})
		}
	}
	return pairs
}

// targetAtDepth returns a vertex at the given BFS depth from src, or
// false if none exists.
func targetAtDepth(levels []int32, depth int32) (graph.Vertex, bool) {
	for v, l := range levels {
		if l == depth {
			return graph.Vertex(v), true
		}
	}
	return 0, false
}

// meanSearch runs the given pairs through fn and averages simulated
// execution and communication times.
func meanSearch(w *workload, pairs [][2]graph.Vertex, run func(s, t graph.Vertex) (*bfs.Result, error)) (exec, comm float64, err error) {
	for _, p := range pairs {
		res, e := run(p[0], p[1])
		if e != nil {
			return 0, 0, e
		}
		exec += res.SimTime
		comm += res.SimComm
	}
	n := float64(len(pairs))
	return exec / n, comm / n, nil
}

// weakPoints returns the rank counts for weak-scaling sweeps: powers
// of 4 up to MaxP (the paper sweeps 1 → 32768).
func weakPoints(maxP int) []int {
	var ps []int
	for p := 1; p <= maxP; p *= 4 {
		ps = append(ps, p)
	}
	return ps
}

// squareMesh gives the most square factorization (for weak scaling the
// paper uses square-ish meshes).
func squareMesh(p int) (int, int) {
	best := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			best = d
		}
	}
	return best, p / best
}

// fitK clamps the requested average degree to what a graph of n
// vertices supports.
func fitK(n int, k float64) float64 {
	return math.Min(k, float64(n-1))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fmtInt(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// fmtSscan is a test seam around fmt.Sscan for parsing rendered cells.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }
