package harness

import (
	"strings"
	"testing"
)

// TestAblationDeltaShape asserts the exhibit's headline claim at a
// reduced scale: some interior Δ achieves a strictly lower simulated
// execution time than both degenerate extremes (Δ = min weight,
// Dijkstra-like; Δ = ∞, Bellman-Ford), and the monotone trade behind
// it — re-settles grow with Δ while drained buckets shrink.
func TestAblationDeltaShape(t *testing.T) {
	tbl, err := RunAblationDelta(Config{Scale: 0.4, MaxP: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var dijkstraExec, bellmanExec float64
	bestInterior := -1.0
	var prevResettle, prevBuckets float64 = -1, 1 << 60
	for _, row := range tbl.Rows {
		var buckets, resettles, exec float64
		if _, err := fmtSscan(row[1], &buckets); err != nil {
			t.Fatalf("bad buckets cell %q: %v", row[1], err)
		}
		if _, err := fmtSscan(row[4], &resettles); err != nil {
			t.Fatalf("bad re-settles cell %q: %v", row[4], err)
		}
		if _, err := fmtSscan(row[6], &exec); err != nil {
			t.Fatalf("bad exec cell %q: %v", row[6], err)
		}
		switch {
		case strings.Contains(row[0], "dijkstra-like"):
			dijkstraExec = exec
			if resettles != 0 {
				t.Fatalf("dijkstra-like row re-settled %g vertices", resettles)
			}
		case strings.Contains(row[0], "bellman-ford"):
			bellmanExec = exec
			if buckets != 1 {
				t.Fatalf("bellman-ford row drained %g buckets", buckets)
			}
		case strings.HasPrefix(row[0], "auto"):
			// The auto heuristic is one of the interior points.
			if bestInterior < 0 || exec < bestInterior {
				bestInterior = exec
			}
		default:
			if bestInterior < 0 || exec < bestInterior {
				bestInterior = exec
			}
			// The fixed ladder is increasing in Δ: speculation grows,
			// bucket count shrinks.
			if resettles < prevResettle {
				t.Fatalf("re-settles fell from %g to %g along the Δ ladder", prevResettle, resettles)
			}
			if buckets > prevBuckets {
				t.Fatalf("buckets grew from %g to %g along the Δ ladder", prevBuckets, buckets)
			}
			prevResettle, prevBuckets = resettles, buckets
		}
	}
	if dijkstraExec == 0 || bellmanExec == 0 || bestInterior < 0 {
		t.Fatalf("missing sweep rows: dijkstra %g, bellman %g, interior %g", dijkstraExec, bellmanExec, bestInterior)
	}
	if bestInterior >= dijkstraExec || bestInterior >= bellmanExec {
		t.Fatalf("no interior Δ beat the extremes: interior %g vs dijkstra %g, bellman-ford %g",
			bestInterior, dijkstraExec, bellmanExec)
	}
}
