package localindex

import (
	"sync"
	"sync/atomic"
	"testing"
)

// GetCounted must return exactly what Get returns and count exactly the
// probes Get would have charged — the parallel scans' probe accounting
// (GetCounted per worker + one AddProbes after the merge) must be
// indistinguishable from serial Get.
func TestGetCountedMatchesGet(t *testing.T) {
	m := NewMap(1000)
	for k := uint32(0); k < 1000; k++ {
		m.Put(k*3, k)
	}
	for k := uint32(0); k < 3200; k++ {
		before := m.Probes()
		v1, ok1 := m.Get(k)
		serialProbes := m.Probes() - before
		v2, ok2, counted := m.GetCounted(k)
		if v1 != v2 || ok1 != ok2 {
			t.Fatalf("key %d: GetCounted (%d,%v) != Get (%d,%v)", k, v2, ok2, v1, ok1)
		}
		if uint64(counted) != serialProbes {
			t.Fatalf("key %d: GetCounted counted %d probes, Get charged %d", k, counted, serialProbes)
		}
	}
}

// Concurrent GetCounted + per-worker tallies + one AddProbes must land
// on the same cumulative counter as serial Gets (and pass -race, which
// plain concurrent Get cannot: it mutates the shared counter).
func TestGetCountedConcurrent(t *testing.T) {
	m := NewMap(4096)
	for k := uint32(0); k < 4096; k++ {
		m.Put(k, k+1)
	}
	serial := NewMap(4096)
	for k := uint32(0); k < 4096; k++ {
		serial.Put(k, k+1)
	}
	s0 := serial.Probes()
	for k := uint32(0); k < 8192; k++ {
		serial.Get(k)
	}
	wantDelta := serial.Probes() - s0

	p0 := m.Probes()
	var wg sync.WaitGroup
	var total atomic.Uint64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local uint64
			for k := uint32(w); k < 8192; k += 8 {
				v, ok, pr := m.GetCounted(k)
				if ok != (k < 4096) || (ok && v != k+1) {
					t.Errorf("key %d: got (%d,%v)", k, v, ok)
				}
				local += uint64(pr)
			}
			total.Add(local)
		}(w)
	}
	wg.Wait()
	m.AddProbes(total.Load())
	if got := m.Probes() - p0; got != wantDelta {
		t.Fatalf("concurrent probe total %d != serial %d", got, wantDelta)
	}
}

// TestAndSetAtomic: exactly one claimant per bit wins, nothing is lost,
// and the final bitset matches serial TestAndSet (run with -race).
func TestTestAndSetAtomicConcurrent(t *testing.T) {
	const n = 1 << 14
	b := NewBitset(n)
	var wins atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint32(0); i < n; i++ {
				if i%5 == 0 {
					continue
				}
				if !b.TestAndSetAtomic(i) {
					wins.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	want := int64(0)
	for i := uint32(0); i < n; i++ {
		set := i%5 != 0
		if set {
			want++
		}
		if b.Test(i) != set {
			t.Fatalf("bit %d = %v, want %v", i, b.Test(i), set)
		}
	}
	if wins.Load() != want {
		t.Fatalf("%d wins across claimants, want exactly %d (one per bit)", wins.Load(), want)
	}
}
