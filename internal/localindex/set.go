package localindex

import "sort"

// SortSet sorts s ascending and removes duplicates in place, returning
// the deduplicated slice and the number of duplicates removed. The
// duplicate count feeds the paper's redundancy-ratio metric (Fig. 7).
func SortSet(s []uint32) ([]uint32, int) {
	if len(s) < 2 {
		return s, 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w], len(s) - w
}

// UnionSorted merges two ascending duplicate-free slices into a new
// ascending duplicate-free slice, returning it and the number of
// elements of b that were already present in a (the duplicates a
// union-fold hop eliminates).
func UnionSorted(a, b []uint32) (out []uint32, dups int) {
	out = make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
			dups++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, dups
}

// UnionInto unions sorted duplicate-free src into dst (also sorted,
// duplicate-free), reusing dst's backing array when possible. Returns
// the union and the duplicate count.
func UnionInto(dst, src []uint32) ([]uint32, int) {
	if len(src) == 0 {
		return dst, 0
	}
	if len(dst) == 0 {
		return append(dst, src...), 0
	}
	// Fast path: disjoint ranges.
	if dst[len(dst)-1] < src[0] {
		return append(dst, src...), 0
	}
	out, dups := UnionSorted(dst, src)
	return out, dups
}

// IsSortedSet reports whether s is strictly ascending.
func IsSortedSet(s []uint32) bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}
