// Package localindex provides the local-indexing machinery of §2.4.2 of
// the paper: compact open-addressing hash maps from global vertex ids to
// local indices, dense bitsets over local indices, and sorted-set
// utilities used by the union-fold collective. The paper notes that the
// BFS spends most of its time in exactly these hash probes, so the map
// is written for probe speed: power-of-two capacity, linear probing,
// no per-entry allocation.
package localindex

import "math/bits"

// Map is an open-addressing hash map from uint32 keys to uint32 values
// with linear probing. The zero value is not usable; call NewMap. A key
// may be inserted at most once (Put of an existing key overwrites).
//
// The sentinel empty slot is encoded in a separate occupancy bitmap so
// that all 2^32 keys, including 0, are valid.
type Map struct {
	keys   []uint32
	vals   []uint32
	used   []uint64 // occupancy bitmap, 1 bit per slot
	mask   uint32
	n      int
	probes uint64 // cumulative probe count, for the cost model
}

// NewMap returns a map pre-sized for n entries.
func NewMap(n int) *Map {
	cap := nextPow2(n*2 + 8)
	return &Map{
		keys: make([]uint32, cap),
		vals: make([]uint32, cap),
		used: make([]uint64, (cap+63)/64),
		mask: uint32(cap - 1),
	}
}

func nextPow2(n int) int {
	if n < 8 {
		return 8
	}
	return 1 << bits.Len(uint(n-1))
}

// hash32 is Fibonacci hashing of the key; cheap and well-distributed
// for the contiguous-block vertex ids the partitioners produce.
func hash32(k uint32) uint32 {
	return k * 2654435769
}

func (m *Map) isUsed(i uint32) bool { return m.used[i>>6]&(1<<(i&63)) != 0 }
func (m *Map) setUsed(i uint32)     { m.used[i>>6] |= 1 << (i & 63) }

// Len returns the number of entries.
func (m *Map) Len() int { return m.n }

// Probes returns the cumulative number of slot inspections performed by
// Put and Get since creation. The BFS charges CostModel.HashCost per
// probe.
func (m *Map) Probes() uint64 { return m.probes }

// Put inserts or overwrites key -> val.
func (m *Map) Put(key, val uint32) {
	if m.n*2 >= len(m.keys) {
		m.grow()
	}
	i := hash32(key) & m.mask
	for {
		m.probes++
		if !m.isUsed(i) {
			m.keys[i] = key
			m.vals[i] = val
			m.setUsed(i)
			m.n++
			return
		}
		if m.keys[i] == key {
			m.vals[i] = val
			return
		}
		i = (i + 1) & m.mask
	}
}

// Get returns the value for key and whether it is present.
func (m *Map) Get(key uint32) (uint32, bool) {
	i := hash32(key) & m.mask
	for {
		m.probes++
		if !m.isUsed(i) {
			return 0, false
		}
		if m.keys[i] == key {
			return m.vals[i], true
		}
		i = (i + 1) & m.mask
	}
}

// GetCounted is Get without the shared probe counter: it returns the
// number of slot inspections this lookup performed so that parallel
// scans can tally probes per worker chunk and credit the map once via
// AddProbes after the merge. Get itself mutates m.probes and is NOT
// safe for concurrent use.
func (m *Map) GetCounted(key uint32) (val uint32, ok bool, probes int) {
	i := hash32(key) & m.mask
	for {
		probes++
		if !m.isUsed(i) {
			return 0, false, probes
		}
		if m.keys[i] == key {
			return m.vals[i], true, probes
		}
		i = (i + 1) & m.mask
	}
}

// AddProbes credits n slot inspections to the cumulative probe counter,
// pairing with GetCounted. Call it from one goroutine only, after the
// parallel section has joined.
func (m *Map) AddProbes(n uint64) { m.probes += n }

// GetOrPut returns the existing value for key, or inserts next() and
// returns it. Used to build compact indices while streaming edges.
func (m *Map) GetOrPut(key uint32, next func() uint32) uint32 {
	if v, ok := m.Get(key); ok {
		return v
	}
	v := next()
	m.Put(key, v)
	return v
}

func (m *Map) grow() {
	oldKeys, oldVals, oldUsed := m.keys, m.vals, m.used
	cap := len(oldKeys) * 2
	m.keys = make([]uint32, cap)
	m.vals = make([]uint32, cap)
	m.used = make([]uint64, (cap+63)/64)
	m.mask = uint32(cap - 1)
	m.n = 0
	for i, k := range oldKeys {
		if oldUsed[i>>6]&(1<<(uint(i)&63)) != 0 {
			m.Put(k, oldVals[i])
		}
	}
}

// Range calls fn for every entry, in unspecified order. Returning false
// stops the iteration.
func (m *Map) Range(fn func(key, val uint32) bool) {
	for i := range m.keys {
		if m.isUsed(uint32(i)) {
			if !fn(m.keys[i], m.vals[i]) {
				return
			}
		}
	}
}
