package localindex

import (
	"math/bits"
	"sync/atomic"
)

// Bitset is a fixed-size dense bitset over local indices. It backs the
// "sent neighbors" optimization of §2.4.3 and the visited marks of the
// serial reference BFS.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a bitset able to hold indices [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i uint32) { b.words[i>>6] |= 1 << (i & 63) }

// Clear clears bit i.
func (b *Bitset) Clear(i uint32) { b.words[i>>6] &^= 1 << (i & 63) }

// Test reports whether bit i is set.
func (b *Bitset) Test(i uint32) bool { return b.words[i>>6]&(1<<(i&63)) != 0 }

// TestAndSet sets bit i and reports whether it was already set.
func (b *Bitset) TestAndSet(i uint32) bool {
	w, m := i>>6, uint64(1)<<(i&63)
	old := b.words[w]&m != 0
	b.words[w] |= m
	return old
}

// TestAndSetAtomic is TestAndSet via compare-and-swap, safe for
// concurrent claimants: exactly one caller per bit observes false. The
// sent-neighbor cache uses it under the worker pool — which worker wins
// a vertex is scheduler-dependent, but the set of claimed bits (and
// everything downstream of the sorted merge) is not.
func (b *Bitset) TestAndSetAtomic(i uint32) bool {
	p := &b.words[i>>6]
	m := uint64(1) << (i & 63)
	for {
		old := atomic.LoadUint64(p)
		if old&m != 0 {
			return true
		}
		if atomic.CompareAndSwapUint64(p, old, old|m) {
			return false
		}
	}
}

// Words exposes the backing word array (64 bits per word, bit i of
// word j is index 64j+i) for word-at-a-time scans and unions; callers
// own any invariants they break by writing to it.
func (b *Bitset) Words() []uint64 { return b.words }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}
