package localindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMapBasic(t *testing.T) {
	m := NewMap(4)
	if _, ok := m.Get(42); ok {
		t.Fatal("empty map reported a hit")
	}
	m.Put(42, 7)
	if v, ok := m.Get(42); !ok || v != 7 {
		t.Fatalf("Get(42) = %d,%v want 7,true", v, ok)
	}
	m.Put(42, 8) // overwrite
	if v, _ := m.Get(42); v != 8 {
		t.Fatalf("overwrite failed, got %d", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d want 1", m.Len())
	}
}

func TestMapZeroKey(t *testing.T) {
	m := NewMap(1)
	m.Put(0, 99)
	if v, ok := m.Get(0); !ok || v != 99 {
		t.Fatalf("zero key: got %d,%v", v, ok)
	}
}

func TestMapGrowth(t *testing.T) {
	m := NewMap(0)
	const n = 10000
	for i := uint32(0); i < n; i++ {
		m.Put(i*3, i)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d want %d", m.Len(), n)
	}
	for i := uint32(0); i < n; i++ {
		if v, ok := m.Get(i * 3); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v want %d,true", i*3, v, ok, i)
		}
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("phantom key after growth")
	}
}

func TestMapGetOrPut(t *testing.T) {
	m := NewMap(8)
	next := uint32(0)
	gen := func() uint32 { next++; return next - 1 }
	a := m.GetOrPut(100, gen)
	b := m.GetOrPut(200, gen)
	c := m.GetOrPut(100, gen)
	if a != 0 || b != 1 || c != 0 {
		t.Fatalf("GetOrPut sequence = %d,%d,%d want 0,1,0", a, b, c)
	}
	if next != 2 {
		t.Fatalf("generator called %d times, want 2", next)
	}
}

func TestMapProbesMonotone(t *testing.T) {
	m := NewMap(8)
	before := m.Probes()
	m.Put(1, 1)
	m.Get(1)
	m.Get(2)
	if m.Probes() <= before {
		t.Fatal("probe counter did not advance")
	}
}

func TestMapRange(t *testing.T) {
	m := NewMap(8)
	want := map[uint32]uint32{5: 50, 6: 60, 7: 70}
	for k, v := range want {
		m.Put(k, v)
	}
	got := map[uint32]uint32{}
	m.Range(func(k, v uint32) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range got[%d]=%d want %d", k, got[k], v)
		}
	}
	count := 0
	m.Range(func(k, v uint32) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early-stop Range visited %d, want 1", count)
	}
}

// TestMapQuickAgainstBuiltin drives the map with random operation
// sequences and checks it behaves exactly like the built-in map.
func TestMapQuickAgainstBuiltin(t *testing.T) {
	f := func(ops []uint32, seed int64) bool {
		m := NewMap(2)
		ref := map[uint32]uint32{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			key := op % 97 // force collisions
			if rng.Intn(2) == 0 {
				m.Put(key, op)
				ref[key] = op
			} else {
				v, ok := m.Get(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := m.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []uint32{0, 63, 64, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d want 4", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 3 {
		t.Fatal("Clear failed")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestBitsetTestAndSet(t *testing.T) {
	b := NewBitset(10)
	if b.TestAndSet(3) {
		t.Fatal("TestAndSet on clear bit returned true")
	}
	if !b.TestAndSet(3) {
		t.Fatal("TestAndSet on set bit returned false")
	}
}

func TestSortSet(t *testing.T) {
	s, d := SortSet([]uint32{5, 1, 5, 3, 1, 1})
	if d != 3 {
		t.Fatalf("dups = %d want 3", d)
	}
	want := []uint32{1, 3, 5}
	if len(s) != len(want) {
		t.Fatalf("got %v want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("got %v want %v", s, want)
		}
	}
	if s, d := SortSet(nil); len(s) != 0 || d != 0 {
		t.Fatal("nil input mishandled")
	}
	if s, d := SortSet([]uint32{9}); len(s) != 1 || d != 0 {
		t.Fatal("singleton mishandled")
	}
}

func TestUnionSorted(t *testing.T) {
	a := []uint32{1, 3, 5}
	b := []uint32{2, 3, 6}
	out, dups := UnionSorted(a, b)
	want := []uint32{1, 2, 3, 5, 6}
	if dups != 1 || len(out) != len(want) {
		t.Fatalf("UnionSorted = %v dups=%d", out, dups)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("UnionSorted = %v want %v", out, want)
		}
	}
}

func TestUnionIntoFastPaths(t *testing.T) {
	if out, d := UnionInto(nil, []uint32{1, 2}); len(out) != 2 || d != 0 {
		t.Fatal("empty dst path")
	}
	if out, d := UnionInto([]uint32{1, 2}, nil); len(out) != 2 || d != 0 {
		t.Fatal("empty src path")
	}
	out, d := UnionInto([]uint32{1, 2}, []uint32{5, 6})
	if len(out) != 4 || d != 0 || !IsSortedSet(out) {
		t.Fatalf("disjoint path: %v dups=%d", out, d)
	}
}

// TestUnionQuick checks that union of sorted sets equals the set union
// computed through maps, with the duplicate count consistent.
func TestUnionQuick(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		for i := range xs {
			xs[i] %= 50
		}
		for i := range ys {
			ys[i] %= 50
		}
		a, _ := SortSet(append([]uint32(nil), xs...))
		b, _ := SortSet(append([]uint32(nil), ys...))
		out, dups := UnionSorted(a, b)
		if !IsSortedSet(out) {
			return false
		}
		ref := map[uint32]bool{}
		for _, v := range a {
			ref[v] = true
		}
		overlap := 0
		for _, v := range b {
			if ref[v] {
				overlap++
			}
			ref[v] = true
		}
		if dups != overlap || len(out) != len(ref) {
			return false
		}
		keys := make([]uint32, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for i := range keys {
			if out[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMapPutGet(b *testing.B) {
	m := NewMap(1 << 16)
	for i := uint32(0); i < 1<<16; i++ {
		m.Put(i*7, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(uint32(i*7) % (1 << 18))
	}
}
