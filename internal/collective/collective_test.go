package collective

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/localindex"
)

// runGroup runs body on a world of size p where the whole world is one
// group, and returns per-rank results.
func runGroup(t *testing.T, p int, body func(c *comm.Comm, g comm.Group) any) []any {
	t.Helper()
	w, err := comm.NewWorld(comm.Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	results := make([]any, p)
	var mu sync.Mutex
	_, err = w.Run(func(c *comm.Comm) {
		ranks := make([]int, p)
		for i := range ranks {
			ranks[i] = i
		}
		g := comm.Group{Ranks: ranks, Me: c.Rank()}
		r := body(c, g)
		mu.Lock()
		results[c.Rank()] = r
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// randSets builds deterministic per-rank, per-destination sorted sets.
func randSets(p, maxLen int, seed int64) [][][]uint32 {
	rng := rand.New(rand.NewSource(seed))
	all := make([][][]uint32, p)
	for r := 0; r < p; r++ {
		all[r] = make([][]uint32, p)
		for d := 0; d < p; d++ {
			n := rng.Intn(maxLen + 1)
			s := make([]uint32, n)
			for i := range s {
				s[i] = uint32(rng.Intn(200))
			}
			all[r][d], _ = localindex.SortSet(s)
		}
	}
	return all
}

// refUnionTo computes the reference fold result: union of all[r][dst]
// over r.
func refUnionTo(all [][][]uint32, dst int) []uint32 {
	set := map[uint32]bool{}
	for r := range all {
		for _, v := range all[r][dst] {
			set[v] = true
		}
	}
	out := make([]uint32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestFactorGrid(t *testing.T) {
	cases := []struct{ g, a, b int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {6, 3, 2}, {12, 4, 3},
		{16, 4, 4}, {7, 7, 1}, {36, 6, 6}, {100, 10, 10},
	}
	for _, c := range cases {
		a, b := FactorGrid(c.g)
		if a != c.a || b != c.b {
			t.Errorf("FactorGrid(%d) = %d,%d want %d,%d", c.g, a, b, c.a, c.b)
		}
		if a*b != c.g || b > a {
			t.Errorf("FactorGrid(%d) invariants violated: %dx%d", c.g, a, b)
		}
	}
}

func TestBundleRoundTrip(t *testing.T) {
	sets := [][]uint32{{1, 2, 3}, {}, {9}, {4, 5}}
	got := decodeBundle(encodeBundle(sets), len(sets))
	if !reflect.DeepEqual(got, [][]uint32{{1, 2, 3}, nil, {9}, {4, 5}}) {
		// decode produces zero-length (nil-capacity) slices for empties
		for i := range sets {
			if len(got[i]) != len(sets[i]) {
				t.Fatalf("bundle mismatch at %d: %v vs %v", i, got[i], sets[i])
			}
			for j := range sets[i] {
				if got[i][j] != sets[i][j] {
					t.Fatalf("bundle mismatch at %d: %v vs %v", i, got[i], sets[i])
				}
			}
		}
	}
}

func TestAllGatherAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8} {
		for _, chunk := range []int{0, 3} {
			t.Run(fmt.Sprintf("p=%d chunk=%d", p, chunk), func(t *testing.T) {
				results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
					mine := []uint32{uint32(c.Rank()) * 10, uint32(c.Rank())*10 + 1}
					out, _ := AllGather(c, g, Opts{Tag: 1, Chunk: chunk}, mine)
					return out
				})
				for r, res := range results {
					out := res.([][]uint32)
					for i := 0; i < p; i++ {
						want := []uint32{uint32(i) * 10, uint32(i)*10 + 1}
						if !reflect.DeepEqual(out[i], want) {
							t.Fatalf("rank %d: out[%d] = %v want %v", r, i, out[i], want)
						}
					}
				}
			})
		}
	}
}

func TestAllToAllAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		for _, chunk := range []int{0, 2} {
			all := randSets(p, 6, int64(p*100+chunk))
			results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
				out, _ := AllToAll(c, g, Opts{Tag: 1, Chunk: chunk}, all[c.Rank()])
				return out
			})
			for dst, res := range results {
				out := res.([][]uint32)
				for src := 0; src < p; src++ {
					want := all[src][dst]
					if len(out[src]) != len(want) {
						t.Fatalf("p=%d: dst %d from src %d: %v want %v", p, dst, src, out[src], want)
					}
					for i := range want {
						if out[src][i] != want[i] {
							t.Fatalf("p=%d: dst %d from src %d: %v want %v", p, dst, src, out[src], want)
						}
					}
				}
			}
		}
	}
}

func TestReduceScatterUnionMatchesReference(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		all := randSets(p, 10, int64(p))
		results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
			out, _ := ReduceScatterUnion(c, g, Opts{Tag: 1}, all[c.Rank()])
			return out
		})
		for dst, res := range results {
			got := res.([]uint32)
			want := refUnionTo(all, dst)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("p=%d dst=%d: got %v want %v", p, dst, got, want)
			}
		}
	}
}

func TestTwoPhaseFoldMatchesReference(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 7, 9, 12, 16} {
		for _, chunk := range []int{0, 4} {
			all := randSets(p, 8, int64(p*31+chunk))
			results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
				out, st := TwoPhaseFold(c, g, Opts{Tag: 1, Chunk: chunk}, all[c.Rank()])
				return struct {
					set []uint32
					st  Stats
				}{out, st}
			})
			for dst, res := range results {
				r := res.(struct {
					set []uint32
					st  Stats
				})
				want := refUnionTo(all, dst)
				if !reflect.DeepEqual(r.set, want) {
					t.Fatalf("p=%d chunk=%d dst=%d: got %v want %v", p, chunk, dst, r.set, want)
				}
				if !localindex.IsSortedSet(r.set) {
					t.Fatalf("p=%d dst=%d: result not a sorted set", p, dst)
				}
			}
		}
	}
}

func TestTwoPhaseFoldEliminatesDuplicates(t *testing.T) {
	// All ranks send the same set to every destination: maximal
	// redundancy. The union-fold must count the eliminated duplicates.
	p := 9
	shared := []uint32{1, 2, 3, 4, 5}
	results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
		send := make([][]uint32, p)
		for i := range send {
			send[i] = shared
		}
		out, st := TwoPhaseFold(c, g, Opts{Tag: 1}, send)
		return struct {
			set []uint32
			st  Stats
		}{out, st}
	})
	totalDups := 0
	for dst, res := range results {
		r := res.(struct {
			set []uint32
			st  Stats
		})
		if !reflect.DeepEqual(r.set, shared) {
			t.Fatalf("dst %d: got %v want %v", dst, r.set, shared)
		}
		totalDups += r.st.Dups
	}
	// Each destination's union collapses p copies to 1: (p-1)*len
	// duplicates per destination must be eliminated somewhere.
	want := p * (p - 1) * len(shared)
	if totalDups != want {
		t.Fatalf("total dups = %d, want %d", totalDups, want)
	}
}

func TestTwoPhaseFoldInFlightReductionShrinksTraffic(t *testing.T) {
	// With full redundancy the union-fold's in-flight reduction must
	// move far fewer words than the same two-phase schedule without
	// union (the comparison behind Fig. 7).
	p := 16
	shared := make([]uint32, 64)
	for i := range shared {
		shared[i] = uint32(i)
	}
	volume := func(union bool) int {
		w, err := comm.NewWorld(comm.Config{P: p})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		var mu sync.Mutex
		_, err = w.Run(func(c *comm.Comm) {
			ranks := make([]int, p)
			for i := range ranks {
				ranks[i] = i
			}
			g := comm.Group{Ranks: ranks, Me: c.Rank()}
			send := make([][]uint32, p)
			for i := range send {
				send[i] = shared
			}
			out, st := TwoPhaseFold(c, g, Opts{Tag: 1, NoUnion: !union}, send)
			if len(out) != len(shared) {
				panic("fold result wrong size")
			}
			mu.Lock()
			total += st.RecvWords
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	noUnion := volume(false)
	withUnion := volume(true)
	if withUnion*2 >= noUnion {
		t.Fatalf("union-fold volume %d not well below no-union %d", withUnion, noUnion)
	}
}

func TestTwoPhaseFoldNoUnionSameResult(t *testing.T) {
	for _, p := range []int{4, 6, 9} {
		all := randSets(p, 8, int64(p*7))
		results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
			out, _ := TwoPhaseFold(c, g, Opts{Tag: 1, NoUnion: true}, all[c.Rank()])
			return out
		})
		for dst, res := range results {
			got := res.([]uint32)
			want := refUnionTo(all, dst)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("p=%d dst=%d: no-union fold got %v want %v", p, dst, got, want)
			}
		}
	}
}

func TestTwoPhaseExpandMatchesAllGather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 9, 12} {
		for _, chunk := range []int{0, 3} {
			results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
				mine := []uint32{uint32(c.Rank()), uint32(c.Rank()) + 100}
				out, _ := TwoPhaseExpand(c, g, Opts{Tag: 1, Chunk: chunk}, mine)
				return out
			})
			for r, res := range results {
				out := res.([][]uint32)
				for i := 0; i < p; i++ {
					want := []uint32{uint32(i), uint32(i) + 100}
					if len(out[i]) != 2 || out[i][0] != want[0] || out[i][1] != want[1] {
						t.Fatalf("p=%d chunk=%d rank %d: out[%d] = %v want %v", p, chunk, r, i, out[i], want)
					}
				}
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		for root := 0; root < p; root++ {
			payload := []uint32{42, uint32(root)}
			results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
				var data []uint32
				if c.Rank() == root {
					data = payload
				}
				out, _ := Broadcast(c, g, Opts{Tag: 1}, root, data)
				return out
			})
			for r, res := range results {
				got := res.([]uint32)
				if len(got) != 2 || got[0] != 42 || got[1] != uint32(root) {
					t.Fatalf("p=%d root=%d rank=%d: got %v", p, root, r, got)
				}
			}
		}
	}
}

func TestAllToAllEmptyPayloads(t *testing.T) {
	p := 4
	results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
		send := make([][]uint32, p)
		out, st := AllToAll(c, g, Opts{Tag: 1}, send)
		if st.RecvWords != 0 {
			panic("nonzero recv words for empty exchange")
		}
		return out
	})
	for _, res := range results {
		out := res.([][]uint32)
		for _, s := range out {
			if len(s) != 0 {
				t.Fatal("expected empty results")
			}
		}
	}
}

func TestChunkedRoundTrip(t *testing.T) {
	w, err := comm.NewWorld(comm.Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 4, 5, 17} {
		data := make([]uint32, n)
		for i := range data {
			data[i] = uint32(i * 3)
		}
		_, err := w.Run(func(c *comm.Comm) {
			if c.Rank() == 0 {
				c.SendChunked(1, 9, data, 5)
			} else {
				got := c.RecvChunked(0, 9, 5)
				if len(got) != n {
					panic(fmt.Sprintf("chunked round trip: got %d words want %d", len(got), n))
				}
				for i := range got {
					if got[i] != uint32(i*3) {
						panic("chunked round trip: corrupted data")
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
