package collective

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/frontier"
)

func TestReduceScatterOr(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		rng := rand.New(rand.NewSource(int64(p)))
		words := 4
		// send[r][d] is rank r's bitmap destined to d.
		send := make([][][]uint32, p)
		for r := 0; r < p; r++ {
			send[r] = make([][]uint32, p)
			for d := 0; d < p; d++ {
				w := make([]uint32, words)
				for i := range w {
					w[i] = rng.Uint32()
				}
				send[r][d] = w
			}
		}
		want := make([][]uint32, p)
		for d := 0; d < p; d++ {
			want[d] = make([]uint32, words)
			for r := 0; r < p; r++ {
				for i, w := range send[r][d] {
					want[d][i] |= w
				}
			}
		}
		results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
			out, _ := ReduceScatterOr(c, g, Opts{Tag: 1}, send[g.Me])
			return out
		})
		for d := 0; d < p; d++ {
			if !reflect.DeepEqual(results[d].([]uint32), want[d]) {
				t.Fatalf("p=%d: rank %d OR mismatch", p, d)
			}
		}
	}
}

func TestReduceScatterOrUnevenLengths(t *testing.T) {
	// A short (even empty) straggler must still OR correctly into a
	// result sized to the longest payload.
	p := 3
	send := [][][]uint32{
		{{1}, {0, 0, 4}, nil},
		{nil, {2}, {8}},
		{{0, 16}, nil, nil},
	}
	want := [][]uint32{{1, 16}, {2, 0, 4}, {8}}
	results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
		out, _ := ReduceScatterOr(c, g, Opts{Tag: 1}, send[g.Me])
		return out
	})
	for d := 0; d < p; d++ {
		got := results[d].([]uint32)
		if len(got) == 0 && len(want[d]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want[d]) {
			t.Fatalf("rank %d: got %v want %v", d, got, want[d])
		}
	}
}

// ownerCodec encodes sets destined to member m against m's universe
// [m*span, (m+1)*span), the shape the BFS fold uses.
func ownerCodec(span int, mode frontier.WireMode) *Codec {
	return &Codec{
		Enc: func(m int, set []uint32) []uint32 {
			return frontier.EncodeSet(set, uint32(m*span), span, mode)
		},
		Dec: func(m int, buf []uint32) []uint32 { return frontier.Decode(buf) },
	}
}

// denseOwnerSets builds per-rank per-destination sets covering most of
// each destination's universe, the regime where bitmaps beat lists.
func denseOwnerSets(p, span int, seed int64) [][][]uint32 {
	rng := rand.New(rand.NewSource(seed))
	all := make([][][]uint32, p)
	for r := 0; r < p; r++ {
		all[r] = make([][]uint32, p)
		for d := 0; d < p; d++ {
			var s []uint32
			for v := 0; v < span; v++ {
				if rng.Intn(4) > 0 { // ~75% occupancy
					s = append(s, uint32(d*span+v))
				}
			}
			all[r][d] = s
		}
	}
	return all
}

func TestUnionFoldsWithCodecMatchPlain(t *testing.T) {
	const span = 128
	folds := map[string]func(c *comm.Comm, g comm.Group, o Opts, send [][]uint32) ([]uint32, Stats){
		"direct":   ReduceScatterUnion,
		"twophase": TwoPhaseFold,
		"bruck":    ReduceScatterUnionBruck,
	}
	for name, fold := range folds {
		for _, mode := range []frontier.WireMode{frontier.WireAuto, frontier.WireHybrid} {
			for _, p := range []int{1, 2, 4, 6} {
				all := denseOwnerSets(p, span, int64(p))
				type res struct {
					plain, coded []uint32
					plainW, codW int
				}
				results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
					plain, pst := fold(c, g, Opts{Tag: 1}, all[g.Me])
					coded, cst := fold(c, g, Opts{Tag: 1 << 16, Codec: ownerCodec(span, mode)}, all[g.Me])
					return res{plain, coded, pst.RecvWords, cst.RecvWords}
				})
				for d := 0; d < p; d++ {
					r := results[d].(res)
					if !reflect.DeepEqual(r.plain, r.coded) {
						t.Fatalf("%s/%v p=%d rank %d: codec changed the fold result", name, mode, p, d)
					}
					if want := refUnionTo(all, d); !reflect.DeepEqual(r.coded, want) {
						t.Fatalf("%s/%v p=%d rank %d: fold result wrong", name, mode, p, d)
					}
					if p > 1 && r.codW > r.plainW {
						t.Errorf("%s/%v p=%d rank %d: dense payloads cost more words with codec (%d > %d)",
							name, mode, p, d, r.codW, r.plainW)
					}
				}
			}
		}
	}
}

// TestBruckCodecInsideBundles: AllToAllBruck with a codec must deliver
// the same payloads as the plain exchange while moving fewer bundle
// words (blocks are container-encoded at their first hop and stay
// encoded across later hops).
func TestBruckCodecInsideBundles(t *testing.T) {
	const span = 128
	for _, p := range []int{2, 4, 5, 8} {
		all := denseOwnerSets(p, span, int64(10+p))
		type res struct {
			plain, coded [][]uint32
			plainW, codW int
		}
		results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
			plain, pst := AllToAllBruck(c, g, Opts{Tag: 1}, all[g.Me])
			coded, cst := AllToAllBruck(c, g, Opts{Tag: 1 << 16, Codec: ownerCodec(span, frontier.WireHybrid)}, all[g.Me])
			return res{plain, coded, pst.RecvWords, cst.RecvWords}
		})
		for d := 0; d < p; d++ {
			r := results[d].(res)
			for src := 0; src < p; src++ {
				if !reflect.DeepEqual(r.plain[src], r.coded[src]) {
					t.Fatalf("p=%d rank %d: codec changed the payload from %d", p, d, src)
				}
			}
			if r.codW >= r.plainW {
				t.Errorf("p=%d rank %d: bundled dense payloads did not compress (%d >= %d words)",
					p, d, r.codW, r.plainW)
			}
		}
	}
}

// bitsCodec encodes ReduceScatterOr claim bitmaps with the hybrid
// container codec; every destination's universe is span bits.
func bitsCodec(span int) *Codec {
	return &Codec{
		Enc: func(m int, w []uint32) []uint32 {
			return frontier.EncodeBits(w, span, frontier.WireHybrid, nil)
		},
		Dec: func(m int, buf []uint32) []uint32 {
			return frontier.DecodeBits(buf, span)
		},
	}
}

// TestReduceScatterOrWithCodec: the OR reduce-scatter must produce
// identical bitmaps under the hybrid bits codec, and sparse claim
// bitmaps must compress.
func TestReduceScatterOrWithCodec(t *testing.T) {
	const span = 4096 // bits per destination bitmap
	for _, p := range []int{2, 4, 5} {
		rng := rand.New(rand.NewSource(int64(p)))
		send := make([][][]uint32, p)
		for r := 0; r < p; r++ {
			send[r] = make([][]uint32, p)
			for d := 0; d < p; d++ {
				w := frontier.NewBits(span)
				for i := 0; i < 40; i++ { // ~1% occupancy: the claim regime
					frontier.SetBit(w, uint32(rng.Intn(span)))
				}
				send[r][d] = w
			}
		}
		type res struct {
			plain, coded []uint32
			plainW, codW int
		}
		results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
			plain, pst := ReduceScatterOr(c, g, Opts{Tag: 1}, send[g.Me])
			coded, cst := ReduceScatterOr(c, g, Opts{Tag: 1 << 16, Codec: bitsCodec(span)}, send[g.Me])
			return res{plain, coded, pst.RecvWords, cst.RecvWords}
		})
		for d := 0; d < p; d++ {
			r := results[d].(res)
			if !reflect.DeepEqual(r.plain, r.coded) {
				t.Fatalf("p=%d rank %d: bits codec changed the OR result", p, d)
			}
			if r.codW >= r.plainW {
				t.Errorf("p=%d rank %d: sparse claims did not compress (%d >= %d words)", p, d, r.codW, r.plainW)
			}
		}
	}
}

func TestTwoPhaseFoldCodecIgnoredUnderNoUnion(t *testing.T) {
	p := 4
	all := randSets(p, 40, 9)
	results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
		out, _ := TwoPhaseFold(c, g, Opts{Tag: 1, NoUnion: true, Codec: ownerCodec(64, frontier.WireAuto)}, all[g.Me])
		return out
	})
	for d := 0; d < p; d++ {
		want := refUnionTo(all, d)
		got := results[d].([]uint32)
		if len(got) != len(want) {
			t.Fatalf("rank %d: nounion+codec result wrong", d)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d: nounion+codec result wrong at %d", d, i)
			}
		}
	}
}

func TestCodecChunkingInteraction(t *testing.T) {
	// Encoded payloads must survive the fixed-length buffer discipline.
	const span = 128
	p := 4
	all := denseOwnerSets(p, span, 7)
	results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
		out, _ := TwoPhaseFold(c, g, Opts{Tag: 1, Chunk: 16, Codec: ownerCodec(span, frontier.WireDense)}, all[g.Me])
		return out
	})
	for d := 0; d < p; d++ {
		if want := refUnionTo(all, d); !reflect.DeepEqual(results[d].([]uint32), want) {
			t.Fatalf("rank %d: chunked codec fold wrong", d)
		}
	}
}
