package collective

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/comm"
)

func TestAllToAllBruckMatchesDirect(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16} {
		for _, chunk := range []int{0, 3} {
			all := randSets(p, 6, int64(p*13+chunk))
			results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
				out, _ := AllToAllBruck(c, g, Opts{Tag: 1, Chunk: chunk}, all[c.Rank()])
				return out
			})
			for dst, res := range results {
				out := res.([][]uint32)
				for src := 0; src < p; src++ {
					want := all[src][dst]
					if len(out[src]) != len(want) {
						t.Fatalf("p=%d chunk=%d: dst %d from src %d: %v want %v",
							p, chunk, dst, src, out[src], want)
					}
					for i := range want {
						if out[src][i] != want[i] {
							t.Fatalf("p=%d chunk=%d: dst %d from src %d: %v want %v",
								p, chunk, dst, src, out[src], want)
						}
					}
				}
			}
		}
	}
}

func TestReduceScatterUnionBruckMatchesReference(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6, 9} {
		all := randSets(p, 8, int64(p*17))
		results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
			out, _ := ReduceScatterUnionBruck(c, g, Opts{Tag: 1}, all[c.Rank()])
			return out
		})
		for dst, res := range results {
			got := res.([]uint32)
			want := refUnionTo(all, dst)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("p=%d dst=%d: got %v want %v", p, dst, got, want)
			}
		}
	}
}

// TestBruckFewerMessages verifies the latency advantage: Bruck sends
// O(log G) messages per rank versus G-1 for the direct exchange.
func TestBruckFewerMessages(t *testing.T) {
	p := 16
	all := randSets(p, 4, 5)
	count := func(bruck bool) uint64 {
		w, err := comm.NewWorld(comm.Config{P: p})
		if err != nil {
			t.Fatal(err)
		}
		var total uint64
		var mu sync.Mutex
		_, err = w.Run(func(c *comm.Comm) {
			ranks := make([]int, p)
			for i := range ranks {
				ranks[i] = i
			}
			g := comm.Group{Ranks: ranks, Me: c.Rank()}
			if bruck {
				AllToAllBruck(c, g, Opts{Tag: 1}, all[c.Rank()])
			} else {
				AllToAll(c, g, Opts{Tag: 1}, all[c.Rank()])
			}
			mu.Lock()
			total += c.MsgsSent()
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	direct := count(false)
	bruck := count(true)
	if bruck >= direct {
		t.Fatalf("Bruck messages %d not below direct %d", bruck, direct)
	}
	// log2(16) = 4 rounds, one message per round per rank.
	if want := uint64(p * 4); bruck != want {
		t.Fatalf("Bruck sent %d messages, want %d", bruck, want)
	}
}

func TestBruckEmptyAndSingleton(t *testing.T) {
	p := 4
	results := runGroup(t, p, func(c *comm.Comm, g comm.Group) any {
		send := make([][]uint32, p)
		send[(c.Rank()+1)%p] = []uint32{uint32(c.Rank())}
		out, _ := AllToAllBruck(c, g, Opts{Tag: 1}, send)
		return out
	})
	for dst, res := range results {
		out := res.([][]uint32)
		src := (dst - 1 + p) % p
		for i := 0; i < p; i++ {
			if i == src {
				if len(out[i]) != 1 || out[i][0] != uint32(src) {
					t.Fatalf("dst %d: out[%d] = %v", dst, i, out[i])
				}
			} else if len(out[i]) != 0 {
				t.Fatalf("dst %d: unexpected payload from %d: %v", dst, i, out[i])
			}
		}
	}
}

func BenchmarkFoldAlgorithms(b *testing.B) {
	p := 16
	all := randSets(p, 64, 3)
	for _, alg := range []struct {
		name string
		run  func(c *comm.Comm, g comm.Group, send [][]uint32)
	}{
		{"direct", func(c *comm.Comm, g comm.Group, send [][]uint32) {
			ReduceScatterUnion(c, g, Opts{Tag: 1}, send)
		}},
		{"twophase", func(c *comm.Comm, g comm.Group, send [][]uint32) {
			TwoPhaseFold(c, g, Opts{Tag: 1}, send)
		}},
		{"bruck", func(c *comm.Comm, g comm.Group, send [][]uint32) {
			ReduceScatterUnionBruck(c, g, Opts{Tag: 1}, send)
		}},
	} {
		b.Run(alg.name, func(b *testing.B) {
			w, err := comm.NewWorld(comm.Config{P: p})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				_, err := w.Run(func(c *comm.Comm) {
					ranks := make([]int, p)
					for r := range ranks {
						ranks[r] = r
					}
					g := comm.Group{Ranks: ranks, Me: c.Rank()}
					alg.run(c, g, all[c.Rank()])
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestBruckValidatesInput(t *testing.T) {
	w, err := comm.NewWorld(comm.Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.Run(func(c *comm.Comm) {
		g := comm.Group{Ranks: []int{0, 1}, Me: c.Rank()}
		AllToAllBruck(c, g, Opts{Tag: 1}, make([][]uint32, 1)) // wrong size
	})
	if err == nil {
		t.Fatal("expected panic error for wrong buffer count")
	}
	if !strings.Contains(err.Error(), "needs 2 send buffers") {
		t.Fatalf("unexpected error: %v", err)
	}
}
