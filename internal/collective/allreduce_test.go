package collective

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/comm"
)

func runAllReduce(t *testing.T, vals []uint64, op AllReduceOp) []uint64 {
	t.Helper()
	p := len(vals)
	w, err := comm.NewWorld(comm.Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, p)
	var mu sync.Mutex
	_, err = w.Run(func(c *comm.Comm) {
		ranks := make([]int, p)
		for i := range ranks {
			ranks[i] = i
		}
		g := comm.Group{Ranks: ranks, Me: c.Rank()}
		r := AllReduceP2P(c, g, Opts{Tag: 1}, vals[c.Rank()], op)
		mu.Lock()
		out[c.Rank()] = r
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAllReduceP2PSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16} {
		vals := make([]uint64, p)
		var want uint64
		for i := range vals {
			vals[i] = uint64(i*i + 1)
			want += vals[i]
		}
		for rank, got := range runAllReduce(t, vals, OpSum) {
			if got != want {
				t.Fatalf("p=%d rank=%d: sum %d, want %d", p, rank, got, want)
			}
		}
	}
}

func TestAllReduceP2POps(t *testing.T) {
	vals := []uint64{9, 3, 12, 5, 7}
	for rank, got := range runAllReduce(t, vals, OpMax) {
		if got != 12 {
			t.Fatalf("rank %d: max %d", rank, got)
		}
	}
	for rank, got := range runAllReduce(t, vals, OpMin) {
		if got != 3 {
			t.Fatalf("rank %d: min %d", rank, got)
		}
	}
	for rank, got := range runAllReduce(t, []uint64{0, 2, 0}, OpOr) {
		if got != 2 {
			t.Fatalf("rank %d: or %d", rank, got)
		}
	}
}

func TestAllReduceP2PLargeValues(t *testing.T) {
	// 64-bit round trip through the two-word encoding.
	big := uint64(0xDEADBEEF12345678)
	vals := []uint64{big, 1, 2}
	for rank, got := range runAllReduce(t, vals, OpMax) {
		if got != big {
			t.Fatalf("rank %d: got %x", rank, got)
		}
	}
}

func TestAllReduceP2PQuickMatchesSerial(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 9 {
			return true
		}
		vals := make([]uint64, len(raw))
		var want uint64
		for i, v := range raw {
			vals[i] = uint64(v)
			want += uint64(v)
		}
		p := len(vals)
		w, err := comm.NewWorld(comm.Config{P: p})
		if err != nil {
			return false
		}
		ok := true
		var mu sync.Mutex
		_, err = w.Run(func(c *comm.Comm) {
			ranks := make([]int, p)
			for i := range ranks {
				ranks[i] = i
			}
			g := comm.Group{Ranks: ranks, Me: c.Rank()}
			if AllReduceP2P(c, g, Opts{Tag: 1}, vals[c.Rank()], OpSum) != want {
				mu.Lock()
				ok = false
				mu.Unlock()
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
