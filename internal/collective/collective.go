// Package collective implements every collective operation the paper
// uses or compares against, built exclusively from point-to-point
// comm.Send/Recv — exactly as §3.2 does on the BlueGene/L torus:
//
//   - AllGather (ring): the traditional dense-matrix expand.
//   - AllToAll (pairwise direct): personalized exchange, the
//     traditional fold and the "targeted expand" of §2.2.
//   - ReduceScatterUnion (direct): fold as a reduce-scatter whose
//     reduction operator is set union.
//   - TwoPhaseFold (Figure 2): the paper's optimized union-fold —
//     phase 1 is a grouped ring reduce-scatter along grid rows with
//     in-flight duplicate elimination, phase 2 is point-to-point
//     distribution down grid columns.
//   - TwoPhaseExpand (Figure 3): the paper's optimized expand —
//     phase 1 exchanges within grid columns, phase 2 circulates along
//     grid-row rings.
//   - Broadcast (ring): used for one-to-all announcements; the real
//     machine had a tree network for this.
//
// All set-typed payloads are ascending, duplicate-free []uint32. Every
// operation returns Stats with the words this rank received and the
// duplicates eliminated by union reductions, feeding the paper's
// message-length and redundancy-ratio measurements (Table 1, Fig. 7).
package collective

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/localindex"
	"repro/internal/trace"
)

// Opts carries per-operation knobs.
type Opts struct {
	// Tag namespaces this operation's messages. Successive collectives
	// on the same group must use distinct tags only for debuggability;
	// FIFO ordering already keeps them apart.
	Tag int
	// Chunk > 0 splits every physical message into chunks of at most
	// Chunk words (the fixed-length buffers of §3.1).
	Chunk int
	// NoUnion disables the in-flight set-union reduction of
	// TwoPhaseFold: messages accumulate duplicates in transit and are
	// deduplicated only on final receipt. The result is identical; the
	// traffic is not. This is the baseline against which the paper's
	// union-fold saves up to 80% of received vertices (Fig. 7).
	NoUnion bool
	// Async selects the pipelined schedule where an operation supports
	// one: every send posts before any wait and independent transfers
	// progress concurrently (see async.go). Payloads, tags, and received
	// words are identical to the synchronous schedule; only the simulated
	// clock — and the OverlapTime ledger — differ. Operations whose hops
	// are serially dependent (the Bruck rounds, the two-phase fold's
	// phase-1 ring) ignore the knob for those hops.
	Async bool
	// BundleMerge, when non-nil, lets TwoPhaseExpand recompress each
	// circulating phase-2 bundle as one merged payload; the hop ships
	// whichever of the plain framed bundle and the merged form is fewer
	// words, so configuring it can only reduce traffic.
	BundleMerge *BundleCodec
	// Codec, when non-nil, re-encodes payloads at wire boundaries
	// (typically frontier.EncodeSet picking vertex lists, bitmaps, or
	// hybrid chunk containers, whichever is fewer words). Honored by
	// the union folds — ReduceScatterUnion, TwoPhaseFold (ignored under
	// NoUnion, whose merged multisets have no set encoding), and the
	// Bruck exchange (AllToAllBruck container-encodes bundled blocks at
	// their first hop and decodes them only at the final destination) —
	// and by ReduceScatterOr, whose payloads are wire bitmaps rather
	// than sets. The pass-through exchanges (AllGather, AllToAll,
	// TwoPhaseExpand) move opaque payloads, so their callers encode and
	// decode at the edges instead.
	Codec *Codec
}

// Codec is a pluggable payload encoding applied where payloads cross
// the wire. Enc encodes the payload destined for group member m — an
// ascending duplicate-free set in the union folds, a wire bitmap in
// the OR reductions — and Dec inverts it; both take the destination
// member m because a payload's universe (and therefore its decoded
// width, for bitmap payloads) is the destination's owned range.
// Received-word statistics count encoded words, so a denser encoding
// shows up directly in the message-volume measurements.
type Codec struct {
	Enc func(m int, payload []uint32) []uint32
	Dec func(m int, buf []uint32) []uint32
}

// BundleCodec recompresses a circulating phase-2 expand bundle — the
// per-origin payloads one grid column contributed, which travel
// together for every remaining ring hop — into a single merged payload
// and back. origins are group member indices in bundle order; Split
// returns per-origin DECODED payloads (the callers of TwoPhaseExpand
// decode at the edges anyway, and a raw id list decodes as itself).
type BundleCodec struct {
	Merge func(origins []int, payloads [][]uint32) []uint32
	Split func(origins []int, merged []uint32) [][]uint32
}

// encodeSends re-encodes every payload that will cross the wire
// (send[g.Me] stays local and plain).
func encodeSends(g comm.Group, cdc *Codec, send [][]uint32) [][]uint32 {
	if cdc == nil {
		return send
	}
	out := make([][]uint32, len(send))
	for i, s := range send {
		if i == g.Me {
			out[i] = s
			continue
		}
		out[i] = cdc.Enc(i, s)
	}
	return out
}

// decodeParts inverts encodeSends on the receive side, in place. Every
// decoded part is destined to this rank, so g.Me names its universe.
func decodeParts(g comm.Group, cdc *Codec, parts [][]uint32) {
	if cdc == nil {
		return
	}
	for i := range parts {
		if i != g.Me {
			parts[i] = cdc.Dec(g.Me, parts[i])
		}
	}
}

// span opens a structural trace span for one collective operation on
// this rank's tracer (a no-op without a bound recorder). The returned
// func closes it, annotating the words this rank received.
func span(c *comm.Comm, name string, st *Stats) func() {
	tr := c.Tracer()
	if tr == nil {
		return func() {}
	}
	tr.Begin("collective", name)
	return func() { tr.End(trace.Arg{Key: "recv_words", Val: int64(st.RecvWords)}) }
}

// round wraps one exchange step in a structural span.
func round(c *comm.Comm, i int) func() {
	tr := c.Tracer()
	if tr == nil {
		return func() {}
	}
	tr.Begin("round", "round", trace.Arg{Key: "i", Val: int64(i)})
	return func() { tr.End() }
}

// Stats reports what one rank observed during a collective.
type Stats struct {
	RecvWords int // payload words received (vertices, in BFS terms)
	Dups      int // duplicate vertices eliminated by union reductions
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.RecvWords += other.RecvWords
	s.Dups += other.Dups
}

// AllGather gathers each group member's data; out[i] is member i's
// contribution. Implemented as a ring: G-1 steps, each member forwards
// the piece it received in the previous step. This is the traditional
// expand for dense problems — message volume grows with the group, the
// reason §2.2 prefers targeted exchange for sparse frontiers.
func AllGather(c *comm.Comm, g comm.Group, o Opts, data []uint32) ([][]uint32, Stats) {
	size := g.Size()
	out := make([][]uint32, size)
	out[g.Me] = data
	var st Stats
	if size == 1 {
		return out, st
	}
	done := span(c, "allgather", &st)
	next := g.World(g.Next(g.Me))
	prev := g.World(g.Prev(g.Me))
	piece := data
	for step := 0; step < size-1; step++ {
		stepDone := round(c, step)
		c.SendChunked(next, o.Tag+step, piece, o.Chunk)
		piece = c.RecvChunked(prev, o.Tag+step, o.Chunk)
		srcIdx := g.Me - step - 1
		for srcIdx < 0 {
			srcIdx += size
		}
		out[srcIdx] = piece
		st.RecvWords += len(piece)
		stepDone()
	}
	done()
	return out, st
}

// AllToAll performs a personalized exchange: send[i] goes to member i
// (send[g.Me] stays local). out[i] is the payload from member i. The
// schedule is the rotation pairing: at step s every member sends to
// (me+s) and receives from (me-s), so each pair's traffic is one
// message per direction per step.
func AllToAll(c *comm.Comm, g comm.Group, o Opts, send [][]uint32) ([][]uint32, Stats) {
	size := g.Size()
	if len(send) != size {
		panic(fmt.Sprintf("collective: AllToAll needs %d send buffers, got %d", size, len(send)))
	}
	out := make([][]uint32, size)
	out[g.Me] = send[g.Me]
	var st Stats
	done := span(c, "alltoall", &st)
	for step := 1; step < size; step++ {
		stepDone := round(c, step)
		to := (g.Me + step) % size
		from := (g.Me - step + size) % size
		c.SendChunked(g.World(to), o.Tag+step, send[to], o.Chunk)
		out[from] = c.RecvChunked(g.World(from), o.Tag+step, o.Chunk)
		st.RecvWords += len(out[from])
		stepDone()
	}
	done()
	return out, st
}

// ReduceScatterUnion performs fold as a direct reduce-scatter with set
// union: send[i] (sorted set) is destined for member i; the result is
// the union of everything destined to this rank. Duplicate elimination
// happens after receipt (no in-flight reduction), so Dups counts local
// merge savings only; contrast with TwoPhaseFold.
func ReduceScatterUnion(c *comm.Comm, g comm.Group, o Opts, send [][]uint32) ([]uint32, Stats) {
	var st Stats
	done := span(c, "rs-union", &st)
	parts, ast := AllToAll(c, g, o, encodeSends(g, o.Codec, send))
	st = ast
	decodeParts(g, o.Codec, parts)
	acc := append([]uint32(nil), parts[g.Me]...)
	for i, p := range parts {
		if i == g.Me {
			continue
		}
		var d int
		acc, d = localindex.UnionInto(acc, p)
		st.Dups += d
	}
	done()
	return acc, st
}

// Broadcast sends root's data to every group member along the ring.
// Returns the data (root gets its own slice back).
func Broadcast(c *comm.Comm, g comm.Group, o Opts, root int, data []uint32) ([]uint32, Stats) {
	size := g.Size()
	var st Stats
	if size == 1 {
		return data, st
	}
	done := span(c, "bcast", &st)
	// Position relative to root along the ring.
	rel := (g.Me - root + size) % size
	if rel != 0 {
		data = c.RecvChunked(g.World(g.Prev(g.Me)), o.Tag, o.Chunk)
		st.RecvWords += len(data)
	}
	if rel != size-1 {
		c.SendChunked(g.World(g.Next(g.Me)), o.Tag, data, o.Chunk)
	}
	done()
	return data, st
}
