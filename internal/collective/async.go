package collective

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/localindex"
)

// Asynchronous (pipelined) variants of the collectives. The payloads,
// tags, chunking, and received-word statistics are identical to the
// synchronous operations — only the schedule changes:
//
//   - every send is posted before any wait, so all transfers are in
//     flight concurrently instead of serializing one transit per
//     pairwise step;
//   - parts are delivered to the caller through a handle as each one
//     completes, so the caller's per-part compute charges (the hash
//     probes and scans that dominate §4.2's profile) hide the wire time
//     of the parts still in flight.
//
// Hidden wire seconds are audited by comm.Comm.OverlapTime. Results are
// bit-identical to the synchronous path: the engines only ever combine
// parts with order-insensitive reductions (set union, min-merge,
// bitwise OR, concatenate-then-sort).

// Prep produces the payload destined to group member m. The pipelined
// exchanges call it immediately before posting m's send (self last,
// after every send is posted), so compute charged inside Prep — sort,
// dedup, encode — overlaps the transfers already in flight.
type Prep func(m int) []uint32

// Handle consumes one completed part. The pipelined exchanges invoke it
// with the self part first and then every received part in the
// synchronous step order; compute charged inside Handle hides the
// remaining parts' wire time.
type Handle func(m int, part []uint32)

// prepared wraps precomputed send buffers as a Prep.
func prepared(send [][]uint32) Prep {
	return func(m int) []uint32 { return send[m] }
}

// AllToAllAsync performs the personalized exchange of AllToAll with the
// pipelined schedule. prep must not be nil; handle may be. out[i] and
// Stats match AllToAll exactly.
func AllToAllAsync(c *comm.Comm, g comm.Group, o Opts, prep Prep, handle Handle) ([][]uint32, Stats) {
	size := g.Size()
	out := make([][]uint32, size)
	var st Stats
	if size == 1 {
		out[0] = prep(0)
		if handle != nil {
			handle(0, out[0])
		}
		return out, st
	}
	done := span(c, "alltoall-async", &st)
	for step := 1; step < size; step++ {
		to := (g.Me + step) % size
		c.IsendChunked(g.World(to), o.Tag+step, prep(to), o.Chunk)
	}
	reqs := make([]*comm.Request, size)
	for step := 1; step < size; step++ {
		from := (g.Me - step + size) % size
		reqs[step] = c.IrecvChunked(g.World(from), o.Tag+step, o.Chunk)
	}
	out[g.Me] = prep(g.Me)
	if handle != nil {
		handle(g.Me, out[g.Me])
	}
	for step := 1; step < size; step++ {
		from := (g.Me - step + size) % size
		part := reqs[step].Wait()
		st.RecvWords += len(part)
		out[from] = part
		if handle != nil {
			handle(from, part)
		}
	}
	done()
	return out, st
}

// AllGatherAsync is the ring all-gather with each hop's forward posted
// before the previous piece is processed: handle sees every piece in
// ring order — this rank's own data first, right after the first
// forward posts — and its compute hides the next hop's transit.
// Callers mirroring the synchronous charge of received words only skip
// the m == g.Me invocation. out and Stats match AllGather exactly.
func AllGatherAsync(c *comm.Comm, g comm.Group, o Opts, data []uint32, handle Handle) ([][]uint32, Stats) {
	size := g.Size()
	out := make([][]uint32, size)
	out[g.Me] = data
	var st Stats
	if size == 1 {
		if handle != nil {
			handle(g.Me, data)
		}
		return out, st
	}
	done := span(c, "allgather-async", &st)
	next := g.World(g.Next(g.Me))
	prev := g.World(g.Prev(g.Me))
	piece := data
	pendIdx := g.Me // own piece processes under the first hop
	for step := 0; step < size-1; step++ {
		c.IsendChunked(next, o.Tag+step, piece, o.Chunk)
		req := c.IrecvChunked(prev, o.Tag+step, o.Chunk)
		if handle != nil {
			handle(pendIdx, out[pendIdx]) // forwarded above; process under the next hop
		}
		piece = req.Wait()
		srcIdx := g.Me - step - 1
		for srcIdx < 0 {
			srcIdx += size
		}
		out[srcIdx] = piece
		st.RecvWords += len(piece)
		pendIdx = srcIdx
	}
	if handle != nil {
		handle(pendIdx, out[pendIdx])
	}
	done()
	return out, st
}

// ReduceScatterUnionAsync is the direct union fold on the pipelined
// exchange: prep returns the sorted set destined to member m (the codec,
// if any, is applied at the wire), and every part union-merges into the
// accumulator as it completes. Result and Stats match ReduceScatterUnion.
func ReduceScatterUnionAsync(c *comm.Comm, g comm.Group, o Opts, prep Prep) ([]uint32, Stats) {
	var acc []uint32
	accSet := false
	var dups int
	wirePrep := func(m int) []uint32 {
		s := prep(m)
		if o.Codec != nil && m != g.Me {
			return o.Codec.Enc(m, s)
		}
		return s
	}
	handle := func(m int, part []uint32) {
		if m != g.Me && o.Codec != nil {
			part = o.Codec.Dec(g.Me, part)
		}
		if !accSet {
			acc = append([]uint32(nil), part...)
			accSet = true
			return
		}
		var d int
		acc, d = localindex.UnionInto(acc, part)
		dups += d
	}
	_, st := AllToAllAsync(c, g, o, wirePrep, handle)
	st.Dups += dups
	return acc, st
}

// ReduceScatterOrAsync is ReduceScatterOr on the pipelined exchange:
// each claim bitmap ORs into the accumulator as it completes. handle
// (if any) sees each part in its wire form, before the codec decodes
// it, so callers can mirror the synchronous received-word charges.
func ReduceScatterOrAsync(c *comm.Comm, g comm.Group, o Opts, prep Prep, handle Handle) ([]uint32, Stats) {
	var acc []uint32
	orPart := func(m int, part []uint32) {
		if handle != nil {
			handle(m, part)
		}
		if m != g.Me && o.Codec != nil {
			part = o.Codec.Dec(g.Me, part)
		}
		if len(part) > len(acc) {
			grown := make([]uint32, len(part))
			copy(grown, acc)
			acc = grown
		}
		for j, w := range part {
			acc[j] |= w
		}
	}
	wirePrep := func(m int) []uint32 {
		s := prep(m)
		if o.Codec != nil && m != g.Me {
			return o.Codec.Enc(m, s)
		}
		return s
	}
	_, st := AllToAllAsync(c, g, o, wirePrep, orPart)
	return acc, st
}

// ReduceScatterUnionBruckAsync folds with Bruck's exchange. Every round
// of the log-step schedule forwards blocks received the round before,
// so the rounds are inherently serial and there is nothing to pipeline
// between them; the variant exists so the async engines have a uniform
// call surface, and it simply runs the synchronous schedule.
func ReduceScatterUnionBruckAsync(c *comm.Comm, g comm.Group, o Opts, prep Prep) ([]uint32, Stats) {
	send := make([][]uint32, g.Size())
	for m := range send {
		send[m] = prep(m)
	}
	return ReduceScatterUnionBruck(c, g, o, send)
}

// TwoPhaseExpandAsync is TwoPhaseExpand with the pipelined schedule:
// phase 1's column exchange streams pieces through handle, and each
// phase-2 ring hop forwards the received bundle before its sets are
// processed, hiding the next hop's transit under handle's compute.
// out[i] and Stats match TwoPhaseExpand (including Opts.BundleMerge
// recompression when configured).
func TwoPhaseExpandAsync(c *comm.Comm, g comm.Group, o Opts, data []uint32, handle Handle) ([][]uint32, Stats) {
	size := g.Size()
	var st Stats
	out := make([][]uint32, size)
	out[g.Me] = data
	if size == 1 {
		if handle != nil {
			handle(g.Me, data)
		}
		return out, st
	}
	done := span(c, "twophase-expand-async", &st)
	a, b := FactorGrid(size)
	row, col := g.Me/b, g.Me%b
	next := g.World(row*b + (col+1)%b)
	prev := g.World(row*b + (col-1+b)%b)
	tag2 := o.Tag + 1<<20

	// Phase 1: exchange within my grid column, all sends posted before
	// any compute. A single-row grid's phase-2 bundle is just my own
	// data, so its first hop posts immediately too.
	colSets := make([][]uint32, a)
	colSets[row] = data
	for i := 0; i < a; i++ {
		if i != row {
			c.IsendChunked(g.World(i*b+col), o.Tag+row, data, o.Chunk)
		}
	}
	reqs := make([]*comm.Request, a)
	for i := 0; i < a; i++ {
		if i != row {
			reqs[i] = c.IrecvChunked(g.World(i*b+col), o.Tag+i, o.Chunk)
		}
	}
	var wire []uint32
	var p2req *comm.Request
	if b > 1 && a == 1 {
		wire = bundleForWire(o, g, col, colSets)
		c.IsendChunked(next, tag2, wire, o.Chunk)
		p2req = c.IrecvChunked(prev, tag2, o.Chunk)
	}

	// My own portion processes under the transfers just posted; then
	// each phase-1 piece is handled while the next is in flight, keeping
	// the last one pending so it can hide phase 2's first hop instead.
	if handle != nil {
		handle(g.Me, data)
	}
	pendP1 := -1
	for i := 0; i < a; i++ {
		if i == row {
			continue
		}
		if pendP1 >= 0 && handle != nil {
			handle(pendP1*b+col, colSets[pendP1])
		}
		colSets[i] = reqs[i].Wait()
		st.RecvWords += len(colSets[i])
		out[i*b+col] = colSets[i]
		pendP1 = i
	}

	// Phase 2: circulate bundles along my grid-row ring. Each hop's
	// forward posts before the pending sets are handled, so their scan
	// hides the hop's transit; received bundles forward verbatim.
	if b > 1 {
		if p2req == nil {
			wire = bundleForWire(o, g, col, colSets)
			c.IsendChunked(next, tag2, wire, o.Chunk)
			p2req = c.IrecvChunked(prev, tag2, o.Chunk)
		}
		if pendP1 >= 0 && handle != nil {
			handle(pendP1*b+col, colSets[pendP1])
		}
		var pend [][]uint32 // sets waiting to be handled
		pendCol := -1
		for s := 0; s < b-1; s++ {
			if s > 0 {
				c.IsendChunked(next, tag2+s, wire, o.Chunk)
				p2req = c.IrecvChunked(prev, tag2+s, o.Chunk)
			}
			if pendCol >= 0 && handle != nil {
				for i := 0; i < a; i++ {
					handle(i*b+pendCol, pend[i])
				}
			}
			buf := p2req.Wait()
			st.RecvWords += len(buf)
			wire = buf // forward verbatim next hop
			srcCol := (col - s - 1 + b) % b
			bundle := bundleFromWire(o, g, srcCol, buf, a)
			for i := 0; i < a; i++ {
				out[i*b+srcCol] = bundle[i]
			}
			pend, pendCol = bundle, srcCol
		}
		if pendCol >= 0 && handle != nil {
			for i := 0; i < a; i++ {
				handle(i*b+pendCol, pend[i])
			}
		}
	} else if pendP1 >= 0 && handle != nil {
		handle(pendP1*b+col, colSets[pendP1])
	}
	done()
	return out, st
}

// twoPhaseFoldPhase2Async distributes the reduced per-destination sets
// down the grid column with every send posted before any wait, merging
// parts as they complete. Called from TwoPhaseFold when o.Async is set.
func twoPhaseFoldPhase2Async(c *comm.Comm, g comm.Group, o Opts, a, b, row, col int, mine [][]uint32, st *Stats) []uint32 {
	acc := append([]uint32(nil), mine[row]...)
	tag2 := o.Tag + 1<<20
	useCodec := o.Codec != nil && !o.NoUnion
	for i := 0; i < a; i++ {
		if i == row {
			continue
		}
		part := mine[i]
		if useCodec {
			part = o.Codec.Enc(i*b+col, part)
		}
		c.IsendChunked(g.World(i*b+col), tag2+row, part, o.Chunk)
	}
	reqs := make([]*comm.Request, a)
	for i := 0; i < a; i++ {
		if i != row {
			reqs[i] = c.IrecvChunked(g.World(i*b+col), tag2+i, o.Chunk)
		}
	}
	for i := 0; i < a; i++ {
		if i == row {
			continue
		}
		part := reqs[i].Wait()
		st.RecvWords += len(part)
		if useCodec {
			part = o.Codec.Dec(g.Me, part)
		}
		if o.NoUnion {
			part, _ = localindex.SortSet(append([]uint32(nil), part...))
		}
		var d int
		acc, d = localindex.UnionInto(acc, part)
		st.Dups += d
	}
	if o.NoUnion {
		acc, _ = localindex.SortSet(acc)
	}
	return acc
}

// FoldAsync dispatches a union fold to the pipelined variant of the
// configured algorithm; alg names match the synchronous dispatchers in
// the engines ("direct", "twophase", "twophase-nounion", "bruck").
// Sets are produced by prep in posting order so their sort/encode
// compute overlaps the transfers already in flight (the two-phase and
// Bruck schedules need every bundle up front and call prep eagerly).
func FoldAsync(c *comm.Comm, g comm.Group, o Opts, alg string, prep Prep) ([]uint32, Stats) {
	switch alg {
	case "direct":
		return ReduceScatterUnionAsync(c, g, o, prep)
	case "twophase", "twophase-nounion":
		o.Async = true
		if alg == "twophase-nounion" {
			o.NoUnion = true
		}
		send := make([][]uint32, g.Size())
		for m := range send {
			send[m] = prep(m)
		}
		return TwoPhaseFold(c, g, o, send)
	case "bruck":
		return ReduceScatterUnionBruckAsync(c, g, o, prep)
	default:
		panic(fmt.Sprintf("collective: unknown async fold %q", alg))
	}
}
