package collective

import "repro/internal/comm"

// ReduceScatterOr reduce-scatters wire bitmaps with bitwise OR: send[i]
// is a []uint32 word bitmap destined for group member i, and the result
// is the OR of every bitmap destined to this rank. Payloads destined to
// one member are normally equal-length; stragglers are OR'd into a
// result sized to the longest.
//
// This is the delivery step of the bottom-up BFS direction: each rank's
// parent-found claims over a block of vertices are OR-combined at the
// block's owner, the bitmap analogue of the union fold (a duplicate
// claim costs one bit, not one word, so no Dups are recorded). With
// o.Codec set, each claim bitmap is re-encoded for the wire (hybrid
// chunk containers when sparser than the raw words) and decoded back
// before the OR; RecvWords counts the encoded words.
func ReduceScatterOr(c *comm.Comm, g comm.Group, o Opts, send [][]uint32) ([]uint32, Stats) {
	parts, st := AllToAll(c, g, o, encodeSends(g, o.Codec, send))
	decodeParts(g, o.Codec, parts)
	var acc []uint32
	for _, p := range parts {
		if len(p) > len(acc) {
			grown := make([]uint32, len(p))
			copy(grown, acc)
			acc = grown
		}
		for j, w := range p {
			acc[j] |= w
		}
	}
	return acc, st
}
