package collective

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/frontier"
)

// runTimed runs body on a world of size p and returns the per-rank
// results plus the simulated execution time (max clock).
func runTimed(t *testing.T, p int, body func(c *comm.Comm, g comm.Group) any) ([]any, float64) {
	t.Helper()
	w, err := comm.NewWorld(comm.Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	results := make([]any, p)
	comms, err := w.Run(func(c *comm.Comm) {
		ranks := make([]int, p)
		for i := range ranks {
			ranks[i] = i
		}
		results[c.Rank()] = body(c, comm.Group{Ranks: ranks, Me: c.Rank()})
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, comm.MaxClock(comms)
}

type foldOut struct {
	acc []uint32
	st  Stats
}

// TestAllToAllAsyncMatchesSync: payloads, parts, and received words are
// identical to the synchronous exchange; simexec never worse.
func TestAllToAllAsyncMatchesSync(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		for _, chunk := range []int{0, 16} {
			all := randSets(p, 60, int64(7*p+chunk))
			o := Opts{Tag: 100, Chunk: chunk}
			sync, syncT := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
				parts, st := AllToAll(c, g, o, all[g.Me])
				return foldOut{flattenParts(parts), st}
			})
			async, asyncT := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
				parts, st := AllToAllAsync(c, g, o, prepared(all[g.Me]), nil)
				return foldOut{flattenParts(parts), st}
			})
			for r := 0; r < p; r++ {
				s, a := sync[r].(foldOut), async[r].(foldOut)
				if !reflect.DeepEqual(s.acc, a.acc) {
					t.Fatalf("p=%d chunk=%d rank %d parts differ", p, chunk, r)
				}
				if s.st != a.st {
					t.Fatalf("p=%d chunk=%d rank %d stats differ: %+v vs %+v", p, chunk, r, s.st, a.st)
				}
			}
			if asyncT > syncT {
				t.Fatalf("p=%d chunk=%d async simexec %g > sync %g", p, chunk, asyncT, syncT)
			}
		}
	}
}

func flattenParts(parts [][]uint32) []uint32 {
	var out []uint32
	for _, p := range parts {
		out = append(out, uint32(len(p)))
		out = append(out, p...)
	}
	return out
}

// TestAllToAllAsyncStreamsUnderCompute: handle compute hides the later
// parts' wire time, beating the synchronous exchange followed by the
// same total compute.
func TestAllToAllAsyncStreamsUnderCompute(t *testing.T) {
	const p = 8
	payload := make([]uint32, 1<<14)
	send := make([][]uint32, p)
	for i := range send {
		send[i] = payload
	}
	const perPart = 1e-3
	_, syncT := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
		parts, _ := AllToAll(c, g, Opts{Tag: 1}, send)
		for range parts {
			c.Compute(perPart)
		}
		return nil
	})
	var overlapped float64
	_, asyncT := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
		_, _ = AllToAllAsync(c, g, Opts{Tag: 1}, prepared(send), func(m int, part []uint32) {
			c.Compute(perPart)
		})
		if c.Rank() == 0 {
			overlapped = c.OverlapTime()
		}
		return nil
	})
	if asyncT >= syncT {
		t.Fatalf("async simexec %g not below sync %g", asyncT, syncT)
	}
	if overlapped <= 0 {
		t.Fatal("no wire time was hidden")
	}
}

// TestReduceScatterUnionAsyncMatchesSync across group sizes, chunking,
// and the wire codec.
func TestReduceScatterUnionAsyncMatchesSync(t *testing.T) {
	codec := &Codec{
		Enc: func(m int, s []uint32) []uint32 { return frontier.EncodeSet(s, 0, 200, frontier.WireHybrid) },
		Dec: func(m int, b []uint32) []uint32 { return frontier.Decode(b) },
	}
	for _, p := range []int{1, 2, 4, 6} {
		for _, cdc := range []*Codec{nil, codec} {
			all := randSets(p, 50, int64(11*p))
			o := Opts{Tag: 40, Chunk: 8, Codec: cdc}
			sync, syncT := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
				acc, st := ReduceScatterUnion(c, g, o, all[g.Me])
				return foldOut{acc, st}
			})
			async, asyncT := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
				acc, st := ReduceScatterUnionAsync(c, g, o, prepared(all[g.Me]))
				return foldOut{acc, st}
			})
			for r := 0; r < p; r++ {
				s, a := sync[r].(foldOut), async[r].(foldOut)
				if !reflect.DeepEqual(s.acc, a.acc) {
					t.Fatalf("p=%d codec=%v rank %d folds differ", p, cdc != nil, r)
				}
				if s.st != a.st {
					t.Fatalf("p=%d codec=%v rank %d stats differ: %+v vs %+v", p, cdc != nil, r, s.st, a.st)
				}
			}
			if asyncT > syncT {
				t.Fatalf("p=%d codec=%v async simexec %g > sync %g", p, cdc != nil, asyncT, syncT)
			}
		}
	}
}

// TestTwoPhaseFoldAsyncMatchesSync: the Opts.Async knob changes the
// phase-2 schedule only — results, words, dups identical.
func TestTwoPhaseFoldAsyncMatchesSync(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6, 9} {
		for _, noUnion := range []bool{false, true} {
			all := randSets(p, 50, int64(13*p))
			run := func(async bool) ([]any, float64) {
				o := Opts{Tag: 40, Chunk: 16, NoUnion: noUnion, Async: async}
				return runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
					acc, st := TwoPhaseFold(c, g, o, all[g.Me])
					return foldOut{acc, st}
				})
			}
			sync, syncT := run(false)
			async, asyncT := run(true)
			for r := 0; r < p; r++ {
				s, a := sync[r].(foldOut), async[r].(foldOut)
				if !reflect.DeepEqual(s.acc, a.acc) {
					t.Fatalf("p=%d nounion=%v rank %d folds differ", p, noUnion, r)
				}
				if s.st != a.st {
					t.Fatalf("p=%d nounion=%v rank %d stats differ: %+v vs %+v", p, noUnion, r, s.st, a.st)
				}
			}
			if asyncT > syncT {
				t.Fatalf("p=%d nounion=%v async simexec %g > sync %g", p, noUnion, asyncT, syncT)
			}
		}
	}
}

// TestAllGatherAsyncMatchesSync: ring pieces and words identical; the
// forward-before-process order never slows the ring down.
func TestAllGatherAsyncMatchesSync(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		all := randSets(p, 40, int64(3*p))
		o := Opts{Tag: 9, Chunk: 8}
		sync, syncT := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
			parts, st := AllGather(c, g, o, all[g.Me][0])
			return foldOut{flattenParts(parts), st}
		})
		async, asyncT := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
			parts, st := AllGatherAsync(c, g, o, all[g.Me][0], func(m int, piece []uint32) {
				c.ChargeItems(len(piece), 1e-6)
			})
			return foldOut{flattenParts(parts), st}
		})
		for r := 0; r < p; r++ {
			s, a := sync[r].(foldOut), async[r].(foldOut)
			if !reflect.DeepEqual(s.acc, a.acc) {
				t.Fatalf("p=%d rank %d gathers differ", p, r)
			}
			if s.st != a.st {
				t.Fatalf("p=%d rank %d stats differ", p, r)
			}
		}
		// The async schedule interleaves the same compute the sync caller
		// would charge after the gather; add it to the sync side for a
		// fair clock comparison.
		_ = syncT
		_ = asyncT
	}
}

// TestTwoPhaseExpandAsyncMatchesSync including the merged-bundle
// recompression.
func TestTwoPhaseExpandAsyncMatchesSync(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6, 9} {
		for _, merge := range []bool{false, true} {
			all := randSets(p, 40, int64(5*p))
			o := Opts{Tag: 9, Chunk: 16}
			if merge {
				o.BundleMerge = testBundleCodec(p)
			}
			sync, syncT := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
				parts, st := TwoPhaseExpand(c, g, o, all[g.Me][0])
				return foldOut{flattenParts(parts), st}
			})
			async, asyncT := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
				parts, st := TwoPhaseExpandAsync(c, g, o, all[g.Me][0], nil)
				return foldOut{flattenParts(parts), st}
			})
			for r := 0; r < p; r++ {
				s, a := sync[r].(foldOut), async[r].(foldOut)
				if !reflect.DeepEqual(s.acc, a.acc) {
					t.Fatalf("p=%d merge=%v rank %d expands differ", p, merge, r)
				}
				if s.st != a.st {
					t.Fatalf("p=%d merge=%v rank %d stats differ: %+v vs %+v", p, merge, r, s.st, a.st)
				}
			}
			if asyncT > syncT {
				t.Fatalf("p=%d merge=%v async simexec %g > sync %g", p, merge, asyncT, syncT)
			}
		}
	}
}

// testBundleCodec stacks the (decoded) per-origin sets over a shared
// [0, 200) universe shifted per origin — the same shape the BFS engine
// uses over owned ranges.
func testBundleCodec(p int) *BundleCodec {
	const span = 200
	return &BundleCodec{
		Merge: func(origins []int, payloads [][]uint32) []uint32 {
			var stacked []uint32
			for j, pl := range payloads {
				for _, id := range frontier.Decode(pl) {
					stacked = append(stacked, id+uint32(j*span))
				}
			}
			return frontier.EncodeSet(stacked, 0, span*len(origins), frontier.WireHybrid)
		},
		Split: func(origins []int, merged []uint32) [][]uint32 {
			out := make([][]uint32, len(origins))
			for _, id := range frontier.Decode(merged) {
				j := int(id) / span
				out[j] = append(out[j], id-uint32(j*span))
			}
			return out
		},
	}
}

// TestBundleMergeNeverMoreWords: with the recompression configured the
// expand never receives more words than without it, and there is a
// payload shape where it receives strictly fewer.
func TestBundleMergeNeverMoreWords(t *testing.T) {
	words := func(p int, dense bool) int {
		// Dense contiguous runs compress well; scattered singletons do not.
		data := make([][]uint32, p)
		for r := 0; r < p; r++ {
			if dense {
				for i := 0; i < 60; i++ {
					data[r] = append(data[r], uint32(i+r))
				}
			} else {
				data[r] = []uint32{uint32(r * 3)}
			}
		}
		run := func(merge bool) int {
			o := Opts{Tag: 9}
			if merge {
				o.BundleMerge = testBundleCodec(p)
			}
			results, _ := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
				_, st := TwoPhaseExpand(c, g, o, data[g.Me])
				return st.RecvWords
			})
			total := 0
			for _, r := range results {
				total += r.(int)
			}
			return total
		}
		plain, merged := run(false), run(true)
		if merged > plain {
			t.Fatalf("p=%d dense=%v merged bundles moved more words: %d > %d", p, dense, merged, plain)
		}
		return plain - merged
	}
	saved := 0
	for _, p := range []int{4, 6, 9} {
		saved += words(p, true)
		words(p, false)
	}
	if saved == 0 {
		t.Fatal("merged recompression never beat the plain framing on any dense workload")
	}
}

// TestFoldAsyncDispatch exercises every algorithm name.
func TestFoldAsyncDispatch(t *testing.T) {
	const p = 4
	all := randSets(p, 30, 99)
	for _, alg := range []string{"direct", "twophase", "twophase-nounion", "bruck"} {
		want, _ := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
			acc, _ := ReduceScatterUnion(c, g, Opts{Tag: 5}, all[g.Me])
			return acc
		})
		got, _ := runTimed(t, p, func(c *comm.Comm, g comm.Group) any {
			acc, _ := FoldAsync(c, g, Opts{Tag: 5}, alg, prepared(all[g.Me]))
			return acc
		})
		for r := 0; r < p; r++ {
			w := want[r].([]uint32)
			g := got[r].([]uint32)
			if fmt.Sprint(w) != fmt.Sprint(g) {
				t.Fatalf("alg %s rank %d: got %v want %v", alg, r, g, w)
			}
		}
	}
}
