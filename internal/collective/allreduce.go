package collective

import (
	"repro/internal/comm"
)

// AllReduceOp selects the combining operator for the point-to-point
// allreduce.
type AllReduceOp int

// Operators for AllReduceP2P.
const (
	OpSum AllReduceOp = iota
	OpMax
	OpMin
	OpOr
)

func combineU64(a, b uint64, op AllReduceOp) uint64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpOr:
		return a | b
	default:
		panic("collective: unknown allreduce op")
	}
}

// AllReduceP2P combines one uint64 per group member with the given
// operator using only point-to-point messages: recursive doubling on
// the largest power-of-two subset, with the remainder folded in before
// and fanned out after. ceil(log2 G)+2 rounds; every member returns the
// same result.
//
// comm.Comm also offers tree-modelled reductions (AllReduceSum etc.)
// that stand in for BlueGene/L's dedicated combine network; this
// implementation is the torus-only alternative, used when the BFS is
// configured to run its level-termination checks over point-to-point
// messages like its data collectives.
func AllReduceP2P(c *comm.Comm, g comm.Group, o Opts, val uint64, op AllReduceOp) uint64 {
	size := g.Size()
	if size == 1 {
		return val
	}
	var st Stats
	done := span(c, "allreduce-p2p", &st)
	defer done()
	// Largest power of two <= size.
	pof2 := 1
	for pof2*2 <= size {
		pof2 *= 2
	}
	rem := size - pof2
	me := g.Me

	enc := func(v uint64) []uint32 { return []uint32{uint32(v >> 32), uint32(v)} }
	dec := func(d []uint32) uint64 {
		if len(d) != 2 {
			panic("collective: malformed allreduce payload")
		}
		return uint64(d[0])<<32 | uint64(d[1])
	}

	// Pre-fold: members >= pof2 send their value to (me - pof2).
	if me >= pof2 {
		c.Send(g.World(me-pof2), o.Tag, enc(val))
	} else if me < rem {
		val = combineU64(val, dec(c.Recv(g.World(me+pof2), o.Tag)), op)
	}

	// Recursive doubling among the first pof2 members.
	if me < pof2 {
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := me ^ mask
			got := c.SendRecv(g.World(partner), o.Tag+1+mask, enc(val))
			val = combineU64(val, dec(got), op)
		}
	}

	// Fan-out to the folded members.
	if me < rem {
		c.Send(g.World(me+pof2), o.Tag+1<<19, enc(val))
	} else if me >= pof2 {
		val = dec(c.Recv(g.World(me-pof2), o.Tag+1<<19))
	}
	return val
}
