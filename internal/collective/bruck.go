package collective

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/localindex"
)

// AllToAllBruck performs the same personalized exchange as AllToAll
// using Bruck's algorithm: ceil(log2 G) rounds instead of G-1 pairwise
// steps, at the price of each payload traveling up to log2 G hops.
// On the torus this trades bandwidth for latency and is the classic
// choice for the short-message regime (cf. the paper's reference to
// Suh & Shin's personalized all-to-all on tori).
//
// With o.Codec set, the codec lives inside the exchange: each bundled
// block is container-encoded once — at the first hop that ships it,
// against its final destination's universe — then rides every further
// hop in encoded form and is decoded only at the destination. Bundles
// therefore never ship raw sets, and every multi-hop retransmission
// moves the compressed words.
//
// send[i] goes to group member i; out[i] is the payload from member i.
func AllToAllBruck(c *comm.Comm, g comm.Group, o Opts, send [][]uint32) ([][]uint32, Stats) {
	size := g.Size()
	if len(send) != size {
		panic(fmt.Sprintf("collective: AllToAllBruck needs %d send buffers, got %d", size, len(send)))
	}
	var st Stats
	out := make([][]uint32, size)
	out[g.Me] = send[g.Me]
	if size == 1 {
		return out, st
	}
	done := span(c, "bruck", &st)

	// Phase 1 (local rotation): block j carries the payload destined to
	// relative rank j, i.e. absolute member (me + j) mod size.
	blocks := make([][]uint32, size)
	for j := 0; j < size; j++ {
		blocks[j] = send[(g.Me+j)%size]
	}
	encoded := make([]bool, size)

	// Phase 2 (log rounds): for each bit, ship every block whose
	// relative index has that bit set to the member 2^bit ahead; the
	// payload hops closer to its destination each round it is shipped.
	// A block's first shipping round is its lowest set bit, before the
	// block has moved, so its destination is still (me + j) mod size —
	// the moment it is container-encoded.
	rnd := 0
	for step := 1; step < size; step <<= 1 {
		rndDone := round(c, rnd)
		var idxs []int
		for j := 1; j < size; j++ {
			if j&step != 0 {
				idxs = append(idxs, j)
			}
		}
		bundle := make([][]uint32, len(idxs))
		for bi, j := range idxs {
			if o.Codec != nil && !encoded[j] {
				blocks[j] = o.Codec.Enc((g.Me+j)%size, blocks[j])
				encoded[j] = true
			}
			bundle[bi] = blocks[j]
		}
		to := g.World((g.Me + step) % size)
		from := g.World((g.Me - step + size) % size)
		c.SendChunked(to, o.Tag+rnd, encodeBundle(bundle), o.Chunk)
		buf := c.RecvChunked(from, o.Tag+rnd, o.Chunk)
		st.RecvWords += len(buf)
		incoming := decodeBundle(buf, len(idxs))
		for bi, j := range idxs {
			blocks[j] = incoming[bi]
			encoded[j] = true // arrived encoded (if a codec is in play)
		}
		rnd++
		rndDone()
	}

	// Phase 3 (inverse placement): block j now holds the payload that
	// originated at member (me - j) mod size and is destined to me.
	for j := 1; j < size; j++ {
		src := (g.Me - j + size) % size
		block := blocks[j]
		if o.Codec != nil {
			block = o.Codec.Dec(g.Me, block)
		}
		out[src] = block
	}
	done()
	return out, st
}

// ReduceScatterUnionBruck folds with Bruck's exchange followed by a
// local union — fewer, longer messages than the direct reduce-scatter.
// The codec (if any) is applied inside AllToAllBruck, where bundled
// blocks compress once and stay compressed across hops.
func ReduceScatterUnionBruck(c *comm.Comm, g comm.Group, o Opts, send [][]uint32) ([]uint32, Stats) {
	parts, st := AllToAllBruck(c, g, o, send)
	acc := append([]uint32(nil), parts[g.Me]...)
	for i, p := range parts {
		if i == g.Me {
			continue
		}
		var d int
		acc, d = localindex.UnionInto(acc, p)
		st.Dups += d
	}
	return acc, st
}
