package collective

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/localindex"
)

// AllToAllBruck performs the same personalized exchange as AllToAll
// using Bruck's algorithm: ceil(log2 G) rounds instead of G-1 pairwise
// steps, at the price of each payload traveling up to log2 G hops.
// On the torus this trades bandwidth for latency and is the classic
// choice for the short-message regime (cf. the paper's reference to
// Suh & Shin's personalized all-to-all on tori).
//
// send[i] goes to group member i; out[i] is the payload from member i.
func AllToAllBruck(c *comm.Comm, g comm.Group, o Opts, send [][]uint32) ([][]uint32, Stats) {
	size := g.Size()
	if len(send) != size {
		panic(fmt.Sprintf("collective: AllToAllBruck needs %d send buffers, got %d", size, len(send)))
	}
	var st Stats
	out := make([][]uint32, size)
	out[g.Me] = send[g.Me]
	if size == 1 {
		return out, st
	}

	// Phase 1 (local rotation): block j carries the payload destined to
	// relative rank j, i.e. absolute member (me + j) mod size.
	blocks := make([][]uint32, size)
	for j := 0; j < size; j++ {
		blocks[j] = send[(g.Me+j)%size]
	}

	// Phase 2 (log rounds): for each bit, ship every block whose
	// relative index has that bit set to the member 2^bit ahead; the
	// payload hops closer to its destination each round it is shipped.
	round := 0
	for step := 1; step < size; step <<= 1 {
		var idxs []int
		for j := 1; j < size; j++ {
			if j&step != 0 {
				idxs = append(idxs, j)
			}
		}
		bundle := make([][]uint32, len(idxs))
		for bi, j := range idxs {
			bundle[bi] = blocks[j]
		}
		to := g.World((g.Me + step) % size)
		from := g.World((g.Me - step + size) % size)
		c.SendChunked(to, o.Tag+round, encodeBundle(bundle), o.Chunk)
		buf := c.RecvChunked(from, o.Tag+round, o.Chunk)
		st.RecvWords += len(buf)
		incoming := decodeBundle(buf, len(idxs))
		for bi, j := range idxs {
			blocks[j] = incoming[bi]
		}
		round++
	}

	// Phase 3 (inverse placement): block j now holds the payload that
	// originated at member (me - j) mod size and is destined to me.
	for j := 1; j < size; j++ {
		src := (g.Me - j + size) % size
		out[src] = blocks[j]
	}
	return out, st
}

// ReduceScatterUnionBruck folds with Bruck's exchange followed by a
// local union — fewer, longer messages than the direct reduce-scatter.
func ReduceScatterUnionBruck(c *comm.Comm, g comm.Group, o Opts, send [][]uint32) ([]uint32, Stats) {
	parts, st := AllToAllBruck(c, g, o, encodeSends(g, o.Codec, send))
	decodeParts(g, o.Codec, parts)
	acc := append([]uint32(nil), parts[g.Me]...)
	for i, p := range parts {
		if i == g.Me {
			continue
		}
		var d int
		acc, d = localindex.UnionInto(acc, p)
		st.Dups += d
	}
	return acc, st
}
