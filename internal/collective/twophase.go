package collective

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/localindex"
)

// FactorGrid factors a group of size g into rows x cols with
// rows*cols = g and cols the largest divisor of g not exceeding
// sqrt(g). The two-phase collectives of §3.2.2 run phase 1 along grid
// rows (cols members) and phase 2 along grid columns (rows members),
// giving O(rows + cols) steps instead of O(g).
func FactorGrid(g int) (rows, cols int) {
	if g <= 0 {
		panic(fmt.Sprintf("collective: invalid group size %d", g))
	}
	cols = 1
	for d := 1; d*d <= g; d++ {
		if g%d == 0 {
			cols = d
		}
	}
	return g / cols, cols
}

// bundle wire format: k sets are encoded as k (length, payload...)
// sections. The two-phase collectives move bundles of per-destination
// (fold) or per-source (expand) sets.

func encodeBundle(sets [][]uint32) []uint32 {
	total := 0
	for _, s := range sets {
		total += 1 + len(s)
	}
	buf := make([]uint32, 0, total)
	for _, s := range sets {
		buf = append(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

func decodeBundle(buf []uint32, k int) [][]uint32 {
	sets := make([][]uint32, k)
	pos := 0
	for i := 0; i < k; i++ {
		if pos >= len(buf) {
			panic("collective: truncated bundle")
		}
		n := int(buf[pos])
		pos++
		sets[i] = buf[pos : pos+n : pos+n]
		pos += n
	}
	if pos != len(buf) {
		panic("collective: trailing bytes in bundle")
	}
	return sets
}

// TwoPhaseFold is the paper's optimized union-fold (Figure 2): a
// reduce-scatter whose reduction operator is set union, run on an
// a x b grid factoring of the group.
//
// Phase 1 is a ring reduce-scatter along each grid row: the bundle
// destined to grid column j circulates and accumulates the set-union of
// every row member's contribution, eliminating duplicates in flight —
// this is where the redundancy-ratio savings of Fig. 7 come from.
// Phase 2 distributes the accumulated per-destination sets directly
// down each grid column.
//
// send[i] is the sorted set destined for group member i; the result is
// the union of all sets destined to this rank.
func TwoPhaseFold(c *comm.Comm, g comm.Group, o Opts, send [][]uint32) ([]uint32, Stats) {
	size := g.Size()
	if len(send) != size {
		panic(fmt.Sprintf("collective: TwoPhaseFold needs %d send buffers, got %d", size, len(send)))
	}
	var st Stats
	if size == 1 {
		return append([]uint32(nil), send[0]...), st
	}
	done := span(c, "twophase-fold", &st)
	tr := c.Tracer()
	a, b := FactorGrid(size)
	row, col := g.Me/b, g.Me%b

	// chunks[(j+1)%b] holds the bundle destined to grid column j:
	// a sets, one per grid row. The +1 shift makes the textbook ring
	// schedule finish with this rank owning its own column's bundle.
	chunks := make([][][]uint32, b)
	for j := 0; j < b; j++ {
		sets := make([][]uint32, a)
		for i := 0; i < a; i++ {
			sets[i] = send[i*b+j]
		}
		chunks[(j+1)%b] = sets
	}

	// Phase 1: ring reduce-scatter along my grid row. With a codec,
	// each set is re-encoded for the wire on every hop and decoded back
	// before the in-flight union (bitmap payloads when denser is
	// cheaper); NoUnion skips the codec because its in-transit payloads
	// are merged multisets with no set encoding.
	if b > 1 {
		tr.Begin("phase", "phase1")
		next := g.World(row*b + (col+1)%b)
		prev := g.World(row*b + (col-1+b)%b)
		for s := 0; s < b-1; s++ {
			stepDone := round(c, s)
			sendIdx := (col - s + b) % b
			recvIdx := (col - s - 1 + b) % b
			c.SendChunked(next, o.Tag+s, encodeBundle(foldWireSets(o, a, b, sendIdx, chunks[sendIdx])), o.Chunk)
			buf := c.RecvChunked(prev, o.Tag+s, o.Chunk)
			st.RecvWords += len(buf)
			incoming := decodeBundle(buf, a)
			foldUnwireSets(o, b, recvIdx, incoming)
			for i := 0; i < a; i++ {
				if o.NoUnion {
					chunks[recvIdx][i] = mergeKeepDups(chunks[recvIdx][i], incoming[i])
					continue
				}
				var d int
				chunks[recvIdx][i], d = localindex.UnionSorted(chunks[recvIdx][i], incoming[i])
				st.Dups += d
			}
			stepDone()
		}
		tr.End()
	}
	// This rank now owns the fully reduced bundle for its grid column.
	mine := chunks[(col+1)%b]

	// Phase 2: point-to-point distribution down my grid column. The
	// async schedule posts every send before any wait so the column's
	// transfers fly concurrently (phase 1's ring is serially dependent —
	// each step forwards what the previous one merged — and stays
	// synchronous either way).
	tr.Begin("phase", "phase2")
	if o.Async {
		acc := twoPhaseFoldPhase2Async(c, g, o, a, b, row, col, mine, &st)
		tr.End()
		done()
		return acc, st
	}
	acc := append([]uint32(nil), mine[row]...)
	tag2 := o.Tag + 1<<20
	useCodec := o.Codec != nil && !o.NoUnion
	for i := 0; i < a; i++ {
		if i == row {
			continue
		}
		part := mine[i]
		if useCodec {
			part = o.Codec.Enc(i*b+col, part)
		}
		c.SendChunked(g.World(i*b+col), tag2+row, part, o.Chunk)
	}
	for i := 0; i < a; i++ {
		if i == row {
			continue
		}
		part := c.RecvChunked(g.World(i*b+col), tag2+i, o.Chunk)
		st.RecvWords += len(part)
		if useCodec {
			part = o.Codec.Dec(g.Me, part)
		}
		if o.NoUnion {
			// part may be a multiset; dedup on receipt. These
			// duplicates crossed the wire — the waste the union-fold
			// avoids.
			part, _ = localindex.SortSet(append([]uint32(nil), part...))
		}
		var d int
		acc, d = localindex.UnionInto(acc, part)
		st.Dups += d
	}
	if o.NoUnion {
		acc, _ = localindex.SortSet(acc)
	}
	tr.End()
	done()
	return acc, st
}

// foldWireSets re-encodes each set of the phase-1 bundle stored at
// index idx (destined to grid column (idx-1+b) mod b; set i belongs to
// group member i*b+col) through the codec, if any.
func foldWireSets(o Opts, a, b, idx int, sets [][]uint32) [][]uint32 {
	if o.Codec == nil || o.NoUnion {
		return sets
	}
	col := (idx - 1 + b) % b
	out := make([][]uint32, a)
	for i, s := range sets {
		out[i] = o.Codec.Enc(i*b+col, s)
	}
	return out
}

// foldUnwireSets decodes an incoming phase-1 bundle (stored at index
// idx; set i is destined to group member i*b+col with col as in
// foldWireSets) in place.
func foldUnwireSets(o Opts, b, idx int, sets [][]uint32) {
	if o.Codec == nil || o.NoUnion {
		return
	}
	col := (idx - 1 + b) % b
	for i := range sets {
		sets[i] = o.Codec.Dec(i*b+col, sets[i])
	}
}

// mergeKeepDups merges two ascending slices preserving duplicates, the
// no-union baseline's in-transit "reduction".
func mergeKeepDups(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// TwoPhaseExpand is the paper's optimized expand (Figure 3): every
// group member's data reaches every other member in two phases on the
// a x b grid. Phase 1: members of each grid column exchange their data
// directly. Phase 2: each member circulates its phase-1 collection
// (one bundle of a sets) along its grid-row ring, so after b-1 steps
// everyone holds all a*b contributions.
//
// out[i] is member i's contribution (out[g.Me] aliases data).
func TwoPhaseExpand(c *comm.Comm, g comm.Group, o Opts, data []uint32) ([][]uint32, Stats) {
	size := g.Size()
	var st Stats
	out := make([][]uint32, size)
	out[g.Me] = data
	if size == 1 {
		return out, st
	}
	done := span(c, "twophase-expand", &st)
	tr := c.Tracer()
	a, b := FactorGrid(size)
	row, col := g.Me/b, g.Me%b

	// Phase 1: exchange within my grid column (stride-b members).
	tr.Begin("phase", "phase1")
	colSets := make([][]uint32, a)
	colSets[row] = data
	for i := 0; i < a; i++ {
		if i == row {
			continue
		}
		c.SendChunked(g.World(i*b+col), o.Tag+row, data, o.Chunk)
	}
	for i := 0; i < a; i++ {
		if i == row {
			continue
		}
		colSets[i] = c.RecvChunked(g.World(i*b+col), o.Tag+i, o.Chunk)
		st.RecvWords += len(colSets[i])
		out[i*b+col] = colSets[i]
	}
	tr.End()

	// Phase 2: circulate bundles along my grid-row ring. The bundle I
	// forward at step s originated at grid column (col-s); receivers
	// attribute sets to the originating column. With o.BundleMerge set,
	// each hop ships the cheaper of the plain framed bundle and the
	// merged recompression (see bundleForWire).
	if b > 1 {
		tr.Begin("phase", "phase2")
		next := g.World(row*b + (col+1)%b)
		prev := g.World(row*b + (col-1+b)%b)
		tag2 := o.Tag + 1<<20
		// Each received bundle is forwarded verbatim on the next hop (a
		// bundle's content never changes while it circulates, so the
		// framing — plain or merged — is chosen once, at its first hop).
		wire := bundleForWire(o, g, col, colSets)
		for s := 0; s < b-1; s++ {
			stepDone := round(c, s)
			c.SendChunked(next, tag2+s, wire, o.Chunk)
			buf := c.RecvChunked(prev, tag2+s, o.Chunk)
			st.RecvWords += len(buf)
			wire = buf
			srcCol := (col - s - 1 + b) % b
			bundle := bundleFromWire(o, g, srcCol, buf, a)
			for i := 0; i < a; i++ {
				out[i*b+srcCol] = bundle[i]
			}
			stepDone()
		}
		tr.End()
	}
	done()
	return out, st
}

// mergedBundleMarker leads a recompressed phase-2 bundle. A plain
// framed bundle starts with its first set's length, which can never be
// the maximum uint32, so the two wire forms are self-describing.
const mergedBundleMarker = ^uint32(0)

// bundleOrigins returns the group member indices contributing to the
// phase-2 bundle that originated at grid column srcCol, in bundle
// order.
func bundleOrigins(g comm.Group, srcCol int, a int) []int {
	_, b := FactorGrid(g.Size())
	origins := make([]int, a)
	for i := range origins {
		origins[i] = i*b + srcCol
	}
	return origins
}

// bundleForWire frames a phase-2 bundle for one ring hop: the plain
// (length, payload) framing, or — when o.BundleMerge is set and wins —
// the merged recompression behind mergedBundleMarker. Never more words
// than the plain framing.
func bundleForWire(o Opts, g comm.Group, srcCol int, sets [][]uint32) []uint32 {
	plain := encodeBundle(sets)
	if o.BundleMerge == nil {
		return plain
	}
	merged := o.BundleMerge.Merge(bundleOrigins(g, srcCol, len(sets)), sets)
	if 1+len(merged) >= len(plain) {
		return plain
	}
	out := make([]uint32, 0, 1+len(merged))
	return append(append(out, mergedBundleMarker), merged...)
}

// bundleFromWire inverts bundleForWire.
func bundleFromWire(o Opts, g comm.Group, srcCol int, buf []uint32, a int) [][]uint32 {
	if o.BundleMerge != nil && len(buf) > 0 && buf[0] == mergedBundleMarker {
		return o.BundleMerge.Split(bundleOrigins(g, srcCol, a), buf[1:])
	}
	return decodeBundle(buf, a)
}
