package torus

// CostModel holds the constants of the LogGP-flavoured timing model used
// by the simulated ranks. All times are in seconds, bandwidth in bytes
// per second. The defaults are BlueGene/L-flavoured: 1.4 Gbit/s
// (175 MB/s) per link direction, a few microseconds of software latency,
// and per-item compute costs sized for a 700 MHz PowerPC 440 spending
// most of its time in hash probes (§4.2 of the paper notes profiling
// showed hashing of received vertices dominates).
//
// Absolute values are not calibrated against the paper's runs; the
// experiments reproduce shapes (scaling exponents, crossovers, ratios),
// which depend on the relative magnitudes only.
type CostModel struct {
	Name string

	// Communication.
	SendOverhead float64 // CPU time to post a send (o_s)
	RecvOverhead float64 // CPU time to complete a receive (o_r)
	HopLatency   float64 // per-hop wire+router latency (alpha)
	Bandwidth    float64 // per-link bandwidth in bytes/second (beta)
	TreeLatency  float64 // per-stage latency of barrier/allreduce trees

	// Computation, charged explicitly by the BFS code.
	EdgeCost   float64 // scanning one edge-list entry
	HashCost   float64 // one hash probe (global->local lookup)
	VertexCost float64 // processing one received frontier/neighbour vertex

	// StoreAndForward charges the full serialization delay at every
	// hop (bytes/Bandwidth × hops) instead of the cut-through /
	// wormhole model BlueGene/L actually used (serialize once, add
	// only HopLatency per hop). Useful as an ablation showing why
	// wormhole routing matters for multi-hop collectives.
	StoreAndForward bool
}

// PresetBlueGeneL returns the default BlueGene/L-flavoured cost model.
// The per-item compute costs reflect a 700 MHz in-order PowerPC 440
// taking cache misses on nearly every hash probe (the paper's §4.2
// profiling: the code is memory-intensive and dominated by hashing of
// received vertices) — which is what makes communication a small
// fraction of execution time in Figure 4a.
func PresetBlueGeneL() CostModel {
	return CostModel{
		Name:         "bluegene-l",
		SendOverhead: 3e-6,
		RecvOverhead: 3e-6,
		HopLatency:   50e-9,
		Bandwidth:    175e6,
		TreeLatency:  2.5e-6,
		EdgeCost:     10e-9,
		HashCost:     120e-9,
		VertexCost:   80e-9,
	}
}

// PresetCluster returns a cost model standing in for MCR, the Quadrics
// Linux cluster the paper used for comparison: faster CPUs, higher
// point-to-point latency, flat (hop-insensitive) network.
func PresetCluster() CostModel {
	return CostModel{
		Name:         "cluster",
		SendOverhead: 4e-6,
		RecvOverhead: 4e-6,
		HopLatency:   0, // switched fabric: charge latency in overheads
		Bandwidth:    300e6,
		TreeLatency:  6e-6,
		EdgeCost:     2e-9,
		HashCost:     15e-9,
		VertexCost:   9e-9,
	}
}

// Transit returns the time a message of b bytes spends in the network
// between ranks that are h hops apart, excluding the endpoint overheads.
func (m CostModel) Transit(h, b int) float64 {
	ser := float64(b) / m.Bandwidth
	if m.StoreAndForward && h > 1 {
		ser *= float64(h)
	}
	return m.HopLatency*float64(h) + ser
}
