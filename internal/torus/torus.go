// Package torus models the BlueGene/L 3D torus interconnect: node
// coordinates, wraparound hop distances, dimension-ordered routing, the
// task mapping of a 2D logical processor array onto torus planes
// (Figure 1 of the paper), and a LogGP-style communication/computation
// cost model used to drive the simulated clocks in package comm.
//
// The real machine was a 64x32x32 torus of 65,536 compute nodes with
// 1.4 Gbit/s links per direction. This package reproduces the geometry
// and charges deterministic costs; it does not move bytes itself.
package torus

import "fmt"

// Coord is a node position on the 3D torus.
type Coord struct {
	X, Y, Z int
}

// Torus describes a 3D torus of DX*DY*DZ nodes with wraparound links in
// every dimension.
type Torus struct {
	DX, DY, DZ int
}

// New returns a torus with the given dimensions. Dimensions must be
// positive.
func New(dx, dy, dz int) (Torus, error) {
	if dx <= 0 || dy <= 0 || dz <= 0 {
		return Torus{}, fmt.Errorf("torus: dimensions must be positive, got %dx%dx%d", dx, dy, dz)
	}
	return Torus{DX: dx, DY: dy, DZ: dz}, nil
}

// MustNew is New but panics on invalid dimensions; intended for
// package-level defaults and tests.
func MustNew(dx, dy, dz int) Torus {
	t, err := New(dx, dy, dz)
	if err != nil {
		panic(err)
	}
	return t
}

// Nodes returns the total number of nodes on the torus.
func (t Torus) Nodes() int { return t.DX * t.DY * t.DZ }

// Contains reports whether c is a valid coordinate on the torus.
func (t Torus) Contains(c Coord) bool {
	return c.X >= 0 && c.X < t.DX && c.Y >= 0 && c.Y < t.DY && c.Z >= 0 && c.Z < t.DZ
}

// wrapDist returns the hop distance between a and b along one dimension
// of size d, taking the wraparound link when it is shorter.
func wrapDist(a, b, d int) int {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if wrap := d - diff; wrap < diff {
		return wrap
	}
	return diff
}

// Hops returns the minimal hop count between two coordinates under
// dimension-ordered routing (the routing is minimal in each dimension,
// so the hop count equals the wraparound Manhattan distance).
func (t Torus) Hops(a, b Coord) int {
	return wrapDist(a.X, b.X, t.DX) + wrapDist(a.Y, b.Y, t.DY) + wrapDist(a.Z, b.Z, t.DZ)
}

// Route returns the sequence of coordinates visited by dimension-ordered
// (X then Y then Z) minimal routing from a to b, including both
// endpoints. It is used by tests and by link-contention accounting.
func (t Torus) Route(a, b Coord) []Coord {
	path := []Coord{a}
	cur := a
	step := func(cur, dst, d int) int {
		if cur == dst {
			return cur
		}
		fwd := dst - cur
		if fwd < 0 {
			fwd += d
		}
		// fwd hops going +1, d-fwd hops going -1; take the shorter way.
		if fwd <= d-fwd {
			return (cur + 1) % d
		}
		return (cur - 1 + d) % d
	}
	for cur.X != b.X {
		cur.X = step(cur.X, b.X, t.DX)
		path = append(path, cur)
	}
	for cur.Y != b.Y {
		cur.Y = step(cur.Y, b.Y, t.DY)
		path = append(path, cur)
	}
	for cur.Z != b.Z {
		cur.Z = step(cur.Z, b.Z, t.DZ)
		path = append(path, cur)
	}
	return path
}

// Bisection returns the number of links crossing the smallest bisection
// of the torus (cut perpendicular to the longest dimension; two links
// per node pair because of wraparound).
func (t Torus) Bisection() int {
	maxDim := t.DX
	area := t.DY * t.DZ
	if t.DY > maxDim {
		maxDim = t.DY
		area = t.DX * t.DZ
	}
	if t.DZ > maxDim {
		area = t.DX * t.DY
	}
	if maxDim <= 2 {
		// Wraparound degenerates: every "cut" link is also a direct link.
		return area * maxDim / 2 * 2
	}
	return 2 * area
}

func (t Torus) String() string {
	return fmt.Sprintf("%dx%dx%d torus", t.DX, t.DY, t.DZ)
}
