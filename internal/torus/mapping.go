package torus

import "fmt"

// A Mapping places each of P logical ranks at a coordinate on a torus.
// The BFS layers above only ever ask for hop counts between ranks, so a
// mapping is just the rank -> coordinate table plus its provenance.
type Mapping struct {
	Torus  Torus
	Coords []Coord // Coords[rank]
	Name   string
}

// Hops returns the torus hop distance between two ranks.
func (m *Mapping) Hops(a, b int) int {
	return m.Torus.Hops(m.Coords[a], m.Coords[b])
}

// Validate checks that the mapping is injective and in-bounds.
func (m *Mapping) Validate() error {
	seen := make(map[Coord]int, len(m.Coords))
	for r, c := range m.Coords {
		if !m.Torus.Contains(c) {
			return fmt.Errorf("torus mapping %q: rank %d at %v outside %v", m.Name, r, c, m.Torus)
		}
		if prev, dup := seen[c]; dup {
			return fmt.Errorf("torus mapping %q: ranks %d and %d share coordinate %v", m.Name, prev, r, c)
		}
		seen[c] = r
	}
	return nil
}

// RowMajor maps rank ids onto the torus in plain row-major order
// (X fastest, then Y, then Z). It ignores the logical 2D array structure
// and serves as the baseline for the mapping ablation.
func RowMajor(t Torus, p int) (*Mapping, error) {
	if p > t.Nodes() {
		return nil, fmt.Errorf("torus: %d ranks do not fit on %v", p, t)
	}
	coords := make([]Coord, p)
	for r := 0; r < p; r++ {
		coords[r] = Coord{
			X: r % t.DX,
			Y: (r / t.DX) % t.DY,
			Z: r / (t.DX * t.DY),
		}
	}
	return &Mapping{Torus: t, Coords: coords, Name: "row-major"}, nil
}

// Planes implements the task mapping of Figure 1: an Lx-by-Ly logical
// processor array (Lx = R rows, Ly = C columns; rank = i*Ly + j) is cut
// into wc-by-wr tiles, and each tile becomes one Z-plane of the torus.
// Tiles that are vertically adjacent in the logical array (same tile
// column) land on adjacent physical planes, so the expand operation
// (processor-column communication) runs between neighbouring planes
// while the fold operation (processor-row) runs inside plane-local rows
// spread across plane groups.
//
// wr must divide Lx and wc must divide Ly; the torus must be exactly
// wc x wr x (Lx*Ly)/(wc*wr).
func Planes(t Torus, lx, ly int) (*Mapping, error) {
	if lx <= 0 || ly <= 0 {
		return nil, fmt.Errorf("torus: logical array must be positive, got %dx%d", lx, ly)
	}
	wc, wr := t.DX, t.DY
	if lx%wr != 0 || ly%wc != 0 {
		return nil, fmt.Errorf("torus: %dx%d logical array not tileable by %dx%d planes", lx, ly, wc, wr)
	}
	tilesDown := lx / wr   // tile rows in the logical array
	tilesAcross := ly / wc // tile columns in the logical array
	if tilesDown*tilesAcross != t.DZ {
		return nil, fmt.Errorf("torus: need %d planes for %dx%d array on %dx%d tiles, torus has %d",
			tilesDown*tilesAcross, lx, ly, wc, wr, t.DZ)
	}
	coords := make([]Coord, lx*ly)
	for i := 0; i < lx; i++ {
		for j := 0; j < ly; j++ {
			tileRow, inRow := i/wr, i%wr
			tileCol, inCol := j/wc, j%wc
			// Tiles in the same tile-column occupy consecutive planes so
			// that column (expand) traffic crosses adjacent planes.
			plane := tileCol*tilesDown + tileRow
			coords[i*ly+j] = Coord{X: inCol, Y: inRow, Z: plane}
		}
	}
	return &Mapping{Torus: t, Coords: coords, Name: "planes"}, nil
}

// FitTorus picks torus dimensions that hold p nodes, preferring shapes
// close to the BlueGene/L aspect (X twice Y and Z). Used when the caller
// does not specify a torus explicitly.
func FitTorus(p int) Torus {
	if p <= 0 {
		return Torus{DX: 1, DY: 1, DZ: 1}
	}
	// Find dz <= dy <= dx with dx*dy*dz >= p and product minimal,
	// scanning near-cubic factorizations.
	best := Torus{DX: p, DY: 1, DZ: 1}
	bestWaste := best.Nodes() - p
	bestSkew := best.DX - best.DZ
	for dz := 1; dz*dz*dz <= p*4; dz++ {
		for dy := dz; dy*dy <= p*2/dz+1; dy++ {
			dx := (p + dy*dz - 1) / (dy * dz)
			if dx < dy {
				dx = dy
			}
			cand := Torus{DX: dx, DY: dy, DZ: dz}
			waste := cand.Nodes() - p
			skew := cand.DX - cand.DZ
			if waste < bestWaste || (waste == bestWaste && skew < bestSkew) {
				best, bestWaste, bestSkew = cand, waste, skew
			}
		}
	}
	return best
}
