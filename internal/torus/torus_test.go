package torus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 4); err == nil {
		t.Fatal("expected error for zero dimension")
	}
	if _, err := New(4, -1, 4); err == nil {
		t.Fatal("expected error for negative dimension")
	}
	tor, err := New(4, 2, 3)
	if err != nil {
		t.Fatalf("New(4,2,3): %v", err)
	}
	if got := tor.Nodes(); got != 24 {
		t.Fatalf("Nodes = %d, want 24", got)
	}
}

func TestWrapDist(t *testing.T) {
	cases := []struct{ a, b, d, want int }{
		{0, 0, 8, 0},
		{0, 1, 8, 1},
		{0, 7, 8, 1}, // wraparound
		{0, 4, 8, 4},
		{2, 6, 8, 4},
		{1, 6, 8, 3},
		{0, 0, 1, 0},
	}
	for _, c := range cases {
		if got := wrapDist(c.a, c.b, c.d); got != c.want {
			t.Errorf("wrapDist(%d,%d,%d) = %d, want %d", c.a, c.b, c.d, got, c.want)
		}
	}
}

func TestHopsSymmetricAndTriangle(t *testing.T) {
	tor := MustNew(5, 4, 3)
	rng := rand.New(rand.NewSource(1))
	randCoord := func() Coord {
		return Coord{rng.Intn(tor.DX), rng.Intn(tor.DY), rng.Intn(tor.DZ)}
	}
	for i := 0; i < 500; i++ {
		a, b, c := randCoord(), randCoord(), randCoord()
		if tor.Hops(a, b) != tor.Hops(b, a) {
			t.Fatalf("Hops not symmetric for %v,%v", a, b)
		}
		if tor.Hops(a, a) != 0 {
			t.Fatalf("Hops(a,a) != 0 for %v", a)
		}
		if tor.Hops(a, c) > tor.Hops(a, b)+tor.Hops(b, c) {
			t.Fatalf("triangle inequality violated for %v,%v,%v", a, b, c)
		}
	}
}

func TestRouteMatchesHops(t *testing.T) {
	tor := MustNew(6, 3, 2)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		a := Coord{rng.Intn(tor.DX), rng.Intn(tor.DY), rng.Intn(tor.DZ)}
		b := Coord{rng.Intn(tor.DX), rng.Intn(tor.DY), rng.Intn(tor.DZ)}
		path := tor.Route(a, b)
		if path[0] != a || path[len(path)-1] != b {
			t.Fatalf("route endpoints wrong: %v", path)
		}
		if got, want := len(path)-1, tor.Hops(a, b); got != want {
			t.Fatalf("route length %d != hops %d for %v->%v", got, want, a, b)
		}
		for s := 1; s < len(path); s++ {
			if tor.Hops(path[s-1], path[s]) != 1 {
				t.Fatalf("route step %v->%v is not one hop", path[s-1], path[s])
			}
		}
	}
}

func TestRowMajorMapping(t *testing.T) {
	tor := MustNew(4, 4, 2)
	m, err := RowMajor(tor, 32)
	if err != nil {
		t.Fatalf("RowMajor: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.Coords[0] != (Coord{0, 0, 0}) {
		t.Errorf("rank 0 at %v, want origin", m.Coords[0])
	}
	if m.Coords[5] != (Coord{1, 1, 0}) {
		t.Errorf("rank 5 at %v, want {1,1,0}", m.Coords[5])
	}
	if _, err := RowMajor(tor, 33); err == nil {
		t.Error("expected error when ranks exceed torus size")
	}
}

func TestPlanesMappingFigure1(t *testing.T) {
	// The Figure 1 example: Lx x Ly logical array onto a wc x wr x 4
	// torus. Use Lx=4 (R), Ly=6 (C) with 3x2 tiles -> 4 planes.
	tor := MustNew(3, 2, 4)
	m, err := Planes(tor, 4, 6)
	if err != nil {
		t.Fatalf("Planes: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Ranks in the same logical column but adjacent tile rows must land
	// on adjacent planes (that is the point of the Figure 1 mapping).
	ly := 6
	for j := 0; j < ly; j++ {
		a := m.Coords[1*ly+j] // logical row 1, last row of tile row 0
		b := m.Coords[2*ly+j] // logical row 2, first row of tile row 1
		if dz := wrapDist(a.Z, b.Z, tor.DZ); dz != 1 {
			t.Errorf("column %d: tile-adjacent rows on planes %d,%d (dz=%d), want adjacent",
				j, a.Z, b.Z, dz)
		}
	}
	// Ranks inside one tile stay on one plane.
	if m.Coords[0].Z != m.Coords[1].Z || m.Coords[0].Z != m.Coords[ly].Z {
		t.Error("ranks of one tile not coplanar")
	}
}

func TestPlanesMappingErrors(t *testing.T) {
	tor := MustNew(3, 2, 4)
	if _, err := Planes(tor, 5, 6); err == nil {
		t.Error("expected tiling error for 5x6 on 3x2 tiles")
	}
	if _, err := Planes(tor, 4, 3); err == nil {
		t.Error("expected tiling error for 4x3 on width-3 tiles")
	}
	if _, err := Planes(MustNew(3, 2, 5), 4, 6); err == nil {
		t.Error("expected plane-count mismatch error")
	}
	if _, err := Planes(tor, 0, 6); err == nil {
		t.Error("expected error for non-positive logical array")
	}
}

func TestPlanesExpandCheaperThanRowMajor(t *testing.T) {
	// The Figure 1 mapping exists to make column (expand) communication
	// local: total hop count over all column pairs should not exceed the
	// row-major placement's.
	lx, ly := 8, 8
	tor := MustNew(4, 4, 4)
	planes, err := Planes(tor, lx, ly)
	if err != nil {
		t.Fatalf("Planes: %v", err)
	}
	rowMajor, err := RowMajor(tor, lx*ly)
	if err != nil {
		t.Fatalf("RowMajor: %v", err)
	}
	colHops := func(m *Mapping) int {
		total := 0
		for j := 0; j < ly; j++ {
			for i1 := 0; i1 < lx; i1++ {
				for i2 := 0; i2 < lx; i2++ {
					if i1 != i2 {
						total += m.Hops(i1*ly+j, i2*ly+j)
					}
				}
			}
		}
		return total
	}
	if ph, rh := colHops(planes), colHops(rowMajor); ph > rh {
		t.Errorf("planes mapping column hops %d > row-major %d", ph, rh)
	}
}

func TestFitTorus(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16, 64, 100, 256, 400, 1000} {
		tor := FitTorus(p)
		if tor.Nodes() < p {
			t.Errorf("FitTorus(%d) = %v holds only %d nodes", p, tor, tor.Nodes())
		}
		if tor.Nodes() > 2*p && p > 2 {
			t.Errorf("FitTorus(%d) = %v wastes too much (%d nodes)", p, tor, tor.Nodes())
		}
	}
	if FitTorus(0).Nodes() != 1 {
		t.Error("FitTorus(0) should degenerate to a single node")
	}
}

func TestBisection(t *testing.T) {
	if got := MustNew(8, 4, 4).Bisection(); got != 32 {
		t.Errorf("Bisection 8x4x4 = %d, want 32", got)
	}
	if got := MustNew(2, 1, 1).Bisection(); got != 2 {
		t.Errorf("Bisection 2x1x1 = %d, want 2", got)
	}
}

func TestCostModelTransit(t *testing.T) {
	m := PresetBlueGeneL()
	zero := m.Transit(0, 0)
	if zero != 0 {
		t.Errorf("Transit(0,0) = %g, want 0", zero)
	}
	// Monotone in both arguments.
	if m.Transit(2, 100) <= m.Transit(1, 100) {
		t.Error("Transit not monotone in hops")
	}
	if m.Transit(1, 200) <= m.Transit(1, 100) {
		t.Error("Transit not monotone in bytes")
	}
	c := PresetCluster()
	if c.Transit(5, 0) != 0 {
		t.Error("cluster preset should be hop-insensitive")
	}
}

func TestHopsQuick(t *testing.T) {
	tor := MustNew(7, 5, 3)
	f := func(ax, ay, az, bx, by, bz uint8) bool {
		a := Coord{int(ax) % tor.DX, int(ay) % tor.DY, int(az) % tor.DZ}
		b := Coord{int(bx) % tor.DX, int(by) % tor.DY, int(bz) % tor.DZ}
		h := tor.Hops(a, b)
		maxH := tor.DX/2 + tor.DY/2 + tor.DZ/2
		return h >= 0 && h <= maxH && h == tor.Hops(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoreAndForwardTransit(t *testing.T) {
	m := PresetBlueGeneL()
	cut := m.Transit(4, 10000)
	m.StoreAndForward = true
	saf := m.Transit(4, 10000)
	if saf <= cut {
		t.Errorf("store-and-forward %g not above cut-through %g for multi-hop", saf, cut)
	}
	if m.Transit(1, 10000) != PresetBlueGeneL().Transit(1, 10000) {
		t.Error("single-hop transit must match cut-through")
	}
}
