// Package pool provides the per-rank worker pool behind the engines'
// intra-rank parallelism. A Pool runs the body of a hot local loop —
// top-down scans, bottom-up edge checks, hybrid chunk encode/decode,
// Δ-stepping relaxations — over fixed-width chunks of an index range.
//
// The determinism contract: chunk boundaries depend only on (n, grain),
// never on the worker count or the scheduler, so callers that collect
// per-chunk outputs and concatenate them in chunk order reproduce the
// serial loop's output byte for byte. Workers claim chunks dynamically
// (an atomic counter), which balances skewed edge lists without
// affecting the merge order.
package pool

import (
	"sync"
	"sync/atomic"
)

// Pool schedules chunked loops over a fixed number of workers. The nil
// pool and any pool with one worker run every chunk inline on the
// caller's goroutine, spawning nothing — that is the serial engine,
// byte for byte.
type Pool struct {
	workers int
}

// New returns a pool that runs loop bodies on up to workers goroutines.
// Values below 1 are treated as 1 (serial).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's worker count; the nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Chunks returns the number of fixed-width chunks covering [0, n) at
// the given grain. Grains below 1 are treated as 1.
func Chunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// Run partitions [0, n) into chunks of grain items and calls
// fn(chunk, lo, hi) exactly once per chunk. Boundaries are a pure
// function of (n, grain). With one worker — or one chunk — the chunks
// run inline in ascending order; otherwise workers claim chunks from a
// shared atomic counter, so fn must only touch per-chunk state (or
// synchronize itself, e.g. CAS-claimed visit bitmaps). fn must never
// touch the simulated clock: charges are computed by the caller from
// the merged totals. A panic inside fn is re-raised on the caller's
// goroutine once every worker has stopped.
func (p *Pool) Run(n, grain int, fn func(chunk, lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	nc := Chunks(n, grain)
	if nc == 0 {
		return
	}
	w := p.Workers()
	if w > nc {
		w = nc
	}
	if w <= 1 {
		for c := 0; c < nc; c++ {
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(c, lo, hi)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, poolPanic{r})
				}
			}()
			for {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r.(poolPanic).val)
	}
}

// poolPanic wraps a recovered value so atomic.Value accepts any
// (possibly non-comparable) panic payload under one concrete type.
type poolPanic struct{ val any }
