package pool

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// Every chunk must be visited exactly once, boundaries must tile [0, n)
// exactly, and chunk ids must match lo/grain — for any worker count.
func TestRunCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8} {
		for _, n := range []int{0, 1, 5, 64, 1000, 4097} {
			for _, grain := range []int{1, 7, 64, 4096} {
				p := New(workers)
				seen := make([]int32, n)
				var chunks atomic.Int64
				p.Run(n, grain, func(chunk, lo, hi int) {
					chunks.Add(1)
					if lo != chunk*grain {
						t.Errorf("chunk %d: lo=%d want %d", chunk, lo, chunk*grain)
					}
					if hi < lo || hi > n {
						t.Errorf("chunk %d: bad hi=%d (lo=%d n=%d)", chunk, hi, lo, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&seen[i], 1)
					}
				})
				if got, want := int(chunks.Load()), Chunks(n, grain); got != want {
					t.Fatalf("workers=%d n=%d grain=%d: %d chunks, want %d", workers, n, grain, got, want)
				}
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, c)
					}
				}
			}
		}
	}
}

// Per-chunk outputs concatenated in chunk order must be identical for
// every worker count — the determinism contract the engines rely on.
func TestOrderedMergeIsWorkerCountIndependent(t *testing.T) {
	const n, grain = 10000, 256
	merge := func(workers int) []int {
		p := New(workers)
		nc := Chunks(n, grain)
		parts := make([][]int, nc)
		p.Run(n, grain, func(chunk, lo, hi int) {
			for i := lo; i < hi; i++ {
				if i%3 == 0 {
					parts[chunk] = append(parts[chunk], i)
				}
			}
		})
		var out []int
		for _, part := range parts {
			out = append(out, part...)
		}
		return out
	}
	want := merge(1)
	for _, workers := range []int{2, 4, 8} {
		if got := merge(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: merged output differs from serial", workers)
		}
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", p.Workers())
	}
	sum := 0
	p.Run(10, 4, func(chunk, lo, hi int) { sum += hi - lo }) // data race here would fail under -race if not inline
	if sum != 10 {
		t.Fatalf("nil pool covered %d items, want 10", sum)
	}
}

func TestPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			p.Run(100, 10, func(chunk, lo, hi int) {
				if chunk == 3 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: Run returned instead of panicking", workers)
		}()
	}
}

func TestChunksEdgeCases(t *testing.T) {
	cases := []struct{ n, grain, want int }{
		{0, 10, 0}, {-5, 10, 0}, {1, 10, 1}, {10, 10, 1}, {11, 10, 2}, {10, 0, 10},
	}
	for _, c := range cases {
		if got := Chunks(c.n, c.grain); got != c.want {
			t.Errorf("Chunks(%d, %d) = %d, want %d", c.n, c.grain, got, c.want)
		}
	}
}
