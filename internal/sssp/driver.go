package sssp

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/localindex"
	"repro/internal/partition"
	"repro/internal/search"
)

// engine abstracts one rank's partitioned storage for relaxation
// rounds; the bucket bookkeeping and phase schedule below are shared
// between the 1D and 2D implementations.
type engine interface {
	comm() *comm.Comm
	ownedRange() (lo graph.Vertex, n int)
	universe() int
	// maxWeight returns the largest local edge weight (1 if none).
	maxWeight() uint32
	// localEdgeEntries counts local edge-list entries (the degree
	// estimate feeding the default-Δ heuristic).
	localEdgeEntries() int
	// scatter relaxes the selected class of edges (light: w <= Δ,
	// heavy: w > Δ) out of the active owned vertices, exchanges the
	// requests, and returns the ones owned by this rank, deduplicated
	// to the minimum distance per vertex.
	scatter(vs, ds []uint32, light bool, delta uint32, tag int, rec *epochRec) (rvs, rds []uint32)
	// fingerprint identifies the engine's partitioned workload (graph
	// size, mesh shape) for checkpoint compatibility checks.
	fingerprint() uint64
}

// rankState is one rank's Δ-stepping search state.
type rankState struct {
	lo    uint32
	n     int
	opts  Options
	D     []uint32 // tentative distances of owned vertices
	delta uint32
	// buckets maps bucket index -> member set. Members whose distance
	// has since improved to another bucket are stale and filtered
	// lazily; a drained bucket is deleted.
	buckets map[uint32]frontier.Frontier
	// settled marks owned vertices already relaxed during the current
	// bucket (their light edges were expanded); a vertex relaxed again
	// in the same bucket is a re-settle.
	settled *localindex.Bitset
	// removed collects, in drain order, the distinct vertices the
	// current bucket settled — the heavy phase's active set.
	removed []uint32
}

func (s *rankState) bucketOfDist(d uint32) uint32 { return bucketOf(d, s.delta) }

// insert places an owned vertex in the bucket of its (new) distance.
func (s *rankState) insert(gv uint32, d uint32) {
	b := s.bucketOfDist(d)
	f, ok := s.buckets[b]
	if !ok {
		f = s.opts.NewFrontier(s.lo, s.n)
		s.buckets[b] = f
	}
	f.Add(gv)
}

// localMinBucket returns the smallest bucket index with a live member
// (noBucket if none), deleting the fully-stale buckets below it. The
// indices are scanned in ascending order — not map order — so the
// scanned-item count, and therefore the simulated clock it is charged
// to, is determined by the input alone.
const noBucket = uint64(math.MaxUint64)

func (s *rankState) localMinBucket() (min uint64, scanned int) {
	min = noBucket
	idxs := make([]uint32, 0, len(s.buckets))
	for idx := range s.buckets {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		f := s.buckets[idx]
		live := false
		for _, gv := range f.Vertices() {
			scanned++
			if s.bucketOfDist(s.D[gv-s.lo]) == idx {
				live = true
				break
			}
		}
		if live {
			return uint64(idx), scanned // ascending: first live is the min
		}
		delete(s.buckets, idx)
	}
	return min, scanned
}

// drain removes bucket k and returns its live members ascending.
func (s *rankState) drain(k uint32) []uint32 {
	f, ok := s.buckets[k]
	if !ok {
		return nil
	}
	delete(s.buckets, k)
	var out []uint32
	f.Iterate(func(gv uint32) {
		if s.bucketOfDist(s.D[gv-s.lo]) == k {
			out = append(out, gv)
		}
	})
	return out
}

// distsOf gathers the current distances of an active list.
func (s *rankState) distsOf(vs []uint32) []uint32 {
	ds := make([]uint32, len(vs))
	for i, gv := range vs {
		ds[i] = s.D[gv-s.lo]
	}
	return ds
}

// settle marks the active list as relaxed within the current bucket,
// counting re-settles and extending the heavy-phase removed set.
func (s *rankState) settle(vs []uint32, rec *epochRec) {
	for _, gv := range vs {
		if s.settled.TestAndSet(gv - s.lo) {
			rec.resettles++
		} else {
			s.removed = append(s.removed, gv)
		}
	}
}

// apply processes the relax requests delivered to this rank: every
// improvement updates the distance and re-buckets the vertex. It
// returns the vertices whose new distance lands back in bucket k (the
// next light sub-round's active set, ascending — requests arrive
// deduplicated and sorted).
func (s *rankState) apply(rvs, rds []uint32, k uint32, rec *epochRec) []uint32 {
	var again []uint32
	for i, gv := range rvs {
		li := gv - s.lo
		if rds[i] >= s.D[li] {
			continue
		}
		s.D[li] = rds[i]
		rec.relax++
		if b := s.bucketOfDist(rds[i]); b == k {
			again = append(again, gv)
		} else {
			s.insert(gv, rds[i])
		}
	}
	return again
}

// checkCancel polls the cooperative cancellation hook at an epoch
// boundary and reduces the verdict so every rank agrees. A nil hook
// costs nothing.
func checkCancel(opts Options, c *comm.Comm, done int) *search.Canceled {
	if opts.Cancel == nil {
		return nil
	}
	cause := opts.Cancel(c.Clock())
	if !c.AllReduceOr(cause != nil) {
		return nil
	}
	return &search.Canceled{Unit: "epoch", Done: done, Cause: cause}
}

// runRank executes the Δ-stepping schedule on one rank. All control
// decisions (bucket choice, loop exits, Δ, cancellation) are globally
// reduced, so every rank runs the same epoch sequence. A non-nil
// *search.Canceled return means the run stopped cooperatively with the
// state holding partial tentative distances.
func runRank(e engine, opts Options) ([]epochRec, *rankState, *search.Canceled) {
	c := e.comm()
	model := c.Model()
	lo, n := e.ownedRange()
	st := &rankState{
		lo:      uint32(lo),
		n:       n,
		opts:    opts,
		D:       make([]uint32, n),
		buckets: map[uint32]frontier.Frontier{},
		settled: localindex.NewBitset(n),
	}
	var recs []epochRec
	var allLight bool
	tagSeq := 0
	if opts.Restore != nil {
		// Resume from a snapshot: load the distances, buckets, Δ, and
		// transport state and skip the charged initialization (its cost
		// lives in the restored ledgers).
		if err := opts.Restore.Check("sssp", c.Size(), runFingerprint(e, opts, c.Size())); err != nil {
			panic(err.Error())
		}
		recs, allLight, tagSeq = restoreEpochBlob(c, st, opts.Restore.Blobs[c.Rank()])
	} else {
		for i := range st.D {
			st.D[i] = graph.MaxDist
		}

		// Effective Δ: the requested width, or max(1, maxW/avgDegree).
		maxW := uint32(c.AllReduceMax(uint64(e.maxWeight())))
		st.delta = opts.Delta
		if st.delta == 0 {
			entries := c.AllReduceSum(uint64(e.localEdgeEntries())) // 2m
			avgDeg := entries / uint64(max(1, e.universe()))
			if avgDeg < 1 {
				avgDeg = 1
			}
			st.delta = maxW / uint32(avgDeg)
			if st.delta < 1 {
				st.delta = 1
			}
		}
		// With every edge light the heavy phases are empty; skip them
		// (uniformly — maxW and Δ are global).
		allLight = st.delta == DeltaInf || maxW <= st.delta

		if opts.Source >= lo && opts.Source < lo+graph.Vertex(n) {
			st.D[opts.Source-lo] = 0
			st.insert(uint32(opts.Source), 0)
		}
	}
	for {
		if opts.Checkpoint.Enabled() && opts.Restore == nil && len(recs) >= opts.Checkpoint.At {
			// Halt at the first bucket boundary with >= At completed
			// epochs: every rank has appended the same number of records,
			// so the condition fires uniformly, and the per-bucket
			// scratch state (settled, removed, active) is dead here.
			opts.Checkpoint.Put("sssp", opts.Checkpoint.At, c.Size(), c.Rank(),
				runFingerprint(e, opts, c.Size()),
				saveEpochBlob(c, st, recs, allLight, tagSeq))
			return recs, st, nil
		}
		if cxl := checkCancel(opts, c, len(recs)); cxl != nil {
			return recs, st, cxl
		}
		min, scanned := st.localMinBucket()
		c.ChargeItems(scanned, model.VertexCost)
		k64 := c.AllReduceMin(min)
		if k64 == noBucket {
			return recs, st, nil
		}
		k := uint32(k64)
		active := st.drain(k)
		st.settled = localindex.NewBitset(n)
		st.removed = st.removed[:0]
		for {
			if cxl := checkCancel(opts, c, len(recs)); cxl != nil {
				return recs, st, cxl
			}
			if c.AllReduceSum(uint64(len(active))) == 0 {
				break
			}
			rec := epochRec{bucket: k, phase: PhaseLight, active: len(active)}
			tme := newEpochTimer(c, &rec)
			st.settle(active, &rec)
			rvs, rds := e.scatter(active, st.distsOf(active), true, st.delta, tagSeq*64, &rec)
			tagSeq++
			c.ChargeItems(len(rvs), model.VertexCost)
			active = st.apply(rvs, rds, k, &rec)
			tme.record(&rec)
			recs = append(recs, rec)
		}
		if !allLight {
			heavy := append([]uint32(nil), st.removed...)
			heavy, _ = localindex.SortSet(heavy)
			rec := epochRec{bucket: k, phase: PhaseHeavy, active: len(heavy)}
			tme := newEpochTimer(c, &rec)
			rvs, rds := e.scatter(heavy, st.distsOf(heavy), false, st.delta, tagSeq*64, &rec)
			tagSeq++
			c.ChargeItems(len(rvs), model.VertexCost)
			st.apply(rvs, rds, k, &rec) // heavy targets always land in later buckets
			tme.record(&rec)
			recs = append(recs, rec)
		}
	}
}

// countBuckets derives the drained-bucket count from an epoch trace:
// one per distinct (bucket, first-epoch) run.
func countBuckets(recs []EpochStats) int {
	n := 0
	for i, r := range recs {
		if i == 0 || r.Bucket != recs[i-1].Bucket {
			n++
		}
	}
	return n
}

// validate checks shared run inputs.
func validate(p int, worldP, n int, opts Options) error {
	if p == 0 {
		return fmt.Errorf("sssp: no stores")
	}
	if p != worldP {
		return fmt.Errorf("sssp: %d stores for world P=%d", p, worldP)
	}
	if int(opts.Source) >= n {
		return fmt.Errorf("sssp: source %d out of range for n=%d", opts.Source, n)
	}
	return nil
}

// Run2D executes distributed Δ-stepping over the 2D edge partitioning
// (or, with a degenerate mesh, either 1D partitioning of Table 1).
// Unweighted stores run with unit weights.
func Run2D(w *comm.World, stores []*partition.Store2D, opts Options) (*Result, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("sssp: no stores")
	}
	l := stores[0].Layout
	if err := validate(len(stores), w.P, l.N, opts); err != nil {
		return nil, err
	}
	if l.P() != w.P {
		return nil, fmt.Errorf("sssp: layout P=%d for world P=%d", l.P(), w.P)
	}
	if err := validateRobustness(opts); err != nil {
		return nil, err
	}
	res := &Result{N: l.N, R: l.R, C: l.C}
	perRank := make([][]epochRec, w.P)
	dists := make([][]uint32, w.P)
	deltas := make([]uint32, w.P)
	w.SetTrace(opts.Trace)
	defer w.SetTrace(nil)
	w.SetFault(opts.Fault)
	defer w.SetFault(nil)
	start := time.Now()
	cancels := make([]*search.Canceled, w.P)
	comms, err := w.Run(func(c *comm.Comm) {
		e := newEngine2D(c, stores[c.Rank()], opts)
		recs, st, cxl := runRank(e, opts)
		perRank[c.Rank()] = recs
		dists[c.Rank()] = st.D
		deltas[c.Rank()] = st.delta
		cancels[c.Rank()] = cxl
	})
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	res.Delta = deltas[0]
	mergeStats(res, perRank, comms)
	res.BucketsDrained = countBuckets(res.PerEpoch)
	res.Dist = make([]uint32, l.N)
	for r, st := range stores {
		copy(res.Dist[int(st.Lo):int(st.Lo)+st.OwnedCount()], dists[r])
	}
	publishMetrics(opts.Metrics, res)
	if cxl := search.MergeCanceled(cancels); cxl != nil {
		return res, cxl
	}
	return res, nil
}

// Run1D executes distributed Δ-stepping over the dedicated 1D engine.
func Run1D(w *comm.World, stores []*partition.Store1D, opts Options) (*Result, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("sssp: no stores")
	}
	l := stores[0].Layout
	if err := validate(len(stores), w.P, l.N, opts); err != nil {
		return nil, err
	}
	if l.P != w.P {
		return nil, fmt.Errorf("sssp: layout P=%d for world P=%d", l.P, w.P)
	}
	if err := validateRobustness(opts); err != nil {
		return nil, err
	}
	res := &Result{N: l.N, R: 1, C: l.P}
	perRank := make([][]epochRec, w.P)
	dists := make([][]uint32, w.P)
	deltas := make([]uint32, w.P)
	w.SetTrace(opts.Trace)
	defer w.SetTrace(nil)
	w.SetFault(opts.Fault)
	defer w.SetFault(nil)
	start := time.Now()
	cancels := make([]*search.Canceled, w.P)
	comms, err := w.Run(func(c *comm.Comm) {
		e := newEngine1D(c, stores[c.Rank()], opts)
		recs, st, cxl := runRank(e, opts)
		perRank[c.Rank()] = recs
		dists[c.Rank()] = st.D
		deltas[c.Rank()] = st.delta
		cancels[c.Rank()] = cxl
	})
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	res.Delta = deltas[0]
	mergeStats(res, perRank, comms)
	res.BucketsDrained = countBuckets(res.PerEpoch)
	res.Dist = make([]uint32, l.N)
	for r, st := range stores {
		copy(res.Dist[int(st.Lo):int(st.Lo)+st.OwnedCount()], dists[r])
	}
	publishMetrics(opts.Metrics, res)
	if cxl := search.MergeCanceled(cancels); cxl != nil {
		return res, cxl
	}
	return res, nil
}
