package sssp

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/partition"
)

// fixture distributes one weighted graph over a mesh with a world.
type fixture struct {
	g      *graph.CSR
	stores []*partition.Store2D
	world  *comm.World
	src    graph.Vertex
}

func build2D(t testing.TB, g *graph.CSR, r, c int) *fixture {
	t.Helper()
	l, err := partition.NewLayout2D(g.N, r, c)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := partition.Build2DWeighted(l, g.VisitWeightedEdges)
	if err != nil {
		t.Fatal(err)
	}
	w, err := comm.NewWorld(comm.Config{P: r * c})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, stores: stores, world: w, src: graph.LargestComponentVertex(g)}
}

func build1D(t testing.TB, g *graph.CSR, p int) ([]*partition.Store1D, *comm.World) {
	t.Helper()
	l, err := partition.NewLayout1D(g.N, p)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := partition.Build1DWeighted(l, g.VisitWeightedEdges)
	if err != nil {
		t.Fatal(err)
	}
	w, err := comm.NewWorld(comm.Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	return stores, w
}

func poisson(t testing.TB, n int, k float64, seed int64, dist graph.WeightDist, maxW uint32) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateWeighted(graph.Params{N: n, K: k, Seed: seed},
		graph.WeightSpec{Dist: dist, MaxWeight: maxW, Seed: seed + 77})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkDist(t *testing.T, label string, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d distances, want %d", label, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: dist[%d] = %d, want %d", label, v, got[v], want[v])
		}
	}
}

var testMeshes = [][2]int{{1, 1}, {1, 4}, {4, 1}, {2, 2}, {4, 4}}

// TestDeltaSteppingMatchesDijkstraMeshesAndCodecs is the headline
// oracle-equivalence matrix: distributed Δ-stepping distances equal
// serial Dijkstra on a weighted Poisson graph, across every tested
// mesh shape and every wire codec.
func TestDeltaSteppingMatchesDijkstraMeshesAndCodecs(t *testing.T) {
	g := poisson(t, 1200, 6, 4, graph.WeightUniform, 60)
	want := graph.Dijkstra(g, graph.LargestComponentVertex(g))
	wires := []frontier.WireMode{frontier.WireSparse, frontier.WireDense, frontier.WireAuto, frontier.WireHybrid}
	for _, mesh := range testMeshes {
		fx := build2D(t, g, mesh[0], mesh[1])
		for _, wire := range wires {
			opts := DefaultOptions(fx.src)
			opts.Wire = wire
			res, err := Run2D(fx.world, fx.stores, opts)
			if err != nil {
				t.Fatal(err)
			}
			checkDist(t, fmt.Sprintf("mesh %dx%d wire %v", mesh[0], mesh[1], wire), res.Dist, want)
		}
	}
}

// TestDeltaSteppingDeltaLadderMatchesDijkstra pins correctness across
// bucket widths, from the Dijkstra-like extreme through interior Δ to
// the Bellman-Ford degenerate.
func TestDeltaSteppingDeltaLadderMatchesDijkstra(t *testing.T) {
	g := poisson(t, 900, 5, 6, graph.WeightExponential, 80)
	src := graph.LargestComponentVertex(g)
	want := graph.Dijkstra(g, src)
	fx := build2D(t, g, 2, 2)
	for _, delta := range []uint32{g.MinEdgeWeight(), 5, 20, g.MaxEdgeWeight(), DeltaInf} {
		opts := DefaultOptions(src)
		opts.Delta = delta
		res, err := Run2D(fx.world, fx.stores, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkDist(t, fmt.Sprintf("delta %d", delta), res.Dist, want)
		if res.Delta != delta {
			t.Fatalf("delta %d: result reports %d", delta, res.Delta)
		}
	}
}

// TestDeltaSteppingHandBuilt exercises hand-built weighted graphs
// whose shortest paths differ from their hop-counts, across all
// meshes (padding isolates the interesting structure from the block
// partition boundaries).
func TestDeltaSteppingHandBuilt(t *testing.T) {
	graphs := []struct {
		name    string
		n       int
		edges   [][2]graph.Vertex
		weights []uint32
		src     graph.Vertex
	}{
		{
			// Long direct edge loses to a three-hop detour.
			"detour", 16,
			[][2]graph.Vertex{{0, 9}, {0, 3}, {3, 6}, {6, 9}, {9, 12}},
			[]uint32{100, 10, 10, 10, 1},
			0,
		},
		{
			// Two routes meeting with equal weight; plus a far component.
			"tie", 12,
			[][2]graph.Vertex{{0, 1}, {1, 5}, {0, 4}, {4, 5}, {10, 11}},
			[]uint32{2, 3, 3, 2, 7},
			0,
		},
		{
			// Chain whose weights force repeated in-bucket re-settling
			// for large Δ: later relaxations improve earlier results.
			"resettle", 8,
			[][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {3, 4}, {4, 5}},
			[]uint32{1, 1, 1, 9, 1, 1},
			0,
		},
	}
	for _, tc := range graphs {
		g, err := graph.FromWeightedEdges(tc.n, tc.edges, tc.weights)
		if err != nil {
			t.Fatal(err)
		}
		want := graph.Dijkstra(g, tc.src)
		for _, mesh := range testMeshes {
			fx := build2D(t, g, mesh[0], mesh[1])
			for _, delta := range []uint32{1, 4, DeltaInf, 0} {
				opts := DefaultOptions(tc.src)
				opts.Delta = delta
				opts.Wire = frontier.WireHybrid
				res, err := Run2D(fx.world, fx.stores, opts)
				if err != nil {
					t.Fatal(err)
				}
				checkDist(t, fmt.Sprintf("%s mesh %dx%d delta %d", tc.name, mesh[0], mesh[1], delta), res.Dist, want)
			}
		}
	}
}

// TestDeltaStepping1DEngineMatchesOracle pins the dedicated 1D engine
// to the oracle and differentially to the 2D engine: identical
// distances AND identical global relaxation/re-settle/edge counts,
// because both partitionings deliver the same per-epoch request sets.
func TestDeltaStepping1DEngineMatchesOracle(t *testing.T) {
	g := poisson(t, 800, 6, 9, graph.WeightUniform, 40)
	src := graph.LargestComponentVertex(g)
	want := graph.Dijkstra(g, src)
	for _, p := range []int{1, 3, 4} {
		stores, w := build1D(t, g, p)
		for _, wire := range []frontier.WireMode{frontier.WireSparse, frontier.WireAuto, frontier.WireHybrid} {
			opts := DefaultOptions(src)
			opts.Wire = wire
			res, err := Run1D(w, stores, opts)
			if err != nil {
				t.Fatal(err)
			}
			checkDist(t, fmt.Sprintf("1D P=%d wire %v", p, wire), res.Dist, want)
		}
	}

	// Differential: 1D vs 2D column partitioning on equal Δ.
	stores1, w1 := build1D(t, g, 4)
	fx := build2D(t, g, 1, 4)
	opts := DefaultOptions(src)
	opts.Delta = 10
	r1, err := Run1D(w1, stores1, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run2D(fx.world, fx.stores, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkDist(t, "1D vs 2D", r1.Dist, r2.Dist)
	if r1.TotalRelaxations != r2.TotalRelaxations ||
		r1.TotalReSettles != r2.TotalReSettles ||
		r1.TotalEdgesScanned != r2.TotalEdgesScanned ||
		r1.Epochs != r2.Epochs {
		t.Fatalf("1D/2D trace divergence: relax %d/%d resettle %d/%d edges %d/%d epochs %d/%d",
			r1.TotalRelaxations, r2.TotalRelaxations, r1.TotalReSettles, r2.TotalReSettles,
			r1.TotalEdgesScanned, r2.TotalEdgesScanned, r1.Epochs, r2.Epochs)
	}
}

// TestUnitWeightsReproduceBFS: with unit weights, Δ-stepping is BFS —
// distances equal levels under any Δ, for weighted-unit stores and for
// plain unweighted stores (implicit weight 1).
func TestUnitWeightsReproduceBFS(t *testing.T) {
	params := graph.Params{N: 1500, K: 7, Seed: 12}
	unit, err := graph.GenerateWeighted(params, graph.WeightSpec{Dist: graph.WeightUnit, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestComponentVertex(unit)
	levels := graph.BFS(unit, src)
	for _, delta := range []uint32{1, 3, DeltaInf} {
		fx := build2D(t, unit, 2, 2)
		opts := DefaultOptions(src)
		opts.Delta = delta
		res, err := Run2D(fx.world, fx.stores, opts)
		if err != nil {
			t.Fatal(err)
		}
		for v, l := range levels {
			want := graph.MaxDist
			if l != graph.Unreached {
				want = uint32(l)
			}
			if res.Dist[v] != want {
				t.Fatalf("delta %d: dist[%d] = %d, want level %d", delta, v, res.Dist[v], l)
			}
		}
		if delta == 1 {
			// Δ=1 on unit weights: one bucket per BFS level, one light
			// round each, no re-settles, no heavy phases.
			if res.TotalReSettles != 0 {
				t.Fatalf("unit weights delta 1: %d re-settles", res.TotalReSettles)
			}
			maxLevel := int32(0)
			for _, l := range levels {
				if l > maxLevel {
					maxLevel = l
				}
			}
			if res.BucketsDrained != int(maxLevel)+1 {
				t.Fatalf("unit weights delta 1: drained %d buckets, want %d levels", res.BucketsDrained, maxLevel+1)
			}
		}
	}

	// Plain unweighted stores behave identically (implicit unit weights).
	plain, err := graph.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := partition.NewLayout2D(plain.N, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := partition.Build2D(l2, func(fn func(u, v graph.Vertex)) error {
		return plain.VisitWeightedEdges(func(u, v graph.Vertex, w uint32) { fn(u, v) })
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := comm.NewWorld(comm.Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run2D(w, stores, DefaultOptions(src))
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range levels {
		want := graph.MaxDist
		if l != graph.Unreached {
			want = uint32(l)
		}
		if res.Dist[v] != want {
			t.Fatalf("unweighted stores: dist[%d] = %d, want level %d", v, res.Dist[v], l)
		}
	}
}

// TestDeltaInfDegeneratesToBellmanFord: a single bucket whose light
// rounds are exactly the serial frontier Bellman-Ford epochs.
func TestDeltaInfDegeneratesToBellmanFord(t *testing.T) {
	g := poisson(t, 700, 5, 21, graph.WeightUniform, 50)
	src := graph.LargestComponentVertex(g)
	want, epochs := graph.BellmanFord(g, src)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(src)
	opts.Delta = DeltaInf
	res, err := Run2D(fx.world, fx.stores, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkDist(t, "delta=inf", res.Dist, want)
	if res.BucketsDrained != 1 {
		t.Fatalf("delta=inf drained %d buckets, want 1", res.BucketsDrained)
	}
	for _, es := range res.PerEpoch {
		if es.Phase != PhaseLight {
			t.Fatalf("delta=inf ran a %v phase", es.Phase)
		}
	}
	// The distributed trace runs the same relaxation waves as the
	// serial frontier Bellman-Ford, plus the final empty-check round
	// is absorbed into the loop exit (no epoch record).
	if res.Epochs != epochs {
		t.Fatalf("delta=inf ran %d epochs, serial Bellman-Ford %d", res.Epochs, epochs)
	}
}

// TestDeltaMinWeightSettlesLikeDijkstra: with Δ at (or below) the
// minimum edge weight no relaxation can land back in the open bucket,
// so nothing is ever re-settled — every bucket drains in one light
// round like Dijkstra settling a distance class.
func TestDeltaMinWeightSettlesLikeDijkstra(t *testing.T) {
	g := poisson(t, 700, 5, 22, graph.WeightUniform, 30)
	src := graph.LargestComponentVertex(g)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(src)
	opts.Delta = g.MinEdgeWeight()
	res, err := Run2D(fx.world, fx.stores, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkDist(t, "delta=minw", res.Dist, graph.Dijkstra(g, src))
	if res.TotalReSettles != 0 {
		t.Fatalf("delta=minw re-settled %d vertices, want 0", res.TotalReSettles)
	}
	lightRounds := map[uint32]int{}
	for _, es := range res.PerEpoch {
		if es.Phase == PhaseLight {
			lightRounds[es.Bucket]++
		}
	}
	for b, n := range lightRounds {
		if n != 1 {
			t.Fatalf("delta=minw bucket %d took %d light rounds, want 1", b, n)
		}
	}
}

// TestRelaxationMonotonicityAcrossDelta: wider buckets speculate
// more. Along a dyadic Δ ladder (each width dividing the next, so the
// bucket partitions nest), re-settles — the redundant re-relaxation
// work Δ-stepping trades for fewer epochs — never decrease as Δ grows,
// from exactly zero at Δ = min weight to their maximum at Δ = ∞; the
// drained-bucket count never increases; and the Bellman-Ford extreme
// applies at least as many relaxations as the Dijkstra-like extreme.
// (Applied relaxations alone are not monotone at the small-Δ end: the
// per-epoch minimum-merge absorbs multi-path improvements that
// Dijkstra-like settling applies across separate epochs.)
func TestRelaxationMonotonicityAcrossDelta(t *testing.T) {
	g := poisson(t, 900, 6, 23, graph.WeightUniform, 64)
	src := graph.LargestComponentVertex(g)
	fx := build2D(t, g, 2, 2)
	ladder := []uint32{g.MinEdgeWeight(), 4, 16, 64, DeltaInf}
	var prevRes, prevBuckets int64 = -1, 1 << 62
	var prevDelta uint32
	var first, last *Result
	for _, delta := range ladder {
		opts := DefaultOptions(src)
		opts.Delta = delta
		res, err := Run2D(fx.world, fx.stores, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalReSettles < prevRes {
			t.Fatalf("re-settles dropped from %d (delta %d) to %d (delta %d)",
				prevRes, prevDelta, res.TotalReSettles, delta)
		}
		if int64(res.BucketsDrained) > prevBuckets {
			t.Fatalf("buckets grew from %d (delta %d) to %d (delta %d)",
				prevBuckets, prevDelta, res.BucketsDrained, delta)
		}
		prevRes, prevBuckets, prevDelta = res.TotalReSettles, int64(res.BucketsDrained), delta
		if first == nil {
			first = res
		}
		last = res
	}
	if first.TotalReSettles != 0 {
		t.Fatalf("delta=minw re-settled %d vertices", first.TotalReSettles)
	}
	if last.TotalReSettles == 0 {
		t.Fatal("delta=inf re-settled nothing; ladder exercises no speculation")
	}
	if last.TotalRelaxations < first.TotalRelaxations {
		t.Fatalf("Bellman-Ford extreme applied %d relaxations, fewer than Dijkstra-like %d",
			last.TotalRelaxations, first.TotalRelaxations)
	}
}

// TestDeterministicSimulatedClock: identical inputs yield an
// identical simulated clock and epoch trace — the simulator's core
// contract. (This pins the bucket scan to a deterministic order; a
// map-order scan would jitter the charged items.)
func TestDeterministicSimulatedClock(t *testing.T) {
	g := poisson(t, 600, 5, 31, graph.WeightUniform, 50)
	src := graph.LargestComponentVertex(g)
	opts := DefaultOptions(src)
	opts.Delta = 12
	var first *Result
	for i := 0; i < 3; i++ {
		fx := build2D(t, g, 2, 2)
		res, err := Run2D(fx.world, fx.stores, opts)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if res.SimTime != first.SimTime || res.SimComm != first.SimComm {
			t.Fatalf("run %d: simulated clock drifted: %.9f/%.9f vs %.9f/%.9f",
				i, res.SimTime, res.SimComm, first.SimTime, first.SimComm)
		}
		if res.Epochs != first.Epochs || res.TotalRelaxations != first.TotalRelaxations {
			t.Fatalf("run %d: trace drifted: epochs %d vs %d, relax %d vs %d",
				i, res.Epochs, first.Epochs, res.TotalRelaxations, first.TotalRelaxations)
		}
	}
}

// TestSSSPValidation covers the error paths.
func TestSSSPValidation(t *testing.T) {
	g := poisson(t, 100, 3, 30, graph.WeightUniform, 10)
	fx := build2D(t, g, 2, 2)
	if _, err := Run2D(fx.world, fx.stores, DefaultOptions(graph.Vertex(g.N))); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := Run2D(fx.world, nil, DefaultOptions(0)); err == nil {
		t.Fatal("missing stores accepted")
	}
	w4, err := comm.NewWorld(comm.Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run2D(w4, fx.stores, DefaultOptions(0)); err == nil {
		t.Fatal("world/layout mismatch accepted")
	}
}

// TestSSSPIsolatedSource: a source with no edges terminates with only
// itself reached, on every mesh.
func TestSSSPIsolatedSource(t *testing.T) {
	g, err := graph.FromWeightedEdges(9, [][2]graph.Vertex{{1, 2}}, []uint32{5})
	if err != nil {
		t.Fatal(err)
	}
	for _, mesh := range testMeshes {
		fx := build2D(t, g, mesh[0], mesh[1])
		res, err := Run2D(fx.world, fx.stores, DefaultOptions(0))
		if err != nil {
			t.Fatal(err)
		}
		if res.Reached() != 1 || res.Dist[0] != 0 {
			t.Fatalf("mesh %v: reached %d, dist[0]=%d", mesh, res.Reached(), res.Dist[0])
		}
	}
}

// TestRequestCodecRoundTrip pins the relax-request payload format
// under every wire mode.
func TestRequestCodecRoundTrip(t *testing.T) {
	vs := []uint32{100, 101, 107, 130, 1000, 4095}
	ds := []uint32{3, 9, 12, 1, 77, 2}
	for _, mode := range []frontier.WireMode{frontier.WireSparse, frontier.WireDense, frontier.WireAuto, frontier.WireHybrid} {
		var h frontier.ContainerHist
		buf := encodeRequests(nil, vs, ds, 100, 4000, mode, &h)
		gvs, gds := decodeRequests(nil, buf)
		if len(gvs) != len(vs) {
			t.Fatalf("mode %v: %d vertices back, want %d", mode, len(gvs), len(vs))
		}
		for i := range vs {
			if gvs[i] != vs[i] || gds[i] != ds[i] {
				t.Fatalf("mode %v: pair %d = (%d,%d), want (%d,%d)", mode, i, gvs[i], gds[i], vs[i], ds[i])
			}
		}
		if h.Payloads() != 1 {
			t.Fatalf("mode %v: %d payloads tallied", mode, h.Payloads())
		}
	}
	if encodeRequests(nil, nil, nil, 0, 10, frontier.WireHybrid, nil) != nil {
		t.Fatal("empty batch should encode to nil")
	}
	if vs, ds := decodeRequests(nil, nil); len(vs) != 0 || len(ds) != 0 {
		t.Fatal("nil payload should decode empty")
	}
}

// TestDedupMin keeps the minimum distance per vertex.
func TestDedupMin(t *testing.T) {
	vs := []uint32{5, 3, 5, 3, 9, 5}
	ds := []uint32{10, 4, 2, 8, 1, 7}
	gvs, gds, dups := dedupMin(vs, ds)
	if dups != 3 {
		t.Fatalf("dups = %d, want 3", dups)
	}
	wantV := []uint32{3, 5, 9}
	wantD := []uint32{4, 2, 1}
	for i := range wantV {
		if gvs[i] != wantV[i] || gds[i] != wantD[i] {
			t.Fatalf("pair %d = (%d,%d), want (%d,%d)", i, gvs[i], gds[i], wantV[i], wantD[i])
		}
	}
}
