package sssp

import (
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/pool"
	"repro/internal/torus"
)

// Overlapped (asynchronous) relaxation rounds. Both engines keep the
// synchronous payloads and statistics bit-for-bit; only the schedule
// changes: every exchange posts its sends before any wait, received
// request batches stream into the partial-list scan as they complete,
// and the delivery exchange's sends post per destination bin as each
// finishes its min-merge. The min-merge is order-insensitive, so the
// deduplicated request sets — and therefore the distances, relaxation
// counts, and re-settle traces — are identical to the synchronous path.

// dedupPrep wraps parallel request bins as a collective.Prep that
// min-merges (and charges) each bin the moment it is needed for
// posting, then encodes it against its destination's owned range (the
// self bin is min-merged too but never encoded — it stays local).
func dedupPrep(c *comm.Comm, model torus.CostModel, pl *pool.Pool, me int, wire frontier.WireMode, hist *frontier.ContainerHist,
	ownedRangeOf func(member int) (graph.Vertex, graph.Vertex), binV, binD [][]uint32) collective.Prep {
	deduped := make([]bool, len(binV))
	return func(m int) []uint32 {
		if !deduped[m] {
			var d int
			binV[m], binD[m], d = dedupMin(binV[m], binD[m])
			c.ChargeItems(len(binV[m])+d, model.VertexCost)
			deduped[m] = true
		}
		if m == me {
			return nil // stays local; the handler reads the bins directly
		}
		dlo, dhi := ownedRangeOf(m)
		return encodeRequests(pl, binV[m], binD[m], uint32(dlo), int(dhi-dlo), wire, hist)
	}
}

// scatterAsync is the overlapped 2D relaxation round: the targeted
// column expand streams active batches into the scan, and the row
// exchange pipelines behind the per-bin min-merges.
func (e *engine2D) scatterAsync(vs, ds []uint32, light bool, delta uint32, tag int, rec *epochRec) ([]uint32, []uint32) {
	h0 := e.hist
	l := e.st.Layout
	r := e.colG.Size()

	sendV := make([][]uint32, r)
	sendD := make([][]uint32, r)
	for idx, gv := range vs {
		li := e.st.LocalOf(graph.Vertex(gv))
		for i := 0; i < r; i++ {
			if e.st.NeedsRow(li, i) {
				sendV[i] = append(sendV[i], gv)
				sendD[i] = append(sendD[i], ds[idx])
			}
		}
	}
	e.c.ChargeItems(len(vs)*((r+63)/64), e.model.EdgeCost)
	lo, n := e.st.Lo, e.st.OwnedCount()

	binV := make([][]uint32, l.C)
	binD := make([][]uint32, l.C)
	scanned := 0
	handle := func(m int, part []uint32) {
		var avs, ads []uint32
		if m == e.colG.Me {
			avs, ads = sendV[m], sendD[m]
		} else {
			avs, ads = decodeRequests(e.pl, part)
		}
		scanned += e.relaxPart(avs, ads, light, delta, binV, binD)
	}
	prep := func(i int) []uint32 {
		if i == e.colG.Me {
			return nil
		}
		return encodeRequests(e.pl, sendV[i], sendD[i], uint32(lo), n, e.opts.Wire, &e.hist)
	}
	o := collective.Opts{Tag: tag, Chunk: e.opts.ChunkWords, Async: true}
	_, est := collective.AllToAllAsync(e.c, e.colG, o, prep, handle)
	rec.expandWords = est.RecvWords
	rec.edges += scanned

	prepR := dedupPrep(e.c, e.model, e.pl, e.rowG.Me, e.opts.Wire, &e.hist,
		func(m int) (graph.Vertex, graph.Vertex) { return l.OwnedRange(e.rowG.World(m)) },
		binV, binD)
	var rvs, rds []uint32
	handleR := func(j int, part []uint32) {
		var pvs, pds []uint32
		if j == e.rowG.Me {
			pvs, pds = binV[j], binD[j]
		} else {
			pvs, pds = decodeRequests(e.pl, part)
		}
		rvs = append(rvs, pvs...)
		rds = append(rds, pds...)
	}
	o2 := collective.Opts{Tag: tag + 1<<24, Chunk: e.opts.ChunkWords, Async: true}
	_, fst := collective.AllToAllAsync(e.c, e.rowG, o2, prepR, handleR)
	rec.foldWords = fst.RecvWords

	var d int
	rvs, rds, d = dedupMin(rvs, rds)
	e.c.ChargeItems(len(rvs)+d, e.model.VertexCost)
	rec.containers.Add(e.hist.Sub(h0))
	return rvs, rds
}

// scatterAsync is the overlapped 1D relaxation round: the scan is
// local, so the win is the pipelined delivery — per-bin min-merges
// interleave with the posts, and all P-1 transfers fly concurrently.
func (e *engine1D) scatterAsync(vs, ds []uint32, light bool, delta uint32, tag int, rec *epochRec) ([]uint32, []uint32) {
	h0 := e.hist
	l := e.st.Layout
	binV, binD, scanned := e.relaxScan(vs, ds, light, delta)
	rec.edges += scanned

	prep := dedupPrep(e.c, e.model, e.pl, e.world.Me, e.opts.Wire, &e.hist,
		func(m int) (graph.Vertex, graph.Vertex) { return l.OwnedRange(m) },
		binV, binD)
	var rvs, rds []uint32
	handle := func(q int, part []uint32) {
		var pvs, pds []uint32
		if q == e.world.Me {
			pvs, pds = binV[q], binD[q]
		} else {
			pvs, pds = decodeRequests(e.pl, part)
		}
		rvs = append(rvs, pvs...)
		rds = append(rds, pds...)
	}
	o := collective.Opts{Tag: tag, Chunk: e.opts.ChunkWords, Async: true}
	_, fst := collective.AllToAllAsync(e.c, e.world, o, prep, handle)
	rec.foldWords = fst.RecvWords

	var d int
	rvs, rds, d = dedupMin(rvs, rds)
	e.c.ChargeItems(len(rvs)+d, e.model.VertexCost)
	rec.containers.Add(e.hist.Sub(h0))
	return rvs, rds
}
