package sssp

// Checkpoint/restart for Δ-stepping: at the first bucket boundary with
// at least Checkpoint.At completed epochs, each rank serializes its
// complete search state — tentative distances, the live bucket array
// (each bucket travels through the frontier wire codec), Δ, the
// per-epoch statistics, and the transport state (comm.State) — into
// one opaque blob deposited in the checkpoint.Plan. A restoring run
// loads the blobs, skips the charged Δ-heuristic reductions, and
// continues to a Result byte-identical to the uninterrupted run.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/frontier"
)

// ckptVersion guards the blob layout.
const ckptVersion = 1

// optsFingerprint folds every option that must match between the
// checkpointing and the restoring run.
func optsFingerprint(o Options) uint64 {
	var bits uint64
	if o.Async {
		bits |= 1
	}
	return checkpoint.Fingerprint(
		uint64(o.Source), uint64(o.Delta), bits,
		uint64(o.Wire), uint64(o.ChunkWords),
		math.Float64bits(o.FrontierOccupancy),
		// Cores scales the pool-loop charges, so it is workload identity;
		// 0 and 1 are the same single-core baseline. Workers is real
		// wall-clock parallelism only and deliberately excluded.
		uint64(max(1, o.Cores)),
	)
}

// runFingerprint is the full workload identity: engine partitioning,
// options, and world size.
func runFingerprint(e engine, opts Options, p int) uint64 {
	return checkpoint.Fingerprint(e.fingerprint(), optsFingerprint(opts), uint64(p))
}

// validateRobustness rejects checkpoint/restore combinations the
// driver does not support.
func validateRobustness(opts Options) error {
	cp := opts.Checkpoint.Enabled()
	rs := opts.Restore != nil
	if !cp && !rs {
		return nil
	}
	if cp && rs {
		return fmt.Errorf("sssp: cannot checkpoint and restore in the same run")
	}
	if opts.Trace != nil {
		return fmt.Errorf("sssp: checkpoint/restore cannot be combined with tracing (a partial run's spans do not tile the clock)")
	}
	return nil
}

// saveEpochBlob serializes one rank's Δ-stepping state at a bucket
// boundary.
func saveEpochBlob(c *comm.Comm, st *rankState, recs []epochRec, allLight bool, tagSeq int) []uint32 {
	enc := &checkpoint.Enc{}
	enc.U32(ckptVersion)
	enc.U32(st.delta)
	enc.Bool(allLight)
	enc.Int(tagSeq)
	enc.Words(st.D)
	idxs := make([]uint32, 0, len(st.buckets))
	for idx := range st.buckets {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	enc.Int(len(idxs))
	for _, idx := range idxs {
		enc.U32(idx)
		enc.Words(frontier.EncodeSet(st.buckets[idx].Vertices(), st.lo, st.n, frontier.WireAuto))
	}
	enc.Int(len(recs))
	for i := range recs {
		encodeEpochRec(enc, &recs[i])
	}
	c.CaptureState().Encode(enc)
	return enc.Payload()
}

// restoreEpochBlob is saveEpochBlob's inverse: it rebuilds the
// distances, buckets, and statistics and loads the transport state
// onto the (fresh) rank. st must carry lo/n/opts already.
func restoreEpochBlob(c *comm.Comm, st *rankState, blob []uint32) (recs []epochRec, allLight bool, tagSeq int) {
	dec := checkpoint.NewDec(blob)
	if v := dec.U32(); v != ckptVersion {
		panic(fmt.Sprintf("sssp: checkpoint blob version %d, want %d", v, ckptVersion))
	}
	st.delta = dec.U32()
	allLight = dec.Bool()
	tagSeq = dec.Int()
	d := dec.Words()
	if len(d) != st.n {
		panic(fmt.Sprintf("sssp: checkpoint has %d owned distances, engine has %d", len(d), st.n))
	}
	copy(st.D, d)
	nb := dec.Int()
	for i := 0; i < nb; i++ {
		idx := dec.U32()
		f := st.opts.NewFrontier(st.lo, st.n)
		for _, v := range frontier.Decode(dec.Words()) {
			f.Add(v)
		}
		st.buckets[idx] = f
	}
	n := dec.Int()
	recs = make([]epochRec, n)
	for i := range recs {
		recs[i] = decodeEpochRec(dec)
	}
	c.RestoreState(comm.DecodeState(dec))
	dec.Done()
	return recs, allLight, tagSeq
}

func encodeEpochRec(enc *checkpoint.Enc, r *epochRec) {
	enc.U32(r.bucket)
	enc.Int(int(r.phase))
	enc.Int(r.active)
	enc.Int(r.expandWords)
	enc.Int(r.foldWords)
	enc.Int(r.relax)
	enc.Int(r.resettles)
	enc.Int(r.edges)
	encodeHist(enc, r.containers)
	enc.F64(r.execS)
	enc.F64(r.commS)
	enc.F64(r.overlapS)
}

func decodeEpochRec(dec *checkpoint.Dec) epochRec {
	var r epochRec
	r.bucket = dec.U32()
	r.phase = Phase(dec.Int())
	r.active = dec.Int()
	r.expandWords = dec.Int()
	r.foldWords = dec.Int()
	r.relax = dec.Int()
	r.resettles = dec.Int()
	r.edges = dec.Int()
	r.containers = decodeHist(dec)
	r.execS = dec.F64()
	r.commS = dec.F64()
	r.overlapS = dec.F64()
	return r
}

func encodeHist(enc *checkpoint.Enc, h frontier.ContainerHist) {
	enc.U64(uint64(h.RawPayloads))
	enc.U64(uint64(h.DensePayloads))
	enc.U64(uint64(h.HybridPayloads))
	enc.U64(uint64(h.EmptyChunks))
	enc.U64(uint64(h.ListChunks))
	enc.U64(uint64(h.BitmapChunks))
	enc.U64(uint64(h.RunChunks))
	enc.U64(uint64(h.PackedChunks))
}

func decodeHist(dec *checkpoint.Dec) frontier.ContainerHist {
	return frontier.ContainerHist{
		RawPayloads:    int64(dec.U64()),
		DensePayloads:  int64(dec.U64()),
		HybridPayloads: int64(dec.U64()),
		EmptyChunks:    int64(dec.U64()),
		ListChunks:     int64(dec.U64()),
		BitmapChunks:   int64(dec.U64()),
		RunChunks:      int64(dec.U64()),
		PackedChunks:   int64(dec.U64()),
	}
}

// engine fingerprints.

func (e *engine1D) fingerprint() uint64 {
	l := e.st.Layout
	return checkpoint.Fingerprint(uint64(l.N), 1, uint64(l.P))
}

func (e *engine2D) fingerprint() uint64 {
	l := e.st.Layout
	return checkpoint.Fingerprint(uint64(l.N), uint64(l.R), uint64(l.C))
}
