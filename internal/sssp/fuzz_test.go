package sssp

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/partition"
)

// FuzzDeltaSteppingVsDijkstra builds a random weighted graph from the
// fuzz bytes, picks a random Δ, source, mesh, and wire codec from the
// seed words, and asserts distributed Δ-stepping equals the serial
// Dijkstra oracle exactly. This is the adversarial pin on the
// distributed relaxation machinery: stale bucket entries, light/heavy
// misclassification, duplicate requests across owners, and codec
// corruption all surface as a distance mismatch.
func FuzzDeltaSteppingVsDijkstra(f *testing.F) {
	f.Add([]byte{0, 1, 5, 1, 2, 9, 2, 3, 1}, uint32(4), uint16(7), uint8(1))
	f.Add([]byte{0, 1, 1, 0, 2, 200}, uint32(0), uint16(0), uint8(6))
	f.Add([]byte{9, 3, 255, 3, 1, 128, 1, 9, 7}, ^uint32(0), uint16(3), uint8(11))
	f.Fuzz(func(t *testing.T, raw []byte, delta uint32, srcSeed uint16, cfg uint8) {
		n := 24
		var edges [][2]graph.Vertex
		var weights []uint32
		seen := map[[2]graph.Vertex]bool{}
		for i := 0; i+2 < len(raw); i += 3 {
			u, v := graph.Vertex(raw[i])%graph.Vertex(n), graph.Vertex(raw[i+1])%graph.Vertex(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]graph.Vertex{u, v}] {
				continue
			}
			seen[[2]graph.Vertex{u, v}] = true
			edges = append(edges, [2]graph.Vertex{u, v})
			weights = append(weights, uint32(raw[i+2])+1)
		}
		g, err := graph.FromWeightedEdges(n, edges, weights)
		if err != nil {
			t.Fatal(err)
		}
		src := graph.Vertex(srcSeed) % graph.Vertex(n)
		want := graph.Dijkstra(g, src)

		meshes := [][2]int{{1, 1}, {2, 2}, {1, 4}, {4, 1}, {3, 2}}
		mesh := meshes[int(cfg)%len(meshes)]
		wires := []frontier.WireMode{frontier.WireSparse, frontier.WireDense, frontier.WireAuto, frontier.WireHybrid}
		wire := wires[(int(cfg)/len(meshes))%len(wires)]

		l, err := partition.NewLayout2D(n, mesh[0], mesh[1])
		if err != nil {
			t.Fatal(err)
		}
		stores, err := partition.Build2DWeighted(l, g.VisitWeightedEdges)
		if err != nil {
			t.Fatal(err)
		}
		w, err := comm.NewWorld(comm.Config{P: mesh[0] * mesh[1]})
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions(src)
		opts.Delta = delta
		opts.Wire = wire
		res, err := Run2D(w, stores, opts)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if res.Dist[v] != want[v] {
				t.Fatalf("mesh %v wire %v delta %d src %d: dist[%d] = %d, serial dijkstra %d",
					mesh, wire, delta, src, v, res.Dist[v], want[v])
			}
		}

		// The dedicated 1D engine must agree too.
		l1, err := partition.NewLayout1D(n, 3)
		if err != nil {
			t.Fatal(err)
		}
		stores1, err := partition.Build1DWeighted(l1, g.VisitWeightedEdges)
		if err != nil {
			t.Fatal(err)
		}
		w1, err := comm.NewWorld(comm.Config{P: 3})
		if err != nil {
			t.Fatal(err)
		}
		res1, err := Run1D(w1, stores1, opts)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if res1.Dist[v] != want[v] {
				t.Fatalf("1D wire %v delta %d src %d: dist[%d] = %d, serial dijkstra %d",
					wire, delta, src, v, res1.Dist[v], want[v])
			}
		}
	})
}
