package sssp

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/search"
)

// TestRun2DCancelEpochBoundary: a Δ-stepping run canceled by a tiny
// simulated budget stops collectively at an epoch boundary with a
// partial result, and the same stores/world finish cleanly afterwards.
func TestRun2DCancelEpochBoundary(t *testing.T) {
	g := poisson(t, 800, 6, 9, graph.WeightUniform, 60)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.Cancel = search.SimBudgetCancel(1e-9)
	res, err := Run2D(fx.world, fx.stores, opts)
	if err == nil {
		t.Fatal("no error from a run whose budget is one nanosecond")
	}
	var cxl *search.Canceled
	if !errors.As(err, &cxl) {
		t.Fatalf("error %v is not a *search.Canceled", err)
	}
	if cxl.Unit != "epoch" {
		t.Fatalf("canceled unit %q, want %q", cxl.Unit, "epoch")
	}
	if res == nil || len(res.Dist) != g.N {
		t.Fatalf("canceled run returned no usable partial result: %+v", res)
	}
	// A partial Δ-stepping labeling never UNDERSHOOTS the true
	// distance: every settled value is a real path length.
	want := graph.Dijkstra(g, fx.src)
	for v, d := range res.Dist {
		if d != graph.MaxDist && d < want[v] {
			t.Fatalf("partial dist[%d] = %d undershoots Dijkstra %d", v, d, want[v])
		}
	}

	opts.Cancel = nil
	full, err := Run2D(fx.world, fx.stores, opts)
	if err != nil {
		t.Fatalf("clean run after a canceled one: %v", err)
	}
	checkDist(t, "post-cancel clean run", full.Dist, want)
}
