package sssp

import (
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/torus"
	"repro/internal/trace"
)

// engine2D holds one rank's storage handles for Δ-stepping under the
// 2D edge partitioning. Relaxation rounds follow the BFS Algorithm 2
// shape: a targeted processor-column expand carries the active
// (vertex, dist) pairs to the ranks holding partial edge lists, the
// local scan turns partial lists into relax requests, and a
// processor-row personalized exchange delivers the requests to the
// owners (every neighbor discovered on mesh row i is owned by a rank
// of row i, the same invariant the BFS fold rides).
type engine2D struct {
	c     *comm.Comm
	st    *partition.Store2D
	opts  Options
	model torus.CostModel
	colG  comm.Group
	rowG  comm.Group
	// pl is the per-rank worker pool the relaxation scans and the wire
	// codec run on; see parallel.go for the determinism contract.
	pl   *pool.Pool
	hist frontier.ContainerHist
}

func newEngine2D(c *comm.Comm, st *partition.Store2D, opts Options) *engine2D {
	l := st.Layout
	mesh := comm.Mesh{R: l.R, C: l.C}
	c.SetCores(opts.Cores)
	return &engine2D{
		c:     c,
		st:    st,
		opts:  opts,
		model: c.Model(),
		colG:  mesh.ColGroup(c.Rank()),
		rowG:  mesh.RowGroup(c.Rank()),
		pl:    pool.New(opts.Workers),
	}
}

func (e *engine2D) comm() *comm.Comm { return e.c }

func (e *engine2D) ownedRange() (graph.Vertex, int) { return e.st.Lo, e.st.OwnedCount() }

func (e *engine2D) universe() int { return e.st.Layout.N }

func (e *engine2D) maxWeight() uint32 {
	max := uint32(1)
	for _, w := range e.st.RowWts {
		if w > max {
			max = w
		}
	}
	return max
}

func (e *engine2D) localEdgeEntries() int { return len(e.st.Rows) }

// weightAt returns the weight of the i-th local partial-list entry
// (1 for unweighted stores).
func (e *engine2D) weightAt(i int64) uint32 {
	if e.st.RowWts == nil {
		return 1
	}
	return e.st.RowWts[i]
}

// scatter relaxes one class of edges out of the active owned vertices
// (vs ascending with parallel dists), exchanges the relax requests,
// and returns the requests destined to this rank, deduplicated to the
// minimum distance per vertex.
func (e *engine2D) scatter(vs, ds []uint32, light bool, delta uint32, tag int, rec *epochRec) ([]uint32, []uint32) {
	if e.opts.Async {
		return e.scatterAsync(vs, ds, light, delta, tag, rec)
	}
	return e.scatterSync(vs, ds, light, delta, tag, rec)
}

// scatterSync is the phase-synchronous relaxation round.
func (e *engine2D) scatterSync(vs, ds []uint32, light bool, delta uint32, tag int, rec *epochRec) ([]uint32, []uint32) {
	h0 := e.hist
	l := e.st.Layout
	r := e.colG.Size()

	// Targeted column expand: an active vertex travels only to the mesh
	// rows holding a non-empty partial edge list for it (§2.2), carrying
	// its tentative distance alongside.
	sendV := make([][]uint32, r)
	sendD := make([][]uint32, r)
	for idx, gv := range vs {
		li := e.st.LocalOf(graph.Vertex(gv))
		for i := 0; i < r; i++ {
			if e.st.NeedsRow(li, i) {
				sendV[i] = append(sendV[i], gv)
				sendD[i] = append(sendD[i], ds[idx])
			}
		}
	}
	e.c.ChargeItems(len(vs)*((r+63)/64), e.model.EdgeCost)
	lo, n := e.st.Lo, e.st.OwnedCount()
	send := make([][]uint32, r)
	for i := 0; i < r; i++ {
		if i == e.colG.Me {
			continue // stays local, unencoded
		}
		send[i] = encodeRequests(e.pl, sendV[i], sendD[i], uint32(lo), n, e.opts.Wire, &e.hist)
	}
	o := collective.Opts{Tag: tag, Chunk: e.opts.ChunkWords}
	parts, est := collective.AllToAll(e.c, e.colG, o, send)
	rec.expandWords = est.RecvWords

	// Scan the partial edge lists of every received active vertex and
	// bin the resulting relax requests by owner mesh column (relaxPart
	// runs on the worker pool and charges the scan).
	binV := make([][]uint32, l.C)
	binD := make([][]uint32, l.C)
	scanned := 0
	tr := e.c.Tracer()
	tr.Begin("engine", "scan")
	for i, p := range parts {
		var avs, ads []uint32
		if i == e.colG.Me {
			avs, ads = sendV[i], sendD[i]
		} else {
			avs, ads = decodeRequests(e.pl, p)
		}
		scanned += e.relaxPart(avs, ads, light, delta, binV, binD)
	}
	rec.edges += scanned
	tr.End(trace.Arg{Key: "edges", Val: int64(scanned)})

	// Local minimum-merge per destination ("merged to form N" with a
	// min instead of a union), then the row exchange to the owners.
	for j := range binV {
		var d int
		binV[j], binD[j], d = dedupMin(binV[j], binD[j])
		e.c.ChargeItems(len(binV[j])+d, e.model.VertexCost)
	}
	sendR := make([][]uint32, l.C)
	for j := range binV {
		if j == e.rowG.Me {
			continue
		}
		dlo, dhi := l.OwnedRange(e.rowG.World(j))
		sendR[j] = encodeRequests(e.pl, binV[j], binD[j], uint32(dlo), int(dhi-dlo), e.opts.Wire, &e.hist)
	}
	o2 := collective.Opts{Tag: tag + 1<<24, Chunk: e.opts.ChunkWords}
	rparts, fst := collective.AllToAll(e.c, e.rowG, o2, sendR)
	rec.foldWords = fst.RecvWords

	var rvs, rds []uint32
	for j, p := range rparts {
		var pvs, pds []uint32
		if j == e.rowG.Me {
			pvs, pds = binV[j], binD[j]
		} else {
			pvs, pds = decodeRequests(e.pl, p)
		}
		rvs = append(rvs, pvs...)
		rds = append(rds, pds...)
	}
	var d int
	rvs, rds, d = dedupMin(rvs, rds)
	e.c.ChargeItems(len(rvs)+d, e.model.VertexCost)
	rec.containers.Add(e.hist.Sub(h0))
	return rvs, rds
}
