package sssp

import (
	"repro/internal/metrics"
	"repro/internal/search"
)

// publishMetrics folds a finished run's statistics into the registry
// (no-op when reg is nil). Counters accumulate across runs sharing a
// registry; gauges hold the last run's values.
func publishMetrics(reg *metrics.Registry, res *Result) {
	if reg == nil {
		return
	}
	reg.Counter("sssp_runs_total").Inc()
	reg.Counter("sssp_epochs_total").Add(int64(res.Epochs))
	reg.Counter("sssp_buckets_drained_total").Add(int64(res.BucketsDrained))
	reg.Counter("sssp_expand_words_total").Add(res.TotalExpandWords)
	reg.Counter("sssp_fold_words_total").Add(res.TotalFoldWords)
	reg.Counter("sssp_relaxations_total").Add(res.TotalRelaxations)
	reg.Counter("sssp_resettles_total").Add(res.TotalReSettles)
	reg.Counter("sssp_edges_scanned_total").Add(res.TotalEdgesScanned)
	search.PublishContainers(reg, "sssp", res.Containers)
	search.PublishSim(reg, "sssp", res.SimTime, res.SimComm, res.SimOverlap)
	search.PublishFaults(reg, "sssp", res.Faults)
	reg.Gauge("sssp_delta").Set(float64(res.Delta))
	h := reg.Histogram("sssp_epoch_exec_seconds", metrics.TimeBuckets)
	for _, es := range res.PerEpoch {
		h.Observe(es.ExecS)
	}
}
