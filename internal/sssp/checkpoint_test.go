package sssp

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/trace"
)

// scrubWall zeroes the only Result field that legitimately differs
// between an uninterrupted run and a kill/restore pair.
func scrubWall(r *Result) *Result {
	cp := *r
	cp.Wall = 0
	return &cp
}

func resultsIdentical(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(scrubWall(got), scrubWall(want)) {
		t.Fatalf("%s: restored Result differs from uninterrupted run\ngot:  %+v\nwant: %+v", label, got, want)
	}
}

func TestCheckpointRestore2D(t *testing.T) {
	g := poisson(t, 800, 5, 21, graph.WeightUniform, 60)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.Wire = frontier.WireHybrid

	full, err := Run2D(fx.world, fx.stores, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Epochs < 4 {
		t.Fatalf("run too short for an interior checkpoint (%d epochs)", full.Epochs)
	}

	for _, at := range []int{0, 1, full.Epochs / 2, full.Epochs - 1} {
		opts := opts
		opts.Checkpoint = checkpoint.NewPlan(at)
		partial, err := Run2D(fx.world, fx.stores, opts)
		if err != nil {
			t.Fatalf("at=%d checkpoint run: %v", at, err)
		}
		snap := opts.Checkpoint.Snapshot()
		if snap == nil {
			t.Fatalf("at=%d: no snapshot deposited", at)
		}
		if len(partial.PerEpoch) < at {
			t.Fatalf("at=%d: partial run recorded %d epochs", at, len(partial.PerEpoch))
		}

		w2, err := comm.NewWorld(comm.Config{P: 4})
		if err != nil {
			t.Fatal(err)
		}
		ropts := opts
		ropts.Checkpoint = nil
		ropts.Restore = snap
		restored, err := Run2D(w2, fx.stores, ropts)
		if err != nil {
			t.Fatalf("at=%d restore run: %v", at, err)
		}
		resultsIdentical(t, restored, full, fmt.Sprintf("at=%d", at))
	}
}

func TestCheckpointRestore1D(t *testing.T) {
	g := poisson(t, 600, 4, 22, graph.WeightExponential, 80)
	stores, w := build1D(t, g, 4)
	src := graph.LargestComponentVertex(g)
	opts := DefaultOptions(src)

	full, err := Run1D(w, stores, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Epochs < 4 {
		t.Fatalf("run too short (%d epochs)", full.Epochs)
	}

	opts.Checkpoint = checkpoint.NewPlan(full.Epochs / 2)
	if _, err := Run1D(w, stores, opts); err != nil {
		t.Fatal(err)
	}
	snap := opts.Checkpoint.Snapshot()

	w2, _ := comm.NewWorld(comm.Config{P: 4})
	ropts := opts
	ropts.Checkpoint = nil
	ropts.Restore = snap
	restored, err := Run1D(w2, stores, ropts)
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, restored, full, "1D mid-run")
}

// TestCheckpointUnderFaults kills and restores a Δ-stepping run with an
// active fault plan; the resumed run's retries pick up mid-schedule.
func TestCheckpointUnderFaults(t *testing.T) {
	g := poisson(t, 600, 5, 23, graph.WeightUniform, 50)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.Fault = &fault.Plan{Seed: 5, PCorrupt: 0.05, PDrop: 0.05, PDuplicate: 0.05}

	full, err := Run2D(fx.world, fx.stores, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Faults.Injected() == 0 {
		t.Fatal("plan injected nothing; test is vacuous")
	}

	opts.Checkpoint = checkpoint.NewPlan(full.Epochs / 2)
	if _, err := Run2D(fx.world, fx.stores, opts); err != nil {
		t.Fatal(err)
	}
	snap := opts.Checkpoint.Snapshot()

	w2, _ := comm.NewWorld(comm.Config{P: 4})
	ropts := opts
	ropts.Checkpoint = nil
	ropts.Restore = snap
	restored, err := Run2D(w2, fx.stores, ropts)
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, restored, full, "faulted mid-run")
}

func TestCheckpointRejectsUnsupportedCombos(t *testing.T) {
	g := poisson(t, 300, 4, 24, graph.WeightUniform, 40)
	fx := build2D(t, g, 2, 2)

	opts := DefaultOptions(fx.src)
	opts.Checkpoint = checkpoint.NewPlan(1)
	opts.Trace = trace.NewRecorder()
	if _, err := Run2D(fx.world, fx.stores, opts); err == nil {
		t.Error("checkpoint+trace accepted")
	}

	opts = DefaultOptions(fx.src)
	opts.Checkpoint = checkpoint.NewPlan(1)
	if _, err := Run2D(fx.world, fx.stores, opts); err != nil {
		t.Fatal(err)
	}
	opts.Restore = opts.Checkpoint.Snapshot()
	if _, err := Run2D(fx.world, fx.stores, opts); err == nil {
		t.Error("checkpoint+restore in one run accepted")
	}
}

func TestRestoreRejectsMismatchedWorkload(t *testing.T) {
	g := poisson(t, 300, 4, 25, graph.WeightUniform, 40)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.Checkpoint = checkpoint.NewPlan(1)
	if _, err := Run2D(fx.world, fx.stores, opts); err != nil {
		t.Fatal(err)
	}
	snap := opts.Checkpoint.Snapshot()

	w2, _ := comm.NewWorld(comm.Config{P: 4})
	ropts := DefaultOptions(fx.src)
	ropts.Delta = 3 // differs from the snapshot's options
	ropts.Restore = snap
	if _, err := Run2D(w2, fx.stores, ropts); err == nil {
		t.Error("mismatched Delta accepted")
	}

	// A BFS snapshot must be rejected by kind before any blob decode.
	snap2 := *snap
	snap2.Kind = "bfs"
	ropts2 := DefaultOptions(fx.src)
	ropts2.Restore = &snap2
	w3, _ := comm.NewWorld(comm.Config{P: 4})
	if _, err := Run2D(w3, fx.stores, ropts2); err == nil {
		t.Error("wrong-kind snapshot accepted")
	}
}
