package sssp

import (
	"testing"

	"repro/internal/frontier"
	"repro/internal/graph"
)

// runPair2D runs one configuration synchronously and asynchronously on
// fresh 2D fixtures.
func runPair2D(t *testing.T, g *graph.CSR, r, c int, opts Options) (sync, async *Result) {
	t.Helper()
	run := func(asyncOn bool) *Result {
		fx := build2D(t, g, r, c)
		o := opts
		o.Async = asyncOn
		res, err := Run2D(fx.world, fx.stores, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	return run(false), run(true)
}

// checkAsyncAgainstSync asserts the Δ-stepping acceptance contract:
// identical distances and epoch traces (words, relaxations, re-settles,
// edges — epoch by epoch), simulated execution never worse, overlap
// ledger consistent.
func checkAsyncAgainstSync(t *testing.T, label string, sync, async *Result) {
	t.Helper()
	checkDist(t, label, async.Dist, sync.Dist)
	if len(async.PerEpoch) != len(sync.PerEpoch) {
		t.Fatalf("%s: %d epochs async vs %d sync", label, len(async.PerEpoch), len(sync.PerEpoch))
	}
	for e := range sync.PerEpoch {
		se, ae := sync.PerEpoch[e], async.PerEpoch[e]
		if se.Bucket != ae.Bucket || se.Phase != ae.Phase || se.Active != ae.Active ||
			se.ExpandWords != ae.ExpandWords || se.FoldWords != ae.FoldWords ||
			se.Relaxations != ae.Relaxations || se.ReSettles != ae.ReSettles ||
			se.EdgesScanned != ae.EdgesScanned {
			t.Fatalf("%s: epoch %d traces differ: sync %+v async %+v", label, e, se, ae)
		}
		if ae.OverlapS < 0 || ae.OverlapS > ae.CommS+1e-12 {
			t.Fatalf("%s: epoch %d OverlapS %g outside [0, CommS=%g]", label, e, ae.OverlapS, ae.CommS)
		}
	}
	if async.SimTime > sync.SimTime {
		t.Fatalf("%s: async simexec %g > sync %g", label, async.SimTime, sync.SimTime)
	}
	if sync.SimOverlap != 0 {
		t.Fatalf("%s: sync run recorded overlap %g", label, sync.SimOverlap)
	}
	if async.SimOverlap > async.SimComm {
		t.Fatalf("%s: overlap %g exceeds comm %g", label, async.SimOverlap, async.SimComm)
	}
}

// TestAsyncMatchesSyncEveryMeshAndCodec: the overlapped relaxation
// rounds produce identical distances and epoch traces on every mesh x
// wire codec, never slower in simulated time.
func TestAsyncMatchesSyncEveryMeshAndCodec(t *testing.T) {
	g := poisson(t, 2500, 8, 7, graph.WeightUniform, 64)
	wires := []frontier.WireMode{frontier.WireSparse, frontier.WireDense, frontier.WireAuto, frontier.WireHybrid}
	for _, mesh := range testMeshes {
		for _, wire := range wires {
			opts := DefaultOptions(graph.LargestComponentVertex(g))
			opts.Wire = wire
			sync, async := runPair2D(t, g, mesh[0], mesh[1], opts)
			checkAsyncAgainstSync(t, wire.String(), sync, async)
		}
	}
}

// TestAsyncMatchesSync1DEngine: the dedicated 1D engine under the same
// contract, across Δ regimes.
func TestAsyncMatchesSync1DEngine(t *testing.T) {
	g := poisson(t, 2500, 8, 9, graph.WeightUniform, 64)
	for _, p := range []int{1, 3, 4, 8} {
		for _, delta := range []uint32{0, 1, 16, DeltaInf} {
			run := func(asyncOn bool) *Result {
				st, w := build1D(t, g, p)
				opts := DefaultOptions(graph.LargestComponentVertex(g))
				opts.Delta = delta
				opts.Wire = frontier.WireHybrid
				opts.Async = asyncOn
				res, err := Run1D(w, st, opts)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			sync, async := run(false), run(true)
			checkAsyncAgainstSync(t, "1d", sync, async)
		}
	}
}

// TestAsyncDeterministicSimexec: two overlapped runs agree on the
// simulated clock bit for bit.
func TestAsyncDeterministicSimexec(t *testing.T) {
	g := poisson(t, 2500, 8, 13, graph.WeightUniform, 128)
	run := func() *Result {
		fx := build2D(t, g, 2, 2)
		opts := DefaultOptions(graph.LargestComponentVertex(g))
		opts.Wire = frontier.WireHybrid
		res, err := Run2D(fx.world, fx.stores, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.SimTime != b.SimTime || a.SimComm != b.SimComm || a.SimOverlap != b.SimOverlap {
		t.Fatalf("async clock not deterministic: %.17g/%.17g/%.17g vs %.17g/%.17g/%.17g",
			a.SimTime, a.SimComm, a.SimOverlap, b.SimTime, b.SimComm, b.SimOverlap)
	}
	for e := range a.PerEpoch {
		if a.PerEpoch[e].ExecS != b.PerEpoch[e].ExecS || a.PerEpoch[e].OverlapS != b.PerEpoch[e].OverlapS {
			t.Fatalf("epoch %d timings differ across runs", e)
		}
	}
}

// TestAsyncActuallyOverlaps: on the headline shape the overlapped
// schedule hides communication and strictly beats the synchronous
// clock.
func TestAsyncActuallyOverlaps(t *testing.T) {
	g := poisson(t, 6000, 10, 17, graph.WeightUniform, 256)
	opts := DefaultOptions(graph.LargestComponentVertex(g))
	sync, async := runPair2D(t, g, 4, 4, opts)
	if async.SimOverlap <= 0 {
		t.Fatal("default async schedule hid nothing")
	}
	if async.SimTime >= sync.SimTime {
		t.Fatalf("async simexec %g not strictly below sync %g", async.SimTime, sync.SimTime)
	}
}
