package sssp

import (
	"repro/internal/graph"
	"repro/internal/pool"
)

// relaxGrain is the pool chunk width, in active vertices, for the
// relaxation scans. Chunk boundaries are pure functions of the batch
// length (see internal/pool), so per-chunk request bins concatenate in
// a worker-count-independent order; the downstream dedupMin sorts them
// anyway, making the delivered request sets — and every count —
// bit-identical to the serial scan.
const relaxGrain = 512

// relaxScan relaxes one class of edges out of the active owned
// vertices on the worker pool, binning the (neighbor, candidate) relax
// requests by owner rank — the 1D scan shared by the synchronous and
// overlapped schedules — and charges the edge scan.
func (e *engine1D) relaxScan(vs, ds []uint32, light bool, delta uint32) (binV, binD [][]uint32, scanned int) {
	l := e.st.Layout
	p := e.world.Size()
	binV = make([][]uint32, p)
	binD = make([][]uint32, p)
	if nc := pool.Chunks(len(vs), relaxGrain); e.pl.Workers() > 1 && nc > 1 {
		type chunkOut struct {
			binV    [][]uint32
			binD    [][]uint32
			scanned int
		}
		outs := make([]chunkOut, nc)
		e.pl.Run(len(vs), relaxGrain, func(ch, lo, hi int) {
			o := &outs[ch]
			o.binV = make([][]uint32, p)
			o.binD = make([][]uint32, p)
			for idx := lo; idx < hi; idx++ {
				li := e.st.LocalOf(graph.Vertex(vs[idx]))
				dv := ds[idx]
				for i := e.st.Off[li]; i < e.st.Off[li+1]; i++ {
					o.scanned++
					w := e.weightAt(i)
					if (w <= delta) != light {
						continue
					}
					cand := dv + w
					if cand < dv || cand == graph.MaxDist {
						continue // saturated: stays unreachable
					}
					u := e.st.Adj[i]
					q := l.OwnerRank(u)
					o.binV[q] = append(o.binV[q], uint32(u))
					o.binD[q] = append(o.binD[q], cand)
				}
			}
		})
		for i := range outs {
			scanned += outs[i].scanned
			for q := range outs[i].binV {
				binV[q] = append(binV[q], outs[i].binV[q]...)
				binD[q] = append(binD[q], outs[i].binD[q]...)
			}
		}
	} else {
		for idx, gv := range vs {
			li := e.st.LocalOf(graph.Vertex(gv))
			dv := ds[idx]
			for i := e.st.Off[li]; i < e.st.Off[li+1]; i++ {
				scanned++
				w := e.weightAt(i)
				if (w <= delta) != light {
					continue
				}
				cand := dv + w
				if cand < dv || cand == graph.MaxDist {
					continue // saturated: stays unreachable
				}
				u := e.st.Adj[i]
				q := l.OwnerRank(u)
				binV[q] = append(binV[q], uint32(u))
				binD[q] = append(binD[q], cand)
			}
		}
	}
	e.c.ChargeItemsPar(scanned, e.model.EdgeCost)
	return binV, binD, scanned
}

// relaxPart scans the partial edge lists of one arrived active batch
// on the worker pool, appending relax requests to the per-column bins
// in chunk order, and charges the pair handling, edge scan, and hash
// probes. Both 2D schedules call it once per arrived part.
func (e *engine2D) relaxPart(avs, ads []uint32, light bool, delta uint32, binV, binD [][]uint32) int {
	l := e.st.Layout
	scanned := 0
	var probes uint64
	if nc := pool.Chunks(len(avs), relaxGrain); e.pl.Workers() > 1 && nc > 1 {
		type chunkOut struct {
			binV    [][]uint32
			binD    [][]uint32
			scanned int
			probes  uint64
		}
		outs := make([]chunkOut, nc)
		e.pl.Run(len(avs), relaxGrain, func(ch, lo, hi int) {
			o := &outs[ch]
			o.binV = make([][]uint32, l.C)
			o.binD = make([][]uint32, l.C)
			for idx := lo; idx < hi; idx++ {
				ci, ok, pr := e.st.ColMap.GetCounted(avs[idx])
				o.probes += uint64(pr)
				if !ok {
					continue // no partial list here (possible only locally)
				}
				dv := ads[idx]
				for i := e.st.Off[ci]; i < e.st.Off[ci+1]; i++ {
					o.scanned++
					w := e.weightAt(i)
					if (w <= delta) != light {
						continue
					}
					cand := dv + w
					if cand < dv || cand == graph.MaxDist {
						continue // saturated: stays unreachable
					}
					u := e.st.Rows[i]
					j := l.ColBlockOf(u)
					o.binV[j] = append(o.binV[j], uint32(u))
					o.binD[j] = append(o.binD[j], cand)
				}
			}
		})
		for i := range outs {
			scanned += outs[i].scanned
			probes += outs[i].probes
			for j := range outs[i].binV {
				binV[j] = append(binV[j], outs[i].binV[j]...)
				binD[j] = append(binD[j], outs[i].binD[j]...)
			}
		}
		e.st.ColMap.AddProbes(probes)
	} else {
		p0 := e.st.ColMap.Probes()
		for idx, gv := range avs {
			ci, ok := e.st.ColMap.Get(graph.Vertex(gv))
			if !ok {
				continue // no partial list here (possible only locally)
			}
			dv := ads[idx]
			for i := e.st.Off[ci]; i < e.st.Off[ci+1]; i++ {
				scanned++
				w := e.weightAt(i)
				if (w <= delta) != light {
					continue
				}
				cand := dv + w
				if cand < dv || cand == graph.MaxDist {
					continue // saturated: stays unreachable
				}
				u := e.st.Rows[i]
				j := l.ColBlockOf(u)
				binV[j] = append(binV[j], uint32(u))
				binD[j] = append(binD[j], cand)
			}
		}
		probes = e.st.ColMap.Probes() - p0
	}
	e.c.ChargeItemsPar(len(avs), e.model.VertexCost)
	e.c.ChargeItemsPar(scanned, e.model.EdgeCost)
	e.c.ChargeItemsPar(int(probes), e.model.HashCost)
	return scanned
}
