package sssp

import (
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/torus"
	"repro/internal/trace"
)

// engine1D holds one rank's storage handles for Δ-stepping under the
// conventional 1D vertex partitioning: every rank owns full edge
// lists, so a relaxation round needs no expand — active vertices relax
// their own edges and a single personalized exchange over all P ranks
// delivers the requests to the owners (the Algorithm 1 fold shape).
//
// This is an independent implementation kept alongside the C=1 / R=1
// degenerate meshes of the 2D engine; the engines are differentially
// tested against each other and against the serial oracles.
type engine1D struct {
	c     *comm.Comm
	st    *partition.Store1D
	opts  Options
	model torus.CostModel
	world comm.Group
	// pl is the per-rank worker pool the relaxation scans and the wire
	// codec run on; see parallel.go for the determinism contract.
	pl   *pool.Pool
	hist frontier.ContainerHist
}

func newEngine1D(c *comm.Comm, st *partition.Store1D, opts Options) *engine1D {
	g := comm.Group{Ranks: make([]int, c.Size()), Me: c.Rank()}
	for i := range g.Ranks {
		g.Ranks[i] = i
	}
	c.SetCores(opts.Cores)
	return &engine1D{c: c, st: st, opts: opts, model: c.Model(), world: g,
		pl: pool.New(opts.Workers)}
}

func (e *engine1D) comm() *comm.Comm { return e.c }

func (e *engine1D) ownedRange() (graph.Vertex, int) { return e.st.Lo, e.st.OwnedCount() }

func (e *engine1D) universe() int { return e.st.Layout.N }

func (e *engine1D) maxWeight() uint32 {
	max := uint32(1)
	for _, w := range e.st.Wt {
		if w > max {
			max = w
		}
	}
	return max
}

func (e *engine1D) localEdgeEntries() int { return len(e.st.Adj) }

func (e *engine1D) weightAt(i int64) uint32 {
	if e.st.Wt == nil {
		return 1
	}
	return e.st.Wt[i]
}

// scatter relaxes one class of edges out of the active owned vertices
// and delivers the requests to their owners with a direct personalized
// all-to-all, returning this rank's deduplicated requests.
func (e *engine1D) scatter(vs, ds []uint32, light bool, delta uint32, tag int, rec *epochRec) ([]uint32, []uint32) {
	if e.opts.Async {
		return e.scatterAsync(vs, ds, light, delta, tag, rec)
	}
	return e.scatterSync(vs, ds, light, delta, tag, rec)
}

// scatterSync is the phase-synchronous relaxation round.
func (e *engine1D) scatterSync(vs, ds []uint32, light bool, delta uint32, tag int, rec *epochRec) ([]uint32, []uint32) {
	h0 := e.hist
	l := e.st.Layout
	tr := e.c.Tracer()
	tr.Begin("engine", "scan")
	binV, binD, scanned := e.relaxScan(vs, ds, light, delta)
	rec.edges += scanned
	tr.End(trace.Arg{Key: "edges", Val: int64(scanned)})
	for q := range binV {
		var d int
		binV[q], binD[q], d = dedupMin(binV[q], binD[q])
		e.c.ChargeItems(len(binV[q])+d, e.model.VertexCost)
	}
	send := make([][]uint32, e.world.Size())
	for q := range binV {
		if q == e.world.Me {
			continue
		}
		dlo, dhi := l.OwnedRange(q)
		send[q] = encodeRequests(e.pl, binV[q], binD[q], uint32(dlo), int(dhi-dlo), e.opts.Wire, &e.hist)
	}
	o := collective.Opts{Tag: tag, Chunk: e.opts.ChunkWords}
	parts, fst := collective.AllToAll(e.c, e.world, o, send)
	rec.foldWords = fst.RecvWords

	var rvs, rds []uint32
	for q, part := range parts {
		var pvs, pds []uint32
		if q == e.world.Me {
			pvs, pds = binV[q], binD[q]
		} else {
			pvs, pds = decodeRequests(e.pl, part)
		}
		rvs = append(rvs, pvs...)
		rds = append(rds, pds...)
	}
	var d int
	rvs, rds, d = dedupMin(rvs, rds)
	e.c.ChargeItems(len(rvs)+d, e.model.VertexCost)
	rec.containers.Add(e.hist.Sub(h0))
	return rvs, rds
}
