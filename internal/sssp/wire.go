package sssp

import (
	"sort"

	"repro/internal/frontier"
	"repro/internal/pool"
)

// Relax requests cross the simulated torus as a vertex set plus a
// parallel distance array:
//
//	[setWords, encodedSet..., dists...]
//
// Senders keep only the minimum distance per vertex, so the vertex
// list is ascending and duplicate-free — exactly the payload shape the
// frontier wire codec compresses (raw list, bitmap, or hybrid chunk
// containers by Options.Wire). The distances follow in the decoded
// set's order; the setWords prefix keeps the payload self-describing
// under every mode. An empty request batch is a nil payload.

// encodeRequests packs a deduplicated request batch drawn from the
// destination's owned universe [lo, lo+n).
func encodeRequests(p *pool.Pool, vs, ds []uint32, lo uint32, n int, mode frontier.WireMode, h *frontier.ContainerHist) []uint32 {
	if len(vs) == 0 {
		return nil
	}
	enc := frontier.EncodeSetStatsPar(p, vs, lo, n, mode, h)
	out := make([]uint32, 0, 1+len(enc)+len(ds))
	out = append(out, uint32(len(enc)))
	out = append(out, enc...)
	return append(out, ds...)
}

// decodeRequests inverts encodeRequests.
func decodeRequests(p *pool.Pool, buf []uint32) (vs, ds []uint32) {
	if len(buf) == 0 {
		return nil, nil
	}
	nw := int(buf[0])
	if 1+nw > len(buf) {
		panic("sssp: truncated relax-request payload")
	}
	vs = frontier.DecodePar(p, buf[1:1+nw])
	ds = buf[1+nw:]
	if len(vs) != len(ds) {
		panic("sssp: relax-request set/distance length mismatch")
	}
	return vs, ds
}

// pairsByVertex sorts parallel (vertex, dist) slices by vertex, ties
// by ascending distance so the minimum lands first.
type pairsByVertex struct{ vs, ds []uint32 }

func (p pairsByVertex) Len() int { return len(p.vs) }
func (p pairsByVertex) Less(i, j int) bool {
	return p.vs[i] < p.vs[j] || (p.vs[i] == p.vs[j] && p.ds[i] < p.ds[j])
}
func (p pairsByVertex) Swap(i, j int) {
	p.vs[i], p.vs[j] = p.vs[j], p.vs[i]
	p.ds[i], p.ds[j] = p.ds[j], p.ds[i]
}

// dedupMin sorts the request pairs by vertex and keeps the minimum
// distance per vertex, in place. It returns the compacted slices — an
// ascending duplicate-free vertex set with parallel distances — and
// the number of requests the local minimum-merge absorbed.
func dedupMin(vs, ds []uint32) ([]uint32, []uint32, int) {
	if len(vs) < 2 {
		return vs, ds, 0
	}
	sort.Sort(pairsByVertex{vs, ds})
	w := 1
	for i := 1; i < len(vs); i++ {
		if vs[i] != vs[w-1] {
			vs[w], ds[w] = vs[i], ds[i]
			w++
		}
		// Same vertex: ds[w-1] already holds the minimum (sort order).
	}
	return vs[:w], ds[:w], len(vs) - w
}
