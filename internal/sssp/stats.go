package sssp

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/trace"
)

// Phase labels one epoch's edge class.
type Phase int

const (
	// PhaseLight relaxes edges with weight <= Δ out of the current
	// bucket's active set; it repeats until the bucket stops refilling.
	PhaseLight Phase = iota
	// PhaseHeavy relaxes edges with weight > Δ out of everything the
	// bucket settled, exactly once per bucket.
	PhaseHeavy
)

func (p Phase) String() string {
	switch p {
	case PhaseLight:
		return "light"
	case PhaseHeavy:
		return "heavy"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// EpochStats aggregates one relaxation epoch (one global exchange
// round) across all ranks — the Δ-stepping mirror of bfs.LevelStats.
type EpochStats struct {
	Epoch        int32
	Bucket       uint32 // bucket index being drained
	Phase        Phase
	Active       int64 // vertices whose edges were relaxed this epoch
	ExpandWords  int64 // words received during the 2D column expand
	FoldWords    int64 // words received delivering relax requests
	Relaxations  int64 // tentative distances improved by owners
	ReSettles    int64 // active vertices relaxed again in the same bucket
	EdgesScanned int64
	// Containers histograms the request-set codec's choices this epoch.
	Containers frontier.ContainerHist

	// ExecS is the epoch's simulated execution time: the maximum over
	// ranks of the per-rank clock advance (critical path).
	ExecS float64
	// CommS sums the per-rank communication seconds charged during the
	// epoch, including any hidden under the asynchronous schedule;
	// OverlapS is the hidden subset (zero when Options.Async is off,
	// never above CommS).
	CommS    float64
	OverlapS float64
}

// HiddenFrac returns the fraction of the epoch's communication seconds
// the asynchronous schedule kept off the critical path.
func (es EpochStats) HiddenFrac() float64 {
	if es.CommS == 0 {
		return 0
	}
	return es.OverlapS / es.CommS
}

// Result reports a finished distributed Δ-stepping run.
type Result struct {
	N     int // graph vertices
	R, C  int // mesh (R=1 for the 1D engine)
	Delta uint32
	// Dist holds the shortest-path distance of every vertex from the
	// source (graph.MaxDist for unreachable vertices).
	Dist     []uint32
	PerEpoch []EpochStats

	// BucketsDrained counts non-empty buckets processed; Epochs counts
	// global exchange rounds (light sub-rounds plus heavy rounds).
	BucketsDrained int
	Epochs         int

	// Simulated times (seconds) from the torus cost model. SimOverlap is
	// the max per-rank communication time hidden under concurrent
	// activity by the asynchronous schedule (0 when Options.Async is
	// off); it never exceeds SimComm.
	SimTime    float64
	SimComm    float64
	SimOverlap float64
	Wall       time.Duration

	TotalExpandWords  int64
	TotalFoldWords    int64
	TotalRelaxations  int64
	TotalReSettles    int64
	TotalEdgesScanned int64
	Containers        frontier.ContainerHist

	// Link-level traffic totals from the torus mapping (see
	// bfs.Result for the meaning of each).
	MsgsRecv uint64
	HopsRecv uint64
	HopBytes uint64

	// Faults sums the per-rank transport-fault activity (see
	// bfs.Result.Faults; all zero on a clean wire).
	Faults comm.FaultStats

	// PerRank[rank] holds that rank's own per-epoch records (the
	// global PerEpoch is their sum).
	PerRank [][]EpochStats
}

// Reached returns the number of vertices with a finite distance.
func (r *Result) Reached() int {
	n := 0
	for _, d := range r.Dist {
		if d != graph.MaxDist {
			n++
		}
	}
	return n
}

// TotalWords returns all payload words moved (expand + fold).
func (r *Result) TotalWords() int64 { return r.TotalExpandWords + r.TotalFoldWords }

// MaxDistance returns the largest finite distance (0 if none).
func (r *Result) MaxDistance() uint32 {
	max := uint32(0)
	for _, d := range r.Dist {
		if d != graph.MaxDist && d > max {
			max = d
		}
	}
	return max
}

// epochRec is one rank's contribution to an epoch's statistics.
type epochRec struct {
	bucket      uint32
	phase       Phase
	active      int
	expandWords int
	foldWords   int
	relax       int
	resettles   int
	edges       int
	containers  frontier.ContainerHist
	execS       float64
	commS       float64
	overlapS    float64
}

// epochTimer snapshots a rank's simulated-time ledgers at epoch entry
// so the epoch's clock/comm/overlap deltas can be recorded on exit.
type epochTimer struct {
	c                    *comm.Comm
	clock, comm, overlap float64
}

func newEpochTimer(c *comm.Comm, rec *epochRec) epochTimer {
	c.Tracer().Begin("epoch", rec.phase.String(), trace.Arg{Key: "bucket", Val: int64(rec.bucket)})
	return epochTimer{c: c, clock: c.Clock(), comm: c.CommTime(), overlap: c.OverlapTime()}
}

func (t epochTimer) record(rec *epochRec) {
	rec.execS = t.c.Clock() - t.clock
	rec.commS = t.c.CommTime() - t.comm
	rec.overlapS = t.c.OverlapTime() - t.overlap
	t.c.Tracer().End(
		trace.Arg{Key: "active", Val: int64(rec.active)},
		trace.Arg{Key: "expand_words", Val: int64(rec.expandWords)},
		trace.Arg{Key: "fold_words", Val: int64(rec.foldWords)},
		trace.Arg{Key: "relaxations", Val: int64(rec.relax)},
		trace.Arg{Key: "resettles", Val: int64(rec.resettles)},
		trace.Arg{Key: "edges", Val: int64(rec.edges)},
	)
}

// mergeStats combines per-rank per-epoch records into global
// EpochStats and totals. Every rank participates in every epoch's
// collectives, so the records are aligned by construction.
func mergeStats(res *Result, perRank [][]epochRec, comms []*comm.Comm) {
	epochs := 0
	for _, er := range perRank {
		if len(er) > epochs {
			epochs = len(er)
		}
	}
	res.Epochs = epochs
	res.PerEpoch = make([]EpochStats, epochs)
	for e := 0; e < epochs; e++ {
		res.PerEpoch[e].Epoch = int32(e)
	}
	res.PerRank = make([][]EpochStats, len(perRank))
	for rank, er := range perRank {
		res.PerRank[rank] = make([]EpochStats, len(er))
		for e, s := range er {
			res.PerRank[rank][e] = EpochStats{
				Epoch:        int32(e),
				Bucket:       s.bucket,
				Phase:        s.phase,
				Active:       int64(s.active),
				ExpandWords:  int64(s.expandWords),
				FoldWords:    int64(s.foldWords),
				Relaxations:  int64(s.relax),
				ReSettles:    int64(s.resettles),
				EdgesScanned: int64(s.edges),
				Containers:   s.containers,
				ExecS:        s.execS,
				CommS:        s.commS,
				OverlapS:     s.overlapS,
			}
			es := &res.PerEpoch[e]
			es.Bucket = s.bucket // uniform across ranks by construction
			es.Phase = s.phase
			es.Active += int64(s.active)
			es.ExpandWords += int64(s.expandWords)
			es.FoldWords += int64(s.foldWords)
			es.Relaxations += int64(s.relax)
			es.ReSettles += int64(s.resettles)
			es.EdgesScanned += int64(s.edges)
			es.Containers.Add(s.containers)
			if s.execS > es.ExecS {
				es.ExecS = s.execS // critical path: slowest rank
			}
			es.CommS += s.commS
			es.OverlapS += s.overlapS
		}
	}
	for _, es := range res.PerEpoch {
		res.TotalExpandWords += es.ExpandWords
		res.TotalFoldWords += es.FoldWords
		res.TotalRelaxations += es.Relaxations
		res.TotalReSettles += es.ReSettles
		res.TotalEdgesScanned += es.EdgesScanned
		res.Containers.Add(es.Containers)
	}
	res.SimTime = comm.MaxClock(comms)
	res.SimComm = comm.MaxCommTime(comms)
	res.SimOverlap = comm.MaxOverlapTime(comms)
	for _, c := range comms {
		res.MsgsRecv += c.MsgsRecv()
		res.HopsRecv += c.HopsRecv()
		res.HopBytes += c.HopBytes()
	}
	res.Faults = comm.MergeFaultStats(comms)
}
