// Package sssp implements distributed single-source shortest paths by
// Δ-stepping (Meyer & Sanders) over the same 1D and 2D partitionings,
// simulated torus collectives, and frontier machinery as the BFS
// engines.
//
// Tentative distances live with their owners; each epoch relaxes the
// edges out of a globally-agreed active set and ships the resulting
// relax requests (vertex, tentative distance) to the owners through
// the personalized exchanges the BFS fold uses, with the vertex sets
// compressed by the frontier wire codec. The bucket array reuses the
// frontier representations: each bucket is an adaptive sparse-queue /
// dense-bitmap set over the owned range.
//
// Δ-stepping's two degenerate extremes are first-class and tested:
// Δ = ∞ collapses to frontier Bellman-Ford (one bucket, light phases
// only) and Δ ≤ min edge weight settles buckets Dijkstra-like (no
// vertex is ever re-relaxed within a bucket).
package sssp

import (
	"repro/internal/graph"
	"repro/internal/search"
)

// DeltaInf selects a single bucket: every edge is light and the run
// degenerates to frontier Bellman-Ford.
const DeltaInf = ^uint32(0)

// Options configures a distributed Δ-stepping run.
type Options struct {
	Source graph.Vertex
	// Delta is the bucket width. 0 selects the standard heuristic
	// Δ = max(1, maxWeight/avgDegree) (computed from the distributed
	// stores with two reductions); DeltaInf selects the Bellman-Ford
	// degenerate.
	Delta uint32
	// Common carries the knobs shared with every other search
	// algorithm: Wire selects the encoding of the relax-request vertex
	// sets (the same codec family the BFS payloads use), ChunkWords the
	// fixed message buffers, and FrontierOccupancy the buckets'
	// sparse→dense switch threshold.
	search.Common
}

// DefaultOptions returns the production configuration: auto Δ, raw
// vertex lists, and the paper's fixed 16Ki-word message buffers.
func DefaultOptions(source graph.Vertex) Options {
	return Options{Source: source, Common: search.Defaults()}
}

// bucketOf maps a tentative distance to its bucket index.
func bucketOf(d, delta uint32) uint32 {
	if delta == DeltaInf {
		return 0
	}
	return d / delta
}
