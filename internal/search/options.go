// Package search holds the options core shared by every distributed
// search algorithm in this repository. BFS, batched multi-source BFS,
// and Δ-stepping SSSP all move vertex-set payloads over the same
// simulated torus, chunk them into the same fixed-length buffers
// (§3.1), and hold per-rank sets in the same adaptive sparse/dense
// frontier representations — so the knobs controlling those mechanisms
// have one meaning and live in one embedded struct instead of
// per-algorithm forks.
package search

import (
	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/frontier"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// DefaultChunkWords is the paper's fixed 16Ki-word message buffer
// (§3.1), the production chunking every algorithm defaults to.
const DefaultChunkWords = 16384

// Common is the options block shared by every search algorithm.
// Algorithm-specific option structs embed it, promoting the fields so
// existing o.Wire / o.ChunkWords / o.FrontierOccupancy call sites keep
// working while the public API applies one option to every family.
type Common struct {
	// Wire selects the wire encoding of vertex-set payloads (expand
	// frontiers, union-fold sets, relax-request sets, lane-OR
	// frontiers): WireSparse raw vertex lists, WireDense whole-universe
	// bitmaps, WireAuto whichever of the two is fewer words per payload,
	// WireHybrid chunked delta-varint/bitmap/run-length containers
	// (never more words than WireAuto).
	Wire frontier.WireMode
	// ChunkWords > 0 caps every physical message at this many words
	// (§3.1 fixed-length buffers); 0 sends logical messages whole.
	ChunkWords int
	// FrontierOccupancy is the adaptive sets' sparse→dense switch
	// threshold as a fraction of the owned range; <= 0 selects
	// frontier.DefaultOccupancy, >= 1 pins the sets sparse.
	FrontierOccupancy float64
	// Async selects the overlapped per-level/per-epoch schedule: every
	// exchange posts its sends before any wait and received parts stream
	// into the local scan as they complete, hiding wire time under the
	// hash-probe compute that dominates the §4.2 profile. Results
	// (levels, distances, words, duplicate counts) are identical to the
	// synchronous schedule; only the simulated clock — audited by the
	// OverlapS / hidden-fraction statistics — improves. On by default;
	// disable for the phase-synchronous baseline.
	Async bool
	// Cores is the modeled per-node core count for the cost model: the
	// charges of the loops that run on the worker pool (top-down scans,
	// bottom-up edge checks, Δ-stepping relaxations) divide by it, the
	// way BG/L virtual-node mode (2 compute cores) halves local work
	// versus co-processor mode (1, the default). 0 or 1 is the paper's
	// single-core baseline, bit-identical to earlier releases. Serial
	// phases — marks, sorts, bucket scans, collectives — stay undivided:
	// the model only credits parallelism where the engines actually
	// have it.
	Cores int
	// Workers sizes the real per-rank worker pool threaded through the
	// same hot loops (plus the hybrid codec). It affects wall-clock
	// only: Results, words, simulated clocks, and container histograms
	// are bit-identical for every value — per-worker outputs merge in a
	// fixed chunk order. 0 or 1 runs the loops inline with zero
	// goroutine overhead. WithCores sets both knobs together so the
	// simulated and real clocks stay coupled.
	Workers int
	// Trace, when non-nil, records every simulated-clock charge and
	// every collective/engine phase of the run as spans (see
	// internal/trace). Recording is observation only — the simulated
	// clock is identical with and without it. A Recorder holds one run;
	// reusing it across runs keeps only the last.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives the run's statistics as
	// counters/gauges/histograms after the run completes (see
	// internal/metrics) — the snapshot bfsrun -metrics and benchjson
	// read.
	Metrics *metrics.Registry
	// Fault, when non-nil, is the seeded deterministic fault plan the
	// simulated transport consults for every point-to-point message
	// (see internal/fault). Any plan below the retry budget leaves the
	// Result identical to the fault-free run except for the simulated
	// times and the Faults counters.
	Fault *fault.Plan
	// Checkpoint, when enabled, halts the run at the plan's level
	// (BFS) / epoch ordinal (Δ-stepping), deposits every rank's engine
	// and transport state into the plan, and returns a partial Result.
	// Not supported by the bi-directional or multi-source drivers, or
	// combined with Trace (a restored run's spans cannot tile the clock
	// from zero).
	Checkpoint *checkpoint.Plan
	// Restore, when non-nil, resumes a run from a snapshot instead of
	// starting at the source: the engines load every rank's state and
	// continue, producing a Result byte-identical to the uninterrupted
	// run. The workload (graph, source, options) must match the
	// snapshot's fingerprint.
	Restore *checkpoint.Snapshot
	// Cancel, when non-nil, is polled with the rank's simulated clock
	// at every level / sweep / epoch boundary. A non-nil return stops
	// the run cooperatively: the decision is taken collectively (one
	// extra or-reduction per boundary, charged like any other
	// termination check), so every rank stops at the same boundary and
	// the Run wrappers return the partial Result alongside a *Canceled
	// error. The hook must be safe for concurrent use — every rank
	// polls it. Nil (the default) adds no reductions, leaving
	// un-canceled runs byte-identical to earlier releases.
	Cancel func(simSeconds float64) error
}

// Defaults returns the shared production configuration: legacy sparse
// wire lists, the paper's fixed message buffers, the frontier package's
// default occupancy threshold, and the overlapped (asynchronous)
// exchange schedule.
func Defaults() Common {
	return Common{ChunkWords: DefaultChunkWords, Async: true}
}

// NewFrontier builds an adaptive vertex set over the owned range
// [lo, lo+n) with the configured sparse→dense occupancy threshold —
// the representation level frontiers and Δ-stepping buckets share.
func (c Common) NewFrontier(lo uint32, n int) frontier.Frontier {
	return frontier.NewAdaptive(lo, n, c.FrontierOccupancy)
}
