package search

import (
	"context"
	"fmt"
	"time"
)

// Canceled reports a run that a Cancel hook stopped cooperatively: the
// engines completed Done whole units (BFS levels, multi-source sweeps,
// or Δ-stepping epochs — Unit names which), agreed collectively to
// stop, and the Run wrapper returned the partial Result alongside this
// error. Cause is the hook's reason on the rank that first observed it
// (nil on a Canceled built from a rank that only learned of the
// cancellation through the reduction).
type Canceled struct {
	// Unit is the boundary granularity: "level", "sweep", or "epoch".
	Unit string
	// Done counts the whole units completed before the stop.
	Done int
	// Cause is the non-nil error the Cancel hook returned, when this
	// rank observed one itself.
	Cause error
}

func (e *Canceled) Error() string {
	cause := "canceled"
	if e.Cause != nil {
		cause = e.Cause.Error()
	}
	return fmt.Sprintf("search: run canceled after %d complete %ss: %s", e.Done, e.Unit, cause)
}

func (e *Canceled) Unwrap() error { return e.Cause }

// MergeCanceled picks the authoritative Canceled out of the per-rank
// slice a Run wrapper collected: the ranks all stop at the same
// boundary, so any entry works, but one whose hook actually fired (a
// non-nil Cause) carries the better message.
func MergeCanceled(cs []*Canceled) *Canceled {
	var m *Canceled
	for _, c := range cs {
		if c == nil {
			continue
		}
		if m == nil || (m.Cause == nil && c.Cause != nil) {
			m = c
		}
	}
	return m
}

// ChainCancel composes two Cancel hooks: the combined hook fires when
// either does. Nil hooks are identity.
func ChainCancel(prev, next func(simSeconds float64) error) func(simSeconds float64) error {
	if prev == nil {
		return next
	}
	if next == nil {
		return prev
	}
	return func(sim float64) error {
		if err := prev(sim); err != nil {
			return err
		}
		return next(sim)
	}
}

// ContextCancel adapts a context into a Cancel hook: the run stops at
// the first boundary after the context is done, with the context's
// cause as the reason.
func ContextCancel(ctx context.Context) func(simSeconds float64) error {
	return func(float64) error { return context.Cause(ctx) }
}

// DeadlineCancel builds a Cancel hook that fires once the wall clock
// passes t.
func DeadlineCancel(t time.Time) func(simSeconds float64) error {
	return func(float64) error {
		if over := time.Since(t); over > 0 {
			return fmt.Errorf("wall deadline exceeded (%v past)", over.Round(time.Millisecond))
		}
		return nil
	}
}

// SimBudgetCancel builds a Cancel hook that fires once the rank's
// simulated clock passes the budget — a deterministic ceiling on how
// much modeled execution a single run may consume.
func SimBudgetCancel(seconds float64) func(simSeconds float64) error {
	return func(sim float64) error {
		if sim > seconds {
			return fmt.Errorf("simulated-execution budget exceeded (%.3gs > %.3gs)", sim, seconds)
		}
		return nil
	}
}
