package search

import (
	"testing"

	"repro/internal/frontier"
)

func TestDefaults(t *testing.T) {
	c := Defaults()
	if c.ChunkWords != DefaultChunkWords {
		t.Errorf("ChunkWords = %d, want %d", c.ChunkWords, DefaultChunkWords)
	}
	if c.Wire != frontier.WireSparse {
		t.Errorf("default wire = %v, want sparse", c.Wire)
	}
	if c.FrontierOccupancy != 0 {
		t.Error("default occupancy should defer to the frontier package")
	}
}

func TestNewFrontierHonorsOccupancy(t *testing.T) {
	// occupancy >= 1 pins the set sparse regardless of fill.
	c := Common{FrontierOccupancy: 1}
	f := c.NewFrontier(0, 64)
	for v := uint32(0); v < 64; v++ {
		f.Add(v)
	}
	if f.Kind() != frontier.KindSparse {
		t.Error("occupancy 1 should pin the representation sparse")
	}
	// The default threshold flips a filling set dense.
	d := Defaults().NewFrontier(0, 64)
	for v := uint32(0); v < 64; v++ {
		d.Add(v)
	}
	if d.Kind() != frontier.KindDense {
		t.Error("default occupancy never flipped to dense")
	}
}
