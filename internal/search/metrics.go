package search

import (
	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/metrics"
)

// PublishContainers publishes a run's wire-codec container histogram —
// how many payloads shipped raw, as whole-universe bitmaps, or as
// hybrid chunk streams, and which container each encoded chunk chose —
// as prefixed counters (prefix is the algorithm family, "bfs"/"sssp").
func PublishContainers(reg *metrics.Registry, prefix string, h frontier.ContainerHist) {
	reg.Counter(prefix + "_payloads_raw_total").Add(h.RawPayloads)
	reg.Counter(prefix + "_payloads_dense_total").Add(h.DensePayloads)
	reg.Counter(prefix + "_payloads_hybrid_total").Add(h.HybridPayloads)
	reg.Counter(prefix + "_chunks_empty_total").Add(h.EmptyChunks)
	reg.Counter(prefix + "_chunks_list_total").Add(h.ListChunks)
	reg.Counter(prefix + "_chunks_bitmap_total").Add(h.BitmapChunks)
	reg.Counter(prefix + "_chunks_run_total").Add(h.RunChunks)
	reg.Counter(prefix + "_chunks_packed_total").Add(h.PackedChunks)
}

// PublishSim publishes the shared simulated-time gauges: total clock,
// communication seconds, the hidden (overlapped) subset, and the
// hidden fraction.
func PublishSim(reg *metrics.Registry, prefix string, simTime, simComm, simOverlap float64) {
	reg.Gauge(prefix + "_sim_time_s").Set(simTime)
	reg.Gauge(prefix + "_sim_comm_s").Set(simComm)
	reg.Gauge(prefix + "_sim_overlap_s").Set(simOverlap)
	hidden := 0.0
	if simComm > 0 {
		hidden = simOverlap / simComm
	}
	reg.Gauge(prefix + "_hidden_frac").Set(hidden)
}

// PublishFaults publishes a run's transport-fault ledger as prefixed
// counters. It is a no-op on a clean run (all-zero stats), so
// fault-free metric snapshots are unchanged by the fault machinery.
func PublishFaults(reg *metrics.Registry, prefix string, fs comm.FaultStats) {
	if fs.Injected() == 0 && fs.Retries == 0 && fs.DupsDiscarded == 0 {
		return
	}
	reg.Counter(prefix + "_fault_corrupt_total").Add(int64(fs.InjCorrupt))
	reg.Counter(prefix + "_fault_drop_total").Add(int64(fs.InjDrop))
	reg.Counter(prefix + "_fault_duplicate_total").Add(int64(fs.InjDuplicate))
	reg.Counter(prefix + "_fault_delay_total").Add(int64(fs.InjDelay))
	reg.Counter(prefix + "_fault_outage_holds_total").Add(int64(fs.InjOutage))
	reg.Counter(prefix + "_fault_retries_total").Add(int64(fs.Retries))
	reg.Counter(prefix + "_fault_checksum_fails_total").Add(int64(fs.ChecksumFails))
	reg.Counter(prefix + "_fault_dups_discarded_total").Add(int64(fs.DupsDiscarded))
	reg.Gauge(prefix + "_fault_retry_seconds").Set(fs.RetrySeconds)
}
