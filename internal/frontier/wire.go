package frontier

import "fmt"

// WireMode selects how set payloads are encoded for transmission.
type WireMode int

const (
	// WireSparse always sends plain vertex-id lists (the legacy wire
	// format; callers typically skip encoding entirely).
	WireSparse WireMode = iota
	// WireDense always sends bitmap payloads.
	WireDense
	// WireAuto sends whichever form is fewer words per payload: the
	// raw id list costs nothing over the legacy format, so auto never
	// moves more words than plain lists and switches to bitmaps once a
	// payload covers more than ~1/32 of its universe.
	WireAuto
	// WireHybrid adds the chunked container codec (see hybrid.go): the
	// payload's universe is split into ChunkSpan-id chunks, each encoded
	// as the cheapest of a delta-varint list, a bitmap, or run-length
	// extents. A payload only ships the chunk stream when it beats both
	// the raw list and the whole-universe bitmap, so hybrid never moves
	// more words than WireAuto.
	WireHybrid
)

func (m WireMode) String() string {
	switch m {
	case WireSparse:
		return "sparse"
	case WireDense:
		return "dense"
	case WireAuto:
		return "auto"
	case WireHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("WireMode(%d)", int(m))
	}
}

// Wire format: a sparse payload is the raw ascending id list itself —
// zero overhead over the legacy format. A dense payload is
// [sentinel, lo, n, words...] with ceil(n/32) wire-bitmap words over
// the universe [lo, lo+n). A hybrid payload is [hybridSentinel, lo, n,
// chunks...] (see hybrid.go). The sentinels (the two largest uint32
// values) can never lead a raw list because vertex ids are strictly
// below them (the partitioners index vertices with uint32 local
// offsets), which keeps the format self-describing.
const wireSentinel = ^uint32(0)

// denseCheaper reports whether the dense encoding of a count-member
// set over an n-vertex universe is fewer wire words than the raw list.
func denseCheaper(n, count int) bool { return 3+BitWords(n) < count }

func denseHeader(lo uint32, n int) []uint32 {
	buf := make([]uint32, 0, 3+BitWords(n))
	return append(buf, wireSentinel, lo, uint32(n))
}

// rawList returns the raw-list arm of the wire format. The buffer is
// always a copy: encoded payloads are owned by the transport until
// receipt (they may sit in mailboxes or travel multiple Bruck hops),
// and an aliased frontier slice the caller later mutates would corrupt
// them in flight.
func rawList(ids []uint32) []uint32 {
	if len(ids) > 0 && ids[0] >= hybridSentinel {
		panic("frontier: vertex id collides with a wire sentinel")
	}
	return append([]uint32(nil), ids...)
}

// EncodeSet encodes an ascending duplicate-free id set drawn from the
// universe [lo, lo+n). WireAuto picks the smaller of the raw list and
// the dense bitmap, WireHybrid the smallest of those two and the
// chunked container stream; ties prefer the raw list. The returned
// buffer never aliases ids — callers may mutate the set as soon as the
// call returns.
func EncodeSet(ids []uint32, lo uint32, n int, mode WireMode) []uint32 {
	return EncodeSetStats(ids, lo, n, mode, nil)
}

// EncodeSetStats is EncodeSet with container-choice accounting: when h
// is non-nil the chosen payload form (and, for hybrid payloads, every
// chunk's container) is tallied into it.
func EncodeSetStats(ids []uint32, lo uint32, n int, mode WireMode, h *ContainerHist) []uint32 {
	if mode == WireHybrid {
		return encodeSetHybrid(ids, lo, n, h)
	}
	dense := mode == WireDense
	if mode == WireAuto {
		dense = denseCheaper(n, len(ids))
	}
	if !dense {
		if h != nil {
			h.RawPayloads++
		}
		return rawList(ids)
	}
	if h != nil {
		h.DensePayloads++
	}
	return append(denseHeader(lo, n), IDsToBits(ids, lo, n)...)
}

// rawBeatsHybrid reports whether a count-member raw list is certain to
// win before any chunk stream is built: a hybrid payload is at least
// 3 + numChunks(n) words (header plus one word per chunk), so a list
// no longer than that — and no longer than the dense form — takes the
// raw arm on every tie. Skipping the stream keeps sparse levels O(1)
// per payload like WireAuto.
func rawBeatsHybrid(n, count int) bool {
	return count <= 3+numChunks(n) && !denseCheaper(n, count)
}

// encodeSetHybrid picks the cheapest of {raw list, dense bitmap,
// hybrid chunk stream} for one payload, preferring raw and then hybrid
// on ties.
func encodeSetHybrid(ids []uint32, lo uint32, n int, h *ContainerHist) []uint32 {
	if rawBeatsHybrid(n, len(ids)) {
		if h != nil {
			h.RawPayloads++
		}
		return rawList(ids)
	}
	var chunks ContainerHist
	hyb := encodeHybridSet(ids, lo, n, &chunks)
	return pickHybridForm(hyb, chunks, len(ids), lo, n, h,
		func() []uint32 { return rawList(ids) },
		func() []uint32 { return IDsToBits(ids, lo, n) })
}

// encodeDenseFrontierHybrid is encodeSetHybrid for a frontier that is
// already a bitmap: the chunk stream is built straight from the wire
// words, and an id list only materializes if the raw arm wins.
func encodeDenseFrontierHybrid(d *Dense, h *ContainerHist) []uint32 {
	lo, n := d.Universe()
	if rawBeatsHybrid(n, d.Len()) {
		if h != nil {
			h.RawPayloads++
		}
		return rawList(d.Vertices())
	}
	w := d.WireBits()
	var chunks ContainerHist
	buf := make([]uint32, 0, 3+numChunks(n))
	hyb := appendBitsChunks(append(buf, hybridSentinel, lo, uint32(n)), w, n, &chunks)
	return pickHybridForm(hyb, chunks, d.Len(), lo, n, h,
		func() []uint32 { return rawList(d.Vertices()) },
		func() []uint32 { return w })
}

// pickHybridForm chooses among the three payload forms given the
// prebuilt chunk stream; raw and bits lazily produce the id list and
// wire bitmap for the fallback arms.
func pickHybridForm(hyb []uint32, chunks ContainerHist, rawLen int, lo uint32, n int, h *ContainerHist, raw, bits func() []uint32) []uint32 {
	dense := 3 + BitWords(n)
	switch {
	case rawLen <= len(hyb) && rawLen <= dense:
		if h != nil {
			h.RawPayloads++
		}
		return raw()
	case len(hyb) <= dense:
		if h != nil {
			chunks.HybridPayloads++
			h.Add(chunks)
		}
		return hyb
	default:
		if h != nil {
			h.DensePayloads++
		}
		return append(denseHeader(lo, n), bits()...)
	}
}

// EncodeFrontier encodes a frontier's member set exactly like
// EncodeSet, but works word-for-word from an already-dense
// representation instead of materializing an id list and rebuilding
// the bitmap.
func EncodeFrontier(f Frontier, mode WireMode) []uint32 {
	return EncodeFrontierStats(f, mode, nil)
}

// EncodeFrontierStats is EncodeFrontier with container accounting.
func EncodeFrontierStats(f Frontier, mode WireMode, h *ContainerHist) []uint32 {
	lo, n := f.Universe()
	d, ok := Unwrap(f).(*Dense)
	if !ok {
		return EncodeSetStats(f.Vertices(), lo, n, mode, h)
	}
	switch {
	case mode == WireHybrid:
		return encodeDenseFrontierHybrid(d, h)
	case mode == WireDense || (mode == WireAuto && denseCheaper(n, d.Len())):
		if h != nil {
			h.DensePayloads++
		}
		return append(denseHeader(lo, n), d.WireBits()...)
	default:
		return EncodeSetStats(f.Vertices(), lo, n, mode, h)
	}
}

// DecodeError reports a malformed wire payload rejected by
// DecodeChecked.
type DecodeError struct{ Reason string }

func (e *DecodeError) Error() string { return e.Reason }

// DecodeChecked is Decode for payloads of uncertain provenance
// (checkpoint files, tools reading foreign dumps): a malformed payload
// comes back as a *DecodeError instead of a panic. The decode paths
// validate every length, span, and container code before indexing, so
// arbitrary input cannot crash or over-allocate.
func DecodeChecked(buf []uint32) (ids []uint32, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &DecodeError{Reason: fmt.Sprint(r)}
		}
	}()
	return Decode(buf), nil
}

// Decode unpacks a payload produced by EncodeSet back into an
// ascending id slice. Raw lists pass through untouched (and aliased),
// so decoding an unencoded payload is a safe no-op. Malformed payloads
// panic (transit corruption is the transport's job to catch — see
// internal/comm's checksummed frames); use DecodeChecked for input
// that is not protocol-guaranteed.
func Decode(buf []uint32) []uint32 {
	if len(buf) == 0 {
		return buf
	}
	switch buf[0] {
	case hybridSentinel:
		return decodeHybridSet(buf)
	case wireSentinel:
		if len(buf) < 3 {
			panic("frontier: truncated dense wire payload")
		}
		lo, n := buf[1], int(buf[2])
		if len(buf) != 3+BitWords(n) {
			panic("frontier: malformed dense wire payload")
		}
		if uint64(lo)+uint64(n) > uint64(hybridSentinel) {
			panic("frontier: dense universe exceeds the id space")
		}
		if pad := n % 32; pad != 0 && buf[len(buf)-1]>>uint(pad) != 0 {
			panic("frontier: dense wire payload has bits set beyond its universe")
		}
		return BitsToIDs(buf[3:], lo)
	default:
		return buf
	}
}
