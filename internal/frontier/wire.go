package frontier

import "fmt"

// WireMode selects how set payloads are encoded for transmission.
type WireMode int

const (
	// WireSparse always sends plain vertex-id lists (the legacy wire
	// format; callers typically skip encoding entirely).
	WireSparse WireMode = iota
	// WireDense always sends bitmap payloads.
	WireDense
	// WireAuto sends whichever form is fewer words per payload: the
	// raw id list costs nothing over the legacy format, so auto never
	// moves more words than plain lists and switches to bitmaps once a
	// payload covers more than ~1/32 of its universe.
	WireAuto
)

func (m WireMode) String() string {
	switch m {
	case WireSparse:
		return "sparse"
	case WireDense:
		return "dense"
	case WireAuto:
		return "auto"
	default:
		return fmt.Sprintf("WireMode(%d)", int(m))
	}
}

// Wire format: a sparse payload is the raw ascending id list itself —
// zero overhead over the legacy format. A dense payload is
// [sentinel, lo, n, words...] with ceil(n/32) wire-bitmap words over
// the universe [lo, lo+n). The sentinel (the maximum uint32) can never
// lead a raw list because vertex ids are strictly below it (the
// partitioners index vertices with uint32 local offsets), which keeps
// the format self-describing.
const wireSentinel = ^uint32(0)

// denseCheaper reports whether the dense encoding of a count-member
// set over an n-vertex universe is fewer wire words than the raw list.
func denseCheaper(n, count int) bool { return 3+BitWords(n) < count }

func denseHeader(lo uint32, n int) []uint32 {
	buf := make([]uint32, 0, 3+BitWords(n))
	return append(buf, wireSentinel, lo, uint32(n))
}

// EncodeSet encodes an ascending duplicate-free id set drawn from the
// universe [lo, lo+n). WireAuto picks the smaller encoding, preferring
// the raw list on ties (the raw arm aliases ids; callers must not
// mutate the slice while the payload is in flight).
func EncodeSet(ids []uint32, lo uint32, n int, mode WireMode) []uint32 {
	dense := mode == WireDense
	if mode == WireAuto {
		dense = denseCheaper(n, len(ids))
	}
	if !dense {
		if len(ids) > 0 && ids[0] == wireSentinel {
			panic("frontier: vertex id collides with the dense wire sentinel")
		}
		return ids
	}
	return append(denseHeader(lo, n), IDsToBits(ids, lo, n)...)
}

// EncodeFrontier encodes a frontier's member set exactly like
// EncodeSet, but repacks an already-dense representation word-for-word
// instead of materializing an id list and rebuilding the bitmap.
func EncodeFrontier(f Frontier, mode WireMode) []uint32 {
	lo, n := f.Universe()
	d, ok := Unwrap(f).(*Dense)
	if !ok || (mode != WireDense && !(mode == WireAuto && denseCheaper(n, d.Len()))) {
		return EncodeSet(f.Vertices(), lo, n, mode)
	}
	return append(denseHeader(lo, n), d.WireBits()...)
}

// Decode unpacks a payload produced by EncodeSet back into an
// ascending id slice. Raw lists pass through untouched (and aliased),
// so decoding an unencoded payload is a safe no-op.
func Decode(buf []uint32) []uint32 {
	if len(buf) == 0 || buf[0] != wireSentinel {
		return buf
	}
	if len(buf) < 3 {
		panic("frontier: truncated dense wire payload")
	}
	lo, n := buf[1], int(buf[2])
	if len(buf) != 3+BitWords(n) {
		panic("frontier: malformed dense wire payload")
	}
	return BitsToIDs(buf[3:], lo)
}
