package frontier

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomSetWithStride builds an ascending set over [lo, lo+n) whose
// gaps hover around stride (the packed container's winning regime sits
// near stride 8: ~12% occupancy).
func randomSetWithStride(rng *rand.Rand, lo uint32, n int, stride int) []uint32 {
	var ids []uint32
	pos := rng.Intn(stride + 1)
	for pos < n {
		ids = append(ids, lo+uint32(pos))
		pos += 1 + rng.Intn(2*stride+1)
	}
	return ids
}

// TestPackedChunkRoundTrip drives the packed container directly across
// its edge cases: single member, consecutive members (width 0), maximum
// width, and word-boundary crossings.
func TestPackedChunkRoundTrip(t *testing.T) {
	cases := [][]uint32{
		{0},
		{4095},
		{1, 2, 3, 4, 5},          // width 0
		{0, 4095},                // width 12
		{0, 7, 14, 21, 28, 4000}, // mixed gaps
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		set := map[uint32]bool{}
		for i := 0; i < 1+rng.Intn(500); i++ {
			set[uint32(rng.Intn(ChunkSpan))] = true
		}
		var offs []uint32
		for v := range set {
			offs = append(offs, v)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		cases = append(cases, offs)
	}
	for i, offs := range cases {
		var h ContainerHist
		buf := appendPackedChunk(nil, offs, &h)
		if h.PackedChunks != 1 {
			t.Fatalf("case %d: accounting %+v", i, h)
		}
		if int(buf[0]&chunkWordsMask) != len(buf)-1 {
			t.Fatalf("case %d: header word count %d != payload %d", i, buf[0]&chunkWordsMask, len(buf)-1)
		}
		var got []uint32
		decodePackedChunk(buf[1:], ChunkSpan, func(off uint32) { got = append(got, off) })
		if !reflect.DeepEqual(got, offs) {
			t.Fatalf("case %d: round trip %v != %v", i, got, offs)
		}
	}
}

// TestPackedWinsCrossoverBand: in the ~12% occupancy band the packed
// container is chosen and the payload is strictly smaller than the best
// of the three legacy containers.
func TestPackedWinsCrossoverBand(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 4 * ChunkSpan
	ids := randomSetWithStride(rng, 0, n, 8)
	var h ContainerHist
	enc := EncodeSetStats(ids, 0, n, WireHybrid, &h)
	if h.PackedChunks == 0 {
		t.Fatalf("no packed chunks chosen at ~12%% occupancy: %+v", h)
	}
	if legacy := legacySetCost(ids, 0, n); len(enc) >= legacy {
		t.Fatalf("packed payload %d words not below legacy best %d", len(enc), legacy)
	}
	if !reflect.DeepEqual(Decode(enc), ids) {
		t.Fatal("crossover payload failed to round trip")
	}
}

// legacySetCost reproduces the pre-packed hybrid payload size: the
// cheapest of the raw list, the dense bitmap, and a chunk stream
// restricted to the list/bitmap/runs containers.
func legacySetCost(ids []uint32, lo uint32, n int) int {
	raw := len(ids)
	dense := 3 + BitWords(n)
	stream := 3
	i := 0
	for c := 0; c < numChunks(n); c++ {
		base := lo + uint32(c*ChunkSpan)
		span := n - c*ChunkSpan
		if span > ChunkSpan {
			span = ChunkSpan
		}
		var offs []uint32
		for i < len(ids) && ids[i]-lo < uint32(c*ChunkSpan)+uint32(span) {
			offs = append(offs, ids[i]-base)
			i++
		}
		stream++
		if len(offs) == 0 {
			continue
		}
		list, bitmap, runs, _ := chunkCosts(offs, span)
		best := list
		if runs < best {
			best = runs
		}
		if bitmap < best {
			best = bitmap
		}
		stream += best
	}
	best := raw
	if dense < best {
		best = dense
	}
	if stream < best {
		best = stream
	}
	return best
}

// TestHybridNeverRegresses: on any payload the four-container codec is
// at most the legacy three-container size (the packed form is only
// picked when strictly cheaper), and still round-trips.
func TestHybridNeverRegresses(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6*ChunkSpan)
		lo := uint32(rng.Intn(1 << 20))
		var ids []uint32
		switch trial % 4 {
		case 0:
			ids = randomSetWithStride(rng, lo, n, 1+rng.Intn(64))
		case 1: // clustered runs
			pos := 0
			for pos < n {
				runLen := 1 + rng.Intn(50)
				for j := 0; j < runLen && pos < n; j++ {
					ids = append(ids, lo+uint32(pos))
					pos++
				}
				pos += rng.Intn(400)
			}
		case 2: // sparse scatter
			set := map[uint32]bool{}
			for j := 0; j < rng.Intn(40); j++ {
				set[lo+uint32(rng.Intn(n))] = true
			}
			for v := range set {
				ids = append(ids, v)
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		case 3: // empty / tiny
			if n > 2 {
				ids = []uint32{lo + uint32(rng.Intn(n))}
			}
		}
		enc := EncodeSetStats(ids, lo, n, WireHybrid, nil)
		if legacy := legacySetCost(ids, lo, n); len(enc) > legacy {
			t.Fatalf("trial %d: new hybrid %d words > legacy %d (n=%d, |ids|=%d)",
				trial, len(enc), legacy, n, len(ids))
		}
		got := Decode(enc)
		if len(got) == 0 && len(ids) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}
