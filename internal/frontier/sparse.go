package frontier

import (
	"fmt"
	"sort"

	"repro/internal/localindex"
)

// Sparse is the vertex-queue frontier: a slice of ids kept ascending
// and duplicate-free (lazily — appends in ascending order, the common
// case in the level-synchronized engines, cost nothing; out-of-order
// inserts are normalized on the next read).
type Sparse struct {
	lo    uint32
	n     int
	ids   []uint32
	dirty bool // ids may be unsorted or contain duplicates
}

// NewSparse returns an empty sparse frontier over [lo, lo+n).
func NewSparse(lo uint32, n int) *Sparse {
	return &Sparse{lo: lo, n: n}
}

// NewSparseFrom returns a sparse frontier over [lo, lo+n) seeded with
// ids (any order, duplicates allowed).
func NewSparseFrom(lo uint32, n int, ids []uint32) *Sparse {
	s := NewSparse(lo, n)
	for _, v := range ids {
		s.Add(v)
	}
	return s
}

func (s *Sparse) check(v uint32) {
	if v < s.lo || uint64(v) >= uint64(s.lo)+uint64(s.n) {
		panic(fmt.Sprintf("frontier: vertex %d outside universe [%d, %d)", v, s.lo, uint64(s.lo)+uint64(s.n)))
	}
}

// Add inserts v.
func (s *Sparse) Add(v uint32) {
	s.check(v)
	if k := len(s.ids); k > 0 && s.ids[k-1] >= v {
		if s.ids[k-1] == v {
			return
		}
		s.dirty = true
	}
	s.ids = append(s.ids, v)
}

func (s *Sparse) normalize() {
	if !s.dirty {
		return
	}
	s.ids, _ = localindex.SortSet(s.ids)
	s.dirty = false
}

// Has reports membership by binary search.
func (s *Sparse) Has(v uint32) bool {
	s.check(v)
	s.normalize()
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= v })
	return i < len(s.ids) && s.ids[i] == v
}

// Len returns the number of distinct members.
func (s *Sparse) Len() int {
	s.normalize()
	return len(s.ids)
}

// Universe returns the id range.
func (s *Sparse) Universe() (uint32, int) { return s.lo, s.n }

// Iterate visits members in ascending order.
func (s *Sparse) Iterate(fn func(v uint32)) {
	s.normalize()
	for _, v := range s.ids {
		fn(v)
	}
}

// Vertices returns the ascending member slice (aliases internal
// storage).
func (s *Sparse) Vertices() []uint32 {
	s.normalize()
	return s.ids
}

// Kind returns KindSparse.
func (s *Sparse) Kind() Kind { return KindSparse }
