package frontier

import "sort"

// Parallel hybrid codec: every ChunkSpan-id chunk encodes and decodes
// independently, so the chunk stream can be built (and walked) by the
// per-rank worker pool in groups of consecutive chunks, concatenated in
// chunk order. The grouped stream is byte-identical to the serial one —
// same chunk boundaries, same container choices, same histogram — for
// every worker count, because group boundaries are a pure function of
// the universe size.

// Runner is the slice-parallelism contract the codec borrows from
// internal/pool without importing it: fixed chunk boundaries from
// (n, grain), any execution order, fn called exactly once per chunk.
// A nil Runner (or one reporting a single worker) means serial.
type Runner interface {
	Workers() int
	Run(n, grain int, fn func(chunk, lo, hi int))
}

// codecGrainChunks is the pool grain in hybrid chunks: groups of 8
// chunks (32768 ids of universe) amortize the per-group buffer and
// histogram merge while leaving enough groups to balance.
const codecGrainChunks = 8

// parallelWorthwhile gates the grouped paths: below ~2 groups the merge
// bookkeeping cannot win. The decision depends only on the universe
// size, never on the worker count, so it cannot perturb determinism
// (both paths produce identical bytes regardless).
func parallelWorthwhile(p Runner, n int) bool {
	return p != nil && p.Workers() > 1 && numChunks(n) > codecGrainChunks
}

// groupSpan returns the id-offset range [olo, ohi) of the pool chunk
// covering hybrid chunks [clo, chi) of an n-id universe.
func groupSpan(clo, chi, n int) (olo, ohi int) {
	olo = clo * ChunkSpan
	ohi = chi * ChunkSpan
	if ohi > n {
		ohi = n
	}
	return olo, ohi
}

// appendSetChunksPar is appendSetChunks built by chunk groups on the
// runner. ids must be ascending; out-of-universe ids panic exactly like
// the serial path (they fall outside every group, detected after the
// merge).
func appendSetChunksPar(p Runner, buf []uint32, ids []uint32, lo uint32, n int, h *ContainerHist) []uint32 {
	nc := numChunks(n)
	ng := (nc + codecGrainChunks - 1) / codecGrainChunks
	bufs := make([][]uint32, ng)
	hists := make([]ContainerHist, ng)
	counts := make([]int, ng)
	p.Run(nc, codecGrainChunks, func(g, clo, chi int) {
		olo, ohi := groupSpan(clo, chi, n)
		base := uint64(lo) + uint64(olo)
		s := sort.Search(len(ids), func(i int) bool { return uint64(ids[i]) >= base })
		e := sort.Search(len(ids), func(i int) bool { return uint64(ids[i]) >= uint64(lo)+uint64(ohi) })
		counts[g] = e - s
		bufs[g] = appendSetChunks(nil, ids[s:e], lo+uint32(olo), ohi-olo, &hists[g])
	})
	total := 0
	for g := 0; g < ng; g++ {
		total += counts[g]
		buf = append(buf, bufs[g]...)
		h.Add(hists[g])
	}
	if total != len(ids) {
		panic("frontier: id outside the universe in hybrid set payload")
	}
	return buf
}

// appendBitsChunksPar is appendBitsChunks by chunk groups: boundaries
// align with bitmap words (ChunkSpan/32 per chunk), so each group reads
// a disjoint word subrange.
func appendBitsChunksPar(p Runner, buf []uint32, words []uint32, n int, h *ContainerHist) []uint32 {
	const wordsPerChunk = ChunkSpan / 32
	nc := numChunks(n)
	ng := (nc + codecGrainChunks - 1) / codecGrainChunks
	bufs := make([][]uint32, ng)
	hists := make([]ContainerHist, ng)
	p.Run(nc, codecGrainChunks, func(g, clo, chi int) {
		olo, ohi := groupSpan(clo, chi, n)
		wlo := clo * wordsPerChunk
		whi := wlo + BitWords(ohi-olo)
		bufs[g] = appendBitsChunks(nil, words[wlo:whi], ohi-olo, &hists[g])
	})
	for g := 0; g < ng; g++ {
		buf = append(buf, bufs[g]...)
		h.Add(hists[g])
	}
	return buf
}

// chunkStarts walks the stream's headers — one word per chunk, cheap
// and strictly sequential — returning the word offset of every chunk's
// header plus the stream end. The same truncation panics as
// decodeChunks apply; the per-chunk payloads are not touched.
func chunkStarts(stream []uint32, nc int) []int {
	starts := make([]int, nc+1)
	pos := 0
	for c := 0; c < nc; c++ {
		starts[c] = pos
		if pos >= len(stream) {
			panic("frontier: truncated hybrid chunk stream")
		}
		nw := int(stream[pos] & chunkWordsMask)
		pos += 1 + nw
		if pos > len(stream) {
			panic("frontier: truncated hybrid chunk payload")
		}
	}
	if pos != len(stream) {
		panic("frontier: trailing words in hybrid chunk stream")
	}
	starts[nc] = pos
	return starts
}

// decodeChunksPar walks a chunk stream by groups on the runner,
// returning the ascending universe-relative offsets. Malformed payloads
// panic with the serial messages (re-raised by the runner).
func decodeChunksPar(p Runner, stream []uint32, n int) []uint32 {
	nc := numChunks(n)
	starts := chunkStarts(stream, nc)
	ng := (nc + codecGrainChunks - 1) / codecGrainChunks
	outs := make([][]uint32, ng)
	p.Run(nc, codecGrainChunks, func(g, clo, chi int) {
		olo, ohi := groupSpan(clo, chi, n)
		sub := stream[starts[clo]:starts[chi]]
		out := make([]uint32, 0, (ohi-olo)/8)
		decodeChunks(sub, ohi-olo, func(off uint32) { out = append(out, uint32(olo)+off) })
		outs[g] = out
	})
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	merged := make([]uint32, 0, total)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged
}

// EncodeSetStatsPar is EncodeSetStats with the hybrid chunk stream
// built on the runner. Output and histogram are byte-identical to the
// serial call for every worker count.
func EncodeSetStatsPar(p Runner, ids []uint32, lo uint32, n int, mode WireMode, h *ContainerHist) []uint32 {
	if mode != WireHybrid || !parallelWorthwhile(p, n) || rawBeatsHybrid(n, len(ids)) {
		return EncodeSetStats(ids, lo, n, mode, h)
	}
	var chunks ContainerHist
	hyb := appendSetChunksPar(p, []uint32{hybridSentinel, lo, uint32(n)}, ids, lo, n, &chunks)
	return pickHybridForm(hyb, chunks, len(ids), lo, n, h,
		func() []uint32 { return rawList(ids) },
		func() []uint32 { return IDsToBits(ids, lo, n) })
}

// EncodeFrontierStatsPar is EncodeFrontierStats with the hybrid chunk
// stream built on the runner.
func EncodeFrontierStatsPar(p Runner, f Frontier, mode WireMode, h *ContainerHist) []uint32 {
	lo, n := f.Universe()
	if mode != WireHybrid || !parallelWorthwhile(p, n) {
		return EncodeFrontierStats(f, mode, h)
	}
	d, ok := Unwrap(f).(*Dense)
	if !ok {
		return EncodeSetStatsPar(p, f.Vertices(), lo, n, mode, h)
	}
	if rawBeatsHybrid(n, d.Len()) {
		if h != nil {
			h.RawPayloads++
		}
		return rawList(d.Vertices())
	}
	w := d.WireBits()
	var chunks ContainerHist
	hyb := appendBitsChunksPar(p, []uint32{hybridSentinel, lo, uint32(n)}, w, n, &chunks)
	return pickHybridForm(hyb, chunks, d.Len(), lo, n, h,
		func() []uint32 { return rawList(d.Vertices()) },
		func() []uint32 { return w })
}

// EncodeBitsPar is EncodeBits with the chunk stream built on the
// runner.
func EncodeBitsPar(p Runner, words []uint32, n int, mode WireMode, h *ContainerHist) []uint32 {
	if mode != WireHybrid || !parallelWorthwhile(p, n) {
		return EncodeBits(words, n, mode, h)
	}
	var hist ContainerHist
	stream := appendBitsChunksPar(p, make([]uint32, 0, numChunks(n)), words, n, &hist)
	if len(stream) >= len(words) {
		if h != nil {
			h.DensePayloads++
		}
		return words
	}
	if h != nil {
		hist.HybridPayloads++
		h.Add(hist)
	}
	return stream
}

// DecodePar is Decode with hybrid chunk streams walked on the runner.
func DecodePar(p Runner, buf []uint32) []uint32 {
	if len(buf) >= 3 && buf[0] == hybridSentinel {
		lo, n := buf[1], int(buf[2])
		if parallelWorthwhile(p, n) {
			if uint64(lo)+uint64(n) > uint64(hybridSentinel) {
				panic("frontier: hybrid universe exceeds the id space")
			}
			offs := decodeChunksPar(p, buf[3:], n)
			for i := range offs {
				offs[i] += lo
			}
			return offs
		}
	}
	return Decode(buf)
}

// DecodeBitsPar is DecodeBits with chunk streams walked on the runner.
// Each chunk's members land in a disjoint word range of the output
// bitmap, so the groups write without synchronization.
func DecodeBitsPar(p Runner, buf []uint32, n int) []uint32 {
	if len(buf) == BitWords(n) || !parallelWorthwhile(p, n) {
		return DecodeBits(buf, n)
	}
	nc := numChunks(n)
	starts := chunkStarts(buf, nc)
	w := NewBits(n)
	p.Run(nc, codecGrainChunks, func(g, clo, chi int) {
		olo, ohi := groupSpan(clo, chi, n)
		sub := buf[starts[clo]:starts[chi]]
		decodeChunks(sub, ohi-olo, func(off uint32) { SetBit(w, uint32(olo)+off) })
	})
	return w
}
