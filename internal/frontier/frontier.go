// Package frontier provides pluggable representations of a BFS
// frontier — a set of vertex ids drawn from a contiguous universe
// [lo, lo+n) — together with conversion, set-union and wire-encoding
// primitives.
//
// Three representations are provided:
//
//   - Sparse: a vertex queue, cheap while the frontier is a small
//     fraction of the universe (the regime of the paper's early and
//     late BFS levels).
//   - Dense: a bitmap over the universe, built on localindex.Bitset;
//     cheap when the frontier is large, and its set union is word-wise
//     OR — the form the bottom-up BFS steps and the bitmap wire
//     encoding fold over.
//   - Adaptive: starts sparse and switches to dense when occupancy
//     crosses a tunable threshold, so level frontiers pay for the
//     representation that fits them.
//
// The wire codec (EncodeSet/Decode) is self-describing: each payload
// carries whichever of the two forms is fewer words, which lets the
// collectives transmit bitmaps instead of vertex lists exactly when
// denser is cheaper.
package frontier

// Kind identifies a frontier's current representation.
type Kind int

const (
	// KindSparse is the vertex-queue representation.
	KindSparse Kind = iota
	// KindDense is the bitmap representation.
	KindDense
)

func (k Kind) String() string {
	switch k {
	case KindSparse:
		return "sparse"
	case KindDense:
		return "dense"
	default:
		return "unknown"
	}
}

// Frontier is a mutable set of vertex ids from the universe [lo, lo+n).
// Implementations are not safe for concurrent use; in the SPMD engines
// each rank owns its frontiers outright.
type Frontier interface {
	// Add inserts v, which must lie in the universe. Inserting a
	// vertex twice is a no-op.
	Add(v uint32)
	// Has reports membership of v (which must lie in the universe).
	Has(v uint32) bool
	// Len returns the number of distinct vertices in the set.
	Len() int
	// Universe returns the id range [lo, lo+n) this frontier draws
	// from.
	Universe() (lo uint32, n int)
	// Iterate calls fn for every member in ascending order.
	Iterate(fn func(v uint32))
	// Vertices returns the members in ascending order. The slice may
	// alias internal storage; callers must not mutate it.
	Vertices() []uint32
	// Kind reports the current representation.
	Kind() Kind
}

// ToDense converts any frontier to the bitmap representation (returns
// the argument itself when it already is one).
func ToDense(f Frontier) *Dense {
	if d, ok := Unwrap(f).(*Dense); ok {
		return d
	}
	lo, n := f.Universe()
	d := NewDense(lo, n)
	f.Iterate(d.Add)
	return d
}

// ToSparse converts any frontier to the vertex-queue representation
// (returns the argument itself when it already is one).
func ToSparse(f Frontier) *Sparse {
	if s, ok := Unwrap(f).(*Sparse); ok {
		return s
	}
	lo, n := f.Universe()
	s := NewSparse(lo, n)
	f.Iterate(s.Add)
	return s
}

// Unwrap strips the Adaptive wrapper, exposing the underlying concrete
// representation.
func Unwrap(f Frontier) Frontier {
	if a, ok := f.(*Adaptive); ok {
		return a.rep
	}
	return f
}

// Union adds every member of src to dst. Both must share a universe
// large enough for src's members. When both sides are dense the union
// is word-wise OR.
func Union(dst, src Frontier) {
	d, dok := Unwrap(dst).(*Dense)
	s, sok := Unwrap(src).(*Dense)
	if dok && sok && d.lo == s.lo && d.n == s.n {
		d.Or(s)
		return
	}
	src.Iterate(dst.Add)
}
