package frontier

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/localindex"
)

// mangleCases builds a spread of deliberately malformed wire payloads.
func mangleCases() map[string][]uint32 {
	// A long run in a wide universe guarantees the chunk stream beats
	// both the raw list and the dense bitmap.
	valid := EncodeSet(seqIDs(0, 1000), 0, 100000, WireHybrid)
	if valid[0] != hybridSentinel {
		panic("test fixture did not encode as a hybrid payload")
	}
	dense := EncodeSet(seqIDs(0, 400), 0, 500, WireDense)
	return map[string][]uint32{
		"dense too short":      {wireSentinel, 0},
		"dense wrong width":    {wireSentinel, 0, 100, 1},
		"hybrid too short":     {hybridSentinel, 0},
		"hybrid no chunks":     {hybridSentinel, 0, 5000},
		"hybrid truncated":     valid[:len(valid)-1],
		"hybrid huge n":        {hybridSentinel, 0, ^uint32(0) - 2, 0},
		"dense truncated":      dense[:len(dense)-2],
		"packed forged meta":   {hybridSentinel, 0, 4096, chunkPacked<<chunkTypeShift | 1, 4095 | 15<<packedCountBits},
		"unknown container":    {hybridSentinel, 0, 100, 7<<chunkTypeShift | 0},
		"list overflow":        {hybridSentinel, 0, 8, chunkList<<chunkTypeShift | 1, 0x00_00_09_09},
		"trailing chunk words": append(append([]uint32{}, valid...), 0),
	}
}

func seqIDs(lo uint32, n int) []uint32 {
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = lo + uint32(i)
	}
	return ids
}

// TestDecodeCheckedRejectsMalformed: every mangled payload must come
// back as a *DecodeError — not a crash, not a silent wrong answer.
func TestDecodeCheckedRejectsMalformed(t *testing.T) {
	for name, buf := range mangleCases() {
		ids, err := DecodeChecked(buf)
		if err == nil {
			t.Errorf("%s: accepted, decoded %d ids", name, len(ids))
			continue
		}
		var de *DecodeError
		if !asDecodeError(err, &de) {
			t.Errorf("%s: error is %T, want *DecodeError", name, err)
		}
		if !strings.Contains(err.Error(), "frontier") {
			t.Errorf("%s: error %q lacks package context", name, err)
		}
	}
}

func asDecodeError(err error, target **DecodeError) bool {
	de, ok := err.(*DecodeError)
	if ok {
		*target = de
	}
	return ok
}

// TestDecodeCheckedAcceptsValid: the checked path is Decode on the
// happy path — same ids, no error, for every wire mode.
func TestDecodeCheckedAcceptsValid(t *testing.T) {
	ids := []uint32{3, 4, 5, 64, 900, 901, 902, 4097}
	for _, mode := range []WireMode{WireSparse, WireDense, WireAuto, WireHybrid} {
		buf := EncodeSet(ids, 0, 5000, mode)
		got, err := DecodeChecked(buf)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(got) != len(ids) {
			t.Fatalf("mode %v: %d ids, want %d", mode, len(got), len(ids))
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("mode %v: id[%d]=%d want %d", mode, i, got[i], ids[i])
			}
		}
	}
}

// FuzzDecodeMalformed hammers the decoder with arbitrary word
// sequences: DecodeChecked must never panic (runtime faults like index
// out of range would escape the recover as non-frontier panics and
// fail the fuzz), never allocate proportionally to a forged universe,
// and on success return only in-universe ids for self-describing
// payloads.
func FuzzDecodeMalformed(f *testing.F) {
	// Seed with valid encodings of each form plus light mutations.
	for _, ids := range [][]uint32{{}, {0}, seqIDs(10, 300), {1, 2, 3, 4000, 4001}} {
		sorted, _ := localindex.SortSet(append([]uint32(nil), ids...))
		for _, mode := range []WireMode{WireDense, WireAuto, WireHybrid} {
			f.Add(wordsToBytes(EncodeSet(sorted, 0, 4200, mode)))
		}
	}
	for name, buf := range mangleCases() {
		_ = name
		f.Add(wordsToBytes(buf))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		buf := bytesToWordsSlice(raw)
		ids, err := DecodeChecked(buf)
		if err != nil {
			return // rejected cleanly — the property under test
		}
		if len(buf) > 0 && (buf[0] == wireSentinel || buf[0] == hybridSentinel) {
			lo, hi := uint64(buf[1]), uint64(buf[1])+uint64(buf[2])
			for _, id := range ids {
				if uint64(id) < lo || uint64(id) >= hi {
					t.Fatalf("decoded id %d outside universe [%d,%d)", id, lo, hi)
				}
			}
		}
	})
}

func wordsToBytes(w []uint32) []byte {
	b := make([]byte, 4*len(w))
	for i, v := range w {
		binary.LittleEndian.PutUint32(b[4*i:], v)
	}
	return b
}

func bytesToWordsSlice(b []byte) []uint32 {
	w := make([]uint32, len(b)/4)
	for i := range w {
		w[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return w
}
