package frontier

import (
	"math/bits"
	"sync/atomic"
)

// Wire bitmaps are []uint32 with 32 bits per word: bit i of word j
// represents local index 32j+i. They are the payload form the bitmap
// collectives (frontier/unvisited gathers, OR-reduced claims) move over
// the simulated torus, and what the dense wire encoding embeds.

// BitWords returns the number of 32-bit words covering n bits.
func BitWords(n int) int { return (n + 31) / 32 }

// NewBits returns a zeroed wire bitmap covering [0, n).
func NewBits(n int) []uint32 { return make([]uint32, BitWords(n)) }

// SetBit sets bit i.
func SetBit(w []uint32, i uint32) { w[i>>5] |= 1 << (i & 31) }

// SetBitAtomic sets bit i with a compare-and-swap loop, for writers on
// the worker pool that own disjoint bits but share words (the 2D
// bottom-up claim bitmaps): a plain read-OR-write would lose same-word
// updates. The resulting bitmap is identical to serial SetBit calls.
func SetBitAtomic(w []uint32, i uint32) {
	p := &w[i>>5]
	m := uint32(1) << (i & 31)
	for {
		old := atomic.LoadUint32(p)
		if old&m != 0 || atomic.CompareAndSwapUint32(p, old, old|m) {
			return
		}
	}
}

// TestBit reports bit i.
func TestBit(w []uint32, i uint32) bool { return w[i>>5]&(1<<(i&31)) != 0 }

// OrBits ORs src into dst; src must not be longer than dst.
func OrBits(dst, src []uint32) {
	for i, w := range src {
		dst[i] |= w
	}
}

// CountBits returns the number of set bits.
func CountBits(w []uint32) int {
	c := 0
	for _, x := range w {
		c += bits.OnesCount32(x)
	}
	return c
}

// IterateBits calls fn with each set bit index in ascending order.
func IterateBits(w []uint32, fn func(i uint32)) {
	for wi, x := range w {
		base := uint32(wi) * 32
		for x != 0 {
			fn(base + uint32(bits.TrailingZeros32(x)))
			x &= x - 1
		}
	}
}

// IDsToBits packs ids from the universe [lo, lo+n) into a wire bitmap
// indexed by id-lo.
func IDsToBits(ids []uint32, lo uint32, n int) []uint32 {
	w := NewBits(n)
	for _, v := range ids {
		SetBit(w, v-lo)
	}
	return w
}

// BitsToIDs unpacks a wire bitmap into ascending ids offset by lo.
func BitsToIDs(w []uint32, lo uint32) []uint32 {
	out := make([]uint32, 0, CountBits(w))
	IterateBits(w, func(i uint32) { out = append(out, lo+i) })
	return out
}

// Bits renders any frontier as a wire bitmap over its universe,
// using the word-level fast path when the representation is already
// dense.
func Bits(f Frontier) []uint32 {
	if d, ok := Unwrap(f).(*Dense); ok {
		return d.WireBits()
	}
	lo, n := f.Universe()
	w := NewBits(n)
	f.Iterate(func(v uint32) { SetBit(w, v-lo) })
	return w
}
