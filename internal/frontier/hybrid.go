package frontier

import "math/bits"

// Hybrid chunked container codec: the universe [lo, lo+n) is split into
// fixed-width chunks of ChunkSpan ids and every chunk is encoded
// independently as the cheapest of four containers — a delta-varint id
// list, a plain bitmap, run-length extents, or bit-packed fixed-width
// deltas — mirroring the roaring-bitmap design but packed into uint32
// wire words so the word-based torus cost model and comm accounting
// stay exact.
//
// Chunk stream layout (one entry per chunk, in chunk order, empty
// chunks included):
//
//	header word: container type in the top 2 bits, payload word count
//	in the low 30 bits, followed by that many payload words.
//
// Byte-granular containers (list, runs) are LEB128 varint streams
// packed little-endian into words, zero-padded to a word boundary:
//
//	list:  count, off[0], off[1]-off[0]-1, off[2]-off[1]-1, ...
//	runs:  nruns, then per run: gap from the previous run's end, len-1
//
// The packed container is word-granular: one meta word (count-1, delta
// width, first offset) followed by fixed-width bit-packed deltas — see
// appendPackedChunk.
//
// All offsets are chunk-relative (< ChunkSpan, so every varint fits in
// two bytes). A set payload wraps the chunk stream in a
// [hybridSentinel, lo, n] header, self-describing next to the raw-list
// and dense-bitmap forms; a bitmap payload (EncodeBits) ships the bare
// chunk stream and is distinguished from a raw bitmap by length alone.

// ChunkSpan is the fixed hybrid chunk width in ids (2^12): small enough
// that chunk-relative offsets varint-encode in at most two bytes, large
// enough that per-chunk header overhead is negligible.
const ChunkSpan = 1 << 12

// hybridSentinel leads a hybrid set payload. Like wireSentinel it can
// never lead a raw id list (vertex ids live strictly below both
// sentinels).
const hybridSentinel = ^uint32(0) - 1

// Container type codes stored in chunk headers (3 bits; payload word
// counts use the remaining 29, far above any chunk's worst case of
// ChunkSpan/32 + 1 words).
const (
	chunkEmpty  = 0 // no members, header only
	chunkList   = 1 // delta-varint id list
	chunkBitmap = 2 // plain bitmap over the chunk span
	chunkRuns   = 3 // run-length extents
	chunkPacked = 4 // bit-packed fixed-width deltas
)

const (
	chunkTypeShift = 29
	chunkWordsMask = 1<<chunkTypeShift - 1
)

// ContainerHist counts the hybrid codec's choices: how many whole
// payloads fell back to the raw list or dense bitmap versus carrying a
// chunk stream, and which container each encoded chunk used. The BFS
// engines aggregate one histogram per level.
type ContainerHist struct {
	RawPayloads    int64 // payloads shipped as raw id lists
	DensePayloads  int64 // payloads shipped as whole-universe bitmaps
	HybridPayloads int64 // payloads shipped as chunk streams
	EmptyChunks    int64
	ListChunks     int64
	BitmapChunks   int64
	RunChunks      int64
	PackedChunks   int64
}

// Add accumulates other into h.
func (h *ContainerHist) Add(other ContainerHist) {
	h.RawPayloads += other.RawPayloads
	h.DensePayloads += other.DensePayloads
	h.HybridPayloads += other.HybridPayloads
	h.EmptyChunks += other.EmptyChunks
	h.ListChunks += other.ListChunks
	h.BitmapChunks += other.BitmapChunks
	h.RunChunks += other.RunChunks
	h.PackedChunks += other.PackedChunks
}

// Sub returns h - other, the delta between two snapshots.
func (h ContainerHist) Sub(other ContainerHist) ContainerHist {
	return ContainerHist{
		RawPayloads:    h.RawPayloads - other.RawPayloads,
		DensePayloads:  h.DensePayloads - other.DensePayloads,
		HybridPayloads: h.HybridPayloads - other.HybridPayloads,
		EmptyChunks:    h.EmptyChunks - other.EmptyChunks,
		ListChunks:     h.ListChunks - other.ListChunks,
		BitmapChunks:   h.BitmapChunks - other.BitmapChunks,
		RunChunks:      h.RunChunks - other.RunChunks,
		PackedChunks:   h.PackedChunks - other.PackedChunks,
	}
}

// Payloads returns the number of payloads the histogram covers.
func (h ContainerHist) Payloads() int64 {
	return h.RawPayloads + h.DensePayloads + h.HybridPayloads
}

// --- varint helpers -------------------------------------------------

func uvarintLen(v uint32) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendUvarint(b []byte, v uint32) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// readUvarint decodes one varint at pos, returning the value and the
// position after it; it panics on truncation (malformed payloads are
// protocol bugs, matching the dense codec).
func readUvarint(b []byte, pos int) (uint32, int) {
	var v uint32
	var shift uint
	for {
		if pos >= len(b) {
			panic("frontier: truncated varint in hybrid chunk")
		}
		c := b[pos]
		pos++
		v |= uint32(c&0x7f) << shift
		if c < 0x80 {
			return v, pos
		}
		shift += 7
		if shift > 28 {
			panic("frontier: varint overflow in hybrid chunk")
		}
	}
}

// packBytes appends b to buf little-endian, zero-padded to whole words.
func packBytes(buf []uint32, b []byte) []uint32 {
	for i := 0; i < len(b); i += 4 {
		var w uint32
		for j := 0; j < 4 && i+j < len(b); j++ {
			w |= uint32(b[i+j]) << (8 * j)
		}
		buf = append(buf, w)
	}
	return buf
}

// unpackBytes flattens words back into their byte stream (including
// any zero padding; varint streams carry their own counts).
func unpackBytes(words []uint32) []byte {
	b := make([]byte, 0, 4*len(words))
	for _, w := range words {
		b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return b
}

func bytesToWords(n int) int { return (n + 3) / 4 }

// --- chunk encoding -------------------------------------------------

// chunkCosts returns the payload word counts of the four containers
// for a chunk holding offs (ascending, chunk-relative) over span ids.
func chunkCosts(offs []uint32, span int) (list, bitmap, runs, packed int) {
	listBytes := uvarintLen(uint32(len(offs)))
	runsBytes := 0
	nruns := 0
	prevEnd := uint32(0) // one past the previous run's last member
	runStart := uint32(0)
	maxDelta := uint32(0)
	for i, off := range offs {
		if i == 0 {
			listBytes += uvarintLen(off)
			runStart = off
			nruns++
			continue
		}
		d := off - offs[i-1] - 1
		if d > maxDelta {
			maxDelta = d
		}
		listBytes += uvarintLen(d)
		if off != offs[i-1]+1 {
			runsBytes += uvarintLen(runStart-prevEnd) + uvarintLen(offs[i-1]-runStart)
			prevEnd = offs[i-1] + 1
			runStart = off
			nruns++
		}
	}
	if len(offs) > 0 {
		runsBytes += uvarintLen(runStart-prevEnd) + uvarintLen(offs[len(offs)-1]-runStart)
	}
	runsBytes += uvarintLen(uint32(nruns))
	return bytesToWords(listBytes), BitWords(span), bytesToWords(runsBytes), packedCost(len(offs), maxDelta)
}

// packedCost is the word count of the bit-packed fixed-width delta
// container: one meta word plus count-1 deltas at the width of the
// largest gap. Where the varint list pays whole bytes per member, the
// packed form pays the chunk's entropy-ish width — the winner in the
// ~12% occupancy crossover band, where gaps fit in 4-6 bits but the
// bitmap is still twice as wide as the membership.
func packedCost(count int, maxDelta uint32) int {
	if count <= 1 {
		return 1
	}
	width := bits.Len32(maxDelta)
	return 1 + ((count-1)*width+31)/32
}

// encodeChunk appends one chunk's header + payload for offs (ascending,
// chunk-relative, duplicate-free) over span ids, choosing the cheapest
// container, and records the choice in h.
func encodeChunk(buf []uint32, offs []uint32, span int, h *ContainerHist) []uint32 {
	if len(offs) == 0 {
		h.EmptyChunks++
		return append(buf, chunkEmpty<<chunkTypeShift)
	}
	list, bitmap, runs, packed := chunkCosts(offs, span)
	// Cheapest container wins; ties keep the pre-packed preference order
	// (list, then runs, then bitmap), so the packed form is only ever
	// chosen when it strictly shrinks a chunk and can never regress.
	best, choice := list, chunkList
	if runs < best {
		best, choice = runs, chunkRuns
	}
	if packed < best {
		best, choice = packed, chunkPacked
	}
	if bitmap < best {
		choice = chunkBitmap
	}
	switch choice {
	case chunkList:
		h.ListChunks++
		b := appendUvarint(nil, uint32(len(offs)))
		for i, off := range offs {
			if i == 0 {
				b = appendUvarint(b, off)
			} else {
				b = appendUvarint(b, off-offs[i-1]-1)
			}
		}
		buf = append(buf, chunkList<<chunkTypeShift|uint32(bytesToWords(len(b))))
		return packBytes(buf, b)
	case chunkPacked:
		return appendPackedChunk(buf, offs, h)
	case chunkRuns:
		h.RunChunks++
		var b []byte
		nruns := 0
		var spans [][2]uint32 // [start, last]
		for i, off := range offs {
			if i == 0 || off != offs[i-1]+1 {
				spans = append(spans, [2]uint32{off, off})
				nruns++
			} else {
				spans[nruns-1][1] = off
			}
		}
		b = appendUvarint(b, uint32(nruns))
		prevEnd := uint32(0)
		for _, r := range spans {
			b = appendUvarint(b, r[0]-prevEnd)
			b = appendUvarint(b, r[1]-r[0])
			prevEnd = r[1] + 1
		}
		buf = append(buf, chunkRuns<<chunkTypeShift|uint32(bytesToWords(len(b))))
		return packBytes(buf, b)
	default:
		h.BitmapChunks++
		w := NewBits(span)
		for _, off := range offs {
			SetBit(w, off)
		}
		buf = append(buf, chunkBitmap<<chunkTypeShift|uint32(len(w)))
		return append(buf, w...)
	}
}

// Packed chunk payload layout: a meta word holding count-1 (bits 0-11),
// the delta width in bits (12-15), and the first member's offset
// (16-27), followed by count-1 deltas (member gap minus one) packed
// LSB-first at the fixed width. All offsets are chunk-relative, so
// count-1, first, and every delta fit in 12 bits.
const (
	packedCountBits = 12
	packedWidthBits = 4
	packedFirstOff  = packedCountBits + packedWidthBits
)

// appendPackedChunk appends the header and payload of a packed chunk.
func appendPackedChunk(buf []uint32, offs []uint32, h *ContainerHist) []uint32 {
	h.PackedChunks++
	maxDelta := uint32(0)
	for i := 1; i < len(offs); i++ {
		if d := offs[i] - offs[i-1] - 1; d > maxDelta {
			maxDelta = d
		}
	}
	width := uint(bits.Len32(maxDelta))
	words := packedCost(len(offs), maxDelta)
	buf = append(buf, chunkPacked<<chunkTypeShift|uint32(words))
	meta := uint32(len(offs)-1) | uint32(width)<<packedCountBits | offs[0]<<packedFirstOff
	buf = append(buf, meta)
	var cur uint32
	var filled uint
	for i := 1; i < len(offs); i++ {
		d := offs[i] - offs[i-1] - 1
		cur |= d << filled
		filled += width
		if filled >= 32 {
			buf = append(buf, cur)
			filled -= 32
			cur = 0
			if filled > 0 {
				cur = d >> (width - filled)
			}
		}
	}
	if filled > 0 {
		buf = append(buf, cur)
	}
	return buf
}

// decodePackedChunk walks a packed chunk payload, emitting each
// chunk-relative offset in ascending order.
func decodePackedChunk(payload []uint32, span int, emit func(off uint32)) {
	if len(payload) == 0 {
		panic("frontier: truncated packed chunk")
	}
	meta := payload[0]
	count := int(meta&(1<<packedCountBits-1)) + 1
	width := uint(meta >> packedCountBits & (1<<packedWidthBits - 1))
	off := meta >> packedFirstOff
	if count > span || int(off) >= span {
		panic("frontier: packed chunk overflows its span")
	}
	// The delta words the meta claims must actually be present — a
	// forged header must not index past the payload.
	if need := 1 + (uint(count-1)*width+31)/32; uint(len(payload)) < need {
		panic("frontier: packed chunk payload shorter than its meta word claims")
	}
	emit(off)
	mask := uint32(1)<<width - 1
	pos := uint(0)
	for i := 1; i < count; i++ {
		var d uint32
		if width > 0 {
			word := 1 + int(pos>>5)
			shift := pos & 31
			d = payload[word] >> shift
			if shift+width > 32 {
				d |= payload[word+1] << (32 - shift)
			}
			d &= mask
			pos += width
		}
		off += d + 1
		if int(off) >= span {
			panic("frontier: packed chunk offset overflows its span")
		}
		emit(off)
	}
}

// numChunks returns the chunk count covering an n-id universe.
func numChunks(n int) int { return (n + ChunkSpan - 1) / ChunkSpan }

// appendSetChunks appends the chunk stream for an ascending id set over
// [lo, lo+n).
func appendSetChunks(buf []uint32, ids []uint32, lo uint32, n int, h *ContainerHist) []uint32 {
	offs := make([]uint32, 0, ChunkSpan)
	i := 0
	for c := 0; c < numChunks(n); c++ {
		base := lo + uint32(c*ChunkSpan)
		span := n - c*ChunkSpan
		if span > ChunkSpan {
			span = ChunkSpan
		}
		offs = offs[:0]
		for i < len(ids) && ids[i]-lo < uint32(c*ChunkSpan)+uint32(span) {
			offs = append(offs, ids[i]-base)
			i++
		}
		buf = encodeChunk(buf, offs, span, h)
	}
	if i != len(ids) {
		// An id below lo underflows past every chunk bound; one above
		// lo+n is never consumed. Either way the loop would silently
		// truncate the set — fail as loudly as the bitmap modes do.
		panic("frontier: id outside the universe in hybrid set payload")
	}
	return buf
}

// appendBitsChunks appends the chunk stream for a wire bitmap over
// [0, n). Chunk boundaries align with bitmap words (ChunkSpan/32 words
// per chunk), so each chunk's members come from a word subrange.
func appendBitsChunks(buf []uint32, words []uint32, n int, h *ContainerHist) []uint32 {
	const wordsPerChunk = ChunkSpan / 32
	offs := make([]uint32, 0, ChunkSpan)
	for c := 0; c < numChunks(n); c++ {
		span := n - c*ChunkSpan
		if span > ChunkSpan {
			span = ChunkSpan
		}
		wlo := c * wordsPerChunk
		whi := wlo + BitWords(span)
		offs = offs[:0]
		IterateBits(words[wlo:whi], func(off uint32) { offs = append(offs, off) })
		buf = encodeChunk(buf, offs, span, h)
	}
	return buf
}

// decodeChunks walks a chunk stream over an n-id universe, calling emit
// with every member's universe-relative offset in ascending order.
func decodeChunks(stream []uint32, n int, emit func(off uint32)) {
	pos := 0
	for c := 0; c < numChunks(n); c++ {
		base := uint32(c * ChunkSpan)
		span := n - c*ChunkSpan
		if span > ChunkSpan {
			span = ChunkSpan
		}
		if pos >= len(stream) {
			panic("frontier: truncated hybrid chunk stream")
		}
		header := stream[pos]
		pos++
		nw := int(header & chunkWordsMask)
		if pos+nw > len(stream) {
			panic("frontier: truncated hybrid chunk payload")
		}
		payload := stream[pos : pos+nw]
		pos += nw
		switch header >> chunkTypeShift {
		case chunkEmpty:
		case chunkPacked:
			decodePackedChunk(payload, span, func(off uint32) { emit(base + off) })
		case chunkList:
			b := unpackBytes(payload)
			count, bp := readUvarint(b, 0)
			if int(count) > span {
				panic("frontier: hybrid list chunk overflows its span")
			}
			var off uint32
			for i := uint32(0); i < count; i++ {
				var d uint32
				d, bp = readUvarint(b, bp)
				if i == 0 {
					off = d
				} else {
					off += d + 1
				}
				if int(off) >= span {
					panic("frontier: hybrid list chunk offset overflows its span")
				}
				emit(base + off)
			}
		case chunkBitmap:
			if nw != BitWords(span) {
				panic("frontier: hybrid bitmap chunk has wrong width")
			}
			if pad := span % 32; pad != 0 && payload[nw-1]>>uint(pad) != 0 {
				panic("frontier: hybrid bitmap chunk has bits set beyond its span")
			}
			IterateBits(payload, func(off uint32) { emit(base + off) })
		case chunkRuns:
			b := unpackBytes(payload)
			nruns, bp := readUvarint(b, 0)
			pos := uint32(0)
			for r := uint32(0); r < nruns; r++ {
				var gap, runLen uint32
				gap, bp = readUvarint(b, bp)
				runLen, bp = readUvarint(b, bp)
				pos += gap
				if int(pos)+int(runLen) >= span {
					panic("frontier: hybrid runs chunk overflows its span")
				}
				for i := uint32(0); i <= runLen; i++ {
					emit(base + pos)
					pos++
				}
			}
		default:
			panic("frontier: unknown hybrid chunk container")
		}
	}
	if pos != len(stream) {
		panic("frontier: trailing words in hybrid chunk stream")
	}
}

// encodeHybridSet builds the full self-describing hybrid set payload
// [hybridSentinel, lo, n, chunks...].
func encodeHybridSet(ids []uint32, lo uint32, n int, h *ContainerHist) []uint32 {
	buf := make([]uint32, 0, 3+numChunks(n))
	buf = append(buf, hybridSentinel, lo, uint32(n))
	return appendSetChunks(buf, ids, lo, n, h)
}

// decodeHybridSet inverts encodeHybridSet.
func decodeHybridSet(buf []uint32) []uint32 {
	if len(buf) < 3 {
		panic("frontier: truncated hybrid wire payload")
	}
	lo, n := buf[1], int(buf[2])
	if uint64(lo)+uint64(n) > uint64(hybridSentinel) {
		// Vertex ids live strictly below the sentinels; a universe
		// reaching past them would let lo+off wrap uint32.
		panic("frontier: hybrid universe exceeds the id space")
	}
	// Size the output from the universe, but never let a forged header
	// n drive the allocation: a genuine stream of len(buf) words can
	// hold at most ~32 members per word, so cap by that.
	capHint := n / 8
	if m := 32 * len(buf); capHint > m {
		capHint = m
	}
	out := make([]uint32, 0, capHint)
	decodeChunks(buf[3:], n, func(off uint32) { out = append(out, lo+off) })
	return out
}

// EncodeBits encodes a wire bitmap over [0, n) for transmission.
// WireHybrid replaces the raw bitmap with the chunked container stream
// whenever that is strictly fewer words (so a hybrid bits payload is
// never longer than the raw bitmap); every other mode — and any bitmap
// the containers cannot beat — ships the words unchanged. The two forms
// are told apart by length: a raw payload has exactly BitWords(n)
// words, and a chunk stream is only ever chosen when shorter.
func EncodeBits(words []uint32, n int, mode WireMode, h *ContainerHist) []uint32 {
	if mode != WireHybrid || n == 0 {
		return words
	}
	var hist ContainerHist
	stream := appendBitsChunks(make([]uint32, 0, numChunks(n)), words, n, &hist)
	if len(stream) >= len(words) {
		if h != nil {
			h.DensePayloads++
		}
		return words
	}
	if h != nil {
		hist.HybridPayloads++
		h.Add(hist)
	}
	return stream
}

// DecodeBits inverts EncodeBits, returning the full-width wire bitmap
// over [0, n). Raw bitmaps (exactly BitWords(n) words) pass through
// aliased.
func DecodeBits(buf []uint32, n int) []uint32 {
	if len(buf) == BitWords(n) {
		return buf
	}
	w := NewBits(n)
	decodeChunks(buf, n, func(off uint32) { SetBit(w, off) })
	return w
}
