package frontier

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/localindex"
)

// randSet returns a sorted duplicate-free set of ids from [lo, lo+n).
func randSet(rng *rand.Rand, lo uint32, n, count int) []uint32 {
	raw := make([]uint32, count)
	for i := range raw {
		raw[i] = lo + uint32(rng.Intn(n))
	}
	out, _ := localindex.SortSet(raw)
	return out
}

func builders() map[string]func(lo uint32, n int) Frontier {
	return map[string]func(lo uint32, n int) Frontier{
		"sparse":   func(lo uint32, n int) Frontier { return NewSparse(lo, n) },
		"dense":    func(lo uint32, n int) Frontier { return NewDense(lo, n) },
		"adaptive": func(lo uint32, n int) Frontier { return NewAdaptive(lo, n, 0) },
	}
}

func TestFrontierImplementations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, build := range builders() {
		lo, n := uint32(1000), 500
		want := randSet(rng, lo, n, 300)
		f := build(lo, n)
		// Insert in shuffled order with duplicates.
		perm := rng.Perm(len(want))
		for _, i := range perm {
			f.Add(want[i])
			f.Add(want[i]) // duplicate must be a no-op
		}
		if f.Len() != len(want) {
			t.Fatalf("%s: Len=%d want %d", name, f.Len(), len(want))
		}
		if got := f.Vertices(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Vertices mismatch", name)
		}
		var iter []uint32
		f.Iterate(func(v uint32) { iter = append(iter, v) })
		if !reflect.DeepEqual(iter, want) {
			t.Fatalf("%s: Iterate mismatch", name)
		}
		for trial := 0; trial < 100; trial++ {
			v := lo + uint32(rng.Intn(n))
			inSet := false
			for _, w := range want {
				if w == v {
					inSet = true
					break
				}
			}
			if f.Has(v) != inSet {
				t.Fatalf("%s: Has(%d)=%v want %v", name, v, f.Has(v), inSet)
			}
		}
		glo, gn := f.Universe()
		if glo != lo || gn != n {
			t.Fatalf("%s: Universe=(%d,%d) want (%d,%d)", name, glo, gn, lo, n)
		}
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		lo := uint32(rng.Intn(10000))
		n := 1 + rng.Intn(400)
		want := randSet(rng, lo, n, rng.Intn(2*n))
		s := NewSparseFrom(lo, n, want)
		d := ToDense(s)
		if d.Len() != len(want) || !reflect.DeepEqual(d.Vertices(), want) {
			t.Fatalf("trial %d: sparse→dense mismatch", trial)
		}
		s2 := ToSparse(d)
		if !reflect.DeepEqual(s2.Vertices(), want) {
			t.Fatalf("trial %d: dense→sparse mismatch", trial)
		}
		// Identity conversions return the same object.
		if ToDense(d) != d || ToSparse(s) != s {
			t.Fatal("identity conversion allocated")
		}
	}
}

func TestAdaptiveSwitchBoundary(t *testing.T) {
	// occupancy 0.25 of 128 = limit 32: the 32nd insert stays sparse,
	// the 33rd flips to dense.
	a := NewAdaptive(0, 128, 0.25)
	for i := 0; i < 32; i++ {
		a.Add(uint32(i))
	}
	if a.Kind() != KindSparse {
		t.Fatalf("at limit: Kind=%v want sparse", a.Kind())
	}
	a.Add(32)
	if a.Kind() != KindDense {
		t.Fatalf("past limit: Kind=%v want dense", a.Kind())
	}
	if a.Len() != 33 || !a.Has(0) || !a.Has(32) || a.Has(33) {
		t.Fatal("membership lost across the representation switch")
	}

	// occupancy >= 1 never switches, even when out-of-order duplicate
	// inserts inflate the raw backing slice past the limit — the switch
	// decision counts distinct members.
	full := NewAdaptive(0, 16, 1)
	for round := 0; round < 3; round++ {
		for i := 15; i >= 0; i-- {
			full.Add(uint32(i))
		}
	}
	if full.Kind() != KindSparse {
		t.Fatal("occupancy 1 should pin the frontier sparse")
	}
	if full.Len() != 16 {
		t.Fatalf("Len=%d want 16", full.Len())
	}

	// A tiny occupancy clamps the limit to 1: second distinct insert
	// switches.
	tiny := NewAdaptive(0, 1000, 1e-9)
	tiny.Add(5)
	if tiny.Kind() != KindSparse {
		t.Fatal("first insert should not switch")
	}
	tiny.Add(6)
	if tiny.Kind() != KindDense {
		t.Fatal("second insert should switch at the clamped limit")
	}
}

func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	full := make([]uint32, 37)
	for i := range full {
		full[i] = 70 + uint32(i)
	}
	cases := []struct {
		lo  uint32
		n   int
		ids []uint32
	}{
		{0, 64, nil},
		{0, 64, []uint32{0, 63}},
		{70, 37, full},
		{1000, 333, randSet(rng, 1000, 333, 50)},
		{1000, 333, randSet(rng, 1000, 333, 600)},
		{5, 1, []uint32{5}},
	}
	for i, c := range cases {
		for _, mode := range allWireModes {
			buf := EncodeSet(c.ids, c.lo, c.n, mode)
			got := Decode(buf)
			want := c.ids
			if want == nil {
				want = []uint32{}
			}
			if len(got) != len(want) {
				t.Fatalf("case %d mode %v: decoded %d ids, want %d", i, mode, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("case %d mode %v: id[%d]=%d want %d", i, mode, j, got[j], want[j])
				}
			}
		}
		// Auto picks the smaller of the two encodings.
		auto := len(EncodeSet(c.ids, c.lo, c.n, WireAuto))
		sparse := len(EncodeSet(c.ids, c.lo, c.n, WireSparse))
		dense := len(EncodeSet(c.ids, c.lo, c.n, WireDense))
		best := sparse
		if dense < best {
			best = dense
		}
		if auto != best {
			t.Fatalf("case %d: auto=%d words, best=%d (sparse %d dense %d)", i, auto, best, sparse, dense)
		}
	}
}

func TestWireRawListsCostNothing(t *testing.T) {
	// The sparse arm of the wire format is the raw id list: zero words
	// of overhead over the legacy format, and Decode passes unencoded
	// payloads through untouched — so WireAuto can never move more
	// words than plain lists.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		ids := randSet(rng, 0, n, rng.Intn(2*n))
		auto := EncodeSet(ids, 0, n, WireAuto)
		if len(auto) > len(ids) {
			t.Fatalf("trial %d: auto encoding %d words exceeds raw list %d", trial, len(auto), len(ids))
		}
		if got := Decode(ids); len(ids) > 0 && &got[0] != &ids[0] {
			t.Fatal("Decode copied a raw list")
		}
	}
}

func TestUnionMatchesLocalindex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lo, n := uint32(0), 512
	for trial := 0; trial < 30; trial++ {
		a := randSet(rng, lo, n, rng.Intn(300))
		b := randSet(rng, lo, n, rng.Intn(300))
		want, _ := localindex.UnionSorted(a, b)

		// Word-level OR of wire bitmaps.
		wa := IDsToBits(a, lo, n)
		OrBits(wa, IDsToBits(b, lo, n))
		if got := BitsToIDs(wa, lo); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: OrBits union mismatch", trial)
		}
		if CountBits(wa) != len(want) {
			t.Fatalf("trial %d: CountBits=%d want %d", trial, CountBits(wa), len(want))
		}

		// Dense.Or and the generic Union helper.
		da, db := NewDense(lo, n), NewDense(lo, n)
		for _, v := range a {
			da.Add(v)
		}
		for _, v := range b {
			db.Add(v)
		}
		da.Or(db)
		if !reflect.DeepEqual(da.Vertices(), want) || da.Len() != len(want) {
			t.Fatalf("trial %d: Dense.Or mismatch", trial)
		}
		sp := NewSparseFrom(lo, n, a)
		Union(sp, db)
		if !reflect.DeepEqual(sp.Vertices(), want) {
			t.Fatalf("trial %d: Union(sparse, dense) mismatch", trial)
		}
	}
}

func TestBitsHelpers(t *testing.T) {
	w := NewBits(70)
	if len(w) != 3 {
		t.Fatalf("BitWords(70)=%d want 3", len(w))
	}
	for _, i := range []uint32{0, 31, 32, 69} {
		SetBit(w, i)
	}
	var got []uint32
	IterateBits(w, func(i uint32) { got = append(got, i) })
	if !reflect.DeepEqual(got, []uint32{0, 31, 32, 69}) {
		t.Fatalf("IterateBits=%v", got)
	}
	if TestBit(w, 1) || !TestBit(w, 69) {
		t.Fatal("TestBit wrong")
	}
	// Bits() agrees between representations.
	s := NewSparseFrom(100, 70, []uint32{100, 131, 132, 169})
	d := ToDense(s)
	if !reflect.DeepEqual(Bits(s), Bits(d)) {
		t.Fatal("Bits(sparse) != Bits(dense)")
	}
	if !reflect.DeepEqual(BitsToIDs(Bits(s), 100), s.Vertices()) {
		t.Fatal("Bits round trip failed")
	}
}

func TestKindStrings(t *testing.T) {
	if KindSparse.String() != "sparse" || KindDense.String() != "dense" {
		t.Fatal("Kind strings changed")
	}
	for mode, want := range map[WireMode]string{WireSparse: "sparse", WireDense: "dense", WireAuto: "auto", WireHybrid: "hybrid"} {
		if mode.String() != want {
			t.Fatalf("WireMode %d string %q want %q", int(mode), mode.String(), want)
		}
	}
}
