package frontier

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/localindex"
)

var allWireModes = []WireMode{WireSparse, WireDense, WireAuto, WireHybrid}

// clusteredSet builds a set of runs of consecutive ids separated by
// gaps — the shape contiguous-block partitioning produces.
func clusteredSet(rng *rand.Rand, lo uint32, n int) []uint32 {
	var ids []uint32
	v := int(lo) + rng.Intn(16)
	hi := int(lo) + n
	for v < hi {
		runLen := 1 + rng.Intn(40)
		for i := 0; i < runLen && v < hi; i++ {
			ids = append(ids, uint32(v))
			v++
		}
		v += 1 + rng.Intn(200)
	}
	return ids
}

func fullSet(lo uint32, n int) []uint32 {
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = lo + uint32(i)
	}
	return ids
}

// TestHybridSetRoundTrip: EncodeSet∘Decode is the identity for every
// mode on random, clustered, empty, full, and single-id sets over
// universes straddling chunk boundaries.
func TestHybridSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type tc struct {
		name string
		lo   uint32
		n    int
		ids  []uint32
	}
	cases := []tc{
		{"empty", 100, 10000, nil},
		{"single", 5000, 9000, []uint32{9123}},
		{"full-small", 7, 130, fullSet(7, 130)},
		{"full-chunked", 0, 3*ChunkSpan + 77, fullSet(0, 3*ChunkSpan+77)},
		{"chunk-edges", 0, 2 * ChunkSpan, []uint32{0, ChunkSpan - 1, ChunkSpan, 2*ChunkSpan - 1}},
	}
	for trial := 0; trial < 12; trial++ {
		lo := uint32(rng.Intn(100000))
		n := 1 + rng.Intn(5*ChunkSpan)
		cases = append(cases,
			tc{"random", lo, n, randSet(rng, lo, n, rng.Intn(2*n))},
			tc{"clustered", lo, n, clusteredSet(rng, lo, n)},
		)
	}
	for _, c := range cases {
		for _, mode := range allWireModes {
			var h ContainerHist
			buf := EncodeSetStats(c.ids, c.lo, c.n, mode, &h)
			got := Decode(buf)
			if len(got) != len(c.ids) {
				t.Fatalf("%s lo=%d n=%d mode=%v: decoded %d ids, want %d",
					c.name, c.lo, c.n, mode, len(got), len(c.ids))
			}
			for j := range c.ids {
				if got[j] != c.ids[j] {
					t.Fatalf("%s mode=%v: id[%d]=%d want %d", c.name, mode, j, got[j], c.ids[j])
				}
			}
			if h.Payloads() != 1 {
				t.Fatalf("%s mode=%v: histogram recorded %d payloads", c.name, mode, h.Payloads())
			}
		}
	}
}

// TestHybridNeverExceedsAuto: per payload, the hybrid encoding is no
// longer than the best of the raw list and the dense bitmap — i.e.
// hybrid ≤ min(sparse, dense) with the chunk headers already included,
// so wire=hybrid can never move more words than wire=auto.
func TestHybridNeverExceedsAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		lo := uint32(rng.Intn(10000))
		n := 1 + rng.Intn(3*ChunkSpan)
		var ids []uint32
		switch trial % 3 {
		case 0:
			ids = randSet(rng, lo, n, rng.Intn(2*n))
		case 1:
			ids = clusteredSet(rng, lo, n)
		case 2:
			ids = fullSet(lo, n)
		}
		hyb := len(EncodeSet(ids, lo, n, WireHybrid))
		auto := len(EncodeSet(ids, lo, n, WireAuto))
		sparse := len(ids)
		dense := 3 + BitWords(n)
		best := sparse
		if dense < best {
			best = dense
		}
		if hyb > best {
			t.Fatalf("trial %d (n=%d, %d ids): hybrid %d words exceeds min(sparse %d, dense %d)",
				trial, n, len(ids), hyb, sparse, dense)
		}
		if hyb > auto {
			t.Fatalf("trial %d: hybrid %d words exceeds auto %d", trial, hyb, auto)
		}
	}
}

// TestHybridCompressesMidOccupancy: in the mid-occupancy regime
// (clustered or a few percent dense) the chunk containers beat both
// legacy forms by a real margin — the regime motivating the codec.
func TestHybridCompressesMidOccupancy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 4 * ChunkSpan
	// ~3% uniform occupancy: ids gap ~32, one varint byte per id.
	ids := randSet(rng, 0, n, n/32)
	hyb := len(EncodeSet(ids, 0, n, WireHybrid))
	auto := len(EncodeSet(ids, 0, n, WireAuto))
	if hyb*2 > auto {
		t.Fatalf("mid-occupancy: hybrid %d words vs auto %d — expected ≥ 2x reduction", hyb, auto)
	}
	// Clustered runs: extents collapse to a few bytes per run.
	cl := clusteredSet(rng, 0, n)
	hyb = len(EncodeSet(cl, 0, n, WireHybrid))
	auto = len(EncodeSet(cl, 0, n, WireAuto))
	if hyb*2 > auto {
		t.Fatalf("clustered: hybrid %d words vs auto %d — expected ≥ 2x reduction", hyb, auto)
	}
}

// TestEncodeSetDoesNotAlias: the raw-list arm used to alias the
// caller's slice, corrupting payloads mutated while in flight. Every
// encode now owns its buffer.
func TestEncodeSetDoesNotAlias(t *testing.T) {
	for _, mode := range allWireModes {
		ids := []uint32{3, 9, 17, 40}
		want := append([]uint32(nil), ids...)
		buf := EncodeSetStats(ids, 0, 64, mode, nil)
		for i := range ids {
			ids[i] = 0 // mutate "in flight"
		}
		if got := Decode(buf); !reflect.DeepEqual(got, want) {
			t.Fatalf("mode %v: in-flight mutation corrupted the payload: got %v want %v", mode, got, want)
		}
	}
	// The frontier fast path must not alias either.
	s := NewSparseFrom(0, 64, []uint32{1, 2, 50})
	buf := EncodeFrontier(s, WireAuto)
	s.Add(7)
	if got := Decode(buf); !reflect.DeepEqual(got, []uint32{1, 2, 50}) {
		t.Fatalf("EncodeFrontier aliased live frontier storage: got %v", got)
	}
}

// TestEncodeFrontierHybridFastPath: the dense-representation fast path
// (chunk stream built straight from the wire words) must produce
// byte-identical payloads to the id-list path for every occupancy.
func TestEncodeFrontierHybridFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 30; trial++ {
		lo := uint32(rng.Intn(5000))
		n := 1 + rng.Intn(2*ChunkSpan)
		var ids []uint32
		switch trial % 4 {
		case 0:
			ids = randSet(rng, lo, n, rng.Intn(n+1))
		case 1:
			ids = clusteredSet(rng, lo, n)
		case 2:
			ids = fullSet(lo, n)
		case 3: // empty
		}
		d := NewDense(lo, n)
		for _, v := range ids {
			d.Add(v)
		}
		var hd, hs ContainerHist
		fast := EncodeFrontierStats(d, WireHybrid, &hd)
		slow := EncodeSetStats(ids, lo, n, WireHybrid, &hs)
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("trial %d (n=%d, %d ids): dense fast path diverged (%d vs %d words)",
				trial, n, len(ids), len(fast), len(slow))
		}
		if hd != hs {
			t.Fatalf("trial %d: fast-path histogram %+v != set-path %+v", trial, hd, hs)
		}
	}
}

// TestEncodeBitsRoundTrip: DecodeBits∘EncodeBits is the identity on
// wire bitmaps and never produces a longer payload than the raw words.
func TestEncodeBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(3*ChunkSpan)
		w := NewBits(n)
		count := rng.Intn(n)
		if trial%4 == 0 {
			count = 0
		}
		for i := 0; i < count; i++ {
			SetBit(w, uint32(rng.Intn(n)))
		}
		var h ContainerHist
		enc := EncodeBits(w, n, WireHybrid, &h)
		if len(enc) > len(w) {
			t.Fatalf("trial %d: EncodeBits grew the payload (%d > %d words)", trial, len(enc), len(w))
		}
		got := DecodeBits(enc, n)
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("trial %d: bits round trip mismatch", trial)
		}
		// Non-hybrid modes pass through untouched.
		if raw := EncodeBits(w, n, WireAuto, nil); len(raw) != len(w) {
			t.Fatalf("trial %d: WireAuto touched a bitmap payload", trial)
		}
	}
}

// TestContainerHistAccounting: the histogram sums payloads and chunk
// choices consistently and Sub inverts Add.
func TestContainerHistAccounting(t *testing.T) {
	var h ContainerHist
	n := 3 * ChunkSpan
	// Chunk 0 clustered (runs), chunk 1 empty, chunk 2 scattered (list).
	ids := append(fullSet(0, 600), 2*ChunkSpan+5, 2*ChunkSpan+900, 2*ChunkSpan+2000)
	buf := EncodeSetStats(ids, 0, n, WireHybrid, &h)
	if h.HybridPayloads != 1 || h.Payloads() != 1 {
		t.Fatalf("payload accounting wrong: %+v", h)
	}
	if h.EmptyChunks+h.ListChunks+h.BitmapChunks+h.RunChunks != int64(numChunks(n)) {
		t.Fatalf("chunk accounting wrong: %+v", h)
	}
	if h.RunChunks == 0 || h.ListChunks == 0 || h.EmptyChunks == 0 {
		t.Fatalf("expected runs+list+empty chunks, got %+v", h)
	}
	if !reflect.DeepEqual(Decode(buf), ids) {
		t.Fatal("mixed-container payload failed to round trip")
	}
	snap := h
	EncodeSetStats(ids, 0, n, WireHybrid, &h)
	if d := h.Sub(snap); !reflect.DeepEqual(d, snap) {
		t.Fatalf("Sub delta %+v != first-encode histogram %+v", d, snap)
	}
}

// FuzzHybridSetRoundTrip feeds arbitrary byte strings through a
// set-builder and asserts EncodeSet∘Decode = id for every wire mode.
func FuzzHybridSetRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(100), uint8(0))
	f.Add([]byte{1, 2, 3, 250, 250, 250}, uint16(1000), uint8(7))
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 9, 9, 9, 9}, uint16(5000), uint8(200))
	f.Fuzz(func(t *testing.T, raw []byte, span uint16, lob uint8) {
		n := int(span) + 1
		lo := uint32(lob) * 1000
		// Interpret consecutive bytes as id deltas within the universe.
		set := make([]uint32, 0, len(raw))
		v := 0
		for _, b := range raw {
			v += int(b)
			set = append(set, lo+uint32(v%n))
		}
		ids, _ := localindex.SortSet(set)
		for _, mode := range allWireModes {
			buf := EncodeSet(ids, lo, n, mode)
			got := Decode(buf)
			if len(got) != len(ids) {
				t.Fatalf("mode %v: decoded %d ids, want %d", mode, len(got), len(ids))
			}
			for i := range ids {
				if got[i] != ids[i] {
					t.Fatalf("mode %v: id[%d]=%d want %d", mode, i, got[i], ids[i])
				}
			}
			if mode == WireHybrid && len(buf) > len(ids) && len(buf) > 3+BitWords(n) {
				t.Fatalf("hybrid payload %d words exceeds both fallbacks (raw %d, dense %d)",
					len(buf), len(ids), 3+BitWords(n))
			}
		}
	})
}

// FuzzHybridBitsRoundTrip feeds arbitrary bitmaps through the bits
// codec and asserts the round trip and the no-growth guarantee.
func FuzzHybridBitsRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(31))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint16(64))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 128}, uint16(4097))
	f.Fuzz(func(t *testing.T, raw []byte, span uint16) {
		n := int(span) + 1
		w := NewBits(n)
		for i, b := range raw {
			for j := 0; j < 8; j++ {
				if b&(1<<j) != 0 {
					bit := (i*8 + j) % n
					SetBit(w, uint32(bit))
				}
			}
		}
		enc := EncodeBits(w, n, WireHybrid, nil)
		if len(enc) > len(w) {
			t.Fatalf("EncodeBits grew the payload (%d > %d words)", len(enc), len(w))
		}
		if got := DecodeBits(enc, n); !reflect.DeepEqual(got, w) {
			t.Fatal("bits round trip mismatch")
		}
	})
}
