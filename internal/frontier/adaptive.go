package frontier

// DefaultOccupancy is the sparse→dense switch threshold of the adaptive
// frontier: once more than this fraction of the universe is in the set,
// the bitmap form is both smaller (32 ids per word) and faster to
// union, so the representation flips.
const DefaultOccupancy = 1.0 / 32

// Adaptive is a frontier that starts sparse and switches to the dense
// bitmap once occupancy crosses a threshold. The switch is one-way: a
// level frontier only grows, and the engines allocate a fresh frontier
// per level, so dense→sparse transitions happen naturally at the next
// level.
type Adaptive struct {
	rep   Frontier
	limit int // switch to dense when Len() exceeds this
}

// NewAdaptive returns an empty adaptive frontier over [lo, lo+n) that
// switches to the dense representation when occupancy exceeds the given
// fraction (<= 0 selects DefaultOccupancy; >= 1 never switches).
func NewAdaptive(lo uint32, n int, occupancy float64) *Adaptive {
	if occupancy <= 0 {
		occupancy = DefaultOccupancy
	}
	limit := int(occupancy * float64(n))
	if limit < 1 {
		limit = 1
	}
	return &Adaptive{rep: NewSparse(lo, n), limit: limit}
}

// Add inserts v, switching representation at the occupancy threshold.
// The raw backing length bounds the distinct count from above, so the
// (normalizing) Len is only consulted once that bound is crossed.
func (a *Adaptive) Add(v uint32) {
	a.rep.Add(v)
	if s, ok := a.rep.(*Sparse); ok && len(s.ids) > a.limit && s.Len() > a.limit {
		a.rep = ToDense(s)
	}
}

// Has reports membership.
func (a *Adaptive) Has(v uint32) bool { return a.rep.Has(v) }

// Len returns the number of members.
func (a *Adaptive) Len() int { return a.rep.Len() }

// Universe returns the id range.
func (a *Adaptive) Universe() (uint32, int) { return a.rep.Universe() }

// Iterate visits members in ascending order.
func (a *Adaptive) Iterate(fn func(v uint32)) { a.rep.Iterate(fn) }

// Vertices returns the ascending member slice.
func (a *Adaptive) Vertices() []uint32 { return a.rep.Vertices() }

// Kind reports the current underlying representation.
func (a *Adaptive) Kind() Kind { return a.rep.Kind() }
