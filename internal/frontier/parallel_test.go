package frontier

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pool"
)

// Deterministic test sets across the occupancy spectrum, sized well
// past the parallelWorthwhile threshold so the grouped paths engage.
func parallelTestSets(t *testing.T) (int, [][]uint32) {
	t.Helper()
	const n = 40 * ChunkSpan
	rng := rand.New(rand.NewSource(7))
	sets := [][]uint32{nil, {0}, {uint32(n - 1)}}
	for _, frac := range []float64{0.001, 0.01, 0.12, 0.5, 0.95} {
		var ids []uint32
		for v := 0; v < n; v++ {
			if rng.Float64() < frac {
				ids = append(ids, uint32(v))
			}
		}
		sets = append(sets, ids)
	}
	// A runs-heavy set and a full universe.
	var runs []uint32
	for v := 0; v < n; v += 900 {
		for j := 0; j < 400 && v+j < n; j++ {
			runs = append(runs, uint32(v+j))
		}
	}
	full := make([]uint32, n)
	for v := range full {
		full[v] = uint32(v)
	}
	return n, append(sets, runs, full)
}

// The grouped encode must be byte-identical to the serial encode — same
// payload, same histogram — for every worker count, and the grouped
// decode must invert both.
func TestParCodecMatchesSerial(t *testing.T) {
	n, sets := parallelTestSets(t)
	const lo = 5 * ChunkSpan // offset universe, like a mid-mesh rank block
	for si, ids := range sets {
		shifted := make([]uint32, len(ids))
		for i, v := range ids {
			shifted[i] = v + lo
		}
		var hSerial ContainerHist
		serial := EncodeSetStats(shifted, lo, n, WireHybrid, &hSerial)
		for _, workers := range []int{1, 2, 8} {
			p := pool.New(workers)
			var hPar ContainerHist
			par := EncodeSetStatsPar(p, shifted, lo, n, WireHybrid, &hPar)
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("set %d workers %d: parallel encode differs from serial", si, workers)
			}
			if hSerial != hPar {
				t.Fatalf("set %d workers %d: parallel hist %+v != serial %+v", si, workers, hPar, hSerial)
			}
			dec := DecodePar(p, par)
			if len(dec) == 0 {
				dec = nil
			}
			var want []uint32 = shifted
			if len(shifted) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(dec, want) {
				t.Fatalf("set %d workers %d: parallel decode does not invert encode", si, workers)
			}
		}
	}
}

func TestParBitsMatchesSerial(t *testing.T) {
	n, sets := parallelTestSets(t)
	for si, ids := range sets {
		words := IDsToBits(ids, 0, n)
		var hSerial ContainerHist
		serial := EncodeBits(append([]uint32(nil), words...), n, WireHybrid, &hSerial)
		for _, workers := range []int{1, 2, 8} {
			p := pool.New(workers)
			var hPar ContainerHist
			par := EncodeBitsPar(p, append([]uint32(nil), words...), n, WireHybrid, &hPar)
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("set %d workers %d: parallel bits encode differs from serial", si, workers)
			}
			if hSerial != hPar {
				t.Fatalf("set %d workers %d: parallel bits hist differs", si, workers)
			}
			back := DecodeBitsPar(p, par, n)
			if !reflect.DeepEqual(back, words) {
				t.Fatalf("set %d workers %d: parallel bits decode does not invert", si, workers)
			}
		}
	}
}

// Out-of-universe ids must panic on the grouped path exactly like the
// serial one (the driver relies on this to catch protocol bugs).
func TestParEncodeRejectsOutOfUniverse(t *testing.T) {
	p := pool.New(4)
	n := 20 * ChunkSpan
	ids := make([]uint32, 0, n/2)
	for v := 0; v < n/2; v++ {
		ids = append(ids, uint32(v))
	}
	bad := append(append([]uint32(nil), ids...), uint32(n)) // one past the universe
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-universe id did not panic on the parallel path")
		}
	}()
	EncodeSetStatsPar(p, bad, 0, n, WireHybrid, nil)
}

// SetBitAtomic under contention on shared words must lose no updates;
// this is the 2D bottom-up claims-bitmap regression (run with -race).
func TestSetBitAtomicSharedWords(t *testing.T) {
	const n = 1 << 16
	w := NewBits(n)
	p := pool.New(8)
	p.Run(n, 7, func(chunk, lo, hi int) { // grain 7 keeps chunks word-straddling
		for i := lo; i < hi; i++ {
			if i%3 != 0 {
				SetBitAtomic(w, uint32(i))
			}
		}
	})
	for i := 0; i < n; i++ {
		if got, want := TestBit(w, uint32(i)), i%3 != 0; got != want {
			t.Fatalf("bit %d = %v, want %v (lost update)", i, got, want)
		}
	}
}
