package frontier

import (
	"fmt"
	"math/bits"

	"repro/internal/localindex"
)

// Dense is the bitmap frontier: one bit per universe vertex, built on
// localindex.Bitset. Union is word-wise OR; the bottom-up BFS steps and
// the dense wire encoding work directly on this form.
type Dense struct {
	lo    uint32
	n     int
	bits  *localindex.Bitset
	count int
}

// NewDense returns an empty dense frontier over [lo, lo+n).
func NewDense(lo uint32, n int) *Dense {
	return &Dense{lo: lo, n: n, bits: localindex.NewBitset(n)}
}

func (d *Dense) check(v uint32) {
	if v < d.lo || uint64(v) >= uint64(d.lo)+uint64(d.n) {
		panic(fmt.Sprintf("frontier: vertex %d outside universe [%d, %d)", v, d.lo, uint64(d.lo)+uint64(d.n)))
	}
}

// Add inserts v.
func (d *Dense) Add(v uint32) {
	d.check(v)
	if !d.bits.TestAndSet(v - d.lo) {
		d.count++
	}
}

// Has reports membership.
func (d *Dense) Has(v uint32) bool {
	d.check(v)
	return d.bits.Test(v - d.lo)
}

// Len returns the number of members.
func (d *Dense) Len() int { return d.count }

// Universe returns the id range.
func (d *Dense) Universe() (uint32, int) { return d.lo, d.n }

// Iterate visits members in ascending order by scanning set bits.
func (d *Dense) Iterate(fn func(v uint32)) {
	for wi, w := range d.bits.Words() {
		base := d.lo + uint32(wi)*64
		for w != 0 {
			fn(base + uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// Vertices materializes the ascending member slice.
func (d *Dense) Vertices() []uint32 {
	out := make([]uint32, 0, d.count)
	d.Iterate(func(v uint32) { out = append(out, v) })
	return out
}

// Kind returns KindDense.
func (d *Dense) Kind() Kind { return KindDense }

// Or unions src into d (both over the same universe) by word-wise OR.
func (d *Dense) Or(src *Dense) {
	if d.lo != src.lo || d.n != src.n {
		panic("frontier: Or over mismatched universes")
	}
	dw, sw := d.bits.Words(), src.bits.Words()
	count := 0
	for i := range dw {
		dw[i] |= sw[i]
		count += bits.OnesCount64(dw[i])
	}
	d.count = count
}

// WireBits packs the membership bitmap into 32-bit wire words (bit i of
// word j is vertex lo+32j+i), the payload form of the bitmap exchanges.
func (d *Dense) WireBits() []uint32 {
	out := NewBits(d.n)
	for wi, w := range d.bits.Words() {
		if 2*wi < len(out) {
			out[2*wi] = uint32(w)
		}
		if 2*wi+1 < len(out) {
			out[2*wi+1] = uint32(w >> 32)
		}
	}
	return out
}
