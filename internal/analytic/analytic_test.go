package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGammaLimits(t *testing.T) {
	n := 1e6
	// Small mk: gamma ~ mk/n.
	m, k := 100.0, 2.0
	got := Gamma(m, n, k)
	want := m * k / n
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("small-mk gamma = %g, want ~%g", got, want)
	}
	// Large mk: gamma -> 1.
	if g := Gamma(n, n, 50); g < 0.999999 {
		t.Errorf("large-mk gamma = %g, want ~1", g)
	}
	// Degenerate inputs.
	if Gamma(0, n, 10) != 0 || Gamma(100, 1, 10) != 0 || Gamma(100, n, 0) != 0 {
		t.Error("degenerate gamma not zero")
	}
}

func TestGammaMonotone(t *testing.T) {
	f := func(mRaw, kRaw uint16) bool {
		n := 1e5
		m1 := float64(mRaw%1000) + 1
		m2 := m1 + 50
		k := float64(kRaw%100) + 1
		g1, g2 := Gamma(m1, n, k), Gamma(m2, n, k)
		return g1 >= 0 && g2 <= 1 && g2 >= g1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedMessageLengthsScale(t *testing.T) {
	// §3.1: all three quantities are O(n/P) — doubling P at fixed n
	// must not increase the per-processor volume beyond ~n/P.
	n, k := 4e7, 10.0
	for _, p := range []int{16, 64, 256} {
		r := int(math.Sqrt(float64(p)))
		oneD := Expected1DFold(n, k, p)
		ex := Expected2DExpand(n, k, r, r)
		fo := Expected2DFold(n, k, r, r)
		bound := WorstCase1DFold(n, k, p)
		if oneD > bound*1.0001 {
			t.Errorf("P=%d: 1D fold %g above worst case %g", p, oneD, bound)
		}
		if ex > bound*1.0001 || fo > bound*1.0001 {
			t.Errorf("P=%d: 2D volumes (%g,%g) above nk/P=%g", p, ex, fo, bound)
		}
		if ex != fo {
			t.Errorf("square mesh: expand %g != fold %g", ex, fo)
		}
	}
}

func TestExpected1DFoldEdgeCases(t *testing.T) {
	if Expected1DFold(1000, 10, 1) != 0 {
		t.Error("P=1 should have no communication")
	}
	if Expected2DExpand(1000, 10, 1, 4) != 0 {
		t.Error("R=1 expand should be zero")
	}
	if Expected2DFold(1000, 10, 4, 1) != 0 {
		t.Error("C=1 fold should be zero")
	}
}

// TestCrossoverKPaperValue checks the paper's Figure 6b computation:
// for P=400 and n=40,000,000 the paper reports a crossover degree of
// 34. Solving the equation exactly gives k ≈ 31.3 (at k=34 the 1D side
// is already ~5% heavier), so we assert the same ballpark; see
// EXPERIMENTS.md for the discrepancy note.
func TestCrossoverKPaperValue(t *testing.T) {
	k, err := CrossoverK(4e7, 400, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if k < 29 || k > 36 {
		t.Fatalf("crossover k = %g, paper reports 34", k)
	}
}

func TestCrossoverKBalancesVolumes(t *testing.T) {
	n := 4e5
	p := 100
	k, err := CrossoverK(n, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sq := 10
	lhs := Expected1DFold(n, k, p)
	rhs := 2 * n / float64(p) * Gamma(n/float64(sq), n, k) * float64(sq-1)
	if math.Abs(lhs-rhs)/lhs > 1e-6 {
		t.Errorf("crossover does not balance: lhs=%g rhs=%g", lhs, rhs)
	}
}

func TestCrossoverKErrors(t *testing.T) {
	if _, err := CrossoverK(1e6, 300, 1000); err == nil {
		t.Error("non-square P accepted")
	}
	if _, err := CrossoverK(1e6, 400, 0.5); err == nil {
		t.Error("expected no-crossover error for tiny kMax")
	}
}

func TestExpectedNonEmptyLists(t *testing.T) {
	// Large R: approaches nk/P.
	n, k := 1e6, 10.0
	r, c := 1000, 10
	got := ExpectedNonEmptyLists(n, k, r, c)
	want := n * k / float64(r*c)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("large-R expected lists %g, want ~%g", got, want)
	}
	// R=1: bounded by n/C.
	if g := ExpectedNonEmptyLists(n, k, 1, 10); g >= n/10 {
		t.Errorf("R=1 expected lists %g not below n/C", g)
	}
	// Degenerate mesh.
	if ExpectedNonEmptyLists(n, k, 0, 10) != 0 {
		t.Error("degenerate mesh not zero")
	}
}
