// Package analytic implements the closed-form analysis of §3.1: the
// γ(m) column-occupancy probability, the expected per-level message
// lengths for the 1D fold and the 2D expand/fold, and the solver for
// the degree at which 1D and 2D partitionings exchange the same volume
// (the crossover of Figure 6b).
package analytic

import (
	"fmt"
	"math"
)

// Gamma returns γ(m) = 1 − ((n−1)/n)^{mk}: the probability that a given
// column of a matrix formed by any m rows of the adjacency matrix of a
// Poisson random graph (n vertices, average degree k) is nonzero.
// γ → mk/n for large n and → 1 for large mk.
func Gamma(m, n, k float64) float64 {
	if n <= 1 || m <= 0 || k <= 0 {
		return 0
	}
	// ((n-1)/n)^{mk} = exp(mk * log(1 - 1/n)); the log1p form stays
	// accurate for the billion-vertex regimes the paper analyzes.
	return 1 - math.Exp(m*k*math.Log1p(-1/n))
}

// Expected1DFold returns the expected number of neighbor indices a
// single processor sends per level under 1D partitioning when all its
// vertices are on the frontier: n·γ(n/P)·(P−1)/P.
func Expected1DFold(n, k float64, p int) float64 {
	if p <= 1 {
		return 0
	}
	fp := float64(p)
	return n * Gamma(n/fp, n, k) * (fp - 1) / fp
}

// Expected2DExpand returns the expected expand message length per
// processor per level under 2D partitioning with targeted sends:
// (n/P)·γ(n/R)·(R−1).
func Expected2DExpand(n, k float64, r, c int) float64 {
	p := float64(r * c)
	return n / p * Gamma(n/float64(r), n, k) * float64(r-1)
}

// Expected2DFold returns the fold counterpart: (n/P)·γ(n/C)·(C−1).
func Expected2DFold(n, k float64, r, c int) float64 {
	p := float64(r * c)
	return n / p * Gamma(n/float64(c), n, k) * float64(c-1)
}

// WorstCase1DFold returns the graph-independent worst case nk/P.
func WorstCase1DFold(n, k float64, p int) float64 { return n * k / float64(p) }

// ExpectedNonEmptyLists returns the expected number of non-empty
// partial edge lists on one rank of an R x C mesh (§2.4.1): each of
// the n/C columns in the rank's block column has on average k entries
// spread over R row blocks, so it is non-empty on a given row with
// probability 1 − (1 − 1/R)^k:
//
//	E = (n/C) · (1 − (1 − 1/R)^k)
//
// As R grows this approaches (n/C)·(k/R) = nk/P — the paper's O(n/P)
// bound that justifies indexing only non-empty lists.
func ExpectedNonEmptyLists(n, k float64, r, c int) float64 {
	if r <= 0 || c <= 0 {
		return 0
	}
	if r == 1 {
		// Every column with at least one edge is non-empty; for the
		// Poisson graph that is (n/C)·(1 − e^{−k}) approximately.
		return n / float64(c) * (1 - math.Exp(-k))
	}
	return n / float64(c) * (1 - math.Pow(1-1/float64(r), k))
}

// CrossoverK solves the paper's Figure 6b equation for the average
// degree at which 1D and 2D (square mesh, R = C = √P) partitionings
// exchange equal per-level volume:
//
//	n·γ(n/P)·(P−1)/P = 2·(n/P)·γ(n/√P)·(√P−1)
//
// P must be a perfect square. The left side grows faster in k (1D
// message length saturates at higher k), so the root is unique;
// bisection over k ∈ (0, kMax] finds it.
func CrossoverK(n float64, p int, kMax float64) (float64, error) {
	sq := int(math.Round(math.Sqrt(float64(p))))
	if sq*sq != p {
		return 0, fmt.Errorf("analytic: P=%d is not a perfect square", p)
	}
	diff := func(k float64) float64 {
		lhs := Expected1DFold(n, k, p)
		rhs := 2 * n / float64(p) * Gamma(n/float64(sq), n, k) * float64(sq-1)
		return lhs - rhs
	}
	lo, hi := 1e-9, kMax
	if diff(lo) >= 0 {
		return 0, fmt.Errorf("analytic: no crossover: 1D already heavier at k→0 for n=%g P=%d", n, p)
	}
	if diff(hi) <= 0 {
		return 0, fmt.Errorf("analytic: no crossover below kMax=%g for n=%g P=%d", kMax, n, p)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if diff(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
