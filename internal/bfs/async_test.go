package bfs

import (
	"fmt"
	"testing"

	"repro/internal/frontier"
	"repro/internal/graph"
)

func graph_LargestComponent(g *graph.CSR) graph.Vertex { return graph.LargestComponentVertex(g) }

func meshWireLabel(mesh [2]int, wire frontier.WireMode) string {
	return fmt.Sprintf("%dx%d/%s", mesh[0], mesh[1], wire)
}

var asyncMeshes = [][2]int{{1, 1}, {1, 4}, {4, 1}, {2, 2}, {4, 4}}

var asyncWires = []frontier.WireMode{
	frontier.WireSparse, frontier.WireDense, frontier.WireAuto, frontier.WireHybrid,
}

// runPair runs the same configuration synchronously and asynchronously
// on a fresh fixture each and returns both results.
func runPair(t *testing.T, g fixtureBuilder, opts Options) (sync, async *Result) {
	t.Helper()
	opts.Async = false
	sync = g(t, opts)
	opts.Async = true
	async = g(t, opts)
	return sync, async
}

type fixtureBuilder func(t *testing.T, opts Options) *Result

// checkAsyncAgainstSync asserts the acceptance contract: identical
// levels and exchange statistics, simulated execution never worse, and
// the overlap ledger consistent (OverlapS <= CommS per level, overlap
// only on the async side).
func checkAsyncAgainstSync(t *testing.T, label string, sync, async *Result) {
	t.Helper()
	levelsEqual(t, async.Levels, sync.Levels, label)
	if async.TotalExpandWords != sync.TotalExpandWords || async.TotalFoldWords != sync.TotalFoldWords {
		t.Fatalf("%s: words differ: async %d/%d, sync %d/%d", label,
			async.TotalExpandWords, async.TotalFoldWords, sync.TotalExpandWords, sync.TotalFoldWords)
	}
	if async.TotalDups != sync.TotalDups || async.TotalEdgesScanned != sync.TotalEdgesScanned {
		t.Fatalf("%s: dups/edges differ: async %d/%d, sync %d/%d", label,
			async.TotalDups, async.TotalEdgesScanned, sync.TotalDups, sync.TotalEdgesScanned)
	}
	if async.SimTime > sync.SimTime {
		t.Fatalf("%s: async simexec %g > sync %g", label, async.SimTime, sync.SimTime)
	}
	if sync.SimOverlap != 0 {
		t.Fatalf("%s: sync run recorded overlap %g", label, sync.SimOverlap)
	}
	if async.SimOverlap > async.SimComm {
		t.Fatalf("%s: overlap %g exceeds comm %g", label, async.SimOverlap, async.SimComm)
	}
	for l, ls := range async.PerLevel {
		if ls.OverlapS < 0 || ls.OverlapS > ls.CommS+1e-12 {
			t.Fatalf("%s level %d: OverlapS %g outside [0, CommS=%g]", label, l, ls.OverlapS, ls.CommS)
		}
	}
}

// TestAsyncMatchesSyncEveryMeshAndCodec is the acceptance matrix: the
// overlapped schedule produces identical levels (and words) to the
// phase-synchronous one on every mesh x wire codec, never slower in
// simulated time.
func TestAsyncMatchesSyncEveryMeshAndCodec(t *testing.T) {
	g := testGraph(t, 3000, 8, 11)
	for _, mesh := range asyncMeshes {
		for _, wire := range asyncWires {
			label := meshWireLabel(mesh, wire)
			builder := func(t *testing.T, opts Options) *Result {
				fx := build2D(t, g, mesh[0], mesh[1])
				res, err := Run2D(fx.world, fx.st2, opts)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			opts := DefaultOptions(graph_LargestComponent(g))
			opts.Wire = wire
			sync, async := runPair(t, builder, opts)
			checkAsyncAgainstSync(t, label, sync, async)
		}
	}
}

// TestAsyncMatchesSync1DEngine runs the matrix on the dedicated 1D
// engine.
func TestAsyncMatchesSync1DEngine(t *testing.T) {
	g := testGraph(t, 2500, 8, 13)
	for _, p := range []int{1, 3, 4, 8} {
		for _, wire := range asyncWires {
			builder := func(t *testing.T, opts Options) *Result {
				st, w := build1D(t, g, p)
				res, err := Run1D(w, st, opts)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			opts := DefaultOptions(graph_LargestComponent(g))
			opts.Wire = wire
			sync, async := runPair(t, builder, opts)
			checkAsyncAgainstSync(t, meshWireLabel([2]int{1, p}, wire), sync, async)
		}
	}
}

// TestAsyncMatchesSyncCollectiveVariants sweeps the expand and fold
// algorithm selectors and the traversal directions.
func TestAsyncMatchesSyncCollectiveVariants(t *testing.T) {
	g := testGraph(t, 3000, 10, 17)
	for _, expand := range []ExpandAlg{ExpandTargeted, ExpandAllGather, ExpandTwoPhase} {
		for _, fold := range []FoldAlg{FoldTwoPhase, FoldDirect, FoldTwoPhaseNoUnion, FoldBruck} {
			builder := func(t *testing.T, opts Options) *Result {
				fx := build2D(t, g, 2, 4)
				res, err := Run2D(fx.world, fx.st2, opts)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			opts := DefaultOptions(graph_LargestComponent(g))
			opts.Expand = expand
			opts.Fold = fold
			opts.Wire = frontier.WireHybrid
			sync, async := runPair(t, builder, opts)
			checkAsyncAgainstSync(t, expand.String()+"/"+fold.String(), sync, async)
		}
	}
	for _, dir := range []Direction{TopDown, BottomUp, DirectionOptimizing} {
		builder := func(t *testing.T, opts Options) *Result {
			fx := build2D(t, g, 2, 2)
			res, err := Run2D(fx.world, fx.st2, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		opts := DefaultOptions(graph_LargestComponent(g))
		opts.Direction = dir
		opts.Wire = frontier.WireAuto
		sync, async := runPair(t, builder, opts)
		checkAsyncAgainstSync(t, "direction="+dir.String(), sync, async)
	}
}

// TestAsyncMultiMatchesSync: the batched multi-source sweeps produce
// identical lane levels under both schedules, never slower.
func TestAsyncMultiMatchesSync(t *testing.T) {
	g := testGraph(t, 2500, 8, 19)
	srcs := multiSources(g, 9)
	for _, mesh := range [][2]int{{1, 1}, {2, 2}, {1, 4}} {
		for _, wire := range []frontier.WireMode{frontier.WireSparse, frontier.WireHybrid} {
			run := func(asyncOn bool) *MultiResult {
				fx := build2D(t, g, mesh[0], mesh[1])
				opts := DefaultOptions(0)
				opts.Wire = wire
				opts.Async = asyncOn
				res, err := MultiRun2D(fx.world, fx.st2, srcs, opts)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			sync, async := run(false), run(true)
			for lane := range srcs {
				levelsEqual(t, async.LaneLevels[lane], sync.LaneLevels[lane], "multi lane")
			}
			if async.SimTime > sync.SimTime {
				t.Fatalf("multi %v wire=%v: async simexec %g > sync %g", mesh, wire, async.SimTime, sync.SimTime)
			}
			if async.TotalExpandWords != sync.TotalExpandWords || async.TotalFoldWords != sync.TotalFoldWords {
				t.Fatalf("multi %v wire=%v: words differ", mesh, wire)
			}
		}
	}
}

// TestAsyncDeterministicSimexec: the overlapped schedule's simulated
// clock is a pure function of the workload — two runs agree bit for
// bit, level by level.
func TestAsyncDeterministicSimexec(t *testing.T) {
	g := testGraph(t, 3000, 10, 23)
	run := func() *Result {
		fx := build2D(t, g, 2, 4)
		opts := DefaultOptions(graph_LargestComponent(g))
		opts.Wire = frontier.WireHybrid
		res, err := Run2D(fx.world, fx.st2, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.SimTime != b.SimTime || a.SimComm != b.SimComm || a.SimOverlap != b.SimOverlap {
		t.Fatalf("async clock not deterministic: %.17g/%.17g/%.17g vs %.17g/%.17g/%.17g",
			a.SimTime, a.SimComm, a.SimOverlap, b.SimTime, b.SimComm, b.SimOverlap)
	}
	for l := range a.PerLevel {
		if a.PerLevel[l].ExecS != b.PerLevel[l].ExecS || a.PerLevel[l].OverlapS != b.PerLevel[l].OverlapS {
			t.Fatalf("level %d timings differ across runs", l)
		}
	}
}

// TestAsyncActuallyOverlaps: on a non-trivial mesh the default schedule
// hides a nonzero amount of communication and beats the synchronous
// clock strictly.
func TestAsyncActuallyOverlaps(t *testing.T) {
	g := testGraph(t, 6000, 10, 29)
	builder := func(t *testing.T, opts Options) *Result {
		fx := build2D(t, g, 4, 4)
		res, err := Run2D(fx.world, fx.st2, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sync, async := runPair(t, builder, DefaultOptions(graph_LargestComponent(g)))
	if async.SimOverlap <= 0 {
		t.Fatal("default async schedule hid nothing")
	}
	if async.SimTime >= sync.SimTime {
		t.Fatalf("async simexec %g not strictly below sync %g", async.SimTime, sync.SimTime)
	}
}
