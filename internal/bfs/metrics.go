package bfs

import (
	"repro/internal/metrics"
	"repro/internal/search"
)

// publishMetrics folds a finished run's statistics into the registry
// (no-op when reg is nil). Counters accumulate across runs sharing a
// registry; gauges hold the last run's values.
func publishMetrics(reg *metrics.Registry, res *Result) {
	if reg == nil {
		return
	}
	reg.Counter("bfs_runs_total").Inc()
	reg.Counter("bfs_levels_total").Add(int64(len(res.PerLevel)))
	reg.Counter("bfs_expand_words_total").Add(res.TotalExpandWords)
	reg.Counter("bfs_fold_words_total").Add(res.TotalFoldWords)
	reg.Counter("bfs_dup_vertices_total").Add(res.TotalDups)
	reg.Counter("bfs_edges_scanned_total").Add(res.TotalEdgesScanned)
	reg.Counter("bfs_hash_probes_total").Add(int64(res.HashProbes))
	switches := int64(0)
	for i := 1; i < len(res.PerLevel); i++ {
		if res.PerLevel[i].Direction != res.PerLevel[i-1].Direction {
			switches++
		}
	}
	reg.Counter("bfs_direction_switches_total").Add(switches)
	search.PublishContainers(reg, "bfs", res.Containers)
	search.PublishSim(reg, "bfs", res.SimTime, res.SimComm, res.SimOverlap)
	search.PublishFaults(reg, "bfs", res.Faults)
	reg.Gauge("bfs_load_imbalance").Set(res.LoadImbalance())
	h := reg.Histogram("bfs_level_exec_seconds", metrics.TimeBuckets)
	for _, ls := range res.PerLevel {
		h.Observe(ls.ExecS)
	}
}
