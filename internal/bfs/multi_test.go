package bfs

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/partition"
)

// multiSources picks b spread-out sources, including vertices outside
// the largest component when the graph has them.
func multiSources(g *graph.CSR, b int) []graph.Vertex {
	srcs := make([]graph.Vertex, 0, b)
	step := g.N / b
	if step == 0 {
		step = 1
	}
	for v := 0; len(srcs) < b; v += step {
		srcs = append(srcs, graph.Vertex(v%g.N))
	}
	return srcs
}

// TestMultiRun2DMatchesIndependentRuns is the lane-by-lane
// differential: every lane of a batched run must equal an independent
// single-source BFS from that lane's source, on every mesh shape and
// wire mode.
func TestMultiRun2DMatchesIndependentRuns(t *testing.T) {
	g := testGraph(t, 600, 5, 11)
	srcs := multiSources(g, 7)
	for _, mesh := range [][2]int{{1, 1}, {1, 4}, {4, 1}, {2, 2}, {4, 4}} {
		fx := build2D(t, g, mesh[0], mesh[1])
		for _, wire := range []frontier.WireMode{
			frontier.WireSparse, frontier.WireDense, frontier.WireAuto, frontier.WireHybrid,
		} {
			opts := DefaultOptions(0)
			opts.Wire = wire
			res, err := MultiRun2D(fx.world, fx.st2, srcs, opts)
			if err != nil {
				t.Fatalf("%dx%d wire=%v: %v", mesh[0], mesh[1], wire, err)
			}
			if res.B != len(srcs) || len(res.LaneLevels) != len(srcs) {
				t.Fatalf("%dx%d: lane count %d/%d, want %d", mesh[0], mesh[1],
					res.B, len(res.LaneLevels), len(srcs))
			}
			for lane, src := range srcs {
				single := DefaultOptions(src)
				single.Wire = wire
				ind, err := Run2D(fx.world, fx.st2, single)
				if err != nil {
					t.Fatal(err)
				}
				levelsEqual(t, res.LaneLevels[lane], ind.Levels,
					fmt.Sprintf("%dx%d wire=%v lane %d (src %d)", mesh[0], mesh[1], wire, lane, src))
			}
		}
	}
}

// TestMultiRun1DMatchesSerial checks the dedicated 1D engine
// lane-by-lane against the serial oracle and against the 2D engine's
// batched result.
func TestMultiRun1DMatchesSerial(t *testing.T) {
	g := testGraph(t, 500, 4, 12)
	srcs := multiSources(g, 5)
	for _, p := range []int{1, 3, 4} {
		l1, err := partition.NewLayout1D(g.N, p)
		if err != nil {
			t.Fatal(err)
		}
		st1, err := partition.Build1D(l1, visitCSR(g))
		if err != nil {
			t.Fatal(err)
		}
		w, err := comm.NewWorld(comm.Config{P: p})
		if err != nil {
			t.Fatal(err)
		}
		for _, wire := range []frontier.WireMode{
			frontier.WireSparse, frontier.WireDense, frontier.WireAuto, frontier.WireHybrid,
		} {
			opts := DefaultOptions(0)
			opts.Wire = wire
			res, err := MultiRun1D(w, st1, srcs, opts)
			if err != nil {
				t.Fatalf("P=%d wire=%v: %v", p, wire, err)
			}
			for lane, src := range srcs {
				levelsEqual(t, res.LaneLevels[lane], graph.BFS(g, src),
					fmt.Sprintf("1D P=%d wire=%v lane %d (src %d)", p, wire, lane, src))
			}
		}
	}
}

// TestMultiRunFullBatch runs the full 64-lane capacity and checks the
// nearest-source Levels agree with the lane minimum and that total
// words stay below 64 independent runs on the same store.
func TestMultiRunFullBatch(t *testing.T) {
	g := testGraph(t, 2000, 6, 13)
	fx := build2D(t, g, 2, 2)
	srcs := multiSources(g, MaxLanes)
	opts := DefaultOptions(0)
	opts.Wire = frontier.WireAuto
	res, err := MultiRun2D(fx.world, fx.st2, srcs, opts)
	if err != nil {
		t.Fatal(err)
	}
	var indWords int64
	for lane, src := range srcs {
		single := DefaultOptions(src)
		single.Wire = frontier.WireAuto
		ind, err := Run2D(fx.world, fx.st2, single)
		if err != nil {
			t.Fatal(err)
		}
		indWords += ind.TotalExpandWords + ind.TotalFoldWords
		for v, l := range ind.Levels {
			if res.LaneLevels[lane][v] != l {
				t.Fatalf("lane %d level[%d] = %d, want %d", lane, v, res.LaneLevels[lane][v], l)
			}
			if l != graph.Unreached && (res.Levels[v] == graph.Unreached || res.Levels[v] > l) {
				t.Fatalf("nearest-source level[%d] = %d above lane %d's %d", v, res.Levels[v], lane, l)
			}
		}
	}
	multiWords := res.TotalExpandWords + res.TotalFoldWords
	if multiWords >= indWords {
		t.Errorf("batched run moved %d words, not fewer than %d over %d independent runs",
			multiWords, indWords, MaxLanes)
	}
	if res.LaneDistance(srcs[0], srcs[0]) != 0 {
		t.Error("lane's own source not at level 0")
	}
}

// TestMultiRunDuplicateSources gives two lanes the same source: both
// must produce that source's BFS levels independently.
func TestMultiRunDuplicateSources(t *testing.T) {
	g := testGraph(t, 300, 4, 14)
	fx := build2D(t, g, 2, 2)
	src := graph.LargestComponentVertex(g)
	res, err := MultiRun2D(fx.world, fx.st2, []graph.Vertex{src, src, 0}, DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	want := graph.BFS(g, src)
	levelsEqual(t, res.LaneLevels[0], want, "duplicate lane 0")
	levelsEqual(t, res.LaneLevels[1], want, "duplicate lane 1")
	levelsEqual(t, res.LaneLevels[2], graph.BFS(g, 0), "lane 2")
}

// TestMultiRunValidation exercises the batch validation errors.
func TestMultiRunValidation(t *testing.T) {
	g := testGraph(t, 100, 3, 15)
	fx := build2D(t, g, 1, 2)
	if _, err := MultiRun2D(fx.world, fx.st2, nil, DefaultOptions(0)); err == nil {
		t.Error("empty batch accepted")
	}
	big := make([]graph.Vertex, MaxLanes+1)
	if _, err := MultiRun2D(fx.world, fx.st2, big, DefaultOptions(0)); err == nil {
		t.Error("oversized batch accepted")
	}
	if _, err := MultiRun2D(fx.world, fx.st2, []graph.Vertex{graph.Vertex(g.N)}, DefaultOptions(0)); err == nil {
		t.Error("out-of-range source accepted")
	}
}

// TestMultiRunMaxLevels bounds the sweep depth.
func TestMultiRunMaxLevels(t *testing.T) {
	g := testGraph(t, 400, 5, 16)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(0)
	opts.MaxLevels = 2
	res, err := MultiRun2D(fx.world, fx.st2, multiSources(g, 3), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerLevel) > 2 {
		t.Errorf("%d sweeps recorded above MaxLevels=2", len(res.PerLevel))
	}
	for _, lanes := range res.LaneLevels {
		for _, l := range lanes {
			if l > 2 {
				t.Fatalf("level %d labeled beyond MaxLevels", l)
			}
		}
	}
}

// TestLaneCodecRoundTrip exercises both mask layouts (interleaved and
// transposed planes) across batch widths and set shapes.
func TestLaneCodecRoundTrip(t *testing.T) {
	cases := []struct {
		b, n  int
		vs    []uint32
		masks func(i int) uint64
	}{
		{8, 4096, []uint32{1, 2, 3}, func(i int) uint64 { return 1 << uint(i) }},          // tiny set -> interleaved
		{8, 4096, nil, func(i int) uint64 { return uint64(i)%255 + 1 }},                   // wide set -> planes
		{33, 4096, nil, func(i int) uint64 { return uint64(i) * 2654435761 % (1 << 33) }}, // two-word masks
		{64, 4096, nil, func(i int) uint64 { return ^uint64(0) - uint64(i) }},             // full width
		{1, 100, []uint32{0, 99}, func(i int) uint64 { return 1 }},                        // single lane
	}
	for ci, tc := range cases {
		vs := tc.vs
		if vs == nil {
			for v := 0; v < tc.n; v += 2 {
				vs = append(vs, uint32(v))
			}
		}
		ms := make([]uint64, len(vs))
		for i := range ms {
			ms[i] = tc.masks(i)
			if tc.b < 64 {
				ms[i] &= (1 << uint(tc.b)) - 1
				if ms[i] == 0 {
					ms[i] = 1
				}
			}
		}
		for _, wire := range []frontier.WireMode{
			frontier.WireSparse, frontier.WireDense, frontier.WireAuto, frontier.WireHybrid,
		} {
			buf := encodeLanes(nil, vs, ms, tc.b, 0, tc.n, wire, nil)
			// Copy to catch aliasing into caller storage.
			buf = append([]uint32(nil), buf...)
			gvs, gms := decodeLanes(nil, buf, tc.b)
			if len(gvs) != len(vs) {
				t.Fatalf("case %d wire=%v: %d members, want %d", ci, wire, len(gvs), len(vs))
			}
			for i := range vs {
				if gvs[i] != vs[i] || gms[i] != ms[i] {
					t.Fatalf("case %d wire=%v member %d: (%d,%x), want (%d,%x)",
						ci, wire, i, gvs[i], gms[i], vs[i], ms[i])
				}
			}
		}
	}
	if got, _ := decodeLanes(nil, nil, 8); got != nil {
		t.Error("nil payload should decode to nil")
	}
}

// TestLaneCodecPicksCheaperForm checks the form choice is actually by
// size: a narrow batch over a wide set must ship planes, a wide batch
// over a narrow set interleaved.
func TestLaneCodecPicksCheaperForm(t *testing.T) {
	wide := make([]uint32, 1000)
	ms := make([]uint64, 1000)
	for i := range wide {
		wide[i] = uint32(i)
		ms[i] = 1
	}
	planes := encodeLanes(nil, wide, ms, 8, 0, 1000, frontier.WireSparse, nil)
	if planes[1] != laneFormPlanes {
		t.Errorf("b=8 s=1000 shipped form %d, want planes", planes[1])
	}
	// 2 (header) + set + 8 planes of ceil(1000/32) words.
	if want := 2 + 1000 + 8*frontier.BitWords(1000); len(planes) != want {
		t.Errorf("plane payload %d words, want %d", len(planes), want)
	}
	inter := encodeLanes(nil, wide[:4], ms[:4], 64, 0, 1000, frontier.WireSparse, nil)
	if inter[1] != laneFormInterleaved {
		t.Errorf("b=64 s=4 shipped form %d, want interleaved", inter[1])
	}
	if want := 2 + 4 + 4*2; len(inter) != want {
		t.Errorf("interleaved payload %d words, want %d", len(inter), want)
	}
}
