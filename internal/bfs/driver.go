package bfs

import (
	"fmt"
	"math"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/graph"
)

// reducer performs the per-level global reductions (frontier count,
// target-found flag, best meeting distance) either on the modeled
// combine-tree network or over point-to-point torus messages
// (Options.P2PTermination).
type reducer struct {
	c     *comm.Comm
	world comm.Group
	p2p   bool
	tag   int
}

func newReducer(c *comm.Comm, opts Options) *reducer {
	r := &reducer{c: c, p2p: opts.P2PTermination}
	if r.p2p {
		r.world = comm.Group{Ranks: make([]int, c.Size()), Me: c.Rank()}
		for i := range r.world.Ranks {
			r.world.Ranks[i] = i
		}
		r.tag = 1 << 28
	}
	return r
}

func (r *reducer) sum(v uint64) uint64 {
	if !r.p2p {
		return r.c.AllReduceSum(v)
	}
	r.tag += 1 << 21
	return collective.AllReduceP2P(r.c, r.world, collective.Opts{Tag: r.tag}, v, collective.OpSum)
}

func (r *reducer) or(b bool) bool {
	if !r.p2p {
		return r.c.AllReduceOr(b)
	}
	var v uint64
	if b {
		v = 1
	}
	r.tag += 1 << 21
	return collective.AllReduceP2P(r.c, r.world, collective.Opts{Tag: r.tag}, v, collective.OpOr) != 0
}

func (r *reducer) min(v uint64) uint64 {
	if !r.p2p {
		return r.c.AllReduceMin(v)
	}
	r.tag += 1 << 21
	return collective.AllReduceP2P(r.c, r.world, collective.Opts{Tag: r.tag}, v, collective.OpMin)
}

// stepper is a partitioning engine: it creates per-side search state
// and advances one complete BFS level in either direction (expand where
// applicable, neighbor scan, fold, mark for top-down; bitmap exchange
// and parent search for bottom-up). Both the 1D (Algorithm 1) and 2D
// (Algorithm 2) engines implement it, so the uni- and bi-directional
// drivers below are shared.
type stepper interface {
	newSide(src graph.Vertex) *sideState
	step(s *sideState, tagBase int) (rankLevel, bool)
	stepBottomUp(s *sideState, tagBase int) (rankLevel, bool)
	universe() int // global vertex count
}

// chooseDirection picks a level's expansion direction. Its inputs are
// globally reduced quantities, so every rank makes the same choice
// without extra communication.
func chooseDirection(opts Options, gf, unlabeled uint64) Direction {
	switch opts.Direction {
	case TopDown:
		return TopDown
	case BottomUp:
		return BottomUp
	case DirectionOptimizing:
		if float64(gf)*opts.doAlpha() >= float64(unlabeled) {
			return BottomUp
		}
		return TopDown
	default:
		panic(fmt.Sprintf("bfs: unknown direction policy %v", opts.Direction))
	}
}

// stepDir advances one level in the chosen direction and stamps the
// record with it.
func stepDir(e stepper, s *sideState, dir Direction, tagBase int) (rankLevel, bool) {
	var rec rankLevel
	var found bool
	if dir == BottomUp {
		rec, found = e.stepBottomUp(s, tagBase)
	} else {
		rec, found = e.step(s, tagBase)
	}
	rec.dir = dir
	return rec, found
}

// driveUni runs a uni-directional level-synchronized search to
// completion (empty global frontier), target discovery, or the
// MaxLevels bound. It returns the per-level records, the search state,
// and whether the target was found (globally agreed).
func driveUni(c *comm.Comm, e stepper, opts Options) ([]rankLevel, *sideState, bool) {
	s := e.newSide(opts.Source)
	red := newReducer(c, opts)
	// Every vertex joins the frontier exactly once, at the level it is
	// labeled, so subtracting each level's global frontier size tracks
	// the unlabeled count with no extra reductions.
	unlabeled := uint64(e.universe())
	var recs []rankLevel
	for {
		gf := red.sum(uint64(s.F.Len()))
		if gf == 0 {
			return recs, s, false
		}
		unlabeled -= gf
		if opts.MaxLevels > 0 && int(s.level) >= opts.MaxLevels {
			return recs, s, false
		}
		dir := chooseDirection(opts, gf, unlabeled)
		rec, foundLocal := stepDir(e, s, dir, int(s.level)*64)
		recs = append(recs, rec)
		if opts.HasTarget && red.or(foundLocal) {
			return recs, s, true
		}
	}
}

// bidirInf is the "no path found yet" sentinel for the bi-directional
// driver's best-distance reduction.
const bidirInf = uint64(math.MaxUint32)

// driveBidir runs the §2.3 bi-directional search: two sides expand
// alternately (always the side with the smaller global frontier), meets
// are detected when a side labels a vertex the other side already
// labeled, and the search stops once the best meeting distance is
// provably optimal (any undiscovered path must exceed the sum of the
// completed levels) or either side exhausts. It returns the records,
// the forward side's state, and the best distance (bidirInf if none).
func driveBidir(c *comm.Comm, e stepper, st interface {
	LocalOf(v graph.Vertex) uint32
}, opts Options) ([]rankLevel, *sideState, uint64) {
	ss := e.newSide(opts.Source)
	ts := e.newSide(opts.Target)
	red := newReducer(c, opts)
	var recs []rankLevel
	best := bidirInf
	tagSeq := 0
	// Per-side unlabeled counters for the direction policy: a side's
	// current frontier is counted once, the first time its global size
	// is reduced after the side steps.
	unS, unT := uint64(e.universe()), uint64(e.universe())
	newS, newT := true, true
	for {
		gfs := red.sum(uint64(ss.F.Len()))
		gft := red.sum(uint64(ts.F.Len()))
		if newS {
			unS -= gfs
			newS = false
		}
		if newT {
			unT -= gft
			newT = false
		}
		exhausted := gfs == 0 || gft == 0
		proven := best != bidirInf && best <= uint64(ss.level)+uint64(ts.level)
		if exhausted || proven {
			return recs, ss, best
		}
		if opts.MaxLevels > 0 && int(ss.level+ts.level) >= opts.MaxLevels {
			return recs, ss, best
		}
		side, other, gf, un := ss, ts, gfs, unS
		if gft < gfs {
			side, other, gf, un = ts, ss, gft, unT
		}
		dir := chooseDirection(opts, gf, un)
		rec, _ := stepDir(e, side, dir, tagSeq*64)
		if side == ss {
			newS = true
		} else {
			newT = true
		}
		tagSeq++
		side.F.Iterate(func(gu uint32) {
			li := st.LocalOf(graph.Vertex(gu))
			if other.L[li] != graph.Unreached {
				cand := uint64(side.L[li]) + uint64(other.L[li])
				if cand < best {
					best = cand
				}
			}
		})
		best = red.min(best)
		recs = append(recs, rec)
	}
}
