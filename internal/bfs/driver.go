package bfs

import (
	"math"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/graph"
)

// reducer performs the per-level global reductions (frontier count,
// target-found flag, best meeting distance) either on the modeled
// combine-tree network or over point-to-point torus messages
// (Options.P2PTermination).
type reducer struct {
	c     *comm.Comm
	world comm.Group
	p2p   bool
	tag   int
}

func newReducer(c *comm.Comm, opts Options) *reducer {
	r := &reducer{c: c, p2p: opts.P2PTermination}
	if r.p2p {
		r.world = comm.Group{Ranks: make([]int, c.Size()), Me: c.Rank()}
		for i := range r.world.Ranks {
			r.world.Ranks[i] = i
		}
		r.tag = 1 << 28
	}
	return r
}

func (r *reducer) sum(v uint64) uint64 {
	if !r.p2p {
		return r.c.AllReduceSum(v)
	}
	r.tag += 1 << 21
	return collective.AllReduceP2P(r.c, r.world, collective.Opts{Tag: r.tag}, v, collective.OpSum)
}

func (r *reducer) or(b bool) bool {
	if !r.p2p {
		return r.c.AllReduceOr(b)
	}
	var v uint64
	if b {
		v = 1
	}
	r.tag += 1 << 21
	return collective.AllReduceP2P(r.c, r.world, collective.Opts{Tag: r.tag}, v, collective.OpOr) != 0
}

func (r *reducer) min(v uint64) uint64 {
	if !r.p2p {
		return r.c.AllReduceMin(v)
	}
	r.tag += 1 << 21
	return collective.AllReduceP2P(r.c, r.world, collective.Opts{Tag: r.tag}, v, collective.OpMin)
}

// stepper is a partitioning engine: it creates per-side search state
// and advances one complete BFS level (expand where applicable,
// neighbor scan, fold, mark). Both the 1D (Algorithm 1) and 2D
// (Algorithm 2) engines implement it, so the uni- and bi-directional
// drivers below are shared.
type stepper interface {
	newSide(src graph.Vertex) *sideState
	step(s *sideState, tagBase int) (rankLevel, bool)
}

// driveUni runs a uni-directional level-synchronized search to
// completion (empty global frontier), target discovery, or the
// MaxLevels bound. It returns the per-level records, the search state,
// and whether the target was found (globally agreed).
func driveUni(c *comm.Comm, e stepper, opts Options) ([]rankLevel, *sideState, bool) {
	s := e.newSide(opts.Source)
	red := newReducer(c, opts)
	var recs []rankLevel
	for {
		gf := red.sum(uint64(len(s.F)))
		if gf == 0 {
			return recs, s, false
		}
		if opts.MaxLevels > 0 && int(s.level) >= opts.MaxLevels {
			return recs, s, false
		}
		rec, foundLocal := e.step(s, int(s.level)*64)
		recs = append(recs, rec)
		if opts.HasTarget && red.or(foundLocal) {
			return recs, s, true
		}
	}
}

// bidirInf is the "no path found yet" sentinel for the bi-directional
// driver's best-distance reduction.
const bidirInf = uint64(math.MaxUint32)

// driveBidir runs the §2.3 bi-directional search: two sides expand
// alternately (always the side with the smaller global frontier), meets
// are detected when a side labels a vertex the other side already
// labeled, and the search stops once the best meeting distance is
// provably optimal (any undiscovered path must exceed the sum of the
// completed levels) or either side exhausts. It returns the records,
// the forward side's state, and the best distance (bidirInf if none).
func driveBidir(c *comm.Comm, e stepper, st interface {
	LocalOf(v graph.Vertex) uint32
}, opts Options) ([]rankLevel, *sideState, uint64) {
	ss := e.newSide(opts.Source)
	ts := e.newSide(opts.Target)
	red := newReducer(c, opts)
	var recs []rankLevel
	best := bidirInf
	tagSeq := 0
	for {
		gfs := red.sum(uint64(len(ss.F)))
		gft := red.sum(uint64(len(ts.F)))
		exhausted := gfs == 0 || gft == 0
		proven := best != bidirInf && best <= uint64(ss.level)+uint64(ts.level)
		if exhausted || proven {
			return recs, ss, best
		}
		if opts.MaxLevels > 0 && int(ss.level+ts.level) >= opts.MaxLevels {
			return recs, ss, best
		}
		side, other := ss, ts
		if gft < gfs {
			side, other = ts, ss
		}
		rec, _ := e.step(side, tagSeq*64)
		tagSeq++
		for _, gu := range side.F {
			li := st.LocalOf(graph.Vertex(gu))
			if other.L[li] != graph.Unreached {
				cand := uint64(side.L[li]) + uint64(other.L[li])
				if cand < best {
					best = cand
				}
			}
		}
		best = red.min(best)
		recs = append(recs, rec)
	}
}
