package bfs

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/search"
)

// reducer performs the per-level global reductions (frontier count,
// target-found flag, best meeting distance) either on the modeled
// combine-tree network or over point-to-point torus messages
// (Options.P2PTermination).
type reducer struct {
	c     *comm.Comm
	world comm.Group
	p2p   bool
	tag   int
}

func newReducer(c *comm.Comm, opts Options) *reducer {
	r := &reducer{c: c, p2p: opts.P2PTermination}
	if r.p2p {
		r.world = comm.Group{Ranks: make([]int, c.Size()), Me: c.Rank()}
		for i := range r.world.Ranks {
			r.world.Ranks[i] = i
		}
		r.tag = 1 << 28
	}
	return r
}

func (r *reducer) sum(v uint64) uint64 {
	if !r.p2p {
		return r.c.AllReduceSum(v)
	}
	r.tag += 1 << 21
	return collective.AllReduceP2P(r.c, r.world, collective.Opts{Tag: r.tag}, v, collective.OpSum)
}

func (r *reducer) or(b bool) bool {
	if !r.p2p {
		return r.c.AllReduceOr(b)
	}
	var v uint64
	if b {
		v = 1
	}
	r.tag += 1 << 21
	return collective.AllReduceP2P(r.c, r.world, collective.Opts{Tag: r.tag}, v, collective.OpOr) != 0
}

func (r *reducer) min(v uint64) uint64 {
	if !r.p2p {
		return r.c.AllReduceMin(v)
	}
	r.tag += 1 << 21
	return collective.AllReduceP2P(r.c, r.world, collective.Opts{Tag: r.tag}, v, collective.OpMin)
}

// stepper is a partitioning engine: it creates per-side search state
// and advances one complete BFS level in either direction (expand where
// applicable, neighbor scan, fold, mark for top-down; bitmap exchange
// and parent search for bottom-up). Both the 1D (Algorithm 1) and 2D
// (Algorithm 2) engines implement it, so the uni- and bi-directional
// drivers below are shared.
type stepper interface {
	newSide(src graph.Vertex) *sideState
	step(s *sideState, tagBase int) (rankLevel, bool)
	stepBottomUp(s *sideState, tagBase int) (rankLevel, bool)
	universe() int // global vertex count
	// totalOutDegree and frontierOutDegree feed the Beamer-style
	// direction heuristic: this rank's degree sum over its owned
	// vertices, and over a side's current frontier. Only consulted
	// under DirectionOptimizing.
	totalOutDegree() uint64
	frontierOutDegree(s *sideState) uint64
	// fingerprint identifies the engine's partitioned workload (graph
	// size, mesh shape) for checkpoint compatibility checks.
	fingerprint() uint64
	// saveExtra / restoreExtra serialize engine-internal caches whose
	// absence would change a restored run's charges (the 2D engine's
	// degree-exchange result, the 1D engine's degree sum).
	saveExtra(enc *checkpoint.Enc)
	restoreExtra(dec *checkpoint.Dec)
}

// chooseDirection picks a level's expansion direction from Beamer's
// true alpha heuristic: a level runs bottom-up when the edges a
// top-down expansion would scan (the frontier's out-degree, mf) exceed
// 1/alpha of the edges the bottom-up parent search would probe in the
// worst case (the unlabeled set's out-degree, mu). Both inputs are
// globally reduced, so every rank makes the same choice without extra
// communication. Compared to the vertex-count ratio this fires on
// degree-skewed frontiers and on the moderately sized frontiers of the
// bi-directional driver, where counting vertices never did.
func chooseDirection(opts Options, mf, mu uint64) Direction {
	switch opts.Direction {
	case TopDown:
		return TopDown
	case BottomUp:
		return BottomUp
	case DirectionOptimizing:
		// mu == 0 means the unlabeled remainder has no edges at all
		// (only isolated vertices are left): nothing can be labeled
		// either way, so stay with the paper's top-down expansion.
		if mu > 0 && float64(mf)*opts.doAlpha() >= float64(mu) {
			return BottomUp
		}
		return TopDown
	default:
		panic(fmt.Sprintf("bfs: unknown direction policy %v", opts.Direction))
	}
}

// stepDir advances one level in the chosen direction. The engines stamp
// rec.dir themselves (before the level span closes, so the trace and the
// Result agree); a caller-side stamp here would land after the span's
// dir arg was already emitted.
func stepDir(e stepper, s *sideState, dir Direction, tagBase int) (rankLevel, bool) {
	if dir == BottomUp {
		return e.stepBottomUp(s, tagBase)
	}
	return e.step(s, tagBase)
}

// checkCancel polls the cooperative cancellation hook at a boundary
// and reduces the verdict so every rank agrees. unit/done describe the
// boundary for the Canceled error. A nil hook costs nothing.
func checkCancel(opts Options, red *reducer, clock float64, unit string, done int) *search.Canceled {
	if opts.Cancel == nil {
		return nil
	}
	cause := opts.Cancel(clock)
	if !red.or(cause != nil) {
		return nil
	}
	return &search.Canceled{Unit: unit, Done: done, Cause: cause}
}

// driveUni runs a uni-directional level-synchronized search to
// completion (empty global frontier), target discovery, the MaxLevels
// bound, or a cooperative cancellation (non-nil *search.Canceled — the
// state holds the partial labeling). It returns the per-level records,
// the search state, and whether the target was found (globally agreed).
func driveUni(c *comm.Comm, e stepper, opts Options) ([]rankLevel, *sideState, bool, *search.Canceled) {
	red := newReducer(c, opts)
	dirop := opts.Direction == DirectionOptimizing
	var s *sideState
	var recs []rankLevel
	// Every vertex joins the frontier exactly once, at the level it is
	// labeled, so subtracting each level frontier's out-degree tracks
	// the unlabeled set's out-degree with one extra reduction per
	// level. Fixed policies skip the degree machinery entirely.
	var unlabeledDeg uint64
	if opts.Restore != nil {
		// Resume from a snapshot: load engine + transport state and
		// skip the charged initialization (it already happened in the
		// checkpointing run and its cost is in the restored ledgers).
		if err := opts.Restore.Check("bfs", c.Size(), runFingerprint(e, opts, c.Size())); err != nil {
			panic(err.Error())
		}
		var redTag int
		s, recs, unlabeledDeg, redTag = restoreUniBlob(c, e, opts, opts.Restore.Blobs[c.Rank()])
		red.tag = redTag
	} else {
		s = e.newSide(opts.Source)
		if dirop {
			unlabeledDeg = red.sum(e.totalOutDegree())
		}
	}
	for {
		if opts.Checkpoint.Enabled() && opts.Restore == nil && int(s.level) == opts.Checkpoint.At {
			// Halt here: snapshot this rank's complete state at the top
			// of level At, before any of its reductions or exchanges.
			opts.Checkpoint.Put("bfs", opts.Checkpoint.At, c.Size(), c.Rank(),
				runFingerprint(e, opts, c.Size()),
				saveUniBlob(c, e, s, recs, unlabeledDeg, red.tag))
			return recs, s, false, nil
		}
		if cxl := checkCancel(opts, red, c.Clock(), "level", int(s.level)); cxl != nil {
			return recs, s, false, cxl
		}
		gf := red.sum(uint64(s.F.Len()))
		if gf == 0 {
			return recs, s, false, nil
		}
		var frontierDeg uint64
		if dirop {
			frontierDeg = red.sum(e.frontierOutDegree(s))
			unlabeledDeg -= frontierDeg
		}
		if opts.MaxLevels > 0 && int(s.level) >= opts.MaxLevels {
			return recs, s, false, nil
		}
		dir := chooseDirection(opts, frontierDeg, unlabeledDeg)
		rec, foundLocal := stepDir(e, s, dir, int(s.level)*64)
		recs = append(recs, rec)
		if opts.HasTarget && red.or(foundLocal) {
			return recs, s, true, nil
		}
	}
}

// bidirInf is the "no path found yet" sentinel for the bi-directional
// driver's best-distance reduction.
const bidirInf = uint64(math.MaxUint32)

// driveBidir runs the §2.3 bi-directional search: two sides expand
// alternately (always the side with the smaller global frontier), meets
// are detected when a side labels a vertex the other side already
// labeled, and the search stops once the best meeting distance is
// provably optimal (any undiscovered path must exceed the sum of the
// completed levels), either side exhausts, or a cooperative
// cancellation fires. It returns the records, the forward side's
// state, and the best distance (bidirInf if none).
func driveBidir(c *comm.Comm, e stepper, st interface {
	LocalOf(v graph.Vertex) uint32
}, opts Options) ([]rankLevel, *sideState, uint64, *search.Canceled) {
	ss := e.newSide(opts.Source)
	ts := e.newSide(opts.Target)
	red := newReducer(c, opts)
	dirop := opts.Direction == DirectionOptimizing
	var recs []rankLevel
	best := bidirInf
	tagSeq := 0
	// Per-side out-degree tracking for the direction policy: a side's
	// current frontier degree is reduced once, the first time the side
	// is examined after it steps, and leaves that side's unlabeled
	// degree at the same moment. Each side labels its own vertices, so
	// the sides track independent unlabeled sets.
	var unS, unT, degS, degT uint64
	if dirop {
		total := red.sum(e.totalOutDegree())
		unS, unT = total, total
	}
	newS, newT := true, true
	for {
		if cxl := checkCancel(opts, red, c.Clock(), "level", len(recs)); cxl != nil {
			return recs, ss, best, cxl
		}
		gfs := red.sum(uint64(ss.F.Len()))
		gft := red.sum(uint64(ts.F.Len()))
		if dirop && newS {
			degS = red.sum(e.frontierOutDegree(ss))
			unS -= degS
		}
		if dirop && newT {
			degT = red.sum(e.frontierOutDegree(ts))
			unT -= degT
		}
		newS, newT = false, false
		exhausted := gfs == 0 || gft == 0
		proven := best != bidirInf && best <= uint64(ss.level)+uint64(ts.level)
		if exhausted || proven {
			return recs, ss, best, nil
		}
		if opts.MaxLevels > 0 && int(ss.level+ts.level) >= opts.MaxLevels {
			return recs, ss, best, nil
		}
		side, mf, mu := ss, degS, unS
		if gft < gfs {
			side, mf, mu = ts, degT, unT
		}
		other := ts
		if side == ts {
			other = ss
		}
		dir := chooseDirection(opts, mf, mu)
		rec, _ := stepDir(e, side, dir, tagSeq*64)
		if side == ss {
			newS = true
		} else {
			newT = true
		}
		tagSeq++
		side.F.Iterate(func(gu uint32) {
			li := st.LocalOf(graph.Vertex(gu))
			if other.L[li] != graph.Unreached {
				cand := uint64(side.L[li]) + uint64(other.L[li])
				if cand < best {
					best = cand
				}
			}
		})
		best = red.min(best)
		recs = append(recs, rec)
	}
}
