package bfs

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/search"
	"repro/internal/torus"
)

// fixture bundles a graph with distributed stores for a mesh.
type fixture struct {
	g      *graph.CSR
	l2     *partition.Layout2D
	st2    []*partition.Store2D
	world  *comm.World
	serial []int32 // serial BFS levels from src
	src    graph.Vertex
}

func visitCSR(g *graph.CSR) func(func(u, v graph.Vertex)) error {
	return func(fn func(u, v graph.Vertex)) error {
		for v := 0; v < g.N; v++ {
			for _, u := range g.Neighbors(graph.Vertex(v)) {
				if graph.Vertex(v) < u {
					fn(graph.Vertex(v), u)
				}
			}
		}
		return nil
	}
}

func build2D(t *testing.T, g *graph.CSR, r, c int) fixture {
	t.Helper()
	l2, err := partition.NewLayout2D(g.N, r, c)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := partition.Build2D(l2, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	w, err := comm.NewWorld(comm.Config{P: r * c})
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestComponentVertex(g)
	return fixture{g: g, l2: l2, st2: st2, world: w, serial: graph.BFS(g, src), src: src}
}

func testGraph(t *testing.T, n int, k float64, seed int64) *graph.CSR {
	t.Helper()
	g, err := graph.Generate(graph.Params{N: n, K: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func levelsEqual(t *testing.T, got, want []int32, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: level array length %d, want %d", label, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: level[%d] = %d, want %d", label, v, got[v], want[v])
		}
	}
}

func TestRun2DMatchesSerialAcrossMeshes(t *testing.T) {
	g := testGraph(t, 600, 5, 1)
	for _, mesh := range [][2]int{{1, 1}, {2, 2}, {1, 4}, {4, 1}, {2, 3}, {3, 4}} {
		fx := build2D(t, g, mesh[0], mesh[1])
		res, err := Run2D(fx.world, fx.st2, DefaultOptions(fx.src))
		if err != nil {
			t.Fatalf("mesh %v: %v", mesh, err)
		}
		levelsEqual(t, res.Levels, fx.serial, fmt.Sprintf("mesh %v", mesh))
	}
}

func TestRun2DAllAlgorithmCombinations(t *testing.T) {
	g := testGraph(t, 400, 6, 2)
	fx := build2D(t, g, 3, 2)
	for _, ex := range []ExpandAlg{ExpandTargeted, ExpandAllGather, ExpandTwoPhase} {
		for _, fo := range []FoldAlg{FoldTwoPhase, FoldDirect, FoldTwoPhaseNoUnion, FoldBruck} {
			for _, cache := range []bool{true, false} {
				for _, chunk := range []int{0, 64} {
					opts := Options{
						Source: fx.src, Expand: ex, Fold: fo,
						SentCache: cache,
						Common:    search.Common{ChunkWords: chunk},
					}
					res, err := Run2D(fx.world, fx.st2, opts)
					if err != nil {
						t.Fatalf("%v/%v cache=%v chunk=%d: %v", ex, fo, cache, chunk, err)
					}
					levelsEqual(t, res.Levels, fx.serial,
						fmt.Sprintf("%v/%v cache=%v chunk=%d", ex, fo, cache, chunk))
				}
			}
		}
	}
}

func TestRun1DMatchesSerial(t *testing.T) {
	g := testGraph(t, 500, 4, 3)
	for _, p := range []int{1, 2, 4, 7} {
		l1, err := partition.NewLayout1D(g.N, p)
		if err != nil {
			t.Fatal(err)
		}
		st1, err := partition.Build1D(l1, visitCSR(g))
		if err != nil {
			t.Fatal(err)
		}
		w, err := comm.NewWorld(comm.Config{P: p})
		if err != nil {
			t.Fatal(err)
		}
		src := graph.LargestComponentVertex(g)
		res, err := Run1D(w, st1, DefaultOptions(src))
		if err != nil {
			t.Fatal(err)
		}
		levelsEqual(t, res.Levels, graph.BFS(g, src), fmt.Sprintf("1D p=%d", p))
	}
}

// TestRun1DEquivalentToDegenerate2D: Algorithm 1 and Algorithm 2 with
// R=1 are the same partitioning; their levels and fold volumes must
// agree.
func TestRun1DEquivalentToDegenerate2D(t *testing.T) {
	g := testGraph(t, 400, 5, 4)
	p := 4
	src := graph.LargestComponentVertex(g)

	l1, _ := partition.NewLayout1D(g.N, p)
	st1, err := partition.Build1D(l1, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := comm.NewWorld(comm.Config{P: p})
	opts := DefaultOptions(src)
	opts.Fold = FoldDirect
	res1, err := Run1D(w1, st1, opts)
	if err != nil {
		t.Fatal(err)
	}

	fx := build2D(t, g, 1, p)
	res2, err := Run2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	levelsEqual(t, res2.Levels, res1.Levels, "1D vs 2D(R=1)")
	if res1.TotalFoldWords != res2.TotalFoldWords {
		t.Errorf("fold words differ: 1D=%d 2D(R=1)=%d", res1.TotalFoldWords, res2.TotalFoldWords)
	}
}

func TestTargetSearchDistances(t *testing.T) {
	g := testGraph(t, 500, 5, 5)
	fx := build2D(t, g, 2, 3)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		s := graph.Vertex(rng.Intn(g.N))
		dst := graph.Vertex(rng.Intn(g.N))
		want := graph.Distance(g, s, dst)
		opts := DefaultOptions(s)
		opts.Target = dst
		opts.HasTarget = true
		res, err := Run2D(fx.world, fx.st2, opts)
		if err != nil {
			t.Fatal(err)
		}
		if want == graph.Unreached {
			if res.Found {
				t.Fatalf("trial %d: found unreachable target %d from %d", trial, dst, s)
			}
			continue
		}
		if !res.Found || res.Distance != want {
			t.Fatalf("trial %d: distance(%d,%d) = %d found=%v, want %d",
				trial, s, dst, res.Distance, res.Found, want)
		}
	}
}

func TestBidirectionalDistances(t *testing.T) {
	g := testGraph(t, 500, 5, 6)
	fx := build2D(t, g, 2, 3)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		s := graph.Vertex(rng.Intn(g.N))
		dst := graph.Vertex(rng.Intn(g.N))
		want := graph.Distance(g, s, dst)
		opts := DefaultOptions(s)
		opts.Target = dst
		opts.HasTarget = true
		res, err := RunBidirectional2D(fx.world, fx.st2, opts)
		if err != nil {
			t.Fatal(err)
		}
		if want == graph.Unreached {
			if res.Found {
				t.Fatalf("trial %d: bidir found unreachable target", trial)
			}
			continue
		}
		if !res.Found || res.Distance != want {
			t.Fatalf("trial %d: bidir distance(%d,%d) = %d found=%v, want %d",
				trial, s, dst, res.Distance, res.Found, want)
		}
	}
}

func TestBidirectionalRequiresTarget(t *testing.T) {
	g := testGraph(t, 100, 3, 7)
	fx := build2D(t, g, 1, 2)
	_, err := RunBidirectional2D(fx.world, fx.st2, DefaultOptions(0))
	if err == nil {
		t.Fatal("expected error without target")
	}
}

func TestBidirectionalReducesFoldVolume(t *testing.T) {
	// §2.3 / Fig. 4c: bi-directional search processes far less volume
	// than uni-directional on the same reachable pair.
	g := testGraph(t, 2000, 8, 8)
	fx := build2D(t, g, 2, 2)
	serial := graph.BFS(g, fx.src)
	// Pick a target at the far end so the uni search walks the graph.
	var far graph.Vertex
	for v := 0; v < g.N; v++ {
		if serial[v] != graph.Unreached && serial[v] > serial[far] {
			far = graph.Vertex(v)
		}
	}
	opts := DefaultOptions(fx.src)
	opts.Target = far
	opts.HasTarget = true
	uni, err := Run2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := RunBidirectional2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !uni.Found || !bi.Found || uni.Distance != bi.Distance {
		t.Fatalf("distances disagree: uni=%d/%v bi=%d/%v", uni.Distance, uni.Found, bi.Distance, bi.Found)
	}
	uniVol := uni.TotalFoldWords + uni.TotalExpandWords
	biVol := bi.TotalFoldWords + bi.TotalExpandWords
	if biVol >= uniVol {
		t.Errorf("bi-directional volume %d not below uni-directional %d", biVol, uniVol)
	}
}

func TestSentCacheReducesFoldVolume(t *testing.T) {
	g := testGraph(t, 1000, 10, 9)
	fx := build2D(t, g, 2, 2)
	on := DefaultOptions(fx.src)
	off := DefaultOptions(fx.src)
	off.SentCache = false
	resOn, err := Run2D(fx.world, fx.st2, on)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := Run2D(fx.world, fx.st2, off)
	if err != nil {
		t.Fatal(err)
	}
	levelsEqual(t, resOn.Levels, resOff.Levels, "sent-cache")
	totalOn := resOn.TotalFoldWords + resOn.TotalDups
	totalOff := resOff.TotalFoldWords + resOff.TotalDups
	if totalOn >= totalOff {
		t.Errorf("sent-cache did not reduce neighbor traffic: on=%d off=%d", totalOn, totalOff)
	}
}

func TestStatsConsistency(t *testing.T) {
	g := testGraph(t, 800, 6, 11)
	fx := build2D(t, g, 2, 3)
	res, err := Run2D(fx.world, fx.st2, DefaultOptions(fx.src))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerLevel) == 0 {
		t.Fatal("no per-level stats")
	}
	if res.PerLevel[0].Frontier != 1 {
		t.Errorf("level 0 frontier = %d, want 1", res.PerLevel[0].Frontier)
	}
	var marked int64
	for _, ls := range res.PerLevel {
		marked += ls.Marked
	}
	if int(marked)+1 != res.Reached() {
		t.Errorf("marked %d + source != reached %d", marked, res.Reached())
	}
	if res.SimTime <= 0 || res.SimComm <= 0 {
		t.Errorf("simulated times not positive: %g %g", res.SimTime, res.SimComm)
	}
	if res.SimComm >= res.SimTime {
		t.Errorf("comm time %g not below exec time %g", res.SimComm, res.SimTime)
	}
	if res.HashProbes == 0 {
		t.Error("no hash probes recorded")
	}
	if res.TotalExpandWords == 0 || res.TotalFoldWords == 0 {
		t.Error("no communication recorded on a multi-rank mesh")
	}
}

func TestMaxLevelsTruncates(t *testing.T) {
	g := testGraph(t, 600, 4, 12)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.MaxLevels = 2
	res, err := Run2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLevel() > 2 {
		t.Errorf("levels beyond MaxLevels: %d", res.MaxLevel())
	}
	if len(res.PerLevel) > 2 {
		t.Errorf("%d levels recorded, want <= 2", len(res.PerLevel))
	}
}

func TestUnionFoldRedundancy(t *testing.T) {
	// Higher degree -> more duplicate neighbors -> union-fold saves
	// more (the Fig. 7 mechanism). Disable the sent-cache so duplicates
	// across levels survive to the fold.
	g := testGraph(t, 600, 20, 13)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.SentCache = false
	res, err := Run2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDups == 0 {
		t.Fatal("union-fold eliminated no duplicates on a k=20 graph")
	}
	if rr := res.RedundancyRatio(); rr <= 0 || rr >= 100 {
		t.Fatalf("redundancy ratio %g out of range", rr)
	}
}

func TestSourceEqualsTarget(t *testing.T) {
	g := testGraph(t, 100, 3, 14)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(5)
	opts.Target = 5
	opts.HasTarget = true
	for name, run := range map[string]func() (*Result, error){
		"uni": func() (*Result, error) { return Run2D(fx.world, fx.st2, opts) },
		"bi":  func() (*Result, error) { return RunBidirectional2D(fx.world, fx.st2, opts) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Found || res.Distance != 0 {
			t.Fatalf("%s: s==t gave distance %d found=%v", name, res.Distance, res.Found)
		}
	}
}

func TestRunValidation(t *testing.T) {
	g := testGraph(t, 100, 3, 15)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(graph.Vertex(g.N)) // out of range
	if _, err := Run2D(fx.world, fx.st2, opts); err == nil {
		t.Error("out-of-range source accepted")
	}
	opts = DefaultOptions(0)
	opts.HasTarget = true
	opts.Target = graph.Vertex(g.N)
	if _, err := Run2D(fx.world, fx.st2, opts); err == nil {
		t.Error("out-of-range target accepted")
	}
	wrongWorld, _ := comm.NewWorld(comm.Config{P: 3})
	if _, err := Run2D(wrongWorld, fx.st2, DefaultOptions(0)); err == nil {
		t.Error("mismatched world size accepted")
	}
}

func TestDisconnectedGraphTraversal(t *testing.T) {
	// Two components; traversal labels only the source's component.
	edges := [][2]graph.Vertex{{0, 1}, {1, 2}, {3, 4}}
	g, err := graph.FromEdges(6, edges)
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := partition.NewLayout2D(g.N, 2, 2)
	st2, err := partition.Build2D(l2, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	w, _ := comm.NewWorld(comm.Config{P: 4})
	res, err := Run2D(w, st2, DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	levelsEqual(t, res.Levels, graph.BFS(g, 0), "disconnected")
	if res.Reached() != 3 {
		t.Errorf("reached %d vertices, want 3", res.Reached())
	}
}

func TestDeterministicSimulatedTime(t *testing.T) {
	g := testGraph(t, 500, 6, 16)
	fx := build2D(t, g, 2, 3)
	opts := DefaultOptions(fx.src)
	a, err := Run2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime != b.SimTime || a.SimComm != b.SimComm {
		t.Errorf("simulated times not deterministic: (%g,%g) vs (%g,%g)",
			a.SimTime, a.SimComm, b.SimTime, b.SimComm)
	}
	if a.TotalFoldWords != b.TotalFoldWords {
		t.Errorf("fold words not deterministic: %d vs %d", a.TotalFoldWords, b.TotalFoldWords)
	}
}

func TestBidirectional1DDistances(t *testing.T) {
	g := testGraph(t, 600, 5, 18)
	p := 4
	l1, _ := partition.NewLayout1D(g.N, p)
	st1, err := partition.Build1D(l1, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	w, err := comm.NewWorld(comm.Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 8; trial++ {
		s := graph.Vertex(rng.Intn(g.N))
		dst := graph.Vertex(rng.Intn(g.N))
		want := graph.Distance(g, s, dst)
		opts := DefaultOptions(s)
		opts.Target, opts.HasTarget = dst, true
		res, err := RunBidirectional1D(w, st1, opts)
		if err != nil {
			t.Fatal(err)
		}
		if want == graph.Unreached {
			if res.Found {
				t.Fatalf("trial %d: 1D bidir found unreachable target", trial)
			}
			continue
		}
		if !res.Found || res.Distance != want {
			t.Fatalf("trial %d: 1D bidir distance(%d,%d) = %d found=%v, want %d",
				trial, s, dst, res.Distance, res.Found, want)
		}
	}
	// Requires a target.
	if _, err := RunBidirectional1D(w, st1, DefaultOptions(0)); err == nil {
		t.Fatal("1D bidir without target accepted")
	}
	// Trivial s == t.
	opts := DefaultOptions(5)
	opts.Target, opts.HasTarget = 5, true
	res, err := RunBidirectional1D(w, st1, opts)
	if err != nil || !res.Found || res.Distance != 0 {
		t.Fatalf("trivial 1D bidir: %v %v %d", err, res.Found, res.Distance)
	}
}

func TestFoldBruckMatchesSerial1D(t *testing.T) {
	g := testGraph(t, 400, 5, 20)
	p := 5
	l1, _ := partition.NewLayout1D(g.N, p)
	st1, err := partition.Build1D(l1, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	w, err := comm.NewWorld(comm.Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestComponentVertex(g)
	opts := DefaultOptions(src)
	opts.Fold = FoldBruck
	res, err := Run1D(w, st1, opts)
	if err != nil {
		t.Fatal(err)
	}
	levelsEqual(t, res.Levels, graph.BFS(g, src), "1D fold=bruck")
}

// TestQuickRandomConfigs is the end-to-end property test: for random
// graph parameters, mesh shapes, algorithm choices and sources, the
// distributed levels always equal the serial oracle's.
func TestQuickRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		n := 100 + rng.Intn(500)
		k := 1 + rng.Float64()*8
		r := 1 + rng.Intn(3)
		c := 1 + rng.Intn(3)
		g := testGraph(t, n, k, int64(trial))
		fx := build2D(t, g, r, c)
		opts := Options{
			Source:    graph.Vertex(rng.Intn(n)),
			Expand:    ExpandAlg(rng.Intn(3)),
			Fold:      FoldAlg(rng.Intn(4)),
			SentCache: rng.Intn(2) == 0,
			Common:    search.Common{ChunkWords: []int{0, 16, 1024}[rng.Intn(3)]},
		}
		res, err := Run2D(fx.world, fx.st2, opts)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, opts, err)
		}
		levelsEqual(t, res.Levels, graph.BFS(g, opts.Source),
			fmt.Sprintf("trial %d n=%d k=%.1f mesh=%dx%d %+v", trial, n, k, r, c, opts))
	}
}

// TestWorldReuseAcrossEngines runs 1D, 2D and bidirectional searches
// back to back on one world, checking no state leaks between runs.
func TestWorldReuseAcrossEngines(t *testing.T) {
	g := testGraph(t, 400, 5, 30)
	fx := build2D(t, g, 2, 2)
	serial := graph.BFS(g, fx.src)
	for round := 0; round < 3; round++ {
		res, err := Run2D(fx.world, fx.st2, DefaultOptions(fx.src))
		if err != nil {
			t.Fatal(err)
		}
		levelsEqual(t, res.Levels, serial, fmt.Sprintf("round %d", round))
		opts := DefaultOptions(fx.src)
		opts.Target, opts.HasTarget = fx.src+1, true
		if _, err := RunBidirectional2D(fx.world, fx.st2, opts); err != nil {
			t.Fatal(err)
		}
	}
}

// TestP2PTerminationMatchesTree: routing the termination reductions
// over point-to-point messages must not change any result.
func TestP2PTerminationMatchesTree(t *testing.T) {
	g := testGraph(t, 700, 6, 31)
	fx := build2D(t, g, 2, 3)
	tree := DefaultOptions(fx.src)
	p2p := DefaultOptions(fx.src)
	p2p.P2PTermination = true
	a, err := Run2D(fx.world, fx.st2, tree)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run2D(fx.world, fx.st2, p2p)
	if err != nil {
		t.Fatal(err)
	}
	levelsEqual(t, b.Levels, a.Levels, "p2p termination")
	if b.MsgsRecv <= a.MsgsRecv {
		t.Errorf("p2p termination should add messages: %d vs %d", b.MsgsRecv, a.MsgsRecv)
	}
	// Bidirectional under p2p termination.
	serial := graph.BFS(g, fx.src)
	var far graph.Vertex
	for v, l := range serial {
		if l != graph.Unreached && l > serial[far] {
			far = graph.Vertex(v)
		}
	}
	p2p.Target, p2p.HasTarget = far, true
	bi, err := RunBidirectional2D(fx.world, fx.st2, p2p)
	if err != nil {
		t.Fatal(err)
	}
	if !bi.Found || bi.Distance != serial[far] {
		t.Fatalf("p2p bidir distance %d found=%v, want %d", bi.Distance, bi.Found, serial[far])
	}
}

func TestPerRankStatsAndBalance(t *testing.T) {
	g := testGraph(t, 2000, 8, 32)
	fx := build2D(t, g, 2, 2)
	res, err := Run2D(fx.world, fx.st2, DefaultOptions(fx.src))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRank) != 4 {
		t.Fatalf("PerRank has %d ranks", len(res.PerRank))
	}
	// Per-rank stats must sum to the global per-level stats.
	for l, global := range res.PerLevel {
		var marked, fold int64
		for _, recs := range res.PerRank {
			if l < len(recs) {
				marked += recs[l].Marked
				fold += recs[l].FoldWords
			}
		}
		if marked != global.Marked || fold != global.FoldWords {
			t.Fatalf("level %d: per-rank sums (%d,%d) != global (%d,%d)",
				l, marked, fold, global.Marked, global.FoldWords)
		}
	}
	// Poisson random graph + blocked partitioning: near-perfect balance.
	if im := res.LoadImbalance(); im < 1 || im > 1.5 {
		t.Errorf("load imbalance %g outside [1, 1.5]", im)
	}
}

// TestBidirectionalWithAllFolds: the bi-directional driver must work
// with every fold algorithm and chunking.
func TestBidirectionalWithAllFolds(t *testing.T) {
	g := testGraph(t, 600, 6, 40)
	fx := build2D(t, g, 2, 2)
	serial := graph.BFS(g, fx.src)
	var far graph.Vertex
	for v, l := range serial {
		if l != graph.Unreached && l > serial[far] {
			far = graph.Vertex(v)
		}
	}
	for _, fo := range []FoldAlg{FoldTwoPhase, FoldDirect, FoldTwoPhaseNoUnion, FoldBruck} {
		for _, chunk := range []int{0, 32} {
			opts := DefaultOptions(fx.src)
			opts.Target, opts.HasTarget = far, true
			opts.Fold = fo
			opts.ChunkWords = chunk
			res, err := RunBidirectional2D(fx.world, fx.st2, opts)
			if err != nil {
				t.Fatalf("%v chunk=%d: %v", fo, chunk, err)
			}
			if !res.Found || res.Distance != serial[far] {
				t.Fatalf("%v chunk=%d: distance %d found=%v, want %d",
					fo, chunk, res.Distance, res.Found, serial[far])
			}
		}
	}
}

// TestClusterCostModel: the Quadrics-cluster preset must run the same
// algorithms to the same answers with different (but positive) times.
func TestClusterCostModel(t *testing.T) {
	g := testGraph(t, 500, 5, 41)
	l2, _ := partition.NewLayout2D(g.N, 2, 2)
	st2, err := partition.Build2D(l2, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	w, err := comm.NewWorld(comm.Config{P: 4, Model: torus.PresetCluster()})
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestComponentVertex(g)
	res, err := Run2D(w, st2, DefaultOptions(src))
	if err != nil {
		t.Fatal(err)
	}
	levelsEqual(t, res.Levels, graph.BFS(g, src), "cluster model")
	if res.SimTime <= 0 {
		t.Error("cluster model produced no simulated time")
	}
}
