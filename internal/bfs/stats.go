package bfs

import (
	"time"

	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/trace"
)

// LevelStats aggregates one BFS level's activity across all ranks.
type LevelStats struct {
	Level        int32
	Direction    Direction // how the level was expanded (globally uniform)
	Frontier     int64     // global frontier size entering the level
	ExpandWords  int64     // words received during expand, summed over ranks
	FoldWords    int64     // words received during fold, summed over ranks
	Dups         int64     // duplicate vertices eliminated by union folds
	Marked       int64     // vertices newly labeled this level
	EdgesScanned int64     // edge-list entries inspected, summed over ranks
	// Containers histograms the wire codec's payload and chunk-container
	// choices this level (all-zero unless a codec-bearing Wire mode ran).
	Containers frontier.ContainerHist

	// ExecS is the level's simulated execution time: the maximum over
	// ranks of the per-rank clock advance during the level (the level's
	// critical path; reductions between levels are not attributed).
	ExecS float64
	// CommS sums the per-rank communication seconds charged during the
	// level — including any hidden under the asynchronous schedule.
	CommS float64
	// OverlapS sums the per-rank communication seconds that progressed
	// concurrently with compute (or other transfers) instead of
	// serializing into the clock. Zero on the synchronous schedule;
	// never exceeds CommS.
	OverlapS float64
}

// HiddenFrac returns the fraction of the level's communication seconds
// the asynchronous schedule kept off the critical path.
func (ls LevelStats) HiddenFrac() float64 {
	if ls.CommS == 0 {
		return 0
	}
	return ls.OverlapS / ls.CommS
}

// Result reports a finished distributed search.
type Result struct {
	N        int // graph vertices
	R, C     int // mesh (R=1 for the 1D engine)
	Levels   []int32
	PerLevel []LevelStats

	// Simulated times (seconds) from the torus cost model: max over
	// ranks of the per-rank clocks / communication ledgers. SimOverlap
	// is the max per-rank communication time hidden under concurrent
	// activity by the asynchronous schedule (0 when Options.Async is
	// off); it never exceeds SimComm.
	SimTime    float64
	SimComm    float64
	SimOverlap float64
	// Wall is the real elapsed time of the simulation itself (not a
	// paper-comparable quantity on a shared-memory host).
	Wall time.Duration

	Found    bool  // target labeled (always false without a target)
	Distance int32 // source→target distance when Found

	TotalExpandWords int64
	TotalFoldWords   int64
	TotalDups        int64
	// Containers sums the per-level wire-codec histograms: how many
	// payloads shipped raw, as whole-universe bitmaps, or as hybrid
	// chunk streams, and which container each encoded chunk chose.
	Containers frontier.ContainerHist
	// TotalEdgesScanned counts edge-list entries inspected across all
	// ranks and levels — the quantity direction-optimizing traversal
	// shrinks (bottom-up levels stop at the first frontier parent).
	TotalEdgesScanned int64
	HashProbes        uint64 // global->local probes during the search

	// Link-level traffic totals from the torus mapping: messages
	// received, their hop counts, and bytes x hops (the load the
	// search imposed on torus links — the Figure 1 task mapping is
	// judged by this).
	MsgsRecv uint64
	HopsRecv uint64
	HopBytes uint64
	// MaxLinkBytes is the heaviest-loaded directed torus link's byte
	// count (congestion hot spot); LinksUsed counts distinct links.
	MaxLinkBytes uint64
	LinksUsed    int

	// Faults sums the per-rank transport-fault activity: injections,
	// retries, checksum failures, duplicate discards, and the simulated
	// seconds recovery added (all zero on a clean wire). Everything
	// else in the Result is identical to the fault-free run for any
	// plan below the retry budget.
	Faults comm.FaultStats

	// PerRank[rank] holds that rank's own per-level statistics (the
	// global PerLevel is their sum). §2 requires the partitioning to
	// balance vertices and edges across ranks; LoadImbalance quantifies
	// how well that held during the search.
	PerRank [][]LevelStats
}

// AvgHopsPerMessage returns mean torus hops per received message.
func (r *Result) AvgHopsPerMessage() float64 {
	if r.MsgsRecv == 0 {
		return 0
	}
	return float64(r.HopsRecv) / float64(r.MsgsRecv)
}

// RedundancyRatio returns the paper's Fig. 7 metric: duplicate vertices
// eliminated by the union-fold divided by total vertices received in
// folds, as a percentage.
func (r *Result) RedundancyRatio() float64 {
	if r.TotalFoldWords+r.TotalDups == 0 {
		return 0
	}
	// Dups never reach RecvWords under in-flight union; the "received"
	// denominator of the paper counts what a processor would have had
	// to process, i.e. delivered words; we report eliminated/(eliminated+delivered).
	return 100 * float64(r.TotalDups) / float64(r.TotalDups+r.TotalFoldWords)
}

// AvgExpandWordsPerLevel returns the per-rank, per-level average expand
// message length (Table 1's "Avg. Message Length per Level", expand).
func (r *Result) AvgExpandWordsPerLevel(p int) float64 {
	if len(r.PerLevel) == 0 {
		return 0
	}
	return float64(r.TotalExpandWords) / float64(p) / float64(len(r.PerLevel))
}

// AvgFoldWordsPerLevel returns the fold counterpart of
// AvgExpandWordsPerLevel.
func (r *Result) AvgFoldWordsPerLevel(p int) float64 {
	if len(r.PerLevel) == 0 {
		return 0
	}
	return float64(r.TotalFoldWords) / float64(p) / float64(len(r.PerLevel))
}

// LoadImbalance returns max/mean of the per-rank totals of newly
// labeled vertices over the whole search — 1.0 is perfect balance. For
// blocked partitionings of Poisson random graphs this stays close to 1
// (the balance assumption of §2); skewed inputs need graph.Relabel.
func (r *Result) LoadImbalance() float64 {
	if len(r.PerRank) == 0 {
		return 0
	}
	totals := make([]float64, len(r.PerRank))
	var sum, max float64
	for i, recs := range r.PerRank {
		for _, ls := range recs {
			totals[i] += float64(ls.Marked)
		}
		sum += totals[i]
		if totals[i] > max {
			max = totals[i]
		}
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(r.PerRank)))
}

// MaxLevel returns the deepest level labeled.
func (r *Result) MaxLevel() int32 {
	max := int32(0)
	for _, l := range r.Levels {
		if l > max {
			max = l
		}
	}
	return max
}

// Reached returns the number of labeled vertices.
func (r *Result) Reached() int {
	n := 0
	for _, l := range r.Levels {
		if l != graph.Unreached {
			n++
		}
	}
	return n
}

// rankLevel is one rank's contribution to a level's statistics.
type rankLevel struct {
	dir         Direction
	frontier    int
	expandWords int
	foldWords   int
	dups        int
	marked      int
	edges       int
	containers  frontier.ContainerHist
	execS       float64
	commS       float64
	overlapS    float64
}

// levelTimer snapshots a rank's simulated-time ledgers at level entry
// so the level's clock/comm/overlap deltas can be recorded on exit.
type levelTimer struct {
	c                    *comm.Comm
	clock, comm, overlap float64
}

func newLevelTimer(c *comm.Comm) levelTimer {
	c.Tracer().Begin("level", "level")
	return levelTimer{c: c, clock: c.Clock(), comm: c.CommTime(), overlap: c.OverlapTime()}
}

func (t levelTimer) record(rec *rankLevel) {
	rec.execS = t.c.Clock() - t.clock
	rec.commS = t.c.CommTime() - t.comm
	rec.overlapS = t.c.OverlapTime() - t.overlap
	t.c.Tracer().End(
		trace.Arg{Key: "dir", Val: int64(rec.dir)},
		trace.Arg{Key: "frontier", Val: int64(rec.frontier)},
		trace.Arg{Key: "expand_words", Val: int64(rec.expandWords)},
		trace.Arg{Key: "fold_words", Val: int64(rec.foldWords)},
		trace.Arg{Key: "dups", Val: int64(rec.dups)},
		trace.Arg{Key: "marked", Val: int64(rec.marked)},
		trace.Arg{Key: "edges", Val: int64(rec.edges)},
	)
}

// mergeStats combines per-rank per-level records into global LevelStats
// and totals on a Result.
func mergeStats(res *Result, perRank [][]rankLevel, comms []*comm.Comm) {
	levels := 0
	for _, rl := range perRank {
		if len(rl) > levels {
			levels = len(rl)
		}
	}
	res.PerLevel = make([]LevelStats, levels)
	for l := 0; l < levels; l++ {
		res.PerLevel[l].Level = int32(l)
	}
	res.PerRank = make([][]LevelStats, len(perRank))
	for rank, rl := range perRank {
		res.PerRank[rank] = make([]LevelStats, len(rl))
		for l, s := range rl {
			res.PerRank[rank][l] = LevelStats{
				Level:        int32(l),
				Direction:    s.dir,
				Frontier:     int64(s.frontier),
				ExpandWords:  int64(s.expandWords),
				FoldWords:    int64(s.foldWords),
				Dups:         int64(s.dups),
				Marked:       int64(s.marked),
				EdgesScanned: int64(s.edges),
				Containers:   s.containers,
				ExecS:        s.execS,
				CommS:        s.commS,
				OverlapS:     s.overlapS,
			}
			ls := &res.PerLevel[l]
			ls.Direction = s.dir // uniform across ranks by construction
			ls.Frontier += int64(s.frontier)
			ls.ExpandWords += int64(s.expandWords)
			ls.FoldWords += int64(s.foldWords)
			ls.Dups += int64(s.dups)
			ls.Marked += int64(s.marked)
			ls.EdgesScanned += int64(s.edges)
			ls.Containers.Add(s.containers)
			if s.execS > ls.ExecS {
				ls.ExecS = s.execS // critical path: slowest rank
			}
			ls.CommS += s.commS
			ls.OverlapS += s.overlapS
		}
	}
	for _, ls := range res.PerLevel {
		res.TotalExpandWords += ls.ExpandWords
		res.TotalFoldWords += ls.FoldWords
		res.TotalDups += ls.Dups
		res.TotalEdgesScanned += ls.EdgesScanned
		res.Containers.Add(ls.Containers)
	}
	res.SimTime = comm.MaxClock(comms)
	res.SimComm = comm.MaxCommTime(comms)
	res.SimOverlap = comm.MaxOverlapTime(comms)
	for _, c := range comms {
		res.MsgsRecv += c.MsgsRecv()
		res.HopsRecv += c.HopsRecv()
		res.HopBytes += c.HopBytes()
	}
	res.MaxLinkBytes, _, res.LinksUsed = comm.LinkLoads(comms)
	res.Faults = comm.MergeFaultStats(comms)
}
