package bfs

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/localindex"
	"repro/internal/torus"
)

// Overlapped (asynchronous) level schedules. Every exchange posts its
// sends before any wait and streams received parts straight into the
// hash-probe scan as they complete, so the wire time of the parts still
// in flight hides under the scan compute that dominates the §4.2
// profile — and the fold's sends post per bin, as each bin finishes its
// sort-merge, instead of after the whole merge. Results are identical
// to the synchronous path (the scans, unions, min-merges, and OR-merges
// are order-insensitive, and the sent-neighbors cache admits each
// vertex exactly once in any order); only the simulated clock — and the
// OverlapS ledger — changes.

// foldAlgKey maps a FoldAlg onto collective.FoldAsync's dispatcher key.
func foldAlgKey(a FoldAlg) string {
	switch a {
	case FoldDirect:
		return "direct"
	case FoldTwoPhase:
		return "twophase"
	case FoldTwoPhaseNoUnion:
		return "twophase-nounion"
	case FoldBruck:
		return "bruck"
	default:
		panic(fmt.Sprintf("bfs: unknown fold algorithm %v", a))
	}
}

// sortPrep wraps the neighbor bins as a collective.Prep that sorts (and
// charges) each bin the moment it is needed for posting, so the early
// bins' transfers fly while the later bins are still being merged.
func sortPrep(c *comm.Comm, model torus.CostModel, bins [][]uint32) collective.Prep {
	sorted := make([]bool, len(bins))
	return func(m int) []uint32 {
		if !sorted[m] {
			var d int
			bins[m], d = localindex.SortSet(bins[m])
			c.ChargeItems(len(bins[m])+d, model.VertexCost)
			sorted[m] = true
		}
		return bins[m]
	}
}

// expandAsync posts the expand with the pipelined schedule, streaming
// every part — this rank's own portion first — through handle.
func (e *engine2D) expandAsync(s *sideState, tag int, handle collective.Handle) collective.Stats {
	o := collective.Opts{Tag: tag, Chunk: e.opts.ChunkWords, Async: true}
	switch e.opts.Expand {
	case ExpandTargeted:
		r := e.colG.Size()
		send := make([][]uint32, r)
		s.F.Iterate(func(gv uint32) {
			li := e.st.LocalOf(graph.Vertex(gv))
			for i := 0; i < r; i++ {
				if e.st.NeedsRow(li, i) {
					send[i] = append(send[i], gv)
				}
			}
		})
		e.c.ChargeItems(s.F.Len()*((r+63)/64), e.model.EdgeCost)
		prep := func(i int) []uint32 {
			if i == e.colG.Me {
				return send[i] // stays local, unencoded
			}
			return e.expandWire(send[i])
		}
		_, st := collective.AllToAllAsync(e.c, e.colG, o, prep, handle)
		return st
	case ExpandAllGather:
		_, st := collective.AllGatherAsync(e.c, e.colG, o, e.wireFrontier(s.F), handle)
		return st
	case ExpandTwoPhase:
		o.BundleMerge = e.expandBundleMerge()
		_, st := collective.TwoPhaseExpandAsync(e.c, e.colG, o, e.wireFrontier(s.F), handle)
		return st
	default:
		panic(fmt.Sprintf("bfs: unknown expand algorithm %v", e.opts.Expand))
	}
}

// stepAsync is the overlapped top-down level: each expand part's
// hash-probe scan runs while the remaining parts are on the wire, and
// the fold's sends post per sorted bin.
func (e *engine2D) stepAsync(s *sideState, tagBase int) (rankLevel, bool) {
	tm := newLevelTimer(e.c)
	h0 := e.hist
	rec := rankLevel{frontier: s.F.Len()}
	bins := make([][]uint32, e.st.Layout.C)
	scan := func(m int, part []uint32) {
		// Mirror expandUnwire: WireSparse parts are raw id lists that never
		// saw the sentinel guard, so they must not go through Decode.
		if e.opts.Wire != frontier.WireSparse {
			part = frontier.DecodePar(e.pl, part) // no-op on raw lists and local parts
		}
		e.c.ChargeItemsPar(len(part), e.model.VertexCost)
		rec.edges += e.scanPart(s, part, bins)
	}
	est := e.expandAsync(s, tagBase, scan)
	rec.expandWords = est.RecvWords

	o := collective.Opts{Tag: tagBase + 1<<24, Chunk: e.opts.ChunkWords, Async: true}
	o.Codec = foldCodec(e.c.Tracer(), e.pl, e.opts.Wire, e.rowG, e.st.Layout.OwnedRange, &e.hist)
	nbar, fst := collective.FoldAsync(e.c, e.rowG, o, foldAlgKey(e.opts.Fold), sortPrep(e.c, e.model, bins))
	rec.foldWords = fst.RecvWords
	rec.dups = fst.Dups

	foundTarget := false
	e.c.ChargeItems(len(nbar), e.model.VertexCost)
	next := e.opts.newFrontier(e.st.Lo, e.st.OwnedCount())
	for _, gu := range nbar {
		li := e.st.LocalOf(graph.Vertex(gu))
		if s.L[li] == graph.Unreached {
			s.L[li] = s.level + 1
			next.Add(gu)
			rec.marked++
			if e.opts.HasTarget && graph.Vertex(gu) == e.opts.Target {
				foundTarget = true
			}
		}
	}
	s.F = next
	s.level++
	rec.containers = e.hist.Sub(h0)
	tm.record(&rec)
	return rec, foundTarget
}

// sweepAsync is the overlapped lane-parallel sweep under the 2D
// partitioning: lane payloads stream into the partial-list scan as they
// arrive, and the row exchange posts per bin as each finishes its
// OR-merge.
func (e *multiEngine2D) sweepAsync(s *multiState, tagBase int) rankLevel {
	tm := newLevelTimer(e.c)
	h0 := e.hist
	rec := rankLevel{dir: TopDown, frontier: s.F.Len()}
	l := e.st.Layout
	r := e.colG.Size()

	sendV := make([][]uint32, r)
	sendM := make([][]uint64, r)
	s.F.Iterate(func(gv uint32) {
		li := e.st.LocalOf(graph.Vertex(gv))
		m := s.fmask[li]
		for i := 0; i < r; i++ {
			if e.st.NeedsRow(li, i) {
				sendV[i] = append(sendV[i], gv)
				sendM[i] = append(sendM[i], m)
			}
		}
	})
	e.c.ChargeItems(s.F.Len()*((r+63)/64), e.model.EdgeCost)
	b := len(s.levels)
	lo, n := e.st.Lo, e.st.OwnedCount()

	binV := make([][]uint32, l.C)
	binM := make([][]uint64, l.C)
	scanned := 0
	handle := func(m int, part []uint32) {
		var avs []uint32
		var ams []uint64
		if m == e.colG.Me {
			avs, ams = sendV[m], sendM[m]
		} else {
			avs, ams = decodeLanes(e.pl, part, b)
		}
		scanned += e.scanLanes(avs, ams, binV, binM)
	}
	prep := func(i int) []uint32 {
		if i == e.colG.Me {
			return nil // stays local; handle reads sendV/sendM directly
		}
		return encodeLanes(e.pl, sendV[i], sendM[i], b, uint32(lo), n, e.opts.Wire, &e.hist)
	}
	o := collective.Opts{Tag: tagBase, Chunk: e.opts.ChunkWords, Async: true}
	_, est := collective.AllToAllAsync(e.c, e.colG, o, prep, handle)
	rec.expandWords = est.RecvWords
	rec.edges = scanned

	deduped := make([]bool, l.C)
	prepR := func(j int) []uint32 {
		if !deduped[j] {
			var d int
			binV[j], binM[j], d = dedupOr(binV[j], binM[j])
			rec.dups += d
			e.c.ChargeItems(len(binV[j])+d, e.model.VertexCost)
			deduped[j] = true
		}
		if j == e.rowG.Me {
			return nil
		}
		dlo, dhi := l.OwnedRange(e.rowG.World(j))
		return encodeLanes(e.pl, binV[j], binM[j], b, uint32(dlo), int(dhi-dlo), e.opts.Wire, &e.hist)
	}
	var rvs []uint32
	var rms []uint64
	handleR := func(j int, part []uint32) {
		var pvs []uint32
		var pms []uint64
		if j == e.rowG.Me {
			pvs, pms = binV[j], binM[j]
		} else {
			pvs, pms = decodeLanes(e.pl, part, b)
		}
		rvs = append(rvs, pvs...)
		rms = append(rms, pms...)
	}
	o2 := collective.Opts{Tag: tagBase + 1<<24, Chunk: e.opts.ChunkWords, Async: true}
	_, fst := collective.AllToAllAsync(e.c, e.rowG, o2, prepR, handleR)
	rec.foldWords = fst.RecvWords

	var d int
	rvs, rms, d = dedupOr(rvs, rms)
	rec.dups += d
	e.c.ChargeItems(len(rvs)+d, e.model.VertexCost)
	s.mark(e.opts, e.st.Lo, e.st.OwnedCount(), rvs, rms, &rec)
	rec.containers = e.hist.Sub(h0)
	tm.record(&rec)
	return rec
}

// sweepAsync is the overlapped lane-parallel sweep under the 1D
// partitioning: the scan is local, so the win is the pipelined fold —
// per-bin OR-merges interleave with the posts.
func (e *multiEngine1D) sweepAsync(s *multiState, tagBase int) rankLevel {
	tm := newLevelTimer(e.c)
	h0 := e.hist
	rec := rankLevel{dir: TopDown, frontier: s.F.Len()}
	l := e.st.Layout
	p := e.world.Size()

	binV, binM, scanned := e.scanLanes(s)
	rec.edges = scanned
	b := len(s.levels)

	deduped := make([]bool, p)
	prep := func(q int) []uint32 {
		if !deduped[q] {
			var d int
			binV[q], binM[q], d = dedupOr(binV[q], binM[q])
			rec.dups += d
			e.c.ChargeItems(len(binV[q])+d, e.model.VertexCost)
			deduped[q] = true
		}
		if q == e.world.Me {
			return nil
		}
		dlo, dhi := l.OwnedRange(q)
		return encodeLanes(e.pl, binV[q], binM[q], b, uint32(dlo), int(dhi-dlo), e.opts.Wire, &e.hist)
	}
	var rvs []uint32
	var rms []uint64
	handle := func(q int, part []uint32) {
		var pvs []uint32
		var pms []uint64
		if q == e.world.Me {
			pvs, pms = binV[q], binM[q]
		} else {
			pvs, pms = decodeLanes(e.pl, part, b)
		}
		rvs = append(rvs, pvs...)
		rms = append(rms, pms...)
	}
	o := collective.Opts{Tag: tagBase, Chunk: e.opts.ChunkWords, Async: true}
	_, fst := collective.AllToAllAsync(e.c, e.world, o, prep, handle)
	rec.foldWords = fst.RecvWords

	var d int
	rvs, rms, d = dedupOr(rvs, rms)
	rec.dups += d
	e.c.ChargeItems(len(rvs)+d, e.model.VertexCost)
	s.mark(e.opts, e.st.Lo, e.st.OwnedCount(), rvs, rms, &rec)
	rec.containers = e.hist.Sub(h0)
	tm.record(&rec)
	return rec
}

// stepAsync is the overlapped Algorithm 1 level: the scan precedes the
// fold entirely (1D has no expand), so the win is the pipelined fold —
// per-bin sort-merges interleave with the posts, and all P-1 transfers
// fly concurrently instead of one transit per pairwise step.
func (e *engine1D) stepAsync(s *sideState, tagBase int) (rankLevel, bool) {
	tm := newLevelTimer(e.c)
	h0 := e.hist
	rec := rankLevel{frontier: s.F.Len()}
	bins, scanned := e.scanFrontier(s)
	rec.edges = scanned

	o := collective.Opts{Tag: tagBase, Chunk: e.opts.ChunkWords, Async: true}
	o.Codec = foldCodec(e.c.Tracer(), e.pl, e.opts.Wire, e.world, e.st.Layout.OwnedRange, &e.hist)
	nbar, fst := collective.FoldAsync(e.c, e.world, o, foldAlgKey(e.opts.Fold), sortPrep(e.c, e.model, bins))
	rec.foldWords = fst.RecvWords
	rec.dups = fst.Dups

	e.c.ChargeItems(len(nbar), e.model.VertexCost)
	foundTarget := false
	next := e.opts.newFrontier(e.st.Lo, e.st.OwnedCount())
	for _, gu := range nbar {
		li := e.st.LocalOf(graph.Vertex(gu))
		if s.L[li] == graph.Unreached {
			s.L[li] = s.level + 1
			next.Add(gu)
			rec.marked++
			if e.opts.HasTarget && graph.Vertex(gu) == e.opts.Target {
				foundTarget = true
			}
		}
	}
	s.F = next
	s.level++
	rec.containers = e.hist.Sub(h0)
	tm.record(&rec)
	return rec, foundTarget
}
