package bfs

// Checkpoint/restart for the uni-directional drivers: at the top of
// level Checkpoint.At each rank serializes its complete search state —
// the side (levels, frontier, sent-cache), the direction heuristic's
// running degree ledger, the per-level statistics, the engine's cached
// degree exchange, and the transport state (comm.State) — into one
// opaque blob deposited in the checkpoint.Plan. A restoring run loads
// the blobs, skips the charged initialization (its cost lives in the
// restored ledgers), and continues to a Result byte-identical to the
// uninterrupted run. Frontier sets travel through the existing wire
// codec, so a snapshot stores like any other payload.

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/frontier"
)

// ckptVersion guards the blob layout.
const ckptVersion = 1

// optsFingerprint folds every option that must match between the
// checkpointing and the restoring run — anything that changes the
// schedule, the wire traffic, or the charges.
func optsFingerprint(o Options) uint64 {
	var bits uint64
	if o.HasTarget {
		bits |= 1
	}
	if o.Async {
		bits |= 2
	}
	if o.SentCache {
		bits |= 4
	}
	if o.P2PTermination {
		bits |= 8
	}
	return checkpoint.Fingerprint(
		uint64(o.Source), uint64(o.Target), bits,
		uint64(o.Expand), uint64(o.Fold), uint64(o.Direction),
		math.Float64bits(o.doAlpha()),
		uint64(o.Wire), uint64(o.ChunkWords),
		math.Float64bits(o.FrontierOccupancy),
		uint64(o.MaxLevels),
		// Cores scales the pool-loop charges, so it is workload identity;
		// 0 and 1 are the same single-core baseline. Workers is real
		// wall-clock parallelism only and deliberately excluded.
		uint64(max(1, o.Cores)),
	)
}

// runFingerprint is the full workload identity: engine partitioning,
// options, and world size.
func runFingerprint(e stepper, opts Options, p int) uint64 {
	return checkpoint.Fingerprint(e.fingerprint(), optsFingerprint(opts), uint64(p))
}

// validateRobustness rejects checkpoint/restore combinations a driver
// does not support. uniDriver is false for the bi-directional and
// multi-source drivers, which have no snapshot support.
func validateRobustness(opts Options, uniDriver bool) error {
	cp := opts.Checkpoint.Enabled()
	rs := opts.Restore != nil
	if !cp && !rs {
		return nil
	}
	if !uniDriver {
		return fmt.Errorf("bfs: checkpoint/restore is only supported by the uni-directional drivers")
	}
	if cp && rs {
		return fmt.Errorf("bfs: cannot checkpoint and restore in the same run")
	}
	if opts.Trace != nil {
		return fmt.Errorf("bfs: checkpoint/restore cannot be combined with tracing (a partial run's spans do not tile the clock)")
	}
	return nil
}

// saveUniBlob serializes one rank's uni-directional driver state.
func saveUniBlob(c *comm.Comm, e stepper, s *sideState, recs []rankLevel, unlabeledDeg uint64, redTag int) []uint32 {
	enc := &checkpoint.Enc{}
	enc.U32(ckptVersion)
	enc.U64(unlabeledDeg)
	enc.Int(redTag)
	encodeSide(enc, s)
	e.saveExtra(enc)
	enc.Int(len(recs))
	for i := range recs {
		encodeRankLevel(enc, &recs[i])
	}
	c.CaptureState().Encode(enc)
	return enc.Payload()
}

// restoreUniBlob is saveUniBlob's inverse: it rebuilds the side and
// statistics and loads the transport state onto the (fresh) rank.
func restoreUniBlob(c *comm.Comm, e stepper, opts Options, blob []uint32) (*sideState, []rankLevel, uint64, int) {
	dec := checkpoint.NewDec(blob)
	if v := dec.U32(); v != ckptVersion {
		panic(fmt.Sprintf("bfs: checkpoint blob version %d, want %d", v, ckptVersion))
	}
	unlabeledDeg := dec.U64()
	redTag := dec.Int()
	s := decodeSide(dec, e, opts)
	e.restoreExtra(dec)
	n := dec.Int()
	recs := make([]rankLevel, n)
	for i := range recs {
		recs[i] = decodeRankLevel(dec)
	}
	c.RestoreState(comm.DecodeState(dec))
	dec.Done()
	return s, recs, unlabeledDeg, redTag
}

// encodeSide serializes a sideState. The frontier goes through the
// wire codec (WireAuto: vertex list or bitmap, whichever is fewer
// words); members are re-Added in ascending order on restore, which
// reproduces the adaptive representation deterministically.
func encodeSide(enc *checkpoint.Enc, s *sideState) {
	enc.U32(uint32(s.level))
	enc.Int(len(s.L))
	for _, v := range s.L {
		enc.U32(uint32(v))
	}
	lo, n := s.F.Universe()
	enc.Words(frontier.EncodeSet(s.F.Vertices(), lo, n, frontier.WireAuto))
	enc.Bool(s.sent != nil)
	if s.sent != nil {
		words := s.sent.Words()
		enc.Int(len(words))
		for _, w := range words {
			enc.U64(w)
		}
	}
}

// decodeSide rebuilds a sideState through the engine's own
// constructor, so sizes and representations match the engine exactly.
func decodeSide(dec *checkpoint.Dec, e stepper, opts Options) *sideState {
	s := e.newSide(opts.Source)
	s.level = int32(dec.U32())
	if n := dec.Int(); n != len(s.L) {
		panic(fmt.Sprintf("bfs: checkpoint has %d owned levels, engine has %d", n, len(s.L)))
	}
	for i := range s.L {
		s.L[i] = int32(dec.U32())
	}
	lo, n := s.F.Universe()
	s.F = frontier.NewAdaptive(lo, n, opts.FrontierOccupancy)
	for _, v := range frontier.Decode(dec.Words()) {
		s.F.Add(v)
	}
	if dec.Bool() {
		if s.sent == nil {
			panic("bfs: checkpoint has a sent-cache, engine does not")
		}
		words := s.sent.Words()
		if n := dec.Int(); n != len(words) {
			panic(fmt.Sprintf("bfs: checkpoint sent-cache has %d words, engine has %d", n, len(words)))
		}
		for i := range words {
			words[i] = dec.U64()
		}
	} else if s.sent != nil {
		panic("bfs: checkpoint has no sent-cache, engine expects one")
	}
	return s
}

func encodeRankLevel(enc *checkpoint.Enc, r *rankLevel) {
	enc.Int(int(r.dir))
	enc.Int(r.frontier)
	enc.Int(r.expandWords)
	enc.Int(r.foldWords)
	enc.Int(r.dups)
	enc.Int(r.marked)
	enc.Int(r.edges)
	encodeHist(enc, r.containers)
	enc.F64(r.execS)
	enc.F64(r.commS)
	enc.F64(r.overlapS)
}

func decodeRankLevel(dec *checkpoint.Dec) rankLevel {
	var r rankLevel
	r.dir = Direction(dec.Int())
	r.frontier = dec.Int()
	r.expandWords = dec.Int()
	r.foldWords = dec.Int()
	r.dups = dec.Int()
	r.marked = dec.Int()
	r.edges = dec.Int()
	r.containers = decodeHist(dec)
	r.execS = dec.F64()
	r.commS = dec.F64()
	r.overlapS = dec.F64()
	return r
}

func encodeHist(enc *checkpoint.Enc, h frontier.ContainerHist) {
	enc.U64(uint64(h.RawPayloads))
	enc.U64(uint64(h.DensePayloads))
	enc.U64(uint64(h.HybridPayloads))
	enc.U64(uint64(h.EmptyChunks))
	enc.U64(uint64(h.ListChunks))
	enc.U64(uint64(h.BitmapChunks))
	enc.U64(uint64(h.RunChunks))
	enc.U64(uint64(h.PackedChunks))
}

func decodeHist(dec *checkpoint.Dec) frontier.ContainerHist {
	return frontier.ContainerHist{
		RawPayloads:    int64(dec.U64()),
		DensePayloads:  int64(dec.U64()),
		HybridPayloads: int64(dec.U64()),
		EmptyChunks:    int64(dec.U64()),
		ListChunks:     int64(dec.U64()),
		BitmapChunks:   int64(dec.U64()),
		RunChunks:      int64(dec.U64()),
		PackedChunks:   int64(dec.U64()),
	}
}

// engine fingerprints and extra-state hooks.

func (e *engine1D) fingerprint() uint64 {
	l := e.st.Layout
	return checkpoint.Fingerprint(uint64(l.N), 1, uint64(l.P))
}

// saveExtra persists the 1D degree-sum cache — it is computed without
// charges, but restoring it keeps the restored run's reductions
// byte-identical without rescanning — and the pre-checkpoint hash-probe
// delta, so the restored Result's HashProbes matches the uninterrupted
// run.
func (e *engine1D) saveExtra(enc *checkpoint.Enc) {
	enc.Bool(e.degComputed)
	enc.U64(e.degTotal)
	enc.U64(e.probeDelta())
}

func (e *engine1D) restoreExtra(dec *checkpoint.Dec) {
	e.degComputed = dec.Bool()
	e.degTotal = dec.U64()
	e.probes0 = e.st.TargetMap.Probes() - dec.U64()
}

func (e *engine2D) fingerprint() uint64 {
	l := e.st.Layout
	return checkpoint.Fingerprint(uint64(l.N), uint64(l.R), uint64(l.C))
}

// saveExtra persists the 2D degree-exchange result: computing it
// charges an AllToAll, which already happened in the checkpointing run
// — a restored run must reuse the cache, not re-pay the exchange.
func (e *engine2D) saveExtra(enc *checkpoint.Enc) {
	enc.Bool(e.deg != nil)
	if e.deg != nil {
		enc.Words(e.deg)
	}
	enc.U64(e.probeDelta())
}

func (e *engine2D) restoreExtra(dec *checkpoint.Dec) {
	if dec.Bool() {
		e.deg = dec.Words()
	}
	e.probes0 = e.st.ColMap.Probes() + e.st.RowMap.Probes() - dec.U64()
}
