package bfs

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/search"
)

// TestRun2DCancelPartialPrefix: a run canceled by a tiny simulated
// budget stops at a level boundary with a *search.Canceled naming the
// cause, and the partial Result's completed levels are a prefix of the
// full run — levels at or below the cut line are final, deeper
// vertices still Unreached.
func TestRun2DCancelPartialPrefix(t *testing.T) {
	g := testGraph(t, 600, 5, 1)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.Cancel = search.SimBudgetCancel(1e-9)
	res, err := Run2D(fx.world, fx.st2, opts)
	if err == nil {
		t.Fatal("no error from a run whose budget is one nanosecond")
	}
	var cxl *search.Canceled
	if !errors.As(err, &cxl) {
		t.Fatalf("error %v is not a *search.Canceled", err)
	}
	if cxl.Unit != "level" {
		t.Fatalf("canceled unit %q, want %q", cxl.Unit, "level")
	}
	if cxl.Cause == nil || cxl.Cause.Error() == "" {
		t.Fatalf("canceled with no cause: %+v", cxl)
	}
	if res == nil {
		t.Fatal("canceled run returned no partial Result")
	}
	// The run stopped at the top of level Done: vertices at levels
	// 0..Done carry their final serial labels, anything deeper is
	// still Unreached.
	cut := int32(cxl.Done)
	for v, want := range fx.serial {
		got := res.Levels[v]
		switch {
		case want != graph.Unreached && want <= cut:
			if got != want {
				t.Fatalf("level[%d] = %d inside the cut %d, serial %d", v, got, cut, want)
			}
		case got != graph.Unreached && got > cut:
			t.Fatalf("level[%d] = %d past the cut %d: partial run labeled beyond its stop", v, got, cut)
		}
	}

	// The same options without the hook finish and match serial — the
	// cancel path must not have poisoned the world.
	opts.Cancel = nil
	full, err := Run2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatalf("clean run after a canceled one: %v", err)
	}
	levelsEqual(t, full.Levels, fx.serial, "post-cancel clean run")
}

// TestMultiRun2DCancel: the multi-source sweep cancels at a sweep
// boundary with partial per-lane levels and stays reusable.
func TestMultiRun2DCancel(t *testing.T) {
	g := testGraph(t, 500, 5, 2)
	fx := build2D(t, g, 2, 2)
	sources := []graph.Vertex{fx.src, fx.src + 1, fx.src + 2}
	opts := DefaultOptions(sources[0])
	opts.Cancel = search.SimBudgetCancel(1e-9)
	res, err := MultiRun2D(fx.world, fx.st2, sources, opts)
	var cxl *search.Canceled
	if !errors.As(err, &cxl) {
		t.Fatalf("error %v is not a *search.Canceled", err)
	}
	if cxl.Unit != "sweep" {
		t.Fatalf("canceled unit %q, want %q", cxl.Unit, "sweep")
	}
	if res == nil || len(res.LaneLevels) != len(sources) {
		t.Fatalf("partial multi result missing lanes: %+v", res)
	}

	opts.Cancel = nil
	full, err := MultiRun2D(fx.world, fx.st2, sources, opts)
	if err != nil {
		t.Fatalf("clean sweep after a canceled one: %v", err)
	}
	for lane, src := range sources {
		levelsEqual(t, full.LaneLevels[lane], graph.BFS(g, src), "post-cancel lane")
	}
}

// TestCancelNeverFires: a cancel hook that never fires must leave the
// run identical to one with no hook at all (the or-reduction is extra
// traffic only when a hook is set, but the ANSWER may never change).
func TestCancelNeverFires(t *testing.T) {
	g := testGraph(t, 400, 5, 3)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.Cancel = func(float64) error { return nil }
	res, err := Run2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatalf("run with a never-firing hook: %v", err)
	}
	levelsEqual(t, res.Levels, fx.serial, "never-firing hook")

	opts.Cancel = nil
	base, err := Run2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if res.TotalExpandWords != base.TotalExpandWords || res.TotalFoldWords != base.TotalFoldWords {
		t.Fatalf("hooked run moved %d/%d words, baseline %d/%d — the hook changed the payload traffic",
			res.TotalExpandWords, res.TotalFoldWords, base.TotalExpandWords, base.TotalFoldWords)
	}
}
