package bfs

import (
	"strings"
	"testing"
)

func TestAlgorithmStrings(t *testing.T) {
	cases := map[string]string{
		ExpandTargeted.String():      "targeted",
		ExpandAllGather.String():     "allgather",
		ExpandTwoPhase.String():      "twophase",
		FoldTwoPhase.String():        "twophase-union",
		FoldDirect.String():          "direct",
		FoldTwoPhaseNoUnion.String(): "twophase-nounion",
		FoldBruck.String():           "bruck",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if !strings.Contains(ExpandAlg(99).String(), "99") {
		t.Error("unknown expand alg should include the value")
	}
	if !strings.Contains(FoldAlg(99).String(), "99") {
		t.Error("unknown fold alg should include the value")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions(7)
	if o.Source != 7 || o.HasTarget {
		t.Error("source/target defaults wrong")
	}
	if o.Expand != ExpandTargeted || o.Fold != FoldTwoPhase {
		t.Error("algorithm defaults changed")
	}
	if !o.SentCache || o.ChunkWords <= 0 {
		t.Error("optimization defaults changed")
	}
}

func TestUnknownAlgorithmsPanicCleanly(t *testing.T) {
	g := testGraph(t, 100, 3, 50)
	fx := build2D(t, g, 1, 2)
	opts := DefaultOptions(fx.src)
	opts.Fold = FoldAlg(99)
	if _, err := Run2D(fx.world, fx.st2, opts); err == nil {
		t.Error("unknown fold algorithm did not error")
	}
	opts = DefaultOptions(fx.src)
	opts.Expand = ExpandAlg(99)
	if _, err := Run2D(fx.world, fx.st2, opts); err == nil {
		t.Error("unknown expand algorithm did not error")
	}
}
