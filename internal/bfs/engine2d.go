package bfs

import (
	"fmt"
	"time"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/localindex"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/search"
	"repro/internal/torus"
	"repro/internal/trace"
)

// engine2D holds one rank's state for Algorithm 2. The same level
// machinery serves the uni-directional search and both sides of the
// bi-directional search.
type engine2D struct {
	c     *comm.Comm
	st    *partition.Store2D
	opts  Options
	model torus.CostModel
	colG  comm.Group // expand group: my processor-column, R members
	rowG  comm.Group // fold group: my processor-row, C members
	// pl is the per-rank worker pool the hot local loops and the hybrid
	// codec run on; see parallel.go for the determinism contract.
	pl *pool.Pool

	// hist tallies the wire codec's container choices; per-level deltas
	// land in rankLevel.containers.
	hist frontier.ContainerHist
	// deg caches the global out-degree of every owned vertex, built on
	// first use by a processor-column exchange (2D partial edge lists
	// mean no single rank holds a vertex's full degree). Only the
	// direction-optimizing policy consults it.
	deg []uint32
	// probes0 is the stores' combined hash-probe counter at run (or
	// restore) start; probeDelta reports this run's probes against it.
	probes0 uint64
}

func newEngine2D(c *comm.Comm, st *partition.Store2D, opts Options) *engine2D {
	l := st.Layout
	mesh := comm.Mesh{R: l.R, C: l.C}
	c.SetCores(opts.Cores)
	return &engine2D{
		c:       c,
		st:      st,
		opts:    opts,
		model:   c.Model(),
		colG:    mesh.ColGroup(c.Rank()),
		rowG:    mesh.RowGroup(c.Rank()),
		pl:      pool.New(opts.Workers),
		probes0: st.ColMap.Probes() + st.RowMap.Probes(),
	}
}

// probeDelta returns the hash probes performed since the engine was
// built, plus any restored pre-checkpoint probes.
func (e *engine2D) probeDelta() uint64 {
	return e.st.ColMap.Probes() + e.st.RowMap.Probes() - e.probes0
}

// sideState is the per-side search state (the bi-directional search
// runs two of these).
type sideState struct {
	L     []int32           // levels of owned vertices, Unreached if unlabeled
	F     frontier.Frontier // owned vertices labeled in the current level
	sent  *localindex.Bitset
	level int32
}

func (e *engine2D) newSide(src graph.Vertex) *sideState {
	s := &sideState{
		L: make([]int32, e.st.OwnedCount()),
		F: e.opts.newFrontier(e.st.Lo, e.st.OwnedCount()),
	}
	for i := range s.L {
		s.L[i] = graph.Unreached
	}
	if src >= e.st.Lo && src < e.st.Hi {
		s.L[e.st.LocalOf(src)] = 0
		s.F.Add(uint32(src))
	}
	if e.opts.SentCache {
		s.sent = localindex.NewBitset(e.st.RowCount)
	}
	return s
}

// universe returns the global vertex count.
func (e *engine2D) universe() int { return e.st.Layout.N }

// expandWire encodes an expand payload (a subset of this rank's owned
// frontier) for the wire under the configured encoding; WireSparse is
// the identity, keeping the legacy vertex-list format free of overhead.
func (e *engine2D) expandWire(ids []uint32) []uint32 {
	if e.opts.Wire == frontier.WireSparse {
		return ids
	}
	tr := e.c.Tracer()
	tr.Begin("engine", "encode")
	out := frontier.EncodeSetStatsPar(e.pl, ids, uint32(e.st.Lo), e.st.OwnedCount(), e.opts.Wire, &e.hist)
	tr.End(trace.Arg{Key: "words", Val: int64(len(out))})
	return out
}

// wireFrontier encodes the whole frontier as an expand payload, using
// the word-level repack when the representation is already dense.
func (e *engine2D) wireFrontier(f frontier.Frontier) []uint32 {
	if e.opts.Wire == frontier.WireSparse {
		return f.Vertices()
	}
	tr := e.c.Tracer()
	tr.Begin("engine", "encode")
	out := frontier.EncodeFrontierStatsPar(e.pl, f, e.opts.Wire, &e.hist)
	tr.End(trace.Arg{Key: "words", Val: int64(len(out))})
	return out
}

// expandUnwire decodes the pieces of an expand exchange in place
// (frontier.Decode is a no-op on payloads that stayed raw, so pieces
// that never crossed the wire are safe to pass through).
func (e *engine2D) expandUnwire(parts [][]uint32) {
	if e.opts.Wire == frontier.WireSparse {
		return
	}
	tr := e.c.Tracer()
	tr.Begin("engine", "decode")
	words := int64(0)
	for i := range parts {
		words += int64(len(parts[i]))
		parts[i] = frontier.DecodePar(e.pl, parts[i])
	}
	tr.End(trace.Arg{Key: "words", Val: words})
}

// expand performs the processor-column expand of Algorithm 2 steps
// 7–11, returning the frontier portion F̄ this rank must scan.
func (e *engine2D) expand(s *sideState, tag int) ([]uint32, collective.Stats) {
	o := collective.Opts{Tag: tag, Chunk: e.opts.ChunkWords}
	switch e.opts.Expand {
	case ExpandTargeted:
		r := e.colG.Size()
		send := make([][]uint32, r)
		// Filter my frontier per destination row by the row-need masks
		// (only rows holding a non-empty partial list receive v).
		s.F.Iterate(func(gv uint32) {
			li := e.st.LocalOf(graph.Vertex(gv))
			for i := 0; i < r; i++ {
				if e.st.NeedsRow(li, i) {
					send[i] = append(send[i], gv)
				}
			}
		})
		// Bitmask scan cost: |F| x ceil(R/64) words.
		e.c.ChargeItems(s.F.Len()*((r+63)/64), e.model.EdgeCost)
		for i := range send {
			if i != e.colG.Me {
				send[i] = e.expandWire(send[i])
			}
		}
		parts, st := collective.AllToAll(e.c, e.colG, o, send)
		e.expandUnwire(parts)
		return flatten(parts), st
	case ExpandAllGather:
		parts, st := collective.AllGather(e.c, e.colG, o, e.wireFrontier(s.F))
		e.expandUnwire(parts)
		return flatten(parts), st
	case ExpandTwoPhase:
		o.BundleMerge = e.expandBundleMerge()
		parts, st := collective.TwoPhaseExpand(e.c, e.colG, o, e.wireFrontier(s.F))
		e.expandUnwire(parts)
		return flatten(parts), st
	default:
		panic(fmt.Sprintf("bfs: unknown expand algorithm %v", e.opts.Expand))
	}
}

// expandBundleMerge recompresses a two-phase expand bundle — the
// processor column's per-origin frontier payloads, which circulate
// together along every grid-row hop — as one set over the column's
// stacked owned ranges, re-encoded through the configured wire codec.
// TwoPhaseExpand ships whichever of this and the plain framing is fewer
// words, so configuring it never costs a word; it wins whenever the
// per-origin headers and framing dominate (dense or hybrid payloads,
// and the a-1 length words of sparse bundles).
func (e *engine2D) expandBundleMerge() *collective.BundleCodec {
	l := e.st.Layout
	return &collective.BundleCodec{
		Merge: func(origins []int, payloads [][]uint32) []uint32 {
			var stacked []uint32
			off := uint32(0)
			for j, m := range origins {
				lo, hi := l.OwnedRange(e.colG.World(m))
				for _, id := range frontier.Decode(payloads[j]) {
					stacked = append(stacked, id-uint32(lo)+off)
				}
				off += uint32(hi - lo)
			}
			return frontier.EncodeSet(stacked, 0, int(off), e.opts.Wire)
		},
		Split: func(origins []int, merged []uint32) [][]uint32 {
			out := make([][]uint32, len(origins))
			ids := frontier.Decode(merged)
			off := uint32(0)
			idx := 0
			for j, m := range origins {
				lo, hi := l.OwnedRange(e.colG.World(m))
				n := uint32(hi - lo)
				for idx < len(ids) && ids[idx] < off+n {
					out[j] = append(out[j], ids[idx]-off+uint32(lo))
					idx++
				}
				off += n
			}
			return out
		},
	}
}

func flatten(parts [][]uint32) []uint32 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]uint32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// scanPart scans the partial edge lists of one decoded expand part
// (Algorithm 2 step 12), binning the discovered neighbors by owner mesh
// column and charging the edge scan and hash probes. It returns the
// edge entries inspected. The overlapped schedule calls it once per
// received part as each arrives; the synchronous path once with all of
// F̄. The bins, sent-cache state, and charges are identical either way
// (the sent cache admits each row vertex exactly once regardless of
// scan order, and the bins are sorted sets before they travel).
func (e *engine2D) scanPart(s *sideState, part []uint32, bins [][]uint32) int {
	tr := e.c.Tracer()
	tr.Begin("engine", "scan")
	l := e.st.Layout
	scanned := 0
	var probes uint64
	if nc := pool.Chunks(len(part), scanGrain); e.pl.Workers() > 1 && nc > 1 {
		type chunkOut struct {
			bins    [][]uint32
			scanned int
			probes  uint64
		}
		outs := make([]chunkOut, nc)
		e.pl.Run(len(part), scanGrain, func(ch, lo, hi int) {
			o := &outs[ch]
			o.bins = make([][]uint32, l.C)
			for _, gv := range part[lo:hi] {
				ci, ok, cp := e.st.ColMap.GetCounted(gv)
				o.probes += uint64(cp)
				if !ok {
					continue // no partial list here
				}
				list := e.st.Rows[e.st.Off[ci]:e.st.Off[ci+1]]
				o.scanned += len(list)
				for _, u := range list {
					if s.sent != nil {
						idx, ok, rp := e.st.RowMap.GetCounted(u)
						o.probes += uint64(rp)
						if !ok {
							panic("bfs: row vertex missing from RowMap")
						}
						if s.sent.TestAndSetAtomic(idx) {
							continue // already sent to its owner once (§2.4.3)
						}
					}
					o.bins[l.ColBlockOf(u)] = append(o.bins[l.ColBlockOf(u)], uint32(u))
				}
			}
		})
		for i := range outs {
			scanned += outs[i].scanned
			probes += outs[i].probes
			for j, b := range outs[i].bins {
				bins[j] = append(bins[j], b...)
			}
		}
		// Credit the shared counter once. probeDelta sums the ColMap and
		// RowMap counters, so folding the RowMap probes into the ColMap
		// tally changes no reported number.
		e.st.ColMap.AddProbes(probes)
	} else {
		colProbes0 := e.st.ColMap.Probes()
		rowProbes0 := e.st.RowMap.Probes()
		for _, gv := range part {
			list := e.st.PartialList(graph.Vertex(gv))
			scanned += len(list)
			for _, u := range list {
				if s.sent != nil {
					idx, ok := e.st.RowMap.Get(u)
					if !ok {
						panic("bfs: row vertex missing from RowMap")
					}
					if s.sent.TestAndSet(idx) {
						continue // already sent to its owner once (§2.4.3)
					}
				}
				bins[l.ColBlockOf(u)] = append(bins[l.ColBlockOf(u)], uint32(u))
			}
		}
		probes = (e.st.ColMap.Probes() - colProbes0) + (e.st.RowMap.Probes() - rowProbes0)
	}
	e.c.ChargeItemsPar(scanned, e.model.EdgeCost)
	e.c.ChargeItemsPar(int(probes), e.model.HashCost)
	tr.End(trace.Arg{Key: "edges", Val: int64(scanned)}, trace.Arg{Key: "probes", Val: int64(probes)})
	return scanned
}

// neighbors scans the partial edge lists of F̄ and merges the
// discovered neighbors into per-destination sorted sets ("merged to
// form N").
func (e *engine2D) neighbors(s *sideState, fbar []uint32) ([][]uint32, int) {
	bins := make([][]uint32, e.st.Layout.C)
	scanned := e.scanPart(s, fbar, bins)
	for j := range bins {
		var d int
		bins[j], d = localindex.SortSet(bins[j])
		e.c.ChargeItems(len(bins[j])+d, e.model.VertexCost)
	}
	return bins, scanned
}

// foldCodec builds the wire codec for fold payloads: a set destined to
// row-group member m is a subset of that member's owned range, so it
// can travel as a bitmap — or hybrid chunk containers — over that
// range when denser is cheaper.
func foldCodec(tr *trace.Tracer, p *pool.Pool, wire frontier.WireMode, g comm.Group, ownedRange func(worldRank int) (graph.Vertex, graph.Vertex), h *frontier.ContainerHist) *collective.Codec {
	if wire == frontier.WireSparse {
		return nil
	}
	return &collective.Codec{
		Enc: func(m int, set []uint32) []uint32 {
			tr.Begin("engine", "encode")
			lo, hi := ownedRange(g.World(m))
			out := frontier.EncodeSetStatsPar(p, set, uint32(lo), int(hi-lo), wire, h)
			tr.End(trace.Arg{Key: "words", Val: int64(len(out))})
			return out
		},
		Dec: func(m int, buf []uint32) []uint32 {
			tr.Begin("engine", "decode")
			out := frontier.DecodePar(p, buf)
			tr.End(trace.Arg{Key: "words", Val: int64(len(buf))})
			return out
		},
	}
}

// fold delivers the neighbor sets to their owners (Algorithm 2 steps
// 13–18) using the configured collective, returning the sorted set N̄
// of owned vertices to mark.
func (e *engine2D) fold(bins [][]uint32, tag int) ([]uint32, collective.Stats) {
	o := collective.Opts{Tag: tag, Chunk: e.opts.ChunkWords}
	o.Codec = foldCodec(e.c.Tracer(), e.pl, e.opts.Wire, e.rowG, e.st.Layout.OwnedRange, &e.hist)
	switch e.opts.Fold {
	case FoldDirect:
		return collective.ReduceScatterUnion(e.c, e.rowG, o, bins)
	case FoldTwoPhase:
		return collective.TwoPhaseFold(e.c, e.rowG, o, bins)
	case FoldTwoPhaseNoUnion:
		o.NoUnion = true
		return collective.TwoPhaseFold(e.c, e.rowG, o, bins)
	case FoldBruck:
		return collective.ReduceScatterUnionBruck(e.c, e.rowG, o, bins)
	default:
		panic(fmt.Sprintf("bfs: unknown fold algorithm %v", e.opts.Fold))
	}
}

// degreeExchangeTag namespaces the one-time owned-degree exchange of
// the direction-optimizing heuristic, away from the per-level tag
// spaces (level*64 + offsets) and the P2P reducer (1<<28).
const degreeExchangeTag = 1 << 27

// ownedOutDegrees returns the global out-degree of every owned vertex.
// A vertex's partial edge lists are spread over its processor column,
// so the first call runs one column all-to-all: each rank sends every
// column-mate the partial degrees of that mate's owned vertices, and
// the owner sums the R contributions.
func (e *engine2D) ownedOutDegrees() []uint32 {
	if e.deg != nil {
		return e.deg
	}
	l := e.st.Layout
	bs := l.BlockSize()
	r := e.colG.Size()
	send := make([][]uint32, r)
	for i := 0; i < r; i++ {
		send[i] = make([]uint32, l.OwnedCount(e.colG.Ranks[i]))
	}
	for ci, v := range e.st.ColIds {
		b := int(v) / bs
		send[b%l.R][int(v)-b*bs] += uint32(e.st.Off[ci+1] - e.st.Off[ci])
	}
	e.c.ChargeItems(len(e.st.ColIds), e.model.VertexCost)
	o := collective.Opts{Tag: degreeExchangeTag, Chunk: e.opts.ChunkWords}
	parts, st := collective.AllToAll(e.c, e.colG, o, send)
	deg := make([]uint32, e.st.OwnedCount())
	for _, p := range parts {
		for j, d := range p {
			deg[j] += d
		}
	}
	e.c.ChargeItems(st.RecvWords, e.model.VertexCost)
	e.deg = deg
	return deg
}

// totalOutDegree returns this rank's owned vertices' degree sum.
func (e *engine2D) totalOutDegree() uint64 {
	var sum uint64
	for _, d := range e.ownedOutDegrees() {
		sum += uint64(d)
	}
	return sum
}

// frontierOutDegree returns the degree sum over s's frontier — the
// edges a top-down expansion of it would scan, globally once reduced.
func (e *engine2D) frontierOutDegree(s *sideState) uint64 {
	deg := e.ownedOutDegrees()
	var sum uint64
	s.F.Iterate(func(gv uint32) {
		sum += uint64(deg[e.st.LocalOf(graph.Vertex(gv))])
	})
	return sum
}

// step runs one complete BFS level for side s: expand, neighbor scan,
// fold, mark. It returns the rank-local statistics and whether this
// rank labeled the target this level. The global frontier emptiness
// check belongs to the caller (it differs between uni- and
// bi-directional drivers).
func (e *engine2D) step(s *sideState, tagBase int) (rankLevel, bool) {
	if e.opts.Async {
		return e.stepAsync(s, tagBase)
	}
	return e.stepSync(s, tagBase)
}

// stepSync is the phase-synchronous level schedule: wait out the whole
// expand, scan, wait out the whole fold, mark.
func (e *engine2D) stepSync(s *sideState, tagBase int) (rankLevel, bool) {
	tm := newLevelTimer(e.c)
	h0 := e.hist
	rec := rankLevel{frontier: s.F.Len()}
	fbar, est := e.expand(s, tagBase)
	rec.expandWords = est.RecvWords
	// Received frontier vertices are processed through the hash-indexed
	// partial lists; charge their handling.
	e.c.ChargeItemsPar(len(fbar), e.model.VertexCost)

	bins, edges := e.neighbors(s, fbar)
	rec.edges = edges
	nbar, fst := e.fold(bins, tagBase+1<<24)
	rec.foldWords = fst.RecvWords
	rec.dups = fst.Dups

	foundTarget := false
	e.c.ChargeItems(len(nbar), e.model.VertexCost)
	next := e.opts.newFrontier(e.st.Lo, e.st.OwnedCount())
	for _, gu := range nbar {
		li := e.st.LocalOf(graph.Vertex(gu))
		if s.L[li] == graph.Unreached {
			s.L[li] = s.level + 1
			next.Add(gu)
			rec.marked++
			if e.opts.HasTarget && graph.Vertex(gu) == e.opts.Target {
				foundTarget = true
			}
		}
	}
	s.F = next
	s.level++
	rec.containers = e.hist.Sub(h0)
	tm.record(&rec)
	return rec, foundTarget
}

// Run2D executes Algorithm 2 (or, with the mesh degenerate to R=1 or
// C=1, the 1D partitionings of Table 1) across the world. stores must
// come from partition.Build2D with P = w.P ranks.
func Run2D(w *comm.World, stores []*partition.Store2D, opts Options) (*Result, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("bfs: no stores")
	}
	l := stores[0].Layout
	if l.P() != w.P || len(stores) != w.P {
		return nil, fmt.Errorf("bfs: %d stores on layout P=%d for world P=%d", len(stores), l.P(), w.P)
	}
	if int(opts.Source) >= l.N {
		return nil, fmt.Errorf("bfs: source %d out of range for n=%d", opts.Source, l.N)
	}
	if opts.HasTarget && int(opts.Target) >= l.N {
		return nil, fmt.Errorf("bfs: target %d out of range for n=%d", opts.Target, l.N)
	}

	if err := validateRobustness(opts, true); err != nil {
		return nil, err
	}

	res := &Result{N: l.N, R: l.R, C: l.C}
	if opts.HasTarget && opts.Source == opts.Target {
		return trivialResult(l.N, l.R, l.C, opts.Source), nil
	}

	perRank := make([][]rankLevel, w.P)
	localLevels := make([][]int32, w.P)
	probes := make([]uint64, w.P)
	var foundAt int32 = -1
	w.SetTrace(opts.Trace)
	defer w.SetTrace(nil)
	w.SetFault(opts.Fault)
	defer w.SetFault(nil)
	start := time.Now()
	cancels := make([]*search.Canceled, w.P)
	comms, err := w.Run(func(c *comm.Comm) {
		st := stores[c.Rank()]
		e := newEngine2D(c, st, opts)
		recs, s, found, cxl := driveUni(c, e, opts)
		perRank[c.Rank()] = recs
		localLevels[c.Rank()] = s.L
		probes[c.Rank()] = e.probeDelta()
		cancels[c.Rank()] = cxl
		if found && c.Rank() == 0 {
			foundAt = s.level // target labeled at the last completed level
		}
	})
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	mergeStats(res, perRank, comms)
	for _, p := range probes {
		res.HashProbes += p
	}
	res.Levels = assembleLevels(l, stores, localLevels)
	if opts.HasTarget && foundAt >= 0 {
		res.Found = true
		res.Distance = foundAt
	}
	publishMetrics(opts.Metrics, res)
	if cxl := search.MergeCanceled(cancels); cxl != nil {
		return res, cxl
	}
	return res, nil
}

// assembleLevels stitches per-rank level arrays into a global one.
func assembleLevels(l *partition.Layout2D, stores []*partition.Store2D, local [][]int32) []int32 {
	out := make([]int32, l.N)
	for r, st := range stores {
		lo := int(st.Lo)
		copy(out[lo:lo+st.OwnedCount()], local[r])
	}
	return out
}
