package bfs

import (
	"fmt"
	"time"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/localindex"
	"repro/internal/partition"
	"repro/internal/torus"
)

// engine2D holds one rank's state for Algorithm 2. The same level
// machinery serves the uni-directional search and both sides of the
// bi-directional search.
type engine2D struct {
	c     *comm.Comm
	st    *partition.Store2D
	opts  Options
	model torus.CostModel
	colG  comm.Group // expand group: my processor-column, R members
	rowG  comm.Group // fold group: my processor-row, C members
}

func newEngine2D(c *comm.Comm, st *partition.Store2D, opts Options) *engine2D {
	l := st.Layout
	mesh := comm.Mesh{R: l.R, C: l.C}
	return &engine2D{
		c:     c,
		st:    st,
		opts:  opts,
		model: c.Model(),
		colG:  mesh.ColGroup(c.Rank()),
		rowG:  mesh.RowGroup(c.Rank()),
	}
}

// sideState is the per-side search state (the bi-directional search
// runs two of these).
type sideState struct {
	L     []int32 // levels of owned vertices, Unreached if unlabeled
	F     []uint32
	sent  *localindex.Bitset
	level int32
}

func (e *engine2D) newSide(src graph.Vertex) *sideState {
	s := &sideState{L: make([]int32, e.st.OwnedCount())}
	for i := range s.L {
		s.L[i] = graph.Unreached
	}
	if src >= e.st.Lo && src < e.st.Hi {
		s.L[e.st.LocalOf(src)] = 0
		s.F = []uint32{uint32(src)}
	}
	if e.opts.SentCache {
		s.sent = localindex.NewBitset(e.st.RowCount)
	}
	return s
}

// expand performs the processor-column expand of Algorithm 2 steps
// 7–11, returning the frontier portion F̄ this rank must scan.
func (e *engine2D) expand(s *sideState, tag int) ([]uint32, collective.Stats) {
	o := collective.Opts{Tag: tag, Chunk: e.opts.ChunkWords}
	switch e.opts.Expand {
	case ExpandTargeted:
		r := e.colG.Size()
		send := make([][]uint32, r)
		// Filter my frontier per destination row by the row-need masks
		// (only rows holding a non-empty partial list receive v).
		for _, gv := range s.F {
			li := e.st.LocalOf(graph.Vertex(gv))
			for i := 0; i < r; i++ {
				if e.st.NeedsRow(li, i) {
					send[i] = append(send[i], gv)
				}
			}
		}
		// Bitmask scan cost: |F| x ceil(R/64) words.
		e.c.ChargeItems(len(s.F)*((r+63)/64), e.model.EdgeCost)
		parts, st := collective.AllToAll(e.c, e.colG, o, send)
		return flatten(parts), st
	case ExpandAllGather:
		parts, st := collective.AllGather(e.c, e.colG, o, s.F)
		return flatten(parts), st
	case ExpandTwoPhase:
		parts, st := collective.TwoPhaseExpand(e.c, e.colG, o, s.F)
		return flatten(parts), st
	default:
		panic(fmt.Sprintf("bfs: unknown expand algorithm %v", e.opts.Expand))
	}
}

func flatten(parts [][]uint32) []uint32 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]uint32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// neighbors scans the partial edge lists of F̄ (Algorithm 2 step 12)
// and bins the discovered neighbors by owner mesh column for the fold.
func (e *engine2D) neighbors(s *sideState, fbar []uint32) [][]uint32 {
	l := e.st.Layout
	bins := make([][]uint32, l.C)
	colProbes0 := e.st.ColMap.Probes()
	rowProbes0 := e.st.RowMap.Probes()
	scanned := 0
	for _, gv := range fbar {
		list := e.st.PartialList(graph.Vertex(gv))
		scanned += len(list)
		for _, u := range list {
			if s.sent != nil {
				idx, ok := e.st.RowMap.Get(u)
				if !ok {
					panic("bfs: row vertex missing from RowMap")
				}
				if s.sent.TestAndSet(idx) {
					continue // already sent to its owner once (§2.4.3)
				}
			}
			bins[l.ColBlockOf(u)] = append(bins[l.ColBlockOf(u)], uint32(u))
		}
	}
	e.c.ChargeItems(scanned, e.model.EdgeCost)
	probes := (e.st.ColMap.Probes() - colProbes0) + (e.st.RowMap.Probes() - rowProbes0)
	e.c.ChargeItems(int(probes), e.model.HashCost)
	// Local merge of partial edge lists into per-destination sets
	// ("merged to form N").
	for j := range bins {
		var d int
		bins[j], d = localindex.SortSet(bins[j])
		e.c.ChargeItems(len(bins[j])+d, e.model.VertexCost)
	}
	return bins
}

// fold delivers the neighbor sets to their owners (Algorithm 2 steps
// 13–18) using the configured collective, returning the sorted set N̄
// of owned vertices to mark.
func (e *engine2D) fold(bins [][]uint32, tag int) ([]uint32, collective.Stats) {
	o := collective.Opts{Tag: tag, Chunk: e.opts.ChunkWords}
	switch e.opts.Fold {
	case FoldDirect:
		return collective.ReduceScatterUnion(e.c, e.rowG, o, bins)
	case FoldTwoPhase:
		return collective.TwoPhaseFold(e.c, e.rowG, o, bins)
	case FoldTwoPhaseNoUnion:
		o.NoUnion = true
		return collective.TwoPhaseFold(e.c, e.rowG, o, bins)
	case FoldBruck:
		return collective.ReduceScatterUnionBruck(e.c, e.rowG, o, bins)
	default:
		panic(fmt.Sprintf("bfs: unknown fold algorithm %v", e.opts.Fold))
	}
}

// step runs one complete BFS level for side s: expand, neighbor scan,
// fold, mark. It returns the rank-local statistics and whether this
// rank labeled the target this level. The global frontier emptiness
// check belongs to the caller (it differs between uni- and
// bi-directional drivers).
func (e *engine2D) step(s *sideState, tagBase int) (rankLevel, bool) {
	rec := rankLevel{frontier: len(s.F)}
	fbar, est := e.expand(s, tagBase)
	rec.expandWords = est.RecvWords
	// Received frontier vertices are processed through the hash-indexed
	// partial lists; charge their handling.
	e.c.ChargeItems(len(fbar), e.model.VertexCost)

	bins := e.neighbors(s, fbar)
	nbar, fst := e.fold(bins, tagBase+1<<24)
	rec.foldWords = fst.RecvWords
	rec.dups = fst.Dups

	foundTarget := false
	e.c.ChargeItems(len(nbar), e.model.VertexCost)
	next := make([]uint32, 0, len(nbar))
	for _, gu := range nbar {
		li := e.st.LocalOf(graph.Vertex(gu))
		if s.L[li] == graph.Unreached {
			s.L[li] = s.level + 1
			next = append(next, gu)
			rec.marked++
			if e.opts.HasTarget && graph.Vertex(gu) == e.opts.Target {
				foundTarget = true
			}
		}
	}
	s.F = next
	s.level++
	return rec, foundTarget
}

// Run2D executes Algorithm 2 (or, with the mesh degenerate to R=1 or
// C=1, the 1D partitionings of Table 1) across the world. stores must
// come from partition.Build2D with P = w.P ranks.
func Run2D(w *comm.World, stores []*partition.Store2D, opts Options) (*Result, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("bfs: no stores")
	}
	l := stores[0].Layout
	if l.P() != w.P || len(stores) != w.P {
		return nil, fmt.Errorf("bfs: %d stores on layout P=%d for world P=%d", len(stores), l.P(), w.P)
	}
	if int(opts.Source) >= l.N {
		return nil, fmt.Errorf("bfs: source %d out of range for n=%d", opts.Source, l.N)
	}
	if opts.HasTarget && int(opts.Target) >= l.N {
		return nil, fmt.Errorf("bfs: target %d out of range for n=%d", opts.Target, l.N)
	}

	res := &Result{N: l.N, R: l.R, C: l.C}
	if opts.HasTarget && opts.Source == opts.Target {
		return trivialResult(l.N, l.R, l.C, opts.Source), nil
	}

	perRank := make([][]rankLevel, w.P)
	localLevels := make([][]int32, w.P)
	probes := make([]uint64, w.P)
	var foundAt int32 = -1
	start := time.Now()
	comms, err := w.Run(func(c *comm.Comm) {
		st := stores[c.Rank()]
		e := newEngine2D(c, st, opts)
		probes0 := st.ColMap.Probes() + st.RowMap.Probes()
		recs, s, found := driveUni(c, e, opts)
		perRank[c.Rank()] = recs
		localLevels[c.Rank()] = s.L
		probes[c.Rank()] = st.ColMap.Probes() + st.RowMap.Probes() - probes0
		if found && c.Rank() == 0 {
			foundAt = s.level // target labeled at the last completed level
		}
	})
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	mergeStats(res, perRank, comms)
	for _, p := range probes {
		res.HashProbes += p
	}
	res.Levels = assembleLevels(l, stores, localLevels)
	if opts.HasTarget && foundAt >= 0 {
		res.Found = true
		res.Distance = foundAt
	}
	return res, nil
}

// assembleLevels stitches per-rank level arrays into a global one.
func assembleLevels(l *partition.Layout2D, stores []*partition.Store2D, local [][]int32) []int32 {
	out := make([]int32, l.N)
	for r, st := range stores {
		lo := int(st.Lo)
		copy(out[lo:lo+st.OwnedCount()], local[r])
	}
	return out
}
