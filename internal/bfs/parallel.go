package bfs

import (
	"repro/internal/graph"
	"repro/internal/pool"
)

// Intra-rank parallelism grains: pool chunk widths, in loop items, for
// the hot local loops. Boundaries are pure functions of the loop length
// (see internal/pool), so every worker count produces the same ordered
// merge. Frontier scans chunk by frontier vertex (each carrying a full
// or partial edge list); bottom-up scans chunk by owned/column vertex.
const (
	scanGrain  = 512
	ownedGrain = 2048
)

// scanFrontier merges the frontier's edge lists into per-owner bins
// (Algorithm 1 steps 7–9) on the worker pool, charging the edge scan
// and hash probes; the bins are unsorted (the fold paths sort and
// charge them). Per-chunk bins concatenate in chunk order, so bin
// contents are identical to the serial scan; with the sent cache the
// CAS claim order is scheduler-dependent, but each neighbor still lands
// in its owner's bin at most once, so the sorted sets the fold moves —
// and every count — are unchanged.
func (e *engine1D) scanFrontier(s *sideState) ([][]uint32, int) {
	l := e.st.Layout
	bins := make([][]uint32, e.c.Size())
	scanned := 0
	var probes uint64
	vs := s.F.Vertices()
	if nc := pool.Chunks(len(vs), scanGrain); e.pl.Workers() > 1 && nc > 1 {
		type chunkOut struct {
			bins    [][]uint32
			scanned int
			probes  uint64
		}
		outs := make([]chunkOut, nc)
		e.pl.Run(len(vs), scanGrain, func(ch, lo, hi int) {
			o := &outs[ch]
			o.bins = make([][]uint32, len(bins))
			for _, gv := range vs[lo:hi] {
				li := e.st.LocalOf(graph.Vertex(gv))
				adj := e.st.Neighbors(li)
				o.scanned += len(adj)
				for _, u := range adj {
					if s.sent != nil {
						idx, ok, pr := e.st.TargetMap.GetCounted(u)
						o.probes += uint64(pr)
						if !ok {
							panic("bfs: neighbor missing from TargetMap")
						}
						if s.sent.TestAndSetAtomic(idx) {
							continue // already sent to its owner once (§2.4.3)
						}
					}
					o.bins[l.OwnerRank(u)] = append(o.bins[l.OwnerRank(u)], uint32(u))
				}
			}
		})
		for i := range outs {
			scanned += outs[i].scanned
			probes += outs[i].probes
			for q, b := range outs[i].bins {
				bins[q] = append(bins[q], b...)
			}
		}
		e.st.TargetMap.AddProbes(probes)
	} else {
		probes0 := e.st.TargetMap.Probes()
		for _, gv := range vs {
			li := e.st.LocalOf(graph.Vertex(gv))
			adj := e.st.Neighbors(li)
			scanned += len(adj)
			for _, u := range adj {
				if s.sent != nil {
					idx, ok := e.st.TargetMap.Get(u)
					if !ok {
						panic("bfs: neighbor missing from TargetMap")
					}
					if s.sent.TestAndSet(idx) {
						continue // already sent to its owner once (§2.4.3)
					}
				}
				bins[l.OwnerRank(u)] = append(bins[l.OwnerRank(u)], uint32(u))
			}
		}
		probes = e.st.TargetMap.Probes() - probes0
	}
	e.c.ChargeItemsPar(scanned, e.model.EdgeCost)
	e.c.ChargeItemsPar(int(probes), e.model.HashCost)
	return bins, scanned
}

// scanLanes scans the partial edge lists of one decoded (vertex, mask)
// batch on the worker pool, appending discovered (neighbor, mask) pairs
// to the per-column bins in chunk order, and charges the pair handling,
// edge scan, and hash probes. Both the synchronous and overlapped 2D
// sweeps call it once per arrived part.
func (e *multiEngine2D) scanLanes(avs []uint32, ams []uint64, binV [][]uint32, binM [][]uint64) int {
	l := e.st.Layout
	scanned := 0
	var probes uint64
	if nc := pool.Chunks(len(avs), scanGrain); e.pl.Workers() > 1 && nc > 1 {
		type chunkOut struct {
			binV    [][]uint32
			binM    [][]uint64
			scanned int
			probes  uint64
		}
		outs := make([]chunkOut, nc)
		e.pl.Run(len(avs), scanGrain, func(ch, lo, hi int) {
			o := &outs[ch]
			o.binV = make([][]uint32, l.C)
			o.binM = make([][]uint64, l.C)
			for idx := lo; idx < hi; idx++ {
				ci, ok, pr := e.st.ColMap.GetCounted(avs[idx])
				o.probes += uint64(pr)
				if !ok {
					continue // no partial list here (possible only locally)
				}
				mask := ams[idx]
				for i := e.st.Off[ci]; i < e.st.Off[ci+1]; i++ {
					o.scanned++
					u := e.st.Rows[i]
					j := l.ColBlockOf(u)
					o.binV[j] = append(o.binV[j], uint32(u))
					o.binM[j] = append(o.binM[j], mask)
				}
			}
		})
		for i := range outs {
			scanned += outs[i].scanned
			probes += outs[i].probes
			for j := range outs[i].binV {
				binV[j] = append(binV[j], outs[i].binV[j]...)
				binM[j] = append(binM[j], outs[i].binM[j]...)
			}
		}
		e.st.ColMap.AddProbes(probes)
	} else {
		p0 := e.st.ColMap.Probes()
		for idx, gv := range avs {
			ci, ok := e.st.ColMap.Get(gv)
			if !ok {
				continue // no partial list here (possible only locally)
			}
			mask := ams[idx]
			for i := e.st.Off[ci]; i < e.st.Off[ci+1]; i++ {
				scanned++
				u := e.st.Rows[i]
				j := l.ColBlockOf(u)
				binV[j] = append(binV[j], uint32(u))
				binM[j] = append(binM[j], mask)
			}
		}
		probes = e.st.ColMap.Probes() - p0
	}
	e.c.ChargeItemsPar(len(avs), e.model.VertexCost)
	e.c.ChargeItemsPar(scanned, e.model.EdgeCost)
	e.c.ChargeItemsPar(int(probes), e.model.HashCost)
	return scanned
}

// scanLanes merges the frontier's full edge lists into per-owner
// (neighbor, mask) bins on the worker pool — the 1D sweep's local scan,
// identical between the synchronous and overlapped schedules — and
// charges the edge scan.
func (e *multiEngine1D) scanLanes(s *multiState) (binV [][]uint32, binM [][]uint64, scanned int) {
	l := e.st.Layout
	p := e.world.Size()
	binV = make([][]uint32, p)
	binM = make([][]uint64, p)
	vs := s.F.Vertices()
	if nc := pool.Chunks(len(vs), scanGrain); e.pl.Workers() > 1 && nc > 1 {
		type chunkOut struct {
			binV    [][]uint32
			binM    [][]uint64
			scanned int
		}
		outs := make([]chunkOut, nc)
		e.pl.Run(len(vs), scanGrain, func(ch, lo, hi int) {
			o := &outs[ch]
			o.binV = make([][]uint32, p)
			o.binM = make([][]uint64, p)
			for _, gv := range vs[lo:hi] {
				li := e.st.LocalOf(graph.Vertex(gv))
				m := s.fmask[li]
				adj := e.st.Neighbors(li)
				o.scanned += len(adj)
				for _, u := range adj {
					q := l.OwnerRank(u)
					o.binV[q] = append(o.binV[q], uint32(u))
					o.binM[q] = append(o.binM[q], m)
				}
			}
		})
		for i := range outs {
			scanned += outs[i].scanned
			for q := range outs[i].binV {
				binV[q] = append(binV[q], outs[i].binV[q]...)
				binM[q] = append(binM[q], outs[i].binM[q]...)
			}
		}
	} else {
		for _, gv := range vs {
			li := e.st.LocalOf(graph.Vertex(gv))
			m := s.fmask[li]
			adj := e.st.Neighbors(li)
			scanned += len(adj)
			for _, u := range adj {
				q := l.OwnerRank(u)
				binV[q] = append(binV[q], uint32(u))
				binM[q] = append(binM[q], m)
			}
		}
	}
	e.c.ChargeItemsPar(scanned, e.model.EdgeCost)
	return binV, binM, scanned
}
