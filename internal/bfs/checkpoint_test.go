package bfs

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/trace"
)

// scrubWall zeroes the only Result field that legitimately differs
// between an uninterrupted run and a kill/restore pair (real elapsed
// time of the simulation itself).
func scrubWall(r *Result) *Result {
	cp := *r
	cp.Wall = 0
	return &cp
}

// resultsIdentical asserts two Results are deep-equal after the Wall
// scrub — the checkpoint acceptance criterion.
func resultsIdentical(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(scrubWall(got), scrubWall(want)) {
		t.Fatalf("%s: restored Result differs from uninterrupted run\ngot:  %+v\nwant: %+v", label, got, want)
	}
}

func TestCheckpointRestore2D(t *testing.T) {
	g := testGraph(t, 600, 5, 11)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.Wire = frontier.WireHybrid

	full, err := Run2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	deepest := int(full.MaxLevel())
	if deepest < 2 {
		t.Fatalf("graph too shallow for an interior checkpoint (max level %d)", deepest)
	}

	for _, at := range []int{1, deepest / 2, deepest} {
		opts := opts
		opts.Checkpoint = checkpoint.NewPlan(at)
		partial, err := Run2D(fx.world, fx.st2, opts)
		if err != nil {
			t.Fatalf("at=%d checkpoint run: %v", at, err)
		}
		snap := opts.Checkpoint.Snapshot()
		if snap == nil {
			t.Fatalf("at=%d: no snapshot deposited", at)
		}
		if len(partial.PerLevel) != at {
			t.Fatalf("at=%d: partial run recorded %d levels", at, len(partial.PerLevel))
		}

		// Restore onto a fresh world (fresh ranks, fresh clocks).
		w2, err := comm.NewWorld(comm.Config{P: 4})
		if err != nil {
			t.Fatal(err)
		}
		ropts := opts
		ropts.Checkpoint = nil
		ropts.Restore = snap
		restored, err := Run2D(w2, fx.st2, ropts)
		if err != nil {
			t.Fatalf("at=%d restore run: %v", at, err)
		}
		resultsIdentical(t, restored, full, fmt.Sprintf("at=%d", at))
	}
}

func TestCheckpointRestore1D(t *testing.T) {
	g := testGraph(t, 500, 4, 12)
	p := 4
	l1, err := partition.NewLayout1D(g.N, p)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := partition.Build1D(l1, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	w, err := comm.NewWorld(comm.Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestComponentVertex(g)
	opts := DefaultOptions(src)
	opts.SentCache = true

	full, err := Run1D(w, st1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.MaxLevel() < 2 {
		t.Fatalf("graph too shallow (max level %d)", full.MaxLevel())
	}

	opts.Checkpoint = checkpoint.NewPlan(2)
	if _, err := Run1D(w, st1, opts); err != nil {
		t.Fatal(err)
	}
	snap := opts.Checkpoint.Snapshot()

	w2, _ := comm.NewWorld(comm.Config{P: p})
	ropts := opts
	ropts.Checkpoint = nil
	ropts.Restore = snap
	restored, err := Run1D(w2, st1, ropts)
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, restored, full, "1D at=2")
}

// TestCheckpointRestoreDirop exercises the degree-ledger and cached
// degree-exchange paths: the direction-optimizing driver must restore
// the unlabeled-degree accumulator and the 2D engine's AllToAll result.
func TestCheckpointRestoreDirop(t *testing.T) {
	g := testGraph(t, 600, 8, 13)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.Direction = DirectionOptimizing
	opts.Wire = frontier.WireAuto

	full, err := Run2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.MaxLevel() < 2 {
		t.Fatalf("graph too shallow (max level %d)", full.MaxLevel())
	}

	opts.Checkpoint = checkpoint.NewPlan(2)
	if _, err := Run2D(fx.world, fx.st2, opts); err != nil {
		t.Fatal(err)
	}
	snap := opts.Checkpoint.Snapshot()

	w2, _ := comm.NewWorld(comm.Config{P: 4})
	ropts := opts
	ropts.Checkpoint = nil
	ropts.Restore = snap
	restored, err := Run2D(w2, fx.st2, ropts)
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, restored, full, "dirop at=2")
}

// TestCheckpointUnderFaults kills and restores a run with an active
// fault plan: the snapshot carries the transport's sequence counters
// and fault ledger, so the resumed run's retries pick up mid-schedule
// and the final Result still matches the uninterrupted faulted run.
func TestCheckpointUnderFaults(t *testing.T) {
	g := testGraph(t, 500, 5, 14)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.Fault = &fault.Plan{Seed: 9, PCorrupt: 0.05, PDrop: 0.05, PDuplicate: 0.05}

	full, err := Run2D(fx.world, fx.st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Faults.Injected() == 0 {
		t.Fatal("plan injected nothing; test is vacuous")
	}
	if full.MaxLevel() < 2 {
		t.Fatalf("graph too shallow (max level %d)", full.MaxLevel())
	}

	opts.Checkpoint = checkpoint.NewPlan(2)
	if _, err := Run2D(fx.world, fx.st2, opts); err != nil {
		t.Fatal(err)
	}
	snap := opts.Checkpoint.Snapshot()

	w2, _ := comm.NewWorld(comm.Config{P: 4})
	ropts := opts
	ropts.Checkpoint = nil
	ropts.Restore = snap
	restored, err := Run2D(w2, fx.st2, ropts)
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, restored, full, "faulted at=2")
}

func TestCheckpointRejectsUnsupportedCombos(t *testing.T) {
	g := testGraph(t, 200, 4, 15)
	fx := build2D(t, g, 2, 2)
	cp := checkpoint.NewPlan(1)

	opts := DefaultOptions(fx.src)
	opts.Checkpoint = cp
	opts.Trace = trace.NewRecorder()
	if _, err := Run2D(fx.world, fx.st2, opts); err == nil {
		t.Error("checkpoint+trace accepted")
	}

	opts = DefaultOptions(fx.src)
	opts.HasTarget, opts.Target = true, fx.src+1
	opts.Checkpoint = cp
	if _, err := RunBidirectional2D(fx.world, fx.st2, opts); err == nil {
		t.Error("bidirectional checkpoint accepted")
	}

	opts = DefaultOptions(fx.src)
	opts.Checkpoint = cp
	if _, err := MultiRun2D(fx.world, fx.st2, []graph.Vertex{fx.src}, opts); err == nil {
		t.Error("multi-source checkpoint accepted")
	}
}

func TestRestoreRejectsMismatchedWorkload(t *testing.T) {
	g := testGraph(t, 300, 4, 16)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.Checkpoint = checkpoint.NewPlan(1)
	if _, err := Run2D(fx.world, fx.st2, opts); err != nil {
		t.Fatal(err)
	}
	snap := opts.Checkpoint.Snapshot()

	// Different source => different fingerprint.
	w2, _ := comm.NewWorld(comm.Config{P: 4})
	ropts := DefaultOptions(fx.src + 1)
	ropts.Restore = snap
	if _, err := Run2D(w2, fx.st2, ropts); err == nil {
		t.Error("mismatched source accepted")
	}

	// Different world size => Check fails before any blob decode.
	w3, _ := comm.NewWorld(comm.Config{P: 2})
	fx2 := build2D(t, g, 1, 2)
	ropts2 := DefaultOptions(fx.src)
	ropts2.Restore = snap
	if _, err := Run2D(w3, fx2.st2, ropts2); err == nil {
		t.Error("mismatched world size accepted")
	}
}

// TestRestoreRejectsCorruptBlob tampers with a snapshot blob; the
// decode must surface as a run error, not a crash.
func TestRestoreRejectsCorruptBlob(t *testing.T) {
	g := testGraph(t, 300, 4, 17)
	fx := build2D(t, g, 2, 2)
	opts := DefaultOptions(fx.src)
	opts.Checkpoint = checkpoint.NewPlan(1)
	if _, err := Run2D(fx.world, fx.st2, opts); err != nil {
		t.Fatal(err)
	}
	snap := opts.Checkpoint.Snapshot()
	snap.Blobs[1] = snap.Blobs[1][:len(snap.Blobs[1])/2] // truncate one rank

	w2, _ := comm.NewWorld(comm.Config{P: 4})
	ropts := DefaultOptions(fx.src)
	ropts.Restore = snap
	if _, err := Run2D(w2, fx.st2, ropts); err == nil {
		t.Error("truncated blob accepted")
	}
}
