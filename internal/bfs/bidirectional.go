package bfs

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/search"
)

// RunBidirectional2D executes the bi-directional search of §2.3 on the
// 2D partitioning: two level-synchronized searches, one from the source
// and one from the target, each level expanding whichever side has the
// smaller global frontier. The search stops as soon as the best meeting
// path is provably optimal, which keeps both frontiers small and — as
// the paper reports — cuts message volume by orders of magnitude
// relative to the uni-directional search.
//
// The returned Result carries the source side's levels; Distance is the
// exact s→t graph distance when Found.
func RunBidirectional2D(w *comm.World, stores []*partition.Store2D, opts Options) (*Result, error) {
	if !opts.HasTarget {
		return nil, fmt.Errorf("bfs: bi-directional search requires a target")
	}
	if len(stores) == 0 {
		return nil, fmt.Errorf("bfs: no stores")
	}
	l := stores[0].Layout
	if l.P() != w.P || len(stores) != w.P {
		return nil, fmt.Errorf("bfs: %d stores on layout P=%d for world P=%d", len(stores), l.P(), w.P)
	}
	if int(opts.Source) >= l.N || int(opts.Target) >= l.N {
		return nil, fmt.Errorf("bfs: endpoints (%d,%d) out of range for n=%d", opts.Source, opts.Target, l.N)
	}

	if err := validateRobustness(opts, false); err != nil {
		return nil, err
	}

	res := &Result{N: l.N, R: l.R, C: l.C}
	if opts.Source == opts.Target {
		return trivialResult(l.N, l.R, l.C, opts.Source), nil
	}

	perRank := make([][]rankLevel, w.P)
	localLevels := make([][]int32, w.P)
	probes := make([]uint64, w.P)
	var globalBest int64 = -1
	w.SetTrace(opts.Trace)
	defer w.SetTrace(nil)
	w.SetFault(opts.Fault)
	defer w.SetFault(nil)
	start := time.Now()
	cancels := make([]*search.Canceled, w.P)
	comms, err := w.Run(func(c *comm.Comm) {
		st := stores[c.Rank()]
		e := newEngine2D(c, st, opts)
		recs, ss, best, cxl := driveBidir(c, e, st, opts)
		perRank[c.Rank()] = recs
		localLevels[c.Rank()] = ss.L
		probes[c.Rank()] = e.probeDelta()
		cancels[c.Rank()] = cxl
		if c.Rank() == 0 && best != bidirInf {
			globalBest = int64(best)
		}
	})
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	mergeStats(res, perRank, comms)
	for _, p := range probes {
		res.HashProbes += p
	}
	res.Levels = assembleLevels(l, stores, localLevels)
	if globalBest >= 0 {
		res.Found = true
		res.Distance = int32(globalBest)
	}
	publishMetrics(opts.Metrics, res)
	if cxl := search.MergeCanceled(cancels); cxl != nil {
		return res, cxl
	}
	return res, nil
}
