package bfs

import (
	"fmt"
	"time"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/localindex"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/search"
	"repro/internal/torus"
)

// engine1D holds one rank's state for Algorithm 1: distributed
// breadth-first expansion with the conventional 1D vertex partitioning.
// Every rank owns a vertex block with full edge lists; each level
// merges the frontier's edge lists into the neighbor set N and delivers
// N to the owners with a single collective over all P ranks (the fold;
// 1D has no expand).
//
// This is an independent implementation kept alongside the R=1
// degenerate case of the 2D engine; the two are differentially tested
// against each other and against the serial oracle.
type engine1D struct {
	c     *comm.Comm
	st    *partition.Store1D
	opts  Options
	model torus.CostModel
	world comm.Group
	// pl is the per-rank worker pool the hot local loops run on; see
	// parallel.go for the determinism contract.
	pl *pool.Pool

	// hist tallies the wire codec's container choices; per-level deltas
	// land in rankLevel.containers.
	hist frontier.ContainerHist
	// degTotal caches the owned degree sum for the direction heuristic
	// (1D stores hold full edge lists, so degrees are local).
	degTotal    uint64
	degComputed bool
	// probes0 is the store's hash-probe counter at run (or restore)
	// start; probeDelta reports this run's probes against it.
	probes0 uint64
}

func newEngine1D(c *comm.Comm, st *partition.Store1D, opts Options) *engine1D {
	g := comm.Group{Ranks: make([]int, c.Size()), Me: c.Rank()}
	for i := range g.Ranks {
		g.Ranks[i] = i
	}
	c.SetCores(opts.Cores)
	return &engine1D{c: c, st: st, opts: opts, model: c.Model(), world: g,
		pl: pool.New(opts.Workers), probes0: st.TargetMap.Probes()}
}

// probeDelta returns the hash probes performed since the engine was
// built, plus any restored pre-checkpoint probes.
func (e *engine1D) probeDelta() uint64 { return e.st.TargetMap.Probes() - e.probes0 }

func (e *engine1D) newSide(src graph.Vertex) *sideState {
	s := &sideState{
		L: make([]int32, e.st.OwnedCount()),
		F: e.opts.newFrontier(e.st.Lo, e.st.OwnedCount()),
	}
	for i := range s.L {
		s.L[i] = graph.Unreached
	}
	if src >= e.st.Lo && src < e.st.Hi {
		s.L[e.st.LocalOf(src)] = 0
		s.F.Add(uint32(src))
	}
	if e.opts.SentCache {
		s.sent = localindex.NewBitset(e.st.TargetCount)
	}
	return s
}

// universe returns the global vertex count.
func (e *engine1D) universe() int { return e.st.Layout.N }

// totalOutDegree returns this rank's owned vertices' degree sum.
func (e *engine1D) totalOutDegree() uint64 {
	if !e.degComputed {
		for li := 0; li < e.st.OwnedCount(); li++ {
			e.degTotal += uint64(len(e.st.Neighbors(uint32(li))))
		}
		e.degComputed = true
	}
	return e.degTotal
}

// frontierOutDegree returns the degree sum over s's frontier — the
// edges a top-down expansion of it would scan, globally once reduced.
func (e *engine1D) frontierOutDegree(s *sideState) uint64 {
	var sum uint64
	s.F.Iterate(func(gv uint32) {
		sum += uint64(len(e.st.Neighbors(e.st.LocalOf(graph.Vertex(gv)))))
	})
	return sum
}

// step runs one complete Algorithm 1 level: merge frontier edge lists
// into per-owner bins (steps 7–9), fold (steps 8–13), mark (14–16).
func (e *engine1D) step(s *sideState, tagBase int) (rankLevel, bool) {
	if e.opts.Async {
		return e.stepAsync(s, tagBase)
	}
	return e.stepSync(s, tagBase)
}

// stepSync is the phase-synchronous Algorithm 1 level.
func (e *engine1D) stepSync(s *sideState, tagBase int) (rankLevel, bool) {
	tm := newLevelTimer(e.c)
	h0 := e.hist
	rec := rankLevel{frontier: s.F.Len()}
	bins, scanned := e.scanFrontier(s)
	rec.edges = scanned
	for q := range bins {
		var d int
		bins[q], d = localindex.SortSet(bins[q])
		e.c.ChargeItems(len(bins[q])+d, e.model.VertexCost)
	}

	o := collective.Opts{Tag: tagBase, Chunk: e.opts.ChunkWords}
	o.Codec = foldCodec(e.c.Tracer(), e.pl, e.opts.Wire, e.world, e.st.Layout.OwnedRange, &e.hist)
	var nbar []uint32
	var fst collective.Stats
	switch e.opts.Fold {
	case FoldDirect:
		nbar, fst = collective.ReduceScatterUnion(e.c, e.world, o, bins)
	case FoldTwoPhase:
		nbar, fst = collective.TwoPhaseFold(e.c, e.world, o, bins)
	case FoldTwoPhaseNoUnion:
		o.NoUnion = true
		nbar, fst = collective.TwoPhaseFold(e.c, e.world, o, bins)
	case FoldBruck:
		nbar, fst = collective.ReduceScatterUnionBruck(e.c, e.world, o, bins)
	default:
		panic(fmt.Sprintf("bfs: unknown fold algorithm %v", e.opts.Fold))
	}
	rec.foldWords = fst.RecvWords
	rec.dups = fst.Dups

	e.c.ChargeItems(len(nbar), e.model.VertexCost)
	foundTarget := false
	next := e.opts.newFrontier(e.st.Lo, e.st.OwnedCount())
	for _, gu := range nbar {
		li := e.st.LocalOf(graph.Vertex(gu))
		if s.L[li] == graph.Unreached {
			s.L[li] = s.level + 1
			next.Add(gu)
			rec.marked++
			if e.opts.HasTarget && graph.Vertex(gu) == e.opts.Target {
				foundTarget = true
			}
		}
	}
	s.F = next
	s.level++
	rec.containers = e.hist.Sub(h0)
	tm.record(&rec)
	return rec, foundTarget
}

// validate1D checks a 1D run's inputs.
func validate1D(w *comm.World, stores []*partition.Store1D, opts Options) (*partition.Layout1D, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("bfs: no stores")
	}
	l := stores[0].Layout
	if l.P != w.P || len(stores) != w.P {
		return nil, fmt.Errorf("bfs: %d stores on layout P=%d for world P=%d", len(stores), l.P, w.P)
	}
	if int(opts.Source) >= l.N {
		return nil, fmt.Errorf("bfs: source %d out of range for n=%d", opts.Source, l.N)
	}
	if opts.HasTarget && int(opts.Target) >= l.N {
		return nil, fmt.Errorf("bfs: target %d out of range for n=%d", opts.Target, l.N)
	}
	return l, nil
}

// trivialResult handles the source==target case without communication.
func trivialResult(n int, r, c int, source graph.Vertex) *Result {
	res := &Result{N: n, R: r, C: c, Found: true}
	res.Levels = make([]int32, n)
	for i := range res.Levels {
		res.Levels[i] = graph.Unreached
	}
	res.Levels[source] = 0
	return res
}

// Run1D executes Algorithm 1 across the world.
func Run1D(w *comm.World, stores []*partition.Store1D, opts Options) (*Result, error) {
	l, err := validate1D(w, stores, opts)
	if err != nil {
		return nil, err
	}
	if err := validateRobustness(opts, true); err != nil {
		return nil, err
	}
	if opts.HasTarget && opts.Source == opts.Target {
		return trivialResult(l.N, 1, l.P, opts.Source), nil
	}

	res := &Result{N: l.N, R: 1, C: l.P}
	perRank := make([][]rankLevel, w.P)
	localLevels := make([][]int32, w.P)
	probes := make([]uint64, w.P)
	var foundAt int32 = -1
	w.SetTrace(opts.Trace)
	defer w.SetTrace(nil)
	w.SetFault(opts.Fault)
	defer w.SetFault(nil)
	start := time.Now()
	cancels := make([]*search.Canceled, w.P)
	comms, err := w.Run(func(c *comm.Comm) {
		st := stores[c.Rank()]
		e := newEngine1D(c, st, opts)
		recs, s, found, cxl := driveUni(c, e, opts)
		perRank[c.Rank()] = recs
		localLevels[c.Rank()] = s.L
		probes[c.Rank()] = e.probeDelta()
		cancels[c.Rank()] = cxl
		if found && c.Rank() == 0 {
			foundAt = s.level
		}
	})
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	mergeStats(res, perRank, comms)
	for _, p := range probes {
		res.HashProbes += p
	}
	res.Levels = make([]int32, l.N)
	for r, st := range stores {
		copy(res.Levels[int(st.Lo):int(st.Lo)+st.OwnedCount()], localLevels[r])
	}
	if opts.HasTarget && foundAt >= 0 {
		res.Found = true
		res.Distance = foundAt
	}
	publishMetrics(opts.Metrics, res)
	if cxl := search.MergeCanceled(cancels); cxl != nil {
		return res, cxl
	}
	return res, nil
}

// RunBidirectional1D executes the §2.3 bi-directional search on the 1D
// partitioning (the paper notes either partitioning can host it).
func RunBidirectional1D(w *comm.World, stores []*partition.Store1D, opts Options) (*Result, error) {
	if !opts.HasTarget {
		return nil, fmt.Errorf("bfs: bi-directional search requires a target")
	}
	l, err := validate1D(w, stores, opts)
	if err != nil {
		return nil, err
	}
	if err := validateRobustness(opts, false); err != nil {
		return nil, err
	}
	if opts.Source == opts.Target {
		return trivialResult(l.N, 1, l.P, opts.Source), nil
	}

	res := &Result{N: l.N, R: 1, C: l.P}
	perRank := make([][]rankLevel, w.P)
	localLevels := make([][]int32, w.P)
	probes := make([]uint64, w.P)
	var globalBest int64 = -1
	w.SetTrace(opts.Trace)
	defer w.SetTrace(nil)
	w.SetFault(opts.Fault)
	defer w.SetFault(nil)
	start := time.Now()
	cancels := make([]*search.Canceled, w.P)
	comms, err := w.Run(func(c *comm.Comm) {
		st := stores[c.Rank()]
		e := newEngine1D(c, st, opts)
		recs, ss, best, cxl := driveBidir(c, e, st, opts)
		perRank[c.Rank()] = recs
		localLevels[c.Rank()] = ss.L
		probes[c.Rank()] = e.probeDelta()
		cancels[c.Rank()] = cxl
		if c.Rank() == 0 && best != bidirInf {
			globalBest = int64(best)
		}
	})
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	mergeStats(res, perRank, comms)
	for _, p := range probes {
		res.HashProbes += p
	}
	res.Levels = make([]int32, l.N)
	for r, st := range stores {
		copy(res.Levels[int(st.Lo):int(st.Lo)+st.OwnedCount()], localLevels[r])
	}
	if globalBest >= 0 {
		res.Found = true
		res.Distance = int32(globalBest)
	}
	publishMetrics(opts.Metrics, res)
	if cxl := search.MergeCanceled(cancels); cxl != nil {
		return res, cxl
	}
	return res, nil
}
