package bfs

import (
	"fmt"
	"math/bits"
	"sort"
	"time"

	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/search"
	"repro/internal/torus"
)

// Batched multi-source BFS: up to MaxLanes sources traverse the graph
// in one level-synchronized sweep sequence, one bit-lane per source
// (the Ligra-style cluster-BFS shape). Every owned vertex carries a
// lane mask of the sources that have reached it; a sweep expands the
// lane-OR frontier — the set of vertices some lane newly reached —
// exactly like a top-down BFS level, except each travelling vertex
// carries its frontier lane mask and owners label per lane.
//
// The vertex sets ride the same wire codecs as single-source payloads
// (the lane-OR frontier is what gets list/bitmap/hybrid-encoded); the
// masks follow in decoded set order, as interleaved words or
// transposed lane planes — whichever is fewer words (see the wire
// format below). Because the b searches share one set payload per hop,
// a batch moves fewer words than b independent runs whose frontiers
// overlap.

// MaxLanes is the lane capacity of one multi-source batch: one bit per
// source in a uint64 lane mask.
const MaxLanes = 64

// MultiResult reports a finished batched multi-source BFS. The
// embedded Result carries the shared machinery's statistics — PerLevel
// is per sweep, and Levels[v] is the distance from the *nearest*
// source (the lane minimum) — while LaneLevels separates the b
// independent per-source level arrays.
type MultiResult struct {
	Result
	// B is the lane count (number of sources in the batch).
	B int
	// Sources records the batch, lane i searching from Sources[i].
	Sources []graph.Vertex
	// LaneLevels[i][v] is source i's BFS level of vertex v (Unreached
	// if lane i never labels it) — identical to an independent BFS from
	// Sources[i].
	LaneLevels [][]int32
}

// laneOf returns the index of source s in the batch, or -1.
func (r *MultiResult) laneOf(s graph.Vertex) int {
	for i, src := range r.Sources {
		if src == s {
			return i
		}
	}
	return -1
}

// LaneDistance returns the s→t distance of the lane searching from s
// (Unreached if t was not reached or s is not in the batch).
func (r *MultiResult) LaneDistance(s, t graph.Vertex) int32 {
	if i := r.laneOf(s); i >= 0 {
		return r.LaneLevels[i][t]
	}
	return graph.Unreached
}

// Lane payload wire format, the multi-source counterpart of the SSSP
// relax-request format:
//
//	[setWords, maskForm, encodedSet..., masks...]
//
// The vertex set is ascending and duplicate-free (senders OR-merge the
// masks of duplicate vertices first), so it compresses under every
// frontier wire mode; the lane masks follow in decoded set order in
// whichever of two self-described layouts is fewer words for this
// (batch size, set size) pair:
//
//   - interleaved: ceil(b/32) words per member, member-major — cheap
//     when the set is small relative to the lane count;
//   - planes: b transposed bitmaps of ceil(|set|/32) words, bit p of
//     lane l's plane marking member p — cheap for wide sets of narrow
//     batches (b=8 lanes cost 1/4 word per member instead of 1).
//
// An empty batch is a nil payload. The lane count b is engine state
// (every rank knows the source batch), not payload data.
const (
	laneFormInterleaved = iota
	laneFormPlanes
)

// maskWords returns the interleaved per-member mask width for b lanes.
func maskWords(b int) int { return (b + 31) / 32 }

// encodeLanes packs a deduplicated (vertex, mask) batch of a b-lane
// search drawn from the destination's owned universe [lo, lo+n).
func encodeLanes(p *pool.Pool, vs []uint32, ms []uint64, b int, lo uint32, n int, mode frontier.WireMode, h *frontier.ContainerHist) []uint32 {
	if len(vs) == 0 {
		return nil
	}
	enc := frontier.EncodeSetStatsPar(p, vs, lo, n, mode, h)
	s := len(vs)
	wInter := s * maskWords(b)
	wPlane := b * frontier.BitWords(s)
	out := make([]uint32, 0, 2+len(enc)+min(wInter, wPlane))
	out = append(out, uint32(len(enc)))
	if wInter <= wPlane {
		out = append(out, laneFormInterleaved)
		out = append(out, enc...)
		for _, m := range ms {
			out = append(out, uint32(m))
			if b > 32 {
				out = append(out, uint32(m>>32))
			}
		}
		return out
	}
	out = append(out, laneFormPlanes)
	out = append(out, enc...)
	planes := make([]uint32, wPlane)
	pw := frontier.BitWords(s)
	for p, m := range ms {
		for mm := m; mm != 0; mm &= mm - 1 {
			lane := bits.TrailingZeros64(mm)
			planes[lane*pw+p/32] |= 1 << (p % 32)
		}
	}
	return append(out, planes...)
}

// decodeLanes inverts encodeLanes for a b-lane search.
func decodeLanes(p *pool.Pool, buf []uint32, b int) (vs []uint32, ms []uint64) {
	if len(buf) == 0 {
		return nil, nil
	}
	if len(buf) < 2 {
		panic("bfs: truncated lane payload")
	}
	nw := int(buf[0])
	form := buf[1]
	if 2+nw > len(buf) {
		panic("bfs: truncated lane payload set")
	}
	vs = frontier.DecodePar(p, buf[2:2+nw])
	rest := buf[2+nw:]
	s := len(vs)
	ms = make([]uint64, s)
	switch form {
	case laneFormInterleaved:
		w := maskWords(b)
		if len(rest) != s*w {
			panic("bfs: lane payload set/mask length mismatch")
		}
		for i := range ms {
			ms[i] = uint64(rest[i*w])
			if w > 1 {
				ms[i] |= uint64(rest[i*w+1]) << 32
			}
		}
	case laneFormPlanes:
		pw := frontier.BitWords(s)
		if len(rest) != b*pw {
			panic("bfs: lane payload plane length mismatch")
		}
		for lane := 0; lane < b; lane++ {
			plane := rest[lane*pw : (lane+1)*pw]
			frontier.IterateBits(plane, func(p uint32) { ms[p] |= 1 << uint(lane) })
		}
	default:
		panic("bfs: unknown lane mask form")
	}
	return vs, ms
}

// lanePairs sorts parallel (vertex, mask) slices by vertex.
type lanePairs struct {
	vs []uint32
	ms []uint64
}

func (p lanePairs) Len() int           { return len(p.vs) }
func (p lanePairs) Less(i, j int) bool { return p.vs[i] < p.vs[j] }
func (p lanePairs) Swap(i, j int) {
	p.vs[i], p.vs[j] = p.vs[j], p.vs[i]
	p.ms[i], p.ms[j] = p.ms[j], p.ms[i]
}

// dedupOr sorts the (vertex, mask) pairs by vertex and OR-merges the
// masks of duplicates in place — the lane analogue of the union fold's
// duplicate elimination. It returns the compacted slices and the
// number of pairs the merge absorbed.
func dedupOr(vs []uint32, ms []uint64) ([]uint32, []uint64, int) {
	if len(vs) < 2 {
		return vs, ms, 0
	}
	sort.Sort(lanePairs{vs, ms})
	w := 1
	for i := 1; i < len(vs); i++ {
		if vs[i] != vs[w-1] {
			vs[w], ms[w] = vs[i], ms[i]
			w++
		} else {
			ms[w-1] |= ms[i]
		}
	}
	return vs[:w], ms[:w], len(vs) - w
}

// multiState is one rank's lane-parallel search state.
type multiState struct {
	// reached[li] holds the lanes that have labeled owned vertex li.
	reached []uint64
	// fmask[li] holds the lanes that newly labeled li last sweep; the
	// nonzero entries are exactly the members of F.
	fmask []uint64
	// F is the lane-OR frontier: owned vertices with fmask != 0.
	F frontier.Frontier
	// levels[lane][li] is lane's level of owned vertex li.
	levels [][]int32
	sweep  int32
}

// newMultiState seeds the lanes owned by this rank.
func newMultiState(opts Options, sources []graph.Vertex, lo graph.Vertex, n int) *multiState {
	s := &multiState{
		reached: make([]uint64, n),
		fmask:   make([]uint64, n),
		F:       opts.newFrontier(lo, n),
		levels:  make([][]int32, len(sources)),
	}
	for lane := range s.levels {
		lv := make([]int32, n)
		for i := range lv {
			lv[i] = graph.Unreached
		}
		s.levels[lane] = lv
	}
	for lane, src := range sources {
		if src < lo || src >= lo+graph.Vertex(n) {
			continue
		}
		li := uint32(src - lo)
		s.levels[lane][li] = 0
		s.reached[li] |= 1 << uint(lane)
		s.fmask[li] |= 1 << uint(lane)
		s.F.Add(uint32(src))
	}
	return s
}

// mark applies a deduplicated batch of (vertex, mask) arrivals owned
// by this rank: lanes not yet at a vertex label it at sweep+1 and
// re-enter the frontier carrying only the new lanes. It installs the
// next frontier and advances the sweep counter.
func (s *multiState) mark(opts Options, lo graph.Vertex, n int, rvs []uint32, rms []uint64, rec *rankLevel) {
	next := opts.newFrontier(lo, n)
	nextMask := make([]uint64, n)
	for i, gu := range rvs {
		li := gu - uint32(lo)
		nw := rms[i] &^ s.reached[li]
		if nw == 0 {
			continue
		}
		s.reached[li] |= nw
		for m := nw; m != 0; m &= m - 1 {
			s.levels[bits.TrailingZeros64(m)][li] = s.sweep + 1
		}
		rec.marked += bits.OnesCount64(nw)
		nextMask[li] = nw
		next.Add(gu)
	}
	s.F = next
	s.fmask = nextMask
	s.sweep++
}

// multiStepper is a partitioning engine for lane-parallel sweeps.
type multiStepper interface {
	newMulti(sources []graph.Vertex) *multiState
	sweep(s *multiState, tagBase int) rankLevel
}

// multiDrive runs lane-parallel sweeps until the global lane-OR
// frontier empties (or MaxLevels, or a cooperative cancellation).
func multiDrive(c *comm.Comm, e multiStepper, opts Options, sources []graph.Vertex) ([]rankLevel, *multiState, *search.Canceled) {
	s := e.newMulti(sources)
	red := newReducer(c, opts)
	var recs []rankLevel
	for {
		if cxl := checkCancel(opts, red, c.Clock(), "sweep", int(s.sweep)); cxl != nil {
			return recs, s, cxl
		}
		if red.sum(uint64(s.F.Len())) == 0 {
			return recs, s, nil
		}
		if opts.MaxLevels > 0 && int(s.sweep) >= opts.MaxLevels {
			return recs, s, nil
		}
		recs = append(recs, e.sweep(s, int(s.sweep)*64))
	}
}

// multiEngine2D runs lane-parallel sweeps under the 2D partitioning,
// following the Algorithm 2 shape: targeted column expand of the
// lane-OR frontier (masks alongside), partial-list scan binning
// (neighbor, mask) pairs by owner column, row exchange, per-lane mark.
type multiEngine2D struct {
	c     *comm.Comm
	st    *partition.Store2D
	opts  Options
	model torus.CostModel
	colG  comm.Group
	rowG  comm.Group
	pl    *pool.Pool
	hist  frontier.ContainerHist
}

func newMultiEngine2D(c *comm.Comm, st *partition.Store2D, opts Options) *multiEngine2D {
	l := st.Layout
	mesh := comm.Mesh{R: l.R, C: l.C}
	c.SetCores(opts.Cores)
	return &multiEngine2D{
		c:     c,
		st:    st,
		opts:  opts,
		model: c.Model(),
		colG:  mesh.ColGroup(c.Rank()),
		rowG:  mesh.RowGroup(c.Rank()),
		pl:    pool.New(opts.Workers),
	}
}

func (e *multiEngine2D) newMulti(sources []graph.Vertex) *multiState {
	return newMultiState(e.opts, sources, e.st.Lo, e.st.OwnedCount())
}

func (e *multiEngine2D) sweep(s *multiState, tagBase int) rankLevel {
	if e.opts.Async {
		return e.sweepAsync(s, tagBase)
	}
	tm := newLevelTimer(e.c)
	h0 := e.hist
	rec := rankLevel{dir: TopDown, frontier: s.F.Len()}
	l := e.st.Layout
	r := e.colG.Size()

	// Targeted column expand: a frontier vertex travels, mask
	// alongside, only to the mesh rows holding a partial list for it.
	sendV := make([][]uint32, r)
	sendM := make([][]uint64, r)
	s.F.Iterate(func(gv uint32) {
		li := e.st.LocalOf(graph.Vertex(gv))
		m := s.fmask[li]
		for i := 0; i < r; i++ {
			if e.st.NeedsRow(li, i) {
				sendV[i] = append(sendV[i], gv)
				sendM[i] = append(sendM[i], m)
			}
		}
	})
	e.c.ChargeItems(s.F.Len()*((r+63)/64), e.model.EdgeCost)
	b := len(s.levels)
	lo, n := e.st.Lo, e.st.OwnedCount()
	send := make([][]uint32, r)
	for i := 0; i < r; i++ {
		if i == e.colG.Me {
			continue // stays local, unencoded
		}
		send[i] = encodeLanes(e.pl, sendV[i], sendM[i], b, uint32(lo), n, e.opts.Wire, &e.hist)
	}
	o := collective.Opts{Tag: tagBase, Chunk: e.opts.ChunkWords}
	parts, est := collective.AllToAll(e.c, e.colG, o, send)
	rec.expandWords = est.RecvWords

	// Scan the partial edge lists of every received frontier vertex and
	// bin the discovered (neighbor, mask) pairs by owner mesh column
	// (scanLanes runs on the worker pool and charges the scan).
	binV := make([][]uint32, l.C)
	binM := make([][]uint64, l.C)
	for i, p := range parts {
		var avs []uint32
		var ams []uint64
		if i == e.colG.Me {
			avs, ams = sendV[i], sendM[i]
		} else {
			avs, ams = decodeLanes(e.pl, p, b)
		}
		rec.edges += e.scanLanes(avs, ams, binV, binM)
	}

	// Local lane merge per destination ("merged to form N" with an OR
	// instead of a union), then the row exchange to the owners.
	for j := range binV {
		var d int
		binV[j], binM[j], d = dedupOr(binV[j], binM[j])
		rec.dups += d
		e.c.ChargeItems(len(binV[j])+d, e.model.VertexCost)
	}
	sendR := make([][]uint32, l.C)
	for j := range binV {
		if j == e.rowG.Me {
			continue
		}
		dlo, dhi := l.OwnedRange(e.rowG.World(j))
		sendR[j] = encodeLanes(e.pl, binV[j], binM[j], b, uint32(dlo), int(dhi-dlo), e.opts.Wire, &e.hist)
	}
	o2 := collective.Opts{Tag: tagBase + 1<<24, Chunk: e.opts.ChunkWords}
	rparts, fst := collective.AllToAll(e.c, e.rowG, o2, sendR)
	rec.foldWords = fst.RecvWords

	var rvs []uint32
	var rms []uint64
	for j, p := range rparts {
		var pvs []uint32
		var pms []uint64
		if j == e.rowG.Me {
			pvs, pms = binV[j], binM[j]
		} else {
			pvs, pms = decodeLanes(e.pl, p, b)
		}
		rvs = append(rvs, pvs...)
		rms = append(rms, pms...)
	}
	var d int
	rvs, rms, d = dedupOr(rvs, rms)
	rec.dups += d
	e.c.ChargeItems(len(rvs)+d, e.model.VertexCost)

	s.mark(e.opts, e.st.Lo, e.st.OwnedCount(), rvs, rms, &rec)
	rec.containers = e.hist.Sub(h0)
	tm.record(&rec)
	return rec
}

// multiEngine1D runs lane-parallel sweeps under the conventional 1D
// partitioning: full edge lists are local, so a sweep is one scan and
// one personalized exchange over all P ranks (the Algorithm 1 fold).
type multiEngine1D struct {
	c     *comm.Comm
	st    *partition.Store1D
	opts  Options
	model torus.CostModel
	world comm.Group
	pl    *pool.Pool
	hist  frontier.ContainerHist
}

func newMultiEngine1D(c *comm.Comm, st *partition.Store1D, opts Options) *multiEngine1D {
	g := comm.Group{Ranks: make([]int, c.Size()), Me: c.Rank()}
	for i := range g.Ranks {
		g.Ranks[i] = i
	}
	c.SetCores(opts.Cores)
	return &multiEngine1D{c: c, st: st, opts: opts, model: c.Model(), world: g,
		pl: pool.New(opts.Workers)}
}

func (e *multiEngine1D) newMulti(sources []graph.Vertex) *multiState {
	return newMultiState(e.opts, sources, e.st.Lo, e.st.OwnedCount())
}

func (e *multiEngine1D) sweep(s *multiState, tagBase int) rankLevel {
	if e.opts.Async {
		return e.sweepAsync(s, tagBase)
	}
	tm := newLevelTimer(e.c)
	h0 := e.hist
	rec := rankLevel{dir: TopDown, frontier: s.F.Len()}
	l := e.st.Layout
	p := e.world.Size()

	binV, binM, scanned := e.scanLanes(s)
	rec.edges = scanned
	for q := range binV {
		var d int
		binV[q], binM[q], d = dedupOr(binV[q], binM[q])
		rec.dups += d
		e.c.ChargeItems(len(binV[q])+d, e.model.VertexCost)
	}
	b := len(s.levels)
	send := make([][]uint32, p)
	for q := range binV {
		if q == e.world.Me {
			continue
		}
		dlo, dhi := l.OwnedRange(q)
		send[q] = encodeLanes(e.pl, binV[q], binM[q], b, uint32(dlo), int(dhi-dlo), e.opts.Wire, &e.hist)
	}
	o := collective.Opts{Tag: tagBase, Chunk: e.opts.ChunkWords}
	parts, fst := collective.AllToAll(e.c, e.world, o, send)
	rec.foldWords = fst.RecvWords

	var rvs []uint32
	var rms []uint64
	for q, part := range parts {
		var pvs []uint32
		var pms []uint64
		if q == e.world.Me {
			pvs, pms = binV[q], binM[q]
		} else {
			pvs, pms = decodeLanes(e.pl, part, b)
		}
		rvs = append(rvs, pvs...)
		rms = append(rms, pms...)
	}
	var d int
	rvs, rms, d = dedupOr(rvs, rms)
	rec.dups += d
	e.c.ChargeItems(len(rvs)+d, e.model.VertexCost)

	s.mark(e.opts, e.st.Lo, e.st.OwnedCount(), rvs, rms, &rec)
	rec.containers = e.hist.Sub(h0)
	tm.record(&rec)
	return rec
}

// validateSources checks a multi-source batch against the lane
// capacity and the vertex range.
func validateSources(sources []graph.Vertex, n int) error {
	if len(sources) == 0 {
		return fmt.Errorf("bfs: multi-source batch is empty")
	}
	if len(sources) > MaxLanes {
		return fmt.Errorf("bfs: %d sources exceed the %d-lane batch capacity", len(sources), MaxLanes)
	}
	for i, s := range sources {
		if int(s) >= n {
			return fmt.Errorf("bfs: source %d (lane %d) out of range for n=%d", s, i, n)
		}
	}
	return nil
}

// finishMulti assembles the global per-lane level arrays and the
// nearest-source Levels from the per-rank owned slices.
func finishMulti(res *MultiResult, n int, ranges func(rank int) (graph.Vertex, graph.Vertex), laneLevels [][][]int32) {
	b := res.B
	res.LaneLevels = make([][]int32, b)
	for lane := 0; lane < b; lane++ {
		res.LaneLevels[lane] = make([]int32, n)
	}
	for rank, lanes := range laneLevels {
		lo, hi := ranges(rank)
		for lane := 0; lane < b; lane++ {
			copy(res.LaneLevels[lane][int(lo):int(hi)], lanes[lane])
		}
	}
	res.Levels = make([]int32, n)
	for v := range res.Levels {
		min := graph.Unreached
		for lane := 0; lane < b; lane++ {
			if l := res.LaneLevels[lane][v]; l != graph.Unreached && (min == graph.Unreached || l < min) {
				min = l
			}
		}
		res.Levels[v] = min
	}
}

// MultiRun2D executes a batched multi-source BFS over the 2D edge
// partitioning (or a degenerate 1D mesh). Direction is always
// top-down; the sent-neighbors cache does not apply (a vertex must be
// re-sent when it carries new lanes) and is ignored.
func MultiRun2D(w *comm.World, stores []*partition.Store2D, sources []graph.Vertex, opts Options) (*MultiResult, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("bfs: no stores")
	}
	l := stores[0].Layout
	if l.P() != w.P || len(stores) != w.P {
		return nil, fmt.Errorf("bfs: %d stores on layout P=%d for world P=%d", len(stores), l.P(), w.P)
	}
	if err := validateSources(sources, l.N); err != nil {
		return nil, err
	}
	if err := validateRobustness(opts, false); err != nil {
		return nil, err
	}

	res := &MultiResult{B: len(sources), Sources: append([]graph.Vertex(nil), sources...)}
	res.N, res.R, res.C = l.N, l.R, l.C
	perRank := make([][]rankLevel, w.P)
	laneLevels := make([][][]int32, w.P)
	probes := make([]uint64, w.P)
	w.SetTrace(opts.Trace)
	defer w.SetTrace(nil)
	w.SetFault(opts.Fault)
	defer w.SetFault(nil)
	start := time.Now()
	cancels := make([]*search.Canceled, w.P)
	comms, err := w.Run(func(c *comm.Comm) {
		st := stores[c.Rank()]
		e := newMultiEngine2D(c, st, opts)
		probes0 := st.ColMap.Probes() + st.RowMap.Probes()
		recs, s, cxl := multiDrive(c, e, opts, sources)
		perRank[c.Rank()] = recs
		laneLevels[c.Rank()] = s.levels
		probes[c.Rank()] = st.ColMap.Probes() + st.RowMap.Probes() - probes0
		cancels[c.Rank()] = cxl
	})
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	mergeStats(&res.Result, perRank, comms)
	for _, p := range probes {
		res.HashProbes += p
	}
	finishMulti(res, l.N, func(rank int) (graph.Vertex, graph.Vertex) {
		return l.OwnedRange(rank)
	}, laneLevels)
	publishMetrics(opts.Metrics, &res.Result)
	if cxl := search.MergeCanceled(cancels); cxl != nil {
		return res, cxl
	}
	return res, nil
}

// MultiRun1D executes a batched multi-source BFS over the dedicated 1D
// engine.
func MultiRun1D(w *comm.World, stores []*partition.Store1D, sources []graph.Vertex, opts Options) (*MultiResult, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("bfs: no stores")
	}
	l := stores[0].Layout
	if l.P != w.P || len(stores) != w.P {
		return nil, fmt.Errorf("bfs: %d stores on layout P=%d for world P=%d", len(stores), l.P, w.P)
	}
	if err := validateSources(sources, l.N); err != nil {
		return nil, err
	}
	if err := validateRobustness(opts, false); err != nil {
		return nil, err
	}

	res := &MultiResult{B: len(sources), Sources: append([]graph.Vertex(nil), sources...)}
	res.N, res.R, res.C = l.N, 1, l.P
	perRank := make([][]rankLevel, w.P)
	laneLevels := make([][][]int32, w.P)
	w.SetTrace(opts.Trace)
	defer w.SetTrace(nil)
	w.SetFault(opts.Fault)
	defer w.SetFault(nil)
	start := time.Now()
	cancels := make([]*search.Canceled, w.P)
	comms, err := w.Run(func(c *comm.Comm) {
		e := newMultiEngine1D(c, stores[c.Rank()], opts)
		recs, s, cxl := multiDrive(c, e, opts, sources)
		perRank[c.Rank()] = recs
		laneLevels[c.Rank()] = s.levels
		cancels[c.Rank()] = cxl
	})
	if err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	mergeStats(&res.Result, perRank, comms)
	finishMulti(res, l.N, func(rank int) (graph.Vertex, graph.Vertex) {
		return l.OwnedRange(rank)
	}, laneLevels)
	publishMetrics(opts.Metrics, &res.Result)
	if cxl := search.MergeCanceled(cancels); cxl != nil {
		return res, cxl
	}
	return res, nil
}
