package bfs

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/partition"
)

var allDirections = []Direction{TopDown, BottomUp, DirectionOptimizing}

func build1D(t *testing.T, g *graph.CSR, p int) ([]*partition.Store1D, *comm.World) {
	t.Helper()
	l1, err := partition.NewLayout1D(g.N, p)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := partition.Build1D(l1, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	w, err := comm.NewWorld(comm.Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	return st1, w
}

// TestDirectionPoliciesMatchSerial2D: every direction policy must
// label exactly the serial reference levels on the 2D partitioning,
// across mesh shapes.
func TestDirectionPoliciesMatchSerial2D(t *testing.T) {
	g := testGraph(t, 600, 5, 1)
	for _, mesh := range [][2]int{{1, 1}, {2, 2}, {1, 4}, {4, 1}, {2, 3}} {
		fx := build2D(t, g, mesh[0], mesh[1])
		for _, dir := range allDirections {
			opts := DefaultOptions(fx.src)
			opts.Direction = dir
			res, err := Run2D(fx.world, fx.st2, opts)
			if err != nil {
				t.Fatalf("mesh %v dir %v: %v", mesh, dir, err)
			}
			levelsEqual(t, res.Levels, fx.serial, fmt.Sprintf("mesh %v dir %v", mesh, dir))
		}
	}
}

// TestDirectionPoliciesMatchSerial1D: the same equivalence on the
// dedicated Algorithm 1 engine.
func TestDirectionPoliciesMatchSerial1D(t *testing.T) {
	g := testGraph(t, 500, 4, 3)
	src := graph.LargestComponentVertex(g)
	serial := graph.BFS(g, src)
	for _, p := range []int{1, 3, 4} {
		st1, w := build1D(t, g, p)
		for _, dir := range allDirections {
			opts := DefaultOptions(src)
			opts.Direction = dir
			res, err := Run1D(w, st1, opts)
			if err != nil {
				t.Fatalf("p=%d dir %v: %v", p, dir, err)
			}
			levelsEqual(t, res.Levels, serial, fmt.Sprintf("1D p=%d dir %v", p, dir))
		}
	}
}

// TestDirectionPoliciesHandBuiltGraphs exercises degenerate structures
// (path, star, disconnected components) where the direction switch
// boundary cases live, on both partitionings.
func TestDirectionPoliciesHandBuiltGraphs(t *testing.T) {
	path := [][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}}
	star := [][2]graph.Vertex{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}}
	split := [][2]graph.Vertex{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 3}}
	cases := []struct {
		name  string
		n     int
		edges [][2]graph.Vertex
		src   graph.Vertex
	}{
		{"path", 10, path, 0},
		{"path-mid", 10, path, 5},
		{"star", 8, star, 3},
		{"disconnected", 7, split, 1},
		{"isolated-source", 7, split, 6},
	}
	for _, c := range cases {
		g, err := graph.FromEdges(c.n, c.edges)
		if err != nil {
			t.Fatal(err)
		}
		serial := graph.BFS(g, c.src)
		fx2 := build2D(t, g, 2, 2)
		st1, w1 := build1D(t, g, 3)
		for _, dir := range allDirections {
			opts := DefaultOptions(c.src)
			opts.Direction = dir
			res2, err := Run2D(fx2.world, fx2.st2, opts)
			if err != nil {
				t.Fatalf("%s 2D dir %v: %v", c.name, dir, err)
			}
			levelsEqual(t, res2.Levels, serial, fmt.Sprintf("%s 2D dir %v", c.name, dir))
			res1, err := Run1D(w1, st1, opts)
			if err != nil {
				t.Fatalf("%s 1D dir %v: %v", c.name, dir, err)
			}
			levelsEqual(t, res1.Levels, serial, fmt.Sprintf("%s 1D dir %v", c.name, dir))
		}
	}
}

// TestBottomUpInspectsFewerEdges is the headline property: on a
// low-diameter Poisson graph the direction-optimizing run switches to
// bottom-up on the big middle levels and inspects strictly fewer edges
// there than the top-down run did on the same levels.
func TestBottomUpInspectsFewerEdges(t *testing.T) {
	g := testGraph(t, 20000, 10, 7)
	fx := build2D(t, g, 2, 2)
	td := DefaultOptions(fx.src)
	do := DefaultOptions(fx.src)
	do.Direction = DirectionOptimizing
	resTD, err := Run2D(fx.world, fx.st2, td)
	if err != nil {
		t.Fatal(err)
	}
	resDO, err := Run2D(fx.world, fx.st2, do)
	if err != nil {
		t.Fatal(err)
	}
	levelsEqual(t, resDO.Levels, resTD.Levels, "dirop vs topdown")
	for _, ls := range resTD.PerLevel {
		if ls.Direction != TopDown {
			t.Fatalf("top-down run reported level %d as %v", ls.Level, ls.Direction)
		}
	}
	var buLevels int
	var tdEdges, doEdges int64
	for l, ls := range resDO.PerLevel {
		if ls.Direction != BottomUp {
			continue
		}
		buLevels++
		doEdges += ls.EdgesScanned
		if l < len(resTD.PerLevel) {
			tdEdges += resTD.PerLevel[l].EdgesScanned
		}
	}
	if buLevels == 0 {
		t.Fatal("direction-optimizing run never switched to bottom-up on a k=10 Poisson graph")
	}
	if doEdges >= tdEdges {
		t.Fatalf("bottom-up levels inspected %d edges, top-down %d on the same levels", doEdges, tdEdges)
	}
	if resDO.TotalEdgesScanned >= resTD.TotalEdgesScanned {
		t.Fatalf("total edges: dirop %d not below topdown %d",
			resDO.TotalEdgesScanned, resTD.TotalEdgesScanned)
	}
}

// TestDirectionPoliciesWithTargets: s→t searches and the bi-directional
// driver must return exact distances under every policy.
func TestDirectionPoliciesWithTargets(t *testing.T) {
	g := testGraph(t, 500, 5, 21)
	fx := build2D(t, g, 2, 3)
	rng := rand.New(rand.NewSource(22))
	for _, dir := range allDirections {
		for trial := 0; trial < 5; trial++ {
			s := graph.Vertex(rng.Intn(g.N))
			dst := graph.Vertex(rng.Intn(g.N))
			want := graph.Distance(g, s, dst)
			opts := DefaultOptions(s)
			opts.Target, opts.HasTarget = dst, true
			opts.Direction = dir
			for name, run := range map[string]func() (*Result, error){
				"uni": func() (*Result, error) { return Run2D(fx.world, fx.st2, opts) },
				"bi":  func() (*Result, error) { return RunBidirectional2D(fx.world, fx.st2, opts) },
			} {
				res, err := run()
				if err != nil {
					t.Fatalf("%s dir %v: %v", name, dir, err)
				}
				if want == graph.Unreached {
					if res.Found {
						t.Fatalf("%s dir %v: found unreachable target", name, dir)
					}
					continue
				}
				if !res.Found || res.Distance != want {
					t.Fatalf("%s dir %v: distance(%d,%d)=%d found=%v, want %d",
						name, dir, s, dst, res.Distance, res.Found, want)
				}
			}
		}
	}
}

// TestWireAutoMatchesSparse: the bitmap and hybrid wire encodings must
// not change any labeling; auto must never move more words than the
// plain lists, and hybrid never more than auto.
func TestWireAutoMatchesSparse(t *testing.T) {
	g := testGraph(t, 5000, 10, 23)
	fx := build2D(t, g, 2, 2)
	for _, ex := range []ExpandAlg{ExpandTargeted, ExpandAllGather, ExpandTwoPhase} {
		for _, fo := range []FoldAlg{FoldTwoPhase, FoldDirect, FoldBruck} {
			base := DefaultOptions(fx.src)
			base.Expand, base.Fold = ex, fo
			auto := base
			auto.Wire = frontier.WireAuto
			hybrid := base
			hybrid.Wire = frontier.WireHybrid
			resSparse, err := Run2D(fx.world, fx.st2, base)
			if err != nil {
				t.Fatalf("%v/%v sparse: %v", ex, fo, err)
			}
			resAuto, err := Run2D(fx.world, fx.st2, auto)
			if err != nil {
				t.Fatalf("%v/%v auto: %v", ex, fo, err)
			}
			resHyb, err := Run2D(fx.world, fx.st2, hybrid)
			if err != nil {
				t.Fatalf("%v/%v hybrid: %v", ex, fo, err)
			}
			levelsEqual(t, resAuto.Levels, fx.serial, fmt.Sprintf("%v/%v wire=auto", ex, fo))
			levelsEqual(t, resHyb.Levels, fx.serial, fmt.Sprintf("%v/%v wire=hybrid", ex, fo))
			sparseWords := resSparse.TotalExpandWords + resSparse.TotalFoldWords
			autoWords := resAuto.TotalExpandWords + resAuto.TotalFoldWords
			hybWords := resHyb.TotalExpandWords + resHyb.TotalFoldWords
			if autoWords > sparseWords {
				t.Errorf("%v/%v: wire=auto moved %d words, sparse %d", ex, fo, autoWords, sparseWords)
			}
			if hybWords > autoWords {
				t.Errorf("%v/%v: wire=hybrid moved %d words, auto %d", ex, fo, hybWords, autoWords)
			}
			if resHyb.Containers.Payloads() == 0 {
				t.Errorf("%v/%v: wire=hybrid recorded no container choices", ex, fo)
			}
		}
	}
	// WireDense is also exact (if rarely cheaper on small levels).
	dense := DefaultOptions(fx.src)
	dense.Wire = frontier.WireDense
	res, err := Run2D(fx.world, fx.st2, dense)
	if err != nil {
		t.Fatal(err)
	}
	levelsEqual(t, res.Levels, fx.serial, "wire=dense")
}

// TestWireHybridAllDirections: hybrid payloads flow through every
// direction policy — including the bottom-up bitmap gathers and
// OR-claims — on both partitionings without changing a single label,
// and never move more words than wire=auto.
func TestWireHybridAllDirections(t *testing.T) {
	g := testGraph(t, 6000, 10, 29)
	fx := build2D(t, g, 2, 2)
	src := graph.LargestComponentVertex(g)
	serial := graph.BFS(g, src)
	st1, w1 := build1D(t, g, 4)
	for _, dir := range allDirections {
		auto := DefaultOptions(src)
		auto.Direction = dir
		auto.Wire = frontier.WireAuto
		hyb := auto
		hyb.Wire = frontier.WireHybrid
		for name, run := range map[string]func(o Options) (*Result, error){
			"2D": func(o Options) (*Result, error) { return Run2D(fx.world, fx.st2, o) },
			"1D": func(o Options) (*Result, error) { return Run1D(w1, st1, o) },
		} {
			resAuto, err := run(auto)
			if err != nil {
				t.Fatalf("%s dir %v auto: %v", name, dir, err)
			}
			resHyb, err := run(hyb)
			if err != nil {
				t.Fatalf("%s dir %v hybrid: %v", name, dir, err)
			}
			levelsEqual(t, resHyb.Levels, serial, fmt.Sprintf("%s dir %v wire=hybrid", name, dir))
			autoWords := resAuto.TotalExpandWords + resAuto.TotalFoldWords
			hybWords := resHyb.TotalExpandWords + resHyb.TotalFoldWords
			if hybWords > autoWords {
				t.Errorf("%s dir %v: wire=hybrid moved %d words, auto %d", name, dir, hybWords, autoWords)
			}
		}
	}
}

// dumbbellGraph builds the degree-skewed bi-directional regression
// workload: two hub vertices A and B, each adjacent to its own half of
// the vertices, joined by a two-vertex bridge path. The s→t search
// must cross hub → bridge → hub, so a hub lands in each side's
// frontier while almost every vertex is still unlabeled — the regime
// where the edges-out-of-frontier estimate fires and vertex counting
// never does (two frontier vertices out of thousands).
func dumbbellGraph(t *testing.T, half int) (*graph.CSR, graph.Vertex, graph.Vertex) {
	t.Helper()
	hubA, hubB := graph.Vertex(0), graph.Vertex(1)
	n := 2 + 2*half + 2
	p1, p2 := graph.Vertex(n-2), graph.Vertex(n-1)
	var edges [][2]graph.Vertex
	for i := 0; i < half; i++ {
		edges = append(edges,
			[2]graph.Vertex{hubA, graph.Vertex(2 + i)},
			[2]graph.Vertex{hubB, graph.Vertex(2 + half + i)})
	}
	edges = append(edges, [2]graph.Vertex{hubA, p1}, [2]graph.Vertex{p1, p2}, [2]graph.Vertex{p2, hubB})
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g, graph.Vertex(2), graph.Vertex(2 + half) // s in A's half, t in B's
}

// TestBidirectionalDirOptBeatsTopDown is the Beamer-heuristic
// regression: with the edges-out-of-frontier switch, the bi-directional
// driver's bottom-up steps actually fire once a hub enters a frontier
// (the old vertex-count heuristic kept every step top-down — bidir
// frontiers stay tiny as vertex sets), and the direction-optimizing
// run beats pure top-down in both simulated execution time and words
// moved while returning the same exact distance.
func TestBidirectionalDirOptBeatsTopDown(t *testing.T) {
	g, s, dst := dumbbellGraph(t, 2000)
	want := graph.Distance(g, s, dst)
	fx := build2D(t, g, 2, 2)
	td := DefaultOptions(s)
	td.Target, td.HasTarget = dst, true
	do := td
	do.Direction = DirectionOptimizing
	resTD, err := RunBidirectional2D(fx.world, fx.st2, td)
	if err != nil {
		t.Fatal(err)
	}
	resDO, err := RunBidirectional2D(fx.world, fx.st2, do)
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*Result{"topdown": resTD, "dirop": resDO} {
		if !res.Found || res.Distance != want {
			t.Fatalf("%s: distance=%d found=%v, want %d", name, res.Distance, res.Found, want)
		}
	}
	buLevels := 0
	for _, ls := range resDO.PerLevel {
		if ls.Direction == BottomUp {
			buLevels++
		}
	}
	if buLevels == 0 {
		t.Fatal("bi-directional dirop never switched to bottom-up under the edge-based heuristic")
	}
	tdWords := resTD.TotalExpandWords + resTD.TotalFoldWords
	doWords := resDO.TotalExpandWords + resDO.TotalFoldWords
	if doWords >= tdWords {
		t.Fatalf("bi-directional dirop moved %d words, top-down %d — expected a win", doWords, tdWords)
	}
	if resDO.SimTime >= resTD.SimTime {
		t.Fatalf("bi-directional dirop simexec %.6fs, top-down %.6fs — expected a win",
			resDO.SimTime, resTD.SimTime)
	}
}

// TestWireAuto1D: the fold codec on the Algorithm 1 engine.
func TestWireAuto1D(t *testing.T) {
	g := testGraph(t, 3000, 10, 24)
	src := graph.LargestComponentVertex(g)
	serial := graph.BFS(g, src)
	st1, w := build1D(t, g, 4)
	for _, fo := range []FoldAlg{FoldTwoPhase, FoldDirect, FoldBruck} {
		opts := DefaultOptions(src)
		opts.Fold = fo
		opts.Wire = frontier.WireAuto
		res, err := Run1D(w, st1, opts)
		if err != nil {
			t.Fatalf("1D %v wire=auto: %v", fo, err)
		}
		levelsEqual(t, res.Levels, serial, fmt.Sprintf("1D %v wire=auto", fo))
	}
}

// TestFrontierOccupancyExtremes: pinning the adaptive frontier sparse
// or flipping it dense immediately must not change results.
func TestFrontierOccupancyExtremes(t *testing.T) {
	g := testGraph(t, 800, 6, 25)
	fx := build2D(t, g, 2, 2)
	for _, occ := range []float64{1e-9, 0.5, 1} {
		for _, dir := range allDirections {
			opts := DefaultOptions(fx.src)
			opts.FrontierOccupancy = occ
			opts.Direction = dir
			res, err := Run2D(fx.world, fx.st2, opts)
			if err != nil {
				t.Fatalf("occ=%g dir=%v: %v", occ, dir, err)
			}
			levelsEqual(t, res.Levels, fx.serial, fmt.Sprintf("occ=%g dir=%v", occ, dir))
		}
	}
}

// TestBidirectional1DWithDirections: the shared bi-directional driver
// on the 1D engine under every policy.
func TestBidirectional1DWithDirections(t *testing.T) {
	g := testGraph(t, 600, 5, 26)
	src := graph.LargestComponentVertex(g)
	serial := graph.BFS(g, src)
	var far graph.Vertex
	for v, l := range serial {
		if l != graph.Unreached && l > serial[far] {
			far = graph.Vertex(v)
		}
	}
	st1, w := build1D(t, g, 4)
	for _, dir := range allDirections {
		opts := DefaultOptions(src)
		opts.Target, opts.HasTarget = far, true
		opts.Direction = dir
		res, err := RunBidirectional1D(w, st1, opts)
		if err != nil {
			t.Fatalf("dir %v: %v", dir, err)
		}
		if !res.Found || res.Distance != serial[far] {
			t.Fatalf("dir %v: distance %d found=%v, want %d", dir, res.Distance, res.Found, serial[far])
		}
	}
}

func TestDirectionStrings(t *testing.T) {
	cases := map[string]string{
		TopDown.String():             "topdown",
		BottomUp.String():            "bottomup",
		DirectionOptimizing.String(): "dirop",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if !strings.Contains(Direction(99).String(), "99") {
		t.Error("unknown direction should include the value")
	}
	g := testGraph(t, 100, 3, 27)
	fx := build2D(t, g, 1, 2)
	opts := DefaultOptions(fx.src)
	opts.Direction = Direction(99)
	if _, err := Run2D(fx.world, fx.st2, opts); err == nil {
		t.Error("unknown direction policy did not error")
	}
}

// TestDOAlphaExtremes: a huge alpha forces bottom-up from level 1, a
// tiny one keeps every level top-down; both must stay exact.
func TestDOAlphaExtremes(t *testing.T) {
	g := testGraph(t, 800, 6, 28)
	fx := build2D(t, g, 2, 2)
	for _, alpha := range []float64{1e9, 1e-9} {
		opts := DefaultOptions(fx.src)
		opts.Direction = DirectionOptimizing
		opts.DOAlpha = alpha
		res, err := Run2D(fx.world, fx.st2, opts)
		if err != nil {
			t.Fatalf("alpha=%g: %v", alpha, err)
		}
		levelsEqual(t, res.Levels, fx.serial, fmt.Sprintf("alpha=%g", alpha))
		for _, ls := range res.PerLevel {
			if alpha < 1 && ls.Direction != TopDown {
				t.Fatalf("alpha=%g: level %d ran %v", alpha, ls.Level, ls.Direction)
			}
		}
	}
}
