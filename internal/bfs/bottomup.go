package bfs

import (
	"repro/internal/collective"
	"repro/internal/frontier"
	"repro/internal/graph"
)

// Bottom-up level expansion (the direction-optimizing complement to the
// paper's top-down Algorithms 1 and 2): instead of the frontier pushing
// its neighbors to their owners, every still-unlabeled vertex searches
// its own edge list for a parent already in the frontier and stops at
// the first hit. Communication is dense bitmaps with per-level volume
// fixed by the partitioning (independent of frontier size), so on the
// huge middle levels of a low-diameter Poisson graph both the edges
// inspected and the words moved collapse relative to top-down.

// stepBottomUp runs one bottom-up level under the 1D partitioning:
// every rank learns the global frontier as a bitmap (one all-gather of
// owned-range bitmaps — 1D stores full edge lists, so no fold is
// needed), then scans its unlabeled owned vertices for frontier
// parents.
func (e *engine1D) stepBottomUp(s *sideState, tagBase int) (rankLevel, bool) {
	rec := rankLevel{frontier: s.F.Len()}
	o := collective.Opts{Tag: tagBase, Chunk: e.opts.ChunkWords}
	pieces, st := collective.AllGather(e.c, e.world, o, frontier.Bits(s.F))
	rec.expandWords = st.RecvWords
	e.c.ChargeItems(st.RecvWords, e.model.VertexCost)

	bs := uint32(e.st.Layout.BlockSize())
	inFrontier := func(u graph.Vertex) bool {
		r := uint32(u) / bs
		return frontier.TestBit(pieces[r], uint32(u)-r*bs)
	}

	next := e.opts.newFrontier(e.st.Lo, e.st.OwnedCount())
	edges := 0
	foundTarget := false
	for li := range s.L {
		if s.L[li] != graph.Unreached {
			continue
		}
		for _, u := range e.st.Neighbors(uint32(li)) {
			edges++
			if inFrontier(u) {
				s.L[li] = s.level + 1
				gv := e.st.GlobalOf(uint32(li))
				next.Add(uint32(gv))
				rec.marked++
				if e.opts.HasTarget && gv == e.opts.Target {
					foundTarget = true
				}
				break
			}
		}
	}
	rec.edges = edges
	e.c.ChargeItems(edges, e.model.EdgeCost)
	s.F = next
	s.level++
	return rec, foundTarget
}

// stepBottomUp runs one bottom-up level under the 2D partitioning:
//
//  1. Processor-row all-gather of owned-frontier bitmaps — the owners
//     of every vertex appearing in my partial edge lists are exactly my
//     processor row, so afterwards I can test any row vertex for
//     frontier membership.
//  2. Processor-column all-gather of unlabeled-owned bitmaps — my
//     processor column collectively owns every vertex whose partial
//     lists this column stores.
//  3. Local scan: for each still-unlabeled vertex with a non-empty
//     partial list here, stop at the first frontier parent and claim it
//     for its owner.
//  4. Processor-column OR-reduce-scatter of the claim bitmaps back to
//     the owners, which mark and build the next frontier.
func (e *engine2D) stepBottomUp(s *sideState, tagBase int) (rankLevel, bool) {
	l := e.st.Layout
	bs := uint32(l.BlockSize())
	rec := rankLevel{frontier: s.F.Len()}

	o := collective.Opts{Tag: tagBase, Chunk: e.opts.ChunkWords}
	fPieces, fst := collective.AllGather(e.c, e.rowG, o, frontier.Bits(s.F))

	un := frontier.NewBits(e.st.OwnedCount())
	for li, lv := range s.L {
		if lv == graph.Unreached {
			frontier.SetBit(un, uint32(li))
		}
	}
	o2 := collective.Opts{Tag: tagBase + 1<<22, Chunk: e.opts.ChunkWords}
	uPieces, ust := collective.AllGather(e.c, e.colG, o2, un)
	rec.expandWords = fst.RecvWords + ust.RecvWords
	e.c.ChargeItems(fst.RecvWords+ust.RecvWords, e.model.VertexCost)

	// My row vertices u satisfy BlockOf(u) mod R == my mesh row, so
	// their owner sits at row-group index BlockOf(u)/R.
	inFrontier := func(u graph.Vertex) bool {
		b := uint32(u) / bs
		return frontier.TestBit(fPieces[int(b)/l.R], uint32(u)-b*bs)
	}

	claims := make([][]uint32, l.R)
	for i := 0; i < l.R; i++ {
		claims[i] = frontier.NewBits(l.OwnedCount(e.colG.Ranks[i]))
	}
	edges := 0
	for ci, v := range e.st.ColIds {
		// Column vertices v are owned within my processor column, at
		// column-group index BlockOf(v) mod R.
		b := uint32(v) / bs
		m := int(b) % l.R
		off := uint32(v) - b*bs
		if !frontier.TestBit(uPieces[m], off) {
			continue
		}
		for _, u := range e.st.Rows[e.st.Off[ci]:e.st.Off[ci+1]] {
			edges++
			if inFrontier(u) {
				frontier.SetBit(claims[m], off)
				break
			}
		}
	}
	rec.edges = edges
	e.c.ChargeItems(len(e.st.ColIds), e.model.VertexCost)
	e.c.ChargeItems(edges, e.model.EdgeCost)

	o3 := collective.Opts{Tag: tagBase + 2<<22, Chunk: e.opts.ChunkWords}
	mine, cst := collective.ReduceScatterOr(e.c, e.colG, o3, claims)
	rec.foldWords = cst.RecvWords
	e.c.ChargeItems(cst.RecvWords, e.model.VertexCost)

	next := e.opts.newFrontier(e.st.Lo, e.st.OwnedCount())
	foundTarget := false
	frontier.IterateBits(mine, func(li uint32) {
		if s.L[li] != graph.Unreached {
			return // claims are built from a pre-level snapshot
		}
		s.L[li] = s.level + 1
		gv := e.st.GlobalOf(li)
		next.Add(uint32(gv))
		rec.marked++
		if e.opts.HasTarget && gv == e.opts.Target {
			foundTarget = true
		}
	})
	s.F = next
	s.level++
	return rec, foundTarget
}
