package bfs

import (
	"repro/internal/collective"
	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/pool"
)

// Bottom-up level expansion (the direction-optimizing complement to the
// paper's top-down Algorithms 1 and 2): instead of the frontier pushing
// its neighbors to their owners, every still-unlabeled vertex searches
// its own edge list for a parent already in the frontier and stops at
// the first hit. Communication is dense bitmaps with per-level volume
// fixed by the partitioning (independent of frontier size) — unless
// Options.Wire is WireHybrid, in which case every bitmap payload is
// re-encoded through the chunked container codec and sparse or
// clustered bitmaps collapse to a fraction of their raw width.

// wireBits encodes a bitmap payload over an n-bit universe for the
// wire under the configured encoding (the identity except under
// WireHybrid).
func wireBits(p *pool.Pool, opts Options, h *frontier.ContainerHist, words []uint32, n int) []uint32 {
	return frontier.EncodeBitsPar(p, words, n, opts.Wire, h)
}

// unwireBitPieces restores gathered bitmap pieces in place; piece i
// covers universe size widths(i).
func unwireBitPieces(p *pool.Pool, opts Options, pieces [][]uint32, widths func(i int) int) {
	if opts.Wire != frontier.WireHybrid {
		return
	}
	for i := range pieces {
		pieces[i] = frontier.DecodeBitsPar(p, pieces[i], widths(i))
	}
}

// stepBottomUp runs one bottom-up level under the 1D partitioning:
// every rank learns the global frontier as a bitmap (one all-gather of
// owned-range bitmaps — 1D stores full edge lists, so no fold is
// needed), then scans its unlabeled owned vertices for frontier
// parents.
func (e *engine1D) stepBottomUp(s *sideState, tagBase int) (rankLevel, bool) {
	tm := newLevelTimer(e.c)
	h0 := e.hist
	// dir is stamped here, not by the caller: the level span closes
	// inside tm.record with rec.dir as its arg.
	rec := rankLevel{dir: BottomUp, frontier: s.F.Len()}
	o := collective.Opts{Tag: tagBase, Chunk: e.opts.ChunkWords, Async: e.opts.Async}
	payload := wireBits(e.pl, e.opts, &e.hist, frontier.Bits(s.F), e.st.OwnedCount())
	var pieces [][]uint32
	var st collective.Stats
	if e.opts.Async {
		// Pipelined ring: each received piece is forwarded before its
		// handling charge, which then hides the next hop's transit.
		pieces, st = collective.AllGatherAsync(e.c, e.world, o, payload, func(m int, piece []uint32) {
			if m != e.world.Me {
				e.c.ChargeItems(len(piece), e.model.VertexCost)
			}
		})
	} else {
		pieces, st = collective.AllGather(e.c, e.world, o, payload)
		e.c.ChargeItems(st.RecvWords, e.model.VertexCost)
	}
	unwireBitPieces(e.pl, e.opts, pieces, e.st.Layout.OwnedCount)
	rec.expandWords = st.RecvWords

	bs := uint32(e.st.Layout.BlockSize())
	inFrontier := func(u graph.Vertex) bool {
		r := uint32(u) / bs
		return frontier.TestBit(pieces[r], uint32(u)-r*bs)
	}

	next := e.opts.newFrontier(e.st.Lo, e.st.OwnedCount())
	edges := 0
	foundTarget := false
	if nc := pool.Chunks(len(s.L), ownedGrain); e.pl.Workers() > 1 && nc > 1 {
		// Workers write s.L only at chunk-disjoint indices and record the
		// vertices they labeled; the chunk-ordered replay below rebuilds
		// the frontier in the serial ascending order.
		type chunkOut struct {
			marked []uint32 // local indices, ascending
			edges  int
		}
		outs := make([]chunkOut, nc)
		e.pl.Run(len(s.L), ownedGrain, func(ch, lo, hi int) {
			o := &outs[ch]
			for li := lo; li < hi; li++ {
				if s.L[li] != graph.Unreached {
					continue
				}
				for _, u := range e.st.Neighbors(uint32(li)) {
					o.edges++
					if inFrontier(u) {
						s.L[li] = s.level + 1
						o.marked = append(o.marked, uint32(li))
						break
					}
				}
			}
		})
		for i := range outs {
			edges += outs[i].edges
			for _, li := range outs[i].marked {
				gv := e.st.GlobalOf(li)
				next.Add(uint32(gv))
				rec.marked++
				if e.opts.HasTarget && gv == e.opts.Target {
					foundTarget = true
				}
			}
		}
	} else {
		for li := range s.L {
			if s.L[li] != graph.Unreached {
				continue
			}
			for _, u := range e.st.Neighbors(uint32(li)) {
				edges++
				if inFrontier(u) {
					s.L[li] = s.level + 1
					gv := e.st.GlobalOf(uint32(li))
					next.Add(uint32(gv))
					rec.marked++
					if e.opts.HasTarget && gv == e.opts.Target {
						foundTarget = true
					}
					break
				}
			}
		}
	}
	rec.edges = edges
	e.c.ChargeItemsPar(edges, e.model.EdgeCost)
	s.F = next
	s.level++
	rec.containers = e.hist.Sub(h0)
	tm.record(&rec)
	return rec, foundTarget
}

// stepBottomUp runs one bottom-up level under the 2D partitioning:
//
//  1. Processor-row all-gather of owned-frontier bitmaps — the owners
//     of every vertex appearing in my partial edge lists are exactly my
//     processor row, so afterwards I can test any row vertex for
//     frontier membership.
//  2. Processor-column all-gather of unlabeled-owned bitmaps — my
//     processor column collectively owns every vertex whose partial
//     lists this column stores.
//  3. Local scan: for each still-unlabeled vertex with a non-empty
//     partial list here, stop at the first frontier parent and claim it
//     for its owner.
//  4. Processor-column OR-reduce-scatter of the claim bitmaps back to
//     the owners, which mark and build the next frontier.
//
// Under WireHybrid all three bitmap exchanges carry container-encoded
// payloads (the gathers at the caller edges, the claims through
// collective.Opts.Codec).
func (e *engine2D) stepBottomUp(s *sideState, tagBase int) (rankLevel, bool) {
	tm := newLevelTimer(e.c)
	l := e.st.Layout
	bs := uint32(l.BlockSize())
	h0 := e.hist
	// dir is stamped here, not by the caller: the level span closes
	// inside tm.record with rec.dir as its arg.
	rec := rankLevel{dir: BottomUp, frontier: s.F.Len()}

	// Per-piece handling charge for the pipelined gathers (received
	// pieces only, the synchronous charge split across arrivals).
	chargeRecv := func(me int) collective.Handle {
		return func(m int, piece []uint32) {
			if m != me {
				e.c.ChargeItems(len(piece), e.model.VertexCost)
			}
		}
	}
	gather := func(g comm.Group, o collective.Opts, data []uint32) ([][]uint32, collective.Stats) {
		if e.opts.Async {
			return collective.AllGatherAsync(e.c, g, o, data, chargeRecv(g.Me))
		}
		pieces, st := collective.AllGather(e.c, g, o, data)
		e.c.ChargeItems(st.RecvWords, e.model.VertexCost)
		return pieces, st
	}

	o := collective.Opts{Tag: tagBase, Chunk: e.opts.ChunkWords, Async: e.opts.Async}
	fSend := wireBits(e.pl, e.opts, &e.hist, frontier.Bits(s.F), e.st.OwnedCount())
	fPieces, fst := gather(e.rowG, o, fSend)
	unwireBitPieces(e.pl, e.opts, fPieces, func(i int) int { return l.OwnedCount(e.rowG.Ranks[i]) })

	un := frontier.NewBits(e.st.OwnedCount())
	for li, lv := range s.L {
		if lv == graph.Unreached {
			frontier.SetBit(un, uint32(li))
		}
	}
	o2 := collective.Opts{Tag: tagBase + 1<<22, Chunk: e.opts.ChunkWords, Async: e.opts.Async}
	uPieces, ust := gather(e.colG, o2, wireBits(e.pl, e.opts, &e.hist, un, e.st.OwnedCount()))
	unwireBitPieces(e.pl, e.opts, uPieces, func(i int) int { return l.OwnedCount(e.colG.Ranks[i]) })
	rec.expandWords = fst.RecvWords + ust.RecvWords

	// My row vertices u satisfy BlockOf(u) mod R == my mesh row, so
	// their owner sits at row-group index BlockOf(u)/R.
	inFrontier := func(u graph.Vertex) bool {
		b := uint32(u) / bs
		return frontier.TestBit(fPieces[int(b)/l.R], uint32(u)-b*bs)
	}

	claims := make([][]uint32, l.R)
	for i := 0; i < l.R; i++ {
		claims[i] = frontier.NewBits(l.OwnedCount(e.colG.Ranks[i]))
	}
	edges := 0
	if nc := pool.Chunks(len(e.st.ColIds), ownedGrain); e.pl.Workers() > 1 && nc > 1 {
		// Distinct column vertices can claim distinct bits of a shared
		// claims word, so the set must be a CAS; which bits get set is
		// schedule-independent (each vertex's scan touches only its own
		// partial list).
		chunkEdges := make([]int, nc)
		e.pl.Run(len(e.st.ColIds), ownedGrain, func(ch, lo, hi int) {
			for ci := lo; ci < hi; ci++ {
				v := e.st.ColIds[ci]
				b := uint32(v) / bs
				m := int(b) % l.R
				off := uint32(v) - b*bs
				if !frontier.TestBit(uPieces[m], off) {
					continue
				}
				for _, u := range e.st.Rows[e.st.Off[ci]:e.st.Off[ci+1]] {
					chunkEdges[ch]++
					if inFrontier(u) {
						frontier.SetBitAtomic(claims[m], off)
						break
					}
				}
			}
		})
		for _, n := range chunkEdges {
			edges += n
		}
	} else {
		for ci, v := range e.st.ColIds {
			// Column vertices v are owned within my processor column, at
			// column-group index BlockOf(v) mod R.
			b := uint32(v) / bs
			m := int(b) % l.R
			off := uint32(v) - b*bs
			if !frontier.TestBit(uPieces[m], off) {
				continue
			}
			for _, u := range e.st.Rows[e.st.Off[ci]:e.st.Off[ci+1]] {
				edges++
				if inFrontier(u) {
					frontier.SetBit(claims[m], off)
					break
				}
			}
		}
	}
	rec.edges = edges
	e.c.ChargeItemsPar(len(e.st.ColIds), e.model.VertexCost)
	e.c.ChargeItemsPar(edges, e.model.EdgeCost)

	o3 := collective.Opts{Tag: tagBase + 2<<22, Chunk: e.opts.ChunkWords, Async: e.opts.Async}
	if e.opts.Wire == frontier.WireHybrid {
		o3.Codec = &collective.Codec{
			Enc: func(m int, w []uint32) []uint32 {
				return frontier.EncodeBitsPar(e.pl, w, l.OwnedCount(e.colG.Ranks[m]), e.opts.Wire, &e.hist)
			},
			Dec: func(m int, buf []uint32) []uint32 {
				return frontier.DecodeBitsPar(e.pl, buf, l.OwnedCount(e.colG.Ranks[m]))
			},
		}
	}
	var mine []uint32
	var cst collective.Stats
	if e.opts.Async {
		mine, cst = collective.ReduceScatterOrAsync(e.c, e.colG, o3,
			func(m int) []uint32 { return claims[m] }, chargeRecv(e.colG.Me))
	} else {
		mine, cst = collective.ReduceScatterOr(e.c, e.colG, o3, claims)
		e.c.ChargeItems(cst.RecvWords, e.model.VertexCost)
	}
	rec.foldWords = cst.RecvWords

	next := e.opts.newFrontier(e.st.Lo, e.st.OwnedCount())
	foundTarget := false
	frontier.IterateBits(mine, func(li uint32) {
		if s.L[li] != graph.Unreached {
			return // claims are built from a pre-level snapshot
		}
		s.L[li] = s.level + 1
		gv := e.st.GlobalOf(li)
		next.Add(uint32(gv))
		rec.marked++
		if e.opts.HasTarget && gv == e.opts.Target {
			foundTarget = true
		}
	})
	s.F = next
	s.level++
	rec.containers = e.hist.Sub(h0)
	tm.record(&rec)
	return rec, foundTarget
}
