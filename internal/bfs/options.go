// Package bfs implements the paper's contribution: level-synchronized
// distributed breadth-first search with 1D (Algorithm 1) and 2D
// (Algorithm 2) partitionings, the bi-directional variant of §2.3, the
// sent-neighbors cache of §2.4.3, fixed-length message buffers of §3.1,
// and selectable expand/fold collective algorithms including the
// BlueGene/L-optimized two-phase operations of §3.2.
//
// Beyond the paper, both engines support direction-optimizing
// traversal: each level can run top-down (the paper's expansion),
// bottom-up (unlabeled vertices search their own edge lists for a
// frontier parent, exchanged as bitmaps), or switch per level on a
// frontier/unlabeled-ratio heuristic. Frontiers use the pluggable
// sparse/dense/adaptive representations of internal/frontier, whose
// wire codec lets the collectives transmit bitmaps instead of vertex
// lists when denser is cheaper.
package bfs

import (
	"fmt"

	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/search"
)

// Direction selects how levels are expanded.
type Direction int

const (
	// TopDown is the paper's level expansion: scan the frontier's edge
	// lists and deliver the discovered neighbors to their owners. Cost
	// is proportional to the edges out of the frontier.
	TopDown Direction = iota
	// BottomUp inverts the level: every unlabeled vertex scans its own
	// edge list for a frontier parent and stops at the first hit. Cost
	// is proportional to the edges out of the *unlabeled* set, with
	// early exit — far cheaper on the huge middle levels of the
	// low-diameter Poisson graphs the paper studies.
	BottomUp
	// DirectionOptimizing switches per level between the two (the
	// standard Beamer-style hybrid): bottom-up once the frontier is
	// large relative to the unlabeled remainder, top-down otherwise.
	DirectionOptimizing
)

func (d Direction) String() string {
	switch d {
	case TopDown:
		return "topdown"
	case BottomUp:
		return "bottomup"
	case DirectionOptimizing:
		return "dirop"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

const (
	// DefaultDOAlpha is the direction-optimizing switch factor of
	// Beamer's true alpha heuristic: a level runs bottom-up when
	// alpha x (edges out of the frontier) >= (edges out of the
	// unlabeled set). On uniform-degree Poisson graphs the degree sums
	// cancel and this switches exactly where the old vertex-count rule
	// did, preserving the measured middle-level wins; on degree-skewed
	// frontiers (a hub vertex, the bi-directional driver's hub-side
	// steps) the out-degree estimate fires levels the vertex count
	// never would. Beamer's alpha=14 overshoots here because the
	// simulator charges hash probes and received words far above edge
	// scans, making one-level-early switches expensive.
	DefaultDOAlpha = 6.0
)

// ExpandAlg selects the expand (processor-column) collective.
type ExpandAlg int

const (
	// ExpandTargeted sends a frontier vertex only to the mesh rows that
	// hold a non-empty partial edge list for it, via a personalized
	// all-to-all — the sparse-frontier optimization of §2.2 whose
	// message length §3.1 bounds as (n/P)·γ(n/R)·(R−1).
	ExpandTargeted ExpandAlg = iota
	// ExpandAllGather broadcasts the whole frontier to the processor
	// column with a ring all-gather — the traditional dense expand the
	// paper calls non-scalable.
	ExpandAllGather
	// ExpandTwoPhase broadcasts the frontier with the two-phase grouped
	// ring of §3.2.2 (Figure 3).
	ExpandTwoPhase
)

func (a ExpandAlg) String() string {
	switch a {
	case ExpandTargeted:
		return "targeted"
	case ExpandAllGather:
		return "allgather"
	case ExpandTwoPhase:
		return "twophase"
	default:
		return fmt.Sprintf("ExpandAlg(%d)", int(a))
	}
}

// FoldAlg selects the fold (processor-row) collective.
type FoldAlg int

const (
	// FoldTwoPhase is the paper's union-fold (Figure 2): a grouped-ring
	// reduce-scatter with in-flight set-union duplicate elimination.
	FoldTwoPhase FoldAlg = iota
	// FoldDirect is a direct personalized all-to-all followed by local
	// union — the traditional fold.
	FoldDirect
	// FoldTwoPhaseNoUnion runs the two-phase schedule without in-flight
	// union; duplicates cross the wire. Baseline for Fig. 7.
	FoldTwoPhaseNoUnion
	// FoldBruck exchanges with Bruck's log-step algorithm then unions
	// locally — the short-message/latency-bound alternative (cf. the
	// paper's torus all-to-all reference [17]).
	FoldBruck
)

func (a FoldAlg) String() string {
	switch a {
	case FoldTwoPhase:
		return "twophase-union"
	case FoldDirect:
		return "direct"
	case FoldTwoPhaseNoUnion:
		return "twophase-nounion"
	case FoldBruck:
		return "bruck"
	default:
		return fmt.Sprintf("FoldAlg(%d)", int(a))
	}
}

// Options configures a distributed search.
type Options struct {
	Source graph.Vertex
	// Target, when HasTarget, stops the search as soon as the target is
	// labeled, as in the paper's s→t search-time experiments. Without a
	// target the search is a full traversal.
	Target    graph.Vertex
	HasTarget bool

	Expand ExpandAlg
	Fold   FoldAlg
	// Direction selects top-down (the paper's algorithm, the default),
	// bottom-up, or per-level direction-optimizing traversal.
	Direction Direction
	// DOAlpha tunes the direction-optimizing switch: a level runs
	// bottom-up when DOAlpha x (frontier out-degree) >= (unlabeled
	// out-degree); <= 0 selects DefaultDOAlpha.
	DOAlpha float64
	// Common carries the knobs shared with every other search
	// algorithm — Wire, ChunkWords, FrontierOccupancy — promoted so
	// o.Wire etc. read as before. The bottom-up steps exchange bitmaps
	// under every Wire mode except WireHybrid, which re-encodes those
	// bitmaps through the same container codec.
	search.Common
	// SentCache enables the sent-neighbors optimization (§2.4.3): a
	// neighbor vertex is never sent to its owner twice.
	SentCache bool
	// MaxLevels bounds the search depth; 0 means unbounded.
	MaxLevels int
	// P2PTermination runs the per-level termination/found/meet
	// reductions over point-to-point torus messages (recursive
	// doubling) instead of the modeled combine-tree network. BlueGene/L
	// had a dedicated tree network for these (§4.1), so the tree model
	// is the default; this option makes the simulation torus-only.
	P2PTermination bool
}

// DefaultOptions returns the configuration the paper runs on
// BlueGene/L: targeted expand, union-fold, sent-neighbors cache on, and
// fixed 16Ki-word message buffers.
func DefaultOptions(source graph.Vertex) Options {
	return Options{
		Source:    source,
		Expand:    ExpandTargeted,
		Fold:      FoldTwoPhase,
		SentCache: true,
		Common:    search.Defaults(),
	}
}

// newFrontier builds a level frontier over the owned range [lo, lo+n)
// with the configured adaptive occupancy threshold.
func (o Options) newFrontier(lo graph.Vertex, n int) frontier.Frontier {
	return o.NewFrontier(uint32(lo), n)
}

// doAlpha returns the effective direction-optimizing switch factor.
func (o Options) doAlpha() float64 {
	if o.DOAlpha <= 0 {
		return DefaultDOAlpha
	}
	return o.DOAlpha
}
