package comm

import (
	"fmt"

	"repro/internal/trace"
)

// Nonblocking point-to-point operations, modeled on BlueGene/L's
// co-processor mode: a posted transfer is handed to the communication
// coprocessor, which runs the send/receive software path and the wire
// transfer concurrently with whatever the main core does next. The
// main core pays nothing at post time; at Wait it pays only the part of
// the transfer that has not yet completed. The transfer's full cost —
// overheads and wire time — is still charged to the communication
// ledger (it happened, just concurrently), and the portion that
// progressed while the main core was busy is audited in OverlapTime, so
// for every rank, at all times,
//
//	Clock() == CompTime() + CommTime() - OverlapTime()
//
// and OverlapTime() <= CommTime() by construction.
//
// The blocking Send/Recv pair keeps the paper-faithful single-core
// model (overheads serialize into the clock) and is bit-identical to
// the seed behavior; the engines' synchronous schedules use only those,
// so the phase-synchronous baseline is unchanged.
//
// Requests on the same (source, tag) stream must be waited in posting
// order — the mailboxes are FIFO, exactly like eager MPI.

// Request is a handle to a posted nonblocking operation.
type Request struct {
	c     *Comm
	src   int
	tag   int
	chunk int     // maxWords of the matching send; <= 0 unchunked
	ref   float64 // progress floor: post clock, then each chunk's ready time
	done  bool
	data  []uint32
}

// Isend posts a send and returns an immediately-complete request. The
// coprocessor runs the send path: the message departs one SendOverhead
// after the coprocessor frees up, the overhead is charged to the
// communication ledger as overlapped work, and the main core's clock
// does not move.
func (c *Comm) Isend(dst, tag int, data []uint32) *Request {
	c.sendOffloaded(dst, tag, data)
	return &Request{c: c, done: true}
}

// IsendChunked is Isend under the fixed-length buffer discipline of
// SendChunked; the receiver must use IrecvChunked with the same
// maxWords. As with SendChunked, a nil data slice means an empty
// logical message.
func (c *Comm) IsendChunked(dst, tag int, data []uint32, maxWords int) *Request {
	if data == nil {
		data = emptyPayload
	}
	if maxWords <= 0 {
		c.sendOffloaded(dst, tag, data)
		return &Request{c: c, done: true}
	}
	sendChunks(func(piece []uint32) { c.sendOffloaded(dst, tag, piece) }, data, maxWords)
	return &Request{c: c, done: true}
}

// sendOffloaded queues one message through the coprocessor: departures
// serialize one SendOverhead apart (the coprocessor is a single
// engine), the overhead lands in the communication ledger as overlap,
// and the clock is untouched.
func (c *Comm) sendOffloaded(dst, tag int, data []uint32) {
	c.validateSend(dst, tag, data)
	oS := c.world.model.SendOverhead
	start := c.clock
	if c.copSendFree > start {
		start = c.copSendFree
	}
	departure := start + oS
	c.copSendFree = departure
	c.commTime += oS
	c.overlapTime += oS
	c.tr.Cost("isend", trace.KindOverlap, start, departure)
	bytes := messageHeaderBytes + 4*len(data)
	c.bytesSent += uint64(bytes)
	c.msgsSent++
	c.post(dst, tag, data, departure)
}

// Irecv posts a receive for the next message from src with the given
// tag. Nothing is charged at post time; the clock of the post is
// recorded so Wait can tell how much of the transfer progressed under
// the activity in between.
func (c *Comm) Irecv(src, tag int) *Request {
	if src == c.rank {
		panic(fmt.Sprintf("comm: rank %d posting a receive from itself (tag %d)", c.rank, tag))
	}
	return &Request{c: c, src: src, tag: tag, ref: c.clock}
}

// IrecvChunked posts a receive for a logical message sent with
// SendChunked/IsendChunked using the same maxWords.
func (c *Comm) IrecvChunked(src, tag, maxWords int) *Request {
	r := c.Irecv(src, tag)
	r.chunk = maxWords
	return r
}

// Wait blocks until the posted transfer completes and returns its
// payload (nil for send requests). The transfer's seconds that already
// elapsed on this rank's clock since the post are hidden: charged to
// the communication ledger and OverlapTime, but not re-serialized into
// the clock. Waiting twice returns the same payload.
func (r *Request) Wait() []uint32 {
	if r.done {
		return r.data
	}
	c := r.c
	if r.chunk <= 0 {
		r.data, r.ref = c.receiveOffloaded(r.src, r.tag, r.ref)
		r.done = true
		return r.data
	}
	r.data = recvChunks(func() []uint32 {
		piece, ready := c.receiveOffloaded(r.src, r.tag, r.ref)
		r.ref = ready
		return piece
	}, r.chunk)
	r.done = true
	return r.data
}

// Test reports whether Wait would complete without blocking: the
// (first) message is already in the mailbox and its simulated
// completion is at or before this rank's clock. It never consumes the
// message and charges nothing.
//
// Test is advisory only. Whether a peer's send has reached the mailbox
// depends on host goroutine scheduling, so branching control flow on
// Test would make the simulated clock nondeterministic; the engines in
// this repository schedule with Wait alone and use Test for
// diagnostics.
func (r *Request) Test() bool {
	if r.done {
		return true
	}
	msg, ok := r.c.world.mail[r.c.rank][r.src].peek()
	if !ok || msg.tag != r.tag {
		return false
	}
	bytes := messageHeaderBytes + 4*len(msg.data)
	hops := r.c.world.mapping.Hops(r.src, r.c.rank)
	transit := r.c.world.model.Transit(hops, bytes)
	return msg.departure+transit+r.c.world.model.RecvOverhead <= r.c.clock
}

// receiveOffloaded pops the next message from src, checks its tag, and
// runs the coprocessor-completion accounting against ref — the
// simulated time the transfer was posted (or the previous chunk's
// completion, for chunked streams). The message is ready one
// RecvOverhead after it arrives (the coprocessor runs the receive
// path); transfer seconds in [max(ref, departure), ready] that this
// rank's clock already covers progressed under concurrent activity and
// are charged to commTime and overlapTime without advancing the clock.
// The uncovered remainder is an honest wait. It returns the payload
// and the completion time.
func (c *Comm) receiveOffloaded(src, tag int, ref float64) ([]uint32, float64) {
	msg, bytes := c.takeMessage(src, tag)
	hops := c.world.mapping.Hops(src, c.rank)
	c.hopsRecv += uint64(hops)
	c.hopBytes += uint64(hops) * uint64(bytes)
	c.recordRoute(src, bytes)
	transit := c.world.model.Transit(hops, bytes)
	c.bytesRecv += uint64(bytes)
	c.msgsRecv++
	var data []uint32
	var ready float64
	if msg.dropped {
		// A lost transfer forfeits its overlap window: the coprocessor
		// cannot hide a copy that never arrived, so the whole recovery
		// serializes into the clock.
		data, ready = c.recover(src, msg, transit, true)
	} else {
		arrival := msg.departure + transit
		if ref > arrival {
			// The coprocessor was still completing the previous chunk.
			arrival = ref
		}
		ready = arrival + c.world.model.RecvOverhead
		start := ref
		if msg.departure > start {
			start = msg.departure // the transfer only progresses once posted
		}
		hidden := ready
		if c.clock < hidden {
			hidden = c.clock
		}
		hidden -= start
		if hidden < 0 {
			hidden = 0
		}
		if hidden > 0 {
			c.tr.Cost("irecv", trace.KindOverlap, start, start+hidden)
		}
		if ready > c.clock {
			c.tr.Cost("wait", trace.KindComm, c.clock, ready)
			c.commTime += ready - c.clock
			c.clock = ready
		}
		c.commTime += hidden
		c.overlapTime += hidden
		data = msg.data
		if !verifyFrame(msg) {
			// The copy in hand is garbage; the NACK retransmission
			// serializes like any other post-arrival repair.
			data, ready = c.recover(src, msg, transit, false)
		}
	}
	if msg.dupTrail {
		c.discardDup(src, transit)
		if c.clock > ready {
			ready = c.clock // the coprocessor also chewed the duplicate
		}
	}
	return data, ready
}

// takeMessage pops the next frame from src (verifying its sequence
// number) and tag-checks it, returning it with its on-wire byte count.
func (c *Comm) takeMessage(src, tag int) (message, int) {
	if src == c.rank {
		panic(fmt.Sprintf("comm: rank %d receiving from itself (tag %d)", c.rank, tag))
	}
	msg := c.nextFrame(src)
	if msg.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", c.rank, tag, src, msg.tag))
	}
	return msg, messageHeaderBytes + 4*len(msg.data)
}
