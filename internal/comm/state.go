package comm

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/torus"
)

// LinkLoad is one directed torus link's accumulated byte load — the
// exported, order-stable form of the per-rank link ledger, used by
// checkpoints (and anything else that needs the raw per-link loads
// rather than the LinkLoads summary).
type LinkLoad struct {
	From, To torus.Coord
	Bytes    uint64
}

// State is a complete snapshot of one rank's transport-side state: the
// simulated-clock ledger, the traffic counters, the frame sequence
// counters, the fault-activity counters, and the per-link byte loads.
// Capturing and later restoring it onto a fresh rank makes the
// continued run charge-identical to one that never stopped.
//
// A snapshot is only meaningful at a quiescent point — all posted
// messages received, no requests in flight — which the engines
// guarantee at level/epoch boundaries. In-flight mailbox contents are
// deliberately not part of the state.
type State struct {
	Clock       float64
	CommTime    float64
	CompTime    float64
	OverlapTime float64
	CopSendFree float64

	BytesSent uint64
	MsgsSent  uint64
	BytesRecv uint64
	MsgsRecv  uint64
	HopsRecv  uint64
	HopBytes  uint64

	SendSeq []uint32
	RecvSeq []uint32

	Faults FaultStats

	Links []LinkLoad
}

// CaptureState snapshots this rank's transport state. The link loads
// are sorted (by from-coordinate, then to-coordinate) so the snapshot
// is deterministic. It panics if a message is still waiting in one of
// this rank's mailboxes — a checkpoint taken mid-exchange would lose
// it.
func (c *Comm) CaptureState() State {
	for src, q := range c.world.mail[c.rank] {
		if _, ok := q.peek(); ok {
			panic(fmt.Sprintf("comm: rank %d capturing state with an unreceived message from rank %d", c.rank, src))
		}
	}
	s := State{
		Clock:       c.clock,
		CommTime:    c.commTime,
		CompTime:    c.compTime,
		OverlapTime: c.overlapTime,
		CopSendFree: c.copSendFree,
		BytesSent:   c.bytesSent,
		MsgsSent:    c.msgsSent,
		BytesRecv:   c.bytesRecv,
		MsgsRecv:    c.msgsRecv,
		HopsRecv:    c.hopsRecv,
		HopBytes:    c.hopBytes,
		Faults:      c.faults,
	}
	if c.sendSeq != nil {
		s.SendSeq = append([]uint32(nil), c.sendSeq...)
	}
	if c.recvSeq != nil {
		s.RecvSeq = append([]uint32(nil), c.recvSeq...)
	}
	for k, v := range c.linkLoad {
		s.Links = append(s.Links, LinkLoad{From: k.from, To: k.to, Bytes: v})
	}
	sort.Slice(s.Links, func(i, j int) bool {
		a, b := s.Links[i], s.Links[j]
		if a.From != b.From {
			return coordLess(a.From, b.From)
		}
		return coordLess(a.To, b.To)
	})
	return s
}

// RestoreState loads a captured snapshot onto this rank, replacing its
// entire transport state. The rank must be fresh (clock zero) — the
// engines restore immediately after World.Run hands them their Comm.
func (c *Comm) RestoreState(s State) {
	if c.clock != 0 || c.msgsSent != 0 || c.msgsRecv != 0 {
		panic(fmt.Sprintf("comm: rank %d restoring state onto a used rank", c.rank))
	}
	c.clock = s.Clock
	c.commTime = s.CommTime
	c.compTime = s.CompTime
	c.overlapTime = s.OverlapTime
	c.copSendFree = s.CopSendFree
	c.bytesSent = s.BytesSent
	c.msgsSent = s.MsgsSent
	c.bytesRecv = s.BytesRecv
	c.msgsRecv = s.MsgsRecv
	c.hopsRecv = s.HopsRecv
	c.hopBytes = s.HopBytes
	c.faults = s.Faults
	c.sendSeq = nil
	if s.SendSeq != nil {
		c.sendSeq = append([]uint32(nil), s.SendSeq...)
	}
	c.recvSeq = nil
	if s.RecvSeq != nil {
		c.recvSeq = append([]uint32(nil), s.RecvSeq...)
	}
	c.linkLoad = nil
	for _, l := range s.Links {
		if c.linkLoad == nil {
			c.linkLoad = make(map[linkKey]uint64)
		}
		c.linkLoad[linkKey{from: l.From, to: l.To}] += l.Bytes
	}
}

// Encode serializes the snapshot into a checkpoint blob; Decode is the
// exact inverse. Both search families' checkpoint layers embed the
// transport state through these, so the layout lives here.
func (s State) Encode(enc *checkpoint.Enc) {
	enc.F64(s.Clock)
	enc.F64(s.CommTime)
	enc.F64(s.CompTime)
	enc.F64(s.OverlapTime)
	enc.F64(s.CopSendFree)
	enc.U64(s.BytesSent)
	enc.U64(s.MsgsSent)
	enc.U64(s.BytesRecv)
	enc.U64(s.MsgsRecv)
	enc.U64(s.HopsRecv)
	enc.U64(s.HopBytes)
	enc.Bool(s.SendSeq != nil)
	if s.SendSeq != nil {
		enc.Words(s.SendSeq)
	}
	enc.Bool(s.RecvSeq != nil)
	if s.RecvSeq != nil {
		enc.Words(s.RecvSeq)
	}
	enc.U64(s.Faults.InjCorrupt)
	enc.U64(s.Faults.InjDrop)
	enc.U64(s.Faults.InjDuplicate)
	enc.U64(s.Faults.InjDelay)
	enc.U64(s.Faults.InjOutage)
	enc.U64(s.Faults.Retries)
	enc.U64(s.Faults.ChecksumFails)
	enc.U64(s.Faults.DupsDiscarded)
	enc.F64(s.Faults.RetrySeconds)
	enc.Int(len(s.Links))
	for _, l := range s.Links {
		enc.Int(l.From.X)
		enc.Int(l.From.Y)
		enc.Int(l.From.Z)
		enc.Int(l.To.X)
		enc.Int(l.To.Y)
		enc.Int(l.To.Z)
		enc.U64(l.Bytes)
	}
}

// DecodeState reads a State previously written by State.Encode.
func DecodeState(dec *checkpoint.Dec) State {
	var s State
	s.Clock = dec.F64()
	s.CommTime = dec.F64()
	s.CompTime = dec.F64()
	s.OverlapTime = dec.F64()
	s.CopSendFree = dec.F64()
	s.BytesSent = dec.U64()
	s.MsgsSent = dec.U64()
	s.BytesRecv = dec.U64()
	s.MsgsRecv = dec.U64()
	s.HopsRecv = dec.U64()
	s.HopBytes = dec.U64()
	if dec.Bool() {
		s.SendSeq = dec.Words()
	}
	if dec.Bool() {
		s.RecvSeq = dec.Words()
	}
	s.Faults.InjCorrupt = dec.U64()
	s.Faults.InjDrop = dec.U64()
	s.Faults.InjDuplicate = dec.U64()
	s.Faults.InjDelay = dec.U64()
	s.Faults.InjOutage = dec.U64()
	s.Faults.Retries = dec.U64()
	s.Faults.ChecksumFails = dec.U64()
	s.Faults.DupsDiscarded = dec.U64()
	s.Faults.RetrySeconds = dec.F64()
	n := dec.Int()
	s.Links = make([]LinkLoad, n)
	for i := range s.Links {
		s.Links[i].From.X = dec.Int()
		s.Links[i].From.Y = dec.Int()
		s.Links[i].From.Z = dec.Int()
		s.Links[i].To.X = dec.Int()
		s.Links[i].To.Y = dec.Int()
		s.Links[i].To.Z = dec.Int()
		s.Links[i].Bytes = dec.U64()
	}
	return s
}

func coordLess(a, b torus.Coord) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.Z < b.Z
}
