package comm

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/torus"
)

func newTestWorld(t *testing.T, p int) *World {
	t.Helper()
	w, err := NewWorld(Config{P: p})
	if err != nil {
		t.Fatalf("NewWorld(%d): %v", p, err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(Config{P: 0}); err == nil {
		t.Fatal("expected error for P=0")
	}
	m, _ := torus.RowMajor(torus.MustNew(2, 1, 1), 2)
	if _, err := NewWorld(Config{P: 4, Mapping: m}); err == nil {
		t.Fatal("expected error for undersized mapping")
	}
}

func TestPointToPoint(t *testing.T) {
	w := newTestWorld(t, 2)
	comms, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []uint32{10, 20, 30})
			got := c.Recv(1, 8)
			if len(got) != 1 || got[0] != 99 {
				panic("rank 0 got wrong reply")
			}
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[2] != 30 {
				panic("rank 1 got wrong payload")
			}
			c.Send(0, 8, []uint32{99})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if comms[0].MsgsSent() != 1 || comms[0].MsgsRecv() != 1 {
		t.Errorf("rank 0 counters: sent=%d recv=%d", comms[0].MsgsSent(), comms[0].MsgsRecv())
	}
	wantBytes := uint64(messageHeaderBytes + 12)
	if comms[0].BytesSent() != wantBytes {
		t.Errorf("rank 0 bytes sent = %d, want %d", comms[0].BytesSent(), wantBytes)
	}
}

func TestClockAdvancesThroughMessages(t *testing.T) {
	w := newTestWorld(t, 2)
	comms, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Compute(1e-3) // rank 0 is busy, then sends
			c.Send(1, 1, []uint32{1})
		} else {
			c.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1's clock must be after rank 0's send departure (1ms+).
	if comms[1].Clock() <= 1e-3 {
		t.Errorf("receiver clock %g did not advance past sender departure", comms[1].Clock())
	}
	if comms[1].CommTime() <= 0 {
		t.Error("receiver accumulated no comm time")
	}
	if comms[0].CompTime() < 1e-3 {
		t.Errorf("sender comp time %g < 1ms", comms[0].CompTime())
	}
}

func TestSelfSendPanics(t *testing.T) {
	w := newTestWorld(t, 2)
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(0, 1, nil)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "sending to itself") {
		t.Fatalf("expected self-send panic, got %v", err)
	}
}

func TestTagMismatchPanics(t *testing.T) {
	w := newTestWorld(t, 2)
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []uint32{7})
		} else {
			c.Recv(0, 2)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "expected tag") {
		t.Fatalf("expected tag mismatch panic, got %v", err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w := newTestWorld(t, 4)
	comms, err := w.Run(func(c *Comm) {
		c.Compute(float64(c.Rank()) * 1e-3)
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := comms[0].Clock()
	for r, c := range comms {
		if c.Clock() != want {
			t.Errorf("rank %d clock %g != rank 0 clock %g after barrier", r, c.Clock(), want)
		}
		if c.Clock() < 3e-3 {
			t.Errorf("rank %d clock %g below slowest rank's compute", r, c.Clock())
		}
	}
}

func TestAllReduceOps(t *testing.T) {
	w := newTestWorld(t, 5)
	var sumOK, maxOK, minOK, orOK, andOK atomic.Bool
	sumOK.Store(true)
	maxOK.Store(true)
	minOK.Store(true)
	orOK.Store(true)
	andOK.Store(true)
	_, err := w.Run(func(c *Comm) {
		r := uint64(c.Rank())
		if c.AllReduceSum(r) != 0+1+2+3+4 {
			sumOK.Store(false)
		}
		if c.AllReduceMax(r) != 4 {
			maxOK.Store(false)
		}
		if c.AllReduceMin(r+10) != 10 {
			minOK.Store(false)
		}
		if c.AllReduceOr(c.Rank() == 3) != true {
			orOK.Store(false)
		}
		if c.AllReduceOr(false) != false {
			orOK.Store(false)
		}
		if c.AllReduceAnd(true) != true {
			andOK.Store(false)
		}
		if c.AllReduceAnd(c.Rank() != 2) != false {
			andOK.Store(false)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, ok := range map[string]*atomic.Bool{"sum": &sumOK, "max": &maxOK, "min": &minOK, "or": &orOK, "and": &andOK} {
		if !ok.Load() {
			t.Errorf("allreduce %s produced wrong result", name)
		}
	}
}

func TestSendRecvExchange(t *testing.T) {
	w := newTestWorld(t, 2)
	_, err := w.Run(func(c *Comm) {
		partner := 1 - c.Rank()
		got := c.SendRecv(partner, 3, []uint32{uint32(c.Rank())})
		if len(got) != 1 || got[0] != uint32(partner) {
			panic("exchange returned wrong data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicClocks(t *testing.T) {
	run := func() float64 {
		w := newTestWorld(t, 8)
		comms, err := w.Run(func(c *Comm) {
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + 7) % c.Size()
			for step := 0; step < 10; step++ {
				c.Send(next, step, []uint32{uint32(c.Rank())})
				c.Recv(prev, step)
				c.Compute(1e-6)
			}
			c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return MaxClock(comms)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("simulated clock not deterministic: %g vs %g", a, b)
	}
	if a <= 0 {
		t.Fatal("simulated clock did not advance")
	}
}

func TestMeshGroups(t *testing.T) {
	m, err := NewMesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.P() != 12 {
		t.Fatalf("P = %d", m.P())
	}
	rank := m.RankAt(1, 2) // = 6
	if rank != 6 || m.RowOf(rank) != 1 || m.ColOf(rank) != 2 {
		t.Fatalf("mesh arithmetic broken: rank=%d row=%d col=%d", rank, m.RowOf(rank), m.ColOf(rank))
	}
	row := m.RowGroup(rank)
	if row.Size() != 4 || row.Me != 2 {
		t.Fatalf("row group = %+v", row)
	}
	for j, r := range row.Ranks {
		if m.RowOf(r) != 1 || m.ColOf(r) != j {
			t.Fatalf("row group member %d wrong: %d", j, r)
		}
	}
	col := m.ColGroup(rank)
	if col.Size() != 3 || col.Me != 1 {
		t.Fatalf("col group = %+v", col)
	}
	for i, r := range col.Ranks {
		if m.ColOf(r) != 2 || m.RowOf(r) != i {
			t.Fatalf("col group member %d wrong: %d", i, r)
		}
	}
	if _, err := NewMesh(0, 4); err == nil {
		t.Fatal("expected error for zero mesh dimension")
	}
}

func TestGroupRingOrder(t *testing.T) {
	g := Group{Ranks: []int{5, 9, 2}, Me: 1}
	if g.Next(2) != 0 || g.Prev(0) != 2 {
		t.Fatal("ring wraparound broken")
	}
	if g.World(1) != 9 {
		t.Fatal("World translation broken")
	}
}

func TestPanicPropagation(t *testing.T) {
	w := newTestWorld(t, 3)
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
		c.Barrier() // other ranks wait here; poison must release them
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected propagated panic, got %v", err)
	}
}

func TestWorldReusableAfterRun(t *testing.T) {
	w := newTestWorld(t, 4)
	for trial := 0; trial < 3; trial++ {
		comms, err := w.Run(func(c *Comm) {
			c.Barrier()
			if c.AllReduceSum(1) != 4 {
				panic("bad sum")
			}
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(comms) != 4 {
			t.Fatalf("trial %d: %d comms", trial, len(comms))
		}
	}
}

func TestLinkLoads(t *testing.T) {
	w := newTestWorld(t, 4)
	comms, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(3, 1, []uint32{1, 2, 3})
		}
		if c.Rank() == 3 {
			c.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	maxB, totalB, links := LinkLoads(comms)
	if links == 0 || maxB == 0 {
		t.Fatal("no link loads recorded")
	}
	// One message of header+12 bytes over `hops` links.
	hops := w.Mapping().Hops(0, 3)
	wantBytes := uint64(messageHeaderBytes + 12)
	if maxB != wantBytes {
		t.Errorf("max link bytes %d, want %d", maxB, wantBytes)
	}
	if totalB != wantBytes*uint64(hops) {
		t.Errorf("total link bytes %d, want %d", totalB, wantBytes*uint64(hops))
	}
	if links != hops {
		t.Errorf("links used %d, want %d", links, hops)
	}
}
