package comm

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/trace"
)

// Transport hardening: every payload is framed with a per-peer
// sequence number and a checksum riding in the modeled 16-byte message
// envelope (messageHeaderBytes), so framing adds no wire words and a
// fault-free run is charge-identical to the unframed transport. The
// receiver verifies both on every frame; with a fault.Plan bound to
// the World, the wire injects corruption, loss, duplication, and delay
// per the plan, and the receiver recovers via a NACK-driven bounded
// retransmission protocol whose every simulated second — detection
// timeout, exponential backoff, resent wire time — serializes into the
// clock as communication time ("retry" cost spans), keeping
// clock == comp + comm - overlap intact.

// checksum is a 32-bit FNV-1a over the payload words — the integrity
// check carried in the modeled message envelope.
func checksum(data []uint32) uint32 {
	h := uint32(2166136261)
	for _, w := range data {
		h ^= w
		h *= 16777619
	}
	return h
}

// FaultStats aggregates one rank's transport-fault activity: what the
// wire injected on its incoming and outgoing messages and what the
// recovery protocol spent repairing it.
type FaultStats struct {
	// Injected counts per-kind fault injections on sent messages
	// (sender side): corrupt, drop, duplicate, delay, outage holds.
	InjCorrupt, InjDrop, InjDuplicate, InjDelay, InjOutage uint64
	// Retries counts retransmitted copies requested by this rank's
	// receives; ChecksumFails counts corrupt copies detected (first
	// sends and retransmissions); DupsDiscarded counts duplicate
	// copies the sequence counter rejected.
	Retries       uint64
	ChecksumFails uint64
	DupsDiscarded uint64
	// RetrySeconds is the simulated time the recovery protocol added
	// to this rank's clock (all charged as communication time).
	RetrySeconds float64
}

// Add accumulates other into s.
func (s *FaultStats) Add(other FaultStats) {
	s.InjCorrupt += other.InjCorrupt
	s.InjDrop += other.InjDrop
	s.InjDuplicate += other.InjDuplicate
	s.InjDelay += other.InjDelay
	s.InjOutage += other.InjOutage
	s.Retries += other.Retries
	s.ChecksumFails += other.ChecksumFails
	s.DupsDiscarded += other.DupsDiscarded
	s.RetrySeconds += other.RetrySeconds
}

// Injected returns total sender-side fault injections.
func (s FaultStats) Injected() uint64 {
	return s.InjCorrupt + s.InjDrop + s.InjDuplicate + s.InjDelay + s.InjOutage
}

// Zero reports whether no fault activity was recorded.
func (s FaultStats) Zero() bool { return s == FaultStats{} }

// FaultStats returns this rank's transport-fault counters.
func (c *Comm) FaultStats() FaultStats { return c.faults }

// MergeFaultStats sums the per-rank fault counters of a finished run.
func MergeFaultStats(comms []*Comm) FaultStats {
	var total FaultStats
	for _, c := range comms {
		total.Add(c.faults)
	}
	return total
}

// validateSend rejects the transport's sharp edges with a descriptive
// panic (recovered by World.Run into an error): self-sends, ranks
// outside the world, and nil payloads. A zero-length message is legal
// — pass an empty non-nil slice; nil means the caller forgot the
// payload, and framing a frame whose length the receiver cannot
// distinguish from "absent" would mask that bug.
func (c *Comm) validateSend(dst, tag int, data []uint32) {
	if dst == c.rank {
		panic(fmt.Sprintf("comm: rank %d sending to itself (tag %d)", c.rank, tag))
	}
	if dst < 0 || dst >= c.world.P {
		panic(fmt.Sprintf("comm: rank %d sending to out-of-range rank %d (world has %d ranks, tag %d)", c.rank, dst, c.world.P, tag))
	}
	if data == nil {
		panic(fmt.Sprintf("comm: rank %d sending nil payload to rank %d (tag %d); use an empty non-nil slice for zero-length messages", c.rank, dst, tag))
	}
}

// post frames data as the next message on the c.rank -> dst stream and
// pushes it (and, for Duplicate faults, its extra copy) into dst's
// mailbox. departure is when the frame leaves this rank; the fault
// plan may corrupt the wire image, mark the frame dropped, or shift
// the departure for delays and link outages. The original payload
// always travels on the envelope so a retransmission can deliver it.
func (c *Comm) post(dst, tag int, data []uint32, departure float64) {
	if c.sendSeq == nil {
		c.sendSeq = make([]uint32, c.world.P)
	}
	seq := c.sendSeq[dst]
	c.sendSeq[dst]++
	m := message{tag: tag, data: data, departure: departure, seq: seq, sum: checksum(data)}
	plan := c.world.fault
	if plan != nil {
		if held := plan.HoldForOutages(c.rank, dst, m.departure); held > m.departure {
			m.departure = held
			c.faults.InjOutage++
		}
		kind, delay := plan.Decide(c.rank, dst, tag, seq, 0)
		switch kind {
		case fault.Corrupt:
			// Flip one payload bit (or, for zero-length payloads, an
			// envelope checksum bit) — length-preserving, so the wire
			// byte count and transit time match the clean copy.
			if len(data) == 0 {
				m.sum ^= 0x5a5a5a5a
			} else {
				m.data = garble(data, c.rank, dst, seq)
			}
			m.orig = data
			c.faults.InjCorrupt++
		case fault.Drop:
			// The envelope still reaches the mailbox — marked lost — so
			// the receiver's pop never blocks forever; the receiver
			// models the timeout and the retransmission carries orig.
			m.dropped = true
			m.orig = data
			c.faults.InjDrop++
		case fault.Duplicate:
			m.dupTrail = true
			c.faults.InjDuplicate++
		case fault.Delay:
			m.departure += delay
			c.faults.InjDelay++
		}
	}
	c.world.mail[dst][c.rank].push(m)
	if m.dupTrail {
		// The duplicate copy follows its original immediately on the
		// FIFO stream; the receiver discards it right after accepting
		// the original, so no copy outlives the logical message.
		dup := m
		dup.dupTrail = false
		dup.departure = m.departure + c.world.model.SendOverhead
		c.world.mail[dst][c.rank].push(dup)
	}
}

// garble returns a copy of data (len > 0) with one deterministically
// chosen bit flipped, so the receiver's checksum fails.
func garble(data []uint32, src, dst int, seq uint32) []uint32 {
	g := append([]uint32(nil), data...)
	h := (uint64(seq) + uint64(uint32(src))<<32 + uint64(uint32(dst))<<48 + 0x9e3779b97f4a7c15)
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h ^= h >> 27
	g[h%uint64(len(g))] ^= 1 << ((h >> 17) % 32)
	return g
}

// verifyFrame reports whether a frame's wire image matches its
// checksum.
func verifyFrame(m message) bool { return checksum(m.data) == m.sum }

// nextFrame pops the next frame on the src stream and verifies its
// sequence number. The per-peer counters make reordering and stream
// corruption a hard protocol error rather than silent misdelivery;
// duplicate copies never appear here because the receiver discards
// them eagerly (see discardDup).
func (c *Comm) nextFrame(src int) message {
	msg, ok := c.world.mail[c.rank][src].pop()
	if !ok {
		panic("comm: receive aborted because a peer rank panicked")
	}
	if c.recvSeq == nil {
		c.recvSeq = make([]uint32, c.world.P)
	}
	if msg.seq != c.recvSeq[src] {
		panic(fmt.Sprintf("comm: rank %d expected seq %d from rank %d, got %d (transport stream corrupted)", c.rank, c.recvSeq[src], src, msg.seq))
	}
	c.recvSeq[src]++
	return msg
}

// discardDup pops and discards the duplicate copy trailing an accepted
// frame, charging its receive cost — wait to its arrival plus one
// receive overhead, serialized into the clock as communication time —
// and counting the discard.
func (c *Comm) discardDup(src int, transit float64) {
	dup, ok := c.world.mail[c.rank][src].pop()
	if !ok {
		panic("comm: receive aborted because a peer rank panicked")
	}
	t0 := c.clock
	arrival := dup.departure + transit
	if arrival > c.clock {
		c.clock = arrival
	}
	c.clock += c.world.model.RecvOverhead
	c.commTime += c.clock - t0
	c.tr.Cost("retry", trace.KindComm, t0, c.clock)
	c.faults.DupsDiscarded++
	c.faults.RetrySeconds += c.clock - t0
}

// recover runs the receiver side of the NACK-driven retransmission
// protocol for a frame whose first copy failed (checksum mismatch or
// drop). On entry the clock already covers the failed copy's receive
// (for corruption) or stands wherever the receiver detected the loss.
// Each round charges the NACK round trip plus exponential backoff,
// then models the retransmitted copy's wire transit and receive
// overhead; the fault plan may fault retransmissions too (attempt
// indices >= 1), but the CleanAttempt bound guarantees termination
// within the budget. Every second serializes into the clock as
// communication time under "retry" cost spans. It returns the true
// payload and the simulated time the frame was finally in hand.
func (c *Comm) recover(src int, m message, transit float64, firstDropped bool) ([]uint32, float64) {
	plan := c.world.fault
	if plan == nil {
		// A checksum mismatch without a fault plan is real memory
		// corruption — fail loudly.
		panic(fmt.Sprintf("comm: rank %d checksum mismatch on seq %d from rank %d with no fault plan bound", c.rank, m.seq, src))
	}
	data := m.orig
	if data == nil {
		data = m.data
	}
	t0 := c.clock
	if firstDropped {
		// Nothing arrived: the receiver's NACK timer anchors at the
		// time the copy should have been in hand.
		expect := m.departure + transit + c.world.model.RecvOverhead
		if expect > c.clock {
			c.clock = expect
		}
	} else {
		c.faults.ChecksumFails++
	}
	budget := plan.AttemptBudget()
	for attempt := 1; ; attempt++ {
		if attempt >= budget {
			panic(fmt.Sprintf("comm: rank %d exhausted the retry budget (%d attempts) receiving seq %d (tag %d) from rank %d", c.rank, budget, m.seq, m.tag, src))
		}
		// NACK round trip, then the sender's exponential backoff.
		c.clock += plan.Timeout() + plan.Backoff(attempt)
		c.faults.Retries++
		kind, delay := plan.Decide(src, c.rank, m.tag, m.seq, attempt)
		departure := plan.HoldForOutages(src, c.rank, c.clock)
		if departure > c.clock {
			c.faults.InjOutage++
		}
		if kind == fault.Delay {
			departure += delay
			c.faults.InjDelay++
		}
		arrival := departure + transit
		if kind == fault.Drop {
			// Lost again: the timer restarts from the expected arrival.
			c.clock = arrival + c.world.model.RecvOverhead
			continue
		}
		c.clock = arrival + c.world.model.RecvOverhead
		if kind == fault.Corrupt {
			c.faults.ChecksumFails++
			continue
		}
		// Clean copy in hand.
		ready := c.clock
		c.commTime += ready - t0
		c.tr.Cost("retry", trace.KindComm, t0, ready)
		c.faults.RetrySeconds += ready - t0
		return data, ready
	}
}
