package comm

import (
	"repro/internal/torus"
	"repro/internal/trace"
)

// messageHeaderBytes models the per-message envelope (tag, length,
// source) so that zero-length payloads are still charged a wire cost.
const messageHeaderBytes = 16

// Comm is one rank's handle into the World. All methods must be called
// only from the goroutine running that rank's SPMD body.
type Comm struct {
	world *World
	rank  int

	clock    float64 // simulated time on this rank
	commTime float64 // time attributed to communication
	compTime float64 // time attributed to computation
	// overlapTime is the subset of commTime that progressed concurrently
	// with other activity on this rank — transfers posted through the
	// nonblocking operations, which the modeled communication
	// coprocessor progresses while the main core computes (or waits on
	// other transfers) — instead of serializing into the clock.
	// Invariant, maintained by every operation:
	// clock == compTime + commTime - overlapTime.
	overlapTime float64
	// copSendFree is when the modeled communication coprocessor finishes
	// its last posted send; offloaded departures serialize through it.
	copSendFree float64

	// tr records spans for every ledger charge when a trace.Recorder is
	// bound to the world; nil (all methods no-ops) otherwise. Recording
	// never charges the clock, so a traced run is clock-identical to an
	// untraced one.
	tr *trace.Tracer

	bytesSent uint64
	msgsSent  uint64
	bytesRecv uint64
	msgsRecv  uint64
	hopsRecv  uint64 // sum of torus hop counts over received messages
	hopBytes  uint64 // sum of bytes x hops (link-traffic load)

	linkLoad map[linkKey]uint64 // bytes per directed torus link

	// Transport framing: per-peer sequence counters (sendSeq[dst] is
	// the next outgoing frame number on the rank->dst stream,
	// recvSeq[src] the next expected incoming frame from src) and the
	// fault/recovery activity ledger. slow is the fault plan's
	// straggler factor for this rank (1 when not a straggler).
	sendSeq []uint32
	recvSeq []uint32
	faults  FaultStats
	slow    float64

	// cores is the modeled per-node core count (BG/L co-processor mode
	// keeps one core on computation, virtual-node mode uses both).
	// Charges posted through ChargeItemsPar — the loops the engines
	// actually run on the worker pool — divide by it; everything else
	// stays serial. Always >= 1.
	cores int
}

// Rank returns this rank's id in [0, P).
func (c *Comm) Rank() int { return c.rank }

// Tracer returns this rank's span tracer — nil (and safe to call) when
// the world has no recorder bound. Collectives and engines use it for
// their structural spans.
func (c *Comm) Tracer() *trace.Tracer { return c.tr }

// Model returns the world's cost model, for explicit compute charges.
func (c *Comm) Model() torus.CostModel { return c.world.model }

// Size returns the world size P.
func (c *Comm) Size() int { return c.world.P }

// Clock returns the current simulated time on this rank.
func (c *Comm) Clock() float64 { return c.clock }

// CommTime returns accumulated simulated communication time.
func (c *Comm) CommTime() float64 { return c.commTime }

// CompTime returns accumulated simulated computation time.
func (c *Comm) CompTime() float64 { return c.compTime }

// OverlapTime returns the communication seconds hidden under concurrent
// activity by the nonblocking operations (see Request): always part of
// CommTime, never part of the clock. Zero on purely synchronous
// schedules.
func (c *Comm) OverlapTime() float64 { return c.overlapTime }

// BytesSent returns total payload+header bytes sent by this rank.
func (c *Comm) BytesSent() uint64 { return c.bytesSent }

// MsgsSent returns the number of messages sent by this rank.
func (c *Comm) MsgsSent() uint64 { return c.msgsSent }

// BytesRecv returns total payload+header bytes received by this rank.
func (c *Comm) BytesRecv() uint64 { return c.bytesRecv }

// MsgsRecv returns the number of messages received by this rank.
func (c *Comm) MsgsRecv() uint64 { return c.msgsRecv }

// HopsRecv returns the sum of torus hop counts over received messages.
func (c *Comm) HopsRecv() uint64 { return c.hopsRecv }

// HopBytes returns the sum of bytes x hops over received messages —
// the total link traffic this rank's receives imposed on the torus.
// Task-mapping quality (Figure 1) shows up here even when the cost
// model's per-hop latency is too small to move end-to-end times.
func (c *Comm) HopBytes() uint64 { return c.hopBytes }

// Compute advances the simulated clock by d seconds of computation.
// On a straggler rank (see fault.Plan.Stragglers) the charge is scaled
// by the slowdown factor: the slow core takes proportionally longer
// for the same work.
func (c *Comm) Compute(d float64) {
	if c.slow > 1 {
		d *= c.slow
	}
	t0 := c.clock
	c.clock += d
	c.compTime += d
	c.tr.Cost("compute", trace.KindComp, t0, c.clock)
}

// ChargeItems advances the clock by n items at unit cost each; a
// convenience for the per-edge/per-hash/per-vertex charges.
func (c *Comm) ChargeItems(n int, unit float64) {
	if n > 0 {
		c.Compute(float64(n) * unit)
	}
}

// Cores returns the modeled per-node core count (>= 1).
func (c *Comm) Cores() int { return c.cores }

// SetCores sets the modeled per-node core count for ChargeItemsPar.
// Values below 1 are treated as 1, which is bit-identical to the
// single-core model (no division is applied).
func (c *Comm) SetCores(n int) {
	if n < 1 {
		n = 1
	}
	c.cores = n
}

// ChargeItemsPar is ChargeItems for loops that run on the per-rank
// worker pool: the charge divides by the modeled core count, so the
// simulated clock drops alongside the real wall-clock. Serial phases
// (marks, sorts, bucket scans) must keep using ChargeItems — the model
// only credits parallelism where the code actually has it.
func (c *Comm) ChargeItemsPar(n int, unit float64) {
	if n <= 0 {
		return
	}
	d := float64(n) * unit
	if c.cores > 1 {
		d /= float64(c.cores)
	}
	c.Compute(d)
}

// Send transmits data to rank dst with the given tag. The payload slice
// is handed over by reference and must not be mutated by the sender
// afterwards (ranks share one address space; the simulated network does
// not copy). Every payload is framed with a sequence number and
// checksum carried in the modeled message envelope; a nil payload or an
// out-of-range dst is a descriptive panic (recovered by World.Run into
// an error).
func (c *Comm) Send(dst, tag int, data []uint32) {
	c.validateSend(dst, tag, data)
	bytes := messageHeaderBytes + 4*len(data)
	t0 := c.clock
	c.clock += c.world.model.SendOverhead
	c.commTime += c.world.model.SendOverhead
	c.tr.Cost("send", trace.KindComm, t0, c.clock)
	c.bytesSent += uint64(bytes)
	c.msgsSent++
	c.post(dst, tag, data, c.clock)
}

// Recv receives the next message from rank src, which must carry the
// given tag (the SPMD protocols are deterministic; a tag mismatch means
// a protocol bug and panics). It returns the payload and advances the
// simulated clock past the message's arrival. This is the
// paper-faithful single-core receive: the wait and the receive overhead
// serialize into the clock, and nothing is ever hidden (contrast
// Irecv/Wait, which model the communication coprocessor).
//
// The frame's sequence number and checksum are verified on receipt;
// under a bound fault plan, lost or corrupted copies are recovered by
// the NACK-driven retransmission protocol (see recover) and duplicate
// copies are discarded, all charged to the simulated clock as
// communication time. The traffic counters (bytes, messages, hops,
// link loads) count each logical message once, exactly as fault-free,
// so only the clock differs between a faulted and a clean run.
func (c *Comm) Recv(src, tag int) []uint32 {
	msg, bytes := c.takeMessage(src, tag)
	hops := c.world.mapping.Hops(src, c.rank)
	c.hopsRecv += uint64(hops)
	c.hopBytes += uint64(hops) * uint64(bytes)
	c.recordRoute(src, bytes)
	transit := c.world.model.Transit(hops, bytes)
	c.bytesRecv += uint64(bytes)
	c.msgsRecv++
	data := msg.data
	if msg.dropped {
		data, _ = c.recover(src, msg, transit, true)
	} else {
		arrival := msg.departure + transit
		t0 := c.clock
		if arrival > c.clock {
			c.commTime += arrival - c.clock
			c.clock = arrival
		}
		c.clock += c.world.model.RecvOverhead
		c.commTime += c.world.model.RecvOverhead
		c.tr.Cost("recv", trace.KindComm, t0, c.clock)
		if !verifyFrame(msg) {
			data, _ = c.recover(src, msg, transit, false)
		}
	}
	if msg.dupTrail {
		c.discardDup(src, transit)
	}
	return data
}

// SendRecv performs a simultaneous exchange with a partner rank: both
// sides post their send, then receive. With buffered mailboxes this is
// deadlock-free for any pairwise schedule.
func (c *Comm) SendRecv(partner, tag int, data []uint32) []uint32 {
	c.Send(partner, tag, data)
	return c.Recv(partner, tag)
}

// Barrier blocks until all ranks reach it and synchronizes all
// simulated clocks to the maximum plus a log2(P)-stage tree latency.
func (c *Comm) Barrier() {
	_, clk := c.world.barrier.enter(c.rank, c.clock, 0, opMax, c.world.model, c.world.P)
	c.tr.Cost("barrier", trace.KindComm, c.clock, clk)
	c.commTime += clk - c.clock
	c.clock = clk
}
