package comm

import (
	"math"
	"testing"
)

// clockIdentity asserts the ledger invariant every operation maintains:
// clock == compTime + commTime - overlapTime.
func clockIdentity(t *testing.T, c *Comm) {
	t.Helper()
	want := c.CompTime() + c.CommTime() - c.OverlapTime()
	if math.Abs(c.Clock()-want) > 1e-12 {
		t.Errorf("rank %d: clock %.12g != comp %.12g + comm %.12g - overlap %.12g",
			c.Rank(), c.Clock(), c.CompTime(), c.CommTime(), c.OverlapTime())
	}
	if c.OverlapTime() > c.CommTime()+1e-12 {
		t.Errorf("rank %d: overlap %.12g exceeds comm %.12g", c.Rank(), c.OverlapTime(), c.CommTime())
	}
	if c.OverlapTime() < 0 {
		t.Errorf("rank %d: negative overlap %.12g", c.Rank(), c.OverlapTime())
	}
}

// TestIrecvMatchesRecvPayloads: nonblocking receives deliver the same
// payloads as blocking ones, chunked or not.
func TestIrecvMatchesRecvPayloads(t *testing.T) {
	for _, chunk := range []int{0, 3} {
		w := newTestWorld(t, 2)
		_, err := w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				c.IsendChunked(1, 7, []uint32{1, 2, 3, 4, 5, 6, 7}, chunk)
				c.IsendChunked(1, 8, nil, chunk)
			} else {
				ra := c.IrecvChunked(0, 7, chunk)
				rb := c.IrecvChunked(0, 8, chunk)
				got := ra.Wait()
				if len(got) != 7 || got[6] != 7 {
					panic("wrong payload via Wait")
				}
				if second := ra.Wait(); &second[0] != &got[0] {
					panic("second Wait returned a different payload")
				}
				if empty := rb.Wait(); len(empty) != 0 {
					panic("empty payload came back non-empty")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestOverlapHidesTransit: compute charged between Irecv and Wait
// covers the transit, so the async receiver finishes earlier than the
// sync one and books the hidden seconds in OverlapTime.
func TestOverlapHidesTransit(t *testing.T) {
	payload := make([]uint32, 1<<16) // big enough that transit dominates

	run := func(async bool) *Comm {
		w := newTestWorld(t, 2)
		comms, err := w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 1, payload)
				return
			}
			if async {
				req := c.Irecv(0, 1)
				c.Compute(1.0) // plenty to cover the transit
				req.Wait()
			} else {
				c.Recv(0, 1) // serialize the transit, then compute
				c.Compute(1.0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return comms[1]
	}

	async, sync := run(true), run(false)
	clockIdentity(t, async)
	clockIdentity(t, sync)
	if async.OverlapTime() <= 0 {
		t.Fatalf("async receiver hid nothing: overlap=%g", async.OverlapTime())
	}
	if sync.OverlapTime() != 0 {
		t.Fatalf("sync receiver recorded overlap %g", sync.OverlapTime())
	}
	if async.Clock() >= sync.Clock() {
		t.Fatalf("async clock %g not earlier than sync %g", async.Clock(), sync.Clock())
	}
	// The clock saving is at least the audited overlap (it can exceed it
	// by sender-side skew the sync receiver waited out, which the async
	// schedule covers with compute without any wire being busy), and the
	// async schedule never charges more communication.
	if saving := sync.Clock() - async.Clock(); saving < async.OverlapTime()-1e-12 {
		t.Fatalf("clock saving %g below overlap %g", saving, async.OverlapTime())
	}
	if async.CommTime() > sync.CommTime()+1e-12 {
		t.Fatalf("async comm ledger %g exceeds sync %g", async.CommTime(), sync.CommTime())
	}
}

// TestOverlapNeverExceedsTransit: with no compute between post and
// wait, nothing is hidden and the async receive costs exactly the sync
// one.
func TestNoComputeNoOverlap(t *testing.T) {
	w := newTestWorld(t, 2)
	comms, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []uint32{1, 2, 3})
		} else {
			c.Irecv(0, 1).Wait()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := comms[1].OverlapTime(); got != 0 {
		t.Fatalf("overlap %g without any concurrent activity", got)
	}
	clockIdentity(t, comms[1])
}

// TestChunkedOverlapIdentity: chunked nonblocking receives keep the
// ledger identity and hide transit under interleaved compute.
func TestChunkedOverlapIdentity(t *testing.T) {
	payload := make([]uint32, 4096)
	w := newTestWorld(t, 2)
	comms, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.IsendChunked(1, 1, payload, 256)
			return
		}
		req := c.IrecvChunked(0, 1, 256)
		c.Compute(0.5)
		got := req.Wait()
		if len(got) != len(payload) {
			panic("chunked reassembly lost words")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comms {
		clockIdentity(t, c)
	}
	if comms[1].OverlapTime() <= 0 {
		t.Fatal("chunked wait hid nothing")
	}
}

// TestIsendCompletesImmediately: send requests are done at post.
func TestIsendCompletesImmediately(t *testing.T) {
	w := newTestWorld(t, 2)
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Isend(1, 1, []uint32{5})
			if !req.Test() {
				panic("send request not complete at post")
			}
			if req.Wait() != nil {
				panic("send request returned a payload")
			}
		} else {
			c.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTestAdvisory: Test never consumes and eventually turns true once
// the message is buffered and its simulated arrival has passed.
func TestTestAdvisory(t *testing.T) {
	w := newTestWorld(t, 2)
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []uint32{42})
			return
		}
		req := c.Irecv(0, 1)
		c.Compute(1.0) // simulated arrival is surely in the past
		// Wall-clock delivery may lag; Wait regardless and re-Test.
		got := req.Wait()
		if len(got) != 1 || got[0] != 42 {
			panic("wrong payload")
		}
		if !req.Test() {
			panic("Test false on a completed request")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitOrderPerSource: requests from one source must be waited in
// posting order; interleaving sources is fine.
func TestWaitOrderPerSource(t *testing.T) {
	w := newTestWorld(t, 3)
	_, err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(2, 1, []uint32{10})
			c.Send(2, 2, []uint32{11})
		case 1:
			c.Send(2, 3, []uint32{20})
		case 2:
			a := c.Irecv(0, 1)
			b := c.Irecv(1, 3)
			d := c.Irecv(0, 2)
			if got := b.Wait(); got[0] != 20 {
				panic("wrong payload from rank 1")
			}
			if got := a.Wait(); got[0] != 10 {
				panic("wrong first payload from rank 0")
			}
			if got := d.Wait(); got[0] != 11 {
				panic("wrong second payload from rank 0")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
