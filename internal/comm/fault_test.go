package comm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fault"
)

// checkLedger asserts the clock-ledger identity on every rank.
func checkLedger(t *testing.T, comms []*Comm) {
	t.Helper()
	for _, c := range comms {
		want := c.CompTime() + c.CommTime() - c.OverlapTime()
		if math.Abs(c.Clock()-want) > 1e-12 {
			t.Fatalf("rank %d ledger broken: clock %v != comp %v + comm %v - overlap %v",
				c.Rank(), c.Clock(), c.CompTime(), c.CommTime(), c.OverlapTime())
		}
	}
}

// TestRetryClockAccountingPinned pins the recovery protocol's exact
// cost: a dropped-then-retried message costs precisely the NACK timeout
// plus the first backoff plus the retransmitted copy's wire time
// (transit + receive overhead) beyond the fault-free receive, per rank,
// with the ledger identity intact.
func TestRetryClockAccountingPinned(t *testing.T) {
	payload := []uint32{1, 2, 3, 4}
	run := func(plan *fault.Plan) []*Comm {
		w := newTestWorld(t, 2)
		w.SetFault(plan)
		comms, err := w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 5, payload)
			} else {
				got := c.Recv(0, 5)
				if len(got) != 4 || got[3] != 4 {
					panic("payload corrupted through recovery")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return comms
	}

	clean := run(nil)
	// Drop every first copy; CleanAttempt=1 forces the single
	// retransmission clean, so recovery costs exactly one round.
	plan := &fault.Plan{Seed: 1, PDrop: 1, CleanAttempt: 1}
	faulted := run(plan)

	checkLedger(t, clean)
	checkLedger(t, faulted)

	w := newTestWorld(t, 2)
	model := w.Model()
	bytes := messageHeaderBytes + 4*len(payload)
	transit := model.Transit(w.Mapping().Hops(0, 1), bytes)
	wantExtra := plan.Timeout() + plan.Backoff(1) + transit + model.RecvOverhead

	gotExtra := faulted[1].Clock() - clean[1].Clock()
	if math.Abs(gotExtra-wantExtra) > 1e-12 {
		t.Fatalf("retry cost: got extra %v, want timeout+backoff+resend = %v", gotExtra, wantExtra)
	}
	// The whole recovery is communication time; compute is untouched.
	if faulted[1].CompTime() != clean[1].CompTime() {
		t.Fatalf("recovery leaked into compute time: %v vs %v", faulted[1].CompTime(), clean[1].CompTime())
	}
	commExtra := faulted[1].CommTime() - clean[1].CommTime()
	if math.Abs(commExtra-wantExtra) > 1e-12 {
		t.Fatalf("comm time extra %v, want %v", commExtra, wantExtra)
	}
	// The sender's ledger is untouched: recovery is modeled at the
	// receiver, and the logical traffic counters count the message once.
	if faulted[0].Clock() != clean[0].Clock() {
		t.Fatalf("sender clock moved under receiver-side recovery: %v vs %v", faulted[0].Clock(), clean[0].Clock())
	}
	for i := range clean {
		if faulted[i].BytesRecv() != clean[i].BytesRecv() || faulted[i].MsgsRecv() != clean[i].MsgsRecv() ||
			faulted[i].BytesSent() != clean[i].BytesSent() || faulted[i].MsgsSent() != clean[i].MsgsSent() ||
			faulted[i].HopBytes() != clean[i].HopBytes() {
			t.Fatalf("rank %d traffic counters differ between clean and faulted runs", i)
		}
	}
	st := faulted[1].FaultStats()
	if st.Retries != 1 || st.RetrySeconds <= 0 {
		t.Fatalf("retry counters: %+v", st)
	}
	if MergeFaultStats(faulted).InjDrop != 1 {
		t.Fatalf("injection counters: %+v", MergeFaultStats(faulted))
	}
}

func TestCorruptionRecovered(t *testing.T) {
	w := newTestWorld(t, 2)
	w.SetFault(&fault.Plan{Seed: 2, PCorrupt: 1, CleanAttempt: 1})
	payload := []uint32{0xdead, 0xbeef}
	comms, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, payload)
		} else {
			got := c.Recv(0, 1)
			if len(got) != 2 || got[0] != 0xdead || got[1] != 0xbeef {
				panic("corrupted payload delivered")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checkLedger(t, comms)
	st := comms[1].FaultStats()
	if st.ChecksumFails != 1 || st.Retries != 1 {
		t.Fatalf("corruption counters: %+v", st)
	}
	// The sender's wire image was garbled, but the caller's slice —
	// handed over by reference — must not be.
	if payload[0] != 0xdead || payload[1] != 0xbeef {
		t.Fatal("corruption mutated the sender's payload slice")
	}
}

func TestEmptyPayloadCorruptionRecovered(t *testing.T) {
	// Zero-length messages have no payload bits to flip; corruption
	// garbles the envelope checksum instead and recovery still works.
	w := newTestWorld(t, 2)
	w.SetFault(&fault.Plan{Seed: 3, PCorrupt: 1, CleanAttempt: 1})
	comms, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []uint32{})
		} else {
			if got := c.Recv(0, 1); len(got) != 0 {
				panic("ghost payload")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if comms[1].FaultStats().ChecksumFails != 1 {
		t.Fatalf("counters: %+v", comms[1].FaultStats())
	}
}

func TestDuplicateDiscarded(t *testing.T) {
	w := newTestWorld(t, 2)
	w.SetFault(&fault.Plan{Seed: 4, PDuplicate: 1})
	comms, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []uint32{11})
			c.Send(1, 2, []uint32{22})
		} else {
			if got := c.Recv(0, 1); got[0] != 11 {
				panic("wrong first payload")
			}
			if got := c.Recv(0, 2); got[0] != 22 {
				panic("duplicate leaked into the stream")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checkLedger(t, comms)
	st := comms[1].FaultStats()
	if st.DupsDiscarded != 2 {
		t.Fatalf("dup counters: %+v", st)
	}
	// Each logical message is counted once despite two copies on the wire.
	if comms[1].MsgsRecv() != 2 {
		t.Fatalf("msgsRecv = %d, want 2", comms[1].MsgsRecv())
	}
}

func TestDelayArrivesLateButIntact(t *testing.T) {
	run := func(plan *fault.Plan) []*Comm {
		w := newTestWorld(t, 2)
		w.SetFault(plan)
		comms, err := w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 1, []uint32{5})
			} else {
				c.Recv(0, 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return comms
	}
	clean := run(nil)
	faulted := run(&fault.Plan{Seed: 5, PDelay: 1, MaxDelay: 1e-4})
	checkLedger(t, faulted)
	if faulted[1].Clock() <= clean[1].Clock() {
		t.Fatalf("delayed copy did not arrive later: %v vs %v", faulted[1].Clock(), clean[1].Clock())
	}
	if faulted[1].FaultStats().Retries != 0 {
		t.Fatal("a delayed copy must not trigger retransmission")
	}
}

func TestOutageHoldsDeparture(t *testing.T) {
	until := 1e-3
	w := newTestWorld(t, 2)
	w.SetFault(&fault.Plan{Seed: 6, Outages: []fault.Outage{{Src: -1, Dst: 1, From: 0, Until: until}}})
	comms, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []uint32{5})
		} else {
			c.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checkLedger(t, comms)
	if comms[1].Clock() < until {
		t.Fatalf("receiver finished at %v, before the outage lifted at %v", comms[1].Clock(), until)
	}
	if comms[1].FaultStats().Retries != 0 {
		t.Fatal("an outage hold must not trigger retransmission")
	}
}

func TestStragglerScalesCompute(t *testing.T) {
	w := newTestWorld(t, 2)
	w.SetFault(&fault.Plan{Seed: 7, Stragglers: map[int]float64{1: 2}})
	comms, err := w.Run(func(c *Comm) {
		c.Compute(1e-3)
	})
	if err != nil {
		t.Fatal(err)
	}
	checkLedger(t, comms)
	if comms[0].CompTime() != 1e-3 {
		t.Fatalf("rank 0 compute = %v, want 1e-3", comms[0].CompTime())
	}
	if comms[1].CompTime() != 2e-3 {
		t.Fatalf("straggler compute = %v, want 2e-3", comms[1].CompTime())
	}
}

func TestOffloadedRecoveryKeepsLedger(t *testing.T) {
	// The nonblocking path: a dropped transfer forfeits its overlap
	// window and serializes the recovery, but the ledger still balances
	// and the payload survives.
	w := newTestWorld(t, 2)
	w.SetFault(&fault.Plan{Seed: 8, PDrop: 1})
	comms, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend(1, 1, []uint32{1, 2, 3}).Wait()
		} else {
			r := c.Irecv(0, 1)
			c.Compute(5e-6)
			got := r.Wait()
			if len(got) != 3 || got[2] != 3 {
				panic("payload corrupted through offloaded recovery")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checkLedger(t, comms)
	if comms[1].FaultStats().Retries == 0 {
		t.Fatal("no retry recorded on the offloaded path")
	}
}

func TestChunkedUnderFaults(t *testing.T) {
	// Chunked logical messages recover chunk by chunk: moderate fault
	// rates across many chunks, payload identical, ledger intact.
	payload := make([]uint32, 1000)
	for i := range payload {
		payload[i] = uint32(i * 3)
	}
	w := newTestWorld(t, 2)
	w.SetFault(&fault.Plan{Seed: 9, PCorrupt: 0.2, PDrop: 0.2, PDuplicate: 0.2})
	comms, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.SendChunked(1, 1, payload, 64)
		} else {
			got := c.RecvChunked(0, 1, 64)
			if len(got) != len(payload) {
				panic("chunked length mismatch")
			}
			for i := range got {
				if got[i] != payload[i] {
					panic("chunked payload mismatch")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checkLedger(t, comms)
	if MergeFaultStats(comms).Injected() == 0 {
		t.Fatal("plan injected nothing across 17 chunks")
	}
}

func TestFaultedRunDeterministic(t *testing.T) {
	run := func() float64 {
		w := newTestWorld(t, 4)
		w.SetFault(&fault.Plan{Seed: 10, PCorrupt: 0.3, PDrop: 0.3, PDuplicate: 0.2, PDelay: 0.1, MaxDelay: 1e-5})
		comms, err := w.Run(func(c *Comm) {
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			for round := 0; round < 20; round++ {
				c.Send(next, round, []uint32{uint32(c.Rank()), uint32(round)})
				got := c.Recv(prev, round)
				if int(got[0]) != prev || int(got[1]) != round {
					panic("ring payload wrong")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		checkLedger(t, comms)
		return MaxClock(comms)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same plan, different clocks: %v vs %v", a, b)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	w := newTestWorld(t, 2)
	// CleanAttempt < 0 disables the forced-clean bound, so PDrop=1
	// loses every copy and the budget must trip.
	w.SetFault(&fault.Plan{Seed: 11, PDrop: 1, CleanAttempt: -1, MaxAttempts: 4})
	_, err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []uint32{1})
		} else {
			c.Recv(0, 1)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("expected retry-budget error, got %v", err)
	}
}

func TestSendSharpEdges(t *testing.T) {
	cases := []struct {
		name string
		body func(c *Comm)
		want string
	}{
		{"out-of-range", func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(7, 1, []uint32{1})
			}
		}, "out-of-range rank 7"},
		{"negative", func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(-1, 1, []uint32{1})
			}
		}, "out-of-range rank -1"},
		{"nil-payload", func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 1, nil)
			}
		}, "nil payload"},
		{"isend-out-of-range", func(c *Comm) {
			if c.Rank() == 0 {
				c.Isend(99, 1, []uint32{1})
			}
		}, "out-of-range rank 99"},
		{"isend-nil-payload", func(c *Comm) {
			if c.Rank() == 0 {
				c.Isend(1, 1, nil)
			}
		}, "nil payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newTestWorld(t, 2)
			_, err := w.Run(tc.body)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("expected error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestWorldReusableAcrossFaultedRuns(t *testing.T) {
	// Binding and unbinding a plan between runs on the same world must
	// not leak duplicate copies or sequence state across runs.
	w := newTestWorld(t, 2)
	body := func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []uint32{9})
		} else {
			if got := c.Recv(0, 1); got[0] != 9 {
				panic("wrong payload")
			}
		}
	}
	w.SetFault(&fault.Plan{Seed: 13, PDuplicate: 1})
	if _, err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	w.SetFault(nil)
	comms, err := w.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	if !MergeFaultStats(comms).Zero() {
		t.Fatalf("clean run recorded fault activity: %+v", MergeFaultStats(comms))
	}
}
