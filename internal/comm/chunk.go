package comm

// SendChunked transmits data to dst in fixed-length chunks of at most
// maxWords uint32 words each, preceded by a one-word chunk-count
// header. This implements the fixed-length message-buffer discipline of
// §3.1: the paper derives that expected message lengths are O(n/P) and
// then caps physical buffers at a fixed size independent of P and k,
// splitting longer logical messages.
//
// maxWords <= 0 disables chunking and sends in one piece with no
// header; the receiver must use the same maxWords.
//
// Unlike the raw Send, a nil data slice is legal here and means an
// empty logical message: SendChunked frames a logical buffer, and the
// collectives routinely hand it absent per-destination bins.
func (c *Comm) SendChunked(dst, tag int, data []uint32, maxWords int) {
	if data == nil {
		data = emptyPayload
	}
	if maxWords <= 0 {
		c.Send(dst, tag, data)
		return
	}
	sendChunks(func(piece []uint32) { c.Send(dst, tag, piece) }, data, maxWords)
}

// emptyPayload is the canonical zero-length wire payload, substituted
// for nil logical buffers at the chunked-send boundaries.
var emptyPayload = []uint32{}

// RecvChunked receives a logical message sent with SendChunked using
// the same maxWords, reassembling the chunks into one slice.
func (c *Comm) RecvChunked(src, tag int, maxWords int) []uint32 {
	if maxWords <= 0 {
		return c.Recv(src, tag)
	}
	return recvChunks(func() []uint32 { return c.Recv(src, tag) }, maxWords)
}

// sendChunks splits data into the chunk-count header plus fixed-size
// pieces, emitting each through send — the one copy of the framing the
// blocking and offloaded senders share (the receivers must agree on it
// whichever pair is in use).
func sendChunks(send func(piece []uint32), data []uint32, maxWords int) {
	nchunks := (len(data) + maxWords - 1) / maxWords
	send([]uint32{uint32(nchunks)})
	for i := 0; i < nchunks; i++ {
		lo := i * maxWords
		hi := lo + maxWords
		if hi > len(data) {
			hi = len(data)
		}
		send(data[lo:hi])
	}
}

// recvChunks inverts sendChunks, drawing each message through recv.
func recvChunks(recv func() []uint32, maxWords int) []uint32 {
	header := recv()
	if len(header) != 1 {
		panic("comm: malformed chunk header")
	}
	nchunks := int(header[0])
	if nchunks == 0 {
		return nil
	}
	if nchunks == 1 {
		return recv()
	}
	out := make([]uint32, 0, nchunks*maxWords)
	for i := 0; i < nchunks; i++ {
		out = append(out, recv()...)
	}
	return out
}
