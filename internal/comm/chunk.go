package comm

// SendChunked transmits data to dst in fixed-length chunks of at most
// maxWords uint32 words each, preceded by a one-word chunk-count
// header. This implements the fixed-length message-buffer discipline of
// §3.1: the paper derives that expected message lengths are O(n/P) and
// then caps physical buffers at a fixed size independent of P and k,
// splitting longer logical messages.
//
// maxWords <= 0 disables chunking and sends in one piece with no
// header; the receiver must use the same maxWords.
func (c *Comm) SendChunked(dst, tag int, data []uint32, maxWords int) {
	if maxWords <= 0 {
		c.Send(dst, tag, data)
		return
	}
	nchunks := (len(data) + maxWords - 1) / maxWords
	c.Send(dst, tag, []uint32{uint32(nchunks)})
	for i := 0; i < nchunks; i++ {
		lo := i * maxWords
		hi := lo + maxWords
		if hi > len(data) {
			hi = len(data)
		}
		c.Send(dst, tag, data[lo:hi])
	}
}

// RecvChunked receives a logical message sent with SendChunked using
// the same maxWords, reassembling the chunks into one slice.
func (c *Comm) RecvChunked(src, tag int, maxWords int) []uint32 {
	if maxWords <= 0 {
		return c.Recv(src, tag)
	}
	header := c.Recv(src, tag)
	if len(header) != 1 {
		panic("comm: RecvChunked got malformed chunk header")
	}
	nchunks := int(header[0])
	if nchunks == 0 {
		return nil
	}
	if nchunks == 1 {
		return c.Recv(src, tag)
	}
	out := make([]uint32, 0, nchunks*maxWords)
	for i := 0; i < nchunks; i++ {
		out = append(out, c.Recv(src, tag)...)
	}
	return out
}
