package comm

import "sync"

// queue is an unbounded FIFO of messages for one (dst, src) pair.
// Unbounded buffering mirrors eager MPI sends and makes every
// deterministic SPMD schedule deadlock-free regardless of chunk counts
// (a bounded mailbox would deadlock two ranks that stream many chunks
// at each other before receiving). Memory stays bounded in practice
// because the BFS protocols never have more than a level's worth of
// traffic in flight.
type queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []message
	head     int
	poisoned bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(m message) {
	q.mu.Lock()
	q.items = append(q.items, m)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a message is available or the queue is poisoned;
// the bool result is false when poisoned.
func (q *queue) pop() (message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.items) && !q.poisoned {
		q.cond.Wait()
	}
	if q.head >= len(q.items) {
		return message{}, false
	}
	m := q.items[q.head]
	q.items[q.head] = message{} // release payload reference
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return m, true
}

// peek returns the head message without consuming it, never blocking;
// the bool result is false when the queue is currently empty or
// poisoned. Advisory only — see Request.Test.
func (q *queue) peek() (message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.items) || q.poisoned {
		return message{}, false
	}
	return q.items[q.head], true
}

func (q *queue) poison() {
	q.mu.Lock()
	q.poisoned = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *queue) unpoison() {
	q.mu.Lock()
	q.poisoned = false
	q.items = q.items[:0]
	q.head = 0
	q.mu.Unlock()
}
