package comm

import "fmt"

// Group is an ordered sub-communicator: a list of world ranks plus this
// rank's position in it. The 2D BFS communicates within processor-row
// and processor-column groups (fold and expand respectively, §2.2).
type Group struct {
	Ranks []int // world ranks, in group order
	Me    int   // my index within Ranks
}

// Size returns the number of ranks in the group.
func (g Group) Size() int { return len(g.Ranks) }

// World converts a group index to a world rank.
func (g Group) World(i int) int { return g.Ranks[i] }

// Next returns the group index after i (ring order).
func (g Group) Next(i int) int { return (i + 1) % len(g.Ranks) }

// Prev returns the group index before i (ring order).
func (g Group) Prev(i int) int { return (i - 1 + len(g.Ranks)) % len(g.Ranks) }

// Mesh is the logical R x C processor mesh of the 2D partitioning.
// Rank (i, j) has world id i*C + j; the paper's processor-row i is
// {(i, j') : j'} and processor-column j is {(i', j) : i'}.
type Mesh struct {
	R, C int
}

// NewMesh validates and returns an R x C mesh for P = R*C ranks.
func NewMesh(r, c int) (Mesh, error) {
	if r <= 0 || c <= 0 {
		return Mesh{}, fmt.Errorf("comm: mesh dimensions must be positive, got %dx%d", r, c)
	}
	return Mesh{R: r, C: c}, nil
}

// P returns the total rank count R*C.
func (m Mesh) P() int { return m.R * m.C }

// RowOf returns the mesh row of a world rank.
func (m Mesh) RowOf(rank int) int { return rank / m.C }

// ColOf returns the mesh column of a world rank.
func (m Mesh) ColOf(rank int) int { return rank % m.C }

// RankAt returns the world rank at mesh position (i, j).
func (m Mesh) RankAt(i, j int) int { return i*m.C + j }

// RowGroup returns the processor-row group of the given world rank:
// the C ranks sharing its mesh row, ordered by column. Fold (the
// neighbour exchange) runs in this group.
func (m Mesh) RowGroup(rank int) Group {
	i := m.RowOf(rank)
	g := Group{Ranks: make([]int, m.C)}
	for j := 0; j < m.C; j++ {
		g.Ranks[j] = m.RankAt(i, j)
	}
	g.Me = m.ColOf(rank)
	return g
}

// ColGroup returns the processor-column group of the given world rank:
// the R ranks sharing its mesh column, ordered by row. Expand (the
// frontier broadcast) runs in this group.
func (m Mesh) ColGroup(rank int) Group {
	j := m.ColOf(rank)
	g := Group{Ranks: make([]int, m.R)}
	for i := 0; i < m.R; i++ {
		g.Ranks[i] = m.RankAt(i, j)
	}
	g.Me = m.RowOf(rank)
	return g
}
