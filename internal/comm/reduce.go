package comm

import (
	"math/bits"
	"sync"

	"repro/internal/torus"
	"repro/internal/trace"
)

// Reduction op codes for the clock-synchronizing allreduce. The real
// machine ran these on the dedicated tree network; we model them as a
// log2(P)-stage tree with TreeLatency per stage, synchronizing clocks.
type reduceOp int

const (
	opSum reduceOp = iota
	opMax
	opMin
	opOr
	opAnd
)

// clockBarrier implements barrier + integer allreduce with simulated
// clock synchronization. It is generation-stepped: because the SPMD
// programs are deterministic, every rank performs the same sequence of
// collective calls, so one shared structure suffices.
type clockBarrier struct {
	mu   sync.Mutex
	cond *sync.Cond

	count       int
	gen         uint64
	maxClock    float64
	accSet      bool
	acc         uint64
	result      uint64
	resultClock float64
	poisoned    bool
}

func newClockBarrier() *clockBarrier {
	b := &clockBarrier{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// poison wakes all waiters; used when a rank panics so the world can
// fail with an error instead of deadlocking.
func (b *clockBarrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// unpoison resets the barrier after a failed Run so the world can be
// reused.
func (b *clockBarrier) unpoison() {
	b.mu.Lock()
	b.poisoned = false
	b.count = 0
	b.accSet = false
	b.mu.Unlock()
}

// enter contributes (clock, val) to the current generation's reduction
// and returns the combined value and the synchronized clock.
func (b *clockBarrier) enter(rank int, clock float64, val uint64, op reduceOp, model torus.CostModel, p int) (uint64, float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic("comm: collective aborted because a peer rank panicked")
	}
	if !b.accSet {
		b.acc = val
		b.maxClock = clock
		b.accSet = true
	} else {
		b.acc = combine(b.acc, val, op)
		if clock > b.maxClock {
			b.maxClock = clock
		}
	}
	b.count++
	if b.count == p {
		stages := bits.Len(uint(p - 1)) // ceil(log2 p)
		b.result = b.acc
		b.resultClock = b.maxClock + 2*float64(stages)*model.TreeLatency
		b.count = 0
		b.accSet = false
		b.gen++
		b.cond.Broadcast()
		return b.result, b.resultClock
	}
	gen := b.gen
	for b.gen == gen && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned {
		panic("comm: collective aborted because a peer rank panicked")
	}
	return b.result, b.resultClock
}

func combine(a, v uint64, op reduceOp) uint64 {
	switch op {
	case opSum:
		return a + v
	case opMax:
		if v > a {
			return v
		}
		return a
	case opMin:
		if v < a {
			return v
		}
		return a
	case opOr:
		return a | v
	case opAnd:
		return a & v
	default:
		panic("comm: unknown reduce op")
	}
}

func (c *Comm) allreduce(val uint64, op reduceOp) uint64 {
	res, clk := c.world.barrier.enter(c.rank, c.clock, val, op, c.world.model, c.world.P)
	c.tr.Cost("allreduce", trace.KindComm, c.clock, clk)
	c.commTime += clk - c.clock
	c.clock = clk
	return res
}

// AllReduceSum returns the sum of val over all ranks.
func (c *Comm) AllReduceSum(val uint64) uint64 { return c.allreduce(val, opSum) }

// AllReduceMax returns the maximum of val over all ranks.
func (c *Comm) AllReduceMax(val uint64) uint64 { return c.allreduce(val, opMax) }

// AllReduceMin returns the minimum of val over all ranks.
func (c *Comm) AllReduceMin(val uint64) uint64 { return c.allreduce(val, opMin) }

// AllReduceOr returns the logical OR of val over all ranks.
func (c *Comm) AllReduceOr(val bool) bool {
	var v uint64
	if val {
		v = 1
	}
	return c.allreduce(v, opOr) != 0
}

// AllReduceAnd returns the logical AND of val over all ranks.
func (c *Comm) AllReduceAnd(val bool) bool {
	var v uint64
	if val {
		v = 1
	}
	return c.allreduce(v, opAnd) != 0
}
