package comm

import "repro/internal/torus"

// linkKey identifies one directed torus link by its endpoints.
type linkKey struct {
	from, to torus.Coord
}

// recordRoute charges a message's bytes to every directed link on its
// dimension-ordered route. Each rank accumulates into its own map (no
// sharing); World merges after Run. The resulting per-link loads are
// what the Figure 1 task mapping optimizes on the real machine — the
// deterministic clock model has no contention, so congestion shows up
// here rather than in simulated time.
func (c *Comm) recordRoute(src int, bytes int) {
	m := c.world.mapping
	path := m.Torus.Route(m.Coords[src], m.Coords[c.rank])
	for i := 1; i < len(path); i++ {
		if c.linkLoad == nil {
			c.linkLoad = make(map[linkKey]uint64)
		}
		c.linkLoad[linkKey{path[i-1], path[i]}] += uint64(bytes)
	}
}

// LinkLoads merges the per-rank link ledgers of a finished run and
// returns the maximum and total bytes carried by any single directed
// link, plus the number of distinct links used.
func LinkLoads(comms []*Comm) (maxBytes, totalBytes uint64, links int) {
	merged := make(map[linkKey]uint64)
	for _, c := range comms {
		for k, v := range c.linkLoad {
			merged[k] += v
		}
	}
	for _, v := range merged {
		totalBytes += v
		if v > maxBytes {
			maxBytes = v
		}
	}
	return maxBytes, totalBytes, len(merged)
}
