// Package comm provides the simulated SPMD message-passing runtime that
// stands in for MPI on BlueGene/L. A World runs P ranks as goroutines;
// each rank owns a Comm handle with FIFO point-to-point Send/Recv,
// barrier and reduction primitives, and a deterministic simulated clock
// driven by the torus cost model (see DESIGN.md §6).
//
// Everything higher in the stack — all collectives of §3.2 and the BFS
// itself — is written against Comm using only point-to-point messages,
// exactly as the paper implements its collectives.
package comm

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/torus"
	"repro/internal/trace"
)

// message is a point-to-point payload with its simulated departure time.
// seq and sum are the transport frame — a per-peer sequence number and
// payload checksum riding in the modeled 16-byte envelope
// (messageHeaderBytes), so framing adds no wire words. The remaining
// fields are wire-fault markers (see fault.go): orig retains the true
// payload when the wire image was corrupted or lost so a retransmission
// can deliver it, dropped marks a copy the wire lost in transit, and
// dupTrail marks a frame immediately followed by a duplicate copy on
// the FIFO stream.
type message struct {
	tag       int
	data      []uint32
	departure float64

	seq      uint32
	sum      uint32
	orig     []uint32
	dropped  bool
	dupTrail bool
}

// World is a set of P simulated ranks wired all-to-all with FIFO
// channels, placed on a torus by a Mapping, and timed by a CostModel.
type World struct {
	P       int
	mapping *torus.Mapping
	model   torus.CostModel

	// mail[dst][src] carries messages from src to dst in FIFO order.
	mail [][]*queue

	// Central structures for clock-synchronizing operations.
	barrier *clockBarrier

	// tracer, when non-nil, has one Tracer bound per rank at the next
	// Run and records every ledger charge as a span.
	tracer *trace.Recorder

	// fault, when non-nil, is the deterministic fault plan the wire
	// consults on every posted message (see fault.go).
	fault *fault.Plan

	mu       sync.Mutex
	panicked error
}

// Config configures a World.
type Config struct {
	P       int
	Mapping *torus.Mapping // optional; defaults to row-major on a fitted torus
	Model   torus.CostModel
}

// NewWorld creates a world of cfg.P ranks.
func NewWorld(cfg Config) (*World, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("comm: P must be positive, got %d", cfg.P)
	}
	if cfg.Model.Bandwidth == 0 {
		cfg.Model = torus.PresetBlueGeneL()
	}
	if cfg.Mapping == nil {
		m, err := torus.RowMajor(torus.FitTorus(cfg.P), cfg.P)
		if err != nil {
			return nil, err
		}
		cfg.Mapping = m
	}
	if len(cfg.Mapping.Coords) < cfg.P {
		return nil, fmt.Errorf("comm: mapping has %d coords for %d ranks", len(cfg.Mapping.Coords), cfg.P)
	}
	w := &World{
		P:       cfg.P,
		mapping: cfg.Mapping,
		model:   cfg.Model,
		mail:    make([][]*queue, cfg.P),
		barrier: newClockBarrier(),
	}
	for dst := 0; dst < cfg.P; dst++ {
		w.mail[dst] = make([]*queue, cfg.P)
		for src := 0; src < cfg.P; src++ {
			w.mail[dst][src] = newQueue()
		}
	}
	return w, nil
}

// Model returns the cost model the world charges.
func (w *World) Model() torus.CostModel { return w.model }

// Mapping returns the rank placement.
func (w *World) Mapping() *torus.Mapping { return w.mapping }

// SetTrace installs (nil removes) the span recorder the next Run binds
// its ranks to. A Recorder holds one run; engines install the
// configured recorder at entry and remove it when done.
func (w *World) SetTrace(r *trace.Recorder) { w.tracer = r }

// SetFault installs (nil removes) the deterministic fault plan the wire
// consults for every message posted during subsequent Runs. Engines
// install the configured plan at entry and remove it when done, like
// SetTrace.
func (w *World) SetFault(p *fault.Plan) { w.fault = p }

// Fault returns the currently installed fault plan (nil when the wire
// is clean).
func (w *World) Fault() *fault.Plan { return w.fault }

// Run executes body as an SPMD program: one goroutine per rank, each
// receiving its own Comm. It returns the per-rank Comms (for reading
// counters) after all ranks finish. A panic on any rank is recovered,
// recorded, and re-reported as an error after unblocking the others is
// no longer possible — so a panicking SPMD body is a programming error
// that fails fast with context.
func (w *World) Run(body func(c *Comm)) ([]*Comm, error) {
	comms := make([]*Comm, w.P)
	for r := range comms {
		comms[r] = &Comm{world: w, rank: r, slow: 1, cores: 1}
		if w.fault != nil {
			comms[r].slow = w.fault.StragglerFactor(r)
		}
		if w.tracer != nil {
			c := comms[r]
			c.tr = w.tracer.Bind(r, func() float64 { return c.clock })
		}
	}
	var wg sync.WaitGroup
	wg.Add(w.P)
	for r := 0; r < w.P; r++ {
		go func(c *Comm) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					w.mu.Lock()
					if w.panicked == nil {
						w.panicked = fmt.Errorf("comm: rank %d panicked: %v", c.rank, rec)
					}
					w.mu.Unlock()
					// Unblock peers waiting in the barrier or in Recv
					// so the process fails with an error instead of a
					// deadlock.
					w.poisonAll()
				}
			}()
			body(c)
			c.tr.Finish(c.clock, c.compTime, c.commTime, c.overlapTime)
		}(comms[r])
	}
	wg.Wait()
	w.mu.Lock()
	err := w.panicked
	w.panicked = nil
	w.mu.Unlock()
	if err != nil {
		w.unpoisonAll()
	}
	return comms, err
}

func (w *World) poisonAll() {
	w.barrier.poison()
	for _, row := range w.mail {
		for _, q := range row {
			q.poison()
		}
	}
}

// unpoisonAll resets the poison state and drains stale messages so the
// world can be reused after a failed Run.
func (w *World) unpoisonAll() {
	w.barrier.unpoison()
	for _, row := range w.mail {
		for _, q := range row {
			q.unpoison()
		}
	}
}

// MaxClock returns the maximum simulated clock across comms — the
// simulated execution time of the SPMD program.
func MaxClock(comms []*Comm) float64 {
	max := 0.0
	for _, c := range comms {
		if c.clock > max {
			max = c.clock
		}
	}
	return max
}

// MaxCommTime returns the maximum per-rank accumulated communication
// time (the quantity the paper plots as "Comm. Time").
func MaxCommTime(comms []*Comm) float64 {
	max := 0.0
	for _, c := range comms {
		if c.commTime > max {
			max = c.commTime
		}
	}
	return max
}

// MaxOverlapTime returns the maximum per-rank communication time hidden
// under concurrent activity by nonblocking transfers — the seconds the
// asynchronous schedule kept off the critical path (the counterpart of
// MaxCommTime, which it never exceeds).
func MaxOverlapTime(comms []*Comm) float64 {
	max := 0.0
	for _, c := range comms {
		if c.overlapTime > max {
			max = c.overlapTime
		}
	}
	return max
}

// TotalBytes returns the total bytes sent by all ranks.
func TotalBytes(comms []*Comm) uint64 {
	var total uint64
	for _, c := range comms {
		total += c.bytesSent
	}
	return total
}
