package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestLayout2DValidation(t *testing.T) {
	if _, err := NewLayout2D(0, 2, 2); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewLayout2D(10, 0, 2); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := NewLayout2D(10, 2, -1); err == nil {
		t.Error("c<0 accepted")
	}
}

func TestLayout2DOwnership(t *testing.T) {
	l, err := NewLayout2D(24, 2, 3) // P=6, bs=4
	if err != nil {
		t.Fatal(err)
	}
	if l.BlockSize() != 4 {
		t.Fatalf("BlockSize = %d", l.BlockSize())
	}
	// Every vertex has exactly one owner, and owner ranges tile [0, N).
	seen := make([]int, 24)
	for r := 0; r < l.P(); r++ {
		lo, hi := l.OwnedRange(r)
		for v := lo; v < hi; v++ {
			seen[v]++
			if l.OwnerRank(v) != r {
				t.Fatalf("OwnerRank(%d) = %d, but rank %d owns it", v, l.OwnerRank(v), r)
			}
		}
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("vertex %d owned %d times", v, c)
		}
	}
}

// TestLayout2DExpandInvariant: the ranks storing the edge list (matrix
// column) of v form exactly the processor-column of v's owner — the
// structural fact the expand operation relies on.
func TestLayout2DExpandInvariant(t *testing.T) {
	l, err := NewLayout2D(100, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.Vertex(0); v < 100; v++ {
		owner := l.OwnerRank(v)
		_, ownerJ := l.MeshOf(owner)
		if l.ColBlockOf(v) != ownerJ {
			t.Fatalf("vertex %d: column block %d but owner column %d", v, l.ColBlockOf(v), ownerJ)
		}
		// Every storing rank for entries (u, v) is in mesh column ownerJ.
		for u := graph.Vertex(0); u < 100; u += 7 {
			rk := l.StoringRank(u, v)
			_, j := l.MeshOf(rk)
			if j != ownerJ {
				t.Fatalf("entry (%d,%d) stored in column %d, owner column %d", u, v, j, ownerJ)
			}
		}
	}
}

// TestLayout2DFoldInvariant: the owner of any u found on rank (i,j)
// lies in mesh row i — the structural fact the fold operation relies on.
func TestLayout2DFoldInvariant(t *testing.T) {
	l, err := NewLayout2D(60, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for u := graph.Vertex(0); u < 60; u++ {
		for v := graph.Vertex(0); v < 60; v++ {
			rk := l.StoringRank(u, v)
			i, _ := l.MeshOf(rk)
			ownerI, _ := l.MeshOf(l.OwnerRank(u))
			if i != ownerI {
				t.Fatalf("entry (%d,%d) stored in row %d but owner of %d is in row %d", u, v, i, u, ownerI)
			}
		}
	}
}

func TestLayout2DQuick(t *testing.T) {
	f := func(nRaw uint16, rRaw, cRaw uint8, vRaw uint16) bool {
		n := int(nRaw)%500 + 1
		r := int(rRaw)%5 + 1
		c := int(cRaw)%5 + 1
		l, err := NewLayout2D(n, r, c)
		if err != nil {
			return false
		}
		v := graph.Vertex(int(vRaw) % n)
		rank := l.OwnerRank(v)
		if rank < 0 || rank >= l.P() {
			return false
		}
		lo, hi := l.OwnedRange(rank)
		if v < lo || v >= hi {
			return false
		}
		i, j := l.MeshOf(rank)
		if l.RankAt(i, j) != rank {
			return false
		}
		// Owned counts sum to n.
		total := 0
		for q := 0; q < l.P(); q++ {
			total += l.OwnedCount(q)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLayout1DBasics(t *testing.T) {
	l, err := NewLayout1D(10, 3) // bs = 4
	if err != nil {
		t.Fatal(err)
	}
	if l.OwnerRank(0) != 0 || l.OwnerRank(4) != 1 || l.OwnerRank(9) != 2 {
		t.Fatal("1D ownership wrong")
	}
	if l.OwnedCount(0) != 4 || l.OwnedCount(2) != 2 {
		t.Fatalf("1D counts wrong: %d %d", l.OwnedCount(0), l.OwnedCount(2))
	}
	if _, err := NewLayout1D(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewLayout1D(5, 0); err == nil {
		t.Error("p=0 accepted")
	}
}

func visitCSR(g *graph.CSR) func(func(u, v graph.Vertex)) error {
	return func(fn func(u, v graph.Vertex)) error {
		for v := 0; v < g.N; v++ {
			for _, u := range g.Neighbors(graph.Vertex(v)) {
				if graph.Vertex(v) < u {
					fn(graph.Vertex(v), u)
				}
			}
		}
		return nil
	}
}

func TestBuild1DMatchesCSR(t *testing.T) {
	g, err := graph.Generate(graph.Params{N: 300, K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := NewLayout1D(g.N, 4)
	stores, err := Build1D(l, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	totalEdges := int64(0)
	for _, st := range stores {
		totalEdges += int64(len(st.Adj))
		for li := uint32(0); li < uint32(st.OwnedCount()); li++ {
			v := st.GlobalOf(li)
			got := st.Neighbors(li)
			want := g.Neighbors(v)
			if len(got) != len(want) {
				t.Fatalf("vertex %d: %d neighbors, want %d", v, len(got), len(want))
			}
			wantSet := map[graph.Vertex]bool{}
			for _, u := range want {
				wantSet[u] = true
			}
			for _, u := range got {
				if !wantSet[u] {
					t.Fatalf("vertex %d: spurious neighbor %d", v, u)
				}
			}
		}
		// TargetMap covers every adjacency entry.
		for _, u := range st.Adj {
			if _, ok := st.TargetMap.Get(u); !ok {
				t.Fatalf("rank %d: target %d missing from TargetMap", st.Rank, u)
			}
		}
		if st.TargetCount != st.TargetMap.Len() {
			t.Fatalf("rank %d: TargetCount %d != map len %d", st.Rank, st.TargetCount, st.TargetMap.Len())
		}
	}
	if totalEdges != 2*g.NumEdges() {
		t.Fatalf("total directed entries %d, want %d", totalEdges, 2*g.NumEdges())
	}
}

func TestBuild2DCoversAllEntries(t *testing.T) {
	g, err := graph.Generate(graph.Params{N: 240, K: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, mesh := range [][2]int{{1, 1}, {2, 3}, {4, 4}, {1, 6}, {6, 1}} {
		l, err := NewLayout2D(g.N, mesh[0], mesh[1])
		if err != nil {
			t.Fatal(err)
		}
		stores, err := Build2D(l, visitCSR(g))
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct every column from the distributed partial lists
		// and compare against the CSR.
		for v := graph.Vertex(0); int(v) < g.N; v++ {
			var rebuilt []graph.Vertex
			j := l.ColBlockOf(v)
			for i := 0; i < l.R; i++ {
				st := stores[l.RankAt(i, j)]
				part := st.PartialList(v)
				for _, u := range part {
					if l.RowIndexOf(u) != i {
						t.Fatalf("mesh %v: entry (%d,%d) on wrong row %d", mesh, u, v, i)
					}
				}
				rebuilt = append(rebuilt, part...)
			}
			want := g.Neighbors(v)
			if len(rebuilt) != len(want) {
				t.Fatalf("mesh %v: vertex %d rebuilt %d entries, want %d", mesh, v, len(rebuilt), len(want))
			}
			wantSet := map[graph.Vertex]int{}
			for _, u := range want {
				wantSet[u]++
			}
			for _, u := range rebuilt {
				wantSet[u]--
				if wantSet[u] < 0 {
					t.Fatalf("mesh %v: vertex %d spurious entry %d", mesh, v, u)
				}
			}
		}
	}
}

func TestBuild2DRowNeed(t *testing.T) {
	g, err := graph.Generate(graph.Params{N: 200, K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout2D(g.N, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := Build2D(l, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.Vertex(0); int(v) < g.N; v++ {
		owner := stores[l.OwnerRank(v)]
		li := owner.LocalOf(v)
		j := l.ColBlockOf(v)
		for i := 0; i < l.R; i++ {
			st := stores[l.RankAt(i, j)]
			nonEmpty := len(st.PartialList(v)) > 0
			if owner.NeedsRow(li, i) != nonEmpty {
				t.Fatalf("vertex %d row %d: NeedsRow=%v but list non-empty=%v",
					v, i, owner.NeedsRow(li, i), nonEmpty)
			}
		}
	}
}

// TestBuild2DNonEmptyColumnsBound checks the §2.4.1 memory argument:
// the number of non-empty partial edge lists per rank stays O(n/P + k)
// rather than O(n/C).
func TestBuild2DNonEmptyColumnsBound(t *testing.T) {
	g, err := graph.Generate(graph.Params{N: 4000, K: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout2D(g.N, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := Build2D(l, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		// Upper bound: number of entries on the rank (each non-empty
		// column has >= 1 entry) and the trivial n/C bound.
		if st.NonEmptyColumns() > len(st.Rows) {
			t.Fatalf("rank %d: %d non-empty columns with %d entries", st.Rank, st.NonEmptyColumns(), len(st.Rows))
		}
		// The expected count is ~ (n/P)*k for this regime; assert it is
		// well below the dense n/C bound.
		dense := g.N / l.C
		if st.NonEmptyColumns() >= dense {
			t.Fatalf("rank %d: non-empty columns %d not below dense bound %d", st.Rank, st.NonEmptyColumns(), dense)
		}
	}
}

func TestBuild2DRowMapCoversRows(t *testing.T) {
	g, err := graph.Generate(graph.Params{N: 150, K: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := NewLayout2D(g.N, 2, 2)
	stores, err := Build2D(l, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		distinct := map[graph.Vertex]bool{}
		for _, u := range st.Rows {
			distinct[u] = true
			if _, ok := st.RowMap.Get(u); !ok {
				t.Fatalf("rank %d: row %d missing from RowMap", st.Rank, u)
			}
		}
		if st.RowCount != len(distinct) {
			t.Fatalf("rank %d: RowCount %d != distinct rows %d", st.Rank, st.RowCount, len(distinct))
		}
	}
}

func TestLayout2DOneDimensionalEquivalence(t *testing.T) {
	// R=1 reduces to the conventional 1D partitioning: each rank stores
	// full edge lists of its owned vertices.
	g, err := graph.Generate(graph.Params{N: 120, K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := NewLayout2D(g.N, 1, 4)
	stores, err := Build2D(l2, visitCSR(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stores {
		for v := st.Lo; v < st.Hi; v++ {
			if len(st.PartialList(v)) != g.Degree(v) {
				t.Fatalf("R=1: vertex %d partial list %d != degree %d", v, len(st.PartialList(v)), g.Degree(v))
			}
		}
	}
}
