// Package partition implements the 1D (vertex) and 2D (edge)
// partitionings of §2.1–2.2 and the per-rank storage of §2.4: blocked
// vertex ownership, partial edge lists indexed only when non-empty, the
// three global→local mappings, and the per-owned-vertex row-need masks
// that let the targeted expand send a frontier vertex only to ranks
// actually holding part of its edge list.
package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Layout2D is the R x C two-dimensional partitioning of §2.2. Vertices
// are split into P = R*C contiguous blocks of size ceil(n/P); block b
// is owned by mesh rank (b mod R, b div R), i.e. world rank
// (b mod R)*C + (b div R). The adjacency matrix is split into R*C block
// rows and C block columns; processor (i,j) stores, for every vertex v
// in block column j, the partial edge list {u : (u,v) in E, block(u)
// mod R == i}.
//
// The conventional 1D partitioning of §2.1 is exactly R = 1 (each rank
// stores full edge lists of its owned vertices and communication is a
// single all-to-all, the fold); R x 1 is the row-wise 1D partition the
// paper also measures in Table 1.
type Layout2D struct {
	N    int // vertices
	R, C int // mesh dimensions
	bs   int // block size = ceil(N/P)
}

// NewLayout2D validates and builds a layout.
func NewLayout2D(n, r, c int) (*Layout2D, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: n must be positive, got %d", n)
	}
	if r <= 0 || c <= 0 {
		return nil, fmt.Errorf("partition: mesh must be positive, got %dx%d", r, c)
	}
	p := r * c
	bs := (n + p - 1) / p
	return &Layout2D{N: n, R: r, C: c, bs: bs}, nil
}

// P returns the number of ranks R*C.
func (l *Layout2D) P() int { return l.R * l.C }

// BlockSize returns the vertex block size ceil(N/P).
func (l *Layout2D) BlockSize() int { return l.bs }

// BlockOf returns the block index of vertex v.
func (l *Layout2D) BlockOf(v graph.Vertex) int { return int(v) / l.bs }

// OwnerRank returns the world rank owning vertex v.
func (l *Layout2D) OwnerRank(v graph.Vertex) int {
	b := l.BlockOf(v)
	return (b % l.R * l.C) + b/l.R
}

// MeshOf returns the mesh coordinates (i, j) of a world rank.
func (l *Layout2D) MeshOf(rank int) (i, j int) { return rank / l.C, rank % l.C }

// RankAt returns the world rank at mesh position (i, j).
func (l *Layout2D) RankAt(i, j int) int { return i*l.C + j }

// BlockOfRank returns the vertex block owned by a world rank.
func (l *Layout2D) BlockOfRank(rank int) int {
	i, j := l.MeshOf(rank)
	return j*l.R + i
}

// OwnedRange returns [lo, hi) global vertex range owned by rank.
func (l *Layout2D) OwnedRange(rank int) (lo, hi graph.Vertex) {
	b := l.BlockOfRank(rank)
	start := b * l.bs
	end := start + l.bs
	if start > l.N {
		start = l.N
	}
	if end > l.N {
		end = l.N
	}
	return graph.Vertex(start), graph.Vertex(end)
}

// OwnedCount returns the number of vertices owned by rank.
func (l *Layout2D) OwnedCount(rank int) int {
	lo, hi := l.OwnedRange(rank)
	return int(hi - lo)
}

// ColBlockOf returns the processor-column index j whose ranks (i', j)
// store the edge lists (matrix column) of vertex v.
func (l *Layout2D) ColBlockOf(v graph.Vertex) int { return l.BlockOf(v) / l.R }

// RowIndexOf returns the mesh row i' of the ranks storing matrix rows
// of vertex u (entries "u appears in an edge list").
func (l *Layout2D) RowIndexOf(u graph.Vertex) int { return l.BlockOf(u) % l.R }

// StoringRank returns the world rank storing matrix entry
// (row u, column v): mesh position (RowIndexOf(u), ColBlockOf(v)).
func (l *Layout2D) StoringRank(u, v graph.Vertex) int {
	return l.RankAt(l.RowIndexOf(u), l.ColBlockOf(v))
}

// Layout1D is the conventional 1D vertex partitioning of §2.1: rank q
// owns the q-th contiguous block of vertices and their full edge lists.
type Layout1D struct {
	N, P int
	bs   int
}

// NewLayout1D validates and builds a layout.
func NewLayout1D(n, p int) (*Layout1D, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: n must be positive, got %d", n)
	}
	if p <= 0 {
		return nil, fmt.Errorf("partition: p must be positive, got %d", p)
	}
	return &Layout1D{N: n, P: p, bs: (n + p - 1) / p}, nil
}

// BlockSize returns ceil(N/P).
func (l *Layout1D) BlockSize() int { return l.bs }

// OwnerRank returns the rank owning vertex v.
func (l *Layout1D) OwnerRank(v graph.Vertex) int { return int(v) / l.bs }

// OwnedRange returns the [lo, hi) vertex range owned by rank.
func (l *Layout1D) OwnedRange(rank int) (lo, hi graph.Vertex) {
	start := rank * l.bs
	end := start + l.bs
	if start > l.N {
		start = l.N
	}
	if end > l.N {
		end = l.N
	}
	return graph.Vertex(start), graph.Vertex(end)
}

// OwnedCount returns the number of vertices owned by rank.
func (l *Layout1D) OwnedCount(rank int) int {
	lo, hi := l.OwnedRange(rank)
	return int(hi - lo)
}
