package partition

import (
	"testing"

	"repro/internal/graph"
)

func weightedTestGraph(t *testing.T, n int, k float64, seed int64) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateWeighted(graph.Params{N: n, K: k, Seed: seed},
		graph.WeightSpec{Dist: graph.WeightUniform, MaxWeight: 30, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuild1DWeightedCarriesWeights(t *testing.T) {
	g := weightedTestGraph(t, 500, 6, 2)
	l, err := NewLayout1D(g.N, 4)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := Build1DWeighted(l, g.VisitWeightedEdges)
	if err != nil {
		t.Fatal(err)
	}
	// Every owned vertex's (neighbor, weight) multiset matches the CSR.
	for _, st := range stores {
		for li := 0; li < st.OwnedCount(); li++ {
			v := st.GlobalOf(uint32(li))
			want := pairCounts(g.Neighbors(v), g.EdgeWeights(v))
			got := pairCounts(st.Neighbors(uint32(li)), st.Weights(uint32(li)))
			if len(want) != len(got) {
				t.Fatalf("vertex %d: %d distinct (u,w) pairs, want %d", v, len(got), len(want))
			}
			for p, c := range want {
				if got[p] != c {
					t.Fatalf("vertex %d: pair %v count %d, want %d", v, p, got[p], c)
				}
			}
		}
	}
	// Unweighted build leaves Wt nil.
	plain, err := Build1D(l, func(fn func(u, v graph.Vertex)) error {
		return g.VisitWeightedEdges(func(u, v graph.Vertex, w uint32) { fn(u, v) })
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range plain {
		if st.Wt != nil {
			t.Fatal("unweighted Build1D allocated weights")
		}
	}
}

func TestBuild2DWeightedCarriesWeights(t *testing.T) {
	g := weightedTestGraph(t, 600, 5, 3)
	for _, mesh := range [][2]int{{1, 4}, {4, 1}, {2, 2}} {
		l, err := NewLayout2D(g.N, mesh[0], mesh[1])
		if err != nil {
			t.Fatal(err)
		}
		stores, err := Build2DWeighted(l, g.VisitWeightedEdges)
		if err != nil {
			t.Fatal(err)
		}
		// The union over ranks of each column's (u, w) entries must be
		// exactly the CSR's adjacency of v with weights.
		for v := 0; v < g.N; v++ {
			got := map[[2]uint32]int{}
			for _, st := range stores {
				rows := st.PartialList(graph.Vertex(v))
				wts := st.PartialWeights(graph.Vertex(v))
				if len(rows) > 0 && len(wts) != len(rows) {
					t.Fatalf("mesh %v: vertex %d: %d rows but %d weights", mesh, v, len(rows), len(wts))
				}
				for i, u := range rows {
					got[[2]uint32{uint32(u), wts[i]}]++
				}
			}
			want := pairCounts(g.Neighbors(graph.Vertex(v)), g.EdgeWeights(graph.Vertex(v)))
			if len(want) != len(got) {
				t.Fatalf("mesh %v: vertex %d: %d distinct pairs, want %d", mesh, v, len(got), len(want))
			}
			for p, c := range want {
				if got[p] != c {
					t.Fatalf("mesh %v: vertex %d: pair %v count %d, want %d", mesh, v, p, got[p], c)
				}
			}
		}
	}
}

func pairCounts(adj []graph.Vertex, wts []uint32) map[[2]uint32]int {
	m := map[[2]uint32]int{}
	for i, u := range adj {
		m[[2]uint32{uint32(u), wts[i]}]++
	}
	return m
}
