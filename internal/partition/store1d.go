package partition

import (
	"repro/internal/graph"
	"repro/internal/localindex"
)

// Store1D is one rank's storage under the 1D partitioning: a local CSR
// over its owned vertices with global target ids, plus the compact
// mapping over all vertices appearing in local edge lists (for the
// sent-neighbors cache, §2.4.3).
type Store1D struct {
	Layout *Layout1D
	Rank   int
	Lo, Hi graph.Vertex // owned range

	Off []int64        // len OwnedCount+1
	Adj []graph.Vertex // global neighbor ids
	// Wt, when non-nil, carries the edge weight parallel to each Adj
	// entry (weight-aware builds only).
	Wt []uint32

	// TargetMap maps every distinct vertex appearing in a local edge
	// list to a compact index in [0, TargetCount); nil until built.
	TargetMap   *localindex.Map
	TargetCount int
}

// OwnedCount returns the number of owned vertices.
func (s *Store1D) OwnedCount() int { return int(s.Hi - s.Lo) }

// LocalOf converts a global owned vertex to its local index.
func (s *Store1D) LocalOf(v graph.Vertex) uint32 { return uint32(v - s.Lo) }

// GlobalOf converts a local index to the global vertex id.
func (s *Store1D) GlobalOf(i uint32) graph.Vertex { return s.Lo + graph.Vertex(i) }

// Neighbors returns the edge list of the owned vertex with local index
// i, as global ids.
func (s *Store1D) Neighbors(i uint32) []graph.Vertex { return s.Adj[s.Off[i]:s.Off[i+1]] }

// Weights returns the edge weights parallel to Neighbors(i), or nil
// when the store was built without weights.
func (s *Store1D) Weights(i uint32) []uint32 {
	if s.Wt == nil {
		return nil
	}
	return s.Wt[s.Off[i]:s.Off[i+1]]
}

// WeightedVisitor streams every undirected edge exactly once with its
// weight, such as graph.CSR.VisitWeightedEdges or a WeightSpec overlay
// on graph.Params.VisitEdges.
type WeightedVisitor func(func(u, v graph.Vertex, w uint32)) error

// liftUnweighted adapts an unweighted edge source to the weighted
// visitor shape (weight 1 everywhere).
func liftUnweighted(visitEdges func(func(u, v graph.Vertex)) error) WeightedVisitor {
	return func(fn func(u, v graph.Vertex, w uint32)) error {
		return visitEdges(func(u, v graph.Vertex) { fn(u, v, 1) })
	}
}

// Build1D constructs the per-rank 1D stores by streaming the edge
// source twice (count, then fill). The edge source is any function that
// visits every undirected edge exactly once, such as
// graph.Params.VisitEdges or a closure over a materialized CSR.
//
// This centralized loader stands in for the parallel file I/O of the
// original system; graph distribution is not part of any measured
// experiment.
func Build1D(l *Layout1D, visitEdges func(func(u, v graph.Vertex)) error) ([]*Store1D, error) {
	return build1D(l, liftUnweighted(visitEdges), false)
}

// Build1DWeighted is Build1D with per-edge weights: the stores carry
// a Wt array parallel to Adj, both directions of an edge holding the
// same weight.
func Build1DWeighted(l *Layout1D, visit WeightedVisitor) ([]*Store1D, error) {
	return build1D(l, visit, true)
}

func build1D(l *Layout1D, visit WeightedVisitor, weighted bool) ([]*Store1D, error) {
	stores := make([]*Store1D, l.P)
	for r := 0; r < l.P; r++ {
		lo, hi := l.OwnedRange(r)
		st := &Store1D{Layout: l, Rank: r, Lo: lo, Hi: hi}
		st.Off = make([]int64, st.OwnedCount()+1)
		stores[r] = st
	}
	count := func(v graph.Vertex) {
		st := stores[l.OwnerRank(v)]
		st.Off[st.LocalOf(v)+1]++
	}
	if err := visit(func(u, v graph.Vertex, w uint32) {
		count(u)
		count(v)
	}); err != nil {
		return nil, err
	}
	for _, st := range stores {
		for i := 1; i < len(st.Off); i++ {
			st.Off[i] += st.Off[i-1]
		}
		st.Adj = make([]graph.Vertex, st.Off[len(st.Off)-1])
		if weighted {
			st.Wt = make([]uint32, len(st.Adj))
		}
		st.TargetMap = localindex.NewMap(len(st.Adj))
	}
	fills := make([][]int64, l.P)
	for r, st := range stores {
		fills[r] = make([]int64, st.OwnedCount())
	}
	place := func(v, target graph.Vertex, w uint32) {
		r := l.OwnerRank(v)
		st := stores[r]
		li := st.LocalOf(v)
		st.Adj[st.Off[li]+fills[r][li]] = target
		if weighted {
			st.Wt[st.Off[li]+fills[r][li]] = w
		}
		fills[r][li]++
	}
	if err := visit(func(u, v graph.Vertex, w uint32) {
		place(u, v, w)
		place(v, u, w)
	}); err != nil {
		return nil, err
	}
	for _, st := range stores {
		next := uint32(0)
		gen := func() uint32 { next++; return next - 1 }
		for _, t := range st.Adj {
			st.TargetMap.GetOrPut(t, gen)
		}
		st.TargetCount = int(next)
	}
	return stores, nil
}
