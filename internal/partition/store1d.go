package partition

import (
	"repro/internal/graph"
	"repro/internal/localindex"
)

// Store1D is one rank's storage under the 1D partitioning: a local CSR
// over its owned vertices with global target ids, plus the compact
// mapping over all vertices appearing in local edge lists (for the
// sent-neighbors cache, §2.4.3).
type Store1D struct {
	Layout *Layout1D
	Rank   int
	Lo, Hi graph.Vertex // owned range

	Off []int64        // len OwnedCount+1
	Adj []graph.Vertex // global neighbor ids

	// TargetMap maps every distinct vertex appearing in a local edge
	// list to a compact index in [0, TargetCount); nil until built.
	TargetMap   *localindex.Map
	TargetCount int
}

// OwnedCount returns the number of owned vertices.
func (s *Store1D) OwnedCount() int { return int(s.Hi - s.Lo) }

// LocalOf converts a global owned vertex to its local index.
func (s *Store1D) LocalOf(v graph.Vertex) uint32 { return uint32(v - s.Lo) }

// GlobalOf converts a local index to the global vertex id.
func (s *Store1D) GlobalOf(i uint32) graph.Vertex { return s.Lo + graph.Vertex(i) }

// Neighbors returns the edge list of the owned vertex with local index
// i, as global ids.
func (s *Store1D) Neighbors(i uint32) []graph.Vertex { return s.Adj[s.Off[i]:s.Off[i+1]] }

// Build1D constructs the per-rank 1D stores by streaming the edge
// source twice (count, then fill). The edge source is any function that
// visits every undirected edge exactly once, such as
// graph.Params.VisitEdges or a closure over a materialized CSR.
//
// This centralized loader stands in for the parallel file I/O of the
// original system; graph distribution is not part of any measured
// experiment.
func Build1D(l *Layout1D, visitEdges func(func(u, v graph.Vertex)) error) ([]*Store1D, error) {
	stores := make([]*Store1D, l.P)
	for r := 0; r < l.P; r++ {
		lo, hi := l.OwnedRange(r)
		st := &Store1D{Layout: l, Rank: r, Lo: lo, Hi: hi}
		st.Off = make([]int64, st.OwnedCount()+1)
		stores[r] = st
	}
	count := func(v graph.Vertex) {
		st := stores[l.OwnerRank(v)]
		st.Off[st.LocalOf(v)+1]++
	}
	if err := visitEdges(func(u, v graph.Vertex) {
		count(u)
		count(v)
	}); err != nil {
		return nil, err
	}
	for _, st := range stores {
		for i := 1; i < len(st.Off); i++ {
			st.Off[i] += st.Off[i-1]
		}
		st.Adj = make([]graph.Vertex, st.Off[len(st.Off)-1])
		st.TargetMap = localindex.NewMap(len(st.Adj))
	}
	fills := make([][]int64, l.P)
	for r, st := range stores {
		fills[r] = make([]int64, st.OwnedCount())
	}
	place := func(v, target graph.Vertex) {
		r := l.OwnerRank(v)
		st := stores[r]
		li := st.LocalOf(v)
		st.Adj[st.Off[li]+fills[r][li]] = target
		fills[r][li]++
	}
	if err := visitEdges(func(u, v graph.Vertex) {
		place(u, v)
		place(v, u)
	}); err != nil {
		return nil, err
	}
	for _, st := range stores {
		next := uint32(0)
		gen := func() uint32 { next++; return next - 1 }
		for _, t := range st.Adj {
			st.TargetMap.GetOrPut(t, gen)
		}
		st.TargetCount = int(next)
	}
	return stores, nil
}
