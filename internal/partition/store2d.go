package partition

import (
	"repro/internal/graph"
	"repro/internal/localindex"
)

// Store2D is one rank's storage under the 2D partitioning (§2.2, §2.4).
// Rank (i, j) stores, for each vertex v in its block column j, the
// partial edge list {u : (u,v) in E, block(u) mod R == i}. Only
// non-empty partial lists are indexed (§2.4.1): ColMap compacts the
// O(n/P) expected non-empty columns, RowMap compacts the O(n/P)
// distinct vertices appearing in any local list. These are the second
// and third global→local mappings of §2.4.2 (the first — owned
// vertices — is plain block arithmetic).
type Store2D struct {
	Layout *Layout2D
	Rank   int
	I, J   int          // mesh coordinates
	Lo, Hi graph.Vertex // owned vertex range

	// Partial edge lists in CSR over compacted non-empty columns.
	ColMap *localindex.Map // global v -> compact column index
	ColIds []graph.Vertex  // compact column index -> global v (ColMap inverse)
	Off    []int64
	Rows   []graph.Vertex // global u ids
	// RowWts, when non-nil, carries the edge weight parallel to each
	// Rows entry (weight-aware builds only).
	RowWts []uint32

	// RowMap indexes every distinct u appearing in Rows, backing the
	// sent-neighbors bitset (§2.4.3).
	RowMap   *localindex.Map
	RowCount int

	// RowNeed marks, for each owned vertex (by local index), which mesh
	// rows i' hold a non-empty partial edge list for it. The targeted
	// expand sends a frontier vertex only to those rows. Packed
	// ceil(R/64) words per vertex.
	RowNeed    []uint64
	rowNeedWpv int // words per vertex
}

// OwnedCount returns the number of owned vertices.
func (s *Store2D) OwnedCount() int { return int(s.Hi - s.Lo) }

// LocalOf converts a global owned vertex id to its local index.
func (s *Store2D) LocalOf(v graph.Vertex) uint32 { return uint32(v - s.Lo) }

// GlobalOf converts a local owned index to the global vertex id.
func (s *Store2D) GlobalOf(i uint32) graph.Vertex { return s.Lo + graph.Vertex(i) }

// PartialList returns the partial edge list stored on this rank for
// global vertex v, or nil if empty. The probe cost is visible through
// ColMap.Probes for the cost model.
func (s *Store2D) PartialList(v graph.Vertex) []graph.Vertex {
	idx, ok := s.ColMap.Get(v)
	if !ok {
		return nil
	}
	return s.Rows[s.Off[idx]:s.Off[idx+1]]
}

// PartialWeights returns the weights parallel to PartialList(v), or
// nil when the store is unweighted or holds no list for v.
func (s *Store2D) PartialWeights(v graph.Vertex) []uint32 {
	if s.RowWts == nil {
		return nil
	}
	idx, ok := s.ColMap.Get(v)
	if !ok {
		return nil
	}
	return s.RowWts[s.Off[idx]:s.Off[idx+1]]
}

// NeedsRow reports whether mesh row i has a non-empty partial edge list
// for owned vertex with local index li.
func (s *Store2D) NeedsRow(li uint32, i int) bool {
	w := int(li)*s.rowNeedWpv + i/64
	return s.RowNeed[w]&(1<<(i%64)) != 0
}

func (s *Store2D) setNeedsRow(li uint32, i int) {
	w := int(li)*s.rowNeedWpv + i/64
	s.RowNeed[w] |= 1 << (i % 64)
}

// NonEmptyColumns returns the number of non-empty partial edge lists on
// this rank (the paper's O(n/P) bound, §2.4.1).
func (s *Store2D) NonEmptyColumns() int { return s.ColMap.Len() }

// MemoryStats summarizes one rank's storage footprint, the quantities
// §2.4.1 argues stay O(n/P): owned vertices, indexed non-empty columns,
// distinct row vertices, and raw edge entries. DenseColumns is the
// n/C bound a naive (index-everything) layout would pay.
type MemoryStats struct {
	OwnedVertices   int
	NonEmptyColumns int
	DistinctRows    int
	EdgeEntries     int
	DenseColumns    int
}

// Memory returns this rank's MemoryStats.
func (s *Store2D) Memory() MemoryStats {
	l := s.Layout
	return MemoryStats{
		OwnedVertices:   s.OwnedCount(),
		NonEmptyColumns: s.NonEmptyColumns(),
		DistinctRows:    s.RowCount,
		EdgeEntries:     len(s.Rows),
		DenseColumns:    l.R * l.BlockSize(), // vertices in my block column
	}
}

// Build2D constructs all per-rank 2D stores by streaming the edge
// source twice. See Build1D for the loader-centralization note.
func Build2D(l *Layout2D, visitEdges func(func(u, v graph.Vertex)) error) ([]*Store2D, error) {
	return build2D(l, liftUnweighted(visitEdges), false)
}

// Build2DWeighted is Build2D with per-edge weights: every partial edge
// list entry carries its weight in RowWts, parallel to Rows.
func Build2DWeighted(l *Layout2D, visit WeightedVisitor) ([]*Store2D, error) {
	return build2D(l, visit, true)
}

func build2D(l *Layout2D, visit WeightedVisitor, weighted bool) ([]*Store2D, error) {
	p := l.P()
	stores := make([]*Store2D, p)
	wpv := (l.R + 63) / 64
	for r := 0; r < p; r++ {
		i, j := l.MeshOf(r)
		lo, hi := l.OwnedRange(r)
		st := &Store2D{
			Layout: l, Rank: r, I: i, J: j, Lo: lo, Hi: hi,
			ColMap:     localindex.NewMap(16),
			RowMap:     localindex.NewMap(16),
			rowNeedWpv: wpv,
		}
		st.RowNeed = make([]uint64, st.OwnedCount()*wpv)
		stores[r] = st
	}
	// Pass 1: discover non-empty columns, count entries, build RowMap
	// and RowNeed.
	counts := make([][]int64, p)
	entry := func(u, v graph.Vertex) {
		// u appears in the edge list (matrix column) of v.
		rk := l.StoringRank(u, v)
		st := stores[rk]
		ci := st.ColMap.GetOrPut(v, func() uint32 {
			counts[rk] = append(counts[rk], 0)
			st.ColIds = append(st.ColIds, v)
			return uint32(len(counts[rk]) - 1)
		})
		counts[rk][ci]++
		st.RowMap.GetOrPut(u, func() uint32 {
			st.RowCount++
			return uint32(st.RowCount - 1)
		})
		// Tell v's owner that mesh row RowIndexOf(u) has a non-empty
		// partial list for v.
		owner := stores[l.OwnerRank(v)]
		owner.setNeedsRow(owner.LocalOf(v), l.RowIndexOf(u))
	}
	if err := visit(func(u, v graph.Vertex, w uint32) {
		entry(u, v)
		entry(v, u)
	}); err != nil {
		return nil, err
	}
	fills := make([][]int64, p)
	for r, st := range stores {
		st.Off = make([]int64, len(counts[r])+1)
		for i, c := range counts[r] {
			st.Off[i+1] = st.Off[i] + c
		}
		st.Rows = make([]graph.Vertex, st.Off[len(st.Off)-1])
		if weighted {
			st.RowWts = make([]uint32, len(st.Rows))
		}
		fills[r] = make([]int64, len(counts[r]))
	}
	// Pass 2: fill rows (and their weights when carried).
	place := func(u, v graph.Vertex, w uint32) {
		rk := l.StoringRank(u, v)
		st := stores[rk]
		ci, _ := st.ColMap.Get(v)
		st.Rows[st.Off[ci]+fills[rk][ci]] = u
		if weighted {
			st.RowWts[st.Off[ci]+fills[rk][ci]] = w
		}
		fills[rk][ci]++
	}
	if err := visit(func(u, v graph.Vertex, w uint32) {
		place(u, v, w)
		place(v, u, w)
	}); err != nil {
		return nil, err
	}
	return stores, nil
}
