package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{N: 0, K: 1}).validate(); err == nil {
		t.Error("N=0 accepted")
	}
	if err := (Params{N: 10, K: -1}).validate(); err == nil {
		t.Error("K<0 accepted")
	}
	if err := (Params{N: 10, K: 10}).validate(); err == nil {
		t.Error("K>N-1 accepted")
	}
	if err := (Params{N: 10, K: 3}).validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestPairFromIndex(t *testing.T) {
	n := int64(6)
	idx := int64(0)
	for u := int64(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			gu, gv := pairFromIndex(idx, n)
			if int64(gu) != u || int64(gv) != v {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}

func TestPairFromIndexLargeN(t *testing.T) {
	// Exercise the float fixup with big n at row boundaries.
	n := int64(1 << 20)
	rowStart := func(u int64) int64 { return u*n - u*(u+1)/2 }
	for _, u := range []int64{0, 1, 1000, n / 2, n - 2} {
		for _, off := range []int64{0, 1} {
			idx := rowStart(u) + off
			if idx >= n*(n-1)/2 {
				continue
			}
			gu, gv := pairFromIndex(idx, n)
			if int64(gu) != u || int64(gv) != u+1+off {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, u+1+off)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{N: 2000, K: 8, Seed: 42}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Adj) != len(b.Adj) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Adj), len(b.Adj))
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatalf("adjacency differs at %d", i)
		}
	}
	c, err := Generate(Params{N: 2000, K: 8, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Adj) == len(a.Adj) {
		same := true
		for i := range a.Adj {
			if a.Adj[i] != c.Adj[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGenerateAverageDegree(t *testing.T) {
	for _, k := range []float64{2, 10, 50} {
		g, err := Generate(Params{N: 20000, K: k, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		got := g.AvgDegree()
		// Mean degree concentrates tightly: stddev of avg degree is
		// about sqrt(2k/n); allow 6 sigma.
		tol := 6 * math.Sqrt(2*k/20000)
		if math.Abs(got-k) > tol {
			t.Errorf("K=%g: measured avg degree %g beyond tolerance %g", k, got, tol)
		}
	}
}

func TestGenerateEdgesValid(t *testing.T) {
	p := Params{N: 500, K: 6, Seed: 3}
	seen := map[[2]Vertex]bool{}
	err := p.VisitEdges(func(u, v Vertex) {
		if u >= v {
			t.Fatalf("edge (%d,%d) not ordered", u, v)
		}
		if int(v) >= p.N {
			t.Fatalf("edge (%d,%d) out of range", u, v)
		}
		key := [2]Vertex{u, v}
		if seen[key] {
			t.Fatalf("duplicate edge (%d,%d)", u, v)
		}
		seen[key] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no edges generated")
	}
}

func TestGenerateSymmetric(t *testing.T) {
	g, err := Generate(Params{N: 1000, K: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Build neighbor sets and check symmetry.
	adj := make([]map[Vertex]bool, g.N)
	for v := 0; v < g.N; v++ {
		adj[v] = map[Vertex]bool{}
		for _, u := range g.Neighbors(Vertex(v)) {
			if u == Vertex(v) {
				t.Fatalf("self loop at %d", v)
			}
			adj[v][u] = true
		}
	}
	for v := 0; v < g.N; v++ {
		for u := range adj[v] {
			if !adj[u][Vertex(v)] {
				t.Fatalf("edge (%d,%d) not symmetric", v, u)
			}
		}
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	g, err := Generate(Params{N: 1, K: 0, Seed: 1})
	if err != nil || g.NumEdges() != 0 {
		t.Fatalf("single vertex: %v, edges=%d", err, g.NumEdges())
	}
	g, err = Generate(Params{N: 100, K: 0, Seed: 1})
	if err != nil || g.NumEdges() != 0 {
		t.Fatalf("K=0: %v, edges=%d", err, g.NumEdges())
	}
	// p = 1: complete graph.
	g, err = Generate(Params{N: 20, K: 19, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 20*19/2 {
		t.Fatalf("complete graph edges = %d, want %d", g.NumEdges(), 20*19/2)
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(4, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(1), g.Degree(0))
	}
	if _, err := FromEdges(4, [][2]Vertex{{2, 2}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := FromEdges(4, [][2]Vertex{{0, 9}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestBFSPathGraph(t *testing.T) {
	g, err := FromEdges(5, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	levels := BFS(g, 0)
	for v, want := range []int32{0, 1, 2, 3, 4} {
		if levels[v] != want {
			t.Errorf("level[%d] = %d, want %d", v, levels[v], want)
		}
	}
	levels = BFS(g, 2)
	for v, want := range []int32{2, 1, 0, 1, 2} {
		if levels[v] != want {
			t.Errorf("from 2: level[%d] = %d, want %d", v, levels[v], want)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g, err := FromEdges(4, [][2]Vertex{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	levels := BFS(g, 0)
	if levels[2] != Unreached || levels[3] != Unreached {
		t.Error("unreachable vertices got levels")
	}
	if Distance(g, 0, 3) != Unreached {
		t.Error("Distance across components not Unreached")
	}
	if Distance(g, 2, 3) != 1 {
		t.Error("Distance(2,3) != 1")
	}
	if Distance(g, 1, 1) != 0 {
		t.Error("Distance(v,v) != 0")
	}
}

// TestBFSLevelsConsistent: every edge spans at most one level and every
// reached non-source vertex has a neighbor one level closer.
func TestBFSLevelsConsistent(t *testing.T) {
	g, err := Generate(Params{N: 3000, K: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	src := LargestComponentVertex(g)
	levels := BFS(g, src)
	if levels[src] != 0 {
		t.Fatal("source level != 0")
	}
	for v := 0; v < g.N; v++ {
		lv := levels[v]
		if lv == Unreached {
			for _, u := range g.Neighbors(Vertex(v)) {
				if levels[u] != Unreached {
					t.Fatalf("unreached vertex %d adjacent to reached %d", v, u)
				}
			}
			continue
		}
		hasParent := lv == 0
		for _, u := range g.Neighbors(Vertex(v)) {
			lu := levels[u]
			if lu == Unreached {
				t.Fatalf("reached vertex %d adjacent to unreached %d", v, u)
			}
			d := lu - lv
			if d < -1 || d > 1 {
				t.Fatalf("edge (%d,%d) spans levels %d,%d", v, u, lv, lu)
			}
			if lu == lv-1 {
				hasParent = true
			}
		}
		if !hasParent {
			t.Fatalf("vertex %d at level %d has no parent", v, lv)
		}
	}
}

func TestEccentricityAndDiameterEstimate(t *testing.T) {
	g, err := Generate(Params{N: 10000, K: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	src := LargestComponentVertex(g)
	ecc, reached := Eccentricity(g, src)
	if reached < g.N/2 {
		t.Fatalf("giant component too small: %d", reached)
	}
	est := ExpectedDiameter(g.N, 8)
	if float64(ecc) < est/2 || float64(ecc) > est*3 {
		t.Errorf("eccentricity %d far from log n / log k estimate %.1f", ecc, est)
	}
	if !math.IsInf(ExpectedDiameter(10, 1), 1) {
		t.Error("ExpectedDiameter with k<=1 should be infinite")
	}
}

// TestDistanceQuick: Distance agrees with full BFS levels.
func TestDistanceQuick(t *testing.T) {
	g, err := Generate(Params{N: 400, K: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	f := func(sRaw, tRaw uint16) bool {
		s := Vertex(int(sRaw) % g.N)
		dst := Vertex(int(tRaw) % g.N)
		levels := BFS(g, s)
		return Distance(g, s, dst) == levels[dst]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g, err := FromEdges(4, [][2]Vertex{{0, 1}, {0, 2}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	hist := g.DegreeHistogram()
	if hist[1] != 3 || hist[3] != 1 {
		t.Fatalf("hist = %v", hist)
	}
}
