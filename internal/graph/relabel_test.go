package graph

import "testing"

func TestRelabelPreservesStructure(t *testing.T) {
	g, err := Generate(Params{N: 2000, K: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rg, perm := Relabel(g, 99)
	if rg.N != g.N || len(rg.Adj) != len(g.Adj) {
		t.Fatalf("size changed: %d/%d vs %d/%d", rg.N, len(rg.Adj), g.N, len(g.Adj))
	}
	// Degrees transport through the permutation.
	for v := 0; v < g.N; v++ {
		if g.Degree(Vertex(v)) != rg.Degree(perm[v]) {
			t.Fatalf("degree of %d changed under relabeling", v)
		}
	}
	// Adjacency transports: perm(N(v)) == N(perm(v)) as sets.
	for v := 0; v < g.N; v += 37 {
		want := map[Vertex]bool{}
		for _, u := range g.Neighbors(Vertex(v)) {
			want[perm[u]] = true
		}
		for _, u := range rg.Neighbors(perm[v]) {
			if !want[u] {
				t.Fatalf("vertex %d: spurious neighbor %d after relabel", v, u)
			}
			delete(want, u)
		}
		if len(want) != 0 {
			t.Fatalf("vertex %d: missing neighbors after relabel", v)
		}
	}
}

func TestRelabelBFSEquivariant(t *testing.T) {
	g, err := Generate(Params{N: 1500, K: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rg, perm := Relabel(g, 7)
	src := LargestComponentVertex(g)
	orig := BFS(g, src)
	rel := BFS(rg, perm[src])
	for v := 0; v < g.N; v++ {
		if orig[v] != rel[perm[v]] {
			t.Fatalf("level of %d changed: %d vs %d", v, orig[v], rel[perm[v]])
		}
	}
}

func TestRelabelDeterministic(t *testing.T) {
	g, err := Generate(Params{N: 500, K: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, p1 := Relabel(g, 3)
	_, p2 := Relabel(g, 3)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("relabel not deterministic")
		}
	}
	_, p3 := Relabel(g, 4)
	same := true
	for i := range p1 {
		if p1[i] != p3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical permutations")
	}
}

func TestInversePerm(t *testing.T) {
	perm := []Vertex{2, 0, 3, 1}
	inv := InversePerm(perm)
	for old, nw := range perm {
		if inv[nw] != Vertex(old) {
			t.Fatalf("inverse wrong at %d", old)
		}
	}
}

func TestRelabelKeepsWeights(t *testing.T) {
	g, err := GenerateWeighted(Params{N: 400, K: 5, Seed: 6},
		WeightSpec{Dist: WeightUniform, MaxWeight: 90, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rg, perm := Relabel(g, 3)
	if !rg.Weighted() {
		t.Fatal("relabel dropped the edge weights")
	}
	for v := 0; v < g.N; v++ {
		want := map[Vertex]uint32{}
		for i := g.Off[v]; i < g.Off[v+1]; i++ {
			want[perm[g.Adj[i]]] = g.W[i]
		}
		nv := perm[v]
		for i := rg.Off[nv]; i < rg.Off[nv+1]; i++ {
			if want[rg.Adj[i]] != rg.W[i] {
				t.Fatalf("vertex %d->%d: edge to %d weight %d, want %d",
					v, nv, rg.Adj[i], rg.W[i], want[rg.Adj[i]])
			}
		}
	}
	// Shortest paths are invariant under relabeling.
	src := LargestComponentVertex(g)
	want := Dijkstra(g, src)
	got := Dijkstra(rg, perm[src])
	for v := range want {
		if got[perm[v]] != want[v] {
			t.Fatalf("dist of %d changed under relabel: %d vs %d", v, got[perm[v]], want[v])
		}
	}
}
