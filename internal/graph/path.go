package graph

import "fmt"

// PathFromLevels reconstructs one shortest path src→dst from a BFS
// level labeling (as produced by the distributed engines after level
// assembly): starting at dst, repeatedly step to any neighbor exactly
// one level closer to the source. The paper's motivating application
// (§1) is exactly this — the relationship between two entities in a
// semantic graph is read off the shortest path between them.
//
// levels must be a labeling from src over g (levels[src] == 0). The
// returned path is [src, ..., dst] with len = levels[dst]+1. An error
// is returned if dst was not reached or the labeling is inconsistent
// with g.
func PathFromLevels(g *CSR, levels []int32, src, dst Vertex) ([]Vertex, error) {
	if len(levels) != g.N {
		return nil, fmt.Errorf("graph: levels has %d entries for %d vertices", len(levels), g.N)
	}
	if levels[src] != 0 {
		return nil, fmt.Errorf("graph: levels[%d] = %d, not a labeling from that source", src, levels[src])
	}
	if levels[dst] == Unreached {
		return nil, fmt.Errorf("graph: vertex %d not reached from %d", dst, src)
	}
	path := make([]Vertex, levels[dst]+1)
	cur := dst
	for l := levels[dst]; l > 0; l-- {
		path[l] = cur
		found := false
		for _, u := range g.Neighbors(cur) {
			if levels[u] == l-1 {
				cur = u
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("graph: vertex %d at level %d has no parent — inconsistent labeling", cur, l)
		}
	}
	path[0] = cur
	if cur != src {
		return nil, fmt.Errorf("graph: walk ended at %d, not source %d — inconsistent labeling", cur, src)
	}
	return path, nil
}

// ValidatePath checks that path is a genuine path in g from src to dst
// (consecutive vertices adjacent, endpoints correct).
func ValidatePath(g *CSR, path []Vertex, src, dst Vertex) error {
	if len(path) == 0 {
		return fmt.Errorf("graph: empty path")
	}
	if path[0] != src || path[len(path)-1] != dst {
		return fmt.Errorf("graph: path endpoints (%d,%d), want (%d,%d)",
			path[0], path[len(path)-1], src, dst)
	}
	for i := 1; i < len(path); i++ {
		adjacent := false
		for _, u := range g.Neighbors(path[i-1]) {
			if u == path[i] {
				adjacent = true
				break
			}
		}
		if !adjacent {
			return fmt.Errorf("graph: path step %d→%d is not an edge", path[i-1], path[i])
		}
	}
	return nil
}
