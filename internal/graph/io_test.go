package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := Generate(Params{N: 500, K: 5, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			back.N, back.NumEdges(), g.N, g.NumEdges())
	}
	for v := 0; v < g.N; v++ {
		want := map[Vertex]bool{}
		for _, u := range g.Neighbors(Vertex(v)) {
			want[u] = true
		}
		for _, u := range back.Neighbors(Vertex(v)) {
			if !want[u] {
				t.Fatalf("vertex %d: spurious neighbor %d after round trip", v, u)
			}
		}
		if len(back.Neighbors(Vertex(v))) != len(want) {
			t.Fatalf("vertex %d: neighbor count changed", v)
		}
	}
}

func TestReadEdgeListFormats(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n\n# comment\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.NumEdges() != 3 {
		t.Fatalf("triangle parse: n=%d m=%d", g.N, g.NumEdges())
	}
	// Header fixes n beyond max id; duplicates merge; reversed order.
	g, err = ReadEdgeList(strings.NewReader("# n 10\n5 2\n2 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 10 || g.NumEdges() != 1 {
		t.Fatalf("header parse: n=%d m=%d", g.N, g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",              // empty, no header
		"1 1\n",         // self loop
		"1\n",           // malformed
		"a b\n",         // non-numeric
		"# n zero\n1 2", // bad header
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}
