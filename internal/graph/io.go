package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a plain-text edge list: one
// "u v" pair per line ("u v w" for weighted graphs), each undirected
// edge once (u < v), preceded by a header line "# n <vertices>" (and
// "# weighted" for weighted graphs). The format round-trips through
// ReadEdgeList and matches cmd/graphgen's -edges output (which has no
// header; ReadEdgeList then infers n).
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# n %d\n", g.N); err != nil {
		return err
	}
	if g.Weighted() {
		if _, err := fmt.Fprintln(bw, "# weighted"); err != nil {
			return err
		}
	}
	for v := 0; v < g.N; v++ {
		for i := g.Off[v]; i < g.Off[v+1]; i++ {
			u := g.Adj[i]
			if Vertex(v) >= u {
				continue
			}
			var err error
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", v, u, g.W[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, u)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteWeightedEdgeList writes a weighted graph's "u v w" edge list;
// it rejects unweighted graphs so weight-dropping is always explicit.
func WriteWeightedEdgeList(w io.Writer, g *CSR) error {
	if !g.Weighted() {
		return fmt.Errorf("graph: WriteWeightedEdgeList on an unweighted graph")
	}
	return WriteEdgeList(w, g)
}

// ReadEdgeList parses a plain-text edge list: one "u v" pair (or
// "u v w" weighted triple) per line, blank lines ignored, lines
// starting with '#' treated as comments except the optional "# n
// <count>" and "# weighted" headers. Every line must have the same
// arity — an edge list cannot be half-weighted, and a stray third
// column is a weight, never silently dropped. Weights must be integers
// in [1, 2^32); malformed or zero weights are rejected. Without a
// header, n is max id + 1. Self-loops are rejected; duplicate edges
// are merged, but a duplicate that disagrees on weight is rejected.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges [][2]Vertex
	var weights []uint32
	n := 0
	weighted := false // saw a "# weighted" header or a 3-column line
	sawColumns := 0   // arity of the first edge line (0 until one is seen)
	seen := map[[2]Vertex]int{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 3 && fields[1] == "n" {
				v, err := strconv.Atoi(fields[2])
				if err != nil || v <= 0 {
					return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineNo, fields[2])
				}
				n = v
			}
			if len(fields) == 2 && fields[1] == "weighted" {
				if sawColumns == 2 {
					return nil, fmt.Errorf("graph: line %d: '# weighted' header after unweighted edge lines", lineNo)
				}
				weighted = true
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: expected 'u v' or 'u v w', got %q", lineNo, line)
		}
		if sawColumns == 0 {
			sawColumns = len(fields)
			if sawColumns == 3 {
				weighted = true
			} else if weighted {
				return nil, fmt.Errorf("graph: line %d: weighted edge list needs 'u v w', got %q", lineNo, line)
			}
		} else if len(fields) != sawColumns {
			return nil, fmt.Errorf("graph: line %d: mixed %d- and %d-column edge lines", lineNo, sawColumns, len(fields))
		}
		u64, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v64, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		wt := uint32(1)
		if len(fields) == 3 {
			w64, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge weight %q: %v", lineNo, fields[2], err)
			}
			if w64 == 0 {
				return nil, fmt.Errorf("graph: line %d: edge weight must be positive", lineNo)
			}
			wt = uint32(w64)
		}
		u, v := Vertex(u64), Vertex(v64)
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop at %d", lineNo, u)
		}
		if u > v {
			u, v = v, u
		}
		key := [2]Vertex{u, v}
		if idx, ok := seen[key]; ok {
			if weighted && weights[idx] != wt {
				return nil, fmt.Errorf("graph: line %d: edge (%d,%d) repeated with weight %d, previously %d",
					lineNo, u, v, wt, weights[idx])
			}
			continue
		}
		seen[key] = len(edges)
		edges = append(edges, key)
		weights = append(weights, wt)
		if int(v)+1 > n {
			n = int(v) + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("graph: empty edge list and no vertex-count header")
	}
	if weighted {
		return FromWeightedEdges(n, edges, weights)
	}
	return FromEdges(n, edges)
}

// ReadWeightedEdgeList parses an edge list that must carry weights; an
// unweighted input is rejected rather than silently lifted to unit
// weights.
func ReadWeightedEdgeList(r io.Reader) (*CSR, error) {
	g, err := ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	if !g.Weighted() {
		return nil, fmt.Errorf("graph: edge list carries no weights; use ReadEdgeList")
	}
	return g, nil
}
