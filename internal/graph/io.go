package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a plain-text edge list: one
// "u v" pair per line, each undirected edge once (u < v), preceded by
// a header line "# n <vertices>". The format round-trips through
// ReadEdgeList and matches cmd/graphgen's -edges output (which has no
// header; ReadEdgeList then infers n).
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# n %d\n", g.N); err != nil {
		return err
	}
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(Vertex(v)) {
			if Vertex(v) < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a plain-text edge list: one "u v" pair per line,
// blank lines ignored, lines starting with '#' treated as comments
// except an optional "# n <count>" header fixing the vertex count.
// Without a header, n is max id + 1. Self-loops are rejected; duplicate
// edges are merged.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges [][2]Vertex
	n := 0
	seen := map[[2]Vertex]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 3 && fields[1] == "n" {
				v, err := strconv.Atoi(fields[2])
				if err != nil || v <= 0 {
					return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineNo, fields[2])
				}
				n = v
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected 'u v', got %q", lineNo, line)
		}
		u64, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v64, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		u, v := Vertex(u64), Vertex(v64)
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop at %d", lineNo, u)
		}
		if u > v {
			u, v = v, u
		}
		key := [2]Vertex{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, key)
		if int(v)+1 > n {
			n = int(v) + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("graph: empty edge list and no vertex-count header")
	}
	return FromEdges(n, edges)
}
