package graph

import "testing"

func TestWeightSpecDeterministicSymmetricPositive(t *testing.T) {
	for _, dist := range []WeightDist{WeightUniform, WeightExponential, WeightUnit} {
		spec := WeightSpec{Dist: dist, MaxWeight: 64, Seed: 7}
		for u := Vertex(0); u < 50; u++ {
			for v := u + 1; v < 50; v++ {
				w := spec.WeightOf(u, v)
				if w != spec.WeightOf(v, u) {
					t.Fatalf("%v: weight of (%d,%d) not symmetric", dist, u, v)
				}
				if w != spec.WeightOf(u, v) {
					t.Fatalf("%v: weight of (%d,%d) not deterministic", dist, u, v)
				}
				if w < 1 || w > 64 {
					t.Fatalf("%v: weight %d of (%d,%d) outside [1,64]", dist, w, u, v)
				}
				if dist == WeightUnit && w != 1 {
					t.Fatalf("unit weight draw returned %d", w)
				}
			}
		}
	}
}

func TestWeightSpecSeedDecorrelates(t *testing.T) {
	a := WeightSpec{Dist: WeightUniform, MaxWeight: 1 << 20, Seed: 1}
	b := WeightSpec{Dist: WeightUniform, MaxWeight: 1 << 20, Seed: 2}
	same := 0
	for v := Vertex(1); v < 200; v++ {
		if a.WeightOf(0, v) == b.WeightOf(0, v) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("seeds 1 and 2 agree on %d/199 wide draws", same)
	}
}

func TestGenerateWeightedOverlaysTopology(t *testing.T) {
	p := Params{N: 2000, K: 8, Seed: 3}
	plain, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	spec := WeightSpec{Dist: WeightUniform, MaxWeight: 100, Seed: 5}
	wg, err := GenerateWeighted(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !wg.Weighted() || len(wg.W) != len(wg.Adj) {
		t.Fatalf("weighted generate: W len %d, Adj len %d", len(wg.W), len(wg.Adj))
	}
	if wg.N != plain.N || len(wg.Adj) != len(plain.Adj) {
		t.Fatalf("weights changed topology: n %d vs %d, adj %d vs %d", wg.N, plain.N, len(wg.Adj), len(plain.Adj))
	}
	for v := 0; v < wg.N; v++ {
		adj, wts := wg.Neighbors(Vertex(v)), wg.EdgeWeights(Vertex(v))
		for i, u := range adj {
			if wts[i] != spec.WeightOf(Vertex(v), u) {
				t.Fatalf("edge (%d,%d) weight %d != spec %d", v, u, wts[i], spec.WeightOf(Vertex(v), u))
			}
		}
	}
	// Both directions of every edge agree.
	for v := 0; v < wg.N; v++ {
		for i := wg.Off[v]; i < wg.Off[v+1]; i++ {
			u := wg.Adj[i]
			found := false
			for j := wg.Off[u]; j < wg.Off[u+1]; j++ {
				if wg.Adj[j] == Vertex(v) && wg.W[j] == wg.W[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d): reverse direction missing or weight mismatch", v, u)
			}
		}
	}
}

func TestGenerateWeightedRejectsHugeMaxWeight(t *testing.T) {
	_, err := GenerateWeighted(Params{N: 10, K: 2, Seed: 1}, WeightSpec{MaxWeight: MaxDist - 1})
	if err == nil {
		t.Fatal("MaxWeight near the distance sentinel accepted")
	}
}

func TestFromWeightedEdges(t *testing.T) {
	edges := [][2]Vertex{{0, 1}, {1, 2}, {0, 2}}
	g, err := FromWeightedEdges(3, edges, []uint32{5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]Vertex]uint32{{0, 1}: 5, {1, 2}: 7, {0, 2}: 9}
	for v := 0; v < 3; v++ {
		adj, wts := g.Neighbors(Vertex(v)), g.EdgeWeights(Vertex(v))
		for i, u := range adj {
			a, b := Vertex(v), u
			if a > b {
				a, b = b, a
			}
			if wts[i] != want[[2]Vertex{a, b}] {
				t.Fatalf("edge (%d,%d) weight %d, want %d", v, u, wts[i], want[[2]Vertex{a, b}])
			}
		}
	}
	if g.MaxEdgeWeight() != 9 || g.MinEdgeWeight() != 5 {
		t.Fatalf("weight extrema %d/%d, want 5/9", g.MinEdgeWeight(), g.MaxEdgeWeight())
	}

	if _, err := FromWeightedEdges(3, edges, []uint32{5, 7}); err == nil {
		t.Fatal("mismatched weight count accepted")
	}
	if _, err := FromWeightedEdges(3, edges, []uint32{5, 0, 9}); err == nil {
		t.Fatal("zero weight accepted")
	}
}
