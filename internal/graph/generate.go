package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Params describes a Poisson random graph G(n, p) with p chosen so the
// expected average degree is K: p = K/(n-1).
type Params struct {
	N    int     // vertices
	K    float64 // expected average degree
	Seed int64   // PRNG seed; same (N, K, Seed) -> same graph
}

func (p Params) validate() error {
	if p.N <= 0 {
		return fmt.Errorf("graph: N must be positive, got %d", p.N)
	}
	if p.K < 0 {
		return fmt.Errorf("graph: K must be non-negative, got %g", p.K)
	}
	if p.K > float64(p.N-1) {
		return fmt.Errorf("graph: K=%g exceeds N-1=%d", p.K, p.N-1)
	}
	return nil
}

// EdgeProb returns the per-pair edge probability.
func (p Params) EdgeProb() float64 {
	if p.N <= 1 {
		return 0
	}
	return p.K / float64(p.N-1)
}

// VisitEdges streams every undirected edge {u,v}, u < v, of the graph
// exactly once, in deterministic order for a given seed. Skip-sampling
// over the n(n-1)/2 vertex pairs gives O(m) expected time: the gap to
// the next present edge is geometric with parameter p.
//
// Streaming (rather than materializing) lets the partition loaders make
// two passes — count, then fill — without ever holding a global edge
// list.
func (p Params) VisitEdges(visit func(u, v Vertex)) error {
	if err := p.validate(); err != nil {
		return err
	}
	prob := p.EdgeProb()
	if prob <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := int64(p.N)
	total := n * (n - 1) / 2 // pairs in row-major (u, then v>u) order
	if prob >= 1 {
		for u := int64(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				visit(Vertex(u), Vertex(v))
			}
		}
		return nil
	}
	logq := math.Log1p(-prob)
	idx := int64(-1)
	for {
		// Geometric skip: number of absent pairs before the next edge.
		r := rng.Float64()
		skip := int64(math.Floor(math.Log1p(-r) / logq))
		idx += 1 + skip
		if idx >= total {
			return nil
		}
		u, v := pairFromIndex(idx, n)
		visit(u, v)
	}
}

// pairFromIndex maps a linear index in [0, n(n-1)/2) to the pair (u,v),
// u < v, in row-major order: all pairs with u=0 first, then u=1, ...
func pairFromIndex(idx, n int64) (Vertex, Vertex) {
	// Row u starts at offset S(u) = u*n - u*(u+1)/2. Solve for the
	// largest u with S(u) <= idx via the quadratic formula, then fix up
	// floating-point error locally.
	fu := float64(n) - 0.5 - math.Sqrt((float64(n)-0.5)*(float64(n)-0.5)-2*float64(idx))
	u := int64(fu)
	if u < 0 {
		u = 0
	}
	rowStart := func(u int64) int64 { return u*n - u*(u+1)/2 }
	for u > 0 && rowStart(u) > idx {
		u--
	}
	for u+1 < n && rowStart(u+1) <= idx {
		u++
	}
	v := u + 1 + (idx - rowStart(u))
	return Vertex(u), Vertex(v)
}

// Generate materializes the Poisson random graph as a CSR.
func Generate(p Params) (*CSR, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	g := &CSR{N: p.N, Off: make([]int64, p.N+1), Seed: p.Seed, K: p.K}
	// Pass 1: degree counts.
	if err := p.VisitEdges(func(u, v Vertex) {
		g.Off[u+1]++
		g.Off[v+1]++
	}); err != nil {
		return nil, err
	}
	for i := 0; i < p.N; i++ {
		g.Off[i+1] += g.Off[i]
	}
	g.Adj = make([]Vertex, g.Off[p.N])
	fill := make([]int64, p.N)
	// Pass 2: fill adjacency (same seed -> same edges).
	if err := p.VisitEdges(func(u, v Vertex) {
		g.Adj[g.Off[u]+fill[u]] = v
		fill[u]++
		g.Adj[g.Off[v]+fill[v]] = u
		fill[v]++
	}); err != nil {
		return nil, err
	}
	return g, nil
}
