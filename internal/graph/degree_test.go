package graph

import (
	"math"
	"testing"
)

// poissonPMF returns P[X = d] for X ~ Poisson(k), computed in log
// space to stay stable for large d.
func poissonPMF(k float64, d int) float64 {
	logp := -k + float64(d)*math.Log(k)
	for i := 2; i <= d; i++ {
		logp -= math.Log(float64(i))
	}
	return math.Exp(logp)
}

// TestDegreeDistributionIsPoisson runs a chi-square goodness-of-fit
// test of the generator's degree histogram against the Poisson(k)
// distribution the paper assumes (G(n,p) degrees are Binomial(n-1, p)
// ≈ Poisson(k)). This validates that the skip-sampling generator
// actually produces the paper's workload, not merely the right edge
// count.
func TestDegreeDistributionIsPoisson(t *testing.T) {
	const (
		n = 50000
		k = 10.0
	)
	g, err := Generate(Params{N: n, K: k, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	hist := g.DegreeHistogram()

	// Bin degrees so each bin's expected count is >= 20; pool the
	// tails.
	type bin struct {
		observed float64
		expected float64
	}
	var bins []bin
	cur := bin{}
	for d := 0; d < len(hist) || cur.expected > 0; d++ {
		obs := 0.0
		if d < len(hist) {
			obs = float64(hist[d])
		}
		exp := float64(n) * poissonPMF(k, d)
		cur.observed += obs
		cur.expected += exp
		if cur.expected >= 20 {
			bins = append(bins, cur)
			cur = bin{}
		}
		if d >= len(hist) && exp < 1e-3 {
			break
		}
	}
	if cur.expected > 0 {
		// Pool the remaining tail into the last bin.
		bins[len(bins)-1].observed += cur.observed
		bins[len(bins)-1].expected += cur.expected
	}
	if len(bins) < 10 {
		t.Fatalf("only %d bins; histogram too coarse for the test", len(bins))
	}

	chi2 := 0.0
	for _, b := range bins {
		diff := b.observed - b.expected
		chi2 += diff * diff / b.expected
	}
	// Degrees of freedom ≈ bins-1. For the ~20-30 bins this test
	// produces, the 99.9% chi-square quantile is well under 3 per
	// degree of freedom.
	dof := float64(len(bins) - 1)
	if chi2 > 3*dof {
		t.Errorf("chi-square %.1f over %d bins (%.2f/dof): degree distribution deviates from Poisson(%g)",
			chi2, len(bins), chi2/dof, k)
	}
}

// TestDegreeMeanVariance: Poisson degrees have variance ≈ mean.
func TestDegreeMeanVariance(t *testing.T) {
	g, err := Generate(Params{N: 30000, K: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumsq float64
	for v := 0; v < g.N; v++ {
		d := float64(g.Degree(Vertex(v)))
		sum += d
		sumsq += d * d
	}
	mean := sum / float64(g.N)
	variance := sumsq/float64(g.N) - mean*mean
	if ratio := variance / mean; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("variance/mean = %.3f, want ~1 for Poisson degrees", ratio)
	}
}
