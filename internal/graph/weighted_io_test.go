package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWeightedEdgeListRoundTrip(t *testing.T) {
	g, err := GenerateWeighted(Params{N: 300, K: 4, Seed: 8},
		WeightSpec{Dist: WeightExponential, MaxWeight: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWeightedEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWeightedEdgeList(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || len(back.Adj) != len(g.Adj) {
		t.Fatalf("round trip changed shape: n %d->%d, adj %d->%d", g.N, back.N, len(g.Adj), len(back.Adj))
	}
	for v := 0; v < g.N; v++ {
		want := map[Vertex]uint32{}
		for i := g.Off[v]; i < g.Off[v+1]; i++ {
			want[g.Adj[i]] = g.W[i]
		}
		for i := back.Off[v]; i < back.Off[v+1]; i++ {
			if want[back.Adj[i]] != back.W[i] {
				t.Fatalf("vertex %d: edge to %d weight %d, want %d", v, back.Adj[i], back.W[i], want[back.Adj[i]])
			}
		}
	}
}

func TestWriteEdgeListKeepsWeights(t *testing.T) {
	// The latent-gap fix: saving a weighted graph through the generic
	// writer must keep the third column, not silently drop it.
	g, err := FromWeightedEdges(3, [][2]Vertex{{0, 1}, {1, 2}}, []uint32{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# weighted") || !strings.Contains(out, "0 1 7") || !strings.Contains(out, "1 2 9") {
		t.Fatalf("weighted save dropped weights:\n%s", out)
	}
	back, err := ReadEdgeList(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Weighted() {
		t.Fatal("generic reader dropped the weights on load")
	}
}

func TestWriteWeightedEdgeListRejectsUnweighted(t *testing.T) {
	g, err := FromEdges(2, [][2]Vertex{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteWeightedEdgeList(&bytes.Buffer{}, g); err == nil {
		t.Fatal("unweighted graph accepted by the weighted writer")
	}
}

func TestReadEdgeListRejectsMalformedWeights(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"non-integer weight", "0 1 heavy\n"},
		{"zero weight", "0 1 0\n"},
		{"negative weight", "0 1 -3\n"},
		{"overflow weight", "0 1 4294967296\n"},
		{"float weight", "0 1 2.5\n"},
		{"four columns", "0 1 2 3\n"},
		{"mixed arity weighted first", "0 1 2\n1 2\n"},
		{"mixed arity unweighted first", "0 1\n1 2 2\n"},
		{"weighted header unweighted lines", "# weighted\n0 1\n"},
		{"weighted header after unweighted lines", "0 1\n# weighted\n1 2\n"},
		{"conflicting duplicate weight", "0 1 2\n1 0 3\n"},
	}
	for _, tc := range cases {
		if _, err := ReadEdgeList(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.input)
		}
	}
}

func TestReadWeightedEdgeListRejectsUnweighted(t *testing.T) {
	if _, err := ReadWeightedEdgeList(strings.NewReader("0 1\n")); err == nil {
		t.Fatal("unweighted input accepted by the weighted reader")
	}
}

func TestReadEdgeListWeightedDuplicatesMerge(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 5\n1 0 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.W[0] != 5 {
		t.Fatalf("duplicate weighted edge mishandled: edges %d, w %v", g.NumEdges(), g.W)
	}
}

// FuzzWeightedEdgeListRoundTrip builds a weighted graph from arbitrary
// edge/weight bytes and asserts the text format round-trips it exactly.
func FuzzWeightedEdgeListRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 5, 1, 2, 9}, uint8(4))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{3, 3, 1}, uint8(8))
	f.Fuzz(func(t *testing.T, raw []byte, nb uint8) {
		n := int(nb%32) + 2
		var edges [][2]Vertex
		var weights []uint32
		seen := map[[2]Vertex]bool{}
		for i := 0; i+2 < len(raw); i += 3 {
			u, v := Vertex(raw[i])%Vertex(n), Vertex(raw[i+1])%Vertex(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]Vertex{u, v}] {
				continue
			}
			seen[[2]Vertex{u, v}] = true
			edges = append(edges, [2]Vertex{u, v})
			weights = append(weights, uint32(raw[i+2])+1)
		}
		if len(edges) == 0 {
			return
		}
		g, err := FromWeightedEdges(n, edges, weights)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteWeightedEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadWeightedEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed on %q: %v", buf.String(), err)
		}
		if back.N != g.N || len(back.Adj) != len(g.Adj) {
			t.Fatalf("shape changed: n %d->%d adj %d->%d", g.N, back.N, len(g.Adj), len(back.Adj))
		}
		for v := 0; v < g.N; v++ {
			want := map[Vertex]uint32{}
			for i := g.Off[v]; i < g.Off[v+1]; i++ {
				want[g.Adj[i]] = g.W[i]
			}
			for i := back.Off[v]; i < back.Off[v+1]; i++ {
				if want[back.Adj[i]] != back.W[i] {
					t.Fatalf("vertex %d edge %d: weight %d want %d", v, back.Adj[i], back.W[i], want[back.Adj[i]])
				}
			}
		}
	})
}
