package graph

import "container/heap"

// Serial single-source shortest-path oracles. Every distributed
// Δ-stepping run is validated against Dijkstra; Bellman-Ford is the
// second, independently-derived oracle the tests cross-check Dijkstra
// against (two oracles agreeing is the differential-testing anchor the
// distributed engines are pinned to).

// MaxDist marks vertices a shortest-path search did not reach. It is
// also the saturation bound: any tentative distance that would reach
// or exceed it is treated as unreachable.
const MaxDist = ^uint32(0)

// weightOf returns the weight of the i-th incident edge of the graph,
// 1 when unweighted.
func (g *CSR) weightOf(i int64) uint32 {
	if g.W == nil {
		return 1
	}
	return g.W[i]
}

// distHeap is a monotone binary heap of (vertex, dist) pairs.
type distHeap struct {
	v []Vertex
	d []uint32
}

func (h *distHeap) Len() int           { return len(h.v) }
func (h *distHeap) Less(i, j int) bool { return h.d[i] < h.d[j] }
func (h *distHeap) Swap(i, j int)      { h.v[i], h.v[j] = h.v[j], h.v[i]; h.d[i], h.d[j] = h.d[j], h.d[i] }
func (h *distHeap) Push(x any)         { p := x.([2]uint32); h.v = append(h.v, p[0]); h.d = append(h.d, p[1]) }
func (h *distHeap) Pop() any {
	n := len(h.v) - 1
	p := [2]uint32{h.v[n], h.d[n]}
	h.v, h.d = h.v[:n], h.d[:n]
	return p
}

// Dijkstra returns the exact shortest-path distance from src to every
// vertex (MaxDist for unreachable ones). Unweighted graphs run with
// unit weights, so the result equals BFS levels.
func Dijkstra(g *CSR, src Vertex) []uint32 {
	dist := make([]uint32, g.N)
	for i := range dist {
		dist[i] = MaxDist
	}
	dist[src] = 0
	h := &distHeap{v: []Vertex{src}, d: []uint32{0}}
	for h.Len() > 0 {
		p := heap.Pop(h).([2]uint32)
		v, d := Vertex(p[0]), p[1]
		if d > dist[v] {
			continue // stale entry; v was settled cheaper
		}
		for i := g.Off[v]; i < g.Off[v+1]; i++ {
			u, w := g.Adj[i], g.weightOf(i)
			cand := saturatingAdd(d, w)
			if cand < dist[u] {
				dist[u] = cand
				heap.Push(h, [2]uint32{uint32(u), cand})
			}
		}
	}
	return dist
}

// BellmanFord returns shortest-path distances by frontier-based epoch
// relaxation (only vertices improved in the previous epoch relax their
// edges), plus the number of epochs until the distances stop changing.
// It is the Δ=∞ degenerate of Δ-stepping: one bucket, light phases
// only.
func BellmanFord(g *CSR, src Vertex) (dist []uint32, epochs int) {
	dist = make([]uint32, g.N)
	for i := range dist {
		dist[i] = MaxDist
	}
	dist[src] = 0
	active := []Vertex{src}
	for len(active) > 0 {
		epochs++
		var next []Vertex
		changed := make(map[Vertex]bool, len(active))
		for _, v := range active {
			d := dist[v]
			for i := g.Off[v]; i < g.Off[v+1]; i++ {
				u, w := g.Adj[i], g.weightOf(i)
				cand := saturatingAdd(d, w)
				if cand < dist[u] {
					dist[u] = cand
					if !changed[u] {
						changed[u] = true
						next = append(next, u)
					}
				}
			}
		}
		active = next
	}
	return dist, epochs
}

// saturatingAdd adds a distance and a weight, saturating at MaxDist so
// "unreachable plus anything" stays unreachable.
func saturatingAdd(d, w uint32) uint32 {
	if d >= MaxDist-w {
		return MaxDist
	}
	return d + w
}
